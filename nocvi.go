// Package nocvi synthesizes application-specific Networks-on-Chip that
// support the shutdown of voltage islands, reproducing Seiculescu,
// Murali, Benini and De Micheli, "NoC Topology Synthesis for Supporting
// Shutdown of Voltage Islands in SoCs" (DAC 2009).
//
// The input is an SoC specification — cores, traffic flows with
// bandwidth and latency constraints, and an assignment of cores to
// voltage islands. The output is a set of valid NoC design points:
// switches per island, an optional never-shut-down intermediate NoC
// island, inter-switch links with bi-synchronous FIFO converters on
// island crossings, and a route for every flow, such that gating any
// shut-downable island never severs traffic between the remaining
// islands. Each design point carries its floorplan, power breakdown and
// zero-load latency, so the power/performance trade-off curve can be
// explored.
//
// Quick start:
//
//	spec := nocvi.BenchmarkD26(nocvi.Logical, 6)
//	res, err := nocvi.Synthesize(spec, nocvi.DefaultLibrary(), nocvi.Options{
//		AllowIntermediate: true,
//	})
//	best := res.Best()
//	fmt.Printf("NoC power: %.1f mW\n", best.NoCPower.DynW()*1e3)
//	fmt.Println(nocvi.TopologyText(best.Top))
//
// The subsystems live in internal packages (soc, vcg, partition, route,
// floorplan, power, sim, ...); this package re-exports the surface a
// downstream user needs.
package nocvi

import (
	"context"
	"io"

	"nocvi/internal/bench"
	"nocvi/internal/cache"
	"nocvi/internal/core"
	"nocvi/internal/deadlock"
	"nocvi/internal/experiments"
	"nocvi/internal/export"
	"nocvi/internal/fault"
	"nocvi/internal/floorplan"
	"nocvi/internal/mesh"
	"nocvi/internal/model"
	"nocvi/internal/netlist"
	"nocvi/internal/pareto"
	"nocvi/internal/power"
	"nocvi/internal/sim"
	"nocvi/internal/soc"
	"nocvi/internal/specio"
	"nocvi/internal/topology"
	"nocvi/internal/verify"
	"nocvi/internal/viplace"
	"nocvi/internal/wormhole"
)

// Specification types (see internal/soc).
type (
	// Spec is a complete synthesis problem: cores, flows, islands.
	Spec = soc.Spec
	// Core is one IP block of the SoC.
	Core = soc.Core
	// Flow is a directed traffic flow with bandwidth and latency
	// constraints.
	Flow = soc.Flow
	// Island is one voltage island.
	Island = soc.Island
	// CoreID and IslandID are dense indices into Spec.
	CoreID = soc.CoreID
	// IslandID identifies a voltage island within a Spec.
	IslandID = soc.IslandID
	// CoreClass coarsely classifies a core's function.
	CoreClass = soc.CoreClass
)

// Core classes, used by the logical island partitioner.
const (
	ClassCPU        = soc.ClassCPU
	ClassDSP        = soc.ClassDSP
	ClassCache      = soc.ClassCache
	ClassMemory     = soc.ClassMemory
	ClassMemCtrl    = soc.ClassMemCtrl
	ClassDMA        = soc.ClassDMA
	ClassAccel      = soc.ClassAccel
	ClassPeripheral = soc.ClassPeripheral
	ClassIO         = soc.ClassIO
)

// Technology and synthesis types.
type (
	// Library is the 65nm power/area/delay model library.
	Library = model.Library
	// Options configures the synthesis sweep (Algorithm 1).
	Options = core.Options
	// Result is a synthesis outcome: all valid design points.
	Result = core.Result
	// DesignPoint is one valid synthesized NoC.
	DesignPoint = core.DesignPoint
	// Topology is the synthesized network itself.
	Topology = topology.Topology
	// PowerBreakdown itemizes NoC power.
	PowerBreakdown = power.Breakdown
	// SystemPower aggregates SoC-level power.
	SystemPower = power.System
	// Placement is a floorplanning result.
	Placement = floorplan.Placement
	// SimConfig and SimResult drive the cycle-level simulator.
	SimConfig = sim.Config
	// SimResult reports simulated delivery and latency.
	SimResult = sim.Result
	// ParetoPoint is a design point projected on two objectives.
	ParetoPoint = pareto.Point
	// PartitionMethod selects an island-assignment strategy.
	PartitionMethod = viplace.Method
)

// Island partitioning strategies of the paper's §5.
const (
	// Logical groups cores by functionality.
	Logical = viplace.MethodLogical
	// Communication clusters cores by traffic affinity.
	Communication = viplace.MethodCommunication
	// Spectral clusters cores by recursive spectral bisection of the
	// bandwidth graph (alternative communication-based engine).
	Spectral = viplace.MethodSpectral
)

// DefaultLibrary returns the 65 nm technology library used throughout
// the reproduction. Callers may tweak its exported fields (link width,
// energy coefficients) before synthesis.
func DefaultLibrary() *Library { return model.Default65nm() }

// LibraryForNode returns a preset library for "90nm", "65nm" or "45nm"
// (first-order constant-field scaling from the 65 nm calibration; the
// leakage-density growth toward 45 nm is the trend that motivates
// island shutdown).
func LibraryForNode(node string) (*Library, error) { return model.ByNode(node) }

// Synthesize runs Algorithm 1 on the spec and returns the valid design
// points found. Candidate design points are evaluated across
// Options.Workers goroutines (default: all CPUs); the result is
// identical for every worker count. By default a branch-and-bound layer
// discards candidates that provably cannot beat an already-found point
// in either power or latency — the argmin winners and the Pareto front
// are exactly those of the exhaustive sweep, but dominated interior
// points may be absent from Result.Points (Result.PruneStats reports
// how many). Options.NoPrune restores the exhaustive enumeration.
func Synthesize(spec *Spec, lib *Library, opt Options) (*Result, error) {
	return core.Synthesize(spec, lib, opt)
}

// SynthesizeContext is Synthesize with cancellation and timeout
// support: when ctx is cancelled or its deadline passes, the sweep
// stops and returns the best-so-far partial result — Result.Partial is
// set and Result.StopReason says why — rather than an error. Sweeps
// that run to completion are unaffected.
func SynthesizeContext(ctx context.Context, spec *Spec, lib *Library, opt Options) (*Result, error) {
	return core.SynthesizeContext(ctx, spec, lib, opt)
}

// CandidateError records a candidate design point whose evaluation
// panicked; the sweep recovers it, keeps going, and reports it on
// Result.Errors.
type CandidateError = core.CandidateError

// Result.StopReason values.
const (
	StopComplete  = core.StopComplete
	StopTruncated = core.StopTruncated
	StopCanceled  = core.StopCanceled
	StopDeadline  = core.StopDeadline
)

// ErrInfeasible marks synthesis failures that Options.Relax's
// degradation ladder may retry (errors.Is-matchable).
var ErrInfeasible = core.ErrInfeasible

// PartitionIslands assigns the spec's cores to n voltage islands with
// the chosen strategy (the assignment is an input to Synthesize, as in
// the paper).
func PartitionIslands(spec *Spec, method PartitionMethod, n int) (*Spec, error) {
	return viplace.Partition(spec, method, n)
}

// IntraIslandBandwidth reports the fraction of traffic that stays
// inside islands under the spec's current assignment.
func IntraIslandBandwidth(spec *Spec) float64 {
	return viplace.IntraIslandBandwidth(spec)
}

// Simulate runs the deterministic cycle-level simulator on a routed
// topology.
func Simulate(top *Topology, cfg SimConfig) (*SimResult, error) {
	return sim.Run(top, cfg)
}

// VerifyShutdown simulates the topology with the given islands gated
// and confirms all remaining traffic delivers (the dynamic counterpart
// of the synthesis-time safety guarantee).
func VerifyShutdown(top *Topology, off []bool) error {
	return sim.VerifyShutdownDelivery(top, off)
}

// NoCPower computes the power breakdown of a routed topology with every
// island on; ShutdownPower applies an island gating mask.
func NoCPower(top *Topology) PowerBreakdown { return power.NoC(top) }

// ShutdownPower computes full-SoC power with the marked islands gated.
func ShutdownPower(top *Topology, off []bool) SystemPower {
	return power.SystemWithShutdown(top, off)
}

// ShutdownSavings evaluates a gating mask: system power before/after
// and the fractional saving.
func ShutdownSavings(top *Topology, name string, off []bool) (onW, offW, frac float64, err error) {
	return power.Savings(top, power.Scenario{Name: name, Off: off})
}

// Schedule models a duty cycle over shutdown scenarios (e.g. 5% active,
// 35% playback, 60% standby).
type (
	Schedule      = power.Schedule
	ScheduleEntry = power.ScheduleEntry
	// PowerScenario names a set of islands to gate.
	PowerScenario = power.Scenario
)

// ScheduleSavings integrates system power over a duty-cycle schedule and
// reports the energy recovered versus never gating anything — the
// quantity the paper weighs the ~3% active NoC overhead against.
func ScheduleSavings(top *Topology, s Schedule) (alwaysOnW, scheduledW, frac float64, err error) {
	return power.ScheduleSavings(top, s)
}

// ParetoFront projects the result's design points onto (NoC dynamic
// power, mean zero-load latency) and returns the non-dominated front,
// sorted by ascending power. Point indices refer into res.Points.
func ParetoFront(res *Result) []ParetoPoint {
	pts := make([]pareto.Point, len(res.Points))
	for i := range res.Points {
		pts[i] = pareto.Point{
			Index: i,
			X:     res.Points[i].NoCPower.DynW(),
			Y:     res.Points[i].MeanLatencyCycles,
		}
	}
	return pareto.Front(pts)
}

// Wormhole simulation: the flit-level engine with finite buffers and
// credit flow control, the dynamic counterpart of AnalyzeDeadlock.
type (
	WormholeConfig = wormhole.Config
	WormholeResult = wormhole.Result
)

// SimulateWormhole runs the flit-accurate wormhole engine: finite input
// buffers, credit-based backpressure, round-robin allocation. It
// reports actual deadlock (a stable circular wait) if the routes permit
// one — synthesized topologies never do.
func SimulateWormhole(top *Topology, cfg WormholeConfig) (*WormholeResult, error) {
	return wormhole.Run(top, cfg)
}

// FaultReport is the outcome of a single-link-failure sweep: for every
// link, whether the surviving links could re-carry all affected flows
// under the same constraints.
type FaultReport = fault.Report

// AnalyzeFaults sweeps every single-link failure of a synthesized
// topology, quantifying the paper's argument that run-time rerouting
// cannot guarantee connectivity.
func AnalyzeFaults(top *Topology) (*FaultReport, error) { return fault.Analyze(top) }

// Power-state fault campaign (see internal/fault): enumerate island
// power states, check the paper's shutdown invariant in each, and
// compose single-link failures under each state.
type (
	// Campaign is the aggregate report of a power-state fault campaign.
	Campaign = fault.Campaign
	// CampaignOptions bounds and configures a campaign run.
	CampaignOptions = fault.CampaignOptions
	// StateOutcome is the campaign result for one island power state.
	StateOutcome = fault.StateOutcome
)

// RunCampaign verifies the paper's design-time guarantee exhaustively:
// for every enumerated power state (all subsets of shut-downable
// islands, deterministically sampled above opt.MaxStates) it checks
// that surviving traffic keeps its committed routes, then composes
// single-link failures under that state and re-routes affected flows
// over surviving links. The report is byte-identical across runs and
// worker counts.
func RunCampaign(top *Topology, opt CampaignOptions) (*Campaign, error) {
	return fault.RunCampaign(top, opt)
}

// Content-addressed result cache (see internal/cache): because the
// engine is bit-deterministic, results can be cached by a canonical
// digest of their inputs and served back byte-identical to a fresh run.
type (
	// Cache is an on-disk content-addressed store of synthesis results,
	// per-island partition tables and fault-campaign reports.
	Cache = cache.Store
	// CacheOptions configures OpenCache.
	CacheOptions = cache.StoreOptions
	// CacheStats reports a run's cache interaction on Result.CacheStats.
	CacheStats = core.CacheStats
	// PruneStats reports what the branch-and-bound layer did on
	// Result.PruneStats and SweepResult.PruneStats.
	PruneStats = core.PruneStats
)

// CacheEnvDir is the environment variable ResolveCache consults for a
// cache directory when none is given explicitly.
const CacheEnvDir = cache.EnvDir

// OpenCache opens (creating if needed) a result cache rooted at dir.
func OpenCache(dir string, opt CacheOptions) (*Cache, error) { return cache.Open(dir, opt) }

// ResolveCache is the CLI helper behind every -cache-dir/-no-cache flag
// pair: it returns the selected store, consulting CacheEnvDir when dir
// is empty, or nil (caching off) when disabled or unconfigured.
func ResolveCache(dir string, disable bool) (*Cache, error) { return cache.Resolve(dir, disable) }

// SynthesizeCached is SynthesizeContext behind a result cache: a
// repeated run is served from the store byte-identical to a fresh one,
// and a run over an edited spec warm-starts from the cached partition
// tables of every untouched island. A nil cache is a transparent
// pass-through.
func SynthesizeCached(ctx context.Context, s *Cache, spec *Spec, lib *Library, opt Options) (*Result, error) {
	return cache.Synthesize(ctx, s, spec, lib, opt)
}

// RunCampaignCached is RunCampaign behind a result cache, keyed by the
// content digest of the routed topology and the campaign options.
func RunCampaignCached(s *Cache, top *Topology, opt CampaignOptions) (*Campaign, error) {
	return cache.RunCampaign(s, top, opt)
}

// SignoffReport aggregates the full design-rule suite: structural
// validity, deadlock analysis, the shutdown matrix, capacity headroom,
// wire timing, and the power summary.
type SignoffReport = verify.Report

// Signoff runs every design-rule check over a synthesized design point
// and returns the structured report (see SignoffReport.OK and .Format).
func Signoff(dp *DesignPoint) *SignoffReport { return verify.Run(dp.Top, dp.Placement) }

// DeadlockReport is the outcome of a channel-dependency-graph analysis.
type DeadlockReport = deadlock.Report

// AnalyzeDeadlock builds the channel dependency graph of the topology's
// routes and reports whether a circular wait is possible. Every design
// point returned by Synthesize has already passed this check.
func AnalyzeDeadlock(top *Topology) *DeadlockReport { return deadlock.Analyze(top) }

// TopologyDOT renders a topology as a Graphviz digraph (Fig. 4 style).
func TopologyDOT(top *Topology) string { return export.TopologyDOT(top) }

// TopologyText renders a compact ASCII topology summary.
func TopologyText(top *Topology) string { return export.TopologyText(top) }

// FloorplanSVG renders a placement as SVG (Fig. 5 style).
func FloorplanSVG(top *Topology, p *Placement) string { return export.FloorplanSVG(top, p) }

// FloorplanText renders a placement as an ASCII sketch.
func FloorplanText(top *Topology, p *Placement, cols int) string {
	return export.FloorplanText(top, p, cols)
}

// NetlistConfig tunes the generated Verilog (converter depth, hop field
// width of the source routes).
type NetlistConfig = netlist.Config

// GenerateVerilog emits a self-contained structural Verilog netlist of
// the synthesized NoC: one NI per core, the switches, one bi-synchronous
// FIFO per island-crossing link, and the source-route tables — the
// hand-off to a physical design flow.
func GenerateVerilog(top *Topology, cfg NetlistConfig) (string, error) {
	return netlist.Generate(top, cfg)
}

// UseCase is one traffic mode of a multi-mode SoC.
type UseCase = soc.UseCase

// MergeUseCases builds the worst-case spec over several traffic modes
// (union of flows, max bandwidth, tightest latency per pair); the NoC
// synthesized for it serves every mode.
func MergeUseCases(base *Spec, cases ...UseCase) (*Spec, error) {
	return soc.MergeUseCases(base, cases...)
}

// IdleIslands returns the shutdown mask a mode admits: shutdownable
// islands none of whose cores participate in the mode's traffic.
func IdleIslands(spec *Spec, mode UseCase) []bool { return soc.IdleIslands(spec, mode) }

// ModePower evaluates full-SoC power in one traffic mode with the given
// islands gated (the topology must cover the mode's flows).
func ModePower(top *Topology, mode UseCase, off []bool) (SystemPower, error) {
	return power.SystemForMode(top, mode, off)
}

// BenchmarkD26UseCases returns the D26 cores plus its operating modes
// (kitchen-sink, video call, music with the screen off).
func BenchmarkD26UseCases() (*Spec, []UseCase) { return bench.D26UseCases() }

// LoadSpec reads a JSON SoC specification (human units: MB/s, mW, MHz;
// flows reference cores by name) from a file.
func LoadSpec(path string) (*Spec, error) { return specio.LoadSpec(path) }

// SaveSpec writes a spec as JSON — useful for dumping a bundled
// benchmark as a template for custom designs.
func SaveSpec(path string, s *Spec) error { return specio.SaveSpec(path, s) }

// WriteTopologyJSON serializes a synthesized topology for downstream
// tooling (floorplan viewers, RTL generators, ...).
func WriteTopologyJSON(w io.Writer, top *Topology) error {
	return specio.WriteTopology(w, top)
}

// ReadTopologyJSON reconstructs and validates a topology written by
// WriteTopologyJSON against its spec — externally edited designs pass
// through the same rule set the synthesis engine enforces.
func ReadTopologyJSON(r io.Reader, spec *Spec, lib *Library) (*Topology, error) {
	return specio.ReadTopology(r, spec, lib)
}

// Benchmarks lists the bundled SoC benchmark suite.
func Benchmarks() []string { return bench.Names() }

// Benchmark returns a suite SoC with its default island assignment.
func Benchmark(name string) (*Spec, error) { return bench.Islanded(name) }

// BenchmarkFlat returns a suite SoC with all cores in one island.
func BenchmarkFlat(name string) (*Spec, error) { return bench.Flat(name) }

// BenchmarkD26 returns the paper's 26-core mobile/multimedia case study
// partitioned into n islands with the chosen strategy.
func BenchmarkD26(method PartitionMethod, n int) (*Spec, error) {
	return bench.D26Islands(method, n)
}

// ExampleSoC returns the small 3-island teaching SoC (Fig. 1 style).
func ExampleSoC() *Spec { return bench.Example() }

// Experiment re-exports (used by cmd/nocbench and the benches).
type (
	// CurvePoint is one x-position of the Fig. 2/3 sweeps.
	CurvePoint = experiments.CurvePoint
	// OverheadRow is one benchmark of the overhead table.
	OverheadRow = experiments.OverheadRow
	// ShutdownRow is one scenario of the shutdown-savings table.
	ShutdownRow = experiments.ShutdownRow
)

// RefinePlacement re-floorplans a design point with the annealing
// placement optimizer and refreshes its wire-dependent metrics (link
// lengths, NoC power, wire-delay violations).
func RefinePlacement(dp *DesignPoint, iters int) error {
	return dp.RefinePlacement(iters)
}

// PacketTrace is a time-ordered log of delivered packets.
type PacketTrace = sim.Trace

// SimulateTraced runs the simulator and records every delivered packet.
func SimulateTraced(top *Topology, cfg SimConfig) (*SimResult, *PacketTrace, error) {
	return sim.RunTraced(top, cfg)
}

// WriteTraceCSV exports a trace with core names resolved; ReadTraceCSV
// parses it back.
func WriteTraceCSV(w io.Writer, tr *PacketTrace, spec *Spec) error {
	return tr.WriteCSV(w, spec)
}

// ReadTraceCSV parses a trace produced by WriteTraceCSV.
func ReadTraceCSV(r io.Reader, spec *Spec) (*PacketTrace, error) {
	return sim.ReadCSV(r, spec)
}

// ReplayTrace re-injects a recorded trace on a topology (same or
// different) for apples-to-apples comparison under identical offered
// traffic.
func ReplayTrace(top *Topology, tr *PacketTrace) (*SimResult, error) {
	return sim.Replay(top, tr)
}

// MeshOptions and MeshResult expose the regular-2D-mesh mapping baseline
// (the [9]-[11] approach the paper argues against): cores are mapped to
// tiles minimizing bandwidth×hops and flows routed XY. The result
// reports how many flows island shutdown would sever — the problem
// custom synthesis eliminates.
type (
	MeshOptions = mesh.Options
	MeshResult  = mesh.Result
)

// SynthesizeMesh builds the mesh baseline for a spec.
func SynthesizeMesh(spec *Spec, lib *Library, opt MeshOptions) (*MeshResult, error) {
	return mesh.Synthesize(spec, lib, opt)
}
