package main

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: nocvi
BenchmarkRouteAll/d16_industrial-64         	   38005	     31643 ns/op	   19720 B/op	     343 allocs/op
BenchmarkRouteAll/d26_media-64              	    7382	    158233 ns/op	   58360 B/op	     934 allocs/op
BenchmarkSynthesizeParallel/d26_media/workers=4-64 	       2	  11848052 ns/op	 2860608 B/op	   38790 allocs/op
PASS
ok  	nocvi	12.345s
`

func TestParseBench(t *testing.T) {
	got, lanes, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d results, want 3: %v", len(got), got)
	}
	if !reflect.DeepEqual(lanes, []int{64}) {
		t.Fatalf("lanes = %v, want [64] (from the -64 name suffix)", lanes)
	}
	r, ok := got["RouteAll/d16_industrial@p64"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not folded into the key: %v", got)
	}
	if r.Iterations != 38005 || r.NsPerOp != 31643 || r.BytesPerOp != 19720 || r.AllocsPerOp != 343 {
		t.Fatalf("wrong numbers: %+v", r)
	}
	if _, ok := got["SynthesizeParallel/d26_media/workers=4@p64"]; !ok {
		t.Fatalf("nested sub-benchmark name mangled: %v", got)
	}
}

// TestParseBenchMultiLane is the measurement-bug regression test: a
// `-cpu=1,2,4` run must keep every lane as its own record instead of
// the last lane overwriting the others under one key.
func TestParseBenchMultiLane(t *testing.T) {
	multi := `BenchmarkS/x/workers=1         	 100	 1000 ns/op
BenchmarkS/x/workers=1-2       	 100	 1005 ns/op
BenchmarkS/x/workers=1-4       	 100	 1010 ns/op
BenchmarkS/x/workers=4-4       	 100	  300 ns/op
PASS
`
	got, lanes, err := parseBench(strings.NewReader(multi))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("lanes collided: %d records, want 4: %v", len(got), got)
	}
	if !reflect.DeepEqual(lanes, []int{1, 2, 4}) {
		t.Fatalf("lanes = %v, want [1 2 4]", lanes)
	}
	if got["S/x/workers=1@p1"].NsPerOp != 1000 || got["S/x/workers=1@p4"].NsPerOp != 1010 {
		t.Fatalf("per-lane records wrong: %v", got)
	}
}

func TestSplitKey(t *testing.T) {
	suite, w, procs, ok := splitKey("SynthesizeParallel/d48_network/workers=8@p4")
	if !ok || suite != "SynthesizeParallel/d48_network" || w != 8 || procs != 4 {
		t.Fatalf("splitKey = %q %d %d %v", suite, w, procs, ok)
	}
	// Legacy keys without a lane parse as procs=1.
	_, _, procs, ok = splitKey("S/x/workers=2")
	if !ok || procs != 1 {
		t.Fatalf("legacy key: procs=%d ok=%v, want 1 true", procs, ok)
	}
	if _, _, _, ok := splitKey("RouteAll/d26@p4"); ok {
		t.Fatal("key without workers= must not parse")
	}
}

func TestMigrate(t *testing.T) {
	rec := record{
		GoMaxProcs: 1,
		Baseline:   map[string]result{"RouteAll/d26": {NsPerOp: 5}},
		Current:    map[string]result{"RouteAll/d26@p4": {NsPerOp: 4}},
	}
	migrate(&rec)
	if _, ok := rec.Baseline["RouteAll/d26@p1"]; !ok {
		t.Fatalf("legacy baseline key not migrated: %v", rec.Baseline)
	}
	if _, ok := rec.Current["RouteAll/d26@p4"]; !ok {
		t.Fatalf("already-keyed record must pass through: %v", rec.Current)
	}
}

func TestDeltas(t *testing.T) {
	base := map[string]result{"a": {NsPerOp: 200, AllocsPerOp: 100}, "only_base": {NsPerOp: 1}}
	cur := map[string]result{"a": {NsPerOp: 100, AllocsPerOp: 25}}
	d := deltas(base, cur)
	if len(d) != 1 {
		t.Fatalf("want 1 delta, got %v", d)
	}
	if d["a"].NsSpeedup != 2 || d["a"].AllocsRatio != 4 {
		t.Fatalf("wrong ratios: %+v", d["a"])
	}
	if deltas(nil, cur) != nil {
		t.Fatal("deltas without a baseline should be nil")
	}
}

func TestEfficiencies(t *testing.T) {
	results := map[string]result{
		"Synth/a/workers=1@p8":    {NsPerOp: 1000},
		"Synth/a/workers=2@p8":    {NsPerOp: 600},
		"Synth/a/workers=8@p8":    {NsPerOp: 250},
		"Synth/b/workers=1@p8":    {NsPerOp: 500},
		"Synth/b/workers=4@p8":    {NsPerOp: 550}, // slower in parallel
		"RouteAll/d26@p8":         {NsPerOp: 100}, // no workers= leg: ignored
		"Synth/lone/workers=4@p8": {NsPerOp: 5},   // no workers=1 leg: skipped
	}
	effs := efficiencies(results)
	if len(effs) != 2 {
		t.Fatalf("want 2 suites, got %v", effs)
	}
	if e := effs["Synth/a"]; e.Workers != 8 || e.Procs != 8 || e.Speedup != 4 {
		t.Fatalf("Synth/a = %+v, want workers=8 procs=8 speedup=4", e)
	}
	if e := effs["Synth/b"]; e.Workers != 4 || e.Speedup >= 1 {
		t.Fatalf("Synth/b = %+v, want workers=4 speedup<1", e)
	}
	if effs := efficiencies(map[string]result{"x@p8": {NsPerOp: 1}}); effs != nil {
		t.Fatalf("no workers= suites should yield nil, got %v", effs)
	}
}

// TestEfficienciesRefuseSingleProcs pins the honesty rule: lanes
// measured at GOMAXPROCS=1 never produce an efficiency entry, and the
// widest multi-proc lane wins when several exist.
func TestEfficienciesRefuseSingleProcs(t *testing.T) {
	only1 := map[string]result{
		"S/x/workers=1@p1": {NsPerOp: 1000},
		"S/x/workers=8@p1": {NsPerOp: 990},
	}
	if effs := efficiencies(only1); effs != nil {
		t.Fatalf("gomaxprocs=1 lanes must not yield efficiency numbers, got %v", effs)
	}
	if !hasWorkerSuites(only1) {
		t.Fatal("hasWorkerSuites must still see the workers= convention")
	}
	mixed := map[string]result{
		"S/x/workers=1@p1": {NsPerOp: 1000},
		"S/x/workers=8@p1": {NsPerOp: 990},
		"S/x/workers=1@p2": {NsPerOp: 1000},
		"S/x/workers=8@p2": {NsPerOp: 550},
		"S/x/workers=1@p4": {NsPerOp: 1000},
		"S/x/workers=8@p4": {NsPerOp: 300},
	}
	effs := efficiencies(mixed)
	if e := effs["S/x"]; e.Procs != 4 || e.Workers != 8 || e.Speedup != 3.33 {
		t.Fatalf("widest lane must win: %+v", e)
	}
}

func writeCampaign(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "camp.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCacheSummaryFrom(t *testing.T) {
	results := map[string]result{
		"SynthesizeCached/cold@p1":      {NsPerOp: 9000},
		"SynthesizeCached/warm@p1":      {NsPerOp: 1000},
		"SynthesizeCached/cold@p8":      {NsPerOp: 10000},
		"SynthesizeCached/warm@p8":      {NsPerOp: 1000},
		"SynthesizeCached/oneisland@p8": {NsPerOp: 4000},
		"RouteAll/d26@p8":               {NsPerOp: 100}, // unrelated: ignored
	}
	cs := cacheSummaryFrom(results)
	if cs == nil {
		t.Fatal("expected a cache summary")
	}
	if cs.Procs != 8 {
		t.Fatalf("widest lane should win, got procs=%d", cs.Procs)
	}
	if cs.FullHitSpeedup != 10 || cs.WarmStartSpeedup != 2.5 {
		t.Fatalf("speedups = %.2f / %.2f, want 10 / 2.5", cs.FullHitSpeedup, cs.WarmStartSpeedup)
	}
	if cacheSummaryFrom(map[string]result{"SynthesizeCached/cold@p4": {NsPerOp: 1}}) != nil {
		t.Fatal("cold without warm must yield nil")
	}
	if cacheSummaryFrom(map[string]result{"RouteAll/d26@p8": {NsPerOp: 1}}) != nil {
		t.Fatal("no cache lanes must yield nil")
	}
}

func TestPruneSummaryFrom(t *testing.T) {
	results := map[string]result{
		"SynthesizePrune/d48_sweep/prune@p1":   {NsPerOp: 5000, PrunedFrac: 0.98},
		"SynthesizePrune/d48_sweep/noprune@p1": {NsPerOp: 13000},
		"SynthesizePrune/d48_sweep/prune@p4":   {NsPerOp: 2000, PrunedFrac: 0.97},
		"SynthesizePrune/d48_sweep/noprune@p4": {NsPerOp: 5000},
		"RouteAll/d26@p4":                      {NsPerOp: 100}, // unrelated: ignored
	}
	ps := pruneSummaryFrom(results)
	if ps == nil {
		t.Fatal("expected a prune summary")
	}
	if ps.Procs != 4 {
		t.Fatalf("widest lane should win, got procs=%d", ps.Procs)
	}
	if ps.Speedup != 2.5 || ps.PrunedFrac != 0.97 {
		t.Fatalf("speedup=%.2f frac=%.2f, want 2.5 / 0.97", ps.Speedup, ps.PrunedFrac)
	}
	if pruneSummaryFrom(map[string]result{"SynthesizePrune/d48_sweep/prune@p1": {NsPerOp: 1}}) != nil {
		t.Fatal("prune without noprune must yield nil")
	}
	if pruneSummaryFrom(map[string]result{"RouteAll/d26@p8": {NsPerOp: 1}}) != nil {
		t.Fatal("no prune lanes must yield nil")
	}
}

func TestLoadCampaign(t *testing.T) {
	path := writeCampaign(t, `{
		"design": "d26_media", "islands": 6, "shutdownable": 4,
		"state_space": 16, "states": [{"mask":0},{"mask":1}],
		"invariant_violations": 0, "link_faults": 40, "recovered": 30
	}`)
	design, sum, surv, err := loadCampaign(path, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if design != "d26_media" {
		t.Fatalf("design = %q", design)
	}
	if sum.States != 2 || sum.LinkFaults != 40 || sum.RecoverableFrac != 0.75 {
		t.Fatalf("wrong summary: %+v", sum)
	}
	if surv != nil {
		t.Fatalf("k=0 report grew a survive summary: %+v", surv)
	}
	if _, _, _, err := loadCampaign(path, 0.9, 0); err == nil {
		t.Fatal("recoverability 0.75 must fail floor 0.9")
	}
}

func TestLoadCampaignRejectsViolations(t *testing.T) {
	path := writeCampaign(t, `{
		"design": "bad", "states": [{"mask":0}],
		"invariant_violations": 1, "link_faults": 1, "recovered": 1
	}`)
	if _, _, _, err := loadCampaign(path, 0, 0); err == nil {
		t.Fatal("a report with invariant violations must be rejected even without a floor")
	}
}

func TestLoadCampaignRejectsGarbage(t *testing.T) {
	if _, _, _, err := loadCampaign(writeCampaign(t, `{"current": {}}`), 0, 0); err == nil {
		t.Fatal("a non-campaign JSON must be rejected")
	}
	if _, _, _, err := loadCampaign(filepath.Join(t.TempDir(), "missing.json"), 0, 0); err == nil {
		t.Fatal("a missing file must be rejected")
	}
}

func TestAssertFloor(t *testing.T) {
	results := map[string]result{
		"S/x/workers=1@p8": {NsPerOp: 1000},
		"S/x/workers=8@p8": {NsPerOp: 1100},
	}
	if err := assertFloor(results, 0.6); err != nil {
		t.Fatalf("speedup 0.91 should pass floor 0.6: %v", err)
	}
	if err := assertFloor(results, 0.95); err == nil {
		t.Fatal("speedup 0.91 must fail floor 0.95")
	}
	if err := assertFloor(map[string]result{"plain@p8": {NsPerOp: 1}}, 0.5); err == nil {
		t.Fatal("a floor with no workers= suites must fail loudly")
	}
	single := map[string]result{
		"S/x/workers=1@p1": {NsPerOp: 1000},
		"S/x/workers=8@p1": {NsPerOp: 990},
	}
	if err := assertFloor(single, 0.5); err == nil {
		t.Fatal("gomaxprocs=1 data must not satisfy a floor by accident")
	}
}

func TestLoadCampaignSurviveFloor(t *testing.T) {
	// A k=1 report with full zero-reroute coverage passes the floor and
	// yields a survive summary.
	good := writeCampaign(t, `{
		"design": "d26_media", "islands": 6, "shutdownable": 4,
		"state_space": 16, "states": [{"mask":0}],
		"invariant_violations": 0, "link_faults": 40, "recovered": 40,
		"zero_reroute": 40, "survivability": 1
	}`)
	_, _, surv, err := loadCampaign(good, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if surv == nil || surv.Survivability != 1 || surv.ZeroRerouteFrac != 1 {
		t.Fatalf("wrong survive summary: %+v", surv)
	}

	// A k=0 report must be rejected outright by any survive floor: it
	// asserts nothing about backups.
	plain := writeCampaign(t, `{
		"design": "d26_media", "states": [{"mask":0}],
		"invariant_violations": 0, "link_faults": 40, "recovered": 40
	}`)
	if _, _, _, err := loadCampaign(plain, 0, 0.1); err == nil {
		t.Fatal("survive floor accepted a report without a survivability run")
	}

	// A single non-recoverable fault on a k=1 run is a hard failure,
	// whatever the floor.
	broken := writeCampaign(t, `{
		"design": "d26_media", "states": [{"mask":0}],
		"invariant_violations": 0, "link_faults": 40, "recovered": 39,
		"zero_reroute": 39, "survivability": 1
	}`)
	if _, _, _, err := loadCampaign(broken, 0, 0.1); err == nil {
		t.Fatal("survive floor accepted a k=1 run with a non-recoverable link fault")
	}

	// Zero-reroute coverage below the floor fails even when every fault
	// was recovered somehow (re-routing is not the contract).
	rerouted := writeCampaign(t, `{
		"design": "d26_media", "states": [{"mask":0}],
		"invariant_violations": 0, "link_faults": 40, "recovered": 40,
		"zero_reroute": 20, "survivability": 1
	}`)
	if _, _, _, err := loadCampaign(rerouted, 0, 0.9); err == nil {
		t.Fatal("survive floor 0.9 accepted 50% zero-reroute coverage")
	}
}
