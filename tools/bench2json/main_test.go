package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: nocvi
BenchmarkRouteAll/d16_industrial-64         	   38005	     31643 ns/op	   19720 B/op	     343 allocs/op
BenchmarkRouteAll/d26_media-64              	    7382	    158233 ns/op	   58360 B/op	     934 allocs/op
BenchmarkSynthesizeParallel/d26_media/workers=4-64 	       2	  11848052 ns/op	 2860608 B/op	   38790 allocs/op
PASS
ok  	nocvi	12.345s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d results, want 3: %v", len(got), got)
	}
	r, ok := got["RouteAll/d16_industrial"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", got)
	}
	if r.Iterations != 38005 || r.NsPerOp != 31643 || r.BytesPerOp != 19720 || r.AllocsPerOp != 343 {
		t.Fatalf("wrong numbers: %+v", r)
	}
	if _, ok := got["SynthesizeParallel/d26_media/workers=4"]; !ok {
		t.Fatalf("nested sub-benchmark name mangled: %v", got)
	}
}

func TestDeltas(t *testing.T) {
	base := map[string]result{"a": {NsPerOp: 200, AllocsPerOp: 100}, "only_base": {NsPerOp: 1}}
	cur := map[string]result{"a": {NsPerOp: 100, AllocsPerOp: 25}}
	d := deltas(base, cur)
	if len(d) != 1 {
		t.Fatalf("want 1 delta, got %v", d)
	}
	if d["a"].NsSpeedup != 2 || d["a"].AllocsRatio != 4 {
		t.Fatalf("wrong ratios: %+v", d["a"])
	}
	if deltas(nil, cur) != nil {
		t.Fatal("deltas without a baseline should be nil")
	}
}
