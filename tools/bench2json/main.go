// Command bench2json converts `go test -bench` text output (on stdin)
// into a checked-in JSON record of routing performance, preserving the
// pre-optimization baseline so the file always carries before/after
// numbers side by side:
//
//	go test -bench=RouteAll -benchmem -run='^$' . | go run ./tools/bench2json -o BENCH_routing.json
//
// The first write seeds the "baseline" section; subsequent writes
// refresh "current" and recompute the per-benchmark deltas, leaving
// the baseline untouched. Use -set baseline to re-seed deliberately
// (e.g. after re-measuring on new hardware).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// result is one benchmark line: iterations plus the -benchmem triple.
type result struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// delta compares current against baseline for one benchmark. Ratios
// are baseline/current, so >1 means the current code is better.
type delta struct {
	NsSpeedup   float64 `json:"ns_speedup"`
	AllocsRatio float64 `json:"allocs_ratio,omitempty"`
}

type record struct {
	Baseline map[string]result `json:"baseline,omitempty"`
	Current  map[string]result `json:"current,omitempty"`
	Delta    map[string]delta  `json:"delta,omitempty"`
}

func main() {
	out := flag.String("o", "BENCH_routing.json", "output JSON file (merged in place)")
	section := flag.String("set", "auto", "section to write: baseline|current|auto (auto seeds the baseline on first run)")
	flag.Parse()

	results, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "bench2json: no benchmark lines on stdin")
		os.Exit(1)
	}

	var rec record
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &rec); err != nil {
			fmt.Fprintf(os.Stderr, "bench2json: %s: %v\n", *out, err)
			os.Exit(1)
		}
	}

	dst := *section
	if dst == "auto" {
		if len(rec.Baseline) == 0 {
			dst = "baseline"
		} else {
			dst = "current"
		}
	}
	switch dst {
	case "baseline":
		rec.Baseline = results
	case "current":
		rec.Current = results
	default:
		fmt.Fprintf(os.Stderr, "bench2json: unknown -set %q\n", dst)
		os.Exit(1)
	}
	rec.Delta = deltas(rec.Baseline, rec.Current)

	data, err := json.MarshalIndent(&rec, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	fmt.Printf("[wrote %s: %d benchmarks into %q]\n", *out, len(results), dst)
}

// parseBench extracts benchmark result lines from `go test -bench`
// output. Lines look like
//
//	BenchmarkRouteAll/d26_media-64   8527   118499 ns/op   56082 B/op   770 allocs/op
//
// where the -64 suffix is GOMAXPROCS and is stripped so records from
// machines with different core counts merge under one key.
func parseBench(r io.Reader) (map[string]result, error) {
	out := make(map[string]result)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // header or summary line, not a result
		}
		res := result{Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			val, unit := fields[i], fields[i+1]
			switch unit {
			case "ns/op":
				res.NsPerOp, err = strconv.ParseFloat(val, 64)
			case "B/op":
				res.BytesPerOp, err = strconv.ParseInt(val, 10, 64)
			case "allocs/op":
				res.AllocsPerOp, err = strconv.ParseInt(val, 10, 64)
			}
			if err != nil {
				return nil, fmt.Errorf("parsing %q: %w", sc.Text(), err)
			}
		}
		out[name] = res
	}
	return out, sc.Err()
}

// deltas pairs up benchmarks present in both sections.
func deltas(base, cur map[string]result) map[string]delta {
	if len(base) == 0 || len(cur) == 0 {
		return nil
	}
	out := make(map[string]delta)
	for name, b := range base {
		c, ok := cur[name]
		if !ok || c.NsPerOp == 0 { //noclint:ignore floateq exact zero ns/op guards the speedup division
			continue
		}
		d := delta{NsSpeedup: round2(b.NsPerOp / c.NsPerOp)}
		if c.AllocsPerOp > 0 {
			d.AllocsRatio = round2(float64(b.AllocsPerOp) / float64(c.AllocsPerOp))
		}
		out[name] = d
	}
	return out
}

func round2(x float64) float64 {
	return float64(int64(x*100+0.5)) / 100
}
