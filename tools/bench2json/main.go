// Command bench2json converts `go test -bench` text output (on stdin)
// into a checked-in JSON record of benchmark performance, preserving
// the pre-optimization baseline so the file always carries before/after
// numbers side by side:
//
//	go test -bench=RouteAll -benchmem -run='^$' . | go run ./tools/bench2json -o BENCH_routing.json
//
// The first write seeds the "baseline" section; subsequent writes
// refresh "current" and recompute the per-benchmark deltas, leaving
// the baseline untouched. Use -set baseline to re-seed deliberately
// (e.g. after re-measuring on new hardware).
//
// Benchmarks following the `Suite/workers=K` sub-benchmark convention
// additionally get a "parallel_efficiency" section: per suite, the
// speedup of the widest workers variant over workers=1, alongside the
// GOMAXPROCS of the measuring machine (parsed from the benchmark name
// suffix) — a speedup near 1.0 on a single-core machine and near the
// worker count on a wide one are both healthy; what the number guards
// against is the parallel path being materially slower than serial.
//
// With -floor F the tool additionally asserts that every suite's
// speedup is at least F and exits nonzero otherwise, which is how the
// CI smoke run pins "parallelism never costs more than it pays".
// Passing an empty -o checks without touching any file.
//
// With -campaign FILE a power-state fault-campaign report (written by
// `nocsynth -campaign-json`) is condensed into the record's "campaign"
// section, keyed by design. Merging a report with invariant violations
// always fails — a design that breaks the shutdown guarantee must not
// be folded into the record silently — and -campaign-floor F
// additionally asserts the aggregate link-fault recoverability. A
// campaign-only invocation (no benchmark lines on stdin) is valid:
//
//	nocsynth -bench d26_media -campaign -campaign-json camp.json
//	go run ./tools/bench2json -campaign camp.json -campaign-floor 0.5 -o '' </dev/null
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// result is one benchmark line: iterations plus the -benchmem triple.
type result struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// delta compares current against baseline for one benchmark. Ratios
// are baseline/current, so >1 means the current code is better.
type delta struct {
	NsSpeedup   float64 `json:"ns_speedup"`
	AllocsRatio float64 `json:"allocs_ratio,omitempty"`
}

// efficiency summarizes one Suite/workers=K family: the speedup of the
// widest measured worker count over workers=1 (ns(w=1)/ns(w=max)).
type efficiency struct {
	Workers int     `json:"workers"`
	Speedup float64 `json:"speedup_vs_workers1"`
}

// campaignSummary condenses one power-state fault-campaign report
// (nocsynth -campaign-json) for the record's "campaign" section.
type campaignSummary struct {
	States              int     `json:"states"`
	Sampled             bool    `json:"sampled,omitempty"`
	InvariantViolations int     `json:"invariant_violations"`
	LinkFaults          int     `json:"link_faults"`
	RecoverableFrac     float64 `json:"recoverable_frac"`
}

type record struct {
	// GoMaxProcs is the GOMAXPROCS of the machine that produced the
	// most recent write, parsed from the benchmark-name suffix. It
	// contextualizes the efficiency numbers: a 1.0 speedup is expected
	// on gomaxprocs=1 and a red flag on gomaxprocs=8.
	GoMaxProcs int               `json:"gomaxprocs,omitempty"`
	Baseline   map[string]result `json:"baseline,omitempty"`
	Current    map[string]result `json:"current,omitempty"`
	Delta      map[string]delta  `json:"delta,omitempty"`
	// Efficiency is computed from Current when present, else Baseline.
	Efficiency map[string]efficiency `json:"parallel_efficiency,omitempty"`
	// Campaign holds the latest fault-campaign summary per design.
	Campaign map[string]campaignSummary `json:"campaign,omitempty"`
}

func main() {
	out := flag.String("o", "BENCH_routing.json", "output JSON file (merged in place); empty checks without writing")
	section := flag.String("set", "auto", "section to write: baseline|current|auto (auto seeds the baseline on first run)")
	floor := flag.Float64("floor", 0, "fail unless every workers= suite on stdin reaches this speedup over workers=1")
	campaignPath := flag.String("campaign", "", "fold a fault-campaign JSON report (nocsynth -campaign-json) into the record")
	campaignFloor := flag.Float64("campaign-floor", 0, "fail unless the -campaign report's aggregate recoverability reaches this fraction")
	flag.Parse()

	results, gomaxprocs, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	if len(results) == 0 && *campaignPath == "" {
		fmt.Fprintln(os.Stderr, "bench2json: no benchmark lines on stdin")
		os.Exit(1)
	}
	if *floor > 0 {
		if err := assertFloor(results, *floor); err != nil {
			fmt.Fprintln(os.Stderr, "bench2json:", err)
			os.Exit(1)
		}
	}
	campDesign, campSum := "", campaignSummary{}
	if *campaignPath != "" {
		campDesign, campSum, err = loadCampaign(*campaignPath, *campaignFloor)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench2json:", err)
			os.Exit(1)
		}
	}
	if *out == "" {
		fmt.Printf("[checked %d benchmarks, no output file]\n", len(results))
		return
	}

	var rec record
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &rec); err != nil {
			fmt.Fprintf(os.Stderr, "bench2json: %s: %v\n", *out, err)
			os.Exit(1)
		}
	}

	dst := *section
	if dst == "auto" {
		if len(rec.Baseline) == 0 {
			dst = "baseline"
		} else {
			dst = "current"
		}
	}
	if len(results) > 0 {
		switch dst {
		case "baseline":
			rec.Baseline = results
		case "current":
			rec.Current = results
		default:
			fmt.Fprintf(os.Stderr, "bench2json: unknown -set %q\n", dst)
			os.Exit(1)
		}
		rec.Delta = deltas(rec.Baseline, rec.Current)
		rec.GoMaxProcs = gomaxprocs
		if len(rec.Current) > 0 {
			rec.Efficiency = efficiencies(rec.Current)
		} else {
			rec.Efficiency = efficiencies(rec.Baseline)
		}
	}
	if campDesign != "" {
		if rec.Campaign == nil {
			rec.Campaign = make(map[string]campaignSummary)
		}
		rec.Campaign[campDesign] = campSum
	}

	data, err := json.MarshalIndent(&rec, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	fmt.Printf("[wrote %s: %d benchmarks into %q]\n", *out, len(results), dst)
}

// loadCampaign reads a campaign report written by `nocsynth
// -campaign-json`, verifies it (zero invariant violations always;
// aggregate recoverability at least floor when floor > 0), and returns
// its design name with the condensed summary.
func loadCampaign(path string, floor float64) (string, campaignSummary, error) {
	var sum campaignSummary
	data, err := os.ReadFile(path)
	if err != nil {
		return "", sum, err
	}
	// The shape mirrors fault.Campaign's JSON; only the aggregate fields
	// are read, so the per-state detail can evolve independently.
	var rep struct {
		Design              string            `json:"design"`
		Sampled             bool              `json:"sampled"`
		States              []json.RawMessage `json:"states"`
		InvariantViolations int               `json:"invariant_violations"`
		LinkFaults          int               `json:"link_faults"`
		Recovered           int               `json:"recovered"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return "", sum, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Design == "" || len(rep.States) == 0 {
		return "", sum, fmt.Errorf("%s: not a campaign report (no design or states)", path)
	}
	sum = campaignSummary{
		States:              len(rep.States),
		Sampled:             rep.Sampled,
		InvariantViolations: rep.InvariantViolations,
		LinkFaults:          rep.LinkFaults,
		RecoverableFrac:     1,
	}
	if rep.LinkFaults > 0 {
		sum.RecoverableFrac = round2(float64(rep.Recovered) / float64(rep.LinkFaults))
	}
	if rep.InvariantViolations != 0 {
		return "", sum, fmt.Errorf("%s: %s violates the shutdown invariant in %d power state(s)",
			path, rep.Design, rep.InvariantViolations)
	}
	if floor > 0 && sum.RecoverableFrac < floor {
		return "", sum, fmt.Errorf("%s: %s aggregate recoverability %.2f below the %.2f floor",
			path, rep.Design, sum.RecoverableFrac, floor)
	}
	return rep.Design, sum, nil
}

// parseBench extracts benchmark result lines from `go test -bench`
// output. Lines look like
//
//	BenchmarkRouteAll/d26_media-64   8527   118499 ns/op   56082 B/op   770 allocs/op
//
// where the -64 suffix is GOMAXPROCS; it is stripped so records from
// machines with different core counts merge under one key, and
// returned so the record can note the measuring machine's parallelism.
func parseBench(r io.Reader) (map[string]result, int, error) {
	out := make(map[string]result)
	gomaxprocs := 0
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndex(name, "-"); i > 0 {
			if p, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
				gomaxprocs = p
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // header or summary line, not a result
		}
		res := result{Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			val, unit := fields[i], fields[i+1]
			switch unit {
			case "ns/op":
				res.NsPerOp, err = strconv.ParseFloat(val, 64)
			case "B/op":
				res.BytesPerOp, err = strconv.ParseInt(val, 10, 64)
			case "allocs/op":
				res.AllocsPerOp, err = strconv.ParseInt(val, 10, 64)
			}
			if err != nil {
				return nil, 0, fmt.Errorf("parsing %q: %w", sc.Text(), err)
			}
		}
		out[name] = res
		if gomaxprocs == 0 {
			gomaxprocs = 1 // go test omits the suffix when GOMAXPROCS=1
		}
	}
	return out, gomaxprocs, sc.Err()
}

// efficiencies pairs every `Suite/workers=K` family's workers=1 timing
// with its widest workers variant. Suites missing a workers=1 leg are
// skipped.
func efficiencies(results map[string]result) map[string]efficiency {
	type legs struct {
		w1     float64
		maxW   int
		maxWNs float64
	}
	suites := make(map[string]*legs)
	for name, r := range results {
		i := strings.LastIndex(name, "/workers=")
		if i < 0 {
			continue
		}
		k, err := strconv.Atoi(name[i+len("/workers="):])
		if err != nil || r.NsPerOp <= 0 {
			continue
		}
		suite := name[:i]
		l := suites[suite]
		if l == nil {
			l = &legs{}
			suites[suite] = l
		}
		if k == 1 {
			l.w1 = r.NsPerOp
		}
		if k > l.maxW {
			l.maxW = k
			l.maxWNs = r.NsPerOp
		}
	}
	out := make(map[string]efficiency)
	for suite, l := range suites {
		if l.w1 <= 0 || l.maxW <= 1 {
			continue
		}
		out[suite] = efficiency{Workers: l.maxW, Speedup: round2(l.w1 / l.maxWNs)}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// assertFloor enforces the parallel-efficiency floor over the parsed
// input: every workers= suite must reach the given speedup.
func assertFloor(results map[string]result, floor float64) error {
	effs := efficiencies(results)
	if len(effs) == 0 {
		return fmt.Errorf("-floor %.2f: no Suite/workers=K benchmarks on stdin", floor)
	}
	for suite, e := range effs {
		if e.Speedup < floor {
			return fmt.Errorf("parallel efficiency floor violated: %s workers=%d speedup %.2f < %.2f",
				suite, e.Workers, e.Speedup, floor)
		}
	}
	return nil
}

// deltas pairs up benchmarks present in both sections.
func deltas(base, cur map[string]result) map[string]delta {
	if len(base) == 0 || len(cur) == 0 {
		return nil
	}
	out := make(map[string]delta)
	for name, b := range base {
		c, ok := cur[name]
		if !ok || c.NsPerOp == 0 { //noclint:ignore floateq exact zero ns/op guards the speedup division
			continue
		}
		d := delta{NsSpeedup: round2(b.NsPerOp / c.NsPerOp)}
		if c.AllocsPerOp > 0 {
			d.AllocsRatio = round2(float64(b.AllocsPerOp) / float64(c.AllocsPerOp))
		}
		out[name] = d
	}
	return out
}

func round2(x float64) float64 {
	return float64(int64(x*100+0.5)) / 100
}
