// Command bench2json converts `go test -bench` text output (on stdin)
// into a checked-in JSON record of benchmark performance, preserving
// the pre-optimization baseline so the file always carries before/after
// numbers side by side:
//
//	go test -bench=RouteAll -cpu=1,2,4 -benchmem -run='^$' . | go run ./tools/bench2json -o BENCH_routing.json
//
// The first write seeds the "baseline" section; subsequent writes
// refresh "current" and recompute the per-benchmark deltas, leaving
// the baseline untouched. Use -set baseline to re-seed deliberately
// (e.g. after re-measuring on new hardware).
//
// Results are keyed by benchmark name AND the GOMAXPROCS the lane ran
// under (the `-N` suffix go test appends), as `name@pN`. A multi-lane
// run (`go test -cpu=1,2,4`) therefore records every lane instead of
// the last one silently overwriting the rest — the measurement bug that
// once made a single-core sweep look like a healthy parallel one. The
// record carries the machine's num_cpu and the measured lanes so a
// reader can tell real parallelism from a one-lane run at a glance.
//
// Benchmarks following the `Suite/workers=K` sub-benchmark convention
// additionally get a "parallel_efficiency" section: per suite, the
// speedup of the widest workers variant over workers=1, taken from the
// widest GOMAXPROCS lane that measured both. Lanes measured at
// GOMAXPROCS=1 are never used — a "speedup" with one schedulable CPU
// is timing noise, not efficiency — so a record produced entirely on a
// single-core machine carries an efficiency_note instead of numbers.
//
// With -floor F the tool additionally asserts that every suite's
// speedup is at least F and exits nonzero otherwise, which is how the
// CI smoke run pins "parallelism actually pays". On data measured only
// at GOMAXPROCS=1 the floor is skipped with a stderr note (exit 0) —
// unless -require-procs N is also given, in which case input lacking a
// lane of at least N schedulable CPUs is a hard failure. CI on
// multi-core runners sets -require-procs so a mis-pinned runner cannot
// silently regress into the single-core skip path.
// Passing an empty -o checks without touching any file.
//
// With -campaign FILE a power-state fault-campaign report (written by
// `nocsynth -campaign-json`) is condensed into the record's "campaign"
// section, keyed by design. Merging a report with invariant violations
// always fails — a design that breaks the shutdown guarantee must not
// be folded into the record silently — and -campaign-floor F
// additionally asserts the aggregate link-fault recoverability. A
// campaign-only invocation (no benchmark lines on stdin) is valid:
//
//	nocsynth -bench d26_media -campaign -campaign-json camp.json
//	go run ./tools/bench2json -campaign camp.json -campaign-floor 0.5 -o '' </dev/null
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// result is one benchmark line: iterations plus the -benchmem triple,
// and the custom pruned_frac metric the SynthesizePrune lanes report.
type result struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	PrunedFrac  float64 `json:"pruned_frac,omitempty"`
}

// delta compares current against baseline for one benchmark. Ratios
// are baseline/current, so >1 means the current code is better.
type delta struct {
	NsSpeedup   float64 `json:"ns_speedup"`
	AllocsRatio float64 `json:"allocs_ratio,omitempty"`
}

// efficiency summarizes one Suite/workers=K family: the speedup of the
// widest measured worker count over workers=1 (ns(w=1)/ns(w=max)),
// within the widest GOMAXPROCS lane that measured both legs.
type efficiency struct {
	Workers int     `json:"workers"`
	Procs   int     `json:"gomaxprocs"`
	Speedup float64 `json:"speedup_vs_workers1"`
}

// cacheSummary condenses the BenchmarkSynthesizeCached lanes: the
// cold / warm / oneisland timings and the ratios that matter — how much
// a full hit saves, and how much warm-starting saves a genuine miss.
type cacheSummary struct {
	Procs            int     `json:"gomaxprocs"`
	ColdNs           float64 `json:"cold_ns_per_op"`
	WarmNs           float64 `json:"warm_ns_per_op"`
	OneIslandNs      float64 `json:"oneisland_ns_per_op,omitempty"`
	FullHitSpeedup   float64 `json:"full_hit_speedup"`
	WarmStartSpeedup float64 `json:"warmstart_speedup,omitempty"`
}

// pruneSummary condenses the SynthesizePrune lanes: the branch-and-
// bound sweep against the exhaustive one on the same candidate space,
// at matching GOMAXPROCS. Unlike the workers= efficiency numbers this
// speedup is algorithmic, not parallel, so a GOMAXPROCS=1 lane is a
// perfectly valid measurement.
type pruneSummary struct {
	Procs      int     `json:"gomaxprocs"`
	PruneNs    float64 `json:"prune_ns_per_op"`
	NoPruneNs  float64 `json:"noprune_ns_per_op"`
	PrunedFrac float64 `json:"pruned_frac"`
	Speedup    float64 `json:"speedup_vs_noprune"`
}

// campaignSummary condenses one power-state fault-campaign report
// (nocsynth -campaign-json) for the record's "campaign" section.
type campaignSummary struct {
	States              int     `json:"states"`
	Sampled             bool    `json:"sampled,omitempty"`
	InvariantViolations int     `json:"invariant_violations"`
	LinkFaults          int     `json:"link_faults"`
	RecoverableFrac     float64 `json:"recoverable_frac"`
}

// surviveSummary condenses the survivability side of a campaign report
// produced by a k>=1 run: how many of the composed link faults were
// absorbed by a pre-synthesized backup with zero re-routing.
type surviveSummary struct {
	Survivability   int     `json:"survivability"`
	LinkFaults      int     `json:"link_faults"`
	ZeroReroute     int     `json:"zero_reroute"`
	ZeroRerouteFrac float64 `json:"zero_reroute_frac"`
}

type record struct {
	// GoMaxProcs is the widest GOMAXPROCS lane of the most recent write;
	// NumCPU the runtime.NumCPU of the measuring machine; Lanes every
	// lane measured. Together they tell a reader whether the efficiency
	// numbers could possibly mean anything: gomaxprocs=1 on num_cpu=1 is
	// a machine that cannot measure parallelism, not a regression.
	GoMaxProcs int               `json:"gomaxprocs,omitempty"`
	NumCPU     int               `json:"num_cpu,omitempty"`
	Lanes      []int             `json:"gomaxprocs_lanes,omitempty"`
	Baseline   map[string]result `json:"baseline,omitempty"`
	Current    map[string]result `json:"current,omitempty"`
	Delta      map[string]delta  `json:"delta,omitempty"`
	// Efficiency is computed from Current when present, else Baseline.
	// It is never computed from GOMAXPROCS=1 lanes; EfficiencyNote says
	// so when that leaves nothing to report.
	Efficiency     map[string]efficiency `json:"parallel_efficiency,omitempty"`
	EfficiencyNote string                `json:"efficiency_note,omitempty"`
	// Cache holds the SynthesizeCached cold/warm/oneisland ratios,
	// computed from Current when present, else Baseline.
	Cache *cacheSummary `json:"cache,omitempty"`
	// Prune holds the SynthesizePrune branch-and-bound ratios, computed
	// from Current when present, else Baseline.
	Prune *pruneSummary `json:"prune,omitempty"`
	// Campaign holds the latest fault-campaign summary per design.
	Campaign map[string]campaignSummary `json:"campaign,omitempty"`
	// Survive holds the latest survivability summary per design, filled
	// from campaign reports produced by k>=1 runs.
	Survive map[string]surviveSummary `json:"survive,omitempty"`
}

func main() {
	out := flag.String("o", "BENCH_routing.json", "output JSON file (merged in place); empty checks without writing")
	section := flag.String("set", "auto", "section to write: baseline|current|auto (auto seeds the baseline on first run)")
	floor := flag.Float64("floor", 0, "fail unless every workers= suite on stdin reaches this speedup over workers=1 (skipped with a note on GOMAXPROCS=1 data)")
	requireProcs := flag.Int("require-procs", 0, "with -floor: fail unless the input has a GOMAXPROCS lane of at least this width")
	campaignPath := flag.String("campaign", "", "fold a fault-campaign JSON report (nocsynth -campaign-json) into the record")
	campaignFloor := flag.Float64("campaign-floor", 0, "fail unless the -campaign report's aggregate recoverability reaches this fraction")
	surviveFloor := flag.Float64("survive-floor", 0, "fail unless the -campaign report came from a survivability>=1 run with no non-recoverable link fault and a zero-re-route fraction of at least this value")
	cacheFloor := flag.Float64("cache-floor", 0, "fail unless the SynthesizeCached lanes on stdin show at least this cold/warm full-hit speedup")
	pruneFloor := flag.Float64("prune-floor", 0, "fail unless the SynthesizePrune lanes on stdin show at least this speedup over the exhaustive sweep, with a nonzero pruned fraction")
	flag.Parse()

	results, lanes, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	if len(results) == 0 && *campaignPath == "" {
		fmt.Fprintln(os.Stderr, "bench2json: no benchmark lines on stdin")
		os.Exit(1)
	}
	maxProcs := 0
	if len(lanes) > 0 {
		maxProcs = lanes[len(lanes)-1]
	}
	if *floor > 0 {
		switch {
		case *requireProcs > 1 && maxProcs < *requireProcs:
			fmt.Fprintf(os.Stderr, "bench2json: -require-procs %d: widest measured lane is gomaxprocs=%d — run with -cpu including a lane of at least %d\n",
				*requireProcs, maxProcs, *requireProcs)
			os.Exit(1)
		case maxProcs <= 1:
			fmt.Fprintf(os.Stderr, "bench2json: note: -floor %.2f skipped — benchmarks measured at gomaxprocs=1, where a parallel speedup cannot exist; set -require-procs on multi-core runners to make this a failure\n", *floor)
		default:
			if err := assertFloor(results, *floor); err != nil {
				fmt.Fprintln(os.Stderr, "bench2json:", err)
				os.Exit(1)
			}
		}
	}
	if *cacheFloor > 0 {
		cs := cacheSummaryFrom(results)
		switch {
		case cs == nil:
			fmt.Fprintf(os.Stderr, "bench2json: -cache-floor %.2f: no SynthesizeCached cold+warm lanes on stdin\n", *cacheFloor)
			os.Exit(1)
		case cs.FullHitSpeedup < *cacheFloor:
			fmt.Fprintf(os.Stderr, "bench2json: cache full-hit speedup %.2f below the %.2f floor (cold %.0f ns, warm %.0f ns)\n",
				cs.FullHitSpeedup, *cacheFloor, cs.ColdNs, cs.WarmNs)
			os.Exit(1)
		}
	}
	if *pruneFloor > 0 {
		ps := pruneSummaryFrom(results)
		switch {
		case ps == nil:
			fmt.Fprintf(os.Stderr, "bench2json: -prune-floor %.2f: no SynthesizePrune prune+noprune lanes on stdin\n", *pruneFloor)
			os.Exit(1)
		case ps.PrunedFrac <= 0:
			fmt.Fprintf(os.Stderr, "bench2json: prune lane reported a zero pruned fraction — the branch-and-bound layer never fired\n")
			os.Exit(1)
		case ps.Speedup < *pruneFloor:
			fmt.Fprintf(os.Stderr, "bench2json: prune speedup %.2f below the %.2f floor (prune %.0f ns, noprune %.0f ns)\n",
				ps.Speedup, *pruneFloor, ps.PruneNs, ps.NoPruneNs)
			os.Exit(1)
		}
	}
	campDesign, campSum := "", campaignSummary{}
	var survSum *surviveSummary
	if *campaignPath != "" {
		campDesign, campSum, survSum, err = loadCampaign(*campaignPath, *campaignFloor, *surviveFloor)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench2json:", err)
			os.Exit(1)
		}
	} else if *surviveFloor > 0 {
		fmt.Fprintln(os.Stderr, "bench2json: -survive-floor requires -campaign FILE")
		os.Exit(1)
	}
	if *out == "" {
		fmt.Printf("[checked %d benchmarks, no output file]\n", len(results))
		return
	}

	var rec record
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &rec); err != nil {
			fmt.Fprintf(os.Stderr, "bench2json: %s: %v\n", *out, err)
			os.Exit(1)
		}
	}
	migrate(&rec)

	dst := *section
	if dst == "auto" {
		if len(rec.Baseline) == 0 {
			dst = "baseline"
		} else {
			dst = "current"
		}
	}
	if len(results) > 0 {
		switch dst {
		case "baseline":
			rec.Baseline = results
		case "current":
			rec.Current = results
		default:
			fmt.Fprintf(os.Stderr, "bench2json: unknown -set %q\n", dst)
			os.Exit(1)
		}
		rec.Delta = deltas(rec.Baseline, rec.Current)
		rec.GoMaxProcs = maxProcs
		rec.NumCPU = runtime.NumCPU()
		rec.Lanes = lanes
		src := rec.Current
		if len(src) == 0 {
			src = rec.Baseline
		}
		rec.Efficiency = efficiencies(src)
		rec.EfficiencyNote = ""
		if len(rec.Efficiency) == 0 && hasWorkerSuites(src) {
			rec.EfficiencyNote = "not computed: every workers= lane was measured at gomaxprocs=1, which cannot exhibit parallel speedup"
		}
		if cs := cacheSummaryFrom(src); cs != nil {
			rec.Cache = cs
		}
		if ps := pruneSummaryFrom(src); ps != nil {
			rec.Prune = ps
		}
	}
	if campDesign != "" {
		if rec.Campaign == nil {
			rec.Campaign = make(map[string]campaignSummary)
		}
		rec.Campaign[campDesign] = campSum
		if survSum != nil {
			if rec.Survive == nil {
				rec.Survive = make(map[string]surviveSummary)
			}
			rec.Survive[campDesign] = *survSum
		}
	}

	data, err := json.MarshalIndent(&rec, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	fmt.Printf("[wrote %s: %d benchmarks into %q]\n", *out, len(results), dst)
}

// migrate rewrites records from before lane-keying: bare benchmark
// names gain the @pN suffix of the GOMAXPROCS the record says it was
// measured at, so old baselines keep pairing with new lanes instead of
// silently never matching again.
func migrate(rec *record) {
	procs := rec.GoMaxProcs
	if procs <= 0 {
		procs = 1
	}
	fix := func(m map[string]result) map[string]result {
		if m == nil {
			return nil
		}
		out := make(map[string]result, len(m))
		for name, r := range m {
			if !strings.Contains(name, "@p") {
				name = fmt.Sprintf("%s@p%d", name, procs)
			}
			out[name] = r
		}
		return out
	}
	rec.Baseline = fix(rec.Baseline)
	rec.Current = fix(rec.Current)
}

// loadCampaign reads a campaign report written by `nocsynth
// -campaign-json`, verifies it (zero invariant violations always;
// aggregate recoverability at least floor when floor > 0; the
// survivability contract when surviveFloor > 0), and returns its design
// name with the condensed summary. The survive summary is non-nil only
// for reports produced by a survivability>=1 run.
//
// surviveFloor asserts the zero-re-route guarantee the -survive k
// synthesis promises: the report must come from a k>=1 run, every
// composed link fault must be recoverable (one non-recoverable fault is
// a hard failure regardless of the fraction), and the fraction absorbed
// with zero re-routing must reach the floor.
func loadCampaign(path string, floor, surviveFloor float64) (string, campaignSummary, *surviveSummary, error) {
	var sum campaignSummary
	data, err := os.ReadFile(path)
	if err != nil {
		return "", sum, nil, err
	}
	// The shape mirrors fault.Campaign's JSON; only the aggregate fields
	// are read, so the per-state detail can evolve independently.
	var rep struct {
		Design              string            `json:"design"`
		Sampled             bool              `json:"sampled"`
		States              []json.RawMessage `json:"states"`
		InvariantViolations int               `json:"invariant_violations"`
		LinkFaults          int               `json:"link_faults"`
		Recovered           int               `json:"recovered"`
		ZeroReroute         int               `json:"zero_reroute"`
		Survivability       int               `json:"survivability"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return "", sum, nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Design == "" || len(rep.States) == 0 {
		return "", sum, nil, fmt.Errorf("%s: not a campaign report (no design or states)", path)
	}
	sum = campaignSummary{
		States:              len(rep.States),
		Sampled:             rep.Sampled,
		InvariantViolations: rep.InvariantViolations,
		LinkFaults:          rep.LinkFaults,
		RecoverableFrac:     1,
	}
	if rep.LinkFaults > 0 {
		sum.RecoverableFrac = round2(float64(rep.Recovered) / float64(rep.LinkFaults))
	}
	var surv *surviveSummary
	if rep.Survivability >= 1 {
		surv = &surviveSummary{
			Survivability:   rep.Survivability,
			LinkFaults:      rep.LinkFaults,
			ZeroReroute:     rep.ZeroReroute,
			ZeroRerouteFrac: 1,
		}
		if rep.LinkFaults > 0 {
			surv.ZeroRerouteFrac = round2(float64(rep.ZeroReroute) / float64(rep.LinkFaults))
		}
	}
	if rep.InvariantViolations != 0 {
		return "", sum, nil, fmt.Errorf("%s: %s violates the shutdown invariant in %d power state(s)",
			path, rep.Design, rep.InvariantViolations)
	}
	if floor > 0 && sum.RecoverableFrac < floor {
		return "", sum, nil, fmt.Errorf("%s: %s aggregate recoverability %.2f below the %.2f floor",
			path, rep.Design, sum.RecoverableFrac, floor)
	}
	if surviveFloor > 0 {
		switch {
		case surv == nil:
			return "", sum, nil, fmt.Errorf("%s: -survive-floor %.2f: report was not produced by a survivability>=1 run",
				path, surviveFloor)
		case rep.Recovered < rep.LinkFaults:
			return "", sum, nil, fmt.Errorf("%s: %s has %d non-recoverable link fault(s) — a survivability>=1 design must absorb every single-link fault",
				path, rep.Design, rep.LinkFaults-rep.Recovered)
		case surv.ZeroRerouteFrac < surviveFloor:
			return "", sum, nil, fmt.Errorf("%s: %s zero-re-route fraction %.2f below the %.2f floor (%d/%d faults needed re-routing)",
				path, rep.Design, surv.ZeroRerouteFrac, surviveFloor, rep.LinkFaults-rep.ZeroReroute, rep.LinkFaults)
		}
	}
	return rep.Design, sum, surv, nil
}

// parseBench extracts benchmark result lines from `go test -bench`
// output. Lines look like
//
//	BenchmarkRouteAll/d26_media-4   8527   118499 ns/op   56082 B/op   770 allocs/op
//
// where the -4 suffix is the GOMAXPROCS the lane ran under (omitted by
// go test when it is 1). The suffix becomes part of the key — the
// record key is `RouteAll/d26_media@p4` — so a `-cpu=1,2,4` run yields
// one record per lane instead of the lanes overwriting each other.
// The sorted set of distinct lanes is returned alongside.
func parseBench(r io.Reader) (map[string]result, []int, error) {
	out := make(map[string]result)
	laneSet := make(map[int]bool)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		procs := 1
		if i := strings.LastIndex(name, "-"); i > 0 {
			if p, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
				procs = p
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // header or summary line, not a result
		}
		res := result{Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			val, unit := fields[i], fields[i+1]
			switch unit {
			case "ns/op":
				res.NsPerOp, err = strconv.ParseFloat(val, 64)
			case "B/op":
				res.BytesPerOp, err = strconv.ParseInt(val, 10, 64)
			case "allocs/op":
				res.AllocsPerOp, err = strconv.ParseInt(val, 10, 64)
			case "pruned_frac":
				res.PrunedFrac, err = strconv.ParseFloat(val, 64)
			}
			if err != nil {
				return nil, nil, fmt.Errorf("parsing %q: %w", sc.Text(), err)
			}
		}
		out[fmt.Sprintf("%s@p%d", name, procs)] = res
		laneSet[procs] = true
	}
	var lanes []int
	for p := range laneSet {
		lanes = append(lanes, p)
	}
	sort.Ints(lanes)
	return out, lanes, sc.Err()
}

// splitKey parses a `suite/workers=K@pN` record key. ok is false for
// keys without a workers= leg.
func splitKey(key string) (suite string, workers, procs int, ok bool) {
	procs = 1
	if i := strings.LastIndex(key, "@p"); i >= 0 {
		p, err := strconv.Atoi(key[i+2:])
		if err != nil {
			return "", 0, 0, false
		}
		procs = p
		key = key[:i]
	}
	i := strings.LastIndex(key, "/workers=")
	if i < 0 {
		return "", 0, 0, false
	}
	w, err := strconv.Atoi(key[i+len("/workers="):])
	if err != nil {
		return "", 0, 0, false
	}
	return key[:i], w, procs, true
}

// hasWorkerSuites reports whether any record key follows the
// Suite/workers=K convention, at any lane.
func hasWorkerSuites(results map[string]result) bool {
	for key := range results {
		if _, _, _, ok := splitKey(key); ok {
			return true
		}
	}
	return false
}

// efficiencies pairs every `Suite/workers=K` family's workers=1 timing
// with its widest workers variant, within the widest GOMAXPROCS lane
// (>1) that measured both legs. Lanes at gomaxprocs=1 are ignored
// entirely: one schedulable CPU cannot exhibit parallel speedup, and a
// record pretending otherwise is how a scaling regression hides.
func efficiencies(results map[string]result) map[string]efficiency {
	type legs struct {
		w1     float64
		maxW   int
		maxWNs float64
	}
	// lane key: suite + procs
	type laneKey struct {
		suite string
		procs int
	}
	suiteLanes := make(map[laneKey]*legs)
	for key, r := range results {
		suite, w, procs, ok := splitKey(key)
		if !ok || procs <= 1 || r.NsPerOp <= 0 {
			continue
		}
		lk := laneKey{suite, procs}
		l := suiteLanes[lk]
		if l == nil {
			l = &legs{}
			suiteLanes[lk] = l
		}
		if w == 1 {
			l.w1 = r.NsPerOp
		}
		if w > l.maxW {
			l.maxW = w
			l.maxWNs = r.NsPerOp
		}
	}
	out := make(map[string]efficiency)
	for lk, l := range suiteLanes {
		if l.w1 <= 0 || l.maxW <= 1 {
			continue
		}
		if prev, ok := out[lk.suite]; ok && prev.Procs >= lk.procs {
			continue // keep the widest lane per suite
		}
		out[lk.suite] = efficiency{Workers: l.maxW, Procs: lk.procs, Speedup: round2(l.w1 / l.maxWNs)}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// cacheSummaryFrom extracts the SynthesizeCached/{cold,warm,oneisland}
// lanes from a result set and condenses them into ratios, using the
// widest GOMAXPROCS lane that measured both cold and warm. Speedups are
// cold/warm (the full-hit payoff) and cold/oneisland (what
// warm-starting saves a genuine one-island-edit miss). nil when the
// lanes are absent.
func cacheSummaryFrom(results map[string]result) *cacheSummary {
	perLane := make(map[int]*cacheSummary)
	for key, r := range results {
		procs := 1
		if i := strings.LastIndex(key, "@p"); i >= 0 {
			p, err := strconv.Atoi(key[i+2:])
			if err != nil {
				continue
			}
			procs = p
			key = key[:i]
		}
		lane, ok := strings.CutPrefix(key, "SynthesizeCached/")
		if !ok || r.NsPerOp <= 0 {
			continue
		}
		cs := perLane[procs]
		if cs == nil {
			cs = &cacheSummary{Procs: procs}
			perLane[procs] = cs
		}
		switch lane {
		case "cold":
			cs.ColdNs = r.NsPerOp
		case "warm":
			cs.WarmNs = r.NsPerOp
		case "oneisland":
			cs.OneIslandNs = r.NsPerOp
		}
	}
	var best *cacheSummary
	for _, cs := range perLane {
		if cs.ColdNs <= 0 || cs.WarmNs <= 0 {
			continue
		}
		if best == nil || cs.Procs > best.Procs {
			best = cs
		}
	}
	if best == nil {
		return nil
	}
	best.FullHitSpeedup = round2(best.ColdNs / best.WarmNs)
	if best.OneIslandNs > 0 {
		best.WarmStartSpeedup = round2(best.ColdNs / best.OneIslandNs)
	}
	return best
}

// pruneSummaryFrom extracts the SynthesizePrune/<space>/{prune,noprune}
// lanes from a result set and condenses them into the branch-and-bound
// speedup, using the widest GOMAXPROCS lane that measured both legs.
// nil when either leg is absent.
func pruneSummaryFrom(results map[string]result) *pruneSummary {
	perLane := make(map[int]*pruneSummary)
	for key, r := range results {
		procs := 1
		if i := strings.LastIndex(key, "@p"); i >= 0 {
			p, err := strconv.Atoi(key[i+2:])
			if err != nil {
				continue
			}
			procs = p
			key = key[:i]
		}
		rest, ok := strings.CutPrefix(key, "SynthesizePrune/")
		if !ok || r.NsPerOp <= 0 {
			continue
		}
		ps := perLane[procs]
		if ps == nil {
			ps = &pruneSummary{Procs: procs}
			perLane[procs] = ps
		}
		switch {
		case strings.HasSuffix(rest, "/prune"):
			ps.PruneNs = r.NsPerOp
			ps.PrunedFrac = r.PrunedFrac
		case strings.HasSuffix(rest, "/noprune"):
			ps.NoPruneNs = r.NsPerOp
		}
	}
	var best *pruneSummary
	for _, ps := range perLane {
		if ps.PruneNs <= 0 || ps.NoPruneNs <= 0 {
			continue
		}
		if best == nil || ps.Procs > best.Procs {
			best = ps
		}
	}
	if best == nil {
		return nil
	}
	best.Speedup = round2(best.NoPruneNs / best.PruneNs)
	return best
}

// assertFloor enforces the parallel-efficiency floor over the parsed
// input: every workers= suite must reach the given speedup, measured
// on a lane with more than one schedulable CPU. Callers guard the
// gomaxprocs=1 case before calling.
func assertFloor(results map[string]result, floor float64) error {
	effs := efficiencies(results)
	if len(effs) == 0 {
		return fmt.Errorf("-floor %.2f: no Suite/workers=K benchmarks measured at gomaxprocs>1 on stdin", floor)
	}
	for suite, e := range effs {
		if e.Speedup < floor {
			return fmt.Errorf("parallel efficiency floor violated: %s workers=%d@p%d speedup %.2f < %.2f",
				suite, e.Workers, e.Procs, e.Speedup, floor)
		}
	}
	return nil
}

// deltas pairs up benchmarks present in both sections.
func deltas(base, cur map[string]result) map[string]delta {
	if len(base) == 0 || len(cur) == 0 {
		return nil
	}
	out := make(map[string]delta)
	for name, b := range base {
		c, ok := cur[name]
		if !ok || c.NsPerOp == 0 { //noclint:ignore floateq exact zero ns/op guards the speedup division
			continue
		}
		d := delta{NsSpeedup: round2(b.NsPerOp / c.NsPerOp)}
		if c.AllocsPerOp > 0 {
			d.AllocsRatio = round2(float64(b.AllocsPerOp) / float64(c.AllocsPerOp))
		}
		out[name] = d
	}
	return out
}

func round2(x float64) float64 {
	return float64(int64(x*100+0.5)) / 100
}
