// Command nocsynth synthesizes a voltage-island-aware NoC topology for
// one of the bundled SoC benchmarks and reports the design-point
// trade-off curve, the selected topology, and its power breakdown.
//
//	nocsynth -list
//	nocsynth -bench d26_media -method logical -islands 6
//	nocsynth -bench d38_settop -islands 5 -method communication -dot top.dot -svg fp.svg
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"nocvi"
	"nocvi/internal/cliflags"
	"nocvi/internal/prof"
)

func main() {
	list := flag.Bool("list", false, "list available benchmarks and exit")
	benchName := flag.String("bench", "d26_media", "benchmark name")
	specPath := flag.String("spec", "", "load a custom SoC spec (JSON) instead of a benchmark")
	saveSpec := flag.String("save-spec", "", "dump the selected spec as JSON and exit (template for -spec)")
	jsonPath := flag.String("json", "", "write the selected topology as JSON to this file")
	verilogPath := flag.String("verilog", "", "write a structural Verilog netlist to this file")
	doVerify := flag.Bool("verify", false, "run the full design-rule sign-off on the selected point")
	doFault := flag.Bool("fault", false, "sweep single-link failures on the selected point")
	camp := cliflags.Campaign(flag.CommandLine)
	survive := cliflags.Survive(flag.CommandLine)
	relax := flag.Bool("relax", false, "retry an infeasible spec under the degradation ladder")
	method := flag.String("method", "logical", "island partitioning: logical|communication")
	islands := flag.Int("islands", 0, "voltage island count (0 = benchmark default)")
	alpha := flag.Float64("alpha", 0, "VCG bandwidth/latency weight in (0,1] (0 = default)")
	noMid := flag.Bool("no-mid", false, "forbid the intermediate NoC island")
	width := flag.Int("width", 32, "link data width in bits")
	node := flag.String("node", "65nm", "technology node: 90nm|65nm|45nm")
	dotPath := flag.String("dot", "", "write topology DOT to this file")
	svgPath := flag.String("svg", "", "write floorplan SVG to this file")
	workers := flag.Int("workers", 0, "design-point evaluation goroutines (0 = GOMAXPROCS, 1 = serial)")
	noPrune := flag.Bool("no-prune", false, "disable branch-and-bound pruning of the design-space sweep")
	cacheDir := flag.String("cache-dir", "", "content-addressed result cache directory (default $"+nocvi.CacheEnvDir+"; empty = off)")
	noCache := flag.Bool("no-cache", false, "disable the result cache even when configured")
	timeout := flag.Duration("timeout", 0, "abort synthesis after this duration (0 = none)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *list {
		for _, n := range nocvi.Benchmarks() {
			fmt.Println(n)
		}
		return
	}
	cfg := runConfig{
		benchName: *benchName, specPath: *specPath, saveSpec: *saveSpec,
		method: *method, islands: *islands, alpha: *alpha, mid: !*noMid,
		width: *width, node: *node, dotPath: *dotPath, svgPath: *svgPath, jsonPath: *jsonPath,
		verilogPath: *verilogPath, verify: *doVerify, fault: *doFault,
		camp: camp, survive: *survive,
		relax: *relax, workers: *workers, noPrune: *noPrune,
		cacheDir: *cacheDir, noCache: *noCache,
	}
	// Ctrl-C / SIGTERM (and -timeout) cancel the synthesis sweep.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nocsynth:", err)
		os.Exit(1)
	}
	err = run(ctx, cfg)
	if perr := stopProf(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "nocsynth:", err)
		os.Exit(1)
	}
}

type runConfig struct {
	benchName, specPath, saveSpec string
	method                        string
	islands                       int
	alpha                         float64
	mid                           bool
	width                         int
	node                          string
	fault                         bool
	camp                          *cliflags.CampaignFlags
	survive                       int
	relax                         bool
	dotPath, svgPath, jsonPath    string
	verilogPath                   string
	verify                        bool
	workers                       int
	noPrune                       bool
	cacheDir                      string
	noCache                       bool
}

func run(ctx context.Context, cfg runConfig) error {
	benchName, method, islands := cfg.benchName, cfg.method, cfg.islands
	alpha, mid, width := cfg.alpha, cfg.mid, cfg.width
	dotPath, svgPath := cfg.dotPath, cfg.svgPath

	var spec *nocvi.Spec
	var err error
	switch {
	case cfg.specPath != "":
		spec, err = nocvi.LoadSpec(cfg.specPath)
		if err == nil && islands > 0 {
			spec, err = nocvi.PartitionIslands(spec, nocvi.PartitionMethod(method), islands)
		}
	case islands == 0:
		spec, err = nocvi.Benchmark(benchName)
	default:
		var flat *nocvi.Spec
		flat, err = nocvi.BenchmarkFlat(benchName)
		if err == nil {
			spec, err = nocvi.PartitionIslands(flat, nocvi.PartitionMethod(method), islands)
		}
	}
	if err != nil {
		return err
	}
	if cfg.saveSpec != "" {
		if err := nocvi.SaveSpec(cfg.saveSpec, spec); err != nil {
			return err
		}
		fmt.Printf("[wrote %s]\n", cfg.saveSpec)
		return nil
	}

	lib := nocvi.DefaultLibrary()
	if cfg.node != "" && cfg.node != "65nm" {
		var err error
		lib, err = nocvi.LibraryForNode(cfg.node)
		if err != nil {
			return err
		}
	}
	lib.LinkWidthBits = width
	store, err := nocvi.ResolveCache(cfg.cacheDir, cfg.noCache)
	if err != nil {
		return err
	}
	res, err := nocvi.SynthesizeCached(ctx, store, spec, lib, nocvi.Options{
		Alpha:             alpha,
		AllowIntermediate: mid,
		Workers:           cfg.workers,
		Relax:             cfg.relax,
		NoPrune:           cfg.noPrune,
		Survivability:     cfg.survive,
	})
	if err != nil {
		return err
	}
	if store != nil {
		fmt.Printf("cache: %s\n", res.CacheStats)
	}

	fmt.Printf("%s: %d cores, %d flows, %d islands (%s), intra-island bandwidth %.0f%%\n",
		spec.Name, len(spec.Cores), len(spec.Flows), len(spec.Islands), method,
		nocvi.IntraIslandBandwidth(spec)*100)
	trunc := ""
	if res.Truncated {
		trunc = " (sweep truncated at the design-point cap)"
	}
	fmt.Printf("explored %d configurations, %d valid design points%s\n", res.Explored, res.Feasible, trunc)
	if pruned := res.PruneStats.Pruned(); pruned > 0 {
		fmt.Printf("branch-and-bound pruned %d of %d candidates (%d bound, %d staged)\n",
			pruned, res.Explored, res.PruneStats.BoundPruned, res.PruneStats.StagePruned)
	}
	if res.Partial {
		fmt.Printf("sweep stopped early (%s): reporting the best-so-far partial result\n", res.StopReason)
	}
	if len(res.Errors) > 0 {
		fmt.Fprintf(os.Stderr, "nocsynth: %d candidate(s) panicked and were skipped:\n", len(res.Errors))
		for i := range res.Errors {
			fmt.Fprintln(os.Stderr, "  "+res.Errors[i].Error())
		}
	}
	if len(res.Relaxations) > 0 {
		fmt.Printf("spec was infeasible as given; relaxations applied: %s\n",
			strings.Join(res.Relaxations, ", "))
	}
	if len(res.Points) == 0 {
		return fmt.Errorf("no design points found before the sweep stopped (%s); retry with a longer -timeout", res.StopReason)
	}
	fmt.Println()

	front := nocvi.ParetoFront(res)
	fmt.Println("pareto front (NoC dynamic power vs mean zero-load latency):")
	fmt.Println("   mW      cycles   switches  mid  links")
	for _, p := range front {
		dp := &res.Points[p.Index]
		fmt.Printf("%7.2f %9.2f %8d %4d %6d\n",
			p.X*1e3, p.Y, dp.Top.TotalSwitchCount(), dp.MidSwitches, len(dp.Top.Links))
	}

	best := res.Best()
	fmt.Println("\nselected (minimum power) design point:")
	fmt.Print(nocvi.TopologyText(best.Top))
	b := best.NoCPower
	fmt.Printf("\nNoC power: %.2f mW dynamic (switches %.2f, links %.2f, NIs %.2f, FIFOs %.2f), %.2f mW leakage\n",
		b.DynW()*1e3, b.SwitchDynW*1e3, b.LinkDynW*1e3, b.NIDynW*1e3, b.FIFODynW*1e3, b.LeakW()*1e3)
	fmt.Printf("NoC area: %.3f mm2 (%.2f%% of the SoC)\n",
		best.NoCAreaMM2, best.NoCAreaMM2/(best.NoCAreaMM2+spec.TotalCoreAreaMM2())*100)
	fmt.Printf("mean zero-load latency: %.2f cycles; wire-delay violations: %d\n",
		best.MeanLatencyCycles, best.WireViolations)

	if dotPath != "" {
		if err := os.WriteFile(dotPath, []byte(nocvi.TopologyDOT(best.Top)), 0o644); err != nil {
			return err
		}
		fmt.Printf("[wrote %s]\n", dotPath)
	}
	if svgPath != "" {
		if err := os.WriteFile(svgPath, []byte(nocvi.FloorplanSVG(best.Top, best.Placement)), 0o644); err != nil {
			return err
		}
		fmt.Printf("[wrote %s]\n", svgPath)
	}
	if cfg.verify {
		fmt.Println()
		fmt.Print(nocvi.Signoff(best).Format())
	}
	if cfg.fault {
		rep, err := nocvi.AnalyzeFaults(best.Top)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(rep.Format())
	}
	if cfg.camp.Wanted() {
		camp, err := nocvi.RunCampaignCached(store, best.Top, nocvi.CampaignOptions{
			MaxStates:     cfg.camp.States,
			Workers:       cfg.workers,
			Survivability: cfg.survive,
		})
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(camp.Format())
		if err := cfg.camp.WriteJSON(camp); err != nil {
			return err
		}
	}
	if cfg.verilogPath != "" {
		v, err := nocvi.GenerateVerilog(best.Top, nocvi.NetlistConfig{})
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.verilogPath, []byte(v), 0o644); err != nil {
			return err
		}
		fmt.Printf("[wrote %s]\n", cfg.verilogPath)
	}
	if cfg.jsonPath != "" {
		f, err := os.Create(cfg.jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := nocvi.WriteTopologyJSON(f, best.Top); err != nil {
			return err
		}
		fmt.Printf("[wrote %s]\n", cfg.jsonPath)
	}
	return nil
}
