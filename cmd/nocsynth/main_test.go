package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nocvi/internal/cliflags"
)

func TestRunBenchmarkWithArtifacts(t *testing.T) {
	dir := t.TempDir()
	cfg := runConfig{
		benchName: "d16_industrial",
		method:    "logical",
		mid:       true,
		width:     32,
		dotPath:   filepath.Join(dir, "t.dot"),
		svgPath:   filepath.Join(dir, "t.svg"),
		jsonPath:  filepath.Join(dir, "t.json"),
		verify:    true,
	}
	if err := run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"t.dot", "t.svg", "t.json"} {
		data, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if len(data) == 0 {
			t.Fatalf("%s empty", f)
		}
	}
}

func TestRunCampaign(t *testing.T) {
	dir := t.TempDir()
	cfg := runConfig{
		benchName: "d16_industrial",
		method:    "logical",
		mid:       true,
		width:     32,
		camp:      &cliflags.CampaignFlags{Run: true, JSON: filepath.Join(dir, "campaign.json")},
	}
	if err := run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(cfg.camp.JSON)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"invariant_violations": 0`) {
		t.Fatalf("campaign JSON missing a clean invariant count:\n%s", data)
	}
}

func TestRunVerilogExport(t *testing.T) {
	dir := t.TempDir()
	cfg := runConfig{
		benchName:   "d16_industrial",
		method:      "communication",
		islands:     3,
		mid:         true,
		width:       32,
		verilogPath: filepath.Join(dir, "noc.v"),
	}
	if err := run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(cfg.verilogPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "module noc_top") {
		t.Fatal("netlist missing noc_top")
	}
}

func TestRunSpecRoundTrip(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	// Dump a benchmark as a template.
	if err := run(context.Background(), runConfig{benchName: "d16_industrial", method: "logical", saveSpec: specPath, width: 32}); err != nil {
		t.Fatal(err)
	}
	// Load and synthesize it.
	if err := run(context.Background(), runConfig{specPath: specPath, method: "logical", mid: true, width: 32}); err != nil {
		t.Fatal(err)
	}
	// Repartition a loaded spec.
	if err := run(context.Background(), runConfig{specPath: specPath, method: "spectral", islands: 3, width: 32}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(context.Background(), runConfig{benchName: "missing", width: 32}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if err := run(context.Background(), runConfig{specPath: "/nonexistent/spec.json", width: 32}); err == nil {
		t.Fatal("missing spec accepted")
	}
	if err := run(context.Background(), runConfig{benchName: "d16_industrial", method: "bogus", islands: 3, width: 32}); err == nil {
		t.Fatal("unknown method accepted")
	}
}
