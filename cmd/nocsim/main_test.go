package main

import (
	"os"
	"strings"
	"testing"

	"nocvi/internal/cliflags"
)

func noCamp() *cliflags.CampaignFlags { return &cliflags.CampaignFlags{} }

func TestRunBasic(t *testing.T) {
	if err := run("d16_industrial", "logical", 0, 5000, 1.0, "", "", 0, false, noCamp(), 0, "", true); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithTrace(t *testing.T) {
	path := t.TempDir() + "/trace.csv"
	if err := run("d16_industrial", "logical", 0, 3000, 1.0, "", path, 0, false, noCamp(), 0, "", true); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "src,dst,") {
		t.Fatal("trace CSV malformed")
	}
}

func TestRunWithShutdown(t *testing.T) {
	// d26 logical-6: islands 0,1,4,5 are shutdownable (2,3 hold memory).
	if err := run("d26_media", "logical", 6, 5000, 1.0, "1", "", 0, false, noCamp(), 0, "", true); err != nil {
		t.Fatal(err)
	}
	if err := run("d26_media", "logical", 6, 5000, 2.0, "1,4", "", 0, false, noCamp(), 0, "", true); err != nil {
		t.Fatal(err)
	}
}

func TestRunCampaign(t *testing.T) {
	// Campaign mode replaces the single simulation: every power state is
	// checked with the simulator, and a clean design exits zero.
	camp := &cliflags.CampaignFlags{Run: true}
	if err := run("d16_industrial", "logical", 0, 1000, 1.0, "", "", 0, false, camp, 0, "", true); err != nil {
		t.Fatal(err)
	}
}

func TestRunCampaignJSONSurvivable(t *testing.T) {
	// A JSON path alone selects campaign mode; at -survive 1 the written
	// report must carry the zero-reroute contract for bench2json's
	// -survive-floor gate.
	path := t.TempDir() + "/camp.json"
	camp := &cliflags.CampaignFlags{JSON: path}
	if err := run("d16_industrial", "logical", 0, 1000, 1.0, "", "", 0, false, camp, 1, "", true); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"invariant_violations": 0`, `"survivability": 1`, `"zero_reroute"`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("campaign JSON missing %s:\n%s", want, data)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("missing", "logical", 0, 1000, 1, "", "", 0, false, noCamp(), 0, "", true); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if err := run("d26_media", "logical", 6, 1000, 1, "notanumber", "", 0, false, noCamp(), 0, "", true); err == nil {
		t.Fatal("bad island id accepted")
	}
	if err := run("d26_media", "logical", 6, 1000, 1, "99", "", 0, false, noCamp(), 0, "", true); err == nil {
		t.Fatal("out-of-range island accepted")
	}
	// Island 2 of the logical-6 partition holds memory: never gateable.
	if err := run("d26_media", "logical", 6, 1000, 1, "2", "", 0, false, noCamp(), 0, "", true); err == nil {
		t.Fatal("gating a non-shutdownable island accepted")
	}
}
