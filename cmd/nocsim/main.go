// Command nocsim synthesizes a benchmark's NoC and drives it with the
// cycle-level simulator, optionally power-gating voltage islands to
// demonstrate that the topology survives island shutdown.
//
//	nocsim -bench d26_media -islands 6 -duration 50000
//	nocsim -bench d26_media -islands 6 -off 2,3 -scale 2.0
//	nocsim -bench d26_media -campaign
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"nocvi"
	"nocvi/internal/cliflags"
)

func main() {
	benchName := flag.String("bench", "d26_media", "benchmark name")
	method := flag.String("method", "logical", "island partitioning: logical|communication")
	islands := flag.Int("islands", 0, "voltage island count (0 = benchmark default)")
	duration := flag.Float64("duration", 20000, "injection horizon in ns")
	scale := flag.Float64("scale", 1.0, "injection scale relative to spec bandwidths")
	offList := flag.String("off", "", "comma-separated island IDs to power gate")
	tracePath := flag.String("trace", "", "write a per-packet CSV trace to this file")
	workers := flag.Int("workers", 0, "design-point evaluation goroutines (0 = GOMAXPROCS, 1 = serial)")
	noPrune := flag.Bool("no-prune", false, "disable branch-and-bound pruning of the design-space sweep")
	camp := cliflags.Campaign(flag.CommandLine)
	survive := cliflags.Survive(flag.CommandLine)
	cacheDir := flag.String("cache-dir", "", "content-addressed result cache directory (default $"+nocvi.CacheEnvDir+"; empty = off)")
	noCache := flag.Bool("no-cache", false, "disable the result cache even when configured")
	flag.Parse()

	if err := run(*benchName, *method, *islands, *duration, *scale, *offList, *tracePath, *workers, *noPrune, camp, *survive, *cacheDir, *noCache); err != nil {
		fmt.Fprintln(os.Stderr, "nocsim:", err)
		os.Exit(1)
	}
}

func run(benchName, method string, islands int, duration, scale float64, offList, tracePath string, workers int, noPrune bool, camp *cliflags.CampaignFlags, survive int, cacheDir string, noCache bool) error {
	var spec *nocvi.Spec
	var err error
	if islands == 0 {
		spec, err = nocvi.Benchmark(benchName)
	} else {
		var flat *nocvi.Spec
		flat, err = nocvi.BenchmarkFlat(benchName)
		if err == nil {
			spec, err = nocvi.PartitionIslands(flat, nocvi.PartitionMethod(method), islands)
		}
	}
	if err != nil {
		return err
	}
	store, err := nocvi.ResolveCache(cacheDir, noCache)
	if err != nil {
		return err
	}
	res, err := nocvi.SynthesizeCached(context.Background(), store, spec, nocvi.DefaultLibrary(), nocvi.Options{AllowIntermediate: true, Workers: workers, NoPrune: noPrune, Survivability: survive})
	if err != nil {
		return err
	}
	if store != nil {
		fmt.Printf("cache: %s\n", res.CacheStats)
	}
	top := res.Best().Top

	if camp.Wanted() {
		// The simulator's view of shutdown: the campaign with SimVerify
		// checks delivery under every power state, not just the one -off
		// mask a single run exercises.
		rep, err := nocvi.RunCampaignCached(store, top, nocvi.CampaignOptions{
			MaxStates:     camp.States,
			SimVerify:     true,
			Workers:       workers,
			Survivability: survive,
		})
		if err != nil {
			return err
		}
		fmt.Print(rep.Format())
		if err := camp.WriteJSON(rep); err != nil {
			return err
		}
		if !rep.OK() {
			return fmt.Errorf("shutdown invariant violated in %d power state(s)", rep.InvariantViolations)
		}
		return nil
	}

	off := make([]bool, len(spec.Islands))
	if offList != "" {
		for _, tok := range strings.Split(offList, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || id < 0 || id >= len(spec.Islands) {
				return fmt.Errorf("bad island id %q", tok)
			}
			if !spec.Islands[id].Shutdownable {
				return fmt.Errorf("island %d (%s) is not shutdownable", id, spec.Islands[id].Name)
			}
			off[id] = true
		}
	}

	simCfg := nocvi.SimConfig{
		DurationNs:     duration,
		InjectionScale: scale,
		Off:            off,
	}
	var simRes *nocvi.SimResult
	if tracePath != "" {
		var tr *nocvi.PacketTrace
		simRes, tr, err = nocvi.SimulateTraced(top, simCfg)
		if err != nil {
			return err
		}
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := nocvi.WriteTraceCSV(f, tr, spec); err != nil {
			return err
		}
		fmt.Printf("[wrote %s: %d packets]\n", tracePath, len(tr.Packets))
	} else {
		simRes, err = nocvi.Simulate(top, simCfg)
		if err != nil {
			return err
		}
	}

	fmt.Printf("%s: simulated %.0f ns at %.2fx load", spec.Name, duration, scale)
	gated := []string{}
	for i, o := range off {
		if o {
			gated = append(gated, spec.Islands[i].Name)
		}
	}
	if len(gated) > 0 {
		fmt.Printf(", islands gated: %s", strings.Join(gated, ", "))
	}
	fmt.Println()
	fmt.Printf("packets: %d sent, %d delivered\n", simRes.Sent, simRes.Deliver)
	fmt.Printf("mean header latency: %.1f ns (%.2f cycles averaged per flow)\n",
		simRes.MeanLatencyNs, simRes.MeanFlowLatencyCycles)

	fmt.Println("\nper-flow (top 10 by bandwidth):")
	fmt.Println("flow                     MB/s    sent   mean ns    max ns   cycles")
	shown := 0
	for _, fs := range simRes.PerFlow {
		if !fs.Active {
			continue
		}
		if shown >= 10 {
			break
		}
		shown++
		fmt.Printf("%-10s -> %-10s %6.0f %7d %9.1f %9.1f %8.2f\n",
			spec.Cores[fs.Flow.Src].Name, spec.Cores[fs.Flow.Dst].Name,
			fs.Flow.BandwidthBps/1e6, fs.Sent, fs.MeanLatencyNs, fs.MaxLatencyNs,
			fs.MeanLatencyCycles)
	}

	if len(gated) > 0 {
		if err := nocvi.VerifyShutdown(top, off); err != nil {
			return fmt.Errorf("shutdown verification FAILED: %w", err)
		}
		onW, offW, frac, err := nocvi.ShutdownSavings(top, offList, off)
		if err != nil {
			return err
		}
		fmt.Printf("\nshutdown verified: all remaining traffic delivered\n")
		fmt.Printf("system power %.1f mW -> %.1f mW (%.1f%% saved)\n", onW*1e3, offW*1e3, frac*100)
	}
	return nil
}
