package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nocvi/internal/model"
)

func TestRunSingleExperiments(t *testing.T) {
	lib := model.Default65nm()
	// The cheap experiments run individually; fig2/fig3 and tab1 are
	// covered by the internal/experiments tests and the root benches.
	for _, exp := range []string{"fig4", "fig5", "tab2", "tab3", "cmp-mesh", "abl-mid", "abl-buffer", "abl-dvs"} {
		if err := run(exp, "", lib); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
}

func TestRunWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	lib := model.Default65nm()
	if err := run("fig4", dir, lib); err != nil {
		t.Fatal(err)
	}
	if err := run("fig5", dir, lib); err != nil {
		t.Fatal(err)
	}
	dot, err := os.ReadFile(filepath.Join(dir, "fig4_topology.dot"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(dot), "digraph") {
		t.Fatal("fig4 artifact not DOT")
	}
	svg, err := os.ReadFile(filepath.Join(dir, "fig5_floorplan.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(svg), "<svg") {
		t.Fatal("fig5 artifact not SVG")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("bogus", "", model.Default65nm()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
