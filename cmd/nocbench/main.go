// Command nocbench regenerates the paper's figures and tables from the
// reproduction. Each experiment is selected with -exp:
//
//	nocbench -exp fig2       island count vs NoC dynamic power (Fig. 2)
//	nocbench -exp fig3       island count vs zero-load latency (Fig. 3)
//	nocbench -exp fig4       the 6-VI logical topology, DOT + text (Fig. 4)
//	nocbench -exp fig5       its floorplan, SVG + ASCII (Fig. 5)
//	nocbench -exp tab1       shutdown-support overhead across the suite
//	nocbench -exp tab2       island-shutdown power savings scenarios
//	nocbench -exp campaign   power-state fault campaign across the suite
//	nocbench -exp survive    power/latency vs survivability degree k
//	nocbench -exp abl-alpha  ablation: VCG weight alpha
//	nocbench -exp abl-mid    ablation: intermediate NoC island on/off
//	nocbench -exp abl-width  ablation: link data width
//	nocbench -exp all        everything above
//
// With -out DIR the figure artifacts (DOT/SVG) are also written to
// files; tables always go to stdout.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"nocvi/internal/cache"
	"nocvi/internal/cliflags"
	"nocvi/internal/experiments"
	"nocvi/internal/model"
	"nocvi/internal/prof"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (fig2|fig3|fig4|fig5|tab1|tab2|campaign|survive|abl-alpha|abl-mid|abl-part|abl-buffer|abl-dvs|abl-width|all)")
	out := flag.String("out", "", "directory to write DOT/SVG artifacts to (optional)")
	width := flag.Int("width", 32, "NoC link data width in bits")
	workers := flag.Int("workers", 0, "design-point evaluation goroutines per synthesis (0 = GOMAXPROCS, 1 = serial)")
	noPrune := flag.Bool("no-prune", false, "disable branch-and-bound pruning of the design-space sweeps")
	survive := cliflags.Survive(flag.CommandLine)
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	cacheDir := flag.String("cache-dir", "", "content-addressed result cache directory (default $"+cache.EnvDir+"; empty = off)")
	noCache := flag.Bool("no-cache", false, "disable the result cache even when configured")
	flag.Parse()

	store, err := cache.Resolve(*cacheDir, *noCache)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nocbench:", err)
		os.Exit(1)
	}
	experiments.Cache = store

	experiments.Workers = *workers
	experiments.NoPrune = *noPrune
	experiments.Survive = *survive
	lib := model.Default65nm()
	lib.LinkWidthBits = *width
	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nocbench:", err)
		os.Exit(1)
	}
	start := time.Now()
	err = run(*exp, *out, lib)
	if store != nil {
		st := store.StoreStats()
		fmt.Printf("[cache: %d hits, %d misses, %d entries, %.1f MB]\n",
			st.Hits, st.Misses, st.Entries, float64(st.Bytes)/1e6)
	}
	if perr := stopProf(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "nocbench:", err)
		os.Exit(1)
	}
	fmt.Printf("\n[%s completed in %v]\n", *exp, time.Since(start).Round(time.Millisecond))
}

func run(exp, out string, lib *model.Library) error {
	all := exp == "all"
	if all || exp == "fig2" || exp == "fig3" {
		pts, err := experiments.Curves(lib, nil)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatCurves(pts))
	}
	if all || exp == "fig4" {
		dot, txt, err := experiments.Fig4(lib)
		if err != nil {
			return err
		}
		fmt.Println("Fig.4 — synthesized topology, D26 with 6 logical VIs")
		fmt.Println(txt)
		if err := save(out, "fig4_topology.dot", dot); err != nil {
			return err
		}
	}
	if all || exp == "fig5" {
		svg, txt, err := experiments.Fig5(lib)
		if err != nil {
			return err
		}
		fmt.Println("Fig.5 — floorplan, D26 with 6 logical VIs")
		fmt.Println(txt)
		if err := save(out, "fig5_floorplan.svg", svg); err != nil {
			return err
		}
	}
	if all || exp == "tab1" {
		rows, err := experiments.Tab1(lib)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatTab1(rows))
	}
	if all || exp == "tab2" {
		rows, err := experiments.Tab2(lib)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatTab2(rows))
	}
	if all || exp == "tab3" {
		rows, err := experiments.Tab3(lib)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatTab3(rows))
	}
	if all || exp == "load" {
		rows, err := experiments.LoadSweep(lib, nil)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatLoadSweep(rows))
	}
	if all || exp == "cmp-mesh" {
		rows, err := experiments.CmpMesh(lib)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatCmpMesh(rows))
	}
	if all || exp == "cmp-fault" {
		rows, err := experiments.CmpFault(lib)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatCmpFault(rows))
	}
	if all || exp == "campaign" {
		rows, err := experiments.CampaignSweep(lib)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatCampaign(rows))
	}
	if all || exp == "survive" {
		rows, err := experiments.SurviveSweep(lib, nil)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatSurvive(rows))
	}
	if all || exp == "abl-alpha" {
		rows, err := experiments.AblAlpha(lib)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatAblation("Ablation — VCG weight alpha (D26, single island: partitioning-dominated)", rows))
	}
	if all || exp == "abl-mid" {
		rows, err := experiments.AblMid(lib)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatAblation("Ablation — intermediate NoC island (D26, 26 VIs)", rows))
	}
	if all || exp == "abl-part" {
		rows, err := experiments.AblPartitioner(lib)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatAblation("Ablation — greedy vs spectral communication partitioning (D26)", rows))
	}
	if all || exp == "abl-buffer" {
		rows, err := experiments.AblBuffer(lib)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatAblation("Ablation — wormhole buffer depth (D26, flit-level engine; latency in cycles, links column = packets delivered)", rows))
	}
	if all || exp == "abl-dvs" {
		rows, err := experiments.AblDVS(lib)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatAblation("Ablation — per-island NoC supply scaling (D26, 6 logical VIs)", rows))
	}
	if all || exp == "abl-width" {
		rows, err := experiments.AblWidth(lib)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatAblation("Ablation — link data width (D26, 6 logical VIs)", rows))
	}
	switch exp {
	case "all", "fig2", "fig3", "fig4", "fig5", "tab1", "tab2", "tab3", "load", "cmp-mesh", "cmp-fault", "campaign", "survive", "abl-alpha", "abl-mid", "abl-part", "abl-buffer", "abl-dvs", "abl-width":
		return nil
	}
	return fmt.Errorf("unknown experiment %q", exp)
}

func save(dir, name, content string) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		return err
	}
	fmt.Printf("[wrote %s]\n", path)
	return nil
}
