// Command noclint runs the project's static-analysis suite
// (internal/analysis) over the module: maprange, floateq, errdrop,
// wallclock, bannedcall, goroutineleak and scratchcopy — the checks
// that keep the synthesis engine deterministic and its hot paths free
// of known regressions.
//
// Usage:
//
//	noclint [-C dir] [-tests] [-list] [patterns...]
//
// Patterns follow the go tool's directory forms ("./...", the default,
// or "./internal/core"). Diagnostics print one per line as
//
//	file:line:col: analyzer: message
//
// with paths relative to the module root. The exit status is 0 when the
// tree is clean, 1 when findings were reported, and 2 when the tree
// could not be loaded (parse or type error). Findings are suppressed in
// source with `//noclint:ignore <analyzer> <reason>` on the flagged
// line or the line above.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"nocvi/internal/analysis"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

func run(stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("noclint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	chdir := fs.String("C", ".", "module root to analyze (directory containing go.mod)")
	tests := fs.Bool("tests", false, "also analyze in-package _test.go files")
	list := fs.Bool("list", false, "list the registered analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var out bytes.Buffer
	if *list {
		for _, a := range analysis.Analyzers {
			fmt.Fprintf(&out, "%s: %s\n", a.Name, a.Doc)
		}
		return emit(stdout, stderr, &out, 0)
	}
	loader, err := analysis.NewLoader(*chdir)
	if err != nil {
		fmt.Fprintf(&out, "noclint: %v\n", err)
		return emit(stderr, stderr, &out, 2)
	}
	loader.IncludeTests = *tests
	pkgs, err := loader.LoadPatterns(fs.Args()...)
	if err != nil {
		fmt.Fprintf(&out, "noclint: %v\n", err)
		return emit(stderr, stderr, &out, 2)
	}
	diags := analysis.Run(pkgs, analysis.Analyzers)
	for _, d := range diags {
		name := d.Pos.Filename
		if rel, err := filepath.Rel(loader.Root, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
		fmt.Fprintf(&out, "%s:%d:%d: %s: %s\n", name, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	code := 0
	if len(diags) > 0 {
		code = 1
	}
	return emit(stdout, stderr, &out, code)
}

// emit flushes the buffered report to w; a failed flush trumps the
// analysis exit code, since a truncated report must not look clean.
func emit(w, stderr io.Writer, out *bytes.Buffer, code int) int {
	if _, err := w.Write(out.Bytes()); err != nil {
		// besteffort: last-resort note; if stderr is also broken there
		// is nothing left to report to.
		fmt.Fprintf(stderr, "noclint: writing report: %v\n", err)
		return 2
	}
	return code
}
