// Command noclint runs the project's static-analysis suite
// (internal/analysis) over the module: maprange, floateq, errdrop,
// wallclock, bannedcall, goroutineleak, scratchcopy and sortstability —
// the checks that keep the synthesis engine deterministic and its hot
// paths free of known regressions.
//
// Usage:
//
//	noclint [-C dir] [-tests] [-unused] [-list] [-cache-dir dir] [-no-cache] [patterns...]
//
// Patterns follow the go tool's directory forms ("./...", the default,
// or "./internal/core"). Diagnostics print one per line as
//
//	file:line:col: analyzer: message
//
// with paths relative to the module root. The exit status is 0 when the
// tree is clean, 1 when findings were reported, and 2 when the tree
// could not be loaded (parse or type error). Findings are suppressed in
// source with `//noclint:ignore <analyzer> <reason>` on the flagged
// line or the line above; -unused additionally reports suppressions
// that no longer suppress anything (warnings only — they never affect
// the exit status).
//
// With a cache directory configured (-cache-dir or $NOCVI_CACHE_DIR),
// the whole run's report is cached keyed by a digest of every .go file
// and go.mod under the module root plus the flags and analyzer suite,
// so a re-lint of an unchanged tree replays instantly.
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"nocvi/internal/analysis"
	"nocvi/internal/cache"
	"nocvi/internal/specio"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

func run(stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("noclint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	chdir := fs.String("C", ".", "module root to analyze (directory containing go.mod)")
	tests := fs.Bool("tests", false, "also analyze in-package _test.go files")
	unused := fs.Bool("unused", false, "warn about //noclint:ignore directives that suppress nothing")
	list := fs.Bool("list", false, "list the registered analyzers and exit")
	cacheDir := fs.String("cache-dir", "", "content-addressed result cache directory (default $"+cache.EnvDir+"; empty = off)")
	noCache := fs.Bool("no-cache", false, "disable the result cache even when configured")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var out bytes.Buffer
	if *list {
		for _, a := range analysis.Analyzers {
			fmt.Fprintf(&out, "%s: %s\n", a.Name, a.Doc)
		}
		return emit(stdout, stderr, &out, 0)
	}
	loader, err := analysis.NewLoader(*chdir)
	if err != nil {
		fmt.Fprintf(&out, "noclint: %v\n", err)
		return emit(stderr, stderr, &out, 2)
	}
	loader.IncludeTests = *tests

	store, err := cache.Resolve(*cacheDir, *noCache)
	if err != nil {
		fmt.Fprintf(&out, "noclint: %v\n", err)
		return emit(stderr, stderr, &out, 2)
	}
	var key specio.Digest
	if store != nil {
		key, err = runKey(loader.Root, *tests, *unused, fs.Args())
		if err != nil {
			// besteffort: an unreadable tree will fail loudly in the
			// loader below; here it only costs the cache probe.
			store = nil
		} else if blob, ok := store.Get(cache.ClassLint, key); ok && len(blob) >= 1 && blob[0] < 2 {
			out.Write(blob[1:])
			return emit(stdout, stderr, &out, int(blob[0]))
		}
	}

	pkgs, err := loader.LoadPatterns(fs.Args()...)
	if err != nil {
		fmt.Fprintf(&out, "noclint: %v\n", err)
		return emit(stderr, stderr, &out, 2)
	}
	diags, stale := analysis.RunUnused(pkgs, analysis.Analyzers)
	rel := func(name string) string {
		if r, err := filepath.Rel(loader.Root, name); err == nil && !strings.HasPrefix(r, "..") {
			return r
		}
		return name
	}
	for _, d := range diags {
		fmt.Fprintf(&out, "%s:%d:%d: %s: %s\n", rel(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if *unused {
		for _, u := range stale {
			fmt.Fprintf(&out, "%s:%d: unused //noclint:ignore directive for %s (suppresses nothing; remove it)\n",
				rel(u.Pos.Filename), u.Pos.Line, u.Analyzer)
		}
	}
	code := 0
	if len(diags) > 0 {
		code = 1
	}
	if store != nil {
		// besteffort: a failed publish only costs a future re-lint.
		store.Put(cache.ClassLint, key, append([]byte{byte(code)}, out.Bytes()...))
	}
	return emit(stdout, stderr, &out, code)
}

// runKey digests every .go file and go.mod under root (lexical WalkDir
// order) together with the flags, patterns and analyzer suite: any
// source edit, flag change, or analyzer addition changes the key.
func runKey(root string, tests, unused bool, patterns []string) (specio.Digest, error) {
	h := sha256.New()
	// besteffort: hash.Hash writes are documented never to fail.
	fmt.Fprintf(h, "nocvi-lint-v1|tests=%t|unused=%t|patterns=%q|", tests, unused, patterns)
	for _, a := range analysis.Analyzers {
		// besteffort: hash.Hash writes are documented never to fail.
		fmt.Fprintf(h, "%s|", a.Name)
	}
	err := fs.WalkDir(os.DirFS(root), ".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != "." && strings.HasPrefix(name, ".") {
				return fs.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") && name != "go.mod" {
			return nil
		}
		data, err := os.ReadFile(filepath.Join(root, path))
		if err != nil {
			return err
		}
		// besteffort: hash.Hash writes are documented never to fail.
		fmt.Fprintf(h, "%s|", path)
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], uint64(len(data)))
		// besteffort: hash.Hash writes are documented never to fail.
		h.Write(n[:])
		// besteffort: hash.Hash writes are documented never to fail.
		h.Write(data)
		return nil
	})
	var key specio.Digest
	if err != nil {
		return key, err
	}
	copy(key[:], h.Sum(nil))
	return key, nil
}

// emit flushes the buffered report to w; a failed flush trumps the
// analysis exit code, since a truncated report must not look clean.
func emit(w, stderr io.Writer, out *bytes.Buffer, code int) int {
	if _, err := w.Write(out.Bytes()); err != nil {
		// besteffort: last-resort note; if stderr is also broken there
		// is nothing left to report to.
		fmt.Fprintf(stderr, "noclint: writing report: %v\n", err)
		return 2
	}
	return code
}
