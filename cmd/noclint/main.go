// Command noclint runs the project's static-analysis suite
// (internal/analysis) over the module: maprange, floateq, errdrop,
// wallclock, bannedcall, goroutineleak, scratchcopy, sortstability,
// detflow and poolescape — the checks that keep the synthesis engine
// deterministic and its hot paths free of known regressions.
//
// Usage:
//
//	noclint [-C dir] [-tests] [-unused] [-list] [-json] [-workers n]
//	        [-why file:line] [-surface check|update] [-surface-file path]
//	        [-cache-dir dir] [-no-cache] [patterns...]
//
// Patterns follow the go tool's directory forms ("./...", the default,
// or "./internal/core"). Diagnostics print one per line as
//
//	file:line:col: analyzer: message
//
// with paths relative to the module root; -json switches to a
// machine-readable report. The exit status is 0 when the tree is clean,
// 1 when findings were reported, and 2 when the tree could not be
// loaded (parse or type error). Findings are suppressed in source with
// `//noclint:ignore <analyzer> <reason>` on the flagged line or the
// line above; -unused additionally reports suppressions that no longer
// suppress anything, calling out misplaced ones (the line has findings,
// but from a different analyzer) explicitly.
//
// The scoped analyzers (wallclock, maprange, bannedcall) apply only to
// functions reachable from the engine roots (see analysis.EngineRoots),
// derived from the interprocedural call graph; -why file:line prints
// the root→function call chain that put a position in scope.
//
// -surface check recomputes the engine-surface digest — a hash of the
// reachable hot-path source — and compares it against the checked-in
// sum file, demanding a cache.EngineVersion bump when the surface
// moved; -surface update re-records the file.
//
// With a cache directory configured (-cache-dir or $NOCVI_CACHE_DIR),
// the whole run's report is cached keyed by a digest of every .go file
// and go.mod under the module root plus the flags and analyzer suite,
// so a re-lint of an unchanged tree replays instantly. -workers only
// changes scheduling, never the report (pinned by test), so it stays
// out of the key.
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"nocvi/internal/analysis"
	"nocvi/internal/cache"
	"nocvi/internal/specio"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

func run(stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("noclint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	chdir := fs.String("C", ".", "module root to analyze (directory containing go.mod)")
	tests := fs.Bool("tests", false, "also analyze in-package _test.go files")
	unused := fs.Bool("unused", false, "warn about //noclint:ignore directives that suppress nothing")
	list := fs.Bool("list", false, "list the registered analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit the report as JSON (diagnostics + unused directives)")
	workers := fs.Int("workers", 0, "analyzer worker pool width (0 = GOMAXPROCS); never affects the report")
	why := fs.String("why", "", "explain how the function at file:line is reachable from an engine root, then exit")
	surface := fs.String("surface", "", `engine-surface digest mode: "check" or "update"`)
	surfaceFile := fs.String("surface-file", filepath.Join("artifacts", "engine-surface.sum"), "surface sum file, relative to the module root")
	cacheDir := fs.String("cache-dir", "", "content-addressed result cache directory (default $"+cache.EnvDir+"; empty = off)")
	noCache := fs.Bool("no-cache", false, "disable the result cache even when configured")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var out bytes.Buffer
	if *list {
		for _, a := range analysis.Analyzers {
			fmt.Fprintf(&out, "%s: %s\n", a.Name, a.Doc)
		}
		return emit(stdout, stderr, &out, 0)
	}
	loader, err := analysis.NewLoader(*chdir)
	if err != nil {
		fmt.Fprintf(&out, "noclint: %v\n", err)
		return emit(stderr, stderr, &out, 2)
	}
	loader.IncludeTests = *tests
	rel := func(name string) string {
		if r, err := filepath.Rel(loader.Root, name); err == nil && !strings.HasPrefix(r, "..") {
			return r
		}
		return name
	}

	if *why != "" {
		return runWhy(stdout, stderr, &out, loader, rel, *why, fs.Args())
	}
	if *surface != "" {
		return runSurface(stdout, stderr, &out, loader, *surface, filepath.Join(loader.Root, *surfaceFile))
	}

	store, err := cache.Resolve(*cacheDir, *noCache)
	if err != nil {
		fmt.Fprintf(&out, "noclint: %v\n", err)
		return emit(stderr, stderr, &out, 2)
	}
	var key specio.Digest
	if store != nil {
		key, err = runKey(loader.Root, *tests, *unused, *jsonOut, fs.Args())
		if err != nil {
			// besteffort: an unreadable tree will fail loudly in the
			// loader below; here it only costs the cache probe.
			store = nil
		} else if blob, ok := store.Get(cache.ClassLint, key); ok && len(blob) >= 1 && blob[0] < 2 {
			out.Write(blob[1:])
			return emit(stdout, stderr, &out, int(blob[0]))
		}
	}

	pkgs, err := loader.LoadPatterns(fs.Args()...)
	if err != nil {
		fmt.Fprintf(&out, "noclint: %v\n", err)
		return emit(stderr, stderr, &out, 2)
	}
	scope := analysis.DeriveScope(pkgs)
	if scope.Empty() {
		// besteffort: an advisory note; a broken stderr has nowhere to complain to.
		fmt.Fprintf(stderr, "noclint: note: no engine root (%s) in the loaded packages; the scoped analyzers (wallclock, maprange, bannedcall) are silent in this run\n",
			strings.Join(analysis.EngineRoots, ", "))
	}
	diags, stale := analysis.RunWith(pkgs, analysis.Analyzers, analysis.RunOptions{Workers: *workers, Scope: scope})
	if *jsonOut {
		writeJSON(&out, rel, diags, stale, *unused)
	} else {
		for _, d := range diags {
			fmt.Fprintf(&out, "%s:%d:%d: %s: %s\n", rel(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
		if *unused {
			for _, u := range stale {
				if len(u.Misplaced) > 0 {
					fmt.Fprintf(&out, "%s:%d: misplaced //noclint:ignore directive for %s (the line's findings belong to %s)\n",
						rel(u.Pos.Filename), u.Pos.Line, u.Analyzer, strings.Join(u.Misplaced, ", "))
					continue
				}
				fmt.Fprintf(&out, "%s:%d: unused //noclint:ignore directive for %s (suppresses nothing; remove it)\n",
					rel(u.Pos.Filename), u.Pos.Line, u.Analyzer)
			}
		}
	}
	code := 0
	if len(diags) > 0 {
		code = 1
	}
	if store != nil {
		// besteffort: a failed publish only costs a future re-lint.
		store.Put(cache.ClassLint, key, append([]byte{byte(code)}, out.Bytes()...))
	}
	return emit(stdout, stderr, &out, code)
}

// jsonDiagnostic is one finding in -json output.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonUnused is one stale or misplaced suppression in -json output.
type jsonUnused struct {
	File      string   `json:"file"`
	Line      int      `json:"line"`
	Analyzer  string   `json:"analyzer"`
	Misplaced []string `json:"misplaced,omitempty"`
}

// jsonReport is the top-level -json document.
type jsonReport struct {
	Diagnostics []jsonDiagnostic `json:"diagnostics"`
	Unused      []jsonUnused     `json:"unused,omitempty"`
}

func writeJSON(out *bytes.Buffer, rel func(string) string, diags []analysis.Diagnostic, stale []analysis.UnusedDirective, unused bool) {
	report := jsonReport{Diagnostics: []jsonDiagnostic{}}
	for _, d := range diags {
		report.Diagnostics = append(report.Diagnostics, jsonDiagnostic{
			File: rel(d.Pos.Filename), Line: d.Pos.Line, Col: d.Pos.Column,
			Analyzer: d.Analyzer, Message: d.Message,
		})
	}
	if unused {
		for _, u := range stale {
			report.Unused = append(report.Unused, jsonUnused{
				File: rel(u.Pos.Filename), Line: u.Pos.Line, Analyzer: u.Analyzer, Misplaced: u.Misplaced,
			})
		}
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	// besteffort: encoding a plain struct to a bytes.Buffer cannot fail.
	enc.Encode(report)
}

// runWhy loads the patterns, derives the scope and explains the
// position's reachability. Exit codes: 0 reachable (chain printed),
// 1 known but unreachable, 2 unparseable position or no enclosing
// function.
func runWhy(stdout, stderr io.Writer, out *bytes.Buffer, loader *analysis.Loader, rel func(string) string, pos string, patterns []string) int {
	file, lineStr, ok := strings.Cut(pos, ":")
	line, err := strconv.Atoi(strings.TrimSpace(lineStr))
	if !ok || err != nil || line <= 0 {
		fmt.Fprintf(out, "noclint: -why wants file:line, got %q\n", pos)
		return emit(stderr, stderr, out, 2)
	}
	if !filepath.IsAbs(file) {
		file = filepath.Join(loader.Root, file)
	}
	pkgs, err := loader.LoadPatterns(patterns...)
	if err != nil {
		fmt.Fprintf(out, "noclint: %v\n", err)
		return emit(stderr, stderr, out, 2)
	}
	scope := analysis.DeriveScope(pkgs)
	chain, known, reachable := scope.Why(file, line, rel)
	switch {
	case !known:
		fmt.Fprintf(out, "noclint: no analyzed function encloses %s:%d (is the file inside the loaded patterns?)\n", rel(file), line)
		return emit(stderr, stderr, out, 2)
	case !reachable:
		fmt.Fprintf(out, "%s at %s:%d is not reachable from any engine root (%s); the scoped analyzers do not apply there\n",
			chain, rel(file), line, strings.Join(analysis.EngineRoots, ", "))
		return emit(stdout, stderr, out, 1)
	}
	fmt.Fprintf(out, "%s:%d is on the engine hot path:\n%s", rel(file), line, chain)
	return emit(stdout, stderr, out, 0)
}

// runSurface recomputes the engine-surface digest over the whole module
// and checks or updates the sum file. Exit codes: 0 ok/updated, 1 gate
// failure (check mode), 2 load or io error.
func runSurface(stdout, stderr io.Writer, out *bytes.Buffer, loader *analysis.Loader, mode, sumPath string) int {
	if mode != "check" && mode != "update" {
		fmt.Fprintf(out, "noclint: -surface wants \"check\" or \"update\", got %q\n", mode)
		return emit(stderr, stderr, out, 2)
	}
	// The surface is a whole-module property; partial patterns would
	// digest a partial engine.
	pkgs, err := loader.LoadPatterns("./...")
	if err != nil {
		fmt.Fprintf(out, "noclint: %v\n", err)
		return emit(stderr, stderr, out, 2)
	}
	current, err := analysis.ComputeSurface(pkgs)
	if err != nil {
		fmt.Fprintf(out, "noclint: computing engine surface: %v\n", err)
		return emit(stderr, stderr, out, 2)
	}
	if mode == "update" {
		if err := os.MkdirAll(filepath.Dir(sumPath), 0o755); err != nil {
			fmt.Fprintf(out, "noclint: %v\n", err)
			return emit(stderr, stderr, out, 2)
		}
		if err := os.WriteFile(sumPath, []byte(current.Format()), 0o644); err != nil {
			fmt.Fprintf(out, "noclint: %v\n", err)
			return emit(stderr, stderr, out, 2)
		}
		fmt.Fprintf(out, "recorded engine surface: version %d, %d hot-path functions\n", current.EngineVersion, current.Functions)
		return emit(stdout, stderr, out, 0)
	}
	data, err := os.ReadFile(sumPath)
	if err != nil {
		fmt.Fprintf(out, "noclint: engine-surface gate: %v; run noclint -surface update to record the baseline\n", err)
		return emit(stdout, stderr, out, 1)
	}
	recorded, err := analysis.ParseSurfaceFile(data)
	if err != nil {
		fmt.Fprintf(out, "noclint: engine-surface gate: %v; run noclint -surface update to re-record\n", err)
		return emit(stdout, stderr, out, 1)
	}
	if err := analysis.CheckSurface(current, recorded); err != nil {
		fmt.Fprintf(out, "noclint: engine-surface gate: %v\n", err)
		return emit(stdout, stderr, out, 1)
	}
	fmt.Fprintf(out, "engine surface unchanged: version %d, %d hot-path functions\n", current.EngineVersion, current.Functions)
	return emit(stdout, stderr, out, 0)
}

// runKey digests every .go file and go.mod under root (lexical WalkDir
// order) together with the flags, patterns and analyzer suite: any
// source edit, flag change, or analyzer addition changes the key.
// -workers is deliberately absent: the report is byte-identical at
// every pool width.
func runKey(root string, tests, unused, jsonOut bool, patterns []string) (specio.Digest, error) {
	h := sha256.New()
	// besteffort: hash.Hash writes are documented never to fail.
	fmt.Fprintf(h, "nocvi-lint-v2|tests=%t|unused=%t|json=%t|patterns=%q|", tests, unused, jsonOut, patterns)
	for _, a := range analysis.Analyzers {
		// besteffort: hash.Hash writes are documented never to fail.
		fmt.Fprintf(h, "%s|", a.Name)
	}
	err := fs.WalkDir(os.DirFS(root), ".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != "." && strings.HasPrefix(name, ".") {
				return fs.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") && name != "go.mod" {
			return nil
		}
		data, err := os.ReadFile(filepath.Join(root, path))
		if err != nil {
			return err
		}
		// besteffort: hash.Hash writes are documented never to fail.
		fmt.Fprintf(h, "%s|", path)
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], uint64(len(data)))
		// besteffort: hash.Hash writes are documented never to fail.
		h.Write(n[:])
		// besteffort: hash.Hash writes are documented never to fail.
		h.Write(data)
		return nil
	})
	var key specio.Digest
	if err != nil {
		return key, err
	}
	copy(key[:], h.Sum(nil))
	return key, nil
}

// emit flushes the buffered report to w; a failed flush trumps the
// analysis exit code, since a truncated report must not look clean.
func emit(w, stderr io.Writer, out *bytes.Buffer, code int) int {
	if _, err := w.Write(out.Bytes()); err != nil {
		// besteffort: last-resort note; if stderr is also broken there
		// is nothing left to report to.
		fmt.Fprintf(stderr, "noclint: writing report: %v\n", err)
		return 2
	}
	return code
}
