package main

import (
	"bytes"
	"strings"
	"testing"

	"nocvi/internal/analysis"
)

func runNoclint(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(&out, &errb, args)
	return out.String(), errb.String(), code
}

// TestFixtureModuleEndToEnd drives the full pipeline — module
// discovery, source type-checking, all five analyzers, suppression,
// reporting — over the fixture module and pins one finding per
// analyzer.
func TestFixtureModuleEndToEnd(t *testing.T) {
	out, errOut, code := runNoclint(t, "-C", "testdata/fixturemod", "./...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (findings)\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	for _, frag := range []string{
		"core/core.go:15:2: maprange: range over map m",
		"core/core.go:33:9: bannedcall: call to fmt.Sprintf is banned in package core",
		"core/core.go:38:9: wallclock: time.Now in a synthesis-path package",
		"core/core.go:43:2: errdrop: error result of check is silently discarded",
		"core/core.go:50:11: floateq: == between float operands",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q\ngot:\n%s", frag, out)
		}
	}
	if strings.Contains(out, "core/core.go:55") {
		t.Errorf("suppressed floateq finding leaked into output:\n%s", out)
	}
	if got, want := strings.Count(strings.TrimSpace(out), "\n")+1, 5; got != want {
		t.Errorf("finding count = %d, want %d\n%s", got, want, out)
	}
}

// TestCleanPackageExitsZero pins the success path.
func TestCleanPackageExitsZero(t *testing.T) {
	out, errOut, code := runNoclint(t, "-C", "testdata/fixturemod", "./clean")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	if out != "" {
		t.Fatalf("clean run should print nothing, got:\n%s", out)
	}
}

// TestIncludeTestsFlag proves -tests pulls _test.go files into scope:
// the fixture's test file reads the wall clock.
func TestIncludeTestsFlag(t *testing.T) {
	out, _, code := runNoclint(t, "-C", "testdata/fixturemod", "./core")
	if code != 1 || strings.Contains(out, "core_test.go") {
		t.Fatalf("without -tests, core_test.go must stay out of scope (code %d):\n%s", code, out)
	}
	out, _, code = runNoclint(t, "-C", "testdata/fixturemod", "-tests", "./core")
	if code != 1 || !strings.Contains(out, "core_test.go") {
		t.Fatalf("with -tests, the wallclock finding in core_test.go must appear (code %d):\n%s", code, out)
	}
}

// TestListFlag pins the analyzer inventory.
func TestListFlag(t *testing.T) {
	out, _, code := runNoclint(t, "-list")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, name := range []string{"maprange:", "floateq:", "errdrop:", "wallclock:", "bannedcall:"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %q:\n%s", name, out)
		}
	}
}

// TestMissingModuleExitsTwo pins the load-error path.
func TestMissingModuleExitsTwo(t *testing.T) {
	_, errOut, code := runNoclint(t, "-C", "testdata/nonexistent", "./...")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errOut, "noclint:") {
		t.Fatalf("stderr should carry the load error, got:\n%s", errOut)
	}
}

// TestRunIsOrderDeterministic pins that the worker-pool analyzer pass
// yields byte-identical reports across repeated runs: the final sort in
// analysis.Run, not goroutine scheduling, decides the output order.
func TestRunIsOrderDeterministic(t *testing.T) {
	first, _, code := runNoclint(t, "-C", "testdata/fixturemod", "./...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	for i := 0; i < 5; i++ {
		out, _, _ := runNoclint(t, "-C", "testdata/fixturemod", "./...")
		if out != first {
			t.Fatalf("run %d diverged from run 0:\n--- first ---\n%s\n--- now ---\n%s", i+1, first, out)
		}
	}
}

// BenchmarkAnalyzeModule measures the wall-clock of the analyzer pass
// itself — every registered analyzer over every package of the real
// module, packages fanned out to the worker pool — with loading and
// type-checking kept outside the timed loop.
func BenchmarkAnalyzeModule(b *testing.B) {
	loader, err := analysis.NewLoader("../..")
	if err != nil {
		b.Fatal(err)
	}
	pkgs, err := loader.LoadPatterns("./...")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if diags := analysis.Run(pkgs, analysis.Analyzers); len(diags) != 0 {
			b.Fatalf("tree not clean: %d findings", len(diags))
		}
	}
}
