package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"nocvi/internal/analysis"
)

func runNoclint(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(&out, &errb, args)
	return out.String(), errb.String(), code
}

// TestFixtureModuleEndToEnd drives the full pipeline — module
// discovery, source type-checking, all five analyzers, suppression,
// reporting — over the fixture module and pins one finding per
// analyzer.
func TestFixtureModuleEndToEnd(t *testing.T) {
	out, errOut, code := runNoclint(t, "-C", "testdata/fixturemod", "./...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (findings)\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	for _, frag := range []string{
		"core/core.go:15:2: maprange: range over map m",
		"core/core.go:33:9: bannedcall: call to fmt.Sprintf is banned on the engine hot path",
		"core/core.go:38:9: wallclock: time.Now on the engine hot path",
		"core/core.go:43:2: errdrop: error result of check is silently discarded",
		"core/core.go:50:11: floateq: == between float operands",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q\ngot:\n%s", frag, out)
		}
	}
	if strings.Contains(out, "core/core.go:55") {
		t.Errorf("suppressed floateq finding leaked into output:\n%s", out)
	}
	if got, want := strings.Count(strings.TrimSpace(out), "\n")+1, 5; got != want {
		t.Errorf("finding count = %d, want %d\n%s", got, want, out)
	}
}

// TestCleanPackageExitsZero pins the success path.
func TestCleanPackageExitsZero(t *testing.T) {
	out, errOut, code := runNoclint(t, "-C", "testdata/fixturemod", "./clean")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	if out != "" {
		t.Fatalf("clean run should print nothing, got:\n%s", out)
	}
}

// TestIncludeTestsFlag proves -tests pulls _test.go files into scope:
// the fixture's test file compares floats exactly.
func TestIncludeTestsFlag(t *testing.T) {
	out, _, code := runNoclint(t, "-C", "testdata/fixturemod", "./core")
	if code != 1 || strings.Contains(out, "core_test.go") {
		t.Fatalf("without -tests, core_test.go must stay out of scope (code %d):\n%s", code, out)
	}
	out, _, code = runNoclint(t, "-C", "testdata/fixturemod", "-tests", "./core")
	if code != 1 || !strings.Contains(out, "core_test.go") {
		t.Fatalf("with -tests, the floateq finding in core_test.go must appear (code %d):\n%s", code, out)
	}
}

// TestListFlag pins the analyzer inventory.
func TestListFlag(t *testing.T) {
	out, _, code := runNoclint(t, "-list")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, name := range []string{"maprange:", "floateq:", "errdrop:", "wallclock:", "bannedcall:", "detflow:", "poolescape:"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %q:\n%s", name, out)
		}
	}
}

// TestMissingModuleExitsTwo pins the load-error path.
func TestMissingModuleExitsTwo(t *testing.T) {
	_, errOut, code := runNoclint(t, "-C", "testdata/nonexistent", "./...")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errOut, "noclint:") {
		t.Fatalf("stderr should carry the load error, got:\n%s", errOut)
	}
}

// TestRunIsOrderDeterministic pins that the worker-pool analyzer pass
// and the call-graph scope derivation yield byte-identical reports
// across repeated runs and every -workers width: the final sort in
// analysis.RunWith and the sorted BFS in callgraph, not goroutine
// scheduling, decide the output.
func TestRunIsOrderDeterministic(t *testing.T) {
	first, _, code := runNoclint(t, "-C", "testdata/fixturemod", "./...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	for i := 0; i < 3; i++ {
		out, _, _ := runNoclint(t, "-C", "testdata/fixturemod", "./...")
		if out != first {
			t.Fatalf("run %d diverged from run 0:\n--- first ---\n%s\n--- now ---\n%s", i+1, first, out)
		}
	}
	for _, w := range []string{"1", "2", "3", "8"} {
		out, _, code := runNoclint(t, "-C", "testdata/fixturemod", "-workers", w, "./...")
		if code != 1 || out != first {
			t.Fatalf("-workers %s diverged (code %d):\n--- default ---\n%s\n--- now ---\n%s", w, code, first, out)
		}
	}
}

// TestJSONOutput pins the -json report shape: every human-format
// finding appears as a structured diagnostic, and -unused folds the
// stale-directive report in.
func TestJSONOutput(t *testing.T) {
	out, _, code := runNoclint(t, "-C", "testdata/fixturemod", "-json", "./...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	var report struct {
		Diagnostics []struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal([]byte(out), &report); err != nil {
		t.Fatalf("-json output is not JSON: %v\n%s", err, out)
	}
	if len(report.Diagnostics) != 5 {
		t.Fatalf("diagnostics = %d, want 5:\n%s", len(report.Diagnostics), out)
	}
	seen := map[string]bool{}
	for _, d := range report.Diagnostics {
		if d.File != "core/core.go" || d.Line == 0 || d.Col == 0 || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
		seen[d.Analyzer] = true
	}
	for _, a := range []string{"maprange", "bannedcall", "wallclock", "errdrop", "floateq"} {
		if !seen[a] {
			t.Errorf("missing %s diagnostic in JSON output:\n%s", a, out)
		}
	}
}

// TestWhyFixture drives -why through the fixture module: a hot-path
// site prints a root→site chain, an unreachable site says so, and a
// position outside every function is a usage error.
func TestWhyFixture(t *testing.T) {
	// core/core.go:38 is the time.Now inside Stamp, reached from
	// Synthesize.
	out, _, code := runNoclint(t, "-C", "testdata/fixturemod", "-why", "core/core.go:38", "./...")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0:\n%s", code, out)
	}
	if !strings.Contains(out, "core.Synthesize") || !strings.Contains(out, "core.Stamp") {
		t.Errorf("-why chain must run core.Synthesize → core.Stamp, got:\n%s", out)
	}
	// clean/clean.go:5 is clean.Add, unreachable from every root.
	out, _, code = runNoclint(t, "-C", "testdata/fixturemod", "-why", "clean/clean.go:5", "./...")
	if code != 1 || !strings.Contains(out, "not reachable") {
		t.Fatalf("unreachable site: code = %d, want 1 with a not-reachable note:\n%s", code, out)
	}
	// Line 1 is the package clause of a file with no enclosing function.
	_, errOut, code := runNoclint(t, "-C", "testdata/fixturemod", "-why", "clean/clean.go:1", "./...")
	if code != 2 || !strings.Contains(errOut, "no analyzed function") {
		t.Fatalf("non-function position: code = %d, want 2:\n%s", code, errOut)
	}
}

// TestWhyRealTree pins the acceptance criterion on the live module: a
// reachable non-root function (found through the derived scope itself)
// gets a printed chain starting at an engine root.
func TestWhyRealTree(t *testing.T) {
	loader, err := analysis.NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadPatterns("./...")
	if err != nil {
		t.Fatal(err)
	}
	scope := analysis.DeriveScope(pkgs)
	var file string
	var line int
	for _, n := range scope.ReachableNodes() {
		if n.Decl == nil || n.Obj == nil {
			continue
		}
		if strings.Contains(n.Pos.Filename, "internal/route/") {
			file, line = n.Pos.Filename, n.Pos.Line
			break
		}
	}
	if file == "" {
		t.Fatal("no reachable function in internal/route; the engine stopped routing?")
	}
	out, _, code := runNoclint(t, "-C", "../..", "-why", file+":"+strconv.Itoa(line), "./...")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 for a reachable real-tree site:\n%s", code, out)
	}
	if !strings.Contains(out, "is on the engine hot path") {
		t.Errorf("-why must confirm reachability, got:\n%s", out)
	}
	hasRoot := false
	for _, root := range analysis.EngineRoots {
		if strings.Contains(out, root) {
			hasRoot = true
		}
	}
	if !hasRoot {
		t.Errorf("-why chain must start at an engine root, got:\n%s", out)
	}
}

// copyFixtureMod clones the fixture module into a temp dir so tests can
// mutate it.
func copyFixtureMod(t *testing.T) string {
	t.Helper()
	dst := t.TempDir()
	src := "testdata/fixturemod"
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

// editFile rewrites one file through a string transform, failing the
// test when the transform is a no-op (the anchor text drifted).
func editFile(t *testing.T, path, old, new string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), old) {
		t.Fatalf("%s does not contain %q", path, old)
	}
	if err := os.WriteFile(path, []byte(strings.Replace(string(data), old, new, 1)), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestSurfaceGate drives the engine-surface digest through its life
// cycle on a mutable copy of the fixture module: record, clean check,
// hot-path mutation without a version bump (the gate's reason to
// exist), bump without re-record, and finally re-record.
func TestSurfaceGate(t *testing.T) {
	mod := copyFixtureMod(t)

	// No baseline yet: check fails and says how to record one.
	out, _, code := runNoclint(t, "-C", mod, "-surface", "check")
	if code != 1 || !strings.Contains(out, "-surface update") {
		t.Fatalf("check without a baseline: code = %d, want 1:\n%s", code, out)
	}
	out, _, code = runNoclint(t, "-C", mod, "-surface", "update")
	if code != 0 {
		t.Fatalf("update: code = %d, want 0:\n%s", code, out)
	}
	if _, err := os.Stat(filepath.Join(mod, "artifacts", "engine-surface.sum")); err != nil {
		t.Fatalf("sum file not written: %v", err)
	}
	out, _, code = runNoclint(t, "-C", mod, "-surface", "check")
	if code != 0 || !strings.Contains(out, "unchanged") {
		t.Fatalf("clean check: code = %d, want 0:\n%s", code, out)
	}

	// Mutate a hot-path function without bumping EngineVersion.
	editFile(t, filepath.Join(mod, "core", "core.go"), "Stamp() % 7", "Stamp() % 11")
	out, _, code = runNoclint(t, "-C", mod, "-surface", "check")
	if code != 1 || !strings.Contains(out, "without a cache.EngineVersion bump") {
		t.Fatalf("mutated surface, same version: code = %d, want 1 demanding a bump:\n%s", code, out)
	}

	// Bump the version: the gate now demands a re-record instead.
	editFile(t, filepath.Join(mod, "cache", "cache.go"), "EngineVersion = 1", "EngineVersion = 2")
	out, _, code = runNoclint(t, "-C", mod, "-surface", "check")
	if code != 1 || !strings.Contains(out, "re-record") {
		t.Fatalf("mutated surface, bumped version: code = %d, want 1 demanding a re-record:\n%s", code, out)
	}
	if _, _, code = runNoclint(t, "-C", mod, "-surface", "update"); code != 0 {
		t.Fatalf("re-record failed")
	}
	if out, _, code = runNoclint(t, "-C", mod, "-surface", "check"); code != 0 {
		t.Fatalf("check after re-record: code = %d, want 0:\n%s", code, out)
	}

	// A change outside the hot path (an unreachable function) must NOT
	// move the surface.
	editFile(t, filepath.Join(mod, "clean", "clean.go"), "return a + b", "return b + a")
	if out, _, code = runNoclint(t, "-C", mod, "-surface", "check"); code != 0 {
		t.Fatalf("cold-path edit moved the surface: code = %d:\n%s", code, out)
	}
}

// countFiles counts regular files under dir recursively.
func countFiles(t *testing.T, dir string) int {
	t.Helper()
	n := 0
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			n++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestLintCacheInvalidation pins the negative path of the PR 7 lint
// cache: editing a .go file, adding a file, and changing go.mod must
// each miss the cache and produce a fresh report.
func TestLintCacheInvalidation(t *testing.T) {
	mod := copyFixtureMod(t)
	cacheDir := t.TempDir()
	lint := func() (string, int) {
		out, _, code := runNoclint(t, "-C", mod, "-cache-dir", cacheDir, "./...")
		return out, code
	}

	first, code := lint()
	if code != 1 {
		t.Fatalf("cold run: code = %d, want 1:\n%s", code, first)
	}
	entries := countFiles(t, cacheDir)
	if entries == 0 {
		t.Fatal("cold run published nothing to the cache")
	}
	if again, _ := lint(); again != first {
		t.Fatalf("warm replay diverged:\n--- cold ---\n%s\n--- warm ---\n%s", first, again)
	}
	if countFiles(t, cacheDir) != entries {
		t.Fatal("warm replay must not add cache entries")
	}

	// Editing an existing .go file: the new finding must appear.
	editFile(t, filepath.Join(mod, "clean", "clean.go"), "func Add(a, b int) int { return a + b }",
		"func Add(a, b int) int { return a + b }\n\nfunc Same(a, b float64) bool { return a == b }")
	out, code := lint()
	if code != 1 || !strings.Contains(out, "clean/clean.go") || !strings.Contains(out, "floateq") {
		t.Fatalf("edited file: stale report served (code %d):\n%s", code, out)
	}

	// Adding a new file: its finding must appear.
	if err := os.WriteFile(filepath.Join(mod, "clean", "extra.go"),
		[]byte("package clean\n\nfunc Close(a, b float64) bool { return a == b }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code = lint()
	if code != 1 || !strings.Contains(out, "clean/extra.go") {
		t.Fatalf("added file: stale report served (code %d):\n%s", code, out)
	}

	// Changing go.mod: the report is unchanged, but the run must be
	// fresh — a new cache entry under a new key, not a replay.
	before := countFiles(t, cacheDir)
	editFile(t, filepath.Join(mod, "go.mod"), "go 1.22", "go 1.22\n// lint-cache invalidation probe")
	if _, code = lint(); code != 1 {
		t.Fatalf("go.mod edit: code = %d, want 1", code)
	}
	if after := countFiles(t, cacheDir); after <= before {
		t.Fatalf("go.mod edit must miss the cache and publish a fresh entry (before %d, after %d)", before, after)
	}
}

// BenchmarkAnalyzeModule measures the wall-clock of the analyzer pass
// itself — every registered analyzer over every package of the real
// module, packages fanned out to the worker pool — with loading and
// type-checking kept outside the timed loop.
func BenchmarkAnalyzeModule(b *testing.B) {
	loader, err := analysis.NewLoader("../..")
	if err != nil {
		b.Fatal(err)
	}
	pkgs, err := loader.LoadPatterns("./...")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if diags := analysis.Run(pkgs, analysis.Analyzers); len(diags) != 0 {
			b.Fatalf("tree not clean: %d findings", len(diags))
		}
	}
}
