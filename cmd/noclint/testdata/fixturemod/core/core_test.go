package core

import "testing"

// TestExact exists to prove -tests pulls _test.go files into the
// analysis: the exact float comparison below is only reported with the
// flag set (floateq is unscoped, so reachability does not matter in
// test files either).
func TestExact(t *testing.T) {
	var a, b float64 = 1, 1
	if a == b && !Exact(a, b) {
		t.Fatal("inconsistent comparison")
	}
}
