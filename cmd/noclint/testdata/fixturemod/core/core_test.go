package core

import (
	"testing"
	"time"
)

// TestStamp exists to prove -tests pulls _test.go files into the
// analysis: the time.Now below is only reported with the flag set.
func TestStamp(t *testing.T) {
	if time.Now().IsZero() {
		t.Fatal("clock is broken")
	}
}
