// Package core is the dirty half of the end-to-end fixture: one
// finding per analyzer, plus one suppressed site.
package core

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// Values iterates a map in random order and keeps the order: maprange.
func Values(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

// Keys is the blessed collect-then-sort shape: clean.
func Keys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CacheKey formats a slice into a string key: bannedcall.
func CacheKey(counts []int) string {
	return fmt.Sprintf("%v", counts)
}

// Stamp reads the wall clock: wallclock.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Validate drops its own error: errdrop.
func Validate() {
	check()
}

func check() error { return errors.New("invalid") }

// CloseEnough compares floats exactly: floateq.
func CloseEnough(a, b float64) bool {
	return a == b
}

// Exact is the same comparison with a suppression: clean.
func Exact(a, b float64) bool {
	return a == b //noclint:ignore floateq fixture exercises suppression end to end
}

// Synthesize is the fixture's engine root: everything above is
// reachable from here, so the scoped analyzers (maprange, wallclock,
// bannedcall) apply to it. It sits at the end of the file so the
// pinned line numbers of the findings above never move.
func Synthesize(m map[string]int) int {
	total := len(Values(m)) + len(Keys(m))
	total += len(CacheKey([]int{total}))
	total += int(Stamp() % 7)
	Validate()
	if CloseEnough(float64(total), 0) || Exact(0, float64(total)) {
		return 0
	}
	return total
}
