// Package clean is the spotless half of the end-to-end fixture.
package clean

// Add is beyond reproach.
func Add(a, b int) int { return a + b }
