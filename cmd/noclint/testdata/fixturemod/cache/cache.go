// Package cache mirrors the real tree's cache package closely enough
// for the engine-surface gate: the sum file records the surface digest
// against this EngineVersion, and the surface tests mutate both to
// drive the gate through its failure modes.
package cache

// EngineVersion is the fixture's engine semantic version.
const EngineVersion = 1
