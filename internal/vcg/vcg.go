// Package vcg builds the VI Communication Graph of Definition 1: one
// directed graph per voltage island whose vertices are the island's
// cores and whose edge weights blend normalized bandwidth and latency
// tightness,
//
//	h(i,j) = α · bw(i,j)/max_bw + (1−α) · min_lat/lat(i,j),
//
// where max_bw is the largest bandwidth over all flows of the spec,
// min_lat the tightest latency constraint, and α ∈ [0,1] the user's
// power-vs-performance knob. Min-cut partitioning of this graph groups
// heavily-communicating, latency-critical cores onto shared switches.
package vcg

import (
	"fmt"

	"nocvi/internal/graph"
	"nocvi/internal/soc"
)

// DefaultAlpha is the weight used when the caller does not care; it
// mildly favours bandwidth over latency, which matches the paper's
// power-first objective.
const DefaultAlpha = 0.6

// VCG is the communication graph of one voltage island.
type VCG struct {
	Island soc.IslandID

	// Cores lists the island's cores in ascending ID order; vertex i of
	// G corresponds to Cores[i].
	Cores []soc.CoreID

	// G holds one directed edge per intra-island flow, weighted by h.
	G *graph.Directed

	// Flows are the intra-island flows, in spec order.
	Flows []soc.Flow

	alpha float64
}

// Build constructs the VCG of island isl from the spec. alpha must be in
// [0,1]. Flows whose endpoints are not both in isl are ignored (they are
// inter-island flows, routed in Algorithm 1 step 15 instead).
func Build(spec *soc.Spec, isl soc.IslandID, alpha float64) (*VCG, error) {
	if alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("vcg: alpha %g outside [0,1]", alpha)
	}
	cores := spec.CoresIn(isl)
	if len(cores) == 0 {
		return nil, fmt.Errorf("vcg: island %d has no cores", isl)
	}
	idx := make(map[soc.CoreID]int, len(cores))
	for i, c := range cores {
		idx[c] = i
	}
	v := &VCG{
		Island: isl,
		Cores:  cores,
		G:      graph.NewDirected(len(cores)),
		alpha:  alpha,
	}
	maxBW := spec.MaxFlowBandwidth()
	minLat := spec.MinLatencyConstraint()
	for _, f := range spec.Flows {
		si, sok := idx[f.Src]
		di, dok := idx[f.Dst]
		if !sok || !dok {
			continue
		}
		v.Flows = append(v.Flows, f)
		v.G.AddEdge(si, di, EdgeWeight(f, maxBW, minLat, alpha))
	}
	return v, nil
}

// EdgeWeight computes h(i,j) for a flow given the spec-wide extrema.
// Unconstrained flows (MaxLatencyCycles == 0) contribute no latency
// term; a spec with no latency constraints anywhere likewise reduces to
// pure bandwidth weighting.
func EdgeWeight(f soc.Flow, maxBW, minLat, alpha float64) float64 {
	var h float64
	if maxBW > 0 {
		h += alpha * f.BandwidthBps / maxBW
	}
	if f.MaxLatencyCycles > 0 && minLat > 0 {
		h += (1 - alpha) * minLat / f.MaxLatencyCycles
	}
	return h
}

// N returns the number of cores (vertices) in the island.
func (v *VCG) N() int { return len(v.Cores) }

// Undirected returns the symmetrized view used by min-cut partitioning;
// opposite-direction flows between the same pair accumulate.
func (v *VCG) Undirected() *graph.Undirected { return v.G.Undirect() }

// Core returns the core ID of vertex i.
func (v *VCG) Core(i int) soc.CoreID { return v.Cores[i] }

// BuildAll constructs the VCG of every island in the spec.
func BuildAll(spec *soc.Spec, alpha float64) ([]*VCG, error) {
	out := make([]*VCG, len(spec.Islands))
	for i := range spec.Islands {
		v, err := Build(spec, soc.IslandID(i), alpha)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
