package vcg

import (
	"math"
	"testing"
	"testing/quick"

	"nocvi/internal/soc"
)

func spec() *soc.Spec {
	return &soc.Spec{
		Name: "v",
		Cores: []soc.Core{
			{ID: 0, Name: "a"}, {ID: 1, Name: "b"},
			{ID: 2, Name: "c"}, {ID: 3, Name: "d"},
		},
		Flows: []soc.Flow{
			{Src: 0, Dst: 1, BandwidthBps: 1000e6, MaxLatencyCycles: 10}, // intra island 0
			{Src: 1, Dst: 0, BandwidthBps: 500e6, MaxLatencyCycles: 20},  // intra island 0
			{Src: 0, Dst: 2, BandwidthBps: 100e6, MaxLatencyCycles: 5},   // inter
			{Src: 2, Dst: 3, BandwidthBps: 250e6},                        // intra island 1, no lat
		},
		Islands: []soc.Island{
			{ID: 0, Name: "i0", VoltageV: 1},
			{ID: 1, Name: "i1", VoltageV: 1, Shutdownable: true},
		},
		IslandOf: []soc.IslandID{0, 0, 1, 1},
	}
}

func TestBuildFiltersInterIslandFlows(t *testing.T) {
	v, err := Build(spec(), 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if v.N() != 2 {
		t.Fatalf("island 0 vertex count = %d", v.N())
	}
	if len(v.Flows) != 2 {
		t.Fatalf("island 0 intra flows = %d, want 2", len(v.Flows))
	}
	if v.G.M() != 2 {
		t.Fatalf("edges = %d", v.G.M())
	}
	if v.Core(0) != 0 || v.Core(1) != 1 {
		t.Fatal("vertex->core mapping wrong")
	}
}

func TestEdgeWeightFormula(t *testing.T) {
	// max_bw = 1000e6 (flow 0), min_lat = 5 (flow 2, global extrema)
	v, err := Build(spec(), 0, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	// flow 0->1: 0.6*1.0 + 0.4*(5/10) = 0.8
	if w := v.G.Weight(0, 1); math.Abs(w-0.8) > 1e-12 {
		t.Fatalf("h(0,1) = %g, want 0.8", w)
	}
	// flow 1->0: 0.6*0.5 + 0.4*(5/20) = 0.4
	if w := v.G.Weight(1, 0); math.Abs(w-0.4) > 1e-12 {
		t.Fatalf("h(1,0) = %g, want 0.4", w)
	}
}

func TestEdgeWeightNoLatencyConstraint(t *testing.T) {
	v, err := Build(spec(), 1, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	// flow 2->3 has no latency constraint: only the bw term, 0.6*0.25
	if w := v.G.Weight(0, 1); math.Abs(w-0.15) > 1e-12 {
		t.Fatalf("h = %g, want 0.15", w)
	}
}

func TestEdgeWeightDegenerateSpec(t *testing.T) {
	// no latency constraints anywhere: minLat = 0, term dropped entirely
	f := soc.Flow{BandwidthBps: 10, MaxLatencyCycles: 7}
	if w := EdgeWeight(f, 20, 0, 0.5); w != 0.25 {
		t.Fatalf("weight without global constraint = %g", w)
	}
	if w := EdgeWeight(f, 0, 0, 0.5); w != 0 {
		t.Fatalf("weight with zero max_bw = %g", w)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(spec(), 0, -0.1); err == nil {
		t.Fatal("alpha<0 accepted")
	}
	if _, err := Build(spec(), 0, 1.1); err == nil {
		t.Fatal("alpha>1 accepted")
	}
	s := spec()
	s.IslandOf = []soc.IslandID{0, 0, 0, 0}
	if _, err := Build(s, 1, 0.5); err == nil {
		t.Fatal("empty island accepted")
	}
}

func TestBuildAll(t *testing.T) {
	vs, err := BuildAll(spec(), DefaultAlpha)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 || vs[0].Island != 0 || vs[1].Island != 1 {
		t.Fatal("BuildAll wrong")
	}
}

func TestUndirectedAccumulates(t *testing.T) {
	v, _ := Build(spec(), 0, 0.6)
	u := v.Undirected()
	want := v.G.Weight(0, 1) + v.G.Weight(1, 0)
	if got := u.Weight(0, 1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("undirected weight = %g, want %g", got, want)
	}
}

// Property: h is monotone in bandwidth, antitone in latency slack, and
// bounded by 1 when bw<=max_bw and lat>=min_lat.
func TestEdgeWeightProperties(t *testing.T) {
	f := func(bwRaw, latRaw uint16, alphaRaw uint8) bool {
		maxBW, minLat := 1e9, 4.0
		alpha := float64(alphaRaw%101) / 100
		bw := float64(bwRaw%1000+1) * 1e6
		lat := minLat + float64(latRaw%100)
		fl := soc.Flow{BandwidthBps: bw, MaxLatencyCycles: lat}
		h := EdgeWeight(fl, maxBW, minLat, alpha)
		if h < 0 || h > 1+1e-12 {
			return false
		}
		// monotone in bw
		h2 := EdgeWeight(soc.Flow{BandwidthBps: bw * 2, MaxLatencyCycles: lat}, maxBW, minLat, alpha)
		if h2 < h-1e-12 {
			return false
		}
		// antitone in latency (looser constraint, smaller weight)
		h3 := EdgeWeight(soc.Flow{BandwidthBps: bw, MaxLatencyCycles: lat * 2}, maxBW, minLat, alpha)
		return h3 <= h+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
