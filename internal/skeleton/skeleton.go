// Package skeleton builds deterministic unrouted topologies — switches,
// core attachments and (optionally) an intermediate NoC island, but no
// links or routes — for benchmarks and routing-equivalence tests that
// need to exercise the router in isolation, without pulling in the full
// synthesis sweep (which would create an import cycle through core's
// tests).
//
// The construction mirrors Algorithm 1 steps 1-14 at the minimal design
// point: island clocks from the heaviest NI bandwidth, the minimum
// switch count per island, balanced min-cut core-to-switch assignment,
// and mid indirect switches in the intermediate island clocked at the
// fastest island's rate.
package skeleton

import (
	"fmt"
	"math"

	"nocvi/internal/model"
	"nocvi/internal/partition"
	"nocvi/internal/soc"
	"nocvi/internal/topology"
	"nocvi/internal/vcg"
)

// Build constructs the unrouted topology for spec with extra switches
// per island beyond the minimum (clamped at one switch per core), and
// mid indirect switches in an intermediate NoC island when mid > 0.
// extra = 0 is the minimal design point, which need not be routable;
// extra >= 1 leaves port headroom. Identical inputs always yield an
// identical topology.
func Build(spec *soc.Spec, lib *model.Library, extra, mid int) (*topology.Topology, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("skeleton: %w", err)
	}
	egress, ingress := spec.AggregateCoreBandwidth()
	nIsl := len(spec.Islands)
	freqs := make([]float64, nIsl)
	maxSizes := make([]int, nIsl)
	for j := 0; j < nIsl; j++ {
		var peak float64
		for _, c := range spec.CoresIn(soc.IslandID(j)) {
			peak = math.Max(peak, math.Max(egress[c], ingress[c]))
		}
		freqs[j] = lib.MinFreqForBandwidth(peak)
		maxSizes[j] = lib.MaxSwitchSize(freqs[j])
		if maxSizes[j] < 2 {
			return nil, fmt.Errorf("skeleton: island %d needs %.0f MHz, too fast for any usable switch",
				j, freqs[j]/1e6)
		}
		if maxSizes[j] > len(spec.Cores)+nIsl+8 {
			maxSizes[j] = len(spec.Cores) + nIsl + 8
		}
	}

	vcgs, err := vcg.BuildAll(spec, vcg.DefaultAlpha)
	if err != nil {
		return nil, err
	}

	top := topology.New(spec, lib)
	for j, f := range freqs {
		top.SetIslandFreq(soc.IslandID(j), f)
	}
	for j := 0; j < nIsl; j++ {
		cores := spec.CoresIn(soc.IslandID(j))
		usable := maxSizes[j] - 1
		k := (len(cores)+usable-1)/usable + extra
		if k < 1 {
			k = 1
		}
		if k > len(cores) {
			k = len(cores)
		}
		parts, err := partition.KWay(vcgs[j].Undirected(), k,
			partition.Options{MaxPartSize: usable})
		if err != nil {
			return nil, fmt.Errorf("skeleton: island %d: %w", j, err)
		}
		sws := make([]topology.SwitchID, k)
		for p := range sws {
			sws[p] = top.AddSwitch(soc.IslandID(j), false)
		}
		for i, c := range cores {
			if err := top.AttachCore(c, sws[parts[i]]); err != nil {
				return nil, err
			}
		}
	}
	if mid > 0 {
		midFreq := lib.FreqGridHz
		for _, f := range freqs {
			if f > midFreq {
				midFreq = f
			}
		}
		ni := top.AddNoCIsland(midFreq, 1.0)
		for p := 0; p < mid; p++ {
			top.AddSwitch(ni, true)
		}
	}
	return top, nil
}
