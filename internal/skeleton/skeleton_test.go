package skeleton

import (
	"testing"

	"nocvi/internal/bench"
	"nocvi/internal/model"
	"nocvi/internal/route"
	"nocvi/internal/specgen"
)

// TestBuildSuiteRoutable checks every bundled benchmark yields a
// well-formed, routable skeleton, with and without intermediate
// switches.
func TestBuildSuiteRoutable(t *testing.T) {
	lib := model.Default65nm()
	for _, name := range bench.Names() {
		spec, err := bench.Islanded(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, mid := range []int{0, 2} {
			top, err := Build(spec, lib, 1, mid)
			if err != nil {
				t.Fatalf("%s mid=%d: %v", name, mid, err)
			}
			if got := top.IndirectSwitchCount(); got != mid {
				t.Fatalf("%s: %d indirect switches, want %d", name, got, mid)
			}
			for c := range spec.Cores {
				if top.SwitchOf[c] < 0 {
					t.Fatalf("%s: core %d unattached", name, c)
				}
			}
			// The minimal design point need not be routable (that is
			// what the sweep explores), but with intermediate switches
			// available every bundled benchmark should route.
			if err := route.New(top, route.Options{}).RouteAll(); err != nil && mid > 0 {
				t.Fatalf("%s mid=%d: skeleton unroutable: %v", name, mid, err)
			}
		}
	}
}

// TestBuildDeterministic pins that two builds of the same spec are
// structurally identical (the property the equivalence tests rely on).
func TestBuildDeterministic(t *testing.T) {
	lib := model.Default65nm()
	spec := specgen.Random(7, specgen.Options{MaxCores: 14, MaxIslands: 4})
	a, err := Build(spec, lib, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(spec, lib, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Switches) != len(b.Switches) {
		t.Fatalf("switch counts differ: %d vs %d", len(a.Switches), len(b.Switches))
	}
	for i := range a.Switches {
		if a.Switches[i].Island != b.Switches[i].Island || a.Switches[i].Indirect != b.Switches[i].Indirect {
			t.Fatalf("switch %d differs", i)
		}
	}
	for c := range a.SwitchOf {
		if a.SwitchOf[c] != b.SwitchOf[c] {
			t.Fatalf("core %d attached to %d vs %d", c, a.SwitchOf[c], b.SwitchOf[c])
		}
	}
}
