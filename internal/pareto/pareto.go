// Package pareto selects the non-dominated design points of a synthesis
// run. The paper's flow "produces several design points that meet the
// application constraints with different switch counts, with each point
// having different power and performance values. The designer can then
// choose the best design point from the trade-off curves obtained" —
// this package computes those trade-off curves.
package pareto

import "sort"

// Point is a candidate in two minimized objectives (e.g. X = NoC dynamic
// power, Y = mean zero-load latency). Index refers back to the caller's
// slice.
type Point struct {
	Index int
	X, Y  float64
}

// Dominates reports whether a is at least as good as b in both
// objectives and strictly better in one.
func Dominates(a, b Point) bool {
	return a.X <= b.X && a.Y <= b.Y && (a.X < b.X || a.Y < b.Y)
}

// StrictlyDominates reports whether a is strictly better than b in BOTH
// objectives. This is the only dominance a pruning layer may act on:
// removing a strictly-dominated point can change neither a front (the
// dominator excludes it) nor any argmin whose tie-breaks are reached
// only on exact metric ties (the dominator beats it outright, on either
// objective, before any tie-break fires).
func StrictlyDominates(a, b Point) bool {
	return a.X < b.X && a.Y < b.Y
}

// Front returns the non-dominated subset, sorted by ascending X (and
// descending Y along the front). Duplicate coordinates keep the earliest
// index. The input is not modified.
func Front(points []Point) []Point {
	if len(points) == 0 {
		return nil
	}
	sorted := append([]Point(nil), points...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].X != sorted[j].X { //noclint:ignore floateq exact sort tie-break; any epsilon would make the order intransitive
			return sorted[i].X < sorted[j].X
		}
		if sorted[i].Y != sorted[j].Y { //noclint:ignore floateq exact sort tie-break; any epsilon would make the order intransitive
			return sorted[i].Y < sorted[j].Y
		}
		return sorted[i].Index < sorted[j].Index
	})
	var front []Point
	bestY := 0.0
	for i, p := range sorted {
		if i == 0 || p.Y < bestY {
			// Skip exact duplicates of the previous front point.
			if len(front) > 0 && front[len(front)-1].X == p.X && front[len(front)-1].Y == p.Y { //noclint:ignore floateq deliberately drops exact duplicates only; near-equal points stay on the front
				continue
			}
			front = append(front, p)
			bestY = p.Y
		}
	}
	return front
}

// Knee returns the front point closest (normalized Euclidean) to the
// utopia point (min X, min Y) — a common "pick one" heuristic for the
// designer. It returns the zero Point when the front is empty.
func Knee(front []Point) Point {
	if len(front) == 0 {
		return Point{Index: -1}
	}
	minX, maxX := front[0].X, front[0].X
	minY, maxY := front[0].Y, front[0].Y
	for _, p := range front {
		if p.X < minX {
			minX = p.X
		}
		if p.X > maxX {
			maxX = p.X
		}
		if p.Y < minY {
			minY = p.Y
		}
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	dx := maxX - minX
	dy := maxY - minY
	if dx == 0 { //noclint:ignore floateq exact zero extent guards the normalization division
		dx = 1
	}
	if dy == 0 { //noclint:ignore floateq exact zero extent guards the normalization division
		dy = 1
	}
	best := front[0]
	bestD := 1e308
	for _, p := range front {
		nx := (p.X - minX) / dx
		ny := (p.Y - minY) / dy
		if d := nx*nx + ny*ny; d < bestD {
			bestD = d
			best = p
		}
	}
	return best
}
