package pareto

import (
	"testing"
	"testing/quick"
)

func TestFrontBasic(t *testing.T) {
	pts := []Point{
		{0, 1, 10}, {1, 2, 5}, {2, 3, 6}, // 2 dominated by 1
		{3, 4, 1}, {4, 5, 0.5}, {5, 0.5, 20},
	}
	f := Front(pts)
	want := []int{5, 0, 1, 3, 4}
	if len(f) != len(want) {
		t.Fatalf("front = %v", f)
	}
	for i, p := range f {
		if p.Index != want[i] {
			t.Fatalf("front[%d] = %+v, want index %d", i, p, want[i])
		}
		if i > 0 && (f[i].X < f[i-1].X || f[i].Y > f[i-1].Y) {
			t.Fatal("front not monotone")
		}
	}
}

func TestFrontEdgeCases(t *testing.T) {
	if Front(nil) != nil {
		t.Fatal("empty front")
	}
	one := Front([]Point{{7, 3, 3}})
	if len(one) != 1 || one[0].Index != 7 {
		t.Fatal("singleton front")
	}
	// exact duplicates collapse to the earliest index
	dup := Front([]Point{{1, 2, 2}, {0, 2, 2}})
	if len(dup) != 1 || dup[0].Index != 0 {
		t.Fatalf("duplicates: %v", dup)
	}
}

func TestDominates(t *testing.T) {
	a := Point{0, 1, 1}
	b := Point{1, 2, 2}
	if !Dominates(a, b) || Dominates(b, a) {
		t.Fatal("dominance wrong")
	}
	if Dominates(a, a) {
		t.Fatal("point dominates itself")
	}
	c := Point{2, 0.5, 3}
	if Dominates(a, c) || Dominates(c, a) {
		t.Fatal("incomparable pair misjudged")
	}
}

func TestKnee(t *testing.T) {
	front := []Point{{0, 1, 10}, {1, 2, 4}, {2, 8, 1}}
	k := Knee(front)
	if k.Index != 1 {
		t.Fatalf("knee = %+v", k)
	}
	if Knee(nil).Index != -1 {
		t.Fatal("empty knee")
	}
	if Knee([]Point{{5, 2, 2}}).Index != 5 {
		t.Fatal("singleton knee")
	}
}

// Property: no front member is dominated by any input point, and every
// input point is dominated-or-equal by some front member.
func TestFrontProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 64 {
			return true
		}
		pts := make([]Point, len(raw))
		for i, r := range raw {
			pts[i] = Point{Index: i, X: float64(r % 97), Y: float64((r / 97) % 89)}
		}
		front := Front(pts)
		inFront := map[int]bool{}
		for _, fp := range front {
			inFront[fp.Index] = true
			for _, p := range pts {
				if Dominates(p, fp) {
					return false
				}
			}
		}
		for _, p := range pts {
			covered := false
			for _, fp := range front {
				if Dominates(fp, p) || (fp.X == p.X && fp.Y == p.Y) {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
