package partition

import (
	"fmt"
	"math"

	"nocvi/internal/graph"
)

// SpectralKWay partitions g into k balanced parts by recursive spectral
// bisection: each split sorts the vertices along the Fiedler vector
// (the eigenvector of the graph Laplacian's second-smallest eigenvalue)
// and cuts at the balance point, then the same k-way refinement pass as
// KWay polishes the result. It obeys the same contract as KWay and is
// provided as an alternative engine — spectral cuts see global graph
// structure that the greedy-growth seeding of FM can miss, at the cost
// of more arithmetic.
func SpectralKWay(g *graph.Undirected, k int, opt Options) ([]int, error) {
	n := g.N()
	if k <= 0 {
		return nil, fmt.Errorf("partition: k=%d must be positive", k)
	}
	if k > n {
		return nil, fmt.Errorf("partition: k=%d exceeds vertex count %d", k, n)
	}
	if opt.MaxPartSize > 0 && k*opt.MaxPartSize < n {
		return nil, fmt.Errorf("partition: %d parts of at most %d vertices cannot hold %d vertices", k, opt.MaxPartSize, n)
	}
	part := make([]int, n)
	vertices := make([]int, n)
	for i := range vertices {
		vertices[i] = i
	}
	sc := &kwayScratch{}
	spectralRecurse(g, vertices, k, 0, part, opt, sc)
	refineKWay(g, part, k, opt, sc)
	return part, nil
}

func spectralRecurse(g *graph.Undirected, vertices []int, k, base int, part []int, opt Options, sc *kwayScratch) {
	if k == 1 {
		for _, v := range vertices {
			part[v] = base
		}
		return
	}
	kA := k / 2
	kB := k - kA
	sizeA := len(vertices) * kA / k
	if sizeA < kA {
		sizeA = kA
	}
	if len(vertices)-sizeA < kB {
		sizeA = len(vertices) - kB
	}
	fiedler := fiedlerVector(g, vertices)
	// Order vertices by their Fiedler coordinate (ties by vertex ID for
	// determinism) and take the sizeA smallest as side A.
	idx := make([]int, len(vertices))
	for i := range idx {
		idx[i] = i
	}
	sortByKey(idx, func(a, b int) bool {
		if fiedler[a] != fiedler[b] { //noclint:ignore floateq exact sort tie-break on the Fiedler vector; epsilon would break transitivity
			return fiedler[a] < fiedler[b]
		}
		return vertices[a] < vertices[b]
	})
	var va, vb []int
	for rank, i := range idx {
		if rank < sizeA {
			va = append(va, vertices[i])
		} else {
			vb = append(vb, vertices[i])
		}
	}
	// One FM polish over the spectral split before recursing.
	side := make([]bool, len(vertices))
	idxOf := make(map[int]int, len(vertices))
	for i, v := range vertices {
		idxOf[v] = i
	}
	for _, v := range va {
		side[idxOf[v]] = true
	}
	for pass := 0; pass < 2; pass++ {
		if !fmSwapPass(g, vertices, idxOf, side, sc) {
			break
		}
	}
	va, vb = va[:0], vb[:0]
	for i, v := range vertices {
		if side[i] {
			va = append(va, v)
		} else {
			vb = append(vb, v)
		}
	}
	spectralRecurse(g, va, kA, base, part, opt, sc)
	spectralRecurse(g, vb, kB, base+kA, part, opt, sc)
}

// fiedlerVector approximates the Fiedler vector of the subgraph induced
// by vertices using power iteration on the shifted Laplacian M = cI − L
// with deflation against the constant vector. Returns one coordinate
// per entry of vertices. Deterministic: fixed start vector, fixed
// iteration count.
func fiedlerVector(g *graph.Undirected, vertices []int) []float64 {
	n := len(vertices)
	idxOf := make(map[int]int, n)
	for i, v := range vertices {
		idxOf[v] = i
	}
	// Local weighted degrees and the shift constant.
	deg := make([]float64, n)
	for i, v := range vertices {
		g.Neighbors(v, func(u int, w float64) {
			if _, ok := idxOf[u]; ok {
				deg[i] += w
			}
		})
	}
	c := 1.0
	for _, d := range deg {
		if 2*d > c {
			c = 2 * d
		}
	}
	// Deterministic start vector orthogonal-ish to 1.
	x := make([]float64, n)
	s := uint64(0x853c49e6748fea9b)
	for i := range x {
		s = s*6364136223846793005 + 1442695040888963407
		x[i] = float64(s>>40)/float64(1<<24) - 0.5
	}
	y := make([]float64, n)
	for iter := 0; iter < 120; iter++ {
		// Deflate the constant vector (the trivial eigenvector).
		var mean float64
		for _, xi := range x {
			mean += xi
		}
		mean /= float64(n)
		for i := range x {
			x[i] -= mean
		}
		// y = (cI - L) x = c·x - deg_i·x_i + Σ_j w_ij·x_j
		for i := range y {
			y[i] = (c - deg[i]) * x[i]
		}
		for i, v := range vertices {
			g.Neighbors(v, func(u int, w float64) {
				if j, ok := idxOf[u]; ok {
					y[i] += w * x[j]
				}
			})
		}
		// Normalize.
		var norm float64
		for _, yi := range y {
			norm += yi * yi
		}
		norm = math.Sqrt(norm)
		if norm < 1e-30 {
			// Degenerate (e.g. empty graph): fall back to index order.
			for i := range x {
				x[i] = float64(i)
			}
			break
		}
		for i := range x {
			x[i] = y[i] / norm
		}
	}
	return x
}

// sortByKey is a tiny deterministic insertion sort (n is small; avoids
// importing sort with a closure allocation in the hot recursion).
func sortByKey(idx []int, less func(a, b int) bool) {
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && less(idx[j], idx[j-1]); j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
}
