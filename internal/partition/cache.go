package partition

import (
	"sync"

	"nocvi/internal/graph"
)

// Engine is a k-way partitioning function (KWay or SpectralKWay).
type Engine func(g *graph.Undirected, k int, opt Options) ([]int, error)

// Cache memoizes k-way partitions of one fixed graph under fixed
// options and a fixed engine, keyed by the part count k. The synthesis
// sweep re-partitions the same island VCG for every intermediate-switch
// value and for every counts-vector that assigns the island the same
// switch count; the cache collapses those repeats into one computation.
//
// Results are canonicalized (see Canonical) and must be treated as
// read-only by callers: the same slice is handed out on every hit.
// Cache is safe for concurrent use. Both engines are deterministic, so
// a cached result is bit-identical to a fresh computation and
// duplicated work between racing goroutines is harmless — the first
// stored result wins and all callers observe it.
type Cache struct {
	g      *graph.Undirected
	engine Engine
	opt    Options

	mu  sync.Mutex
	byK map[int]cacheEntry

	// misses counts engine invocations (not lookups); see Stats.
	misses int

	// sc pools the built-in engine's working storage across the cache's
	// k values (non-nil only when NewCache was given a nil engine).
	// scMu serializes computes through it; distinct k values of the
	// built-in engine therefore share buffers instead of overlapping.
	scMu sync.Mutex
	sc   *kwayScratch
}

type cacheEntry struct {
	part []int
	err  error
}

// NewCache wraps the engine over a fixed graph and option set. A nil
// engine selects KWay.
func NewCache(g *graph.Undirected, engine Engine, opt Options) *Cache {
	c := &Cache{g: g, engine: engine, opt: opt, byK: make(map[int]cacheEntry)}
	if engine == nil {
		// Built-in KWay runs through a cache-held scratch, so repeated
		// k values amortize the partitioner's working storage.
		c.sc = &kwayScratch{}
	}
	return c
}

// Partition returns the canonical k-way partition of the cached graph,
// computing it on first use. Errors are memoized too: an infeasible k
// (e.g. k*MaxPartSize < n) fails once and every later lookup returns
// the same error without re-running the engine.
func (c *Cache) Partition(k int) ([]int, error) {
	c.mu.Lock()
	e, ok := c.byK[k]
	c.mu.Unlock()
	if ok {
		return e.part, e.err
	}
	// Compute outside the byK lock; determinism makes a racing
	// duplicate computation identical. The built-in engine serializes
	// on the scratch lock instead — shared buffers beat the rare
	// concurrent-compute overlap on these small graphs.
	var part []int
	var err error
	if c.sc != nil {
		c.scMu.Lock()
		part, err = kwayWith(c.g, k, c.opt, c.sc)
		c.scMu.Unlock()
	} else {
		part, err = c.engine(c.g, k, c.opt)
	}
	if err == nil {
		part = Canonical(part, k)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.byK[k]; ok {
		return prev.part, prev.err
	}
	c.byK[k] = cacheEntry{part: part, err: err}
	c.misses++
	return part, err
}

// Stats reports the number of distinct k values computed so far (cache
// entries, i.e. engine invocations that were stored).
func (c *Cache) Stats() (entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.misses
}
