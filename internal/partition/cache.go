package partition

import (
	"sync"

	"nocvi/internal/graph"
)

// Engine is a k-way partitioning function (KWay or SpectralKWay).
type Engine func(g *graph.Undirected, k int, opt Options) ([]int, error)

// Backing is an optional persistence layer under a Cache: a durable
// store of previously computed partitions, consulted on in-memory
// misses before the engine runs and written through after a compute.
// The content-addressed result cache (internal/cache) implements it to
// warm-start re-synthesis — a spec edit that leaves an island untouched
// reloads that island's cuts from disk instead of re-partitioning.
//
// A Backing must be safe for concurrent use (sweep workers miss
// concurrently) and must only return partitions that were stored for
// the exact same (graph, engine, options) identity — the caller keys
// its store by a content digest of those. Both engines are
// deterministic, so a correctly keyed load is bit-identical to the
// compute it replaces; Cache still shape-checks every load and falls
// back to computing when a loaded vector is malformed, so a corrupt
// store degrades to a miss, never to a wrong result.
type Backing interface {
	// Load returns the stored canonical partition for part count k,
	// or false when the store has none.
	Load(k int) ([]int, bool)

	// Store persists the canonical partition computed for part count
	// k. Errors are not persisted; an infeasible k is cheap to
	// rediscover. Store may be called multiple times for one k by
	// racing workers — the payload is identical each time.
	Store(k int, part []int)
}

// Cache memoizes k-way partitions of one fixed graph under fixed
// options and a fixed engine, keyed by the part count k. The synthesis
// sweep re-partitions the same island VCG for every intermediate-switch
// value and for every counts-vector that assigns the island the same
// switch count; the cache collapses those repeats into one computation.
//
// Results are canonicalized (see Canonical) and must be treated as
// read-only by callers: the same slice is handed out on every hit.
// Cache is safe for concurrent use. Both engines are deterministic, so
// a cached result is bit-identical to a fresh computation and
// duplicated work between racing goroutines is harmless — the first
// stored result wins and all callers observe it.
//
// Concurrent misses: Partition computes through a cache-held scratch
// guarded by one mutex, which serializes every compute through the
// cache — fine for occasional use, a contention collapse when many
// workers miss at once. Parallel sweeps therefore call
// PartitionScratch with a per-worker Scratch, which computes misses
// with no lock held beyond the map probes.
type Cache struct {
	g      *graph.Undirected
	engine Engine
	opt    Options

	mu  sync.Mutex
	byK map[int]cacheEntry

	// backing, when non-nil, persists partitions across processes; see
	// SetBacking.
	backing Backing

	// misses counts engine invocations (not lookups); see Stats.
	misses int

	// sc pools the built-in engine's working storage across the cache's
	// k values (non-nil only when NewCache was given a nil engine).
	// scMu serializes computes through it; it backs only the
	// scratch-less Partition path — PartitionScratch never touches it.
	scMu sync.Mutex
	sc   *kwayScratch
}

// Scratch is caller-owned working storage for Cache.PartitionScratch:
// the built-in FM engine's buffers, grown on first use and reused
// across calls. One Scratch must not be used by two goroutines
// concurrently; distinct goroutines holding distinct Scratches may
// compute cache misses concurrently without serializing on the cache.
// A zero Scratch is ready to use.
type Scratch struct {
	kway kwayScratch
}

type cacheEntry struct {
	part []int
	err  error
}

// NewCache wraps the engine over a fixed graph and option set. A nil
// engine selects KWay.
func NewCache(g *graph.Undirected, engine Engine, opt Options) *Cache {
	c := &Cache{g: g, engine: engine, opt: opt, byK: make(map[int]cacheEntry)}
	if engine == nil {
		// Built-in KWay runs through a cache-held scratch, so repeated
		// k values amortize the partitioner's working storage.
		c.sc = &kwayScratch{}
	}
	return c
}

// SetBacking attaches a persistence layer consulted between the
// in-memory map and the engine. Call before the cache is shared across
// goroutines (newPartitioner attaches it at construction time); a nil
// backing restores pure in-memory behaviour.
func (c *Cache) SetBacking(b Backing) { c.backing = b }

// loadBacked consults the backing for k and validates the shape of
// what it returns: the right vertex count and every label in [0, k).
// Anything malformed is discarded — the engine recomputes — so a
// corrupt or mis-keyed store can cost time but never correctness. A
// valid load is re-canonicalized (idempotent for the canonical vectors
// Store receives) so downstream consumers keep the Canonical contract
// even against a hand-edited store.
func (c *Cache) loadBacked(k int) ([]int, bool) {
	part, ok := c.backing.Load(k)
	if !ok || len(part) != c.g.N() {
		return nil, false
	}
	for _, p := range part {
		if p < 0 || p >= k {
			return nil, false
		}
	}
	return Canonical(part, k), true
}

// Partition returns the canonical k-way partition of the cached graph,
// computing it on first use. Errors are memoized too: an infeasible k
// (e.g. k*MaxPartSize < n) fails once and every later lookup returns
// the same error without re-running the engine.
func (c *Cache) Partition(k int) ([]int, error) {
	return c.PartitionScratch(k, nil)
}

// PartitionScratch is Partition computing misses through caller-owned
// working storage. A nil sc falls back to the cache-held scratch,
// serialized by its mutex; a per-goroutine sc lets concurrent misses
// on distinct k values proceed in parallel. Either way the stored
// result is bit-identical — the engines are deterministic and scratch
// contents never influence the output — so the first store wins and
// racing duplicates are discarded.
func (c *Cache) PartitionScratch(k int, sc *Scratch) ([]int, error) {
	c.mu.Lock()
	e, ok := c.byK[k]
	c.mu.Unlock()
	if ok {
		return e.part, e.err
	}
	// Backing probe, outside the byK lock like the compute below: a
	// validated load is bit-identical to the compute it replaces (the
	// store is keyed by the graph/engine/options identity), so racing
	// loaders and computers still agree and first-store-wins holds.
	if c.backing != nil {
		if part, ok := c.loadBacked(k); ok {
			c.mu.Lock()
			defer c.mu.Unlock()
			if prev, ok := c.byK[k]; ok {
				return prev.part, prev.err
			}
			c.byK[k] = cacheEntry{part: part}
			return part, nil
		}
	}
	// Compute outside the byK lock; determinism makes a racing
	// duplicate computation identical.
	var part []int
	var err error
	switch {
	case c.engine != nil:
		part, err = c.engine(c.g, k, c.opt)
	case sc != nil:
		part, err = kwayWith(c.g, k, c.opt, &sc.kway)
	default:
		// Scratch-less built-in path: serialize on the cache-held
		// buffers. Occasional callers share one allocation; sweeps that
		// care pass their own scratch above.
		c.scMu.Lock()
		part, err = kwayWith(c.g, k, c.opt, c.sc)
		c.scMu.Unlock()
	}
	if err == nil {
		part = Canonical(part, k)
		if c.backing != nil {
			// Write-through before publication; a racing duplicate
			// stores identical bytes, so order is immaterial.
			c.backing.Store(k, part)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.byK[k]; ok {
		return prev.part, prev.err
	}
	c.byK[k] = cacheEntry{part: part, err: err}
	c.misses++
	return part, err
}

// Stats reports the number of distinct k values computed so far (cache
// entries, i.e. engine invocations that were stored).
func (c *Cache) Stats() (entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.misses
}
