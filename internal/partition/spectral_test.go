package partition

import (
	"testing"
	"testing/quick"

	"nocvi/internal/graph"
)

func TestSpectralTwoClusters(t *testing.T) {
	g := twoClusters()
	part, err := SpectralKWay(g, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	part = Canonical(part, 2)
	want := []int{0, 0, 0, 0, 1, 1, 1, 1}
	for v := range want {
		if part[v] != want[v] {
			t.Fatalf("part = %v, want %v", part, want)
		}
	}
	if cut := CutWeight(g, part); cut != 1 {
		t.Fatalf("cut = %g, want 1", cut)
	}
}

func TestSpectralErrors(t *testing.T) {
	g := graph.NewUndirected(4)
	if _, err := SpectralKWay(g, 0, Options{}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := SpectralKWay(g, 5, Options{}); err == nil {
		t.Fatal("k>n accepted")
	}
	if _, err := SpectralKWay(g, 2, Options{MaxPartSize: 1}); err == nil {
		t.Fatal("infeasible cap accepted")
	}
}

func TestSpectralEdgeless(t *testing.T) {
	g := graph.NewUndirected(6)
	part, err := SpectralKWay(g, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sz := Sizes(part, 3)
	for p, s := range sz {
		if s != 2 {
			t.Fatalf("part %d size %d on edgeless graph", p, s)
		}
	}
}

func TestSpectralDeterministic(t *testing.T) {
	g := twoClusters()
	a, _ := SpectralKWay(g, 4, Options{})
	for i := 0; i < 4; i++ {
		b, _ := SpectralKWay(g, 4, Options{})
		for v := range a {
			if a[v] != b[v] {
				t.Fatalf("run %d differs at %d", i, v)
			}
		}
	}
}

// Spectral and FM must agree on an easy ring-of-cliques instance: the
// cut severs only the light inter-clique edges.
func TestSpectralRingOfCliques(t *testing.T) {
	const cliques, size = 4, 4
	g := graph.NewUndirected(cliques * size)
	for c := 0; c < cliques; c++ {
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				g.AddEdge(c*size+i, c*size+j, 20)
			}
		}
		// one light edge to the next clique
		g.AddEdge(c*size, ((c+1)%cliques)*size+1, 1)
	}
	part, err := SpectralKWay(g, cliques, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cut := CutWeight(g, part); cut != 4 {
		t.Fatalf("cut = %g, want the 4 light edges", cut)
	}
	// No clique split across parts.
	for c := 0; c < cliques; c++ {
		for i := 1; i < size; i++ {
			if part[c*size+i] != part[c*size] {
				t.Fatalf("clique %d split: %v", c, part)
			}
		}
	}
}

// Property: SpectralKWay obeys the same structural invariants as KWay.
func TestSpectralInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := seed
		next := func(m int) int {
			r = r*6364136223846793005 + 1442695040888963407
			return int((uint64(r) >> 33) % uint64(m))
		}
		n := 3 + next(16)
		g := graph.NewUndirected(n)
		var total float64
		for i := 0; i < n*2; i++ {
			a, b := next(n), next(n)
			if a == b {
				continue
			}
			w := float64(next(40) + 1)
			g.AddEdge(a, b, w)
			total += w
		}
		k := 1 + next(n)
		part, err := SpectralKWay(g, k, Options{})
		if err != nil {
			return false
		}
		maxAllowed := (n + k - 1) / k
		for _, s := range Sizes(part, k) {
			if s < 1 || s > maxAllowed {
				return false
			}
		}
		return CutWeight(g, part) <= total+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// On structured graphs the spectral cut should be competitive with FM.
func TestSpectralCompetitiveWithFM(t *testing.T) {
	const cliques, size = 6, 3
	g := graph.NewUndirected(cliques * size)
	for c := 0; c < cliques; c++ {
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				g.AddEdge(c*size+i, c*size+j, 10)
			}
		}
		g.AddEdge(c*size, ((c+1)%cliques)*size, 1)
		g.AddEdge(c*size+1, ((c+2)%cliques)*size, 1)
	}
	fm, err := KWay(g, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := SpectralKWay(g, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fmCut, spCut := CutWeight(g, fm), CutWeight(g, sp)
	if spCut > fmCut*2 {
		t.Fatalf("spectral cut %.0f far above FM cut %.0f", spCut, fmCut)
	}
}
