// Package partition implements balanced min-cut graph partitioning, the
// workhorse of Algorithm 1 step 11: "Perform k min-cut partitions of
// VCG(V,E,j)". Cores in a partition share a switch, so a good min-cut
// keeps heavily-communicating cores on the same switch.
//
// The implementation is a deterministic Fiduccia–Mattheyses (FM) style
// bisection with prefix-rollback, applied recursively for k-way cuts and
// followed by a direct k-way refinement sweep. Graphs in this domain are
// small (tens of cores per island), so clarity is preferred over bucket
// data structures; every pass is O(n^2 · degree) worst case.
package partition

import (
	"fmt"
	"math"
	"sort"

	"nocvi/internal/graph"
)

// Options tunes the partitioner.
type Options struct {
	// MaxPartSize caps the number of vertices per part. Zero means
	// unbounded. KWay returns an error when k*MaxPartSize < n.
	MaxPartSize int

	// Passes bounds the number of FM improvement passes per bisection
	// and the number of k-way refinement sweeps. Zero selects the
	// default of 8.
	Passes int
}

func (o Options) passes() int {
	if o.Passes <= 0 {
		return 8
	}
	return o.Passes
}

// KWay partitions the vertices of g into k non-empty balanced parts
// minimizing the total cut weight. The returned slice maps each vertex to
// its part in [0,k). Part sizes differ by at most one from the ideal
// n/k split before the refinement sweep; refinement preserves the size
// bounds [floor(n/k), ceil(n/k)] unless MaxPartSize forces tighter caps.
func KWay(g *graph.Undirected, k int, opt Options) ([]int, error) {
	return kwayWith(g, k, opt, &kwayScratch{})
}

// kwayScratch pools the working storage of KWay invocations: every
// slice and map the bisection/refinement machinery needs, grown once
// and reused across calls. A Cache running the built-in engine holds
// one, so the dozens of engine invocations of a synthesis sweep share
// buffers instead of allocating ~7 slices per bisection. One scratch
// must not be used by two goroutines concurrently.
type kwayScratch struct {
	vertices []int
	tmp      []int
	side     []bool
	attract  []float64
	locked   []bool
	d        []float64
	swaps    []swapPair
	gains    []float64
	idxOf    map[int]int
	size     []int
	conn     []float64
}

type swapPair struct{ a, b int }

func growInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func growBools(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	return buf[:n]
}

// kwayWith is KWay computing through the given scratch. Only the
// returned part slice is freshly allocated (it escapes into caches and
// results); everything else lives in sc.
func kwayWith(g *graph.Undirected, k int, opt Options, sc *kwayScratch) ([]int, error) {
	n := g.N()
	if k <= 0 {
		return nil, fmt.Errorf("partition: k=%d must be positive", k)
	}
	if k > n {
		return nil, fmt.Errorf("partition: k=%d exceeds vertex count %d", k, n)
	}
	if opt.MaxPartSize > 0 && k*opt.MaxPartSize < n {
		return nil, fmt.Errorf("partition: %d parts of at most %d vertices cannot hold %d vertices", k, opt.MaxPartSize, n)
	}
	part := make([]int, n)
	sc.vertices = growInts(sc.vertices, n)
	for i := range sc.vertices {
		sc.vertices[i] = i
	}
	sc.tmp = growInts(sc.tmp, n)
	if sc.idxOf == nil {
		sc.idxOf = make(map[int]int, n)
	}
	recursiveBisect(g, sc.vertices, k, 0, part, opt, sc, sc.tmp)
	refineKWay(g, part, k, opt, sc)
	return part, nil
}

// recursiveBisect splits vertices into k parts labelled base..base+k-1,
// writing assignments into part. vertices is permuted in place (side A
// becomes a prefix, side B a suffix, both keeping their relative
// order), with tmp — parallel to vertices — as the shuttle buffer.
func recursiveBisect(g *graph.Undirected, vertices []int, k, base int, part []int, opt Options, sc *kwayScratch, tmp []int) {
	if k == 1 {
		for _, v := range vertices {
			part[v] = base
		}
		return
	}
	kA := k / 2
	kB := k - kA
	// Target size of side A proportional to its share of parts.
	sizeA := len(vertices) * kA / k
	if sizeA < kA {
		sizeA = kA // each part needs at least one vertex
	}
	if len(vertices)-sizeA < kB {
		sizeA = len(vertices) - kB
	}
	sideA := bisect(g, vertices, sizeA, opt, sc)
	// Stable in-place split: A-group to tmp's prefix in vertices order,
	// B-group to its suffix in reverse, then copy back un-reversed.
	na, nb := 0, 0
	for i, v := range vertices {
		if sideA[i] {
			tmp[na] = v
			na++
		} else {
			nb++
			tmp[len(vertices)-nb] = v
		}
	}
	copy(vertices[:na], tmp[:na])
	for i := 0; i < nb; i++ {
		vertices[na+i] = tmp[len(vertices)-1-i]
	}
	recursiveBisect(g, vertices[:na], kA, base, part, opt, sc, tmp[:na])
	recursiveBisect(g, vertices[na:], kB, base+kA, part, opt, sc, tmp[na:])
}

// bisect splits the given vertex subset into side A (true) of exactly
// sizeA vertices and side B, minimizing the cut between them within g.
// The result is indexed parallel to vertices; it lives in sc.side and
// is only valid until the next bisect call on the same scratch.
func bisect(g *graph.Undirected, vertices []int, sizeA int, opt Options, sc *kwayScratch) []bool {
	n := len(vertices)
	sc.side = growBools(sc.side, n)
	side := sc.side
	for i := range side {
		side[i] = false
	}
	if sizeA <= 0 {
		return side
	}
	if sizeA >= n {
		for i := range side {
			side[i] = true
		}
		return side
	}
	idxOf := sc.idxOf // graph vertex -> local index
	clear(idxOf)
	for i, v := range vertices {
		idxOf[v] = i
	}

	// Initial solution: grow side A greedily from the vertex with the
	// highest weighted degree inside the subset, always absorbing the
	// outside vertex with the strongest connection to A (deterministic
	// tie-break on vertex id). This seeds FM close to a good cut.
	seed := 0
	best := -1.0
	for i, v := range vertices {
		var wd float64
		g.Neighbors(v, func(u int, w float64) {
			if _, ok := idxOf[u]; ok {
				wd += w
			}
		})
		if wd > best || (wd == best && vertices[i] < vertices[seed]) { //noclint:ignore floateq exact tie-break on weighted degree keeps seed selection deterministic
			best = wd
			seed = i
		}
	}
	side[seed] = true
	sc.attract = growFloats(sc.attract, n)
	attract := sc.attract // connection weight to current A
	for i, v := range vertices {
		if i == seed {
			continue
		}
		attract[i] = weightBetween(g, v, vertices[seed])
	}
	for count := 1; count < sizeA; count++ {
		pick := -1
		bestW := -1.0
		for i := range vertices {
			if side[i] {
				continue
			}
			if attract[i] > bestW || (attract[i] == bestW && pick >= 0 && vertices[i] < vertices[pick]) { //noclint:ignore floateq exact tie-break on attraction keeps growth order deterministic
				bestW = attract[i]
				pick = i
			}
		}
		side[pick] = true
		for i, v := range vertices {
			if !side[i] {
				attract[i] += weightBetween(g, v, vertices[pick])
			}
		}
	}

	// FM passes with exact balance: each pass performs tentative swaps
	// (one A->B and one B->A move per step keeps sizes constant), then
	// rolls back to the best prefix.
	for pass := 0; pass < opt.passes(); pass++ {
		if !fmSwapPass(g, vertices, idxOf, side, sc) {
			break
		}
	}
	return side
}

// weightBetween returns the undirected edge weight between graph
// vertices a and b.
func weightBetween(g *graph.Undirected, a, b int) float64 {
	return g.Weight(a, b)
}

// fmSwapPass performs one Kernighan–Lin style pass of best-gain vertex
// swaps with rollback to the best prefix. It reports whether the pass
// strictly improved the cut.
func fmSwapPass(g *graph.Undirected, vertices []int, idxOf map[int]int, side []bool, sc *kwayScratch) bool {
	n := len(vertices)
	sc.locked = growBools(sc.locked, n)
	locked := sc.locked
	for i := range locked {
		locked[i] = false
	}
	swaps := sc.swaps[:0]
	gains := sc.gains[:0]
	defer func() { sc.swaps, sc.gains = swaps[:0], gains[:0] }()

	// d[i] = external - internal connection weight of vertex i under the
	// current side assignment (classic KL D-values, subset-local).
	sc.d = growFloats(sc.d, n)
	d := sc.d
	recompute := func() {
		for i, v := range vertices {
			var ext, int_ float64
			g.Neighbors(v, func(u int, w float64) {
				j, ok := idxOf[u]
				if !ok {
					return
				}
				if side[j] == side[i] {
					int_ += w
				} else {
					ext += w
				}
			})
			d[i] = ext - int_
		}
	}
	recompute()

	steps := n / 2
	for s := 0; s < steps; s++ {
		bestGain := math.Inf(-1)
		bi, bj := -1, -1
		for i := 0; i < n; i++ {
			if locked[i] || !side[i] {
				continue
			}
			for j := 0; j < n; j++ {
				if locked[j] || side[j] {
					continue
				}
				gain := d[i] + d[j] - 2*weightBetween(g, vertices[i], vertices[j])
				if gain > bestGain || //noclint:ignore floateq exact tie-break on KL gain keeps swap selection deterministic
					(gain == bestGain && (bi == -1 || vertices[i] < vertices[bi] || (vertices[i] == vertices[bi] && vertices[j] < vertices[bj]))) {
					bestGain = gain
					bi, bj = i, j
				}
			}
		}
		if bi == -1 {
			break
		}
		side[bi], side[bj] = false, true
		locked[bi], locked[bj] = true, true
		swaps = append(swaps, swapPair{bi, bj})
		gains = append(gains, bestGain)
		recompute()
	}

	// Best prefix of cumulative gains.
	bestSum, bestK := 0.0, 0
	sum := 0.0
	for k, gn := range gains {
		sum += gn
		if sum > bestSum+1e-12 {
			bestSum = sum
			bestK = k + 1
		}
	}
	// Roll back swaps after the best prefix.
	for k := len(swaps) - 1; k >= bestK; k-- {
		side[swaps[k].a], side[swaps[k].b] = true, false
	}
	return bestK > 0
}

// refineKWay sweeps vertices, moving each to the part that most reduces
// the cut while keeping every part within [1, cap] and within balance
// bounds ceil(n/k) (+MaxPartSize if tighter). Deterministic and runs
// opt.passes() sweeps at most.
func refineKWay(g *graph.Undirected, part []int, k int, opt Options, sc *kwayScratch) {
	n := len(part)
	if k <= 1 {
		return
	}
	maxSize := (n + k - 1) / k
	if opt.MaxPartSize > 0 && opt.MaxPartSize < maxSize {
		maxSize = opt.MaxPartSize
	}
	if maxSize < 1 {
		maxSize = 1
	}
	sc.size = growInts(sc.size, k)
	size := sc.size
	for i := range size {
		size[i] = 0
	}
	for _, p := range part {
		size[p]++
	}
	sc.conn = growFloats(sc.conn, k)
	conn := sc.conn
	for pass := 0; pass < opt.passes(); pass++ {
		improved := false
		for v := 0; v < n; v++ {
			cur := part[v]
			if size[cur] <= 1 {
				continue // never empty a part
			}
			for p := range conn {
				conn[p] = 0
			}
			g.Neighbors(v, func(u int, w float64) {
				conn[part[u]] += w
			})
			bestP, bestGain := cur, 0.0
			for p := 0; p < k; p++ {
				if p == cur || size[p] >= maxSize {
					continue
				}
				gain := conn[p] - conn[cur]
				if gain > bestGain+1e-12 || (gain > bestGain-1e-12 && gain > 0 && p < bestP && bestP != cur) {
					bestGain = gain
					bestP = p
				}
			}
			if bestP != cur {
				size[cur]--
				size[bestP]++
				part[v] = bestP
				improved = true
			}
		}
		if !improved {
			break
		}
	}
}

// Sizes returns the size of each of the k parts.
func Sizes(part []int, k int) []int {
	size := make([]int, k)
	for _, p := range part {
		if p < 0 || p >= k {
			panic(fmt.Sprintf("partition: part id %d out of range [0,%d)", p, k))
		}
		size[p]++
	}
	return size
}

// CutWeight returns the total weight of edges of g crossing parts.
func CutWeight(g *graph.Undirected, part []int) float64 {
	var cut float64
	for v := 0; v < g.N(); v++ {
		g.Neighbors(v, func(u int, w float64) {
			if v < u && part[v] != part[u] {
				cut += w
			}
		})
	}
	return cut
}

// Canonical relabels parts so that part IDs appear in ascending order of
// their smallest member vertex, which makes results comparable across
// algorithm variants in tests.
func Canonical(part []int, k int) []int {
	first := make([]int, k)
	for i := range first {
		first[i] = math.MaxInt32
	}
	for v, p := range part {
		if v < first[p] {
			first[p] = v
		}
	}
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return first[order[a]] < first[order[b]] })
	relabel := make([]int, k)
	for newID, oldID := range order {
		relabel[oldID] = newID
	}
	out := make([]int, len(part))
	for v, p := range part {
		out[v] = relabel[p]
	}
	return out
}
