package partition

import (
	"fmt"
	"sync"
	"testing"

	"nocvi/internal/graph"
)

func cacheTestGraph() *graph.Undirected {
	g := graph.NewUndirected(12)
	s := uint64(7)
	for i := 0; i < 40; i++ {
		s = s*6364136223846793005 + 1442695040888963407
		u := int((s >> 33) % 12)
		v := int((s >> 13) % 12)
		if u != v {
			g.AddEdge(u, v, float64(s%50)+1)
		}
	}
	return g
}

func TestCacheMatchesDirectKWay(t *testing.T) {
	g := cacheTestGraph()
	c := NewCache(g, nil, Options{})
	for k := 1; k <= 6; k++ {
		direct, err := KWay(g, k, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprint(Canonical(direct, k))
		for pass := 0; pass < 2; pass++ { // second pass must hit the cache
			got, err := c.Partition(k)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(got) != want {
				t.Fatalf("k=%d pass %d: %v, want %v", k, pass, got, want)
			}
		}
	}
	if c.Stats() != 6 {
		t.Fatalf("expected 6 cache entries, got %d", c.Stats())
	}
}

func TestCacheMemoizesErrors(t *testing.T) {
	c := NewCache(cacheTestGraph(), nil, Options{MaxPartSize: 2})
	for pass := 0; pass < 2; pass++ {
		if _, err := c.Partition(3); err == nil { // 3*2 < 12 vertices
			t.Fatal("infeasible k accepted")
		}
	}
	if _, err := c.Partition(6); err != nil { // 6*2 == 12: feasible
		t.Fatal(err)
	}
	if c.Stats() != 2 {
		t.Fatalf("expected 2 entries (one error, one partition), got %d", c.Stats())
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	g := cacheTestGraph()
	c := NewCache(g, SpectralKWay, Options{})
	want := make([]string, 7)
	for k := 1; k <= 6; k++ {
		p, err := SpectralKWay(g, k, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want[k] = fmt.Sprint(Canonical(p, k))
	}
	var wg sync.WaitGroup
	errs := make(chan error, 60)
	for w := 0; w < 10; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 1; k <= 6; k++ {
				got, err := c.Partition(k)
				if err != nil {
					errs <- err
					return
				}
				if fmt.Sprint(got) != want[k] {
					errs <- fmt.Errorf("k=%d: %v, want %v", k, got, want[k])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
