package partition

import (
	"testing"
	"testing/quick"

	"nocvi/internal/graph"
)

// twoClusters builds a graph with two dense 4-vertex clusters joined by a
// single light edge; the optimal bisection is obvious.
func twoClusters() *graph.Undirected {
	g := graph.NewUndirected(8)
	heavy := func(vs []int) {
		for i := 0; i < len(vs); i++ {
			for j := i + 1; j < len(vs); j++ {
				g.AddEdge(vs[i], vs[j], 10)
			}
		}
	}
	heavy([]int{0, 1, 2, 3})
	heavy([]int{4, 5, 6, 7})
	g.AddEdge(3, 4, 1)
	return g
}

func TestKWayTwoClusters(t *testing.T) {
	g := twoClusters()
	part, err := KWay(g, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	part = Canonical(part, 2)
	want := []int{0, 0, 0, 0, 1, 1, 1, 1}
	for v := range want {
		if part[v] != want[v] {
			t.Fatalf("part = %v, want %v", part, want)
		}
	}
	if cut := CutWeight(g, part); cut != 1 {
		t.Fatalf("cut = %g, want 1", cut)
	}
}

func TestKWayErrors(t *testing.T) {
	g := graph.NewUndirected(4)
	if _, err := KWay(g, 0, Options{}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := KWay(g, 5, Options{}); err == nil {
		t.Fatal("k>n accepted")
	}
	if _, err := KWay(g, 2, Options{MaxPartSize: 1}); err == nil {
		t.Fatal("infeasible MaxPartSize accepted")
	}
}

func TestKWaySingletonParts(t *testing.T) {
	g := twoClusters()
	part, err := KWay(g, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sz := Sizes(part, 8)
	for p, s := range sz {
		if s != 1 {
			t.Fatalf("part %d has size %d, want 1", p, s)
		}
	}
}

func TestKWayK1(t *testing.T) {
	g := twoClusters()
	part, err := KWay(g, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range part {
		if p != 0 {
			t.Fatal("k=1 must put everything in part 0")
		}
	}
	if CutWeight(g, part) != 0 {
		t.Fatal("k=1 cut must be 0")
	}
}

func TestKWayDisconnected(t *testing.T) {
	g := graph.NewUndirected(6)
	g.AddEdge(0, 1, 5)
	g.AddEdge(2, 3, 5)
	g.AddEdge(4, 5, 5)
	part, err := KWay(g, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cut := CutWeight(g, part); cut != 0 {
		t.Fatalf("three disjoint pairs should cut 0, got %g (part=%v)", cut, part)
	}
}

func TestKWayRespectsMaxPartSize(t *testing.T) {
	g := graph.NewUndirected(9)
	// star: vertex 0 heavily connected to everything, tempting a huge part
	for v := 1; v < 9; v++ {
		g.AddEdge(0, v, 100)
	}
	part, err := KWay(g, 3, Options{MaxPartSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	for p, s := range Sizes(part, 3) {
		if s > 3 || s < 1 {
			t.Fatalf("part %d size %d violates [1,3]", p, s)
		}
	}
}

func TestKWayDeterministic(t *testing.T) {
	g := twoClusters()
	a, _ := KWay(g, 3, Options{})
	for i := 0; i < 5; i++ {
		b, _ := KWay(g, 3, Options{})
		for v := range a {
			if a[v] != b[v] {
				t.Fatalf("run %d differs at vertex %d", i, v)
			}
		}
	}
}

func TestCanonical(t *testing.T) {
	part := []int{2, 2, 0, 1, 1}
	got := Canonical(part, 3)
	want := []int{0, 0, 1, 2, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Canonical = %v, want %v", got, want)
		}
	}
}

func TestSizesPanicsOnBadPart(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Sizes([]int{0, 3}, 2)
}

func TestRefinementImprovesGreedySplit(t *testing.T) {
	// Path graph 0-1-2-3-4-5 with a heavy middle edge. Under the strict
	// 3/3 balance the optimum is 6 (e.g. {0,1,5} vs {2,3,4}); the naive
	// contiguous split costs 9. The FM pass must find a 6-cut.
	g := graph.NewUndirected(6)
	weights := []float64{5, 1, 9, 1, 5}
	for i := 0; i < 5; i++ {
		g.AddEdge(i, i+1, weights[i])
	}
	part, err := KWay(g, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cut := CutWeight(g, part)
	if cut > 6 {
		t.Fatalf("cut = %g, want the balanced optimum 6", cut)
	}
}

// Property: KWay always produces k non-empty parts, respects MaxPartSize,
// covers every vertex, and its cut never exceeds the total edge weight.
func TestKWayInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := seed
		next := func(m int) int {
			r = r*6364136223846793005 + 1442695040888963407
			v := int((uint64(r) >> 33) % uint64(m))
			return v
		}
		n := 3 + next(20)
		g := graph.NewUndirected(n)
		var total float64
		for i := 0; i < n*2; i++ {
			a, b := next(n), next(n)
			if a == b {
				continue
			}
			w := float64(next(50) + 1)
			g.AddEdge(a, b, w)
			total += w
		}
		k := 1 + next(n)
		part, err := KWay(g, k, Options{})
		if err != nil {
			return false
		}
		sz := Sizes(part, k)
		maxAllowed := (n + k - 1) / k
		for _, s := range sz {
			if s < 1 || s > maxAllowed {
				return false
			}
		}
		return CutWeight(g, part) <= total+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: on two disjoint equally-sized cliques, 2-way cut is zero.
func TestKWayCliquePairProperty(t *testing.T) {
	f := func(szRaw uint8) bool {
		sz := 2 + int(szRaw%5)
		g := graph.NewUndirected(2 * sz)
		for c := 0; c < 2; c++ {
			for i := 0; i < sz; i++ {
				for j := i + 1; j < sz; j++ {
					g.AddEdge(c*sz+i, c*sz+j, 3)
				}
			}
		}
		part, err := KWay(g, 2, Options{})
		if err != nil {
			return false
		}
		return CutWeight(g, part) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
