package fault

import (
	"strings"
	"testing"

	"nocvi/internal/bench"
	"nocvi/internal/core"
	"nocvi/internal/model"
	"nocvi/internal/viplace"
)

func synthD26(t *testing.T) *core.DesignPoint {
	t.Helper()
	spec, err := bench.D26Islands(viplace.MethodLogical, 6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Synthesize(spec, model.Default65nm(), core.Options{
		AllowIntermediate: true, MaxDesignPoints: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Best()
}

func TestAnalyzeD26(t *testing.T) {
	dp := synthD26(t)
	rep, err := Analyze(dp.Top)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Links != len(dp.Top.Links) || len(rep.Outcomes) != rep.Links {
		t.Fatalf("coverage wrong: %d outcomes for %d links", len(rep.Outcomes), rep.Links)
	}
	// The custom topology is traffic-minimal: most links are the only
	// path between their endpoints, so most single failures must be
	// unrecoverable — the paper's point that rerouting cannot guarantee
	// connectivity, which is why shutdown must be designed for instead.
	if rep.RecoverableFrac() > 0.8 {
		t.Fatalf("minimal topology recovered %.0f%% of failures — suspicious", rep.RecoverableFrac()*100)
	}
	for _, o := range rep.Outcomes {
		if o.AffectedFlows == 0 && !o.Recovered {
			t.Fatalf("link %d affects no flow but failed to recover: %s", o.Link, o.Reason)
		}
		if !o.Recovered && o.Reason == "" {
			t.Fatalf("link %d unrecovered without a reason", o.Link)
		}
	}
	if !strings.Contains(rep.Format(), "single-link-failure sweep") {
		t.Fatal("format broken")
	}
}

// A topology with a redundant parallel path must recover the failure.
func TestRedundantPathRecovers(t *testing.T) {
	dp := synthD26(t)
	top := dp.Top
	// Duplicate the busiest link's endpoints through the intermediate
	// island if present... simpler: analyze a link that no flow uses.
	// Build one: find two switches in the same island without a link.
	added := false
	var addedID int
	for i := 0; i < len(top.Switches) && !added; i++ {
		for j := 0; j < len(top.Switches) && !added; j++ {
			if i == j || top.Switches[i].Island != top.Switches[j].Island {
				continue
			}
			if _, ok := top.FindLink(top.Switches[i].ID, top.Switches[j].ID); ok {
				continue
			}
			lid, err := top.AddLink(top.Switches[i].ID, top.Switches[j].ID)
			if err == nil {
				added = true
				addedID = int(lid)
			}
		}
	}
	if !added {
		t.Skip("no free switch pair to add a redundant link")
	}
	rep, err := Analyze(top)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range rep.Outcomes {
		if int(o.Link) == addedID {
			if o.AffectedFlows != 0 {
				t.Fatal("fresh link should carry no flows")
			}
			if !o.Recovered {
				t.Fatalf("failure of an unused link must be recoverable: %s", o.Reason)
			}
		}
	}
}
