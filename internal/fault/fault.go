// Package fault analyzes single-link-failure recoverability of a
// synthesized topology, quantifying the paper's related-work argument:
// rerouting around failed (or shut down) components "does not guarantee
// the availability of paths" [20]. For every link of the design the
// analysis removes it and attempts to re-route all affected flows over
// the *remaining* links only (silicon cannot grow wires after
// fabrication), under the same island discipline, capacity and latency
// constraints. The fraction of unrecoverable failures is the number the
// paper's design-time guarantee avoids paying at run time.
package fault

import (
	"fmt"
	"sort"
	"strings"

	"nocvi/internal/route"
	"nocvi/internal/soc"
	"nocvi/internal/topology"
)

// LinkOutcome is the recovery result for one failed link.
type LinkOutcome struct {
	Link topology.LinkID
	// AffectedFlows counts flows whose route used the link.
	AffectedFlows int
	// Recovered is true when every affected flow found a new path over
	// the surviving links within its constraints.
	Recovered bool
	// ZeroReroute marks a recovery that needed no re-routing at all:
	// every affected flow fell back to a pre-synthesized disjoint
	// backup route (topology.Route.Backups). This is the recovery mode
	// survivable designs (core.Options.Survivability >= 1) guarantee.
	// omitempty keeps k=0 campaign reports byte-identical to builds
	// that predate the field.
	ZeroReroute bool `json:",omitempty"`
	// Reason holds the first failure when not recovered.
	Reason string
}

// Report summarizes the single-link-failure sweep.
type Report struct {
	Links       int
	Recoverable int
	Outcomes    []LinkOutcome
}

// RecoverableFrac returns the fraction of link failures the routing
// could work around.
func (r *Report) RecoverableFrac() float64 {
	if r.Links == 0 {
		return 1
	}
	return float64(r.Recoverable) / float64(r.Links)
}

// Analyze sweeps every link of the topology. Outcomes are sorted by
// LinkID and Reason strings are single-line, so reports of the same
// design are byte-identical across runs.
func Analyze(top *topology.Topology) (*Report, error) {
	rep := &Report{Links: len(top.Links)}
	for _, l := range top.Links {
		out, err := tryWithout(top, l.ID)
		if err != nil {
			return nil, err
		}
		if out.Recovered {
			rep.Recoverable++
		}
		rep.Outcomes = append(rep.Outcomes, *out)
	}
	sortOutcomes(rep.Outcomes)
	return rep, nil
}

// sortOutcomes orders a sweep's outcomes canonically by failed link.
// Sweeps emit them in link order already; sorting here pins the report
// layout as an invariant rather than a side effect of iteration order.
func sortOutcomes(outs []LinkOutcome) {
	sort.Slice(outs, func(i, j int) bool { return outs[i].Link < outs[j].Link })
}

// stableReason normalizes an error into a deterministic single-line
// Reason string.
func stableReason(err error) string {
	s := err.Error()
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	return s
}

// tryWithout rebuilds the design without the failed link and re-routes
// everything over the surviving links.
func tryWithout(orig *topology.Topology, failed topology.LinkID) (*LinkOutcome, error) {
	out := &LinkOutcome{Link: failed}
	for ri := range orig.Routes {
		for _, lid := range orig.Routes[ri].Links {
			if lid == failed {
				out.AffectedFlows++
				break
			}
		}
	}

	top, err := rebuildWithout(orig, failed)
	if err != nil {
		return nil, err
	}
	r := route.New(top, route.Options{NoNewLinks: true})
	if err := r.RouteAll(); err != nil {
		out.Recovered = false
		out.Reason = stableReason(err)
		return out, nil
	}
	if err := top.Validate(); err != nil {
		out.Recovered = false
		out.Reason = stableReason(err)
		return out, nil
	}
	out.Recovered = true
	return out, nil
}

// rebuildWithout reconstructs the design — same island settings,
// switches and core attachments, traffic reset, no routes committed —
// with every link except the failed one (pass a negative LinkID to keep
// all links). Both the single-link sweep and the power-state campaign
// re-route on topologies built here.
func rebuildWithout(orig *topology.Topology, failed topology.LinkID) (*topology.Topology, error) {
	top := topology.New(orig.Spec, orig.Lib)
	for i := 0; i < len(orig.Spec.Islands); i++ {
		top.SetIslandFreq(soc.IslandID(i), orig.IslandFreqHz[i])
		top.SetIslandVoltage(soc.IslandID(i), orig.IslandVoltage[i])
	}
	if orig.NoCIsland != soc.NoIsland {
		top.AddNoCIsland(orig.IslandFreqHz[orig.NoCIsland], orig.IslandVoltage[orig.NoCIsland])
	}
	for _, s := range orig.Switches {
		id := top.AddSwitch(s.Island, s.Indirect)
		if id != s.ID {
			return nil, fmt.Errorf("fault: switch renumbering (%d vs %d)", id, s.ID)
		}
	}
	for c, sw := range orig.SwitchOf {
		if sw < 0 {
			continue
		}
		if err := top.AttachCore(soc.CoreID(c), sw); err != nil {
			return nil, err
		}
	}
	for _, l := range orig.Links {
		if l.ID == failed {
			continue
		}
		if _, err := top.AddLink(l.From, l.To); err != nil {
			return nil, err
		}
	}
	return top, nil
}

// Format renders the report.
func (r *Report) Format() string {
	s := fmt.Sprintf("single-link-failure sweep: %d/%d recoverable (%.0f%%)\n",
		r.Recoverable, r.Links, r.RecoverableFrac()*100)
	for _, o := range r.Outcomes {
		if !o.Recovered {
			s += fmt.Sprintf("  link %d UNRECOVERABLE (%d flows affected): %s\n",
				o.Link, o.AffectedFlows, o.Reason)
		}
	}
	return s
}
