// Power-state fault campaign: the design-time guarantee of the paper,
// exercised exhaustively. The single-link sweep in fault.go verifies
// recoverability with every island powered; the campaign enumerates the
// actual power states the design was synthesized for — every subset of
// shut-downable islands gated — and under each state checks the
// shutdown invariant (every flow between surviving islands keeps its
// committed route) and composes single-link failures with re-routing
// restricted to surviving links. A synthesized design must report zero
// invariant violations for every state; the per-state link-fault
// recoverability quantifies how much slack beyond the guarantee the
// topology carries.
package fault

import (
	"fmt"
	"sort"
	"strings"

	"nocvi/internal/route"
	"nocvi/internal/sim"
	"nocvi/internal/soc"
	"nocvi/internal/topology"
)

// DefaultMaxStates caps the number of power states a campaign
// evaluates. Designs with up to 6 shut-downable islands are enumerated
// exhaustively; beyond that the state space is sampled.
const DefaultMaxStates = 64

// CampaignOptions configures a power-state fault campaign.
type CampaignOptions struct {
	// MaxStates caps the number of power states evaluated; zero selects
	// DefaultMaxStates. When the full state space exceeds the cap, the
	// campaign always keeps the all-on state and every single-island
	// state, and fills the remainder with a deterministic sample of
	// multi-island states — the same sample on every run.
	MaxStates int

	// SimVerify additionally runs the cycle-level simulator under each
	// power state (sim.VerifyShutdownDelivery): beyond the structural
	// invariant, surviving traffic must actually deliver.
	SimVerify bool

	// Workers bounds the goroutines evaluating power states
	// concurrently. Zero evaluates serially. Every worker count yields a
	// byte-identical report: states are enumerated up front and results
	// collected in state order.
	Workers int

	// Survivability is the synthesis survivability level the design was
	// built with (core.Options.Survivability). When >= 1 the campaign
	// asserts zero-re-route recovery instead of attempting repair: every
	// affected active flow must hold a pre-synthesized backup route that
	// avoids the failed link and the gated islands, and a link fault
	// with no such backup is reported unrecoverable — the campaign never
	// falls back to re-routing, because re-routing is exactly what the
	// guarantee promises to make unnecessary. Zero keeps the historical
	// behaviour: recoverability via constrained re-routing.
	Survivability int
}

// StateOutcome is the campaign result for one power state.
type StateOutcome struct {
	// Mask is the gated-subset bitmask over the shut-downable islands
	// (bit i gates the i-th shut-downable island, in island order); the
	// campaign's canonical state ordering is ascending Mask.
	Mask uint64 `json:"mask"`

	// State names the gated islands, "all-on" for the empty mask.
	State string `json:"state"`

	// Off is the per-spec-island gating mask the state denotes.
	Off []bool `json:"-"`

	// ActiveFlows counts flows with both endpoints on surviving islands
	// — the traffic the invariant protects under this state.
	ActiveFlows int `json:"active_flows"`

	// InvariantOK reports the paper's guarantee for this state: every
	// active flow's committed route avoids every gated island.
	// InvariantErr holds the first violation when not OK.
	InvariantOK  bool   `json:"invariant_ok"`
	InvariantErr string `json:"invariant_err,omitempty"`

	// Links counts the powered links subjected to single-link failure
	// under this state; Recoverable how many of those failures the
	// surviving links could route around. ZeroReroute counts the subset
	// recovered purely by pre-synthesized backup routes — all of
	// Recoverable for survivable designs, zero (and omitted) otherwise.
	Links       int `json:"links"`
	Recoverable int `json:"recoverable"`
	ZeroReroute int `json:"zero_reroute,omitempty"`

	// Unrecovered lists the link failures the state could not absorb,
	// sorted by LinkID.
	Unrecovered []LinkOutcome `json:"unrecovered,omitempty"`
}

// Campaign is the aggregate report of a power-state fault campaign.
type Campaign struct {
	Design string `json:"design"`

	// Islands and Shutdownable describe the state space: 2^Shutdownable
	// power states in total, of which len(States) were evaluated.
	Islands      int   `json:"islands"`
	Shutdownable int   `json:"shutdownable"`
	StateSpace   int64 `json:"state_space"`
	Sampled      bool  `json:"sampled,omitempty"`

	States []StateOutcome `json:"states"`

	// InvariantViolations counts states whose shutdown invariant failed
	// — zero for any design the synthesis engine produced.
	InvariantViolations int `json:"invariant_violations"`

	// LinkFaults and Recovered aggregate the per-state link-failure
	// sweeps; ZeroReroute the subset recovered purely via pre-synthesized
	// backup routes. Survivability echoes the level the campaign asserted
	// (CampaignOptions.Survivability). Both are omitted at zero, keeping
	// k=0 reports byte-identical to builds that predate the fields.
	LinkFaults    int `json:"link_faults"`
	Recovered     int `json:"recovered"`
	ZeroReroute   int `json:"zero_reroute,omitempty"`
	Survivability int `json:"survivability,omitempty"`
}

// OK reports whether every evaluated power state upheld the shutdown
// invariant.
func (c *Campaign) OK() bool { return c.InvariantViolations == 0 }

// RecoverableFrac is the aggregate fraction of (power state, link
// failure) combinations the surviving links could route around.
func (c *Campaign) RecoverableFrac() float64 {
	if c.LinkFaults == 0 {
		return 1
	}
	return float64(c.Recovered) / float64(c.LinkFaults)
}

// RestoreOff rebuilds every state's per-island Off mask against the
// given topology. Off is derived state — mask bit i gates the i-th
// shut-downable island, exactly as evalState expands it — and is
// excluded from the JSON encoding, so consumers that round-trip a
// campaign through JSON (the content-addressed result cache, external
// tooling) call RestoreOff after decoding to recover it. The topology
// must be the design the campaign was run on; the cache guarantees
// that by keying campaign entries on the topology's content digest.
func (c *Campaign) RestoreOff(top *topology.Topology) {
	shutdownable := shutdownableIslands(top)
	for i := range c.States {
		s := &c.States[i]
		off := make([]bool, len(top.Spec.Islands))
		for j, isl := range shutdownable {
			if s.Mask&(1<<uint(j)) != 0 {
				off[isl] = true
			}
		}
		s.Off = off
	}
}

// RunCampaign evaluates the power-state fault campaign on a routed
// topology.
func RunCampaign(top *topology.Topology, opt CampaignOptions) (*Campaign, error) {
	shutdownable := shutdownableIslands(top)
	k := len(shutdownable)
	c := &Campaign{
		Design:        top.Spec.Name,
		Islands:       len(top.Spec.Islands),
		Shutdownable:  k,
		StateSpace:    stateSpaceSize(k),
		Survivability: opt.Survivability,
	}
	masks := enumerateStates(k, opt.maxStates())
	c.Sampled = int64(len(masks)) < c.StateSpace

	c.States = make([]StateOutcome, len(masks))
	errs := make([]error, len(masks))
	eval := func(i int) {
		c.States[i], errs[i] = evalState(top, shutdownable, masks[i], opt)
	}
	runStates(len(masks), opt.workers(), eval)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	for i := range c.States {
		s := &c.States[i]
		if !s.InvariantOK {
			c.InvariantViolations++
		}
		c.LinkFaults += s.Links
		c.Recovered += s.Recoverable
		c.ZeroReroute += s.ZeroReroute
	}
	return c, nil
}

func (o CampaignOptions) maxStates() int {
	if o.MaxStates <= 0 {
		return DefaultMaxStates
	}
	return o.MaxStates
}

func (o CampaignOptions) workers() int {
	if o.Workers <= 0 {
		return 1
	}
	return o.Workers
}

// runStates evaluates eval(0..n-1) over the given worker count. States
// are independent and results land at their own index, so any worker
// count produces the same report.
func runStates(n, workers int, eval func(int)) {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			eval(i)
		}
		return
	}
	next := make(chan int)
	done := make(chan struct{})
	if workers > n {
		workers = n
	}
	for w := 0; w < workers; w++ {
		go func() {
			for i := range next {
				eval(i)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	for w := 0; w < workers; w++ {
		<-done
	}
}

// shutdownableIslands lists the spec islands the design may gate, in
// island order.
func shutdownableIslands(top *topology.Topology) []soc.IslandID {
	var out []soc.IslandID
	for j := range top.Spec.Islands {
		if top.IslandShutdownable(soc.IslandID(j)) {
			out = append(out, soc.IslandID(j))
		}
	}
	return out
}

// stateSpaceSize returns 2^k, saturating instead of overflowing — a
// design with 63+ shut-downable islands has an astronomically large
// state space, and the campaign samples it either way.
func stateSpaceSize(k int) int64 {
	if k >= 62 {
		return 1 << 62
	}
	return 1 << k
}

// enumerateStates lists the gated-subset bitmasks to evaluate, in
// ascending order. Below the cap the full 2^k space is enumerated.
// Above it the all-on state and every single-island state are always
// kept — they are the states the paper's use cases exercise — and the
// remaining slots are filled with a deterministic splitmix64-driven
// sample of multi-island states, identical on every run.
func enumerateStates(k, limit int) []uint64 {
	if space := stateSpaceSize(k); space <= int64(limit) {
		masks := make([]uint64, space)
		for i := range masks {
			masks[i] = uint64(i)
		}
		return masks
	}
	keep := make(map[uint64]bool, limit)
	keep[0] = true
	for i := 0; i < k && len(keep) < limit; i++ {
		keep[uint64(1)<<i] = true
	}
	// Deterministic sampling: hash a counter through splitmix64 and mask
	// to k bits. Collisions and already-kept masks are skipped; the
	// sequence is fixed, so the sampled set never varies between runs,
	// worker counts or machines.
	var mod uint64 = 1<<uint(k) - 1
	if k >= 64 {
		mod = ^uint64(0)
	}
	for ctr := uint64(1); len(keep) < limit; ctr++ {
		m := splitmix64(ctr) & mod
		if !keep[m] {
			keep[m] = true
		}
	}
	masks := make([]uint64, 0, len(keep))
	for m := range keep {
		masks = append(masks, m)
	}
	sort.Slice(masks, func(i, j int) bool { return masks[i] < masks[j] })
	return masks
}

// splitmix64 is the SplitMix64 finalizer — a tiny, dependency-free
// deterministic bit mixer. The campaign must not use math/rand: the
// determinism lint bans nondeterminism sources from synthesis-path
// packages, and the sampled state set is part of the report contract.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// stateLabel names a power state by its gated islands.
func stateLabel(spec *soc.Spec, off []bool) string {
	var names []string
	for j, gated := range off {
		if gated {
			names = append(names, spec.Islands[j].Name)
		}
	}
	if len(names) == 0 {
		return "all-on"
	}
	return "off:" + strings.Join(names, "+")
}

// evalState checks one power state: the shutdown invariant first, then
// a single-link-failure sweep over the powered links with re-routing of
// the surviving traffic only.
func evalState(top *topology.Topology, shutdownable []soc.IslandID, mask uint64, opt CampaignOptions) (StateOutcome, error) {
	off := make([]bool, len(top.Spec.Islands))
	for i, isl := range shutdownable {
		if mask&(1<<uint(i)) != 0 {
			off[isl] = true
		}
	}
	s := StateOutcome{
		Mask:  mask,
		State: stateLabel(top.Spec, off),
		Off:   off,
	}

	// The paper's invariant, generalized to the whole power state: every
	// flow between surviving islands keeps its committed route.
	s.InvariantOK = true
	if err := top.ValidateShutdownSafeMask(off); err != nil {
		s.InvariantOK = false
		s.InvariantErr = stableReason(err)
	} else if opt.SimVerify {
		if err := sim.VerifyShutdownDelivery(top, off); err != nil {
			s.InvariantOK = false
			s.InvariantErr = stableReason(err)
		}
	}

	active := activeFlows(top.Spec, off)
	s.ActiveFlows = len(active)

	// Single-link failures composed under the state: only powered links
	// can fail meaningfully (a gated island's links are already off),
	// and only the surviving traffic needs a route around the failure.
	for _, l := range top.Links {
		if linkGated(top, l, off) {
			continue
		}
		out, err := tryWithoutUnderState(top, l.ID, off, active, opt.Survivability)
		if err != nil {
			return s, err
		}
		s.Links++
		if out.Recovered {
			s.Recoverable++
			if out.ZeroReroute {
				s.ZeroReroute++
			}
		} else {
			s.Unrecovered = append(s.Unrecovered, *out)
		}
	}
	sortOutcomes(s.Unrecovered)
	return s, nil
}

// activeFlows filters the spec's flows (in decreasing-bandwidth order,
// as the router requires) to those with both endpoints on surviving
// islands.
func activeFlows(spec *soc.Spec, off []bool) []soc.Flow {
	sorted := spec.SortFlowsByBandwidth()
	active := sorted[:0:0]
	for _, f := range sorted {
		if !off[spec.IslandOf[f.Src]] && !off[spec.IslandOf[f.Dst]] {
			active = append(active, f)
		}
	}
	return active
}

// linkGated reports whether either endpoint switch of the link lies in
// a gated island (the intermediate NoC island is never gated).
func linkGated(top *topology.Topology, l topology.Link, off []bool) bool {
	fromIsl := top.Switches[l.From].Island
	toIsl := top.Switches[l.To].Island
	return (int(fromIsl) < len(off) && off[fromIsl]) ||
		(int(toIsl) < len(off) && off[toIsl])
}

// tryWithoutUnderState is tryWithout composed with a power state: the
// failed link is removed, and only the state's active flows are
// re-routed over the surviving links. Routes that never used the link
// are unaffected by its loss, so a failure with zero affected active
// flows recovers trivially without a rebuild. With survivability >= 1
// re-routing is off the table: every affected flow must fall back to a
// pre-synthesized backup route, or the fault is unrecoverable.
func tryWithoutUnderState(orig *topology.Topology, failed topology.LinkID, off []bool, active []soc.Flow, survivability int) (*LinkOutcome, error) {
	out := &LinkOutcome{Link: failed}
	for ri := range orig.Routes {
		r := &orig.Routes[ri]
		if off[orig.Spec.IslandOf[r.Flow.Src]] || off[orig.Spec.IslandOf[r.Flow.Dst]] {
			continue
		}
		for _, lid := range r.Links {
			if lid == failed {
				out.AffectedFlows++
				break
			}
		}
	}
	if out.AffectedFlows == 0 {
		out.Recovered = true
		// No active flow crosses the link: absorbed without re-routing
		// by definition. Only stamped under the survivability contract so
		// k=0 reports stay byte-identical to earlier engine versions.
		out.ZeroReroute = survivability >= 1
		return out, nil
	}
	if survivability >= 1 {
		return recoverViaBackups(orig, failed, off, out)
	}

	top, err := rebuildWithout(orig, failed)
	if err != nil {
		return nil, err
	}
	r := route.New(top, route.Options{NoNewLinks: true})
	if err := r.RouteFlows(active); err != nil {
		out.Reason = stableReason(err)
		return out, nil
	}
	// The re-routed survivor must be well-formed AND still honor the
	// shutdown invariant for this state: recovery that routes surviving
	// traffic through a gated island is no recovery at all.
	if err := top.ValidateRouted(); err != nil {
		out.Reason = stableReason(err)
		return out, nil
	}
	if err := top.ValidateShutdownSafeMask(off); err != nil {
		out.Reason = stableReason(err)
		return out, nil
	}
	out.Recovered = true
	return out, nil
}

// recoverViaBackups resolves a link fault under a survivable design's
// zero-re-route contract: every affected active route must hold a
// pre-synthesized backup path that avoids both the failed link and
// every gated island. No topology is rebuilt and no flow re-routed —
// recovery is a pure lookup, which is the run-time story the
// survivability guarantee buys. The first flow with no usable backup
// makes the fault unrecoverable.
func recoverViaBackups(orig *topology.Topology, failed topology.LinkID, off []bool, out *LinkOutcome) (*LinkOutcome, error) {
	for ri := range orig.Routes {
		r := &orig.Routes[ri]
		if off[orig.Spec.IslandOf[r.Flow.Src]] || off[orig.Spec.IslandOf[r.Flow.Dst]] {
			continue
		}
		affected := false
		for _, lid := range r.Links {
			if lid == failed {
				affected = true
				break
			}
		}
		if !affected {
			continue
		}
		if !hasUsableBackup(orig, r, failed, off) {
			//noclint:ignore bannedcall unrecoverable-fault report message, not a cache key
			out.Reason = fmt.Sprintf("fault: flow %d->%d has no backup route avoiding link %d",
				r.Flow.Src, r.Flow.Dst, failed)
			return out, nil
		}
	}
	out.Recovered = true
	out.ZeroReroute = true
	return out, nil
}

// hasUsableBackup reports whether one of the route's pre-synthesized
// backups survives the composed fault: it must not traverse the failed
// link, and every switch on it must sit in a powered island. For
// designs the synthesis engine produced, the island forward discipline
// already confines backups to the flow's endpoint islands and the
// never-gated intermediate island, so an active flow's backups pass
// the island check by construction — it is verified here, not assumed.
func hasUsableBackup(top *topology.Topology, r *topology.Route, failed topology.LinkID, off []bool) bool {
	for bi := range r.Backups {
		b := &r.Backups[bi]
		usable := true
		for _, lid := range b.Links {
			if lid == failed {
				usable = false
				break
			}
		}
		if !usable {
			continue
		}
		for _, sw := range b.Switches {
			if isl := top.Switches[sw].Island; int(isl) < len(off) && off[isl] {
				usable = false
				break
			}
		}
		if usable {
			return true
		}
	}
	return false
}

// Format renders the campaign report.
func (c *Campaign) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "power-state fault campaign: %s\n", c.Design)
	fmt.Fprintf(&b, "  islands: %d (%d shutdownable), state space %d, evaluated %d states",
		c.Islands, c.Shutdownable, c.StateSpace, len(c.States))
	if c.Sampled {
		b.WriteString(" (sampled)")
	}
	b.WriteByte('\n')
	if c.InvariantViolations == 0 {
		fmt.Fprintf(&b, "  shutdown invariant: OK in all %d states\n", len(c.States))
	} else {
		fmt.Fprintf(&b, "  shutdown invariant: VIOLATED in %d/%d states\n",
			c.InvariantViolations, len(c.States))
	}
	fmt.Fprintf(&b, "  link faults under power states: %d/%d recoverable (%.0f%%)\n",
		c.Recovered, c.LinkFaults, c.RecoverableFrac()*100)
	if c.Survivability >= 1 {
		fmt.Fprintf(&b, "  survivability %d: %d/%d faults absorbed with zero re-routing\n",
			c.Survivability, c.ZeroReroute, c.LinkFaults)
	}
	for i := range c.States {
		s := &c.States[i]
		if s.InvariantOK && len(s.Unrecovered) == 0 {
			continue
		}
		fmt.Fprintf(&b, "  state %s (%d active flows):\n", s.State, s.ActiveFlows)
		if !s.InvariantOK {
			fmt.Fprintf(&b, "    INVARIANT VIOLATED: %s\n", s.InvariantErr)
		}
		for _, o := range s.Unrecovered {
			fmt.Fprintf(&b, "    link %d UNRECOVERABLE (%d flows affected): %s\n",
				o.Link, o.AffectedFlows, o.Reason)
		}
	}
	return b.String()
}
