package fault

import (
	"reflect"
	"strings"
	"testing"

	"nocvi/internal/bench"
	"nocvi/internal/core"
	"nocvi/internal/model"
	"nocvi/internal/topology"
)

func synthBench(t *testing.T, name string) *topology.Topology {
	t.Helper()
	spec, err := bench.Islanded(name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Synthesize(spec, model.Default65nm(), core.Options{
		AllowIntermediate: true, MaxDesignPoints: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Best().Top
}

// TestCampaignD26ZeroViolations is the acceptance criterion on the
// paper's own case study: a synthesized design must uphold the shutdown
// invariant in every enumerated power state — including under the
// cycle-level simulator, not just structurally.
func TestCampaignD26ZeroViolations(t *testing.T) {
	top := synthBench(t, "d26_media")
	c, err := RunCampaign(top, CampaignOptions{SimVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	if !c.OK() || c.InvariantViolations != 0 {
		t.Fatalf("synthesized design violated the shutdown invariant:\n%s", c.Format())
	}
	if c.Sampled {
		t.Fatalf("d26's %d-island state space should enumerate exhaustively", c.Shutdownable)
	}
	if int64(len(c.States)) != c.StateSpace {
		t.Fatalf("evaluated %d of %d states without sampling", len(c.States), c.StateSpace)
	}
	for i := range c.States {
		s := &c.States[i]
		if !s.InvariantOK {
			t.Fatalf("state %s: %s", s.State, s.InvariantErr)
		}
		if s.Recoverable > s.Links {
			t.Fatalf("state %s: recovered %d of %d links", s.State, s.Recoverable, s.Links)
		}
	}
	// The all-on state must be first (mask ascending) and subject every
	// link to failure.
	if c.States[0].Mask != 0 || c.States[0].State != "all-on" {
		t.Fatalf("first state is %q (mask %d), want all-on", c.States[0].State, c.States[0].Mask)
	}
	if c.States[0].Links != len(top.Links) {
		t.Fatalf("all-on state tested %d of %d links", c.States[0].Links, len(top.Links))
	}
	if !strings.Contains(c.Format(), "power-state fault campaign") {
		t.Fatal("format broken")
	}
}

// TestCampaignD48ZeroViolations covers the larger benchmark of the
// acceptance criteria with the structural invariant check.
func TestCampaignD48ZeroViolations(t *testing.T) {
	top := synthBench(t, "d48_network")
	c, err := RunCampaign(top, CampaignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !c.OK() {
		t.Fatalf("d48 violated the shutdown invariant:\n%s", c.Format())
	}
	for i := range c.States {
		if !c.States[i].InvariantOK {
			t.Fatalf("state %s: %s", c.States[i].State, c.States[i].InvariantErr)
		}
	}
}

// TestCampaignDeterministicAcrossWorkers pins the report contract: the
// campaign must be byte-identical at any worker count.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	top := synthBench(t, "d26_media")
	serial, err := RunCampaign(top, CampaignOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunCampaign(top, CampaignOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("worker count changed the campaign report")
	}
	if serial.Format() != parallel.Format() {
		t.Fatal("worker count changed the formatted report")
	}
}

// TestCampaignSampling forces the state cap below the full space and
// checks the deterministic-sampling contract: the all-on and
// single-island states always survive, masks are unique and ascending,
// and two runs sample identically.
func TestCampaignSampling(t *testing.T) {
	top := synthBench(t, "d26_media")
	k := len(shutdownableIslands(top))
	if k < 3 {
		t.Skipf("need >=3 shutdownable islands to sample, have %d", k)
	}
	limit := k + 2 // all-on + singles + one sampled multi-island state
	a, err := RunCampaign(top, CampaignOptions{MaxStates: limit})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Sampled || len(a.States) != limit {
		t.Fatalf("want %d sampled states, got %d (sampled=%v)", limit, len(a.States), a.Sampled)
	}
	singles := 0
	for i := range a.States {
		m := a.States[i].Mask
		if i > 0 && m <= a.States[i-1].Mask {
			t.Fatal("states not in ascending unique mask order")
		}
		if m != 0 && m&(m-1) == 0 {
			singles++
		}
	}
	if a.States[0].Mask != 0 || singles != k {
		t.Fatalf("sampling dropped a guaranteed state: mask0=%d singles=%d/%d",
			a.States[0].Mask, singles, k)
	}
	b, err := RunCampaign(top, CampaignOptions{MaxStates: limit})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two identical campaigns sampled different states")
	}
}

// synthSurvivable synthesizes a benchmark at survivability k.
func synthSurvivable(t *testing.T, name string, k int) *topology.Topology {
	t.Helper()
	spec, err := bench.Islanded(name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Synthesize(spec, model.Default65nm(), core.Options{
		AllowIntermediate: true, MaxDesignPoints: 1, Survivability: k,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Best().Top
}

// TestCampaignZeroRerouteAtK1 is the campaign half of the survivability
// contract: a k=1 design must absorb every single-link fault in every
// legal power state purely via its pre-synthesized backups — zero
// re-routed flows — and the report must be byte-identical at any worker
// count.
func TestCampaignZeroRerouteAtK1(t *testing.T) {
	top := synthSurvivable(t, "d26_media", 1)
	opt := CampaignOptions{Survivability: 1, Workers: 1}
	rep, err := RunCampaign(top, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("k=1 design violated the shutdown invariant:\n%s", rep.Format())
	}
	if rep.Survivability != 1 {
		t.Fatalf("report does not echo the asserted level: %d", rep.Survivability)
	}
	if rep.LinkFaults == 0 {
		t.Fatal("campaign composed no link faults — nothing asserted")
	}
	if rep.Recovered != rep.LinkFaults || rep.ZeroReroute != rep.LinkFaults {
		t.Fatalf("zero-reroute recovery broken: %d faults, %d recovered, %d zero-reroute\n%s",
			rep.LinkFaults, rep.Recovered, rep.ZeroReroute, rep.Format())
	}
	for i := range rep.States {
		s := &rep.States[i]
		if s.ZeroReroute != s.Links {
			t.Fatalf("state %s: %d of %d faults zero-reroute", s.State, s.ZeroReroute, s.Links)
		}
	}
	if !strings.Contains(rep.Format(), "zero re-routing") {
		t.Fatal("formatted report does not surface the zero re-routing line")
	}
	for _, workers := range []int{4, 13} {
		opt.Workers = workers
		again, err := RunCampaign(top, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rep, again) {
			t.Fatalf("workers=%d changed the k=1 campaign report", workers)
		}
	}
}

// TestCampaignK0ReportUnchangedByContract: on a k=0 design the new
// fields must stay zero — the serialized report is byte-identical to
// builds that predate survivability (both fields marshal omitempty).
func TestCampaignK0ReportUnchangedByContract(t *testing.T) {
	top := synthBench(t, "d26_media")
	rep, err := RunCampaign(top, CampaignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Survivability != 0 || rep.ZeroReroute != 0 {
		t.Fatalf("k=0 report grew survivability fields: k=%d zr=%d", rep.Survivability, rep.ZeroReroute)
	}
	for i := range rep.States {
		if rep.States[i].ZeroReroute != 0 {
			t.Fatalf("state %s stamped ZeroReroute on a k=0 run", rep.States[i].State)
		}
	}
	if strings.Contains(rep.Format(), "zero re-routing") {
		t.Fatal("k=0 formatted report mentions zero re-routing")
	}
}
