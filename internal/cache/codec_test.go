package cache

import (
	"context"
	"reflect"
	"testing"

	"nocvi/internal/bench"
	"nocvi/internal/core"
	"nocvi/internal/model"
	"nocvi/internal/soc"
	"nocvi/internal/specgen"
)

func testOptions() core.Options {
	return core.Options{AllowIntermediate: true, MaxIntermediateSwitches: 2}
}

func smallSpec(t testing.TB) *soc.Spec {
	t.Helper()
	return specgen.Random(3, specgen.Options{MaxCores: 12, MaxIslands: 4})
}

// sameResult asserts a decoded result is indistinguishable from the
// original in every exported field, CacheStats aside.
func sameResult(t *testing.T, label string, want, got *core.Result) {
	t.Helper()
	a, b := *want, *got
	a.CacheStats, b.CacheStats = core.CacheStats{}, core.CacheStats{}
	// Topologies carry unexported incremental indexes that reflect build
	// history; compare their exported identity via the codec digest and
	// the exported fields via reflect on the rest.
	if ResultDigest(&a) != ResultDigest(&b) {
		t.Fatalf("%s: digests differ", label)
	}
	if a.Explored != b.Explored || a.Feasible != b.Feasible ||
		a.Truncated != b.Truncated || a.Partial != b.Partial ||
		a.StopReason != b.StopReason {
		t.Fatalf("%s: accounting differs: %+v vs %+v", label, a, b)
	}
	if !reflect.DeepEqual(a.IslandFreqHz, b.IslandFreqHz) ||
		!reflect.DeepEqual(a.MaxSwitchSize, b.MaxSwitchSize) ||
		!reflect.DeepEqual(a.MinSwitches, b.MinSwitches) ||
		!reflect.DeepEqual(a.Relaxations, b.Relaxations) ||
		!reflect.DeepEqual(a.Errors, b.Errors) {
		t.Fatalf("%s: step-1/2 or error fields differ", label)
	}
	if len(a.Points) != len(b.Points) {
		t.Fatalf("%s: %d vs %d points", label, len(a.Points), len(b.Points))
	}
	for i := range a.Points {
		p, q := &a.Points[i], &b.Points[i]
		if p.NoCPower != q.NoCPower || p.MeanLatencyCycles != q.MeanLatencyCycles ||
			p.NoCAreaMM2 != q.NoCAreaMM2 || p.WireViolations != q.WireViolations ||
			p.MidSwitches != q.MidSwitches ||
			!reflect.DeepEqual(p.SwitchCounts, q.SwitchCounts) ||
			p.FloorplanOpt != q.FloorplanOpt ||
			!reflect.DeepEqual(p.Relaxations, q.Relaxations) {
			t.Fatalf("%s: point %d differs", label, i)
		}
		if !reflect.DeepEqual(p.Placement, q.Placement) {
			t.Fatalf("%s: point %d placement differs", label, i)
		}
		sameTopology(t, label, i, p, q)
	}
}

func sameTopology(t *testing.T, label string, i int, p, q *core.DesignPoint) {
	t.Helper()
	a, b := p.Top, q.Top
	if a.NoCIsland != b.NoCIsland ||
		!reflect.DeepEqual(a.IslandFreqHz, b.IslandFreqHz) ||
		!reflect.DeepEqual(a.IslandVoltage, b.IslandVoltage) ||
		!reflect.DeepEqual(a.Switches, b.Switches) ||
		!reflect.DeepEqual(a.SwitchOf, b.SwitchOf) ||
		!reflect.DeepEqual(a.Routes, b.Routes) {
		t.Fatalf("%s: point %d topology differs", label, i)
	}
	// Links carry the order-dependent float accumulations (TrafficBps)
	// and recomputed capacities: require bit equality.
	if !reflect.DeepEqual(a.Links, b.Links) {
		t.Fatalf("%s: point %d links differ (traffic/capacity replay not bit-exact?)", label, i)
	}
}

func TestResultCodecRoundTrip(t *testing.T) {
	lib := model.Default65nm()
	specs := []*soc.Spec{bench.D26(), smallSpec(t)}
	for _, spec := range specs {
		res, err := core.Synthesize(spec, lib, testOptions())
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		blob := EncodeResult(res)
		dec, err := DecodeResult(blob, spec, lib)
		if err != nil {
			t.Fatalf("%s: decode: %v", spec.Name, err)
		}
		sameResult(t, spec.Name, res, dec)
		if dec.Spec != spec {
			t.Fatalf("%s: decoded Spec not the caller's", spec.Name)
		}
		// Re-encoding the decoded result must be byte-identical: the
		// canonical form is a fixed point.
		if ResultDigest(res) != ResultDigest(dec) {
			t.Fatalf("%s: digest not a fixed point", spec.Name)
		}
	}
}

func TestSweepResultCodecRoundTrip(t *testing.T) {
	lib := model.Default65nm()
	spec := smallSpec(t)
	res, err := core.SynthesizeSweep(context.Background(), spec, lib, testOptions(), core.SweepOptions{WidthPerIsland: 2})
	if err != nil {
		t.Fatal(err)
	}
	blob := EncodeSweepResult(res)
	dec, err := DecodeSweepResult(blob, spec, lib)
	if err != nil {
		t.Fatal(err)
	}
	if SweepResultDigest(res) != SweepResultDigest(dec) {
		t.Fatal("sweep digests differ after round trip")
	}
	if res.Size != dec.Size || res.Explored != dec.Explored || res.Feasible != dec.Feasible ||
		res.StopReason != dec.StopReason || res.ErrorCount != dec.ErrorCount {
		t.Fatalf("accounting differs: %+v vs %+v", res, dec)
	}
	if !reflect.DeepEqual(res.Front, dec.Front) ||
		!reflect.DeepEqual(res.BestPowerPoint, dec.BestPowerPoint) ||
		!reflect.DeepEqual(res.BestLatencyPoint, dec.BestLatencyPoint) {
		t.Fatal("summaries differ")
	}
	// The BestLatency-aliases-BestPower in-memory shape must survive.
	if (res.BestLatency == res.BestPower) != (dec.BestLatency == dec.BestPower) {
		t.Fatal("best-point aliasing not preserved")
	}
}

// TestDecodeNeverPanics drives the decoder over truncations and bit
// flips of a real encoding: every malformation must surface as an
// error (treated as a miss upstream), never a panic or a silent
// success.
func TestDecodeNeverPanics(t *testing.T) {
	lib := model.Default65nm()
	spec := smallSpec(t)
	res, err := core.Synthesize(spec, lib, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	blob := EncodeResult(res)

	for cut := 0; cut < len(blob); cut += 7 {
		if _, err := DecodeResult(blob[:cut], spec, lib); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
	for pos := 0; pos < len(blob); pos += 11 {
		mut := append([]byte(nil), blob...)
		mut[pos] ^= 0x40
		dec, err := DecodeResult(mut, spec, lib)
		// A bit flip in a float payload legitimately decodes (the CRC
		// layer, not the codec, guards integrity); it must just never
		// panic. A flip in structure must error, not misdecode into a
		// result claiming to be the original.
		if err == nil && dec == nil {
			t.Fatalf("flip at %d: nil result without error", pos)
		}
	}
}

func TestPartitionPayloadRoundTrip(t *testing.T) {
	e := &enc{}
	e.u64(codecVersion)
	e.ints([]int{0, 1, 1, 0, 2})
	part, err := decodePartition(e.b)
	if err != nil || !reflect.DeepEqual(part, []int{0, 1, 1, 0, 2}) {
		t.Fatalf("round trip: %v, %v", part, err)
	}
	if _, err := decodePartition(e.b[:len(e.b)-1]); err == nil {
		t.Fatal("truncated partition decoded")
	}
	if _, err := decodePartition(append(append([]byte(nil), e.b...), 0)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

// TestResultCodecRoundTripSurvivable extends the round-trip proof to
// topologies carrying backup routes: the Backups arrays (covered by the
// Routes DeepEqual in sameTopology) must survive the codec bit-exactly,
// and the decoded topologies must still prove the survivability
// contract from their reconstructed state.
func TestResultCodecRoundTripSurvivable(t *testing.T) {
	lib := model.Default65nm()
	spec := bench.D26()
	opt := testOptions()
	opt.Survivability = 1
	res, err := core.Synthesize(spec, lib, opt)
	if err != nil {
		t.Fatal(err)
	}
	backups := 0
	for i := range res.Points {
		top := res.Points[i].Top
		for ri := range top.Routes {
			backups += len(top.Routes[ri].Backups)
		}
	}
	if backups == 0 {
		t.Fatal("k=1 synthesis produced no backups — round trip asserts nothing")
	}
	blob := EncodeResult(res)
	dec, err := DecodeResult(blob, spec, lib)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	sameResult(t, "d26 k=1", res, dec)
	for i := range dec.Points {
		if err := dec.Points[i].Top.ValidateSurvivable(1); err != nil {
			t.Fatalf("decoded point %d lost the survivability contract: %v", i, err)
		}
	}
	if ResultDigest(res) != ResultDigest(dec) {
		t.Fatal("digest not a fixed point for a survivable result")
	}
}
