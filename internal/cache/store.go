// Package cache is the content-addressed, on-disk result cache of the
// synthesis engine. The engine's bit-identical-results guarantee —
// identical (spec, options, library) provably produce identical output,
// enforced by the noclint determinism analyzers and pinned by the
// serial-vs-parallel identity tests — turns caching from a heuristic
// into a theorem: a hit keyed by the canonical input digests
// (internal/specio) plus the engine version IS the result a fresh run
// would compute, byte for byte.
//
// Three artifact classes are cached: full synthesis results
// (Synthesize and SynthesizeSweep), per-island partition vectors (the
// warm-start substrate for incremental re-synthesis — see synth.go),
// and fault-campaign reports. Entries are published atomically
// (write to a temp file, then rename), reads verify a payload checksum
// so a truncated or corrupted entry degrades to a miss rather than an
// error, and the store evicts least-recently-used entries once a size
// bound is exceeded — never an entry a reader currently has in flight.
package cache

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"nocvi/internal/specio"
)

// EngineVersion names the semantic version of the synthesis engine for
// cache-key purposes. It participates in every cache key, so bumping it
// invalidates the entire store at once. Bump it whenever a change
// alters what the engine computes for some input — a new cost term, a
// different partition refinement order, a routing tie-break change —
// even when the change is "better": a stale hit would otherwise be
// served as current engine output. Pure performance work that the
// identity tests prove bit-neutral does not need a bump.
//
// v2: the branch-and-bound layer — winners are proven bit-identical,
// but Result.Points under pruning is the canonical kept subset and
// SweepResult gained the Explored/PruneStats accounting, so v1 entries
// no longer describe what the engine reports.
//
// v3: the survivability constraint — Options.Survivability entered the
// options digest, routed topologies can carry backup paths, and the
// campaign report grew zero-re-route accounting, so v2 entries no
// longer describe the engine surface.
const EngineVersion = 3

// Entry classes: the subdirectory an artifact kind lives under. Keys
// are only unique within a class.
const (
	ClassResult    = "result"
	ClassSweep     = "sweep"
	ClassPartition = "part"
	ClassCampaign  = "campaign"
	ClassLint      = "lint"
)

// EnvDir is the environment variable consulted for a cache directory
// when a CLI's -cache-dir flag is empty. With neither set, caching is
// off — tests and scripted runs stay hermetic by default.
const EnvDir = "NOCVI_CACHE_DIR"

// DefaultMaxBytes bounds the store at 1 GiB unless configured.
const DefaultMaxBytes = 1 << 30

// StoreOptions configures Open.
type StoreOptions struct {
	// MaxBytes bounds the total size of cached entries; exceeding it
	// evicts least-recently-used entries. Zero selects DefaultMaxBytes;
	// negative disables eviction.
	MaxBytes int64
}

// Stats is a point-in-time snapshot of store activity since Open.
type Stats struct {
	Hits      int64 // Get calls that returned a valid entry
	Misses    int64 // Get calls that found nothing usable
	Corrupt   int64 // subset of Misses caused by checksum/format failures
	Puts      int64 // entries published
	Evictions int64 // entries removed by the size bound
	Entries   int   // entries currently indexed
	Bytes     int64 // total size currently indexed
}

// Store is an on-disk content-addressed cache. Entries live at
// <dir>/<class>/<hex key>; the file format is a magic header, a CRC-64
// payload checksum and the payload. Safe for concurrent use by any
// number of goroutines; concurrent same-key writers are resolved by
// atomic rename (one complete file wins, readers never observe a torn
// entry).
//
// Recency is tracked with an in-process logical clock, seeded from file
// modification times at Open — approximate across processes, exact
// within one, and never a wall-clock read on the synthesis path.
type Store struct {
	dir      string
	maxBytes int64

	mu      sync.Mutex
	entries map[string]*entry // keyed by "<class>/<hex>"
	classes map[string]bool   // class dirs known to exist
	clock   int64
	total   int64
	stats   Stats
}

type entry struct {
	size int64
	last int64 // logical-clock time of last touch
	refs int   // in-flight readers; pinned against eviction
}

// testHookBeforeRead, when non-nil, runs after a Get has registered its
// in-flight read but before the file is opened. The eviction tests use
// it to force an eviction pass into that window. Always nil in
// production.
var testHookBeforeRead func(class string, key specio.Digest)

// blob framing: magic, 8-byte big-endian CRC-64/ECMA of the payload,
// payload. CRC-64 is integrity against torn or bit-rotten files — the
// content addressing itself is SHA-256 in the key.
var blobMagic = []byte("nvc1")

var crcTable = crc64.MakeTable(crc64.ECMA)

const blobHeaderLen = 4 + 8

// Open opens (creating if needed) a cache store rooted at dir and
// indexes the entries already present. Files that do not look like
// cache entries are ignored; validation happens on read.
func Open(dir string, opt StoreOptions) (*Store, error) {
	if dir == "" {
		return nil, errors.New("cache: empty directory")
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	s := &Store{
		dir:      dir,
		maxBytes: opt.MaxBytes,
		entries:  make(map[string]*entry),
		classes:  make(map[string]bool),
	}
	if s.maxBytes == 0 {
		s.maxBytes = DefaultMaxBytes
	}
	if err := s.scan(); err != nil {
		return nil, err
	}
	return s, nil
}

// Resolve is the CLI flag helper: it returns the store selected by a
// -cache-dir flag value and a -no-cache switch, consulting EnvDir when
// the flag is empty. A nil store (with nil error) means caching is off;
// every cached entry point treats a nil *Store as a transparent
// pass-through to the engine.
func Resolve(dir string, disable bool) (*Store, error) {
	if disable {
		return nil, nil
	}
	if dir == "" {
		dir = os.Getenv(EnvDir)
	}
	if dir == "" {
		return nil, nil
	}
	return Open(dir, StoreOptions{})
}

// scan indexes pre-existing entries, seeding recency from mtime order
// so cross-process LRU is at least approximate.
func (s *Store) scan() error {
	type seen struct {
		name string
		size int64
		mod  int64
	}
	var found []seen
	classDirs, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	for _, cd := range classDirs {
		if !cd.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, cd.Name()))
		if err != nil {
			continue // racing cleanup; entries validate on read anyway
		}
		s.classes[cd.Name()] = true
		for _, f := range files {
			// Skip directories and orphaned temp files (a crash between
			// CreateTemp and Rename leaves ".tmp-*" behind).
			if f.IsDir() || len(f.Name()) > 0 && f.Name()[0] == '.' {
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			found = append(found, seen{
				name: cd.Name() + "/" + f.Name(),
				size: info.Size(),
				mod:  info.ModTime().UnixNano(),
			})
		}
	}
	sort.Slice(found, func(i, j int) bool {
		if found[i].mod != found[j].mod {
			return found[i].mod < found[j].mod
		}
		return found[i].name < found[j].name
	})
	for _, f := range found {
		s.clock++
		s.entries[f.name] = &entry{size: f.size, last: s.clock}
		s.total += f.size
	}
	return nil
}

func (s *Store) path(name string) string {
	return filepath.Join(s.dir, filepath.FromSlash(name))
}

// Get returns the payload stored under (class, key), or false on a
// miss. A missing, truncated or corrupted entry is a miss — corruption
// additionally unlinks the bad file — never an error: the caller's
// fallback is recomputation, which the determinism guarantee makes
// equivalent.
func (s *Store) Get(class string, key specio.Digest) ([]byte, bool) {
	if s == nil {
		return nil, false
	}
	name := class + "/" + key.String()
	s.mu.Lock()
	e := s.entries[name]
	if e == nil {
		// Probe entries cover files another process published after our
		// scan; refs pins them against a racing eviction either way.
		e = &entry{}
		s.entries[name] = e
	}
	e.refs++
	s.clock++
	e.last = s.clock
	s.mu.Unlock()

	if testHookBeforeRead != nil {
		testHookBeforeRead(class, key)
	}
	blob, readErr := os.ReadFile(s.path(name))
	payload, ok := decodeBlob(blob, readErr)

	s.mu.Lock()
	e.refs--
	if !ok {
		corrupt := readErr == nil // file existed but failed validation
		if s.entries[name] == e && e.refs == 0 {
			s.total -= e.size
			delete(s.entries, name)
		}
		s.stats.Misses++
		if corrupt {
			s.stats.Corrupt++
		}
		s.mu.Unlock()
		if corrupt {
			// Unlink so the next Get does not re-read a known-bad file.
			// Best effort: a concurrent re-Put wins the rename race at
			// worst once.
			os.Remove(s.path(name)) //noclint:ignore errdrop besteffort: removing a corrupt entry; a failed unlink just means one more miss
		}
		return nil, false
	}
	if e.size != int64(len(blob)) {
		s.total += int64(len(blob)) - e.size
		e.size = int64(len(blob))
	}
	s.stats.Hits++
	s.mu.Unlock()
	return payload, true
}

// Put publishes payload under (class, key) atomically: the entry is
// written to a temp file in the same directory and renamed into place,
// so concurrent readers see either the previous complete entry or the
// new complete entry, never a prefix. Concurrent same-key writers race
// benignly — every writer's file is complete, the last rename wins.
func (s *Store) Put(class string, key specio.Digest, payload []byte) error {
	if s == nil {
		return nil
	}
	classDir := filepath.Join(s.dir, class)
	s.mu.Lock()
	known := s.classes[class]
	s.mu.Unlock()
	if !known {
		if err := os.MkdirAll(classDir, 0o777); err != nil {
			return fmt.Errorf("cache: %w", err)
		}
		s.mu.Lock()
		s.classes[class] = true
		s.mu.Unlock()
	}

	blob := make([]byte, 0, blobHeaderLen+len(payload))
	blob = append(blob, blobMagic...)
	blob = binary.BigEndian.AppendUint64(blob, crc64.Checksum(payload, crcTable))
	blob = append(blob, payload...)

	tmp, err := os.CreateTemp(classDir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()        //noclint:ignore errdrop besteffort: cleanup after a failed write; the write error is what matters
		os.Remove(tmpName) //noclint:ignore errdrop besteffort: cleanup after a failed write
		return fmt.Errorf("cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName) //noclint:ignore errdrop besteffort: cleanup after a failed close
		return fmt.Errorf("cache: %w", err)
	}
	name := class + "/" + key.String()
	if err := os.Rename(tmpName, s.path(name)); err != nil {
		os.Remove(tmpName) //noclint:ignore errdrop besteffort: cleanup after a failed rename
		return fmt.Errorf("cache: %w", err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entries[name]
	if e == nil {
		e = &entry{}
		s.entries[name] = e
	}
	s.total += int64(len(blob)) - e.size
	e.size = int64(len(blob))
	s.clock++
	e.last = s.clock
	s.stats.Puts++
	s.evictLocked(name)
	return nil
}

// evictLocked removes least-recently-used entries until the store fits
// its size bound. Entries with in-flight readers (refs > 0) are never
// victims — a reader holding an entry keeps it alive — and the entry
// just published (justPut) is only evicted as a last resort, when it
// alone exceeds the bound. Called with s.mu held.
func (s *Store) evictLocked(justPut string) {
	if s.maxBytes < 0 {
		return
	}
	for s.total > s.maxBytes {
		victim := ""
		var ve *entry
		//noclint:ignore maprange victim selection is an argmin with a total (last, name) tie-break; visit order cannot change the winner
		for name, e := range s.entries {
			if e.refs > 0 || name == justPut {
				continue
			}
			if ve == nil || e.last < ve.last || (e.last == ve.last && name < victim) {
				victim, ve = name, e
			}
		}
		if ve == nil {
			return // everything else is pinned; allow temporary overflow
		}
		os.Remove(s.path(victim)) //noclint:ignore errdrop besteffort: a failed unlink leaves an orphan file the next scan re-indexes
		s.total -= ve.size
		delete(s.entries, victim)
		s.stats.Evictions++
	}
}

// StoreStats snapshots the store's counters.
func (s *Store) StoreStats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.entries)
	st.Bytes = s.total
	return st
}

// Dir returns the store's root directory.
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// decodeBlob validates a raw entry file and returns its payload.
func decodeBlob(blob []byte, readErr error) ([]byte, bool) {
	if readErr != nil || len(blob) < blobHeaderLen {
		return nil, false
	}
	for i, b := range blobMagic {
		if blob[i] != b {
			return nil, false
		}
	}
	want := binary.BigEndian.Uint64(blob[4:blobHeaderLen])
	payload := blob[blobHeaderLen:]
	if crc64.Checksum(payload, crcTable) != want {
		return nil, false
	}
	return payload, true
}
