package cache

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"nocvi/internal/bench"
	"nocvi/internal/core"
	"nocvi/internal/fault"
	"nocvi/internal/model"
	"nocvi/internal/soc"
	"nocvi/internal/specgen"
	"nocvi/internal/specio"
)

// TestSynthesizeCachedIdentityOnSuite is the headline acceptance test:
// for every bundled benchmark SoC, a cold run (nil store), a cache-miss
// run, and a cache-hit run produce byte-identical results — across
// worker counts — and the CacheStats counters report what happened.
func TestSynthesizeCachedIdentityOnSuite(t *testing.T) {
	lib := model.Default65nm()
	ctx := context.Background()
	for _, name := range bench.Names() {
		spec, err := bench.Islanded(name)
		if err != nil {
			t.Fatal(err)
		}
		s := openTest(t, StoreOptions{})
		opt := testOptions()

		cold, err := Synthesize(ctx, nil, spec, lib, opt)
		if err != nil {
			t.Fatalf("%s cold: %v", name, err)
		}
		if cold.CacheStats != (core.CacheStats{}) {
			t.Fatalf("%s: cold run reported cache activity: %+v", name, cold.CacheStats)
		}

		miss, err := Synthesize(ctx, s, spec, lib, opt)
		if err != nil {
			t.Fatalf("%s miss: %v", name, err)
		}
		if miss.CacheStats.Misses != 1 || miss.CacheStats.Hits != 0 {
			t.Fatalf("%s: first cached run stats %+v", name, miss.CacheStats)
		}

		// Hit at a different worker count: Workers is excluded from the
		// options digest, so the entry must still match.
		opt.Workers = 8
		hit, err := Synthesize(ctx, s, spec, lib, opt)
		if err != nil {
			t.Fatalf("%s hit: %v", name, err)
		}
		if hit.CacheStats.Hits != 1 || hit.CacheStats.Misses != 0 {
			t.Fatalf("%s: second cached run stats %+v", name, hit.CacheStats)
		}

		cd, md, hd := ResultDigest(cold), ResultDigest(miss), ResultDigest(hit)
		if cd != md || md != hd {
			t.Fatalf("%s: digests differ: cold %s miss %s hit %s",
				name, cd.Short(), md.Short(), hd.Short())
		}
	}
}

// TestSynthesizeCachedIdentityOnSpecgen extends the identity proof to
// random well-formed SoCs.
func TestSynthesizeCachedIdentityOnSpecgen(t *testing.T) {
	lib := model.Default65nm()
	ctx := context.Background()
	gen := specgen.Options{MaxCores: 12, MaxIslands: 4}
	for seed := int64(1); seed <= 8; seed++ {
		spec := specgen.Random(seed, gen)
		s := openTest(t, StoreOptions{})
		opt := testOptions()
		cold, cerr := Synthesize(ctx, nil, spec, lib, opt)
		miss, merr := Synthesize(ctx, s, spec, lib, opt)
		hit, herr := Synthesize(ctx, s, spec, lib, opt)
		if (cerr == nil) != (merr == nil) || (merr == nil) != (herr == nil) {
			t.Fatalf("seed %d: error divergence: %v / %v / %v", seed, cerr, merr, herr)
		}
		if cerr != nil {
			continue // infeasible spec: nothing cached, nothing to compare
		}
		if ResultDigest(cold) != ResultDigest(miss) || ResultDigest(miss) != ResultDigest(hit) {
			t.Fatalf("seed %d: digests differ", seed)
		}
		if hit.CacheStats.Hits != 1 {
			t.Fatalf("seed %d: expected full hit, got %+v", seed, hit.CacheStats)
		}
	}
}

// editIsland returns a copy of spec with one intra-island flow's
// bandwidth scaled — an edit confined to the given island, leaving
// every other island's VCG digest unchanged (as long as the scaled
// flow does not set the spec-wide bandwidth maximum).
func editIsland(t *testing.T, spec *soc.Spec, island soc.IslandID) *soc.Spec {
	t.Helper()
	edited := *spec
	edited.Flows = append([]soc.Flow(nil), spec.Flows...)
	max := spec.MaxFlowBandwidth()
	for i, f := range edited.Flows {
		if spec.IslandOf[f.Src] == island && spec.IslandOf[f.Dst] == island {
			bw := f.BandwidthBps * 0.875
			if bw >= max {
				continue
			}
			edited.Flows[i].BandwidthBps = bw
			return &edited
		}
	}
	t.Skipf("no editable intra-island flow in island %d", island)
	return nil
}

// TestWarmStartIdenticalToCold is the incremental re-synthesis proof:
// synthesize spec A against a store, edit one island, and synthesize
// the edited spec B against the same store. The B run must warm-start
// (loading the untouched islands' partitions from disk) and still be
// byte-identical to a cold B run that computes everything.
func TestWarmStartIdenticalToCold(t *testing.T) {
	lib := model.Default65nm()
	ctx := context.Background()
	specA := bench.D26()
	specB := editIsland(t, specA, 0)

	for _, workers := range []int{1, 4} {
		s := openTest(t, StoreOptions{})
		opt := testOptions()
		opt.Workers = workers

		if _, err := Synthesize(ctx, s, specA, lib, opt); err != nil {
			t.Fatal(err)
		}
		warm, err := Synthesize(ctx, s, specB, lib, opt)
		if err != nil {
			t.Fatal(err)
		}
		if warm.CacheStats.Hits != 0 || warm.CacheStats.Misses != 1 {
			t.Fatalf("workers=%d: edited spec should miss: %+v", workers, warm.CacheStats)
		}

		cold, err := Synthesize(ctx, nil, specB, lib, opt)
		if err != nil {
			t.Fatal(err)
		}
		if wd, cd := ResultDigest(warm), ResultDigest(cold); wd != cd {
			t.Fatalf("workers=%d: warm-start result differs from cold: %s vs %s",
				workers, wd.Short(), cd.Short())
		}
	}
}

// TestWarmStartLoadsUntouchedIslands pins the warm-start mechanism
// itself on a multi-island spec: after synthesizing A, the edited-B
// run must report WarmStarts > 0 (untouched islands' partition tables
// served from disk).
func TestWarmStartLoadsUntouchedIslands(t *testing.T) {
	lib := model.Default65nm()
	ctx := context.Background()
	specA, err := bench.Islanded("d26_media")
	if err != nil {
		t.Fatal(err)
	}
	if len(specA.Islands) < 2 {
		t.Fatalf("want a multi-island suite spec, got %d islands", len(specA.Islands))
	}
	specB := editIsland(t, specA, 0)

	s := openTest(t, StoreOptions{})
	opt := testOptions()
	first, err := Synthesize(ctx, s, specA, lib, opt)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheStats.WarmStarts != 0 {
		t.Fatalf("first run warm-started from an empty store: %+v", first.CacheStats)
	}
	warm, err := Synthesize(ctx, s, specB, lib, opt)
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheStats.WarmStarts == 0 {
		t.Fatalf("edited run loaded no partitions from disk: %+v", warm.CacheStats)
	}

	// A repeat of the A spec with different result-affecting options
	// (different key, same partition space) warm-starts everything it
	// needs — partitions are keyed by island content, not run identity.
	opt2 := opt
	opt2.MaxIntermediateSwitches = 1
	rerun, err := Synthesize(ctx, s, specA, lib, opt2)
	if err != nil {
		t.Fatal(err)
	}
	if rerun.CacheStats.Hits != 0 || rerun.CacheStats.WarmStarts == 0 {
		t.Fatalf("option-changed rerun should miss but warm-start: %+v", rerun.CacheStats)
	}
}

// TestSweepCached covers the streaming path: a repeated sweep is a full
// hit with an identical result; a sweep with a different Limit misses
// but warm-starts its whole partition table from disk.
func TestSweepCached(t *testing.T) {
	lib := model.Default65nm()
	ctx := context.Background()
	spec := smallSpec(t)
	s := openTest(t, StoreOptions{})
	opt := testOptions()
	sw := core.SweepOptions{WidthPerIsland: 2}

	first, err := SynthesizeSweep(ctx, s, spec, lib, opt, sw)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheStats.Misses != 1 {
		t.Fatalf("first sweep stats %+v", first.CacheStats)
	}
	second, err := SynthesizeSweep(ctx, s, spec, lib, opt, sw)
	if err != nil {
		t.Fatal(err)
	}
	if second.CacheStats.Hits != 1 {
		t.Fatalf("second sweep stats %+v", second.CacheStats)
	}
	cold, err := SynthesizeSweep(ctx, nil, spec, lib, opt, sw)
	if err != nil {
		t.Fatal(err)
	}
	if SweepResultDigest(first) != SweepResultDigest(second) ||
		SweepResultDigest(second) != SweepResultDigest(cold) {
		t.Fatal("sweep digests differ across cold/miss/hit")
	}

	// Different Limit: a different sweep key, but the same partition
	// space — the run must skip partition resolution via warm starts.
	sw2 := sw
	sw2.Limit = first.Explored / 2
	if sw2.Limit == 0 {
		sw2.Limit = 1
	}
	limited, err := SynthesizeSweep(ctx, s, spec, lib, opt, sw2)
	if err != nil {
		t.Fatal(err)
	}
	if limited.CacheStats.Hits != 0 || limited.CacheStats.WarmStarts == 0 {
		t.Fatalf("limited sweep should miss but warm-start its partition table: %+v", limited.CacheStats)
	}
}

// TestCampaignCached proves fault-campaign reports round-trip through
// the cache with the derived Off masks restored.
func TestCampaignCached(t *testing.T) {
	lib := model.Default65nm()
	spec := bench.D26()
	res, err := core.Synthesize(spec, lib, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	top := res.Best().Top
	opt := fault.CampaignOptions{MaxStates: 16}

	s := openTest(t, StoreOptions{})
	first, err := RunCampaign(s, top, opt)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := RunCampaign(s, top, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, cached) {
		a, _ := json.Marshal(first)
		b, _ := json.Marshal(cached)
		t.Fatalf("campaign reports differ:\n%s\n%s", a, b)
	}
	for i := range cached.States {
		if cached.States[i].Off == nil {
			t.Fatalf("state %d: Off not restored on cache hit", i)
		}
	}
	if st := s.StoreStats(); st.Hits != 1 || st.Puts != 1 {
		t.Fatalf("store stats %+v", st)
	}
}

// TestPartialResultsNeverCached: a canceled run publishes nothing.
func TestPartialResultsNeverCached(t *testing.T) {
	lib := model.Default65nm()
	spec := bench.D26()
	s := openTest(t, StoreOptions{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Synthesize(ctx, s, spec, lib, testOptions())
	if err == nil && res != nil && !res.Partial {
		t.Skip("run completed before observing cancellation")
	}
	if st := s.StoreStats(); st.Puts != 0 {
		t.Fatalf("partial result was published: %+v", st)
	}
}

// TestKeySensitivity pins what the keys must and must not react to.
func TestKeySensitivity(t *testing.T) {
	lib := model.Default65nm()
	spec := bench.D26()
	opt := testOptions()

	base := ResultKey(spec, lib, opt)

	same := opt
	same.Workers = 16
	if ResultKey(spec, lib, same) != base {
		t.Fatal("Workers changed the result key")
	}

	diff := opt
	diff.MaxIntermediateSwitches = 1
	if ResultKey(spec, lib, diff) == base {
		t.Fatal("MaxIntermediateSwitches did not change the result key")
	}

	edited := editIsland(t, spec, 0)
	if ResultKey(edited, lib, opt) == base {
		t.Fatal("flow edit did not change the result key")
	}

	lib2 := *lib
	lib2.LinkWidthBits *= 2
	if ResultKey(spec, &lib2, opt) == base {
		t.Fatal("library change did not change the result key")
	}

	if SweepKey(spec, lib, opt, core.SweepOptions{}) == SweepKey(spec, lib, opt, core.SweepOptions{Limit: 5}) {
		t.Fatal("Limit did not change the sweep key")
	}
}

// TestIslandVCGDigestLocality pins the warm-start property at the
// digest level: an edit inside island 1 changes island 1's digest and
// leaves island 0's untouched, provided the spec-wide normalization
// extrema are unchanged.
func TestIslandVCGDigestLocality(t *testing.T) {
	spec, err := bench.Islanded("d26_media")
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Islands) < 2 {
		t.Fatalf("want >= 2 islands, got %d", len(spec.Islands))
	}
	edited := editIsland(t, spec, 1)

	d0a := specio.IslandVCGDigest(spec, 0, 0.6)
	d0b := specio.IslandVCGDigest(edited, 0, 0.6)
	if d0a != d0b {
		t.Fatal("edit in island 1 changed island 0's VCG digest")
	}
	d1a := specio.IslandVCGDigest(spec, 1, 0.6)
	d1b := specio.IslandVCGDigest(edited, 1, 0.6)
	if d1a == d1b {
		t.Fatal("edit in island 1 left island 1's VCG digest unchanged")
	}
}
