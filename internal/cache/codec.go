// Binary codec for cached synthesis results. The cache must return a
// Result that compares byte-identical to a fresh run — the identity
// the engine's tests pin down to float bit patterns — so this codec is
// hand-written and bit-exact: floats round-trip as IEEE bit patterns,
// and topologies are rebuilt by replaying their construction sequence
// (switches, attachments, links, routes in original order), which makes
// the order-dependent accumulated quantities (Link.TrafficBps summed
// route by route) come out bit-for-bit, not merely approximately.
//
// specio's JSON topology format deliberately cannot be reused here: its
// human units (MB/s, MHz) divide through 1e6 and lose low bits.
//
// The codec never encodes Result.CacheStats — cache bookkeeping is
// about a run, not part of the result's identity — which is what lets
// ResultDigest compare cached and fresh results directly.
package cache

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"nocvi/internal/core"
	"nocvi/internal/floorplan"
	"nocvi/internal/model"
	"nocvi/internal/power"
	"nocvi/internal/soc"
	"nocvi/internal/specio"
	"nocvi/internal/topology"
)

// codecVersion participates in every full-result cache key, so a
// layout change invalidates old entries instead of misdecoding them.
// v2: SweepResult.Evaluated became the three-way Explored count when
// the branch-and-bound layer landed.
// v3: routes grew backup paths (topology.Route.Backups) when the
// survivability constraint landed.
const codecVersion = 3

var errCorrupt = errors.New("cache: malformed encoded result")

type enc struct{ b []byte }

func (e *enc) u64(v uint64)  { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) i64(v int64)   { e.b = binary.AppendVarint(e.b, v) }
func (e *enc) int(v int)     { e.i64(int64(v)) }
func (e *enc) f64(v float64) { e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(v)) }

func (e *enc) bool(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}

func (e *enc) str(s string) {
	e.u64(uint64(len(s)))
	e.b = append(e.b, s...)
}

// Slice encoders carry an explicit nil flag: a nil slice and a non-nil
// empty slice are distinct in-memory shapes, and the round-trip must
// preserve the distinction for reflect.DeepEqual-grade fidelity.
func (e *enc) ints(vs []int) {
	e.bool(vs != nil)
	e.u64(uint64(len(vs)))
	for _, v := range vs {
		e.int(v)
	}
}

func (e *enc) f64s(vs []float64) {
	e.bool(vs != nil)
	e.u64(uint64(len(vs)))
	for _, v := range vs {
		e.f64(v)
	}
}

func (e *enc) strs(vs []string) {
	e.bool(vs != nil)
	e.u64(uint64(len(vs)))
	for _, v := range vs {
		e.str(v)
	}
}

// dec is the mirror reader. Every read bounds-checks; the first
// malformation latches err and subsequent reads return zero values, so
// decode paths stay linear and check err once at the end.
type dec struct {
	b   []byte
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = errCorrupt
	}
}

func (d *dec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) i64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) int() int { return int(d.i64()) }

func (d *dec) f64() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v
}

func (d *dec) bool() bool {
	if d.err != nil {
		return false
	}
	if len(d.b) < 1 {
		d.fail()
		return false
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v != 0
}

// length reads a collection length and sanity-bounds it against the
// remaining input (each element costs at least one byte), so a corrupt
// length cannot drive a giant allocation.
func (d *dec) length() int {
	n := d.u64()
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.b)) {
		d.fail()
		return 0
	}
	return int(n)
}

func (d *dec) str() string {
	n := d.length()
	if d.err != nil {
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *dec) ints() []int {
	notNil := d.bool()
	n := d.length()
	if d.err != nil || !notNil {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = d.int()
	}
	return out
}

func (d *dec) f64s() []float64 {
	notNil := d.bool()
	n := d.length()
	if d.err != nil || !notNil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.f64()
	}
	return out
}

func (d *dec) strs() []string {
	notNil := d.bool()
	n := d.length()
	if d.err != nil || !notNil {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = d.str()
	}
	return out
}

// EncodeResult serializes a synthesis result, except for Spec (the
// caller re-supplies it on decode — the cache key already proves it
// identical) and CacheStats (run bookkeeping, not result identity).
func EncodeResult(res *core.Result) []byte {
	e := &enc{}
	e.u64(codecVersion)
	e.f64s(res.IslandFreqHz)
	e.ints(res.MaxSwitchSize)
	e.ints(res.MinSwitches)
	e.u64(uint64(res.Explored))
	e.u64(uint64(res.Feasible))
	e.bool(res.Truncated)
	e.bool(res.Partial)
	e.str(res.StopReason)
	e.strs(res.Relaxations)
	encodeCandidateErrors(e, res.Errors)
	e.u64(uint64(len(res.Points)))
	for i := range res.Points {
		encodePoint(e, &res.Points[i])
	}
	return e.b
}

// DecodeResult reconstructs a result against the spec and library it
// was synthesized from. Any malformation returns an error — the caller
// treats it as a miss.
func DecodeResult(data []byte, spec *soc.Spec, lib *model.Library) (*core.Result, error) {
	d := &dec{b: data}
	if v := d.u64(); d.err == nil && v != codecVersion {
		return nil, fmt.Errorf("cache: result codec version %d, want %d", v, codecVersion)
	}
	res := &core.Result{Spec: spec}
	res.IslandFreqHz = d.f64s()
	res.MaxSwitchSize = d.ints()
	res.MinSwitches = d.ints()
	res.Explored = int(d.u64())
	res.Feasible = int(d.u64())
	res.Truncated = d.bool()
	res.Partial = d.bool()
	res.StopReason = d.str()
	res.Relaxations = d.strs()
	res.Errors = decodeCandidateErrors(d)
	nPts := d.length()
	for i := 0; i < nPts && d.err == nil; i++ {
		dp, err := decodePoint(d, spec, lib)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, *dp)
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, errCorrupt
	}
	return res, nil
}

func encodeCandidateErrors(e *enc, errs []core.CandidateError) {
	e.bool(errs != nil)
	e.u64(uint64(len(errs)))
	for i := range errs {
		e.ints(errs[i].SwitchCounts)
		e.int(errs[i].MidSwitches)
		e.str(errs[i].Panic)
		e.str(errs[i].Stack)
	}
}

func decodeCandidateErrors(d *dec) []core.CandidateError {
	notNil := d.bool()
	n := d.length()
	if d.err != nil || !notNil {
		return nil
	}
	out := make([]core.CandidateError, n)
	for i := range out {
		out[i].SwitchCounts = d.ints()
		out[i].MidSwitches = d.int()
		out[i].Panic = d.str()
		out[i].Stack = d.str()
	}
	return out
}

func encodePoint(e *enc, p *core.DesignPoint) {
	e.ints(p.SwitchCounts)
	e.int(p.MidSwitches)
	encodeTopology(e, p.Top)
	encodePlacement(e, p.Placement)
	encodeBreakdown(e, &p.NoCPower)
	e.f64(p.MeanLatencyCycles)
	e.f64(p.NoCAreaMM2)
	e.int(p.WireViolations)
	e.f64(p.FloorplanOpt.WhitespaceFrac)
	e.bool(p.FloorplanOpt.SkipAnnotate)
	e.strs(p.Relaxations)
}

func decodePoint(d *dec, spec *soc.Spec, lib *model.Library) (*core.DesignPoint, error) {
	p := &core.DesignPoint{}
	p.SwitchCounts = d.ints()
	p.MidSwitches = d.int()
	top, err := decodeTopology(d, spec, lib)
	if err != nil {
		return nil, err
	}
	//noclint:ignore poolescape the decoded topology is freshly allocated by decodeTopology, never Reset-recycled
	p.Top = top
	p.Placement = decodePlacement(d)
	decodeBreakdown(d, &p.NoCPower)
	p.MeanLatencyCycles = d.f64()
	p.NoCAreaMM2 = d.f64()
	p.WireViolations = d.int()
	p.FloorplanOpt.WhitespaceFrac = d.f64()
	p.FloorplanOpt.SkipAnnotate = d.bool()
	p.Relaxations = d.strs()
	if d.err != nil {
		return nil, d.err
	}
	return p, nil
}

func encodeBreakdown(e *enc, b *power.Breakdown) {
	e.f64(b.SwitchDynW)
	e.f64(b.SwitchLeakW)
	e.f64(b.LinkDynW)
	e.f64(b.LinkLeakW)
	e.f64(b.NIDynW)
	e.f64(b.NILeakW)
	e.f64(b.FIFODynW)
	e.f64(b.FIFOLeakW)
}

func decodeBreakdown(d *dec, b *power.Breakdown) {
	b.SwitchDynW = d.f64()
	b.SwitchLeakW = d.f64()
	b.LinkDynW = d.f64()
	b.LinkLeakW = d.f64()
	b.NIDynW = d.f64()
	b.NILeakW = d.f64()
	b.FIFODynW = d.f64()
	b.FIFOLeakW = d.f64()
}

// encodeTopology captures the construction-order essentials; derived
// state (link capacities, island-crossing flags, accumulated traffic,
// the link index) is rebuilt by replay on decode.
func encodeTopology(e *enc, t *topology.Topology) {
	e.bool(t.NoCIsland != soc.NoIsland)
	e.f64s(t.IslandFreqHz)
	e.f64s(t.IslandVoltage)
	e.u64(uint64(len(t.Switches)))
	for i := range t.Switches {
		e.int(int(t.Switches[i].Island))
		e.bool(t.Switches[i].Indirect)
	}
	e.u64(uint64(len(t.SwitchOf)))
	for _, sw := range t.SwitchOf {
		e.int(int(sw))
	}
	e.u64(uint64(len(t.Links)))
	for i := range t.Links {
		e.int(int(t.Links[i].From))
		e.int(int(t.Links[i].To))
		e.f64(t.Links[i].LengthMM)
	}
	e.u64(uint64(len(t.Routes)))
	for i := range t.Routes {
		r := &t.Routes[i]
		e.int(int(r.Flow.Src))
		e.int(int(r.Flow.Dst))
		e.f64(r.Flow.BandwidthBps)
		e.f64(r.Flow.MaxLatencyCycles)
		e.u64(uint64(len(r.Switches)))
		for _, sw := range r.Switches {
			e.int(int(sw))
		}
		// Links is derivable (FindLink over consecutive switches) but its
		// nilness is an in-memory shape to preserve: single-switch routes
		// keep a nil Links, multi-hop ones a populated slice.
		e.bool(r.Links != nil)
		// Backup paths of survivable designs: switch walks only — their
		// links re-derive by FindLink on decode, exactly like the
		// primary's, and their links are already in the links section
		// (backups open real links; they just carry no traffic).
		e.bool(r.Backups != nil)
		e.u64(uint64(len(r.Backups)))
		for bi := range r.Backups {
			b := &r.Backups[bi]
			e.u64(uint64(len(b.Switches)))
			for _, sw := range b.Switches {
				e.int(int(sw))
			}
			e.bool(b.Links != nil)
		}
	}
}

// decodeTopology replays the construction sequence against a fresh
// topology: island clocks and supplies first (switches inherit them),
// then switches, core attachments, links (LengthMM restored from the
// floorplan annotation) and finally routes in original order, which
// re-accumulates Link.TrafficBps in the exact addition order of the
// original build — float sums are order-dependent, so replay order is
// what makes the round-trip bit-exact.
func decodeTopology(d *dec, spec *soc.Spec, lib *model.Library) (*topology.Topology, error) {
	hasMid := d.bool()
	freqs := d.f64s()
	volts := d.f64s()
	wantIslands := len(spec.Islands)
	if hasMid {
		wantIslands++
	}
	if d.err != nil || len(freqs) != wantIslands || len(volts) != wantIslands {
		return nil, errCorrupt
	}
	top := topology.New(spec, lib)
	for j := 0; j < len(spec.Islands); j++ {
		top.SetIslandFreq(soc.IslandID(j), freqs[j])
		top.SetIslandVoltage(soc.IslandID(j), volts[j])
	}
	if hasMid {
		top.AddNoCIsland(freqs[len(freqs)-1], volts[len(volts)-1])
	}

	nSw := d.length()
	for i := 0; i < nSw && d.err == nil; i++ {
		island := d.int()
		indirect := d.bool()
		if island < 0 || island >= top.NumIslands() {
			return nil, errCorrupt
		}
		top.AddSwitch(soc.IslandID(island), indirect)
	}

	nCores := d.length()
	if d.err != nil || nCores != len(spec.Cores) {
		return nil, errCorrupt
	}
	for c := 0; c < nCores; c++ {
		sw := d.int()
		if d.err != nil {
			return nil, d.err
		}
		if sw < 0 {
			continue // unattached in the encoded design
		}
		if sw >= nSw {
			return nil, errCorrupt
		}
		if err := top.AttachCore(soc.CoreID(c), topology.SwitchID(sw)); err != nil {
			return nil, fmt.Errorf("cache: %w", err)
		}
	}

	nLinks := d.length()
	for i := 0; i < nLinks && d.err == nil; i++ {
		from, to := d.int(), d.int()
		length := d.f64()
		if d.err != nil {
			return nil, d.err
		}
		if from < 0 || from >= nSw || to < 0 || to >= nSw {
			return nil, errCorrupt
		}
		lid, err := top.AddLink(topology.SwitchID(from), topology.SwitchID(to))
		if err != nil {
			return nil, fmt.Errorf("cache: %w", err)
		}
		top.Links[lid].LengthMM = length
	}

	nRoutes := d.length()
	for i := 0; i < nRoutes && d.err == nil; i++ {
		var flow soc.Flow
		flow.Src = soc.CoreID(d.int())
		flow.Dst = soc.CoreID(d.int())
		if int(flow.Src) < 0 || int(flow.Src) >= len(spec.Cores) ||
			int(flow.Dst) < 0 || int(flow.Dst) >= len(spec.Cores) {
			return nil, errCorrupt
		}
		flow.BandwidthBps = d.f64()
		flow.MaxLatencyCycles = d.f64()
		nPath := d.length()
		if d.err != nil || nPath == 0 {
			return nil, errCorrupt
		}
		sws := make([]topology.SwitchID, nPath)
		for p := range sws {
			sw := d.int()
			if sw < 0 || sw >= nSw {
				return nil, errCorrupt
			}
			sws[p] = topology.SwitchID(sw)
		}
		linksNotNil := d.bool()
		if d.err != nil {
			return nil, d.err
		}
		var links []topology.LinkID
		if linksNotNil {
			links = make([]topology.LinkID, nPath-1)
			for p := 0; p+1 < nPath; p++ {
				lid, ok := top.FindLink(sws[p], sws[p+1])
				if !ok {
					return nil, errCorrupt
				}
				links[p] = lid
			}
		} else if nPath > 1 {
			return nil, errCorrupt // multi-hop route cannot have nil links
		}
		if err := top.AddRoute(topology.Route{Flow: flow, Switches: sws, Links: links}); err != nil {
			return nil, fmt.Errorf("cache: %w", err)
		}
		backupsNotNil := d.bool()
		nBackups := d.length()
		if d.err != nil || (!backupsNotNil && nBackups > 0) {
			return nil, errCorrupt
		}
		if backupsNotNil && nBackups == 0 {
			// Non-nil empty is a shape the engine never produces, but the
			// round-trip preserves it for DeepEqual-grade fidelity.
			top.Routes[i].Backups = []topology.Path{}
		}
		for bi := 0; bi < nBackups && d.err == nil; bi++ {
			nbPath := d.length()
			if d.err != nil || nbPath == 0 {
				return nil, errCorrupt
			}
			bsws := make([]topology.SwitchID, nbPath)
			for p := range bsws {
				sw := d.int()
				if sw < 0 || sw >= nSw {
					return nil, errCorrupt
				}
				bsws[p] = topology.SwitchID(sw)
			}
			bLinksNotNil := d.bool()
			if d.err != nil {
				return nil, d.err
			}
			var bLinks []topology.LinkID
			if bLinksNotNil {
				bLinks = make([]topology.LinkID, nbPath-1)
				for p := 0; p+1 < nbPath; p++ {
					lid, ok := top.FindLink(bsws[p], bsws[p+1])
					if !ok {
						return nil, errCorrupt
					}
					bLinks[p] = lid
				}
			} else if nbPath > 1 {
				return nil, errCorrupt // multi-hop backup cannot have nil links
			}
			if err := top.AddBackup(i, topology.Path{Switches: bsws, Links: bLinks}); err != nil {
				return nil, fmt.Errorf("cache: %w", err)
			}
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	return top, nil
}

func encodePlacement(e *enc, p *floorplan.Placement) {
	e.bool(p != nil)
	if p == nil {
		return
	}
	encodeRect(e, p.Die)
	e.bool(p.IslandRects != nil)
	e.u64(uint64(len(p.IslandRects)))
	for _, r := range p.IslandRects {
		encodeRect(e, r)
	}
	e.bool(p.CorePos != nil)
	e.u64(uint64(len(p.CorePos)))
	for _, pt := range p.CorePos {
		e.f64(pt.X)
		e.f64(pt.Y)
	}
	e.bool(p.SwitchPos != nil)
	e.u64(uint64(len(p.SwitchPos)))
	for _, pt := range p.SwitchPos {
		e.f64(pt.X)
		e.f64(pt.Y)
	}
	e.f64s(p.NILengthMM)
	e.f64s(p.LinkLengthMM)
}

func decodePlacement(d *dec) *floorplan.Placement {
	if !d.bool() {
		return nil
	}
	p := &floorplan.Placement{}
	p.Die = decodeRect(d)
	if notNil, nIsl := d.bool(), d.length(); notNil && d.err == nil {
		p.IslandRects = make([]floorplan.Rect, 0, nIsl)
		for i := 0; i < nIsl && d.err == nil; i++ {
			p.IslandRects = append(p.IslandRects, decodeRect(d))
		}
	}
	if notNil, nCores := d.bool(), d.length(); notNil && d.err == nil {
		p.CorePos = make([]floorplan.Point, 0, nCores)
		for i := 0; i < nCores && d.err == nil; i++ {
			p.CorePos = append(p.CorePos, floorplan.Point{X: d.f64(), Y: d.f64()})
		}
	}
	if notNil, nSw := d.bool(), d.length(); notNil && d.err == nil {
		p.SwitchPos = make([]floorplan.Point, 0, nSw)
		for i := 0; i < nSw && d.err == nil; i++ {
			p.SwitchPos = append(p.SwitchPos, floorplan.Point{X: d.f64(), Y: d.f64()})
		}
	}
	p.NILengthMM = d.f64s()
	p.LinkLengthMM = d.f64s()
	return p
}

func encodeRect(e *enc, r floorplan.Rect) {
	e.f64(r.X)
	e.f64(r.Y)
	e.f64(r.W)
	e.f64(r.H)
}

func decodeRect(d *dec) floorplan.Rect {
	return floorplan.Rect{X: d.f64(), Y: d.f64(), W: d.f64(), H: d.f64()}
}

// encodeSweepPoint / decodeSweepPoint handle the streaming sweep's
// compact summaries.
func encodeSweepPoint(e *enc, p *core.SweepPoint) {
	e.bool(p != nil)
	if p == nil {
		return
	}
	e.u64(p.Index)
	e.ints(p.SwitchCounts)
	e.int(p.MidSwitches)
	e.f64(p.PowerW)
	e.f64(p.LatencyCycles)
	e.f64(p.AreaMM2)
	e.int(p.WireViolations)
}

func decodeSweepPoint(d *dec) *core.SweepPoint {
	if !d.bool() {
		return nil
	}
	p := &core.SweepPoint{}
	p.Index = d.u64()
	p.SwitchCounts = d.ints()
	p.MidSwitches = d.int()
	p.PowerW = d.f64()
	p.LatencyCycles = d.f64()
	p.AreaMM2 = d.f64()
	p.WireViolations = d.int()
	return p
}

// EncodeSweepResult serializes a streaming-sweep result (Spec and
// CacheStats excluded, like EncodeResult).
func EncodeSweepResult(res *core.SweepResult) []byte {
	e := &enc{}
	e.u64(codecVersion)
	e.u64(res.Size)
	e.u64(res.Explored)
	e.u64(res.Feasible)
	e.bool(res.Truncated)
	e.bool(res.Partial)
	e.str(res.StopReason)
	encodeSweepPoint(e, res.BestPowerPoint)
	encodeSweepPoint(e, res.BestLatencyPoint)
	e.u64(uint64(len(res.Front)))
	for i := range res.Front {
		encodeSweepPoint(e, &res.Front[i])
	}
	encodeCandidateErrors(e, res.Errors)
	e.u64(res.ErrorCount)
	e.bool(res.BestPower != nil)
	if res.BestPower != nil {
		encodePoint(e, res.BestPower)
	}
	// BestLatency frequently aliases BestPower (same winning index);
	// the aliasing is part of the in-memory shape and is preserved.
	aliased := res.BestLatency != nil && res.BestLatency == res.BestPower
	e.bool(aliased)
	if !aliased {
		e.bool(res.BestLatency != nil)
		if res.BestLatency != nil {
			encodePoint(e, res.BestLatency)
		}
	}
	return e.b
}

// DecodeSweepResult is the inverse of EncodeSweepResult.
func DecodeSweepResult(data []byte, spec *soc.Spec, lib *model.Library) (*core.SweepResult, error) {
	d := &dec{b: data}
	if v := d.u64(); d.err == nil && v != codecVersion {
		return nil, fmt.Errorf("cache: sweep codec version %d, want %d", v, codecVersion)
	}
	res := &core.SweepResult{Spec: spec}
	res.Size = d.u64()
	res.Explored = d.u64()
	res.Feasible = d.u64()
	res.Truncated = d.bool()
	res.Partial = d.bool()
	res.StopReason = d.str()
	res.BestPowerPoint = decodeSweepPoint(d)
	res.BestLatencyPoint = decodeSweepPoint(d)
	nFront := d.length()
	for i := 0; i < nFront && d.err == nil; i++ {
		p := decodeSweepPoint(d)
		if p == nil {
			return nil, errCorrupt
		}
		res.Front = append(res.Front, *p)
	}
	res.Errors = decodeCandidateErrors(d)
	res.ErrorCount = d.u64()
	if d.bool() {
		dp, err := decodePoint(d, spec, lib)
		if err != nil {
			return nil, err
		}
		res.BestPower = dp
	} else if d.err != nil {
		return nil, d.err
	}
	if d.bool() {
		res.BestLatency = res.BestPower
	} else if d.bool() {
		dp, err := decodePoint(d, spec, lib)
		if err != nil {
			return nil, err
		}
		res.BestLatency = dp
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, errCorrupt
	}
	return res, nil
}

// ResultDigest is the identity digest of a synthesis result: SHA-256
// over the canonical encoding, which excludes CacheStats by
// construction. Two results digest equal exactly when every
// caller-visible field — points, topologies, placements, float metrics
// bit patterns, errors, stop metadata — is identical. The identity
// tests use it to prove warm-started and cached results byte-identical
// to cold runs.
func ResultDigest(res *core.Result) specio.Digest {
	return sha256.Sum256(EncodeResult(res))
}

// SweepResultDigest is ResultDigest for streaming-sweep results.
func SweepResultDigest(res *core.SweepResult) specio.Digest {
	return sha256.Sum256(EncodeSweepResult(res))
}
