package cache

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"sync/atomic"

	"nocvi/internal/core"
	"nocvi/internal/fault"
	"nocvi/internal/model"
	"nocvi/internal/partition"
	"nocvi/internal/soc"
	"nocvi/internal/specio"
	"nocvi/internal/topology"
	"nocvi/internal/vcg"
)

// ResultKey is the content address of a full synthesis run: the spec
// and options digests combined under the engine and codec versions.
// Anything that can change the result changes the key; anything that
// provably cannot (worker count, backing wiring) is excluded by
// specio.OptionsDigest, which is what lets a -workers 8 run hit an
// entry produced at -workers 1.
func ResultKey(spec *soc.Spec, lib *model.Library, opt core.Options) specio.Digest {
	return specio.CombineDigests("nocvi-result", EngineVersion,
		[]specio.Digest{specio.SpecDigest(spec), specio.OptionsDigest(opt, lib)},
		[]int64{codecVersion})
}

// SweepKey extends ResultKey with the streaming sweep's shape knobs.
func SweepKey(spec *soc.Spec, lib *model.Library, opt core.Options, sw core.SweepOptions) specio.Digest {
	return specio.CombineDigests("nocvi-sweep", EngineVersion,
		[]specio.Digest{specio.SpecDigest(spec), specio.OptionsDigest(opt, lib)},
		[]int64{codecVersion, int64(sw.WidthPerIsland), int64(sw.Limit), int64(sw.MaxErrors)})
}

// TopologyDigest is the content digest of a concrete routed design:
// SHA-256 over the codec's canonical topology encoding.
func TopologyDigest(top *topology.Topology) specio.Digest {
	e := &enc{}
	encodeTopology(e, top)
	return sha256.Sum256(e.b)
}

// CampaignKey addresses a fault-campaign report by the design it
// evaluates (spec, library, routed topology) and the campaign knobs
// that shape the report. Workers is excluded: the campaign folds state
// outcomes in mask order, so every worker count produces the same
// report.
func CampaignKey(top *topology.Topology, opt fault.CampaignOptions) specio.Digest {
	sim := int64(0)
	if opt.SimVerify {
		sim = 1
	}
	return specio.CombineDigests("nocvi-campaign", EngineVersion,
		[]specio.Digest{specio.SpecDigest(top.Spec), specio.LibraryDigest(top.Lib), TopologyDigest(top)},
		[]int64{codecVersion, int64(opt.MaxStates), sim, int64(opt.Survivability)})
}

// resolvedAlpha mirrors core's treatment of the Alpha option: zero is
// the unset sentinel and resolves to the paper's default.
func resolvedAlpha(opt core.Options) float64 {
	if opt.Alpha == 0 { //noclint:ignore floateq 0 is the documented unset sentinel for Alpha, resolved exactly like core's Options.alpha
		return vcg.DefaultAlpha
	}
	return opt.Alpha
}

// islandBacking persists one island's partition table in the store. It
// implements partition.Backing over keys derived from the island's VCG
// digest — the exact inputs (local flow structure, spec-wide
// normalization extrema, alpha) that determine the partitioner's graph
// — plus the engine selection and the clamped partition options core
// hands the factory. Edits to other islands leave the VCG digest, and
// therefore every key, unchanged: that is the warm-start property.
type islandBacking struct {
	s        *Store
	base     specio.Digest
	spectral int64
	pOpt     partition.Options
	warm     *atomic.Int64
}

func (b *islandBacking) key(k int) specio.Digest {
	return specio.CombineDigests("nocvi-part", EngineVersion,
		[]specio.Digest{b.base},
		[]int64{b.spectral, int64(b.pOpt.MaxPartSize), int64(b.pOpt.Passes), int64(k)})
}

func (b *islandBacking) Load(k int) ([]int, bool) {
	blob, ok := b.s.Get(ClassPartition, b.key(k))
	if !ok {
		return nil, false
	}
	part, err := decodePartition(blob)
	if err != nil {
		return nil, false // malformed payload degrades to a miss
	}
	b.warm.Add(1)
	return part, true
}

func (b *islandBacking) Store(k int, part []int) {
	e := &enc{}
	e.u64(codecVersion)
	e.ints(part)
	// besteffort: a failed partition publish only costs a future warm-start.
	b.s.Put(ClassPartition, b.key(k), e.b)
}

func decodePartition(blob []byte) ([]int, error) {
	d := &dec{b: blob}
	if v := d.u64(); d.err == nil && v != codecVersion {
		return nil, errCorrupt
	}
	part := d.ints()
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, errCorrupt
	}
	return part, nil
}

// partitionBacking builds the core.Options.PartitionBacking factory for
// one run: a per-island disk backing sharing one warm-start counter.
// Returns nil when the store is nil, leaving the engine's behaviour
// untouched.
func partitionBacking(s *Store, spec *soc.Spec, opt core.Options, warm *atomic.Int64) func(int, partition.Options) partition.Backing {
	if s == nil {
		return nil
	}
	alpha := resolvedAlpha(opt)
	spectral := int64(0)
	if opt.SpectralPartition {
		spectral = 1
	}
	return func(island int, pOpt partition.Options) partition.Backing {
		return &islandBacking{
			s:        s,
			base:     specio.IslandVCGDigest(spec, soc.IslandID(island), alpha),
			spectral: spectral,
			pOpt:     pOpt,
			warm:     warm,
		}
	}
}

// Synthesize is core.SynthesizeContext behind the content-addressed
// cache. A nil store is a transparent pass-through. On a full hit the
// decoded result is byte-identical to a fresh run (CacheStats aside,
// which is run bookkeeping, zeroed in digests). On a miss the engine
// runs with a disk-backed partition layer, so islands whose VCGs are
// unchanged since any earlier run warm-start from their cached
// partition tables; the finished result is then published for the next
// caller. Partial results (context cancellation) are never published.
func Synthesize(ctx context.Context, s *Store, spec *soc.Spec, lib *model.Library, opt core.Options) (*core.Result, error) {
	if s == nil {
		return core.SynthesizeContext(ctx, spec, lib, opt)
	}
	key := ResultKey(spec, lib, opt)
	if blob, ok := s.Get(ClassResult, key); ok {
		if res, err := DecodeResult(blob, spec, lib); err == nil {
			res.CacheStats = core.CacheStats{Hits: 1}
			return res, nil
		}
		// Checksum-valid but undecodable (stale codec): treat as a miss.
	}
	var warm atomic.Int64
	if opt.PartitionBacking == nil {
		opt.PartitionBacking = partitionBacking(s, spec, opt, &warm)
	}
	res, err := core.SynthesizeContext(ctx, spec, lib, opt)
	if res != nil {
		res.CacheStats = core.CacheStats{Misses: 1, WarmStarts: int(warm.Load())}
	}
	if err == nil && res != nil && !res.Partial {
		// besteffort: a failed publish only costs a future cache miss.
		s.Put(ClassResult, key, EncodeResult(res))
	}
	return res, err
}

// SynthesizeSweep is core.SynthesizeSweep behind the cache, with the
// same contract as Synthesize. Because the sweep resolves its whole
// per-island partition table up front, a repeated sweep whose spec and
// options are unchanged — but whose key differs (say a different
// Limit) — still warm-starts every partition from disk and skips
// partition resolution entirely.
func SynthesizeSweep(ctx context.Context, s *Store, spec *soc.Spec, lib *model.Library, opt core.Options, sw core.SweepOptions) (*core.SweepResult, error) {
	if s == nil {
		return core.SynthesizeSweep(ctx, spec, lib, opt, sw)
	}
	key := SweepKey(spec, lib, opt, sw)
	if blob, ok := s.Get(ClassSweep, key); ok {
		if res, err := DecodeSweepResult(blob, spec, lib); err == nil {
			res.CacheStats = core.CacheStats{Hits: 1}
			return res, nil
		}
	}
	var warm atomic.Int64
	if opt.PartitionBacking == nil {
		opt.PartitionBacking = partitionBacking(s, spec, opt, &warm)
	}
	res, err := core.SynthesizeSweep(ctx, spec, lib, opt, sw)
	if res != nil {
		res.CacheStats = core.CacheStats{Misses: 1, WarmStarts: int(warm.Load())}
	}
	if err == nil && res != nil && !res.Partial {
		// besteffort: a failed publish only costs a future cache miss.
		s.Put(ClassSweep, key, EncodeSweepResult(res))
	}
	return res, err
}

// RunCampaign is fault.RunCampaign behind the cache. Campaign reports
// are stored as JSON (they are human-auditable artifacts, already
// JSON-shaped for the CLIs); the derived per-state Off masks, excluded
// from JSON, are rebuilt against the topology on a hit.
func RunCampaign(s *Store, top *topology.Topology, opt fault.CampaignOptions) (*fault.Campaign, error) {
	if s == nil {
		return fault.RunCampaign(top, opt)
	}
	key := CampaignKey(top, opt)
	if blob, ok := s.Get(ClassCampaign, key); ok {
		c := &fault.Campaign{}
		if err := json.Unmarshal(blob, c); err == nil {
			c.RestoreOff(top)
			return c, nil
		}
	}
	c, err := fault.RunCampaign(top, opt)
	if err == nil {
		if blob, jerr := json.Marshal(c); jerr == nil {
			// besteffort: a failed publish only costs a future cache miss.
			s.Put(ClassCampaign, key, blob)
		}
	}
	return c, err
}
