package cache

import (
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"nocvi/internal/specio"
)

func keyOf(s string) specio.Digest { return sha256.Sum256([]byte(s)) }

func openTest(t *testing.T, opt StoreOptions) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), opt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreRoundTrip(t *testing.T) {
	s := openTest(t, StoreOptions{})
	k := keyOf("a")
	payload := []byte("hello cache")
	if _, ok := s.Get(ClassResult, k); ok {
		t.Fatal("hit on empty store")
	}
	if err := s.Put(ClassResult, k, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(ClassResult, k)
	if !ok || string(got) != string(payload) {
		t.Fatalf("got %q, %v; want %q", got, ok, payload)
	}
	// Same key in a different class is a distinct entry.
	if _, ok := s.Get(ClassSweep, k); ok {
		t.Fatal("class collision")
	}
	st := s.StoreStats()
	if st.Hits != 1 || st.Puts != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	k := keyOf("persist")
	if err := s.Put(ClassPartition, k, []byte("vec")); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get(ClassPartition, k)
	if !ok || string(got) != "vec" {
		t.Fatalf("reopen lost entry: %q, %v", got, ok)
	}
}

// TestStoreCorruptEntryIsMiss covers the corruption-tolerance contract:
// truncated files, flipped payload bytes, wrong magic and empty files
// are all misses (never errors), counted as corrupt, and unlinked so
// the next probe is a plain miss.
func TestStoreCorruptEntryIsMiss(t *testing.T) {
	corruptions := []struct {
		name   string
		mangle func([]byte) []byte
	}{
		{"truncated-header", func(b []byte) []byte { return b[:blobHeaderLen-3] }},
		{"truncated-payload", func(b []byte) []byte { return b[:len(b)-1] }},
		{"flipped-payload-bit", func(b []byte) []byte { b[blobHeaderLen] ^= 1; return b }},
		{"flipped-crc-bit", func(b []byte) []byte { b[4] ^= 1; return b }},
		{"wrong-magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"empty", func(b []byte) []byte { return nil }},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			s := openTest(t, StoreOptions{})
			k := keyOf(tc.name)
			if err := s.Put(ClassResult, k, []byte("payload under test")); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(s.Dir(), ClassResult, k.String())
			blob, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mangle(blob), 0o666); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get(ClassResult, k); ok {
				t.Fatalf("corrupt entry served as hit: %q", got)
			}
			st := s.StoreStats()
			if st.Corrupt != 1 {
				t.Fatalf("corrupt count = %d, want 1; stats %+v", st.Corrupt, st)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("corrupt file not unlinked: %v", err)
			}
			// The slot is reusable.
			if err := s.Put(ClassResult, k, []byte("fresh")); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get(ClassResult, k); !ok || string(got) != "fresh" {
				t.Fatalf("re-put after corruption: %q, %v", got, ok)
			}
		})
	}
}

// TestStoreConcurrentSameKeyWriters races many writers and readers on
// one key under -race: every read must observe some writer's complete
// payload — never a torn or interleaved file — and after the dust
// settles exactly one complete payload is the winner.
func TestStoreConcurrentSameKeyWriters(t *testing.T) {
	s := openTest(t, StoreOptions{})
	k := keyOf("contended")
	const writers = 8
	const rounds = 25

	valid := make(map[string]bool)
	for w := 0; w < writers; w++ {
		valid[fmt.Sprintf("payload-from-writer-%d", w)] = true
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		payload := []byte(fmt.Sprintf("payload-from-writer-%d", w))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if err := s.Put(ClassResult, k, payload); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if got, ok := s.Get(ClassResult, k); ok && !valid[string(got)] {
					t.Errorf("torn read: %q", got)
					return
				}
			}
		}()
	}
	wg.Wait()

	got, ok := s.Get(ClassResult, k)
	if !ok || !valid[string(got)] {
		t.Fatalf("final state: %q, %v", got, ok)
	}
	if st := s.StoreStats(); st.Corrupt != 0 {
		t.Fatalf("corruption under contention: %+v", st)
	}
}

// TestStoreEviction fills a tightly bounded store and checks the LRU
// discipline: total stays under the bound and the least-recently-used
// entry goes first.
func TestStoreEviction(t *testing.T) {
	payload := make([]byte, 100)
	entrySize := int64(blobHeaderLen + len(payload))
	s := openTest(t, StoreOptions{MaxBytes: 3 * entrySize})

	for i := 0; i < 3; i++ {
		if err := s.Put(ClassResult, keyOf(fmt.Sprint(i)), payload); err != nil {
			t.Fatal(err)
		}
	}
	// Touch entry 0 so entry 1 is now the LRU.
	if _, ok := s.Get(ClassResult, keyOf("0")); !ok {
		t.Fatal("entry 0 missing before eviction")
	}
	if err := s.Put(ClassResult, keyOf("3"), payload); err != nil {
		t.Fatal(err)
	}

	st := s.StoreStats()
	if st.Bytes > 3*entrySize {
		t.Fatalf("bound exceeded: %d > %d", st.Bytes, 3*entrySize)
	}
	if st.Evictions != 1 || st.Entries != 3 {
		t.Fatalf("stats %+v", st)
	}
	if _, ok := s.Get(ClassResult, keyOf("1")); ok {
		t.Fatal("LRU entry 1 survived")
	}
	for _, want := range []string{"0", "2", "3"} {
		if _, ok := s.Get(ClassResult, keyOf(want)); !ok {
			t.Fatalf("entry %s evicted out of LRU order", want)
		}
	}
}

// TestStoreEvictionSparesInFlightRead forces an eviction pass into the
// window between a Get registering its read and opening the file (via
// the test hook) and asserts the in-flight entry survives — eviction
// falls through to the next victim or overflows temporarily, but never
// yanks a file out from under a reader.
func TestStoreEvictionSparesInFlightRead(t *testing.T) {
	payload := make([]byte, 100)
	entrySize := int64(blobHeaderLen + len(payload))
	s := openTest(t, StoreOptions{MaxBytes: entrySize})

	hot := keyOf("hot")
	if err := s.Put(ClassResult, hot, payload); err != nil {
		t.Fatal(err)
	}

	defer func() { testHookBeforeRead = nil }()
	testHookBeforeRead = func(class string, key specio.Digest) {
		testHookBeforeRead = nil // run once; Puts below must not recurse
		// This Put exceeds the bound, forcing an eviction pass while the
		// outer Get holds its ref on "hot". The only unpinned victim is
		// the new entry itself (justPut), so the pass overflows rather
		// than evicting either.
		if err := s.Put(ClassResult, keyOf("cold"), payload); err != nil {
			t.Errorf("put during read: %v", err)
		}
	}
	if got, ok := s.Get(ClassResult, hot); !ok || len(got) != len(payload) {
		t.Fatalf("in-flight read lost its entry: %v", ok)
	}
	// Once the read completes, the next Put's eviction pass may evict
	// normally again.
	if err := s.Put(ClassResult, keyOf("later"), payload); err != nil {
		t.Fatal(err)
	}
	if st := s.StoreStats(); st.Bytes > entrySize {
		t.Fatalf("bound not restored after read finished: %+v", st)
	}
}

func TestResolve(t *testing.T) {
	if s, err := Resolve("", true); s != nil || err != nil {
		t.Fatalf("disabled: %v, %v", s, err)
	}
	if s, err := Resolve("", false); s != nil || err != nil {
		t.Fatalf("unconfigured: %v, %v", s, err)
	}
	dir := t.TempDir()
	s, err := Resolve(dir, false)
	if err != nil || s == nil || s.Dir() != dir {
		t.Fatalf("flag dir: %v, %v", s, err)
	}
	t.Setenv(EnvDir, dir)
	if s, err := Resolve("", false); err != nil || s == nil || s.Dir() != dir {
		t.Fatalf("env dir: %v, %v", s, err)
	}
	if s, err := Resolve("", true); s != nil || err != nil {
		t.Fatalf("-no-cache beats env: %v, %v", s, err)
	}
}

func TestNilStoreIsTransparent(t *testing.T) {
	var s *Store
	if _, ok := s.Get(ClassResult, keyOf("x")); ok {
		t.Fatal("nil store hit")
	}
	if err := s.Put(ClassResult, keyOf("x"), []byte("y")); err != nil {
		t.Fatal(err)
	}
	if st := s.StoreStats(); st != (Stats{}) {
		t.Fatalf("nil stats %+v", st)
	}
	if s.Dir() != "" {
		t.Fatal("nil dir")
	}
}

func TestScanSkipsOrphanedTempFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, ClassResult), 0o777); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, ClassResult, ".tmp-orphan"), []byte("junk"), 0o666); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st := s.StoreStats(); st.Entries != 0 {
		t.Fatalf("orphan indexed: %+v", st)
	}
}
