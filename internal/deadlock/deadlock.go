// Package deadlock proves freedom from routing-induced deadlock for a
// synthesized topology. In a wormhole network a packet can hold one link
// while waiting for the next, so a cycle in the Channel Dependency Graph
// (CDG) — whose vertices are the directed links and whose edges are the
// consecutive-link pairs used by some route — can produce a circular
// wait (Dally & Seitz). An acyclic CDG is a sufficient condition for
// deadlock freedom under deterministic routing, which is what the
// synthesis flow uses.
//
// The island discipline of the paper's routes (source island -> optional
// intermediate island -> destination island, never backwards) already
// prevents cross-island cycles; intra-island segments use min-cost paths
// that are usually tree-like but not provably acyclic in the CDG, so the
// checker verifies the property rather than assuming it.
package deadlock

import (
	"fmt"

	"nocvi/internal/graph"
	"nocvi/internal/topology"
)

// Report describes the outcome of a deadlock analysis.
type Report struct {
	// Channels is the number of directed links analyzed, Dependencies
	// the number of distinct link-to-link dependencies induced by the
	// routes.
	Channels     int
	Dependencies int

	// Cycle is a witness (sequence of LinkIDs, first == last) when the
	// CDG is cyclic, nil when the design is deadlock free.
	Cycle []topology.LinkID
}

// Free reports whether the analysis found no cycle.
func (r *Report) Free() bool { return len(r.Cycle) == 0 }

// String formats the report for logs.
func (r *Report) String() string {
	if r.Free() {
		//noclint:ignore bannedcall log-message formatting in String, not a cache key
		return fmt.Sprintf("deadlock-free: %d channels, %d dependencies, CDG acyclic",
			r.Channels, r.Dependencies)
	}
	//noclint:ignore bannedcall log-message formatting in String, not a cache key
	return fmt.Sprintf("DEADLOCK RISK: cyclic channel dependency through links %v", r.Cycle)
}

// Analyze builds the channel dependency graph from the topology's routes
// and checks it for cycles.
func Analyze(top *topology.Topology) *Report {
	n := len(top.Links)
	cdg := graph.NewDirected(n)
	deps := 0
	seen := make(map[[2]topology.LinkID]bool)
	for ri := range top.Routes {
		r := &top.Routes[ri]
		for i := 1; i < len(r.Links); i++ {
			key := [2]topology.LinkID{r.Links[i-1], r.Links[i]}
			if seen[key] {
				continue
			}
			seen[key] = true
			cdg.AddEdge(int(key[0]), int(key[1]), 1)
			deps++
		}
	}
	rep := &Report{Channels: n, Dependencies: deps}
	if has, cyc := cdg.HasCycle(); has {
		rep.Cycle = make([]topology.LinkID, len(cyc))
		for i, v := range cyc {
			rep.Cycle[i] = topology.LinkID(v)
		}
	}
	return rep
}

// Check returns an error when the topology's routes can deadlock.
func Check(top *topology.Topology) error {
	rep := Analyze(top)
	if !rep.Free() {
		return fmt.Errorf("deadlock: %s", rep)
	}
	return nil
}
