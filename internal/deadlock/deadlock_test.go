package deadlock_test

import (
	"strings"
	"testing"

	"nocvi/internal/bench"
	"nocvi/internal/core"
	"nocvi/internal/deadlock"
	"nocvi/internal/model"
	"nocvi/internal/soc"
	"nocvi/internal/topology"
	"nocvi/internal/viplace"
)

// ringTopology builds the classic 4-switch ring where every flow turns
// one hop clockwise — the textbook wormhole deadlock.
func ringTopology(t *testing.T) *topology.Topology {
	t.Helper()
	spec := &soc.Spec{
		Name: "ring",
		Cores: []soc.Core{
			{ID: 0, Name: "a"}, {ID: 1, Name: "b"},
			{ID: 2, Name: "c"}, {ID: 3, Name: "d"},
		},
		Flows: []soc.Flow{
			{Src: 0, Dst: 2, BandwidthBps: 10e6},
			{Src: 1, Dst: 3, BandwidthBps: 10e6},
			{Src: 2, Dst: 0, BandwidthBps: 10e6},
			{Src: 3, Dst: 1, BandwidthBps: 10e6},
		},
		Islands:  []soc.Island{{ID: 0, Name: "i", VoltageV: 1}},
		IslandOf: []soc.IslandID{0, 0, 0, 0},
	}
	top := topology.New(spec, model.Default65nm())
	top.SetIslandFreq(0, 200e6)
	sw := make([]topology.SwitchID, 4)
	for i := range sw {
		sw[i] = top.AddSwitch(0, false)
	}
	for c := range spec.Cores {
		if err := top.AttachCore(soc.CoreID(c), sw[c]); err != nil {
			t.Fatal(err)
		}
	}
	// clockwise ring links 0->1->2->3->0
	links := make([]topology.LinkID, 4)
	for i := 0; i < 4; i++ {
		var err error
		links[i], err = top.AddLink(sw[i], sw[(i+1)%4])
		if err != nil {
			t.Fatal(err)
		}
	}
	// each flow goes two hops clockwise, using consecutive links
	for i, f := range spec.Flows {
		r := topology.Route{
			Flow:     f,
			Switches: []topology.SwitchID{sw[i], sw[(i+1)%4], sw[(i+2)%4]},
			Links:    []topology.LinkID{links[i], links[(i+1)%4]},
		}
		if err := top.AddRoute(r); err != nil {
			t.Fatal(err)
		}
	}
	return top
}

func TestRingDeadlockDetected(t *testing.T) {
	top := ringTopology(t)
	rep := deadlock.Analyze(top)
	if rep.Free() {
		t.Fatal("textbook ring deadlock not detected")
	}
	if rep.Channels != 4 || rep.Dependencies != 4 {
		t.Fatalf("CDG stats wrong: %+v", rep)
	}
	if len(rep.Cycle) < 3 || rep.Cycle[0] != rep.Cycle[len(rep.Cycle)-1] {
		t.Fatalf("bad witness: %v", rep.Cycle)
	}
	if err := deadlock.Check(top); err == nil || !strings.Contains(err.Error(), "DEADLOCK") {
		t.Fatalf("Check did not fail: %v", err)
	}
	if !strings.Contains(rep.String(), "DEADLOCK RISK") {
		t.Fatal("report string wrong")
	}
}

func TestStarIsFree(t *testing.T) {
	// A hub-and-spoke design can never deadlock: routes have at most
	// two links (in, out), and dependencies never form a cycle because
	// every dependency goes spoke-in -> spoke-out.
	spec := &soc.Spec{
		Name: "star",
		Cores: []soc.Core{
			{ID: 0, Name: "a"}, {ID: 1, Name: "b"}, {ID: 2, Name: "c"},
		},
		Flows: []soc.Flow{
			{Src: 0, Dst: 1, BandwidthBps: 5e6},
			{Src: 1, Dst: 2, BandwidthBps: 5e6},
			{Src: 2, Dst: 0, BandwidthBps: 5e6},
		},
		Islands:  []soc.Island{{ID: 0, Name: "i", VoltageV: 1}},
		IslandOf: []soc.IslandID{0, 0, 0},
	}
	top := topology.New(spec, model.Default65nm())
	top.SetIslandFreq(0, 200e6)
	hub := top.AddSwitch(0, false)
	spokes := make([]topology.SwitchID, 3)
	for i := range spokes {
		spokes[i] = top.AddSwitch(0, false)
		if err := top.AttachCore(soc.CoreID(i), spokes[i]); err != nil {
			t.Fatal(err)
		}
	}
	for _, f := range spec.Flows {
		in, _ := top.FindLink(spokes[f.Src], hub)
		if in == -1 {
			in, _ = top.AddLink(spokes[f.Src], hub)
		}
		out, ok := top.FindLink(hub, spokes[f.Dst])
		if !ok {
			out, _ = top.AddLink(hub, spokes[f.Dst])
		}
		if err := top.AddRoute(topology.Route{
			Flow:     f,
			Switches: []topology.SwitchID{spokes[f.Src], hub, spokes[f.Dst]},
			Links:    []topology.LinkID{in, out},
		}); err != nil {
			t.Fatal(err)
		}
	}
	rep := deadlock.Analyze(top)
	if !rep.Free() {
		t.Fatalf("star reported deadlock: %v", rep.Cycle)
	}
	if err := deadlock.Check(top); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.String(), "deadlock-free") {
		t.Fatal("report string wrong")
	}
}

// Every design the synthesis engine produces must be deadlock free —
// the island discipline plus min-cost routing should never build a
// cyclic CDG; this is the regression gate for that claim.
func TestSynthesizedDesignsAreDeadlockFree(t *testing.T) {
	lib := model.Default65nm()
	for _, name := range bench.Names() {
		spec, err := bench.Islanded(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Synthesize(spec, lib, core.Options{AllowIntermediate: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range res.Points {
			if err := deadlock.Check(res.Points[i].Top); err != nil {
				t.Fatalf("%s point %d: %v", name, i, err)
			}
		}
	}
}

func TestPerCoreIslandsDeadlockFree(t *testing.T) {
	lib := model.Default65nm()
	spec, err := bench.D26Islands(viplace.MethodCommunication, 26)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Synthesize(spec, lib, core.Options{AllowIntermediate: true, MaxIntermediateSwitches: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Points {
		if err := deadlock.Check(res.Points[i].Top); err != nil {
			t.Fatalf("point %d: %v", i, err)
		}
	}
}
