package core

import (
	"context"
	"fmt"
	"testing"

	"nocvi/internal/bench"
	"nocvi/internal/model"
	"nocvi/internal/power"
	"nocvi/internal/soc"
	"nocvi/internal/specgen"
)

// samePoints asserts two synthesis results are bit-identical in every
// observable metric: counts, Points order, and per-point numbers.
func samePoints(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.Explored != b.Explored || a.Feasible != b.Feasible || a.Truncated != b.Truncated {
		t.Fatalf("%s: accounting differs: explored %d/%d feasible %d/%d truncated %v/%v",
			label, a.Explored, b.Explored, a.Feasible, b.Feasible, a.Truncated, b.Truncated)
	}
	if len(a.Points) != len(b.Points) {
		t.Fatalf("%s: %d vs %d points", label, len(a.Points), len(b.Points))
	}
	for i := range a.Points {
		p, q := &a.Points[i], &b.Points[i]
		if fmt.Sprint(p.SwitchCounts) != fmt.Sprint(q.SwitchCounts) || p.MidSwitches != q.MidSwitches {
			t.Fatalf("%s: point %d config differs: %v/%d vs %v/%d",
				label, i, p.SwitchCounts, p.MidSwitches, q.SwitchCounts, q.MidSwitches)
		}
		if p.NoCPower != q.NoCPower || p.MeanLatencyCycles != q.MeanLatencyCycles ||
			p.NoCAreaMM2 != q.NoCAreaMM2 || p.WireViolations != q.WireViolations {
			t.Fatalf("%s: point %d metrics differ: %+v vs %+v", label, i, *p, *q)
		}
	}
}

// sameSelection asserts Best and BestLatency pick the same design in
// both results.
func sameSelection(t *testing.T, label string, a, b *Result) {
	t.Helper()
	ab, bb := a.Best(), b.Best()
	if fmt.Sprint(ab.SwitchCounts) != fmt.Sprint(bb.SwitchCounts) || ab.MidSwitches != bb.MidSwitches {
		t.Fatalf("%s: Best differs: %v/%d vs %v/%d",
			label, ab.SwitchCounts, ab.MidSwitches, bb.SwitchCounts, bb.MidSwitches)
	}
	al, bl := a.BestLatency(), b.BestLatency()
	if fmt.Sprint(al.SwitchCounts) != fmt.Sprint(bl.SwitchCounts) || al.MidSwitches != bl.MidSwitches {
		t.Fatalf("%s: BestLatency differs: %v/%d vs %v/%d",
			label, al.SwitchCounts, al.MidSwitches, bl.SwitchCounts, bl.MidSwitches)
	}
}

// TestSerialParallelIdenticalOnSuite verifies the acceptance criterion
// that Workers=1 and Workers=N produce identical Result.Points (same
// order, same metrics) and the same Best selections on every bundled
// benchmark SoC.
func TestSerialParallelIdenticalOnSuite(t *testing.T) {
	lib := model.Default65nm()
	for _, name := range bench.Names() {
		spec, err := bench.Islanded(name)
		if err != nil {
			t.Fatal(err)
		}
		opt := Options{AllowIntermediate: true, MaxIntermediateSwitches: 2}
		opt.Workers = 1
		serial, err := Synthesize(spec, lib, opt)
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		opt.Workers = 8
		parallel, err := Synthesize(spec, lib, opt)
		if err != nil {
			t.Fatalf("%s parallel: %v", name, err)
		}
		samePoints(t, name, serial, parallel)
		sameSelection(t, name, serial, parallel)
	}
}

// TestPropertySerialParallelIdentical is the specgen property test: on
// 20 random well-formed SoCs, serial and parallel sweeps must produce
// identical point sets (or fail identically).
func TestPropertySerialParallelIdentical(t *testing.T) {
	lib := model.Default65nm()
	gen := specgen.Options{MaxCores: 12, MaxIslands: 4}
	for seed := int64(1); seed <= 20; seed++ {
		spec := specgen.Random(seed, gen)
		opt := Options{AllowIntermediate: true, MaxIntermediateSwitches: 2}
		opt.Workers = 1
		serial, serr := Synthesize(spec, lib, opt)
		opt.Workers = 6
		parallel, perr := Synthesize(spec, lib, opt)
		if (serr == nil) != (perr == nil) {
			t.Fatalf("seed %d: serial err=%v, parallel err=%v", seed, serr, perr)
		}
		if serr != nil {
			if serr.Error() != perr.Error() {
				t.Fatalf("seed %d: errors differ: %v vs %v", seed, serr, perr)
			}
			continue
		}
		samePoints(t, spec.Name, serial, parallel)
		sameSelection(t, spec.Name, serial, parallel)
	}
}

// TestExploredCountsFailedPartitions is the regression test for the
// undercounting bug: a counts-vector whose min-cut partitioning fails
// must still contribute its whole mid-sweep to Explored. The candidate
// space does not depend on partition feasibility, so a run with a
// partition-hostile MaxPartSize must report the same Explored as an
// unconstrained run.
func TestExploredCountsFailedPartitions(t *testing.T) {
	spec := miniSoC()
	lib := model.Default65nm()
	base := Options{AllowIntermediate: true, MaxIntermediateSwitches: 2}
	free, err := Synthesize(spec, lib, base)
	if err != nil {
		t.Fatal(err)
	}
	constrained := base
	// Max 2 cores per switch: the minimal counts vector gives the
	// 4-core sys island one switch, which cannot hold it -> that
	// vector's partitioning fails for every mid value.
	constrained.Partition.MaxPartSize = 2
	tight, err := Synthesize(spec, lib, constrained)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Explored != free.Explored {
		t.Fatalf("failed partitions dropped from Explored: %d vs %d", tight.Explored, free.Explored)
	}
	if tight.Feasible >= free.Feasible {
		t.Fatalf("MaxPartSize=2 should kill some candidates: feasible %d vs %d", tight.Feasible, free.Feasible)
	}
	if free.Explored < free.Feasible || tight.Explored < tight.Feasible {
		t.Fatal("explored < feasible")
	}
}

// TestTruncatedFlag checks the MaxDesignPoints bookkeeping: a capped
// sweep reports Truncated and an exhaustive (or uncapped) one does not,
// and truncated serial/parallel runs still agree point for point.
func TestTruncatedFlag(t *testing.T) {
	spec := miniSoC()
	lib := model.Default65nm()
	full, err := Synthesize(spec, lib, Options{AllowIntermediate: true})
	if err != nil {
		t.Fatal(err)
	}
	if full.Truncated {
		t.Fatal("exhaustive sweep reported Truncated")
	}

	capped := Options{AllowIntermediate: true, MaxDesignPoints: 3}
	capped.Workers = 1
	serial, err := Synthesize(spec, lib, capped)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Points) != 3 || !serial.Truncated {
		t.Fatalf("want 3 points and Truncated, got %d points truncated=%v", len(serial.Points), serial.Truncated)
	}
	if serial.Explored >= full.Explored {
		t.Fatal("truncated sweep explored the whole space")
	}
	capped.Workers = 8
	parallel, err := Synthesize(spec, lib, capped)
	if err != nil {
		t.Fatal(err)
	}
	samePoints(t, "capped", serial, parallel)

	// A cap the sweep never reaches must not be reported as truncation.
	loose, err := Synthesize(spec, lib, Options{AllowIntermediate: true, MaxDesignPoints: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if loose.Truncated {
		t.Fatal("uncapped-in-practice sweep reported Truncated")
	}
}

// TestArgminTieBreak pins the explicit deterministic tie-break: on an
// exact metric tie, the lowest total switch count wins, then the lowest
// intermediate switch count — regardless of Points order.
func TestArgminTieBreak(t *testing.T) {
	pw := power.Breakdown{SwitchDynW: 0.5}
	mk := func(counts []int, mid int) DesignPoint {
		return DesignPoint{SwitchCounts: counts, MidSwitches: mid, NoCPower: pw, MeanLatencyCycles: 7}
	}
	r := &Result{Points: []DesignPoint{
		mk([]int{3, 1}, 2), // most switches, listed first
		mk([]int{2, 2}, 1), // same total as below, more mid switches
		mk([]int{2, 2}, 0), // the canonical winner
		mk([]int{2, 3}, 0),
	}}
	if best := r.Best(); best.MidSwitches != 0 || totalSwitches(best) != 4 {
		t.Fatalf("power tie broke to %v/%d", best.SwitchCounts, best.MidSwitches)
	}
	if best := r.BestLatency(); best.MidSwitches != 0 || totalSwitches(best) != 4 {
		t.Fatalf("latency tie broke to %v/%d", best.SwitchCounts, best.MidSwitches)
	}
	// A genuinely better metric still dominates the tie-break.
	cheap := mk([]int{9, 9}, 3)
	cheap.NoCPower = power.Breakdown{SwitchDynW: 0.1}
	r.Points = append(r.Points, cheap)
	if best := r.Best(); totalSwitches(best) != 18 {
		t.Fatalf("lower power lost to tie-break: %v", best.SwitchCounts)
	}
}

// TestSynthesizeContextCancellation covers the context plumbing for
// both sweep paths: a dead context yields a Partial result — possibly
// empty, never an error — and a live one a complete sweep stamped
// StopComplete.
func TestSynthesizeContextCancellation(t *testing.T) {
	spec := miniSoC()
	lib := model.Default65nm()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		res, err := SynthesizeContext(ctx, spec, lib, Options{AllowIntermediate: true, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: canceled sweep errored: %v", workers, err)
		}
		if !res.Partial || res.StopReason != StopCanceled {
			t.Fatalf("workers=%d: want Partial/%s, got Partial=%v StopReason=%q",
				workers, StopCanceled, res.Partial, res.StopReason)
		}
		if res.Explored != 0 {
			t.Fatalf("workers=%d: pre-canceled context still explored %d candidates", workers, res.Explored)
		}
	}
	res, err := SynthesizeContext(context.Background(), spec, lib, Options{Workers: 4})
	if err != nil || len(res.Points) == 0 {
		t.Fatalf("live context failed: %v", err)
	}
	if res.Partial || res.StopReason != StopComplete {
		t.Fatalf("complete sweep stamped Partial=%v StopReason=%q", res.Partial, res.StopReason)
	}
}

// TestWorkersExceedCandidates floods a sweep with far more workers
// than candidates: most goroutines find the cursor already exhausted
// and must exit without claiming anything, and the result must still
// be bit-identical to the serial sweep. This is the degenerate end of
// the block-claiming dispatch, where every block is smaller than the
// worker pool.
func TestWorkersExceedCandidates(t *testing.T) {
	spec := miniSoC()
	lib := model.Default65nm()
	opt := Options{AllowIntermediate: true, MaxIntermediateSwitches: 2}
	opt.Workers = 1
	serial, err := Synthesize(spec, lib, opt)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Explored >= 512 {
		t.Fatalf("fixture grew: %d candidates no longer ≪ 512 workers", serial.Explored)
	}
	opt.Workers = 512
	flooded, err := Synthesize(spec, lib, opt)
	if err != nil {
		t.Fatal(err)
	}
	samePoints(t, "flooded", serial, flooded)
	sameSelection(t, "flooded", serial, flooded)
}

// soloSoC is the smallest well-formed spec: one core, one island, no
// flows. Its candidate space is exactly one (counts=[1], mid=0)
// point.
func soloSoC() *soc.Spec {
	return &soc.Spec{
		Name: "solo1",
		Cores: []soc.Core{{ID: 0, Name: "cpu", Class: soc.ClassCPU,
			AreaMM2: 2, DynPowerW: 0.1, LeakPowerW: 0.02}},
		Islands:  []soc.Island{{ID: 0, Name: "sys", VoltageV: 1.0}},
		IslandOf: []soc.IslandID{0},
	}
}

// TestSingleCandidateSweep pins the other boundary: a one-candidate
// space must evaluate exactly once and produce the same single point
// for any worker count.
func TestSingleCandidateSweep(t *testing.T) {
	spec := soloSoC()
	lib := model.Default65nm()
	var ref *Result
	for _, w := range []int{1, 2, 64} {
		res, err := Synthesize(spec, lib, Options{Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if res.Explored != 1 || res.Feasible != 1 || len(res.Points) != 1 {
			t.Fatalf("workers=%d: explored=%d feasible=%d points=%d, want 1/1/1",
				w, res.Explored, res.Feasible, len(res.Points))
		}
		if res.StopReason != StopComplete {
			t.Fatalf("workers=%d: stop reason %q", w, res.StopReason)
		}
		if ref == nil {
			ref = res
			continue
		}
		samePoints(t, spec.Name, ref, res)
		sameSelection(t, spec.Name, ref, res)
	}
}
