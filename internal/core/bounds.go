// Admissible lower bounds and incumbent pruning — the branch-and-bound
// layer of the design-space sweeps.
//
// Every candidate of the sweep is a (switch-count vector, intermediate
// switch count) pair. Before the expensive buildPoint pipeline runs,
// this layer computes two candidate-local lower bounds from the spec and
// the candidate's partitions alone:
//
//   - a power bound: the exact NI dynamic power (it depends only on the
//     spec's aggregate core bandwidth), an admissible FIFO term (every
//     inter-island flow crosses at least one island boundary at a
//     voltage at least max(src, dst)), and per-switch dynamic power at
//     the provable minimum port count and traffic of each partition —
//     intermediate-switch power is bounded by zero, and link-wire power
//     is bounded by zero unless Floorplan.SkipAnnotate fixes every link
//     at the default length (see boundsEnv.linkExact);
//   - a latency bound: the per-flow minimum zero-load latency given
//     which flows the partition forces across switch (and island)
//     boundaries, averaged exactly like DesignPoint.MeanLatencyCycles.
//
// Both are admissible — never above the exact metrics of any design
// point the candidate can produce — so discarding a candidate whose
// bounds are strictly dominated (in BOTH dimensions) by an already
// completed, violation-free point can never discard an argmin winner or
// a Pareto-front member: the dominating point beats everything the
// candidate could have become. Exact metric ties are never pruned,
// which keeps the argmin tie-break chains intact. The same arithmetic
// yields fast infeasibility proofs (port-capacity and minimum-latency
// checks) that skip partitioning entirely.
//
// The incumbent is shared across workers through a few atomic slots
// that only ever tighten (CAS min-loops under different scalarization
// keys). Which worker published an incumbent first is schedule-
// dependent, so pruning decisions alone would not be reproducible;
// Synthesize therefore re-checks every completed candidate canonically
// at fold time (see prunedBy and collect), which makes Points identical
// for every worker count, and the streaming sweep's collectors are
// winner-invariant under any sound removal (see stream.go). PruneStats
// reports what happened; it is bookkeeping, never part of a result's
// identity.
package core

import (
	"errors"
	"sync/atomic"

	"nocvi/internal/model"
	"nocvi/internal/power"
	"nocvi/internal/route"
	"nocvi/internal/soc"
)

// powerLBBackoff shaves a relative epsilon off the power lower bound.
// The bound's terms equal the engine's own power terms bit-for-bit, but
// they are summed in a different grouping; the 1e-9 relative backoff
// absorbs any summation-order rounding (at most a few ulps) so the
// bound stays admissible down to the last bit. Latency bounds need no
// backoff: the traversal-cycle constants are small integers, so the
// per-flow sums are integer-exact in float64.
const powerLBBackoff = 1 - 1e-9

// boundCapSlack is the multiplicative tolerance of the infeasibility
// checks. topology.Validate tolerates overload up to 1+1e-9, so proving
// a candidate infeasible requires exceeding capacity by strictly more;
// 1e-6 keeps a three-orders-of-magnitude safety margin.
const boundCapSlack = 1 + 1e-6

// errStagePruned is buildPoint's abort signal when the staged bound
// re-check (post-route, pre-floorplan) finds the candidate strictly
// dominated by an incumbent. It marks a pruned candidate, not an
// infeasible one.
var errStagePruned = errors.New("core: candidate pruned by staged incumbent bound")

// Prune outcomes of one candidate (evalOutcome.pruned).
const (
	pruneNone uint8 = iota
	// pruneBound: dismissed before evaluation — provable infeasibility
	// or an incumbent strictly dominating the candidate's lower bounds.
	pruneBound
	// pruneStage: evaluation started and was aborted at a staged bound
	// re-check inside buildPoint.
	pruneStage
)

// boundFlow is one intra-island flow in island-local core indices.
type boundFlow struct {
	a, b   int
	bw     float64
	maxLat float64
}

// boundEndpoint is one endpoint an inter-island flow pins inside an
// island: the local core index and the flow bandwidth the core's switch
// must carry.
type boundEndpoint struct {
	local int
	bw    float64
}

// boundsEnv precomputes, once per synthesis run, everything the
// candidate-local bounds need: per-island electrical facts, the flow
// structure in island-local indices, and the candidate-independent
// power and latency terms.
type boundsEnv struct {
	lib   *model.Library
	freqs []float64

	// Per island: the NoC supply the power model uses, the capacity of
	// any link touching the island, the largest switch size Validate
	// accepts at the island's clock, and the core count.
	volts   []float64
	linkCap []float64
	sizeCap []int
	nCores  []int

	// Per island: total inter-island bandwidth sourced/sunk there, the
	// intra-island flows, and the endpoints inter-island flows pin.
	interEgress  []float64
	interIngress []float64
	intra        [][]boundFlow
	interEnd     [][]boundEndpoint

	// fixedPowerW is the candidate-independent part of the power bound:
	// the exact NI dynamic sum, the admissible FIFO term, and (under
	// linkExact) the admissible per-inter-flow link term. latSumBase
	// is the latency-cycle sum with every intra flow at its same-switch
	// minimum; nFlows the divisor MeanLatencyCycles uses.
	fixedPowerW float64
	latSumBase  float64
	nFlows      int

	// linkExact is set under Floorplan.SkipAnnotate: link lengths then
	// stay at the power model's default, making link dynamic power a
	// pure function of routed traffic. The bounds gain an admissible
	// per-crossing link term (every cross-switch flow traverses at
	// least one link at the default length), and the staged re-check
	// can price the candidate's power exactly. With annotation on, the
	// floorplanner owns the lengths, which have no provable floor — the
	// link terms are then bounded by zero and pruning bites far less.
	linkExact bool

	// specInfeasible: some flow violates a bound no candidate can fix
	// (a latency constraint under the routing-model minimum, or a
	// bandwidth above every link capacity on its path class). Every
	// candidate of the sweep is then provably infeasible.
	specInfeasible bool
}

// newBoundsEnv builds the bounds environment for one run. freqs and
// islandCores are the step-1/2 outcomes the run already computed.
func newBoundsEnv(spec *soc.Spec, lib *model.Library, opt Options, freqs []float64, islandCores [][]soc.CoreID) *boundsEnv {
	nIsl := len(spec.Islands)
	be := &boundsEnv{
		lib:          lib,
		freqs:        freqs,
		volts:        make([]float64, nIsl),
		linkCap:      make([]float64, nIsl),
		sizeCap:      make([]int, nIsl),
		nCores:       make([]int, nIsl),
		interEgress:  make([]float64, nIsl),
		interIngress: make([]float64, nIsl),
		intra:        make([][]boundFlow, nIsl),
		interEnd:     make([][]boundEndpoint, nIsl),
		nFlows:       len(spec.Flows),
		linkExact:    opt.Floorplan.SkipAnnotate,
	}
	for j := 0; j < nIsl; j++ {
		be.volts[j] = spec.Islands[j].VoltageV
		if opt.AutoVoltage {
			be.volts[j] = lib.VoltageForFreq(freqs[j])
		}
		be.linkCap[j] = lib.LinkCapacityBps(freqs[j])
		// The largest size Validate accepts: it rejects switches whose
		// SwitchMaxFreqHz falls below the island clock minus 1 Hz.
		be.sizeCap[j] = lib.MaxSwitchSize(freqs[j] - 1)
		be.nCores[j] = len(islandCores[j])
	}
	local := make([]int, len(spec.Cores))
	for j := range islandCores {
		for i, c := range islandCores[j] {
			local[c] = i
		}
	}
	minIntra := route.MinZeroLoadLatencyCycles(false, false)
	minInter := route.MinZeroLoadLatencyCycles(true, true)
	var fifoLB float64
	for _, f := range spec.Flows {
		s, d := spec.IslandOf[f.Src], spec.IslandOf[f.Dst]
		if s == d {
			be.intra[s] = append(be.intra[s], boundFlow{
				a: local[f.Src], b: local[f.Dst], bw: f.BandwidthBps, maxLat: f.MaxLatencyCycles,
			})
			be.latSumBase += minIntra
			if f.MaxLatencyCycles > 0 && f.MaxLatencyCycles < minIntra {
				be.specInfeasible = true
			}
			continue
		}
		be.interEgress[s] += f.BandwidthBps
		be.interIngress[d] += f.BandwidthBps
		be.interEnd[s] = append(be.interEnd[s], boundEndpoint{local: local[f.Src], bw: f.BandwidthBps})
		be.interEnd[d] = append(be.interEnd[d], boundEndpoint{local: local[f.Dst], bw: f.BandwidthBps})
		be.latSumBase += minInter
		if f.MaxLatencyCycles > 0 && f.MaxLatencyCycles < minInter {
			be.specInfeasible = true
		}
		// Any route of this flow leaves the source island and enters the
		// destination island, so some link on it is capped at the slower
		// of the two island clocks (the intermediate island clocks at
		// the maximum frequency and never lowers a link's capacity).
		minF := freqs[s]
		if freqs[d] < minF {
			minF = freqs[d]
		}
		if f.BandwidthBps > lib.LinkCapacityBps(minF)*boundCapSlack {
			be.specInfeasible = true
		}
		// Admissible FIFO term: a direct crossing synchronizes at
		// max(vSrc, vDst); a detour through the intermediate island has
		// a crossing out of the source (≥ vSrc) and one into the
		// destination (≥ vDst), the larger of which is ≥ max(vSrc, vDst)
		// — so every route's FIFO power is at least this single term.
		vLo, vHi := be.volts[s], be.volts[d]
		if vLo > vHi {
			vLo, vHi = vHi, vLo
		}
		fifoLB += lib.FIFODynPowerW(vLo, vHi, f.BandwidthBps)
		// Under SkipAnnotate every link is priced at the default length,
		// so an admissible link term exists: the flow's route traverses at
		// least one link whose max endpoint voltage is at least
		// max(vSrc, vDst), by the same crossing argument as the FIFO term
		// (dynamic scaling is monotone in voltage).
		if be.linkExact {
			fifoLB += lib.LinkDynPowerW(power.DefaultLinkLengthMM, vHi, f.BandwidthBps)
		}
	}
	// The NI term is exact, not a bound: NI traffic is the core's
	// aggregate egress+ingress regardless of topology, summed in core-ID
	// order exactly like the power package sums it.
	egress, ingress := spec.AggregateCoreBandwidth()
	var niW float64
	for c := range spec.Cores {
		niW += lib.NIDynPowerW(be.volts[spec.IslandOf[c]], egress[c]+ingress[c])
	}
	be.fixedPowerW = niW + fifoLB
	return be
}

// islandInfeasible is the stage-0 port-capacity proof for island j at k
// switches, requiring no partition: k switches of at most sizeCap ports
// leave k*sizeCap - nCores ports free for links in each direction, every
// boundary link touching the island is capped at the island's link
// capacity, and all inter-island traffic sourced (sunk) in the island
// must cross boundary out-links (in-links). When the demand provably
// exceeds that headroom — or the cores cannot even fit on k maximal
// switches — no candidate using (j, k) can validate.
func (be *boundsEnv) islandInfeasible(j, k int) bool {
	freePorts := k*be.sizeCap[j] - be.nCores[j]
	if freePorts < 0 {
		return true
	}
	capW := float64(freePorts) * be.linkCap[j] * boundCapSlack
	return be.interEgress[j] > capW || be.interIngress[j] > capW
}

// vectorInfeasible is the pre-partition infeasibility check for one
// switch-count vector: a provably-doomed vector is skipped before any
// min-cut runs.
func (be *boundsEnv) vectorInfeasible(counts []int) bool {
	if be.specInfeasible {
		return true
	}
	for j, k := range counts {
		if be.islandInfeasible(j, k) {
			return true
		}
	}
	return false
}

// islandPiece computes island j's contribution to the candidate-local
// bounds once its partition is known: the summed minimum switch dynamic
// power (each switch at least its attached cores plus one boundary port
// when any flow crosses it, carrying at least the traffic of the flows
// it terminates, plus — under linkExact — one default-length link per
// cross-switch flow), the number of intra-island flows the partition forces
// across switches (each raises that flow's latency minimum), and an
// island-local infeasibility verdict (a cross-switch flow whose latency
// constraint or bandwidth no link can meet).
func (be *boundsEnv) islandPiece(j, k int, part []int) (swPowerW float64, crossFlows int, infeasible bool) {
	if be.islandInfeasible(j, k) {
		return 0, 0, true
	}
	cores := make([]int, k)
	traffic := make([]float64, k)
	boundary := make([]bool, k)
	for _, p := range part {
		cores[p]++
	}
	minCross := route.MinZeroLoadLatencyCycles(true, false)
	for _, f := range be.intra[j] {
		pa, pb := part[f.a], part[f.b]
		if pa == pb {
			traffic[pa] += f.bw
			continue
		}
		crossFlows++
		if f.maxLat > 0 && f.maxLat < minCross {
			return 0, 0, true
		}
		if f.bw > be.linkCap[j]*boundCapSlack {
			return 0, 0, true
		}
		// Default-length link pricing: a cross-switch route has at least
		// one link, and its first link leaves a switch at this island's
		// supply, so its max endpoint voltage is at least volts[j].
		if be.linkExact {
			swPowerW += be.lib.LinkDynPowerW(power.DefaultLinkLengthMM, be.volts[j], f.bw)
		}
		traffic[pa] += f.bw
		traffic[pb] += f.bw
		boundary[pa] = true
		boundary[pb] = true
	}
	for _, e := range be.interEnd[j] {
		p := part[e.local]
		traffic[p] += e.bw
		boundary[p] = true
	}
	for p := 0; p < k; p++ {
		ports := cores[p]
		if boundary[p] {
			// A switch with a cross-boundary flow endpoint has at least
			// one inter-switch link, so its size is at least cores+1.
			ports++
		}
		swPowerW += be.lib.SwitchDynPowerW(ports, be.freqs[j], be.volts[j], traffic[p])
	}
	return swPowerW, crossFlows, false
}

// combine folds the summed per-island switch-power pieces and the
// cross-switch intra-flow count into the final candidate bounds.
func (be *boundsEnv) combine(swPowerW float64, crossFlows int) (powerLB, latLB float64) {
	powerLB = (be.fixedPowerW + swPowerW) * powerLBBackoff
	if be.nFlows > 0 {
		step := route.MinZeroLoadLatencyCycles(true, false) - route.MinZeroLoadLatencyCycles(false, false)
		latLB = (be.latSumBase + step*float64(crossFlows)) / float64(be.nFlows)
	}
	return powerLB, latLB
}

// vectorBounds assembles one counts-vector's bounds from its resolved
// partitions. skip reports provable infeasibility; the bounds are then
// meaningless.
func (be *boundsEnv) vectorBounds(counts []int, parts [][]int) (powerLB, latLB float64, skip bool) {
	if be.specInfeasible {
		return 0, 0, true
	}
	var sw float64
	cross := 0
	for j, k := range counts {
		pw, c, bad := be.islandPiece(j, k, parts[j])
		if bad {
			return 0, 0, true
		}
		sw += pw
		cross += c
	}
	powerLB, latLB = be.combine(sw, cross)
	return powerLB, latLB, false
}

// pruneSlot is one published incumbent: the exact headline metrics of a
// completed, violation-free design point and its candidate index.
type pruneSlot struct {
	idx  uint64
	p, l float64
}

// incumbentPruner is the monotonically-tightening shared bound. Four
// atomic slots hold the best published point under four scalarization
// keys — min power, min latency, min sum, min product — so candidates
// weak in either single dimension or balanced across both can all find
// a dominating witness. Slots only ever tighten (CAS min-loop), and a
// candidate is pruned only when a slot strictly dominates its lower
// bounds in BOTH dimensions with a strictly smaller candidate index —
// provable dominance, so which worker tightened a slot first never
// changes the winner set.
type incumbentPruner struct {
	slots [4]atomic.Pointer[pruneSlot]
}

func pruneKey(k int, p, l float64) float64 {
	switch k {
	case 0:
		return p
	case 1:
		return l
	case 2:
		return p + l
	default:
		return p * l
	}
}

// publish offers a completed violation-free point (exact power and mean
// latency) as an incumbent. Each slot keeps the strictly smaller key;
// ties keep the established incumbent.
func (ip *incumbentPruner) publish(idx uint64, p, l float64) {
	var s *pruneSlot
	for k := range ip.slots {
		key := pruneKey(k, p, l)
		for {
			old := ip.slots[k].Load()
			if old != nil && pruneKey(k, old.p, old.l) <= key {
				break
			}
			if s == nil {
				s = &pruneSlot{idx: idx, p: p, l: l}
			}
			if ip.slots[k].CompareAndSwap(old, s) {
				break
			}
		}
	}
}

// dominates reports whether any published incumbent with candidate
// index strictly below beforeIdx strictly dominates the given lower
// bounds in both dimensions. beforeIdx restricts witnesses to earlier
// candidates (Synthesize's canonical fold re-derives exactly these
// decisions); the streaming sweep passes MaxUint64 because its
// collectors are winner-invariant under any published witness.
func (ip *incumbentPruner) dominates(beforeIdx uint64, powerLB, latencyLB float64) bool {
	for k := range ip.slots {
		if s := ip.slots[k].Load(); s != nil && s.idx < beforeIdx && s.p < powerLB && s.l < latencyLB {
			return true
		}
	}
	return false
}

// prunedBy is Synthesize's canonical fold-time pruning decision for one
// completed candidate: scanned against the kept points so far (in fold
// order, all from earlier candidates), the candidate is discarded when
// a violation-free kept point strictly dominates either its
// pre-evaluation lower bounds (pruneBound) or its exact post-route
// metrics — power as the stage-2 check in buildPoint priced it, final
// mean latency (pruneStage). linkExact must mirror buildPoint's choice:
// the full dynamic power under Floorplan.SkipAnnotate (lengths stay at
// the default, so the post-route figure is final), power sans the
// link-wire terms otherwise. The decision depends only on earlier
// candidates' kept status and exact metrics, never on worker timing;
// any worker-side prune of this candidate implies the same verdict here
// (the worker's witness is either kept, or was itself discarded by a
// kept point that strictly dominates it transitively), which is what
// keeps Points identical across worker counts.
func prunedBy(kept []DesignPoint, c candidate, dp *DesignPoint, linkExact bool) uint8 {
	if len(kept) == 0 {
		return pruneNone
	}
	b := dp.NoCPower
	if !linkExact {
		b.LinkDynW = 0 // bit-equal to the stage-2 power.NoCSansLinkWires sum
	}
	p2 := b.DynW()
	l2 := dp.MeanLatencyCycles
	for i := range kept {
		q := &kept[i]
		if q.WireViolations != 0 {
			continue
		}
		qp, ql := q.NoCPower.DynW(), q.MeanLatencyCycles
		if qp < c.vec.powerLB && ql < c.vec.latLB {
			return pruneBound
		}
		if qp < p2 && ql < l2 {
			return pruneStage
		}
	}
	return pruneNone
}
