package core

import (
	"context"
	"errors"
	"fmt"

	"nocvi/internal/model"
	"nocvi/internal/soc"
)

// Degradation-ladder rung names, in the order they are applied. Each is
// an Algorithm-1-style relaxation: it widens the design space the sweep
// explores without changing the sweep itself, so a relaxed result is
// still a faithful Algorithm 1 outcome — just of a slightly easier
// problem, and labeled as such.
const (
	// RelaxSurvivability steps Options.Survivability down by one: a
	// spec that cannot afford k disjoint backups per flow may still
	// afford k-1. Redundancy is the cheapest guarantee to concede — it
	// degrades before any constraint of the spec itself bends (per the
	// roadmap, k steps down before latency slack), and the rung is
	// skipped entirely at k=0, where it could not change the problem.
	RelaxSurvivability = "survivability"

	// RelaxIntermediate turns on the intermediate NoC island (or widens
	// its switch sweep if already on): indirect switches give flows a
	// second island to route through when direct inter-island links
	// cannot meet constraints.
	RelaxIntermediate = "intermediate-switches"

	// RelaxLatency multiplies every flow's latency constraint by 1.1 —
	// the slack a designer would grant before abandoning the spec.
	RelaxLatency = "latency-slack"

	// RelaxSwitchSize scales the library's switch critical-path intercept
	// (MaxFreqA) by 1.15, allowing larger crossbars at every clock. Both
	// synthesis sizing and topology validation read the same library, so
	// relaxed points stay self-consistent.
	RelaxSwitchSize = "max-switch-size"
)

// relaxLatencyFactor and relaxFreqAFactor are the documented rung
// magnitudes; single-step, not compounding (each rung applies once).
const (
	relaxLatencyFactor = 1.1
	relaxFreqAFactor   = 1.15
)

// relaxation is one rung of the degradation ladder: a name stamped on
// results and an apply step producing the relaxed problem. Rungs are
// cumulative — rung k retries with rungs 1..k all applied. A non-nil
// enabled predicate gates the rung: when it reports false for the
// current options the rung is skipped without being applied or
// stamped (a no-op retry of the identical problem proves nothing).
type relaxation struct {
	name    string
	apply   func(spec *soc.Spec, lib *model.Library, opt Options) (*soc.Spec, *model.Library, Options)
	enabled func(opt Options) bool
}

// ladder lists the rungs in escalation order: cheapest concession
// first. Stepping survivability down concedes redundancy the spec
// never asked for; more indirect switches cost area but honor every
// constraint; latency slack bends the spec's constraints; a larger max
// switch size bends the technology model. See DESIGN.md for the
// rationale.
var ladder = []relaxation{
	{RelaxSurvivability, relaxSurvivability, func(opt Options) bool { return opt.Survivability > 0 }},
	{RelaxIntermediate, relaxIntermediate, nil},
	{RelaxLatency, relaxLatency, nil},
	{RelaxSwitchSize, relaxSwitchSize, nil},
}

func relaxSurvivability(spec *soc.Spec, lib *model.Library, opt Options) (*soc.Spec, *model.Library, Options) {
	if opt.Survivability > 0 {
		opt.Survivability--
	}
	return spec, lib, opt
}

func relaxIntermediate(spec *soc.Spec, lib *model.Library, opt Options) (*soc.Spec, *model.Library, Options) {
	maxCores := 0
	for j := range spec.Islands {
		if n := len(spec.CoresIn(soc.IslandID(j))); n > maxCores {
			maxCores = n
		}
	}
	if opt.AllowIntermediate {
		// Already on: double the indirect-switch sweep range instead.
		base := opt.MaxIntermediateSwitches
		if base <= 0 {
			base = maxCores
		}
		opt.MaxIntermediateSwitches = 2 * base
	} else {
		opt.AllowIntermediate = true
		opt.MaxIntermediateSwitches = maxCores
	}
	return spec, lib, opt
}

func relaxLatency(spec *soc.Spec, lib *model.Library, opt Options) (*soc.Spec, *model.Library, Options) {
	relaxed := spec.Clone()
	for i := range relaxed.Flows {
		relaxed.Flows[i].MaxLatencyCycles *= relaxLatencyFactor
	}
	return relaxed, lib, opt
}

func relaxSwitchSize(spec *soc.Spec, lib *model.Library, opt Options) (*soc.Spec, *model.Library, Options) {
	// Library is a flat value struct; a shallow copy is a deep copy.
	relaxed := *lib
	relaxed.MaxFreqA *= relaxFreqAFactor
	return spec, &relaxed, opt
}

// relaxedSynthesize walks the degradation ladder after an unrelaxed
// attempt failed with ErrInfeasible: each rung is applied on top of the
// previous ones and the whole sweep retried. The first rung that yields
// a result wins; the applied rung names are stamped on the Result and
// on every DesignPoint it holds, so downstream consumers can tell a
// relaxed design from a native one. When the ladder is exhausted — or
// the context dies mid-ladder — the original infeasibility is returned.
func relaxedSynthesize(ctx context.Context, spec *soc.Spec, lib *model.Library, opt Options, orig error) (*Result, error) {
	applied := make([]string, 0, len(ladder))
	for _, rung := range ladder {
		if ctx.Err() != nil {
			return nil, orig
		}
		if rung.enabled != nil && !rung.enabled(opt) {
			continue // rung cannot change the problem; skip without stamping
		}
		spec, lib, opt = rung.apply(spec, lib, opt)
		applied = append(applied, rung.name)
		res, err := synthesizeAttempt(ctx, spec, lib, opt)
		if err != nil {
			if errors.Is(err, ErrInfeasible) {
				continue // escalate to the next rung
			}
			return nil, err // structural failure no relaxation repairs
		}
		res.Relaxations = append([]string(nil), applied...)
		for i := range res.Points {
			res.Points[i].Relaxations = res.Relaxations
		}
		return res, nil
	}
	return nil, fmt.Errorf("core: degradation ladder exhausted (%d rungs): %w", len(ladder), orig)
}
