package core

import (
	"testing"

	"nocvi/internal/deadlock"
	"nocvi/internal/floorplan"
	"nocvi/internal/model"
	"nocvi/internal/power"
	"nocvi/internal/sim"
	"nocvi/internal/specgen"
	"nocvi/internal/viplace"
	"nocvi/internal/wormhole"
)

// TestSynthesizeRandomSpecs is the end-to-end property test: for many
// randomized SoCs, every design point the engine emits must satisfy all
// structural invariants — shutdown safety, capacity, latency, switch
// sizing, deadlock freedom, placement containment — and the simulator
// must deliver all traffic on it, including under shutdown masks.
func TestSynthesizeRandomSpecs(t *testing.T) {
	lib := model.Default65nm()
	synthesized := 0
	for seed := int64(0); seed < 60; seed++ {
		spec := specgen.Random(seed, specgen.Options{})
		res, err := Synthesize(spec, lib, Options{
			AllowIntermediate:       seed%2 == 0,
			MaxIntermediateSwitches: 2,
			MaxDesignPoints:         4,
		})
		if err != nil {
			// A random spec may legitimately be unroutable (e.g. one
			// core's aggregate bandwidth saturating every candidate
			// link); what must never happen is a *panic* or an invalid
			// point, both checked below.
			continue
		}
		synthesized++
		for i := range res.Points {
			dp := &res.Points[i]
			if err := dp.Top.Validate(); err != nil {
				t.Fatalf("seed %d point %d: %v", seed, i, err)
			}
			if err := deadlock.Check(dp.Top); err != nil {
				t.Fatalf("seed %d point %d: %v", seed, i, err)
			}
			if dp.NoCPower.DynW() <= 0 || dp.NoCAreaMM2 <= 0 {
				t.Fatalf("seed %d point %d: non-positive costs", seed, i)
			}
			pl := dp.Placement
			for c := range spec.Cores {
				if !pl.IslandRects[spec.IslandOf[c]].Contains(pl.CorePos[c]) {
					t.Fatalf("seed %d point %d: core %d escaped its island region", seed, i, c)
				}
			}
			if pl.Overlap() > 1e-6 {
				t.Fatalf("seed %d point %d: island regions overlap", seed, i)
			}
		}
		// Exercise the best point dynamically: full delivery with all
		// islands on, and with every shutdownable island gated.
		top := res.Best().Top
		if err := sim.VerifyShutdownDelivery(top, nil); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		mask := make([]bool, len(spec.Islands))
		any := false
		for j, isl := range spec.Islands {
			if isl.Shutdownable {
				mask[j] = true
				any = true
			}
		}
		// The flit-level wormhole engine must drain every synthesized
		// design (finite buffers, credit backpressure) — the dynamic
		// proof behind the CDG acyclicity gate.
		if seed%5 == 0 {
			wres, err := wormhole.Run(top, wormhole.Config{PacketsPerFlow: 2, DeadlockWindow: 3000})
			if err != nil {
				t.Fatalf("seed %d wormhole: %v", seed, err)
			}
			if wres.Deadlocked || wres.Delivered != wres.Injected {
				t.Fatalf("seed %d wormhole stalled: %+v", seed, wres)
			}
		}
		if any {
			if err := sim.VerifyShutdownDelivery(top, mask); err != nil {
				t.Fatalf("seed %d gated: %v", seed, err)
			}
			on := power.SystemPower(top).TotalW()
			off := power.SystemWithShutdown(top, mask).TotalW()
			if off >= on {
				t.Fatalf("seed %d: gating saved nothing (%g -> %g)", seed, on, off)
			}
		}
	}
	if synthesized < 40 {
		t.Fatalf("only %d/60 random specs synthesized — generator or engine too fragile", synthesized)
	}
}

// TestRepartitionRandomSpecs drives the island partitioners over random
// specs and re-synthesizes: partition outputs must always be valid
// inputs to the engine.
func TestRepartitionRandomSpecs(t *testing.T) {
	lib := model.Default65nm()
	ok := 0
	for seed := int64(100); seed < 130; seed++ {
		spec := specgen.Random(seed, specgen.Options{MaxCores: 12})
		for _, m := range []viplace.Method{viplace.MethodLogical, viplace.MethodCommunication} {
			n := 2 + int(seed)%3
			if n > len(spec.Cores) {
				n = len(spec.Cores)
			}
			re, err := viplace.Partition(spec, m, n)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, m, err)
			}
			if res, err := Synthesize(re, lib, Options{MaxDesignPoints: 1}); err == nil {
				ok++
				if err := res.Best().Top.Validate(); err != nil {
					t.Fatalf("seed %d %s: %v", seed, m, err)
				}
			}
		}
	}
	if ok < 30 {
		t.Fatalf("only %d/60 repartitioned specs synthesized", ok)
	}
}

// TestFloorplanRandomSpecs checks the wire annotations the floorplanner
// writes back are consistent on random designs.
func TestFloorplanRandomSpecs(t *testing.T) {
	lib := model.Default65nm()
	for seed := int64(200); seed < 220; seed++ {
		spec := specgen.Random(seed, specgen.Options{MaxCores: 10})
		res, err := Synthesize(spec, lib, Options{MaxDesignPoints: 1})
		if err != nil {
			continue
		}
		top := res.Best().Top
		pl, err := floorplan.Place(top, floorplan.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i, l := range top.Links {
			if l.LengthMM != pl.LinkLengthMM[i] {
				t.Fatalf("seed %d: link %d annotation mismatch", seed, i)
			}
			if l.LengthMM < 0 || l.LengthMM > pl.Die.W+pl.Die.H {
				t.Fatalf("seed %d: link %d length %g outside die", seed, i, l.LengthMM)
			}
		}
	}
}
