package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"

	"nocvi/internal/model"
	"nocvi/internal/partition"
	"nocvi/internal/soc"
	"nocvi/internal/vcg"
)

// SweepOptions configures SynthesizeSweep, the full-factorial streaming
// sweep. Unlike Synthesize's diagonal walk (every island's switch count
// incremented in lockstep), the streaming sweep enumerates the cross
// product of per-island switch-count ranges — spaces that reach millions
// of design points on 100+-core, 10+-island SoCs — without ever
// materializing a candidate list: workers draw index ranges from an
// atomic cursor and decode each index on the fly.
type SweepOptions struct {
	// WidthPerIsland caps how many switch-count values each island
	// contributes, counted up from the island's minimum feasible count.
	// Zero sweeps the full range, up to one switch per core. The cap is
	// how callers shape the cross product: 12 islands at width 4 is a
	// 16.7M-point space.
	WidthPerIsland int

	// Limit bounds the number of evaluated candidates (0 = exhaustive).
	// A limited sweep evaluates exactly the first Limit indices of the
	// enumeration order, so results stay deterministic. Limit is
	// required when the space size saturates uint64.
	Limit uint64

	// MaxErrors caps the recorded CandidateErrors (0 = 32). The errors
	// kept are the ones with the smallest candidate indices; the total
	// count is always reported.
	MaxErrors int
}

func (o SweepOptions) maxErrors() int {
	if o.MaxErrors <= 0 {
		return 32
	}
	return o.MaxErrors
}

// SweepPoint is the compact summary of one feasible candidate that the
// streaming sweep retains: the candidate's identity and its headline
// metrics, a few dozen bytes instead of a full DesignPoint with its
// topology and placement. The sweep's memory footprint is the Pareto
// front plus two argmin slots of these, independent of space size.
type SweepPoint struct {
	// Index is the candidate's position in the enumeration order (mid
	// varies fastest, then the last island's switch count, and so on).
	Index uint64

	SwitchCounts []int
	MidSwitches  int

	// PowerW is the NoC dynamic power (the Best() metric), LatencyCycles
	// the mean zero-load latency, AreaMM2 the NoC silicon cost.
	PowerW         float64
	LatencyCycles  float64
	AreaMM2        float64
	WireViolations int
}

// SweepResult is the outcome of a streaming sweep. Completed sweeps are
// byte-identical for every worker count: the collectors are order-
// independent (total-order argmin, exact Pareto merge, index-sorted
// errors). Partial results of a canceled sweep cover whichever indices
// were evaluated before the stop and may differ across worker counts;
// Partial says so.
type SweepResult struct {
	Spec *soc.Spec

	// Size is the full enumerated space (saturating at MaxUint64);
	// Explored the candidates actually decoded and dispositioned —
	// evaluated, bound-pruned or stage-pruned, the exact three-way split
	// PruneStats reports. Feasible counts the evaluated candidates that
	// yielded a valid design point; under pruning it is zeroed (which
	// candidates the incumbent bound skips is schedule-dependent, and a
	// completed sweep must stay byte-identical across worker counts —
	// the observed completion count moves to PruneStats.Feasible).
	Size     uint64
	Explored uint64
	Feasible uint64

	// Truncated reports Limit < Size; Partial a context stop. StopReason
	// takes the same values as Result.StopReason.
	Truncated  bool
	Partial    bool
	StopReason string

	// BestPower and BestLatency are the argmin design points, rebuilt in
	// full (topology, placement) from their winning indices after the
	// sweep; nil when nothing was feasible. Both argmins use the Best()/
	// BestLatency() ordering — wire violations, metric, total switches,
	// mid — extended by candidate index into a total order, so the
	// selection cannot depend on evaluation order.
	BestPower   *DesignPoint
	BestLatency *DesignPoint

	// BestPowerPoint and BestLatencyPoint are the winners' summaries.
	BestPowerPoint   *SweepPoint
	BestLatencyPoint *SweepPoint

	// Front is the exact power/latency Pareto front over all feasible
	// candidates, sorted by ascending power. Candidates with identical
	// (power, latency) are collapsed to the lowest index.
	Front []SweepPoint

	// Errors holds the recovered candidate panics with the smallest
	// indices, at most MaxErrors of them; ErrorCount is the true total.
	// Panics are the one exception to cross-worker identity under
	// pruning: whether a panicking candidate is pruned before it can
	// panic depends on incumbent timing, so a sweep that records errors
	// is only schedule-independent under Options.NoPrune. (Panics mark
	// engine bugs; healthy sweeps record none.)
	Errors     []CandidateError
	ErrorCount uint64

	// CacheStats reports the content-addressed cache layer's
	// contribution to this sweep (see Result.CacheStats); all-zero when
	// the run bypassed the cache. WarmStarts counts partition-table
	// entries loaded from disk instead of resolved — a repeated sweep
	// skips partition resolution entirely. Never encoded and zeroed in
	// digests, so cached and fresh sweeps compare byte-identical.
	CacheStats CacheStats

	// PruneStats is the branch-and-bound layer's disposition of the
	// explored candidates (see Result.PruneStats). The counter split is
	// schedule-dependent under the shared incumbent bound; like
	// CacheStats it is run bookkeeping — never encoded, zeroed in
	// digests and comparisons.
	PruneStats PruneStats
}

// sweepSpace is the enumeration geometry: per-island switch-count
// ranges plus the mid dimension, with mid varying fastest.
type sweepSpace struct {
	min    []int // per-island lowest switch count
	width  []int // per-island range width (>= 1)
	midDim int   // maxMid + 1
}

// size returns the cross-product size, saturating at MaxUint64.
func (s *sweepSpace) size() uint64 {
	total := uint64(s.midDim)
	for _, w := range s.width {
		if total > math.MaxUint64/uint64(w) {
			return math.MaxUint64
		}
		total *= uint64(w)
	}
	return total
}

// decode writes candidate idx's switch counts into counts (len =
// islands) and returns its mid value. Index 0 is every island at its
// minimum with mid 0; incrementing the index advances mid first.
func (s *sweepSpace) decode(idx uint64, counts []int) (mid int) {
	mid = int(idx % uint64(s.midDim))
	idx /= uint64(s.midDim)
	for j := len(s.width) - 1; j >= 0; j-- {
		w := uint64(s.width[j])
		counts[j] = s.min[j] + int(idx%w)
		idx /= w
	}
	return mid
}

// partTable holds the pre-resolved per-island partitions the workers
// read lock-free: entry [j][w] is island j cut into min[j]+w switches.
// The table is sized by the sum of range widths — a few hundred entries
// even for million-point spaces — and filled before workers start, so
// the hot loop does no cache probes and takes no locks.
type partTable struct {
	space *sweepSpace
	parts [][]partEntry
}

type partEntry struct {
	part []int
	err  error

	// Branch-and-bound annotations, filled only when pruning is on:
	// piece and cross are islandPiece's power/latency contributions for
	// this (island, count) cut, summed per candidate by the workers;
	// infeas marks a cut proven unable to validate (stage-0 port
	// arithmetic, or a cross-switch flow no link can serve), in which
	// case part may be nil — provably-doomed entries skip min-cut
	// resolution entirely.
	piece  float64
	cross  int
	infeas bool
}

// sweepBetter is the total order behind both argmins: fewest wire
// violations, lowest metric, fewest direct switches, fewest mid
// switches, lowest index. The index tiebreak mirrors serial first-wins
// and makes the order total, so merging per-worker minima is exact.
func sweepBetter(a, b *SweepPoint, metric func(*SweepPoint) float64) bool {
	if a.WireViolations != b.WireViolations {
		return a.WireViolations < b.WireViolations
	}
	av, bv := metric(a), metric(b)
	if av != bv { //noclint:ignore floateq exact compare keeps the argmin chain bit-identical across worker counts
		return av < bv
	}
	if as, bs := sumCounts(a.SwitchCounts), sumCounts(b.SwitchCounts); as != bs {
		return as < bs
	}
	if a.MidSwitches != b.MidSwitches {
		return a.MidSwitches < b.MidSwitches
	}
	return a.Index < b.Index
}

func sumCounts(counts []int) int {
	n := 0
	for _, k := range counts {
		n += k
	}
	return n
}

func powerOf(p *SweepPoint) float64   { return p.PowerW }
func latencyOf(p *SweepPoint) float64 { return p.LatencyCycles }

// pruneFront reduces pts to the exact Pareto front of (power, latency)
// minimization, ascending by power, with equal (power, latency) pairs
// collapsed to the lowest index. Sorting makes the result independent
// of input order, which is what lets per-worker fronts merge exactly.
func pruneFront(pts []SweepPoint) []SweepPoint {
	sort.Slice(pts, func(i, j int) bool {
		a, b := &pts[i], &pts[j]
		if a.PowerW != b.PowerW { //noclint:ignore floateq exact dominance keeps the front bit-identical across worker counts
			return a.PowerW < b.PowerW
		}
		if a.LatencyCycles != b.LatencyCycles { //noclint:ignore floateq exact dominance keeps the front bit-identical across worker counts
			return a.LatencyCycles < b.LatencyCycles
		}
		return a.Index < b.Index
	})
	out := pts[:0]
	bestLat := math.Inf(1)
	for i := range pts {
		if pts[i].LatencyCycles < bestLat {
			out = append(out, pts[i])
			bestLat = pts[i].LatencyCycles
		}
	}
	return out
}

// sweepCollector accumulates one worker's share of the sweep with
// bounded memory: two argmin slots, a Pareto buffer pruned in place
// whenever it fills, bounded errors, and counters.
type sweepCollector struct {
	explored   uint64
	pruneBound uint64
	pruneStage uint64
	feasible   uint64

	bestPower   *SweepPoint
	bestLatency *SweepPoint

	front []SweepPoint

	errs     []CandidateError
	errIdx   []uint64 // candidate index of each recorded error
	errCount uint64
	errCap   int
}

// frontBuffer bounds the unpruned Pareto buffer. Pruning is O(n log n)
// and discards dominated points, so the buffer oscillates between the
// true front size and this cap plus the front size.
const frontBuffer = 512

func (sc *sweepCollector) addFeasible(p SweepPoint) {
	sc.feasible++
	if sc.bestPower == nil || sweepBetter(&p, sc.bestPower, powerOf) {
		cp := p
		sc.bestPower = &cp
	}
	if sc.bestLatency == nil || sweepBetter(&p, sc.bestLatency, latencyOf) {
		cp := p
		sc.bestLatency = &cp
	}
	sc.front = append(sc.front, p)
	if len(sc.front) >= frontBuffer {
		sc.front = pruneFront(sc.front)
	}
}

func (sc *sweepCollector) addError(idx uint64, ce *CandidateError) {
	sc.errCount++
	// A worker claims ascending indices, so its first errCap errors are
	// its smallest; recording stops there. The globally smallest errCap
	// errors are each among their own worker's smallest, so the merge
	// below still selects them exactly.
	if len(sc.errs) < sc.errCap {
		sc.errs = append(sc.errs, *ce)
		sc.errIdx = append(sc.errIdx, idx)
	}
}

// sweepEval builds one decoded candidate behind a panic boundary,
// summarizes it, and reclaims the arena's topology (the full design
// point never escapes, so the pooled storage is reused — the sweep
// allocates no topology per point after warm-up). counts and parts are
// worker-owned scratch reused across calls.
func sweepEval(bc *buildContext, counts []int, parts [][]int, mid int, idx uint64, col *sweepCollector) {
	defer func() {
		if r := recover(); r != nil {
			col.addError(idx, &CandidateError{
				SwitchCounts: append([]int(nil), counts...),
				MidSwitches:  mid,
				//noclint:ignore bannedcall stringifying a recovered panic value, off the hot path
				Panic: fmt.Sprint(r),
				Stack: normalizeStack(debug.Stack()),
			})
			*bc = buildContext{env: bc.env}
		}
	}()
	if testHookEvalStart != nil {
		testHookEvalStart(counts, mid)
	}
	// Staged pruning accepts any published incumbent: the sweep's
	// collectors are winner-invariant under strictly-dominated removals
	// (the witness beats the removed point on every selection key), so no
	// index ordering is needed. The panic reset zeroes pruneIdx, hence
	// the per-call re-arm.
	bc.pruneIdx = math.MaxUint64
	dp, err := buildPoint(bc, counts, parts, mid)
	bc.stagePruned = false
	if err != nil {
		if errors.Is(err, errStagePruned) {
			col.pruneStage++
		}
		return // infeasible or pruned: nothing retained
	}
	p := SweepPoint{
		Index:          idx,
		SwitchCounts:   append([]int(nil), counts...),
		MidSwitches:    mid,
		PowerW:         dp.NoCPower.DynW(),
		LatencyCycles:  dp.MeanLatencyCycles,
		AreaMM2:        dp.NoCAreaMM2,
		WireViolations: dp.WireViolations,
	}
	bc.top = dp.Top // reclaim: the point was summarized, not published
	if pr := bc.env.pruner; pr != nil && p.WireViolations == 0 {
		pr.publish(idx, p.PowerW, p.LatencyCycles)
	}
	col.addFeasible(p)
}

// SynthesizeSweep runs Algorithm 1 over the full cross product of
// per-island switch-count ranges — the design space Synthesize's
// diagonal walk only samples — streaming candidates through a bounded
// worker pool. No candidate list is ever materialized: workers claim
// index blocks from an atomic cursor and decode each index in place,
// so a 10⁶-point space costs the same memory as a 10²-point one. Only
// compact SweepPoint summaries are retained (argmins plus the Pareto
// front); the two winning design points are rebuilt in full after the
// sweep.
//
// Completed sweeps are byte-identical for every Options.Workers value.
// Options.MaxDesignPoints and Options.Relax do not apply to the
// streaming sweep; use SweepOptions.Limit to bound work.
//
// Unless Options.NoPrune is set, the sweep runs branch-and-bound:
// candidates whose admissible lower bounds (see bounds.go) are strictly
// dominated in both objectives by an already-completed violation-free
// point are skipped, and evaluations are aborted at a staged bound
// re-check after routing. Every reported winner — both argmins and the
// whole Pareto front — is byte-identical to the unpruned sweep's: a
// pruned candidate is provably beaten by a retained point on every
// selection key, so it could not have appeared in any of them.
// SweepResult.Explored still covers every index; PruneStats says how
// each was dispositioned.
func SynthesizeSweep(ctx context.Context, spec *soc.Spec, lib *model.Library, opt Options, sw SweepOptions) (*SweepResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := lib.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	// Same survivability normalization as synthesizeAttempt: the core
	// knob is canonical and flows to every worker's router via the env.
	if opt.Survivability < 0 {
		opt.Survivability = 0
	}
	opt.Router.Survivability = opt.Survivability
	freqs, maxSizes, err := IslandClocks(spec, lib)
	if err != nil {
		return nil, err
	}
	nIsl := len(spec.Islands)
	space := &sweepSpace{min: make([]int, nIsl), width: make([]int, nIsl)}
	islandCores := make([][]soc.CoreID, nIsl)
	maxCores := 0
	for j := 0; j < nIsl; j++ {
		islandCores[j] = spec.CoresIn(soc.IslandID(j))
		n := len(islandCores[j])
		usable := maxSizes[j] - 1
		if usable < 1 {
			return nil, fmt.Errorf("core: island %d needs %.0f MHz, too fast for any usable switch: %w",
				j, freqs[j]/1e6, ErrInfeasible)
		}
		lo := (n + usable - 1) / usable
		if lo < 1 {
			lo = 1
		}
		hi := n
		if hi < lo {
			hi = lo
		}
		if sw.WidthPerIsland > 0 && lo+sw.WidthPerIsland-1 < hi {
			hi = lo + sw.WidthPerIsland - 1
		}
		space.min[j] = lo
		space.width[j] = hi - lo + 1
		if n > maxCores {
			maxCores = n
		}
	}
	maxMid := opt.MaxIntermediateSwitches
	if maxMid <= 0 {
		maxMid = maxCores
	}
	if !opt.AllowIntermediate {
		maxMid = 0
	}
	space.midDim = maxMid + 1

	res := &SweepResult{Spec: spec, Size: space.size()}
	limit := res.Size
	if sw.Limit > 0 && sw.Limit < limit {
		limit = sw.Limit
		res.Truncated = true
	}
	if res.Size == math.MaxUint64 && sw.Limit == 0 {
		return nil, fmt.Errorf("core: sweep space size overflows uint64; set SweepOptions.Limit")
	}

	vcgs, err := vcg.BuildAll(spec, opt.alpha())
	if err != nil {
		return nil, err
	}
	parter := newPartitioner(vcgs, maxSizes, opt)

	// The branch-and-bound layer: a bounds environment for the
	// candidate-local lower bounds and a shared incumbent the workers
	// tighten. Both off under Options.NoPrune.
	var be *boundsEnv
	if !opt.NoPrune {
		be = newBoundsEnv(spec, lib, opt, freqs, islandCores)
	}

	// Pre-resolve every per-island partition the space can reference —
	// the sum of range widths, a few hundred cuts at most — so workers
	// read the table lock-free. An island/k pair that cannot be cut is
	// stored as an error; candidates touching it count as evaluated but
	// infeasible, matching Synthesize's accounting. With pruning on,
	// each entry also carries its bound contributions, and cuts the
	// stage-0 port arithmetic proves unable to validate skip min-cut
	// resolution entirely.
	table := &partTable{space: space, parts: make([][]partEntry, nIsl)}
	var psc partition.Scratch
	for j := 0; j < nIsl; j++ {
		table.parts[j] = make([]partEntry, space.width[j])
		for w := 0; w < space.width[j]; w++ {
			k := space.min[j] + w
			if be != nil && be.islandInfeasible(j, k) {
				table.parts[j][w] = partEntry{infeas: true}
				continue
			}
			part, err := parter.caches[j].PartitionScratch(k, &psc)
			e := partEntry{part: part, err: err}
			if be != nil && err == nil {
				e.piece, e.cross, e.infeas = be.islandPiece(j, k, part)
			}
			table.parts[j][w] = e
		}
	}

	midFreq := lib.FreqGridHz
	for _, f := range freqs {
		if f > midFreq {
			midFreq = f
		}
	}
	env := &sweepEnv{
		spec:        spec,
		lib:         lib,
		opt:         opt,
		freqs:       freqs,
		midFreq:     midFreq,
		islandCores: islandCores,
		flows:       spec.SortFlowsByBandwidth(),
	}
	if be != nil {
		env.pruner = &incumbentPruner{}
	}

	workers := opt.workers()
	if uint64(workers) > limit {
		workers = int(limit)
	}
	if workers < 1 {
		workers = 1
	}
	block := limit / uint64(workers*16)
	if block < 64 {
		block = 64
	}
	if block > 4096 {
		block = 4096
	}

	specBad := be != nil && be.specInfeasible
	cols := make([]*sweepCollector, workers)
	var cursor atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		col := &sweepCollector{errCap: sw.maxErrors()}
		cols[w] = col
		wg.Add(1)
		go func() {
			defer wg.Done()
			bc := newBuildContext(env)
			counts := make([]int, nIsl)
			parts := make([][]int, nIsl)
			for ctx.Err() == nil {
				hi := cursor.Add(block)
				lo := hi - block
				if lo >= limit {
					return
				}
				if hi > limit {
					hi = limit
				}
				for idx := lo; idx < hi; idx++ {
					mid := space.decode(idx, counts)
					col.explored++
					if specBad {
						col.pruneBound++
						continue // every candidate provably infeasible
					}
					ok := true
					infeas := false
					var swLB float64
					crossLB := 0
					for j := 0; j < nIsl; j++ {
						e := &table.parts[j][counts[j]-space.min[j]]
						if e.infeas {
							infeas = true
							break
						}
						if e.err != nil {
							ok = false
							break
						}
						parts[j] = e.part
						swLB += e.piece
						crossLB += e.cross
					}
					if infeas {
						col.pruneBound++
						continue // a cut proven unable to validate
					}
					if !ok {
						continue // no k-way cut fits: attempted, infeasible
					}
					if pruner := env.pruner; pruner != nil {
						pLB, lLB := be.combine(swLB, crossLB)
						if pruner.dominates(math.MaxUint64, pLB, lLB) {
							col.pruneBound++
							continue
						}
					}
					sweepEval(bc, counts, parts, mid, idx, col)
				}
			}
		}()
	}
	wg.Wait()

	// Merge the per-worker collectors. Every reduction is order-
	// independent: the argmins under a total order, the front by exact
	// dominance after a global sort, the errors by index.
	var bestP, bestL *SweepPoint
	var front []SweepPoint
	type idxErr struct {
		idx uint64
		ce  CandidateError
	}
	var errs []idxErr
	for _, col := range cols {
		res.Explored += col.explored
		res.PruneStats.BoundPruned += int(col.pruneBound)
		res.PruneStats.StagePruned += int(col.pruneStage)
		res.Feasible += col.feasible
		res.ErrorCount += col.errCount
		if col.bestPower != nil && (bestP == nil || sweepBetter(col.bestPower, bestP, powerOf)) {
			bestP = col.bestPower
		}
		if col.bestLatency != nil && (bestL == nil || sweepBetter(col.bestLatency, bestL, latencyOf)) {
			bestL = col.bestLatency
		}
		front = append(front, col.front...)
		for i := range col.errs {
			errs = append(errs, idxErr{col.errIdx[i], col.errs[i]})
		}
	}
	res.PruneStats.Evaluated = int(res.Explored) - res.PruneStats.Pruned()
	res.PruneStats.Feasible = int(res.Feasible)
	if env.pruner != nil {
		// Which candidates the incumbent skipped is schedule-dependent, so
		// the completion count is too; the deterministic headline field is
		// zeroed (the observed count stays in PruneStats) to keep the
		// sweep byte-identical across worker counts.
		res.Feasible = 0
	}
	res.Front = pruneFront(front)
	sort.Slice(errs, func(i, j int) bool { return errs[i].idx < errs[j].idx })
	if len(errs) > sw.maxErrors() {
		errs = errs[:sw.maxErrors()]
	}
	for _, e := range errs {
		res.Errors = append(res.Errors, e.ce)
	}
	res.BestPowerPoint = bestP
	res.BestLatencyPoint = bestL

	if ctx.Err() != nil {
		res.Partial = true
		if ctx.Err() == context.DeadlineExceeded {
			res.StopReason = StopDeadline
		} else {
			res.StopReason = StopCanceled
		}
	} else if res.Truncated {
		res.StopReason = StopTruncated
	} else {
		res.StopReason = StopComplete
	}

	// Rebuild the winning design points in full. The build is the same
	// deterministic function the sweep ran, so it cannot fail now.
	rebuild := func(p *SweepPoint) *DesignPoint {
		if p == nil {
			return nil
		}
		bc := newBuildContext(env)
		counts := make([]int, nIsl)
		parts := make([][]int, nIsl)
		mid := space.decode(p.Index, counts)
		for j := 0; j < nIsl; j++ {
			parts[j] = table.parts[j][counts[j]-space.min[j]].part
		}
		dp, err := buildPoint(bc, counts, parts, mid)
		if err != nil {
			panic(fmt.Sprintf("core: sweep winner %v/mid=%d failed rebuild: %v", counts, mid, err)) //noclint:ignore bannedcall cold-path invariant panic, not a cache key
		}
		return dp
	}
	res.BestPower = rebuild(bestP)
	if bestL != nil && bestP != nil && bestL.Index == bestP.Index {
		res.BestLatency = res.BestPower
	} else {
		res.BestLatency = rebuild(bestL)
	}
	return res, nil
}
