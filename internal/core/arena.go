package core

import (
	"nocvi/internal/floorplan"
	"nocvi/internal/graph"
	"nocvi/internal/model"
	"nocvi/internal/partition"
	"nocvi/internal/route"
	"nocvi/internal/soc"
	"nocvi/internal/topology"
)

// sweepEnv is the read-only context shared by every worker of one
// synthesis sweep: the spec, the library, the step-1/2 outcomes and the
// pre-sorted flow list. Workers never write through it.
type sweepEnv struct {
	spec        *soc.Spec
	lib         *model.Library
	opt         Options
	freqs       []float64
	midFreq     float64
	islandCores [][]soc.CoreID
	flows       []soc.Flow // decreasing-bandwidth order, shared read-only

	// pruner is the shared incumbent bound of the branch-and-bound
	// layer; nil when pruning is off (Options.NoPrune, or a
	// MaxDesignPoints cap in Synthesize). Its atomic slots are the one
	// piece of sweep-wide state workers write through the env.
	pruner *incumbentPruner
}

// buildContext is one worker's reusable build arena: the pooled
// topology under construction, the router (with its subgraph cache and
// pinned Dijkstra scratch) and the floorplanner's scratch buffers, all
// recycled across the candidates the worker evaluates. One buildContext
// must not be used by two goroutines concurrently.
//
// The reset discipline that keeps reuse invisible: the topology is
// Reset before every build and surrendered (bc.top = nil) the moment it
// escapes into a DesignPoint, so published results never alias arena
// storage; the router's Reset re-targets it at the fresh topology with
// semantics identical to route.New; the floorplan scratch only ever
// holds temporaries that die inside one Place call. Every candidate
// therefore observes exactly the state a fresh allocation would give
// it, which is what keeps the sweep bit-identical to the serial,
// arena-free path.
type buildContext struct {
	env *sweepEnv

	top     *topology.Topology // nil until first use or after handoff
	router  *route.Router      // nil until first use
	scratch graph.Scratch      // pinned to router, replaces pool traffic
	fp      floorplan.Scratch
	part    partition.Scratch // worker-owned min-cut buffers for first-touch vecParts resolution

	// pruneIdx is the current candidate's sweep index, set before each
	// evaluation; buildPoint's staged bound check only accepts incumbent
	// witnesses with a strictly smaller index. The zero value disables
	// staged pruning (nothing precedes candidate 0), which is exactly
	// right for fresh contexts such as the sweep winners' rebuild.
	// stagePruned is buildPoint's out-of-band flag that its error was
	// errStagePruned; safeEval transfers it onto the outcome.
	pruneIdx    uint64
	stagePruned bool
}

// newBuildContext creates an empty arena for one worker. Buffers grow
// on first use and stabilize after the first candidate.
func newBuildContext(env *sweepEnv) *buildContext {
	return &buildContext{env: env}
}

// takeTop returns a topology ready for construction: the pooled one
// reset in place, or a fresh allocation when the previous build's
// topology escaped into a design point.
func (bc *buildContext) takeTop() *topology.Topology {
	if bc.top == nil {
		bc.top = topology.New(bc.env.spec, bc.env.lib)
	} else {
		bc.top.Reset()
	}
	return bc.top
}

// takeRouter returns the arena's router re-targeted at top.
func (bc *buildContext) takeRouter(top *topology.Topology) *route.Router {
	if bc.router == nil {
		bc.router = route.New(top, bc.env.opt.Router)
		bc.router.SetScratch(&bc.scratch)
	} else {
		bc.router.Reset(top)
	}
	return bc.router
}
