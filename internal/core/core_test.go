package core

import (
	"math"
	"testing"

	"nocvi/internal/model"
	"nocvi/internal/soc"
)

// miniSoC: 8 cores over 3 islands with realistic-shaped traffic (heavy
// memory flows, light peripheral flows).
func miniSoC() *soc.Spec {
	mk := func(id int, name string, class soc.CoreClass) soc.Core {
		return soc.Core{ID: soc.CoreID(id), Name: name, Class: class,
			AreaMM2: 2, DynPowerW: 0.1, LeakPowerW: 0.02}
	}
	return &soc.Spec{
		Name: "mini8",
		Cores: []soc.Core{
			mk(0, "cpu", soc.ClassCPU), mk(1, "l2", soc.ClassCache),
			mk(2, "dram", soc.ClassMemCtrl), mk(3, "sram", soc.ClassMemory),
			mk(4, "vdec", soc.ClassAccel), mk(5, "disp", soc.ClassAccel),
			mk(6, "usb", soc.ClassIO), mk(7, "uart", soc.ClassPeripheral),
		},
		Flows: []soc.Flow{
			{Src: 0, Dst: 1, BandwidthBps: 1200e6, MaxLatencyCycles: 10},
			{Src: 1, Dst: 0, BandwidthBps: 1200e6, MaxLatencyCycles: 10},
			{Src: 1, Dst: 2, BandwidthBps: 800e6, MaxLatencyCycles: 14},
			{Src: 2, Dst: 1, BandwidthBps: 800e6, MaxLatencyCycles: 14},
			{Src: 4, Dst: 2, BandwidthBps: 400e6, MaxLatencyCycles: 24},
			{Src: 2, Dst: 4, BandwidthBps: 300e6, MaxLatencyCycles: 24},
			{Src: 5, Dst: 3, BandwidthBps: 200e6, MaxLatencyCycles: 30},
			{Src: 4, Dst: 5, BandwidthBps: 150e6, MaxLatencyCycles: 30},
			{Src: 6, Dst: 2, BandwidthBps: 60e6, MaxLatencyCycles: 40},
			{Src: 7, Dst: 0, BandwidthBps: 2e6},
			{Src: 6, Dst: 4, BandwidthBps: 30e6},
		},
		Islands: []soc.Island{
			{ID: 0, Name: "sys", VoltageV: 1.0},
			{ID: 1, Name: "media", VoltageV: 0.9, Shutdownable: true},
			{ID: 2, Name: "io", VoltageV: 1.0, Shutdownable: true},
		},
		IslandOf: []soc.IslandID{0, 0, 0, 0, 1, 1, 2, 2},
	}
}

func TestIslandClocks(t *testing.T) {
	spec := miniSoC()
	lib := model.Default65nm()
	freqs, sizes, err := IslandClocks(spec, lib)
	if err != nil {
		t.Fatal(err)
	}
	// l2 aggregate egress = 1200+800 = 2000 MB/s -> 500 MHz on 32-bit links.
	if freqs[0] != 500e6 {
		t.Fatalf("sys island clock = %g, want 500 MHz", freqs[0])
	}
	// media: vdec egress 400+150, ingress 300 -> 550 MB/s -> 137.5 -> 150 MHz grid.
	if freqs[1] != 150e6 {
		t.Fatalf("media island clock = %g, want 150 MHz", freqs[1])
	}
	// io: usb egress 90 MB/s -> 22.5 -> 25 MHz grid.
	if freqs[2] != 25e6 {
		t.Fatalf("io island clock = %g, want 25 MHz", freqs[2])
	}
	for j, s := range sizes {
		if s < 2 {
			t.Fatalf("island %d max switch size %d too small", j, s)
		}
		if lib.SwitchMaxFreqHz(s) < freqs[j] {
			t.Fatalf("island %d: size %d infeasible at %g", j, s, freqs[j])
		}
	}
	// slower islands admit larger switches
	if !(sizes[2] >= sizes[1] && sizes[1] >= sizes[0]) {
		t.Fatalf("max sizes not antitone in clock: %v for %v", sizes, freqs)
	}
}

func TestSynthesizeProducesValidPoints(t *testing.T) {
	spec := miniSoC()
	res, err := Synthesize(spec, model.Default65nm(), Options{AllowIntermediate: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 || res.Feasible != len(res.Points) {
		t.Fatalf("points=%d feasible=%d", len(res.Points), res.Feasible)
	}
	if res.Explored < res.Feasible {
		t.Fatal("explored < feasible")
	}
	for i := range res.Points {
		dp := &res.Points[i]
		if err := dp.Top.Validate(); err != nil {
			t.Fatalf("point %d invalid: %v", i, err)
		}
		if dp.NoCPower.DynW() <= 0 || dp.MeanLatencyCycles < 4 || dp.NoCAreaMM2 <= 0 {
			t.Fatalf("point %d has implausible metrics: %+v", i, dp.NoCPower)
		}
		// Every core on a switch in its own island (shutdown support).
		for c, isl := range spec.IslandOf {
			sw := dp.Top.SwitchOf[c]
			if dp.Top.Switches[sw].Island != isl {
				t.Fatalf("point %d: core %d hosted outside its island", i, c)
			}
		}
	}
}

func TestSynthesizeSwitchCountSweep(t *testing.T) {
	spec := miniSoC()
	res, err := Synthesize(spec, model.Default65nm(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Without the intermediate island every point has MidSwitches == 0,
	// and the sweep must produce several distinct switch-count vectors.
	seen := map[string]bool{}
	for _, p := range res.Points {
		if p.MidSwitches != 0 {
			t.Fatal("intermediate island used although forbidden")
		}
		key := ""
		for _, c := range p.SwitchCounts {
			key += string(rune('0' + c))
		}
		seen[key] = true
	}
	if len(seen) < 2 {
		t.Fatalf("sweep produced only %d distinct configurations", len(seen))
	}
	// Largest config: one switch per core in each island (4,2,2).
	if _, ok := seen["422"]; !ok {
		t.Fatalf("saturated configuration missing: %v", seen)
	}
}

func TestSynthesizeIntermediateSweep(t *testing.T) {
	spec := miniSoC()
	res, err := Synthesize(spec, model.Default65nm(), Options{
		AllowIntermediate:       true,
		MaxIntermediateSwitches: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	mids := map[int]bool{}
	for _, p := range res.Points {
		mids[p.MidSwitches] = true
		if p.MidSwitches > 2 {
			t.Fatal("mid sweep exceeded cap")
		}
	}
	if !mids[0] || (!mids[1] && !mids[2]) {
		t.Fatalf("mid sweep incomplete: %v", mids)
	}
}

func TestBestSelectors(t *testing.T) {
	spec := miniSoC()
	res, err := Synthesize(spec, model.Default65nm(), Options{AllowIntermediate: true})
	if err != nil {
		t.Fatal(err)
	}
	best := res.Best()
	if best == nil {
		t.Fatal("no best point")
	}
	for i := range res.Points {
		p := &res.Points[i]
		if p.WireViolations < best.WireViolations {
			t.Fatal("Best ignored a point with fewer wire violations")
		}
		if p.WireViolations == best.WireViolations && p.NoCPower.DynW() < best.NoCPower.DynW()-1e-15 {
			t.Fatalf("Best not minimal: %g < %g", p.NoCPower.DynW(), best.NoCPower.DynW())
		}
	}
	bl := res.BestLatency()
	if bl == nil || bl.MeanLatencyCycles > best.MeanLatencyCycles+20 {
		t.Fatal("BestLatency implausible")
	}
}

func TestSynthesizeMaxDesignPoints(t *testing.T) {
	spec := miniSoC()
	res, err := Synthesize(spec, model.Default65nm(), Options{MaxDesignPoints: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("got %d points, want 3", len(res.Points))
	}
}

func TestSynthesizeSingleIslandBaseline(t *testing.T) {
	spec := miniSoC().MergedSingleIsland()
	res, err := Synthesize(spec, model.Default65nm(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	best := res.Best()
	// No island crossings: no FIFOs anywhere.
	if best.NoCPower.FIFODynW != 0 || best.NoCPower.FIFOLeakW != 0 {
		t.Fatal("single-island design has converter power")
	}
	for _, l := range best.Top.Links {
		if l.CrossesIslands {
			t.Fatal("single-island design has crossing links")
		}
	}
}

func TestMultiIslandCostsMoreThanSingle(t *testing.T) {
	lib := model.Default65nm()
	multi, err := Synthesize(miniSoC(), lib, Options{})
	if err != nil {
		t.Fatal(err)
	}
	single, err := Synthesize(miniSoC().MergedSingleIsland(), lib, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mp := multi.Best().NoCPower.DynW()
	sp := single.Best().NoCPower.DynW()
	// The miniSoC keeps heavy flows inside islands (communication-aware
	// assignment), so the multi-island overhead must be modest: within
	// 2x of the single-island NoC, and single-island cannot be wildly
	// more than multi either.
	if mp > sp*2 || sp > mp*2 {
		t.Fatalf("implausible power relation: multi=%g single=%g", mp, sp)
	}
}

func TestSynthesizeValidatesInput(t *testing.T) {
	spec := miniSoC()
	spec.Flows[0].BandwidthBps = -1
	if _, err := Synthesize(spec, model.Default65nm(), Options{}); err == nil {
		t.Fatal("invalid spec accepted")
	}
	lib := model.Default65nm()
	lib.LinkWidthBits = 0
	if _, err := Synthesize(miniSoC(), lib, Options{}); err == nil {
		t.Fatal("invalid library accepted")
	}
}

func TestSynthesizeInfeasibleFrequency(t *testing.T) {
	spec := miniSoC()
	lib := model.Default65nm()
	lib.LinkWidthBits = 1 // 1-bit links: l2 needs 16 GHz, impossible
	_, err := Synthesize(spec, lib, Options{})
	if err == nil {
		t.Fatal("impossible clock accepted")
	}
}

func TestMeanLatencyGrowsWithIslandCount(t *testing.T) {
	lib := model.Default65nm()
	multi, err := Synthesize(miniSoC(), lib, Options{})
	if err != nil {
		t.Fatal(err)
	}
	single, err := Synthesize(miniSoC().MergedSingleIsland(), lib, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if multi.Best().MeanLatencyCycles <= single.Best().MeanLatencyCycles {
		t.Fatalf("island crossings should raise mean latency: multi=%g single=%g",
			multi.Best().MeanLatencyCycles, single.Best().MeanLatencyCycles)
	}
	if math.IsNaN(multi.Best().MeanLatencyCycles) {
		t.Fatal("NaN latency")
	}
}

func TestRefinePlacement(t *testing.T) {
	spec := miniSoC()
	res, err := Synthesize(spec, model.Default65nm(), Options{MaxDesignPoints: 1})
	if err != nil {
		t.Fatal(err)
	}
	dp := res.Best()
	before := dp.NoCPower.DynW()
	if err := dp.RefinePlacement(100); err != nil {
		t.Fatal(err)
	}
	// Shorter traffic-weighted wires can only cut link power; total NoC
	// power must not grow.
	if after := dp.NoCPower.DynW(); after > before*(1+1e-9) {
		t.Fatalf("refinement raised power: %g -> %g", before, after)
	}
	if err := dp.Top.Validate(); err != nil {
		t.Fatalf("refined design invalid: %v", err)
	}
	if dp.Placement.Overlap() > 1e-6 {
		t.Fatal("refined floorplan overlaps")
	}
}

func TestSpectralPartitionOption(t *testing.T) {
	spec := miniSoC()
	res, err := Synthesize(spec, model.Default65nm(), Options{
		SpectralPartition: true,
		AllowIntermediate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	best := res.Best()
	if err := best.Top.Validate(); err != nil {
		t.Fatalf("spectral-partitioned design invalid: %v", err)
	}
	// Both engines must land in the same power ballpark on this SoC.
	fm, err := Synthesize(spec, model.Default65nm(), Options{AllowIntermediate: true})
	if err != nil {
		t.Fatal(err)
	}
	a, b := best.NoCPower.DynW(), fm.Best().NoCPower.DynW()
	if a > b*1.5 || b > a*1.5 {
		t.Fatalf("engines diverge wildly: spectral %g vs FM %g", a, b)
	}
}

func TestAutoVoltage(t *testing.T) {
	spec := miniSoC()
	lib := model.Default65nm()
	plain, err := Synthesize(spec, lib, Options{AllowIntermediate: true})
	if err != nil {
		t.Fatal(err)
	}
	dvs, err := Synthesize(spec, lib, Options{AllowIntermediate: true, AutoVoltage: true})
	if err != nil {
		t.Fatal(err)
	}
	// Slow islands (media at 150 MHz, io at 25 MHz) must run below the
	// nominal supply.
	top := dvs.Best().Top
	for j, v := range top.IslandVoltage {
		want := lib.VoltageForFreq(top.IslandFreqHz[j])
		if math.Abs(v-want) > 1e-12 {
			t.Fatalf("island %d voltage %g, want %g", j, v, want)
		}
	}
	if top.IslandVoltage[2] >= 0.9 {
		t.Fatalf("25 MHz island should run near the minimum supply, got %g", top.IslandVoltage[2])
	}
	// Quadratic scaling: DVS cuts NoC dynamic power.
	if dvs.Best().NoCPower.DynW() >= plain.Best().NoCPower.DynW() {
		t.Fatalf("DVS did not reduce power: %g vs %g",
			dvs.Best().NoCPower.DynW(), plain.Best().NoCPower.DynW())
	}
	if err := top.Validate(); err != nil {
		t.Fatalf("DVS design invalid: %v", err)
	}
}

// countsKey replaced a fmt.Sprint key: it must stay injective — two
// distinct vectors must never encode to the same key, including the
// digit-boundary adversaries that would collide under naive decimal
// concatenation ([1,23] vs [12,3]) and prefix pairs ([7] vs [7,0]).
func TestCountsKeyInjective(t *testing.T) {
	vecs := [][]int{
		{}, {0}, {7}, {7, 0}, {0, 7},
		{1, 23}, {12, 3}, {123}, {1, 2, 3},
		{127}, {128}, {1, 28}, {12, 8},
		{300, 5}, {3, 5}, {30, 5},
	}
	seen := make(map[string][]int)
	for _, v := range vecs {
		k := countsKey(v)
		if prev, ok := seen[k]; ok {
			t.Fatalf("countsKey collision: %v and %v both encode to %q", prev, v, k)
		}
		seen[k] = v
	}
	// Same vector must round-trip to the same key (map memoization
	// depends on it).
	if countsKey([]int{4, 1, 1}) != countsKey([]int{4, 1, 1}) {
		t.Fatal("countsKey is not deterministic")
	}
}
