package core

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"nocvi/internal/model"
)

// withEvalHook installs a test evaluation hook and removes it when the
// test ends. Tests using it must not run in parallel with each other.
func withEvalHook(t *testing.T, hook func(counts []int, mid int)) {
	t.Helper()
	testHookEvalStart = hook
	t.Cleanup(func() { testHookEvalStart = nil })
}

// TestPanicRecoveryIdenticalAcrossWorkers injects a panic into every
// mid=1 candidate and checks the robustness contract: the sweep
// neither dies nor deadlocks, the panicked candidates land on
// Result.Errors with normalized stacks, and the full Result — points
// and errors — is identical at workers=1 and workers=8. Run under
// -race this also proves the recovery path is goroutine-clean.
func TestPanicRecoveryIdenticalAcrossWorkers(t *testing.T) {
	spec := miniSoC()
	lib := model.Default65nm()
	opt := Options{AllowIntermediate: true, MaxIntermediateSwitches: 2}

	clean, err := Synthesize(spec, lib, opt)
	if err != nil {
		t.Fatal(err)
	}

	withEvalHook(t, func(counts []int, mid int) {
		if mid == 1 {
			panic("injected: candidate evaluation blew up")
		}
	})

	before := runtime.NumGoroutine()
	results := make([]*Result, 2)
	for i, workers := range []int{1, 8} {
		opt.Workers = workers
		res, err := Synthesize(spec, lib, opt)
		if err != nil {
			t.Fatalf("workers=%d: sweep died on an injected panic: %v", workers, err)
		}
		results[i] = res
	}
	serial, parallel := results[0], results[1]

	if len(serial.Errors) == 0 {
		t.Fatal("no CandidateError recorded for the injected panics")
	}
	if !reflect.DeepEqual(serial.Errors, parallel.Errors) {
		t.Fatalf("Errors differ across worker counts:\n%v\nvs\n%v", serial.Errors, parallel.Errors)
	}
	samePoints(t, "panic-injected", serial, parallel)

	for i := range serial.Errors {
		e := &serial.Errors[i]
		if e.MidSwitches != 1 {
			t.Fatalf("error recorded for mid=%d, panics were injected at mid=1", e.MidSwitches)
		}
		if e.Panic != "injected: candidate evaluation blew up" {
			t.Fatalf("panic value mangled: %q", e.Panic)
		}
		if !strings.Contains(e.Stack, "TestPanicRecoveryIdenticalAcrossWorkers") {
			t.Fatalf("normalized stack lost the panic site:\n%s", e.Stack)
		}
		if strings.Contains(e.Stack, "goroutine ") || strings.Contains(e.Stack, "+0x") {
			t.Fatalf("stack not normalized:\n%s", e.Stack)
		}
		if err := e.Error(); !strings.Contains(err, "mid=1") {
			t.Fatalf("Error() lost the candidate: %s", err)
		}
	}

	// The surviving points are exactly the clean sweep minus the
	// panicked (mid=1) candidates, and Explored still covers everything.
	if serial.Explored != clean.Explored {
		t.Fatalf("panics dropped candidates from Explored: %d vs %d", serial.Explored, clean.Explored)
	}
	var want []DesignPoint
	for _, p := range clean.Points {
		if p.MidSwitches != 1 {
			want = append(want, p)
		}
	}
	if len(serial.Points) != len(want) {
		t.Fatalf("%d surviving points, want %d", len(serial.Points), len(want))
	}

	// No goroutine may outlive the sweeps.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestArenaDroppedAfterPanic checks that safeEval poisons the worker's
// arena: a candidate evaluated right after a panic must see fresh
// state, not the half-mutated topology the panic abandoned.
func TestArenaDroppedAfterPanic(t *testing.T) {
	spec := miniSoC()
	lib := model.Default65nm()
	opt := Options{AllowIntermediate: true, MaxIntermediateSwitches: 2}

	clean, err := Synthesize(spec, lib, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Panic mid-build (after the arena's topology has been dirtied) on
	// the first candidate only; every later candidate reuses the arena.
	var fired atomic.Bool
	withEvalHook(t, func(counts []int, mid int) {
		if fired.CompareAndSwap(false, true) {
			panic("injected: first candidate")
		}
	})
	opt.Workers = 1
	res, err := Synthesize(spec, lib, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 1 {
		t.Fatalf("want 1 candidate error, got %d", len(res.Errors))
	}
	// Expected points: the clean sweep's, minus the panicked candidate's
	// point if it had one.
	panicked := &res.Errors[0]
	var want []DesignPoint
	for _, p := range clean.Points {
		if reflect.DeepEqual(p.SwitchCounts, panicked.SwitchCounts) && p.MidSwitches == panicked.MidSwitches {
			continue
		}
		want = append(want, p)
	}
	if len(res.Points) != len(want) {
		t.Fatalf("later candidates corrupted: %d points, want %d", len(res.Points), len(want))
	}
	for i := range want {
		p, q := &res.Points[i], &want[i]
		if p.NoCPower != q.NoCPower || p.MeanLatencyCycles != q.MeanLatencyCycles {
			t.Fatalf("point %d differs from clean sweep: arena state leaked across the panic", i)
		}
	}
}

// TestTimeoutPartialPrefix cancels a parallel sweep after a fixed
// number of candidate evaluations and checks the degradation contract:
// the result is non-empty, marked Partial/StopCanceled, and equal to a
// prefix of the uninterrupted serial sweep.
func TestTimeoutPartialPrefix(t *testing.T) {
	spec := miniSoC()
	lib := model.Default65nm()
	opt := Options{AllowIntermediate: true, MaxIntermediateSwitches: 2}

	opt.Workers = 1
	full, err := Synthesize(spec, lib, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Points) < 2 {
		t.Fatalf("need a sweep with >=2 points to truncate, got %d", len(full.Points))
	}

	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		var evals atomic.Int64
		withEvalHook(t, func(counts []int, mid int) {
			// Cancel once enough candidates are in flight; those already
			// claimed still finish, keeping the evaluated set a prefix.
			if evals.Add(1) == 4 {
				cancel()
			}
		})
		partial, err := SynthesizeContext(ctx, spec, lib, Options{
			AllowIntermediate: true, MaxIntermediateSwitches: 2, Workers: workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: canceled sweep errored: %v", workers, err)
		}
		if !partial.Partial || partial.StopReason != StopCanceled {
			t.Fatalf("workers=%d: want Partial/%s, got Partial=%v StopReason=%q",
				workers, StopCanceled, partial.Partial, partial.StopReason)
		}
		if partial.Explored == 0 || partial.Explored >= full.Explored {
			t.Fatalf("workers=%d: Explored=%d not a strict non-empty prefix of %d",
				workers, partial.Explored, full.Explored)
		}
		if len(partial.Points) == 0 {
			t.Fatalf("workers=%d: partial result lost the points already found", workers)
		}
		// Points must be exactly the first len(partial.Points) of the
		// serial sweep — same candidates, same metrics, same order.
		for i := range partial.Points {
			p, q := &partial.Points[i], &full.Points[i]
			if !reflect.DeepEqual(p.SwitchCounts, q.SwitchCounts) || p.MidSwitches != q.MidSwitches ||
				p.NoCPower != q.NoCPower || p.MeanLatencyCycles != q.MeanLatencyCycles {
				t.Fatalf("workers=%d: partial point %d is not the serial sweep's point %d", workers, i, i)
			}
		}
	}
}

// TestDeadlineStopReason distinguishes the two context stop reasons.
func TestDeadlineStopReason(t *testing.T) {
	spec := miniSoC()
	lib := model.Default65nm()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res, err := SynthesizeContext(ctx, spec, lib, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial || res.StopReason != StopDeadline {
		t.Fatalf("want Partial/%s, got Partial=%v StopReason=%q", StopDeadline, res.Partial, res.StopReason)
	}
}

// TestRelaxLadderRecoversInfeasibleSpec drives the degradation ladder
// end to end. Flow 0->1 is intra-island; its single-switch route is the
// lowest latency any candidate can achieve, so a constraint 5% below
// that latency is infeasible for every candidate — until the ladder's
// latency-slack rung (x1.1) lifts it back over the floor.
func TestRelaxLadderRecoversInfeasibleSpec(t *testing.T) {
	lib := model.Default65nm()
	base := Options{AllowIntermediate: true, MaxIntermediateSwitches: 2}

	full, err := Synthesize(miniSoC(), lib, base)
	if err != nil {
		t.Fatal(err)
	}
	// The latency floor for flow 0->1: its best committed route over the
	// whole sweep (the single-switch candidates reach the true minimum).
	floor := 0.0
	for i := range full.Points {
		top := full.Points[i].Top
		for ri := range top.Routes {
			r := &top.Routes[ri]
			if r.Flow.Src == 0 && r.Flow.Dst == 1 {
				if lat := top.ZeroLoadLatencyCycles(r); floor == 0 || lat < floor {
					floor = lat
				}
			}
		}
	}
	if floor <= 0 {
		t.Fatal("no route found for flow 0->1")
	}

	tight := miniSoC()
	for i := range tight.Flows {
		if tight.Flows[i].Src == 0 && tight.Flows[i].Dst == 1 {
			tight.Flows[i].MaxLatencyCycles = floor * 0.95
		}
	}

	// Unrelaxed: infeasible, and the error is errors.Is-matchable.
	if _, err := Synthesize(tight, lib, base); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("tightened spec should be infeasible, got %v", err)
	}

	relaxOpt := base
	relaxOpt.Relax = true
	res, err := Synthesize(tight, lib, relaxOpt)
	if err != nil {
		t.Fatalf("degradation ladder failed to recover the spec: %v", err)
	}
	if len(res.Points) == 0 {
		t.Fatal("relaxed result has no points")
	}
	want := []string{RelaxIntermediate, RelaxLatency}
	if !reflect.DeepEqual(res.Relaxations, want) {
		t.Fatalf("Relaxations = %v, want %v", res.Relaxations, want)
	}
	for i := range res.Points {
		if !reflect.DeepEqual(res.Points[i].Relaxations, want) {
			t.Fatalf("point %d not stamped with its relaxations: %v", i, res.Points[i].Relaxations)
		}
	}

	// A feasible spec with Relax on must synthesize unrelaxed and
	// unstamped — the ladder only runs on failure.
	plain, err := Synthesize(miniSoC(), lib, relaxOpt)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Relaxations != nil {
		t.Fatalf("feasible spec was relaxed: %v", plain.Relaxations)
	}
	samePoints(t, "relax-on-feasible", full, plain)
}

// TestRelaxLadderExhausts pins the failure mode: a spec no rung can
// repair returns the original infeasibility, errors.Is-matchable.
func TestRelaxLadderExhausts(t *testing.T) {
	spec := miniSoC()
	for i := range spec.Flows {
		spec.Flows[i].MaxLatencyCycles = 0.001 // below any possible route
	}
	opt := Options{AllowIntermediate: true, MaxIntermediateSwitches: 2, Relax: true}
	_, err := Synthesize(spec, model.Default65nm(), opt)
	if err == nil {
		t.Fatal("impossible spec synthesized")
	}
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("exhausted ladder lost the ErrInfeasible mark: %v", err)
	}
	if !strings.Contains(err.Error(), "ladder exhausted") {
		t.Fatalf("error does not say the ladder ran: %v", err)
	}
}

// TestRelaxRungMechanics unit-tests each rung's transformation.
func TestRelaxRungMechanics(t *testing.T) {
	spec := miniSoC()
	lib := model.Default65nm()
	opt := Options{}

	s1, l1, o1 := relaxIntermediate(spec, lib, opt)
	if !o1.AllowIntermediate || o1.MaxIntermediateSwitches != 4 {
		t.Fatalf("intermediate rung: allow=%v max=%d (island max is 4 cores)",
			o1.AllowIntermediate, o1.MaxIntermediateSwitches)
	}
	if s1 != spec || l1 != lib {
		t.Fatal("intermediate rung must not touch spec or library")
	}
	// Applying it again (already on) doubles the sweep range.
	_, _, o1b := relaxIntermediate(spec, lib, o1)
	if o1b.MaxIntermediateSwitches != 8 {
		t.Fatalf("second intermediate rung: max=%d, want 8", o1b.MaxIntermediateSwitches)
	}

	s2, l2, _ := relaxLatency(spec, lib, opt)
	if s2 == spec {
		t.Fatal("latency rung must clone the spec")
	}
	if got, want := s2.Flows[0].MaxLatencyCycles, spec.Flows[0].MaxLatencyCycles*relaxLatencyFactor; got != want {
		t.Fatalf("latency rung: %g, want %g", got, want)
	}
	if spec.Flows[0].MaxLatencyCycles != 10 {
		t.Fatal("latency rung mutated the caller's spec")
	}
	if l2 != lib {
		t.Fatal("latency rung must not touch the library")
	}

	_, l3, _ := relaxSwitchSize(spec, lib, opt)
	if l3 == lib {
		t.Fatal("switch-size rung must clone the library")
	}
	if got, want := l3.MaxFreqA, lib.MaxFreqA*relaxFreqAFactor; got != want {
		t.Fatalf("switch-size rung: MaxFreqA %g, want %g", got, want)
	}
	if l3.MaxSwitchSize(1e9) < lib.MaxSwitchSize(1e9) {
		t.Fatal("switch-size rung shrank the max switch size")
	}
}

// TestNormalizeStack pins the normalization rules on a synthetic dump.
func TestNormalizeStack(t *testing.T) {
	raw := []byte(`goroutine 42 [running]:
runtime/debug.Stack()
	/usr/local/go/src/runtime/debug/stack.go:26 +0x5e
nocvi/internal/core.safeEval.func1()
	/root/repo/internal/core/core.go:500 +0x88
panic({0x5a3c80?, 0x6f1d30?})
	/usr/local/go/src/runtime/panic.go:792 +0x132
nocvi/internal/core.buildPoint(0xc0001b2000, {0xc00001c0a8, 0x3, 0x3}, ...)
	/root/repo/internal/core/core.go:700 +0x1a4
nocvi/internal/core.safeEval(0xc0001b2000, {0xc000112e10?, 0x0?}, 0xc000127c98)
	/root/repo/internal/core/core.go:520 +0xde
nocvi/internal/core.synthesizeParallel.func1(0x0)
	/root/repo/internal/core/core.go:610 +0x10c
created by nocvi/internal/core.synthesizeParallel in goroutine 1
	/root/repo/internal/core/core.go:600 +0x4f3
`)
	got := normalizeStack(raw)
	want := "nocvi/internal/core.buildPoint\n\t/root/repo/internal/core/core.go:700\n"
	if got != want {
		t.Fatalf("normalizeStack:\n%q\nwant\n%q", got, want)
	}
}
