package core

import (
	"testing"

	"nocvi/internal/bench"
	"nocvi/internal/floorplan"
	"nocvi/internal/model"
	"nocvi/internal/pareto"
	"nocvi/internal/soc"
	"nocvi/internal/specgen"
)

// boundsOpt is the option shape the bounds tests sweep: intermediate
// switches on, with and without SkipAnnotate (the mode that activates
// the exact link pricing and the link-term bounds).
func boundsOpt(skipAnnotate bool) Options {
	return Options{
		AllowIntermediate:       true,
		MaxIntermediateSwitches: 2,
		Floorplan:               floorplan.Options{SkipAnnotate: skipAnnotate},
	}
}

// TestBoundsAdmissibility is the property test behind the whole layer:
// for every candidate of a sweep, the pre-evaluation lower bounds never
// exceed the exact metrics of the design point the candidate builds,
// and a candidate the infeasibility proofs skip never builds at all.
// Fuzzed over specgen specs in both link-pricing modes.
func TestBoundsAdmissibility(t *testing.T) {
	lib := model.Default65nm()
	for seed := int64(1); seed <= 6; seed++ {
		spec := specgen.Random(seed, specgen.Options{MaxCores: 18, MaxIslands: 4})
		for _, sk := range []bool{false, true} {
			opt := boundsOpt(sk)
			env, parter, cands := newTestSweep(t, spec, lib, opt)
			parter.bounds = newBoundsEnv(spec, lib, opt, env.freqs, env.islandCores)
			bc := newBuildContext(env)
			built := 0
			for _, c := range cands {
				parter.resolve(c.vec, &bc.part)
				if c.vec.err != nil {
					continue
				}
				dp, err := buildPoint(bc, c.vec.counts, c.vec.parts, c.mid)
				if err != nil {
					continue
				}
				built++
				if c.vec.skip {
					t.Fatalf("seed %d sk=%v: vector %v proved infeasible but built a valid point",
						seed, sk, c.vec.counts)
				}
				if p := dp.NoCPower.DynW(); c.vec.powerLB > p {
					t.Errorf("seed %d sk=%v %v mid=%d: powerLB %.9g > exact %.9g",
						seed, sk, c.vec.counts, c.mid, c.vec.powerLB, p)
				}
				if l := dp.MeanLatencyCycles; c.vec.latLB > l {
					t.Errorf("seed %d sk=%v %v mid=%d: latencyLB %.9g > exact %.9g",
						seed, sk, c.vec.counts, c.mid, c.vec.latLB, l)
				}
			}
			if built == 0 {
				t.Fatalf("seed %d sk=%v: no candidate built — admissibility not exercised", seed, sk)
			}
		}
	}
}

// frontValues projects a result's Pareto-optimal (power, latency) pairs.
// Indices are dropped deliberately: pruning removes dominated interior
// points, so positions shift while the front's values must not.
func frontValues(res *Result) []pareto.Point {
	pts := make([]pareto.Point, len(res.Points))
	for i := range res.Points {
		pts[i] = pareto.Point{Index: i, X: res.Points[i].NoCPower.DynW(), Y: res.Points[i].MeanLatencyCycles}
	}
	front := pareto.Front(pts)
	for i := range front {
		front[i].Index = 0
	}
	return front
}

// TestSynthesizeOracleIdentity: the branch-and-bound sweep returns the
// same winners as the exhaustive one — argmin-power and argmin-latency
// points bit-identical, Pareto-front values bit-identical — on the
// bench suite and specgen specs, in both link-pricing modes, at every
// worker count; and the pruned result itself is identical across
// worker counts with the (schedule-dependent) PruneStats summing to
// the three-way Explored split.
func TestSynthesizeOracleIdentity(t *testing.T) {
	lib := model.Default65nm()
	specs := []*soc.Spec{
		mustIslanded(t, "d16_industrial"),
		mustIslanded(t, "d26_media"),
		mustIslanded(t, "d48_network"),
		specgen.Random(5, specgen.Options{MaxCores: 24, MaxIslands: 5}),
		specgen.Random(9, specgen.Options{MaxCores: 16, MaxIslands: 3}),
	}
	for _, spec := range specs {
		for _, sk := range []bool{false, true} {
			optNP := boundsOpt(sk)
			optNP.NoPrune = true
			ref, err := Synthesize(spec, lib, optNP)
			if err != nil {
				t.Fatalf("%s sk=%v: oracle: %v", spec.Name, sk, err)
			}
			refFront := frontValues(ref)
			var first *Result
			for _, workers := range []int{1, 4, 13} {
				opt := boundsOpt(sk)
				opt.Workers = workers
				res, err := Synthesize(spec, lib, opt)
				if err != nil {
					t.Fatalf("%s sk=%v w=%d: %v", spec.Name, sk, workers, err)
				}
				label := spec.Name + func() string {
					if sk {
						return " skipannotate"
					}
					return ""
				}()
				assertSameWinners(t, label, workers, ref, refFront, res)
				st := res.PruneStats
				if got := st.BoundPruned + st.StagePruned + st.Evaluated; got != int(res.Explored) {
					t.Errorf("%s w=%d: split %d+%d+%d != explored %d",
						label, workers, st.BoundPruned, st.StagePruned, st.Evaluated, res.Explored)
				}
				if first == nil {
					first = res
					continue
				}
				assertSamePoints(t, label, workers, first, res)
			}
		}
	}
}

func mustIslanded(t *testing.T, name string) *soc.Spec {
	t.Helper()
	spec, err := bench.Islanded(name)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// assertSameWinners checks the pruned result agrees with the oracle on
// everything pruning promises to preserve: the argmin selections (full
// power breakdown, latency, configuration) and the Pareto-front values.
func assertSameWinners(t *testing.T, label string, workers int, ref *Result, refFront []pareto.Point, res *Result) {
	t.Helper()
	if res.Explored != ref.Explored {
		t.Errorf("%s w=%d: explored %d vs oracle %d", label, workers, res.Explored, ref.Explored)
	}
	for _, sel := range []struct {
		name string
		pick func(*Result) *DesignPoint
	}{
		{"best-power", (*Result).Best},
		{"best-latency", (*Result).BestLatency},
	} {
		a, b := sel.pick(res), sel.pick(ref)
		if (a == nil) != (b == nil) {
			t.Fatalf("%s w=%d %s: nil mismatch", label, workers, sel.name)
		}
		if a == nil {
			continue
		}
		if a.NoCPower != b.NoCPower || a.MeanLatencyCycles != b.MeanLatencyCycles ||
			a.MidSwitches != b.MidSwitches || !equalInts(a.SwitchCounts, b.SwitchCounts) {
			t.Errorf("%s w=%d %s: pruned winner differs from oracle", label, workers, sel.name)
		}
	}
	front := frontValues(res)
	if len(front) != len(refFront) {
		t.Fatalf("%s w=%d: front size %d vs oracle %d", label, workers, len(front), len(refFront))
	}
	for i := range front {
		if front[i].X != refFront[i].X || front[i].Y != refFront[i].Y {
			t.Errorf("%s w=%d: front[%d] (%.9g,%.9g) vs oracle (%.9g,%.9g)",
				label, workers, i, front[i].X, front[i].Y, refFront[i].X, refFront[i].Y)
		}
	}
}

// assertSamePoints checks two pruned runs at different worker counts
// produced the identical canonical result — same kept points in the
// same order with the same metrics. PruneStats is exempt by contract
// (which worker pruned a candidate cheaply is schedule-dependent).
func assertSamePoints(t *testing.T, label string, workers int, a, b *Result) {
	t.Helper()
	if a.Explored != b.Explored || a.Feasible != b.Feasible {
		t.Fatalf("%s w=%d: accounting differs across workers", label, workers)
	}
	if len(a.Points) != len(b.Points) {
		t.Fatalf("%s w=%d: %d vs %d kept points", label, workers, len(a.Points), len(b.Points))
	}
	for i := range a.Points {
		p, q := &a.Points[i], &b.Points[i]
		if p.NoCPower != q.NoCPower || p.MeanLatencyCycles != q.MeanLatencyCycles ||
			p.NoCAreaMM2 != q.NoCAreaMM2 || p.WireViolations != q.WireViolations ||
			p.MidSwitches != q.MidSwitches || !equalInts(p.SwitchCounts, q.SwitchCounts) {
			t.Fatalf("%s w=%d: point %d differs across workers", label, workers, i)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
