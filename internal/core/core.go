// Package core implements the paper's contribution: Algorithm 1, the
// custom NoC topology synthesis flow that supports shutdown of voltage
// islands.
//
// The flow, per design point:
//
//  1. determine the NoC clock of every island from the heaviest NI link
//     it must sustain, and from it the maximum feasible switch size
//     (max_sw_size_j) — bigger crossbars cannot meet higher clocks;
//  2. derive the minimum switch count per island;
//  3. sweep the switch count of every island from that minimum up to one
//     switch per core, partitioning each island's VI communication graph
//     (VCG) with balanced min-cut so heavily-communicating cores share a
//     switch;
//  4. sweep the number of indirect switches in the optional intermediate
//     NoC island (never shut down);
//  5. route every flow in decreasing bandwidth order over least-cost
//     paths that only use switches in the source island, the destination
//     island, or the intermediate island — the discipline that makes
//     island shutdown safe by construction;
//  6. floorplan valid points, compute wire lengths and power, and save
//     the point for Pareto selection.
package core

import (
	"fmt"
	"math"

	"nocvi/internal/deadlock"
	"nocvi/internal/floorplan"
	"nocvi/internal/model"
	"nocvi/internal/partition"
	"nocvi/internal/power"
	"nocvi/internal/route"
	"nocvi/internal/soc"
	"nocvi/internal/topology"
	"nocvi/internal/vcg"
)

// Options configures the synthesis sweep.
type Options struct {
	// Alpha is the VCG bandwidth-vs-latency weight of Definition 1.
	// Zero selects vcg.DefaultAlpha.
	Alpha float64

	// AllowIntermediate permits creating the intermediate NoC island
	// ("we take the availability of power and ground lines for the
	// intermediate VI as an input").
	AllowIntermediate bool

	// MaxIntermediateSwitches caps the indirect-switch sweep; zero
	// derives it from the largest island.
	MaxIntermediateSwitches int

	// IntermediateVoltage supplies the NoC island; zero selects 1.0 V.
	IntermediateVoltage float64

	// MaxDesignPoints stops the sweep after this many valid points
	// (0 = exhaustive).
	MaxDesignPoints int

	// Router and Floorplan pass through to the respective stages.
	Router    route.Options
	Floorplan floorplan.Options

	// Partition passes through to the min-cut partitioner.
	Partition partition.Options

	// SpectralPartition selects recursive spectral bisection instead of
	// the Fiduccia–Mattheyses engine for the core-to-switch min-cut
	// (Algorithm 1 step 11).
	SpectralPartition bool

	// AutoVoltage scales each island's NoC supply down to the lowest
	// voltage that meets its clock (model.VoltageForFreq) instead of
	// using the spec island's nominal supply — the voltage-island
	// benefit applied to the NoC domains themselves.
	AutoVoltage bool
}

func (o Options) alpha() float64 {
	if o.Alpha == 0 {
		return vcg.DefaultAlpha
	}
	return o.Alpha
}

func (o Options) midVoltage() float64 {
	if o.IntermediateVoltage <= 0 {
		return 1.0
	}
	return o.IntermediateVoltage
}

// DesignPoint is one valid synthesized design.
type DesignPoint struct {
	Top       *topology.Topology
	Placement *floorplan.Placement

	// SwitchCounts is the direct switch count per island; MidSwitches
	// the indirect count in the intermediate NoC island.
	SwitchCounts []int
	MidSwitches  int

	// NoCPower is the breakdown after floorplanning (link lengths set).
	NoCPower power.Breakdown

	// MeanLatencyCycles is the average zero-load latency over all flows
	// (Fig. 3 metric).
	MeanLatencyCycles float64

	// NoCAreaMM2 is the silicon cost of the network.
	NoCAreaMM2 float64

	// WireViolations counts links exceeding the single-cycle wire
	// budget after placement.
	WireViolations int
}

// Result is the outcome of a synthesis run.
type Result struct {
	Spec *soc.Spec

	// IslandFreqHz, MaxSwitchSize and MinSwitches record step 1-2
	// outcomes per island (spec islands only).
	IslandFreqHz  []float64
	MaxSwitchSize []int
	MinSwitches   []int

	// Points holds every valid design point found.
	Points []DesignPoint

	// Explored counts attempted (switch-count, mid-count) combinations;
	// Feasible counts those that routed successfully.
	Explored, Feasible int
}

// Synthesize runs Algorithm 1 on the spec.
func Synthesize(spec *soc.Spec, lib *model.Library, opt Options) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := lib.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	res := &Result{Spec: spec}

	// Step 1: island NoC clocks and max switch sizes.
	freqs, maxSizes, err := IslandClocks(spec, lib)
	if err != nil {
		return nil, err
	}
	res.IslandFreqHz = freqs
	res.MaxSwitchSize = maxSizes

	// Step 2: minimum switch count per island. A direct switch must
	// keep one port free for inter-switch links, hence the -1.
	nIsl := len(spec.Islands)
	res.MinSwitches = make([]int, nIsl)
	islandCores := make([][]soc.CoreID, nIsl)
	for j := 0; j < nIsl; j++ {
		islandCores[j] = spec.CoresIn(soc.IslandID(j))
		n := len(islandCores[j])
		usable := maxSizes[j] - 1
		if usable < 1 {
			return nil, fmt.Errorf("core: island %d needs %.0f MHz, too fast for any usable switch",
				j, freqs[j]/1e6)
		}
		res.MinSwitches[j] = (n + usable - 1) / usable
		if res.MinSwitches[j] < 1 {
			res.MinSwitches[j] = 1
		}
	}

	// Build per-island VCGs once.
	vcgs, err := vcg.BuildAll(spec, opt.alpha())
	if err != nil {
		return nil, err
	}

	maxCores := 0
	for j := range islandCores {
		if len(islandCores[j]) > maxCores {
			maxCores = len(islandCores[j])
		}
	}
	maxMid := opt.MaxIntermediateSwitches
	if maxMid <= 0 {
		maxMid = maxCores
	}
	if !opt.AllowIntermediate {
		maxMid = 0
	}

	midFreq := lib.FreqGridHz
	for _, f := range freqs {
		if f > midFreq {
			midFreq = f
		}
	}

	seen := make(map[string]bool)

	// Steps 4-17: sweep switch counts and intermediate switches.
	for i := 0; i <= maxCores; i++ {
		counts := make([]int, nIsl)
		saturated := true
		for j := 0; j < nIsl; j++ {
			k := res.MinSwitches[j] + i
			if k >= len(islandCores[j]) {
				k = len(islandCores[j])
			} else {
				saturated = false
			}
			counts[j] = k
		}
		key := fmt.Sprint(counts)
		if !seen[key] {
			seen[key] = true
			// Step 11: min-cut partition every island's VCG.
			parts, perr := partitionIslands(vcgs, counts, maxSizes, opt)
			if perr == nil {
				for m := 0; m <= maxMid; m++ {
					res.Explored++
					dp, derr := buildPoint(spec, lib, freqs, counts, parts, m, midFreq, opt)
					if derr != nil {
						continue
					}
					res.Feasible++
					res.Points = append(res.Points, *dp)
					if opt.MaxDesignPoints > 0 && len(res.Points) >= opt.MaxDesignPoints {
						return res, nil
					}
				}
			}
		}
		if saturated {
			break
		}
	}
	if len(res.Points) == 0 {
		return res, fmt.Errorf("core: no valid design point for %q (explored %d)", spec.Name, res.Explored)
	}
	return res, nil
}

// IslandClocks implements step 1: the NoC clock of each island is fixed
// by the heaviest aggregate NI bandwidth of any core in the island (the
// NI<->switch link must carry all of the core's traffic), quantized to
// the library clock grid; the max switch size follows from the clock.
func IslandClocks(spec *soc.Spec, lib *model.Library) (freqs []float64, maxSizes []int, err error) {
	egress, ingress := spec.AggregateCoreBandwidth()
	nIsl := len(spec.Islands)
	freqs = make([]float64, nIsl)
	maxSizes = make([]int, nIsl)
	for j := 0; j < nIsl; j++ {
		var peak float64
		for _, c := range spec.CoresIn(soc.IslandID(j)) {
			peak = math.Max(peak, math.Max(egress[c], ingress[c]))
		}
		freqs[j] = lib.MinFreqForBandwidth(peak)
		maxSizes[j] = lib.MaxSwitchSize(freqs[j])
		if maxSizes[j] == 0 {
			return nil, nil, fmt.Errorf(
				"core: island %d requires %.0f MHz which no switch meets; widen links", j, freqs[j]/1e6)
		}
		if maxSizes[j] > len(spec.Cores)+nIsl+8 {
			// Unbounded in practice; clamp for sizing arithmetic.
			maxSizes[j] = len(spec.Cores) + nIsl + 8
		}
	}
	return freqs, maxSizes, nil
}

// partitionIslands runs min-cut partitioning of every island VCG into
// the requested switch counts.
func partitionIslands(vcgs []*vcg.VCG, counts, maxSizes []int, opt Options) ([][]int, error) {
	parts := make([][]int, len(vcgs))
	for j, v := range vcgs {
		pOpt := opt.Partition
		cap := maxSizes[j] - 1
		if pOpt.MaxPartSize == 0 || cap < pOpt.MaxPartSize {
			pOpt.MaxPartSize = cap
		}
		kway := partition.KWay
		if opt.SpectralPartition {
			kway = partition.SpectralKWay
		}
		p, err := kway(v.Undirected(), counts[j], pOpt)
		if err != nil {
			return nil, err
		}
		parts[j] = partition.Canonical(p, counts[j])
	}
	return parts, nil
}

// buildPoint constructs, routes, floorplans and costs one candidate
// design. An error means the point is infeasible.
func buildPoint(spec *soc.Spec, lib *model.Library, freqs []float64,
	counts []int, parts [][]int, mid int, midFreq float64, opt Options) (*DesignPoint, error) {

	top := topology.New(spec, lib)
	for j, f := range freqs {
		top.SetIslandFreq(soc.IslandID(j), f)
		if opt.AutoVoltage {
			top.SetIslandVoltage(soc.IslandID(j), lib.VoltageForFreq(f))
		}
	}
	// Direct switches per island, one per partition.
	swID := make([][]topology.SwitchID, len(counts))
	for j, k := range counts {
		swID[j] = make([]topology.SwitchID, k)
		for p := 0; p < k; p++ {
			swID[j][p] = top.AddSwitch(soc.IslandID(j), false)
		}
	}
	for j := range counts {
		cores := spec.CoresIn(soc.IslandID(j))
		for i, c := range cores {
			if err := top.AttachCore(c, swID[j][parts[j][i]]); err != nil {
				return nil, err
			}
		}
	}
	if mid > 0 {
		midV := opt.midVoltage()
		if opt.AutoVoltage {
			midV = lib.VoltageForFreq(midFreq)
		}
		ni := top.AddNoCIsland(midFreq, midV)
		for p := 0; p < mid; p++ {
			top.AddSwitch(ni, true)
		}
	}

	// Step 15: route flows in bandwidth order.
	r := route.New(top, opt.Router)
	if err := r.RouteAll(); err != nil {
		return nil, err
	}
	// A design point whose routes could deadlock is invalid; the island
	// discipline makes this rare, but it is verified, not assumed.
	if err := deadlock.Check(top); err != nil {
		return nil, err
	}

	// Floorplan, then validate with real wire lengths.
	pl, err := floorplan.Place(top, opt.Floorplan)
	if err != nil {
		return nil, err
	}
	if err := top.Validate(); err != nil {
		return nil, err
	}

	dp := &DesignPoint{
		Top:               top,
		Placement:         pl,
		SwitchCounts:      append([]int(nil), counts...),
		MidSwitches:       mid,
		NoCPower:          power.NoC(top),
		MeanLatencyCycles: top.MeanZeroLoadLatency(),
		NoCAreaMM2:        power.NoCAreaMM2(top),
		WireViolations:    len(floorplan.WireDelayViolations(top, pl)),
	}
	return dp, nil
}

// Best returns the design point with the lowest NoC dynamic power,
// preferring points without wire-delay violations. Nil when empty.
func (r *Result) Best() *DesignPoint {
	return r.argmin(func(d *DesignPoint) float64 { return d.NoCPower.DynW() })
}

// BestLatency returns the design point with the lowest mean zero-load
// latency, preferring points without wire-delay violations.
func (r *Result) BestLatency() *DesignPoint {
	return r.argmin(func(d *DesignPoint) float64 { return d.MeanLatencyCycles })
}

func (r *Result) argmin(metric func(*DesignPoint) float64) *DesignPoint {
	var best *DesignPoint
	bestViol := math.MaxInt32
	bestVal := math.Inf(1)
	for i := range r.Points {
		d := &r.Points[i]
		v := metric(d)
		if d.WireViolations < bestViol || (d.WireViolations == bestViol && v < bestVal) {
			best, bestViol, bestVal = d, d.WireViolations, v
		}
	}
	return best
}

// RefinePlacement re-floorplans the design point with the annealing
// placement optimizer (island orders that shorten traffic-weighted
// wires), then refreshes the wire-dependent metrics: link lengths, NoC
// power and wire-delay violations. iters <= 0 selects the optimizer's
// default budget.
func (d *DesignPoint) RefinePlacement(iters int) error {
	pl, err := floorplan.PlaceOptimized(d.Top, floorplan.Options{}, iters)
	if err != nil {
		return err
	}
	d.Placement = pl
	d.NoCPower = power.NoC(d.Top)
	d.WireViolations = len(floorplan.WireDelayViolations(d.Top, pl))
	return nil
}
