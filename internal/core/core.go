// Package core implements the paper's contribution: Algorithm 1, the
// custom NoC topology synthesis flow that supports shutdown of voltage
// islands.
//
// The flow, per design point:
//
//  1. determine the NoC clock of every island from the heaviest NI link
//     it must sustain, and from it the maximum feasible switch size
//     (max_sw_size_j) — bigger crossbars cannot meet higher clocks;
//  2. derive the minimum switch count per island;
//  3. sweep the switch count of every island from that minimum up to one
//     switch per core, partitioning each island's VI communication graph
//     (VCG) with balanced min-cut so heavily-communicating cores share a
//     switch;
//  4. sweep the number of indirect switches in the optional intermediate
//     NoC island (never shut down);
//  5. route every flow in decreasing bandwidth order over least-cost
//     paths that only use switches in the source island, the destination
//     island, or the intermediate island — the discipline that makes
//     island shutdown safe by construction;
//  6. floorplan valid points, compute wire lengths and power, and save
//     the point for Pareto selection.
package core

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"

	"nocvi/internal/deadlock"
	"nocvi/internal/floorplan"
	"nocvi/internal/model"
	"nocvi/internal/partition"
	"nocvi/internal/power"
	"nocvi/internal/route"
	"nocvi/internal/soc"
	"nocvi/internal/topology"
	"nocvi/internal/vcg"
)

// Options configures the synthesis sweep.
type Options struct {
	// Alpha is the VCG bandwidth-vs-latency weight of Definition 1.
	// Zero selects vcg.DefaultAlpha.
	Alpha float64

	// AllowIntermediate permits creating the intermediate NoC island
	// ("we take the availability of power and ground lines for the
	// intermediate VI as an input").
	AllowIntermediate bool

	// MaxIntermediateSwitches caps the indirect-switch sweep; zero
	// derives it from the largest island.
	MaxIntermediateSwitches int

	// IntermediateVoltage supplies the NoC island; zero selects 1.0 V.
	IntermediateVoltage float64

	// MaxDesignPoints stops the sweep after this many valid points
	// (0 = exhaustive).
	MaxDesignPoints int

	// Router and Floorplan pass through to the respective stages.
	Router    route.Options
	Floorplan floorplan.Options

	// Partition passes through to the min-cut partitioner.
	Partition partition.Options

	// SpectralPartition selects recursive spectral bisection instead of
	// the Fiduccia–Mattheyses engine for the core-to-switch min-cut
	// (Algorithm 1 step 11).
	SpectralPartition bool

	// AutoVoltage scales each island's NoC supply down to the lowest
	// voltage that meets its clock (model.VoltageForFreq) instead of
	// using the spec island's nominal supply — the voltage-island
	// benefit applied to the NoC domains themselves.
	AutoVoltage bool

	// Workers bounds the number of goroutines evaluating candidate
	// design points concurrently. Zero or negative selects the
	// documented default, runtime.GOMAXPROCS(0) — the number of
	// goroutines the runtime will actually run in parallel, which
	// respects GOMAXPROCS env overrides and `go test -cpu` lanes where
	// runtime.NumCPU() would oversubscribe. One evaluates strictly
	// serially. The normalization lives in one place (Options.workers);
	// the CLIs pass the flag through untouched, so `-workers 0` means
	// the same thing everywhere. Every worker count yields identical
	// results — same Points, same order, same metrics — because
	// candidates are enumerated up front and collected in deterministic
	// sweep order regardless of completion order.
	Workers int

	// NoPrune disables the admissible-bound pruning layer (bounds.go):
	// every candidate is fully evaluated, exactly as the sweeps ran
	// before pruning existed. Pruning never changes winners — Best,
	// BestLatency, the Pareto front over point values, errors of real
	// runs and relaxation outcomes are identical either way — but with
	// pruning Result.Points holds the canonical branch-and-bound subset
	// (points not strictly dominated, in both power and latency, by an
	// earlier violation-free point) instead of every feasible candidate.
	// Because the two modes' Points differ, NoPrune participates in
	// cache-key digests. MaxDesignPoints > 0 implies the incumbent layer
	// is off (truncation counts every feasible point); the infeasibility
	// fast checks still apply.
	NoPrune bool

	// Relax opts into the degradation ladder: when the sweep finds no
	// valid design point, the spec is retried under cumulative
	// Algorithm-1-style relaxations (survivability step-down, more
	// indirect switches, latency slack ×1.1, larger max switch size)
	// instead of failing hard. The applied relaxations are stamped on
	// the Result and on every DesignPoint it contains. See relax.go.
	Relax bool

	// Survivability requires k+1 link-disjoint island-legal routes per
	// flow: the primary plus k pre-synthesized cold-standby backups,
	// searched in-loop by the router (see route.Options.Survivability)
	// and proven by topology.ValidateSurvivable before a candidate may
	// become a design point. At k >= 1 any single-link fault under any
	// legal power state is absorbed by switching the severed flow onto
	// a backup with zero re-routing. Zero (the default) synthesizes
	// byte-identically to an engine without the feature. This is the
	// canonical survivability knob — synthesizeAttempt normalizes it
	// into Router.Survivability, overwriting whatever the caller put
	// there — and it participates in cache-key digests.
	Survivability int

	// PartitionBacking, when non-nil, supplies a persistence layer for
	// island j's partition cache: newPartitioner calls it once per
	// island with the partition options the island's cache actually
	// uses (MaxPartSize already clamped to the island's max switch
	// size), and attaches the returned Backing. The content-addressed
	// result cache wires this up to warm-start re-synthesis; see
	// internal/cache. Backed partitions are bit-identical to computed
	// ones — the engines are deterministic and loads are shape-checked
	// — so this field is result-neutral and, like Workers, excluded
	// from cache-key digests. A nil return for an island leaves that
	// island's cache purely in-memory.
	PartitionBacking func(island int, pOpt partition.Options) partition.Backing
}

func (o Options) alpha() float64 {
	if o.Alpha == 0 { //noclint:ignore floateq 0 is the documented unset sentinel for Alpha
		return vcg.DefaultAlpha
	}
	return o.Alpha
}

func (o Options) midVoltage() float64 {
	if o.IntermediateVoltage <= 0 {
		return 1.0
	}
	return o.IntermediateVoltage
}

func (o Options) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// DesignPoint is one valid synthesized design.
type DesignPoint struct {
	Top       *topology.Topology
	Placement *floorplan.Placement

	// SwitchCounts is the direct switch count per island; MidSwitches
	// the indirect count in the intermediate NoC island.
	SwitchCounts []int
	MidSwitches  int

	// NoCPower is the breakdown after floorplanning (link lengths set).
	NoCPower power.Breakdown

	// MeanLatencyCycles is the average zero-load latency over all flows
	// (Fig. 3 metric).
	MeanLatencyCycles float64

	// NoCAreaMM2 is the silicon cost of the network.
	NoCAreaMM2 float64

	// WireViolations counts links exceeding the single-cycle wire
	// budget after placement.
	WireViolations int

	// FloorplanOpt records the floorplan options the point was
	// synthesized with, so RefinePlacement re-floorplans under the same
	// whitespace/annotation settings instead of zero-value defaults.
	FloorplanOpt floorplan.Options

	// Relaxations lists the degradation-ladder rungs (see Options.Relax)
	// that were in force when the point was synthesized; nil for points
	// of the unrelaxed spec.
	Relaxations []string
}

// Result is the outcome of a synthesis run.
type Result struct {
	Spec *soc.Spec

	// IslandFreqHz, MaxSwitchSize and MinSwitches record step 1-2
	// outcomes per island (spec islands only).
	IslandFreqHz  []float64
	MaxSwitchSize []int
	MinSwitches   []int

	// Points holds the valid design points found: every one under
	// Options.NoPrune (or a MaxDesignPoints cap), otherwise the
	// canonical branch-and-bound subset — feasible points not strictly
	// dominated, in both power and latency, by an earlier
	// violation-free point (see bounds.go). Both forms are identical
	// across worker counts, and both yield the same Best, BestLatency
	// and Pareto-front values.
	Points []DesignPoint

	// Explored counts attempted (switch-count, mid-count) combinations —
	// evaluated, bound-pruned or stage-pruned alike; PruneStats splits
	// it three ways (Explored == Evaluated + BoundPruned + StagePruned).
	// Feasible counts the points kept on Points.
	Explored, Feasible int

	// Truncated reports that the sweep stopped early because
	// MaxDesignPoints was reached: Explored and Feasible then reflect
	// only the evaluated prefix of the design space, not all of it.
	Truncated bool

	// Partial reports that the sweep was cut short by context
	// cancellation or deadline. The result then holds everything found
	// up to the stopping point — exactly the prefix a serial sweep of
	// the same spec would have produced — instead of being discarded.
	Partial bool

	// StopReason records why the sweep stopped: StopComplete,
	// StopTruncated, StopCanceled or StopDeadline.
	StopReason string

	// Errors records candidates whose evaluation panicked. Each panic is
	// recovered on the worker that hit it, converted into a structured
	// CandidateError, and the sweep continues; the slice is folded in
	// candidate order, so its content is identical for every worker
	// count.
	Errors []CandidateError

	// Relaxations lists the degradation-ladder rungs applied to obtain
	// this result (Options.Relax); nil when the spec synthesized as
	// given.
	Relaxations []string

	// CacheStats reports how the content-addressed cache layer served
	// this result; all-zero when the run bypassed the cache. It is
	// bookkeeping about the run, not part of the result's identity:
	// the cache codec never encodes it and digest comparisons zero it,
	// so a cached result and a fresh one still compare byte-identical.
	CacheStats CacheStats

	// PruneStats reports the branch-and-bound layer's work (bounds.go).
	// Like CacheStats it is bookkeeping about the run, not part of the
	// result's identity: whether a given candidate was pruned cheaply or
	// evaluated and then discarded depends on worker timing, so the
	// split is schedule-dependent — never encoded by the cache codec and
	// zeroed in digest and identity comparisons. The winner set never
	// depends on it.
	PruneStats PruneStats
}

// PruneStats counts the admissible-bound pruning layer's decisions over
// one run's candidates. The three-way split is exact:
//
//	Explored == Evaluated + BoundPruned + StagePruned
//
// holds for every run, and under Options.NoPrune (or a MaxDesignPoints
// cap, which disables the incumbent layer) Evaluated == Explored with
// the prune counters zero.
type PruneStats struct {
	// Evaluated counts candidates that were not pruned: fully built and
	// costed (kept points and routing/floorplan-infeasible candidates
	// alike), failed partitionings, and recovered panics. Infeasibility
	// discovered by evaluation is not pruning.
	Evaluated int

	// BoundPruned counts candidates dismissed before evaluation — the
	// candidate-local infeasibility proofs (which skip partitioning
	// entirely) or an incumbent strictly dominating the candidate's
	// (power, latency) lower bounds — plus completed points the
	// canonical fold discarded on the same lower-bound test.
	BoundPruned int

	// StagePruned counts evaluations aborted at a staged bound re-check
	// inside buildPoint (post-route, pre-floorplan), plus completed
	// points the canonical fold discarded on the refined post-route
	// test.
	StagePruned int

	// Feasible counts every candidate observed to complete with a valid
	// design point, including points the canonical fold then discarded
	// as dominated. The streaming sweep reports its observed feasible
	// count here because SweepResult.Feasible must stay deterministic.
	Feasible int
}

// Pruned returns the total pruned candidates, both flavors.
func (s PruneStats) Pruned() int { return s.BoundPruned + s.StagePruned }

// CacheStats counts the cache layer's contribution to one synthesis
// run (see internal/cache). Hits counts full-result cache hits (the
// run did no synthesis at all), Misses full-result lookups that fell
// through to the engine, and WarmStarts the per-island partitions that
// were loaded from the cache instead of recomputed during a miss.
type CacheStats struct {
	Hits       int
	Misses     int
	WarmStarts int
}

// String renders the stats the way the CLIs report them.
func (s CacheStats) String() string {
	if s.Hits > 0 {
		return "full hit"
	}
	if s.WarmStarts > 0 {
		//noclint:ignore bannedcall report rendering, not a cache key; runs once per CLI invocation
		return fmt.Sprintf("miss, warm-started %d partition(s)", s.WarmStarts)
	}
	return "miss"
}

// StopReason values recorded on Result.StopReason.
const (
	// StopComplete: the sweep evaluated the entire candidate space.
	StopComplete = "complete"
	// StopTruncated: MaxDesignPoints was reached.
	StopTruncated = "max-design-points"
	// StopCanceled: the context was canceled mid-sweep.
	StopCanceled = "canceled"
	// StopDeadline: the context deadline passed mid-sweep.
	StopDeadline = "deadline"
)

// ErrInfeasible marks synthesis failures the Relax degradation ladder
// may retry: no switch meets an island's clock, or the sweep found no
// valid design point. Malformed specs and libraries fail with ordinary
// errors that no relaxation can repair.
var ErrInfeasible = errors.New("spec infeasible")

// CandidateError is one candidate design point whose evaluation
// panicked. The sweep records it and moves on instead of dying: a panic
// in one corner of the design space must not cost the caller every
// other point already found.
type CandidateError struct {
	// SwitchCounts and MidSwitches identify the candidate.
	SwitchCounts []int
	MidSwitches  int

	// Panic is the recovered panic value; Stack the normalized frames
	// from the panic site down to the evaluation boundary (addresses
	// and caller frames stripped, so the same panic produces the same
	// stack on any worker count).
	Panic string
	Stack string
}

func (e *CandidateError) Error() string {
	//noclint:ignore bannedcall error rendering, not a cache key; runs once per recovered panic
	return fmt.Sprintf("core: candidate %v/mid=%d panicked: %s", e.SwitchCounts, e.MidSwitches, e.Panic)
}

// Synthesize runs Algorithm 1 on the spec.
func Synthesize(spec *soc.Spec, lib *model.Library, opt Options) (*Result, error) {
	return SynthesizeContext(context.Background(), spec, lib, opt)
}

// SynthesizeContext runs Algorithm 1 on the spec, evaluating candidate
// design points across opt.Workers goroutines.
//
// The engine degrades instead of failing hard. Context cancellation or
// deadline stops the sweep and returns the best-so-far partial result
// (Result.Partial, Result.StopReason) with a nil error; sweeps that run
// to completion are bit-identical to what they produced before partial
// results existed. A panicking candidate is recovered on its worker,
// recorded on Result.Errors, and the sweep continues. With Options.Relax
// an infeasible spec is retried down the degradation ladder (see
// relax.go) before the infeasibility is reported.
func SynthesizeContext(ctx context.Context, spec *soc.Spec, lib *model.Library, opt Options) (*Result, error) {
	res, err := synthesizeAttempt(ctx, spec, lib, opt)
	if err == nil || !opt.Relax || !errors.Is(err, ErrInfeasible) || ctx.Err() != nil {
		return res, err
	}
	return relaxedSynthesize(ctx, spec, lib, opt, err)
}

// synthesizeAttempt is one unrelaxed run of Algorithm 1 on one spec.
func synthesizeAttempt(ctx context.Context, spec *soc.Spec, lib *model.Library, opt Options) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := lib.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	// Survivability is normalized into the router options here — the
	// core knob is canonical, so a caller-set Router.Survivability is
	// overwritten — and every worker reads the normalized copy through
	// the shared env.
	if opt.Survivability < 0 {
		opt.Survivability = 0
	}
	opt.Router.Survivability = opt.Survivability
	res := &Result{Spec: spec}

	// Step 1: island NoC clocks and max switch sizes.
	freqs, maxSizes, err := IslandClocks(spec, lib)
	if err != nil {
		return nil, err
	}
	res.IslandFreqHz = freqs
	res.MaxSwitchSize = maxSizes

	// Step 2: minimum switch count per island. A direct switch must
	// keep one port free for inter-switch links, hence the -1.
	nIsl := len(spec.Islands)
	res.MinSwitches = make([]int, nIsl)
	islandCores := make([][]soc.CoreID, nIsl)
	for j := 0; j < nIsl; j++ {
		islandCores[j] = spec.CoresIn(soc.IslandID(j))
		n := len(islandCores[j])
		usable := maxSizes[j] - 1
		if usable < 1 {
			return nil, fmt.Errorf("core: island %d needs %.0f MHz, too fast for any usable switch: %w",
				j, freqs[j]/1e6, ErrInfeasible)
		}
		res.MinSwitches[j] = (n + usable - 1) / usable
		if res.MinSwitches[j] < 1 {
			res.MinSwitches[j] = 1
		}
	}

	// Build per-island VCGs once.
	vcgs, err := vcg.BuildAll(spec, opt.alpha())
	if err != nil {
		return nil, err
	}

	maxCores := 0
	for j := range islandCores {
		if len(islandCores[j]) > maxCores {
			maxCores = len(islandCores[j])
		}
	}
	maxMid := opt.MaxIntermediateSwitches
	if maxMid <= 0 {
		maxMid = maxCores
	}
	if !opt.AllowIntermediate {
		maxMid = 0
	}

	midFreq := lib.FreqGridHz
	for _, f := range freqs {
		if f > midFreq {
			midFreq = f
		}
	}

	// Steps 4-17, restructured for parallel evaluation: enumerate every
	// unique (switch-count vector, intermediate-switch count) candidate
	// in sweep order first, then evaluate buildPoint over a bounded
	// worker pool — each worker building inside its own reusable arena —
	// collecting results back in candidate order so the outcome is
	// identical for every worker count.
	cands := enumerateCandidates(res.MinSwitches, islandCores, maxCores, maxMid)

	// Step 11 memoization: the min-cut partition of island j into k
	// switches depends only on (j, k), so it is computed once and shared
	// by every mid value and every counts-vector assigning j the same k.
	// Each counts vector's assembled partition set lives in its vecParts,
	// resolved first-touch by whichever worker claims a candidate of the
	// vector (once latch, deterministic result); after resolution the
	// read path is lock-free.
	parter := newPartitioner(vcgs, maxSizes, opt)

	env := &sweepEnv{
		spec:        spec,
		lib:         lib,
		opt:         opt,
		freqs:       freqs,
		midFreq:     midFreq,
		islandCores: islandCores,
		flows:       spec.SortFlowsByBandwidth(),
	}
	// The branch-and-bound layer (bounds.go): candidate-local lower
	// bounds and infeasibility proofs always come with the bounds env;
	// the incumbent pruner additionally requires an uncapped sweep —
	// under MaxDesignPoints the truncation point must count every
	// feasible point, so only the infeasibility fast checks apply there
	// (they are result-neutral: a skipped candidate could never build).
	if !opt.NoPrune {
		parter.bounds = newBoundsEnv(spec, lib, opt, freqs, islandCores)
		if opt.MaxDesignPoints == 0 {
			env.pruner = &incumbentPruner{}
		}
	}
	eval := func(bc *buildContext, c candidate) *DesignPoint {
		if c.vec.err != nil {
			return nil // attempted but infeasible: no k-way cut fits
		}
		dp, err := buildPoint(bc, c.vec.counts, c.vec.parts, c.mid)
		if err != nil {
			if errors.Is(err, errStagePruned) {
				bc.stagePruned = true
			}
			return nil
		}
		return dp
	}

	sweep := synthesizeParallel
	if opt.workers() == 1 {
		sweep = synthesizeSerial
	}
	sweep(ctx, res, cands, opt, env, parter, eval)
	if res.Partial {
		// Cut short by the context: everything found so far is the answer.
		// An empty partial result is still a result, not an error — the
		// caller asked the sweep to stop, and it did.
		return res, nil
	}
	if res.Truncated {
		res.StopReason = StopTruncated
	} else {
		res.StopReason = StopComplete
	}
	if len(res.Points) == 0 {
		return res, fmt.Errorf("core: no valid design point for %q (explored %d): %w", spec.Name, res.Explored, ErrInfeasible)
	}
	return res, nil
}

// candidate is one (switch-count vector, intermediate-switch count)
// combination of the design-space sweep. Candidates sharing a counts
// vector share one vecParts.
type candidate struct {
	vec *vecParts
	mid int
}

// vecParts is one distinct switch-count vector of the sweep together
// with its memoized per-island partitions. It is resolved lazily by
// the first worker that claims a candidate referencing it, under the
// once latch (partitioner.resolve); resolution is deterministic per
// vector — the engines depend only on (graph, k, options) — so which
// worker runs it is immaterial. once.Do's happens-before edge
// publishes counts/parts/err to every later reader, so the read path
// after resolve stays lock-free.
type vecParts struct {
	counts []int
	parts  [][]int
	err    error

	// powerLB and latLB are the vector's admissible lower bounds, and
	// skip its provable-infeasibility verdict, computed during resolve
	// when the bounds layer is active (see bounds.go). A skipped vector
	// is never partitioned. Deterministic per vector, like parts.
	powerLB float64
	latLB   float64
	skip    bool

	once sync.Once
}

// enumerateCandidates lists the sweep's candidates in deterministic
// order: counts-vectors as the serial sweep visits them (uniformly
// incremented from the per-island minimum, clamped at one switch per
// core, deduplicated), with the intermediate-switch count ascending
// within each vector.
func enumerateCandidates(minSwitches []int, islandCores [][]soc.CoreID, maxCores, maxMid int) []candidate {
	nIsl := len(minSwitches)
	seen := make(map[string]bool)
	var cands []candidate
	for i := 0; i <= maxCores; i++ {
		counts := make([]int, nIsl)
		saturated := true
		for j := 0; j < nIsl; j++ {
			k := minSwitches[j] + i
			if k >= len(islandCores[j]) {
				k = len(islandCores[j])
			} else {
				saturated = false
			}
			counts[j] = k
		}
		key := countsKey(counts)
		if !seen[key] {
			seen[key] = true
			vec := &vecParts{counts: counts}
			for m := 0; m <= maxMid; m++ {
				cands = append(cands, candidate{vec: vec, mid: m})
			}
		}
		if saturated {
			break
		}
	}
	return cands
}

// evalOutcome is one candidate's evaluation: a valid design point, a
// recovered panic, a prune verdict, or none of those (the candidate was
// infeasible).
type evalOutcome struct {
	dp     *DesignPoint
	err    *CandidateError
	pruned uint8 // pruneNone, pruneBound or pruneStage
}

// testHookEvalStart, when non-nil, runs at the top of every candidate
// evaluation — inside the panic boundary, on the evaluating goroutine.
// Tests use it to inject panics into chosen candidates and to cancel
// contexts after a deterministic number of evaluations. Always nil in
// production; set it only in tests that run sweeps sequentially.
var testHookEvalStart func(counts []int, mid int)

// safeEval evaluates one candidate behind a panic boundary. A panic is
// converted into a CandidateError carrying the candidate's parameters
// and a normalized stack, and the worker's arena is dropped — a panic
// can leave the pooled topology, router or floorplan scratch half
// mutated, so the next candidate starts from fresh allocations.
func safeEval(bc *buildContext, c candidate, eval func(*buildContext, candidate) *DesignPoint) (out evalOutcome) {
	defer func() {
		if r := recover(); r != nil {
			out = evalOutcome{err: &CandidateError{
				SwitchCounts: append([]int(nil), c.vec.counts...),
				MidSwitches:  c.mid,
				//noclint:ignore bannedcall stringifying a recovered panic value, off the hot path
				Panic: fmt.Sprint(r),
				Stack: normalizeStack(debug.Stack()),
			}}
			*bc = buildContext{env: bc.env}
		}
	}()
	if testHookEvalStart != nil {
		testHookEvalStart(c.vec.counts, c.mid)
	}
	out = evalOutcome{dp: eval(bc, c)}
	if bc.stagePruned {
		bc.stagePruned = false
		out.pruned = pruneStage
	}
	return out
}

// evalCandidate runs the full per-candidate pipeline on one worker:
// resolve the vector (partitions plus bounds), apply the pre-evaluation
// prune checks, evaluate behind the panic boundary, and publish a
// completed violation-free point to the incumbent pruner. idx is the
// candidate's position in sweep order; incumbent dominance only ever
// uses strictly earlier witnesses, so the worker-side decision here is
// always implied by the canonical fold-time decision in collect.
func evalCandidate(bc *buildContext, c candidate, idx int, parter *partitioner, env *sweepEnv, eval func(*buildContext, candidate) *DesignPoint) evalOutcome {
	parter.resolve(c.vec, &bc.part)
	if c.vec.skip {
		return evalOutcome{pruned: pruneBound} // provably infeasible, partitioning skipped
	}
	if env.pruner != nil && c.vec.err == nil &&
		env.pruner.dominates(uint64(idx), c.vec.powerLB, c.vec.latLB) {
		return evalOutcome{pruned: pruneBound}
	}
	bc.pruneIdx = uint64(idx)
	out := safeEval(bc, c, eval)
	if env.pruner != nil && out.dp != nil && out.dp.WireViolations == 0 {
		env.pruner.publish(uint64(idx), out.dp.NoCPower.DynW(), out.dp.MeanLatencyCycles)
	}
	return out
}

// normalizeStack reduces a debug.Stack dump to the frames between the
// panic site and the evaluation boundary. The goroutine header,
// argument values, code offsets and runtime frames are stripped, and
// the walk stops at safeEval itself — everything below it differs
// between the serial and parallel sweeps. The same panic therefore
// yields a byte-identical stack on any worker count, which is what lets
// Result.Errors compare equal across sweep configurations.
func normalizeStack(stack []byte) string {
	lines := strings.Split(string(stack), "\n")
	var b strings.Builder
	for i := 0; i < len(lines); i++ {
		line := lines[i]
		if line == "" || strings.HasPrefix(line, "goroutine ") || strings.HasPrefix(line, "\t") {
			continue // header, or a location line of a skipped frame
		}
		fn := line
		if j := strings.IndexByte(fn, '('); j >= 0 {
			fn = fn[:j]
		}
		if fn == "nocvi/internal/core.safeEval" || fn == "nocvi/internal/core.sweepEval" {
			break // evaluation boundary: frames below depend on sweep mode
		}
		if fn == "panic" || strings.HasPrefix(fn, "runtime.") ||
			strings.HasPrefix(fn, "runtime/debug.") ||
			strings.HasPrefix(fn, "nocvi/internal/core.safeEval.func") ||
			strings.HasPrefix(fn, "nocvi/internal/core.sweepEval.func") {
			continue
		}
		loc := ""
		if i+1 < len(lines) && strings.HasPrefix(lines[i+1], "\t") {
			loc = strings.TrimSpace(lines[i+1])
			if j := strings.LastIndex(loc, " +0x"); j >= 0 {
				loc = loc[:j]
			}
			i++
		}
		b.WriteString(fn)
		if loc != "" {
			b.WriteString("\n\t")
			b.WriteString(loc)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// collect folds one evaluated candidate into the result in sweep order.
// It returns true when the sweep should stop (MaxDesignPoints reached).
// Every attempted candidate counts toward Explored — whether it was
// pruned, its partitioning failed, its routing/floorplanning was
// infeasible, or its evaluation panicked (recorded on res.Errors).
//
// With the incumbent layer active, the fold is also the canonical
// pruning authority: every completed point is re-checked against the
// kept points so far (prunedBy), a decision that depends only on
// earlier candidates — never on worker timing — so res.Points is
// identical for every worker count even though which candidates the
// workers managed to prune cheaply is not. A worker-side prune always
// implies the canonical discard, so pruning can only move a candidate
// between the PruneStats buckets, never into Points.
func collect(res *Result, out evalOutcome, c candidate, total int, env *sweepEnv) (stop bool) {
	opt := env.opt
	res.Explored++
	switch out.pruned {
	case pruneBound:
		res.PruneStats.BoundPruned++
		return false
	case pruneStage:
		res.PruneStats.StagePruned++
		return false
	}
	if out.err != nil {
		res.PruneStats.Evaluated++
		res.Errors = append(res.Errors, *out.err)
		return false
	}
	if out.dp == nil {
		res.PruneStats.Evaluated++
		return false
	}
	res.PruneStats.Feasible++
	if env.pruner != nil {
		switch prunedBy(res.Points, c, out.dp, env.opt.Floorplan.SkipAnnotate) {
		case pruneBound:
			res.PruneStats.BoundPruned++
			return false
		case pruneStage:
			res.PruneStats.StagePruned++
			return false
		}
	}
	res.PruneStats.Evaluated++
	res.Feasible++
	res.Points = append(res.Points, *out.dp)
	if opt.MaxDesignPoints > 0 && len(res.Points) >= opt.MaxDesignPoints {
		res.Truncated = res.Explored < total
		return true
	}
	return false
}

// markPartial stamps a context-stopped sweep onto the result. The
// folded prefix stays; only the stop metadata changes.
func markPartial(ctx context.Context, res *Result) {
	res.Partial = true
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		res.StopReason = StopDeadline
	} else {
		res.StopReason = StopCanceled
	}
}

// synthesizeSerial is the Workers=1 path: one candidate at a time, in
// order, built inside a single arena, stopping as soon as
// MaxDesignPoints is met. Partitions are resolved lazily so a truncated
// sweep never partitions vectors beyond the stopping point. On context
// cancellation the candidates already folded stay on the result, which
// is marked Partial.
func synthesizeSerial(ctx context.Context, res *Result, cands []candidate, opt Options, env *sweepEnv, parter *partitioner, eval func(*buildContext, candidate) *DesignPoint) {
	bc := newBuildContext(env)
	for i, c := range cands {
		if ctx.Err() != nil {
			markPartial(ctx, res)
			return
		}
		if collect(res, evalCandidate(bc, c, i, parter, env, eval), c, len(cands), env) {
			return
		}
	}
}

// synthesizeParallel fans candidates out over opt.workers() goroutines,
// each owning one reusable build arena for the whole sweep. Candidates
// are claimed from an atomic cursor — no dispatch channel, no producer
// goroutine — and their outcomes folded into the result strictly in
// candidate order, so Points, Explored, Feasible, Truncated and Errors
// are identical to the serial path. Chunking bounds the work wasted
// beyond the stopping point when MaxDesignPoints is set; without a cap
// the whole space is one chunk.
//
// Counts-vector partitions are resolved by the workers themselves: the
// first worker to claim a candidate of an unresolved vector runs the
// resolution through its own partition scratch under the vector's once
// latch (see partitioner.resolve). The coordinator does no per-
// candidate work at all — the serial resolve loop it used to run here
// kept every worker idle while it min-cut every island of every
// vector, which put a serial term ahead of each chunk (Amdahl's law
// made the d48 sweep nearly flat across worker counts).
//
// On cancellation the evaluated candidates form a contiguous prefix —
// claims are issued in candidate order by the cursor, and a worker that
// claims an index always finishes evaluating it before checking the
// context again — so folding indices [0, next) yields exactly the
// prefix a serial sweep of the same spec would have produced.
func synthesizeParallel(ctx context.Context, res *Result, cands []candidate, opt Options, env *sweepEnv, parter *partitioner, eval func(*buildContext, candidate) *DesignPoint) {
	workers := opt.workers()
	chunk := len(cands)
	if opt.MaxDesignPoints > 0 && workers*4 < chunk {
		chunk = workers * 4
	}
	arenas := make([]*buildContext, workers)
	for lo := 0; lo < len(cands); lo += chunk {
		hi := lo + chunk
		if hi > len(cands) {
			hi = len(cands)
		}
		if ctx.Err() != nil {
			markPartial(ctx, res)
			return
		}
		outs := make([]evalOutcome, hi-lo)
		var next atomic.Int64 // next unclaimed index into outs
		var wg sync.WaitGroup
		for w := 0; w < workers && w < hi-lo; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				bc := arenas[w]
				if bc == nil {
					bc = newBuildContext(env)
					arenas[w] = bc
				}
				for ctx.Err() == nil {
					i := int(next.Add(1)) - 1
					if i >= len(outs) {
						return
					}
					outs[i] = evalCandidate(bc, cands[lo+i], lo+i, parter, env, eval)
				}
			}(w)
		}
		wg.Wait()
		done := len(outs)
		if ctx.Err() != nil {
			// Every claimed index was evaluated; claims stop on
			// cancellation, so [0, next) is the evaluated prefix.
			if n := int(next.Load()); n < done {
				done = n
			}
		}
		for i := 0; i < done; i++ {
			if collect(res, outs[i], cands[lo+i], len(cands), env) {
				return
			}
		}
		if ctx.Err() != nil {
			markPartial(ctx, res)
			return
		}
	}
}

// IslandClocks implements step 1: the NoC clock of each island is fixed
// by the heaviest aggregate NI bandwidth of any core in the island (the
// NI<->switch link must carry all of the core's traffic), quantized to
// the library clock grid; the max switch size follows from the clock.
func IslandClocks(spec *soc.Spec, lib *model.Library) (freqs []float64, maxSizes []int, err error) {
	egress, ingress := spec.AggregateCoreBandwidth()
	nIsl := len(spec.Islands)
	freqs = make([]float64, nIsl)
	maxSizes = make([]int, nIsl)
	for j := 0; j < nIsl; j++ {
		var peak float64
		for _, c := range spec.CoresIn(soc.IslandID(j)) {
			peak = math.Max(peak, math.Max(egress[c], ingress[c]))
		}
		freqs[j] = lib.MinFreqForBandwidth(peak)
		maxSizes[j] = lib.MaxSwitchSize(freqs[j])
		if maxSizes[j] == 0 {
			return nil, nil, fmt.Errorf(
				"core: island %d requires %.0f MHz which no switch meets; widen links: %w", j, freqs[j]/1e6, ErrInfeasible)
		}
		if maxSizes[j] > len(spec.Cores)+nIsl+8 {
			// Unbounded in practice; clamp for sizing arithmetic.
			maxSizes[j] = len(spec.Cores) + nIsl + 8
		}
	}
	return freqs, maxSizes, nil
}

// countsKey encodes a switch-count vector into a compact map key. Each
// element is appended as a uvarint; varints are prefix codes, so the
// concatenation of two distinct vectors can never collide. Unlike the
// fmt.Sprint key it replaces, it performs no reflection and allocates
// nothing but the final string.
func countsKey(counts []int) string {
	var stack [64]byte
	buf := stack[:0]
	for _, c := range counts {
		buf = binary.AppendUvarint(buf, uint64(c))
	}
	return string(buf)
}

// partitioner memoizes step 11 at two levels: one partition.Cache per
// island (keyed by switch count) and the assembled per-counts-vector
// partition set, stored in the vector's vecParts. Resolution is
// worker-side and first-touch: whichever goroutine first claims a
// candidate of an unresolved vector resolves it through its own
// partition scratch, under the vector's once latch; later claimers of
// the same vector wait on the latch (rarely — vectors resolve in
// microseconds) and then read the immutable result without any lock.
type partitioner struct {
	caches []*partition.Cache

	// bounds, when non-nil, activates the branch-and-bound layer's
	// per-vector work inside resolve: the pre-partition infeasibility
	// proof (a provably-doomed vector is never partitioned at all) and
	// the admissible lower bounds stored on the vecParts.
	bounds *boundsEnv
}

// newPartitioner builds one cache per island VCG, with the same
// engine selection and MaxPartSize clamping the serial flow applied per
// call. The undirected VCG views are materialized once, up front.
func newPartitioner(vcgs []*vcg.VCG, maxSizes []int, opt Options) *partitioner {
	// A nil engine selects the cache's scratch-pooled built-in KWay.
	var engine partition.Engine
	if opt.SpectralPartition {
		engine = partition.SpectralKWay
	}
	caches := make([]*partition.Cache, len(vcgs))
	for j, v := range vcgs {
		pOpt := opt.Partition
		cap := maxSizes[j] - 1
		if pOpt.MaxPartSize == 0 || cap < pOpt.MaxPartSize {
			pOpt.MaxPartSize = cap
		}
		caches[j] = partition.NewCache(v.Undirected(), engine, pOpt)
		if opt.PartitionBacking != nil {
			// The backing receives the clamped options the cache runs
			// with, so its keys cover exactly the identity that
			// determines the cut.
			if b := opt.PartitionBacking(j, pOpt); b != nil {
				caches[j].SetBacking(b)
			}
		}
	}
	return &partitioner{caches: caches}
}

// resolve fills in the per-island partitions of one counts-vector,
// min-cut partitioning every island's VCG into the requested switch
// counts through the caller's scratch (nil falls back to the caches'
// internal serialized scratch). Safe to call from any number of
// goroutines: the vector's once latch runs the resolution exactly
// once, and after resolve returns, v is immutable. Results do not
// depend on which caller wins the latch — both engines are
// deterministic functions of (graph, k, options).
func (p *partitioner) resolve(v *vecParts, sc *partition.Scratch) {
	v.once.Do(func() {
		if p.bounds != nil && p.bounds.vectorInfeasible(v.counts) {
			v.skip = true // provably infeasible: partitioning skipped entirely
			return
		}
		parts := make([][]int, len(p.caches))
		for j, c := range p.caches {
			var err error
			parts[j], err = c.PartitionScratch(v.counts[j], sc)
			if err != nil {
				v.err = err
				return // v.parts stays nil: the vector is infeasible
			}
		}
		v.parts = parts
		if p.bounds != nil {
			v.powerLB, v.latLB, v.skip = p.bounds.vectorBounds(v.counts, parts)
		}
	})
}

// buildPoint constructs, routes, floorplans and costs one candidate
// design inside the worker's arena. An error means the point is
// infeasible. On success the built topology and placement are handed
// off to the returned DesignPoint and the arena forgets them; on
// failure they stay pooled for the next candidate.
func buildPoint(bc *buildContext, counts []int, parts [][]int, mid int) (*DesignPoint, error) {
	env := bc.env
	lib, opt := env.lib, env.opt

	top := bc.takeTop()
	for j, f := range env.freqs {
		top.SetIslandFreq(soc.IslandID(j), f)
		if opt.AutoVoltage {
			top.SetIslandVoltage(soc.IslandID(j), lib.VoltageForFreq(f))
		}
	}
	// Direct switches per island, one per partition. AddSwitch assigns
	// IDs sequentially, so island j's switches occupy the half-open ID
	// range starting at the sum of the preceding islands' counts — no
	// per-candidate ID table needed.
	for j, k := range counts {
		for p := 0; p < k; p++ {
			top.AddSwitch(soc.IslandID(j), false)
		}
	}
	base := 0
	for j, k := range counts {
		for i, c := range env.islandCores[j] {
			if err := top.AttachCore(c, topology.SwitchID(base+parts[j][i])); err != nil {
				return nil, err
			}
		}
		base += k
	}
	if mid > 0 {
		midV := opt.midVoltage()
		if opt.AutoVoltage {
			midV = lib.VoltageForFreq(env.midFreq)
		}
		ni := top.AddNoCIsland(env.midFreq, midV)
		for p := 0; p < mid; p++ {
			top.AddSwitch(ni, true)
		}
	}

	// Step 15: route flows in bandwidth order (pre-sorted once per
	// sweep, shared read-only).
	r := bc.takeRouter(top)
	if err := r.RouteFlows(env.flows); err != nil {
		return nil, err
	}
	// A design point whose routes could deadlock is invalid; the island
	// discipline makes this rare, but it is verified, not assumed.
	if err := deadlock.Check(top); err != nil {
		return nil, err
	}

	// Staged bound re-tightening: with the routes fixed, the point's
	// mean latency is final (zero-load latency never depends on wire
	// lengths) and its power is final up to the link-wire terms the
	// floorplan adds — or final outright under SkipAnnotate, where link
	// lengths stay at the power model's default so the pre-floorplan
	// breakdown is the post-floorplan one bit-for-bit. If an earlier
	// incumbent strictly dominates both, floorplanning and validation
	// cannot save this candidate.
	if pr := env.pruner; pr != nil {
		var stagePowerW float64
		if opt.Floorplan.SkipAnnotate {
			stagePowerW = power.NoC(top).DynW()
		} else {
			stagePowerW = power.NoCSansLinkWires(top).DynW()
		}
		if pr.dominates(bc.pruneIdx, stagePowerW, top.MeanZeroLoadLatency()) {
			return nil, errStagePruned
		}
	}

	// Survivability as a feasibility predicate: the router already
	// failed candidates it could not give k disjoint backups, and this
	// proves the property it claims to have established — per-flow
	// backup count, structure, island legality, latency and pairwise
	// link-disjointness — before the candidate may become a point.
	if k := opt.Survivability; k > 0 {
		if err := top.ValidateSurvivable(k); err != nil {
			return nil, err
		}
	}

	// Floorplan, then validate with real wire lengths.
	pl, err := floorplan.PlaceWith(top, opt.Floorplan, &bc.fp)
	if err != nil {
		return nil, err
	}
	if err := top.Validate(); err != nil {
		return nil, err
	}

	dp := &DesignPoint{
		Top:               top,
		Placement:         pl,
		SwitchCounts:      append([]int(nil), counts...),
		MidSwitches:       mid,
		NoCPower:          power.NoC(top),
		MeanLatencyCycles: top.MeanZeroLoadLatency(),
		NoCAreaMM2:        power.NoCAreaMM2(top),
		WireViolations:    len(floorplan.WireDelayViolations(top, pl)),
		FloorplanOpt:      opt.Floorplan,
	}
	bc.top = nil // escaped into the design point: never reset again
	return dp, nil
}

// Best returns the design point with the lowest NoC dynamic power,
// preferring points without wire-delay violations. Nil when empty.
func (r *Result) Best() *DesignPoint {
	return r.argmin(func(d *DesignPoint) float64 { return d.NoCPower.DynW() })
}

// BestLatency returns the design point with the lowest mean zero-load
// latency, preferring points without wire-delay violations.
func (r *Result) BestLatency() *DesignPoint {
	return r.argmin(func(d *DesignPoint) float64 { return d.MeanLatencyCycles })
}

// argmin selects the minimal point under an explicit deterministic
// ordering: fewest wire violations, then lowest metric, then — on exact
// metric ties — lowest total direct switch count, then lowest
// intermediate switch count. The tie-break makes the selection
// independent of Points ordering, so serial and parallel sweeps (whose
// Points order is canonical anyway) can never disagree.
func (r *Result) argmin(metric func(*DesignPoint) float64) *DesignPoint {
	var best *DesignPoint
	bestViol := math.MaxInt32
	bestVal := math.Inf(1)
	for i := range r.Points {
		d := &r.Points[i]
		v := metric(d)
		better := false
		switch {
		case d.WireViolations != bestViol:
			better = d.WireViolations < bestViol
		case v != bestVal: //noclint:ignore floateq exact compare keeps the argmin tie-break chain bit-identical across serial and parallel sweeps
			better = v < bestVal
		case best != nil && totalSwitches(d) != totalSwitches(best):
			better = totalSwitches(d) < totalSwitches(best)
		case best != nil:
			better = d.MidSwitches < best.MidSwitches
		}
		if better {
			best, bestViol, bestVal = d, d.WireViolations, v
		}
	}
	return best
}

func totalSwitches(d *DesignPoint) int {
	n := 0
	for _, k := range d.SwitchCounts {
		n += k
	}
	return n
}

// RefinePlacement re-floorplans the design point with the annealing
// placement optimizer (island orders that shorten traffic-weighted
// wires), then refreshes the wire-dependent metrics: link lengths, NoC
// power and wire-delay violations. iters <= 0 selects the optimizer's
// default budget.
func (d *DesignPoint) RefinePlacement(iters int) error {
	pl, err := floorplan.PlaceOptimized(d.Top, d.FloorplanOpt, iters)
	if err != nil {
		return err
	}
	d.Placement = pl
	d.NoCPower = power.NoC(d.Top)
	d.WireViolations = len(floorplan.WireDelayViolations(d.Top, pl))
	return nil
}
