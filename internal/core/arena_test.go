package core

import (
	"context"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"nocvi/internal/bench"
	"nocvi/internal/model"
	"nocvi/internal/soc"
	"nocvi/internal/vcg"
)

// newTestSweep mirrors SynthesizeContext's setup up to the sweep
// itself, exposing the environment, partitioner and candidate list so
// tests can drive buildPoint directly.
func newTestSweep(t *testing.T, spec *soc.Spec, lib *model.Library, opt Options) (*sweepEnv, *partitioner, []candidate) {
	t.Helper()
	freqs, maxSizes, err := IslandClocks(spec, lib)
	if err != nil {
		t.Fatal(err)
	}
	nIsl := len(spec.Islands)
	minSw := make([]int, nIsl)
	islandCores := make([][]soc.CoreID, nIsl)
	maxCores := 0
	for j := 0; j < nIsl; j++ {
		islandCores[j] = spec.CoresIn(soc.IslandID(j))
		usable := maxSizes[j] - 1
		if usable < 1 {
			t.Fatalf("island %d infeasible", j)
		}
		minSw[j] = (len(islandCores[j]) + usable - 1) / usable
		if minSw[j] < 1 {
			minSw[j] = 1
		}
		if len(islandCores[j]) > maxCores {
			maxCores = len(islandCores[j])
		}
	}
	vcgs, err := vcg.BuildAll(spec, opt.alpha())
	if err != nil {
		t.Fatal(err)
	}
	maxMid := opt.MaxIntermediateSwitches
	if maxMid <= 0 {
		maxMid = maxCores
	}
	if !opt.AllowIntermediate {
		maxMid = 0
	}
	midFreq := lib.FreqGridHz
	for _, f := range freqs {
		if f > midFreq {
			midFreq = f
		}
	}
	env := &sweepEnv{
		spec:        spec,
		lib:         lib,
		opt:         opt,
		freqs:       freqs,
		midFreq:     midFreq,
		islandCores: islandCores,
		flows:       spec.SortFlowsByBandwidth(),
	}
	parter := newPartitioner(vcgs, maxSizes, opt)
	return env, parter, enumerateCandidates(minSw, islandCores, maxCores, maxMid)
}

// sameBuiltPoint asserts two independently built design points are
// bit-identical in every observable: configuration, metrics, the full
// topology (switches with their core lists, links, routes hop by hop)
// and the full placement.
func sameBuiltPoint(t *testing.T, label string, a, b *DesignPoint) {
	t.Helper()
	if !reflect.DeepEqual(a.SwitchCounts, b.SwitchCounts) || a.MidSwitches != b.MidSwitches {
		t.Fatalf("%s: config differs: %v/%d vs %v/%d",
			label, a.SwitchCounts, a.MidSwitches, b.SwitchCounts, b.MidSwitches)
	}
	if a.NoCPower != b.NoCPower || a.MeanLatencyCycles != b.MeanLatencyCycles ||
		a.NoCAreaMM2 != b.NoCAreaMM2 || a.WireViolations != b.WireViolations {
		t.Fatalf("%s: metrics differ:\n%+v\nvs\n%+v", label, *a, *b)
	}
	if !reflect.DeepEqual(a.Top.Switches, b.Top.Switches) {
		t.Fatalf("%s: switches differ:\n%v\nvs\n%v", label, a.Top.Switches, b.Top.Switches)
	}
	if !reflect.DeepEqual(a.Top.Links, b.Top.Links) {
		t.Fatalf("%s: links differ:\n%v\nvs\n%v", label, a.Top.Links, b.Top.Links)
	}
	if !reflect.DeepEqual(a.Top.Routes, b.Top.Routes) {
		t.Fatalf("%s: routes differ:\n%v\nvs\n%v", label, a.Top.Routes, b.Top.Routes)
	}
	if !reflect.DeepEqual(a.Top.SwitchOf, b.Top.SwitchOf) {
		t.Fatalf("%s: core attachment differs", label)
	}
	if !reflect.DeepEqual(a.Placement, b.Placement) {
		t.Fatalf("%s: placements differ:\n%+v\nvs\n%+v", label, a.Placement, b.Placement)
	}
}

// TestArenaNoStateLeak drives one shared buildContext through
// candidates with different switch-count vectors — the situation where
// a stale core list, route buffer or subgraph surviving a Reset would
// corrupt the next build — and checks every point against a build from
// a fresh, never-used arena. The A-B-A order makes the first candidate
// also rebuild on an arena dirtied by a differently-shaped one.
func TestArenaNoStateLeak(t *testing.T) {
	spec := miniSoC()
	lib := model.Default65nm()
	opt := Options{AllowIntermediate: true, MaxIntermediateSwitches: 2}
	env, parter, cands := newTestSweep(t, spec, lib, opt)

	// Pick one feasible candidate per distinct counts vector, up to
	// four, then replay the first again (A-B-...-A). Vectors are
	// resolved through a dedicated arena's partition scratch — the
	// worker-side first-touch path, reusing one scratch across every
	// vector — so the replayed builds consume partitions computed off
	// an already-dirtied scratch, exactly as a sweep worker would see.
	var picks []candidate
	seen := map[*vecParts]bool{}
	resolver := newBuildContext(env)
	for _, c := range cands {
		parter.resolve(c.vec, &resolver.part)
		if c.vec.err != nil || seen[c.vec] {
			continue
		}
		seen[c.vec] = true
		picks = append(picks, c)
		if len(picks) == 4 {
			break
		}
	}
	if len(picks) < 2 {
		t.Fatalf("need at least two distinct feasible counts vectors, got %d", len(picks))
	}
	picks = append(picks, picks[0])

	shared := newBuildContext(env)
	for i, c := range picks {
		fresh, err := buildPoint(newBuildContext(env), c.vec.counts, c.vec.parts, c.mid)
		if err != nil {
			t.Fatalf("pick %d (%v/%d): fresh build failed: %v", i, c.vec.counts, c.mid, err)
		}
		reused, err := buildPoint(shared, c.vec.counts, c.vec.parts, c.mid)
		if err != nil {
			t.Fatalf("pick %d (%v/%d): arena build failed: %v", i, c.vec.counts, c.mid, err)
		}
		sameBuiltPoint(t, "pick "+string(rune('0'+i)), fresh, reused)
		if fresh.Top == reused.Top {
			t.Fatal("arena handed out the same topology twice")
		}
	}
}

// TestMidSweepCancellationDrainsWorkers cancels sweeps at racy,
// unsynchronized moments — before, during and after the worker pool's
// lifetime — and asserts that every goroutine the sweep spawned has
// drained afterwards. Run under -race this also exercises the
// cancellation paths of the chunk coordinator and the atomic claiming
// loop.
func TestMidSweepCancellationDrainsWorkers(t *testing.T) {
	spec, err := bench.Islanded("d26_media")
	if err != nil {
		t.Fatal(err)
	}
	lib := model.Default65nm()
	before := runtime.NumGoroutine()
	for i := 0; i < 8; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, err := SynthesizeContext(ctx, spec, lib, Options{
				AllowIntermediate: true,
				Workers:           8,
				// A cap forces chunked dispatch, covering the
				// cancellation checks between chunks too.
				MaxDesignPoints: 20,
			})
			done <- err
		}()
		if i%2 == 0 {
			runtime.Gosched() // let the sweep get going before the cancel
		}
		cancel()
		if err := <-done; err != nil {
			t.Fatalf("iteration %d: canceled sweep must degrade to a partial result, got %v", i, err)
		}
	}
	// Workers exit via the claiming loop's context check; give the
	// scheduler a moment, then require the goroutine count back at (or
	// below) the baseline plus slack for runtime housekeeping.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not drain: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestVectorResolutionRace hammers the first-touch once latch that
// replaced coordinator-side partition resolution: for each distinct
// counts-vector, a pack of goroutines calls resolve at the same
// instant, each through its own worker arena's partition scratch.
// Exactly one racer runs the resolution; every racer must then observe
// the same immutable partition set, equal to a serial resolution on a
// fresh partitioner. Under -race this is the regression test proving
// the latch publishes vecParts safely with no coordinator in the loop.
func TestVectorResolutionRace(t *testing.T) {
	spec := miniSoC()
	lib := model.Default65nm()
	opt := Options{AllowIntermediate: true, MaxIntermediateSwitches: 2}
	env, parter, cands := newTestSweep(t, spec, lib, opt)
	_, refParter, _ := newTestSweep(t, spec, lib, opt)

	var vecs []*vecParts
	seen := map[*vecParts]bool{}
	for _, c := range cands {
		if !seen[c.vec] {
			seen[c.vec] = true
			vecs = append(vecs, c.vec)
		}
	}
	if len(vecs) < 2 {
		t.Fatalf("want several distinct vectors, got %d", len(vecs))
	}

	const racers = 32
	for _, vec := range vecs {
		var start, done sync.WaitGroup
		start.Add(1)
		views := make([][][]int, racers)
		errs := make([]error, racers)
		for r := 0; r < racers; r++ {
			done.Add(1)
			bc := newBuildContext(env)
			go func(r int, bc *buildContext) {
				defer done.Done()
				start.Wait()
				parter.resolve(vec, &bc.part)
				views[r] = vec.parts
				errs[r] = vec.err
			}(r, bc)
		}
		start.Done()
		done.Wait()

		ref := &vecParts{counts: vec.counts}
		refParter.resolve(ref, nil)
		for r := 0; r < racers; r++ {
			if (errs[r] == nil) != (ref.err == nil) {
				t.Fatalf("vector %v racer %d: err %v, serial reference err %v",
					vec.counts, r, errs[r], ref.err)
			}
			if !reflect.DeepEqual(views[r], ref.parts) {
				t.Fatalf("vector %v racer %d saw partitions %v, serial reference %v",
					vec.counts, r, views[r], ref.parts)
			}
		}
	}
}
