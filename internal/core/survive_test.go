package core

import (
	"errors"
	"reflect"
	"testing"

	"nocvi/internal/model"
	"nocvi/internal/pareto"
	"nocvi/internal/soc"
	"nocvi/internal/specgen"
)

// cutSpec2 is the degenerate single-link-cut instance: two cores in two
// one-core islands. Every candidate of the sweep has one switch per
// island and no intermediate island, so the flow's only island-legal
// path is the single direct link and survivability 1 is structurally
// impossible.
func cutSpec2() *soc.Spec {
	mk := func(id int, name string) soc.Core {
		return soc.Core{ID: soc.CoreID(id), Name: name, Class: soc.ClassCPU,
			AreaMM2: 2, DynPowerW: 0.1, LeakPowerW: 0.02}
	}
	return &soc.Spec{
		Name:  "cut2",
		Cores: []soc.Core{mk(0, "a"), mk(1, "b")},
		Flows: []soc.Flow{{Src: 0, Dst: 1, BandwidthBps: 100e6}},
		Islands: []soc.Island{
			{ID: 0, Name: "va", VoltageV: 1.0},
			{ID: 1, Name: "vb", VoltageV: 1.0, Shutdownable: true},
		},
		IslandOf: []soc.IslandID{0, 1},
	}
}

// TestSurvivabilityInfeasibleCleanError: a spec that cannot host a
// disjoint backup must fail the sweep with the errors.Is-matchable
// infeasibility mark — not a panic, not a mislabeled structural error.
func TestSurvivabilityInfeasibleCleanError(t *testing.T) {
	lib := model.Default65nm()
	spec := cutSpec2()
	// Sanity: feasible without survivability.
	if _, err := Synthesize(spec, lib, Options{}); err != nil {
		t.Fatalf("cut spec infeasible even at k=0: %v", err)
	}
	_, err := Synthesize(spec, lib, Options{Survivability: 1})
	if err == nil {
		t.Fatal("single-link-cut spec synthesized at survivability 1")
	}
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("survivability failure lost the ErrInfeasible mark: %v", err)
	}
}

// TestRelaxLadderOrder pins the degradation ladder, table-driven: the
// rung sequence (cheapest concession first), and which rungs are gated
// by an enabled predicate. Survivability must sit before latency slack:
// redundancy the spec never asked for is conceded before any constraint
// of the spec itself bends.
func TestRelaxLadderOrder(t *testing.T) {
	want := []struct {
		name  string
		gated bool // has an enabled predicate (skipped at k=0)
	}{
		{RelaxSurvivability, true},
		{RelaxIntermediate, false},
		{RelaxLatency, false},
		{RelaxSwitchSize, false},
	}
	if len(ladder) != len(want) {
		t.Fatalf("ladder has %d rungs, want %d", len(ladder), len(want))
	}
	for i, w := range want {
		if ladder[i].name != w.name {
			t.Errorf("rung %d is %q, want %q", i, ladder[i].name, w.name)
		}
		if (ladder[i].enabled != nil) != w.gated {
			t.Errorf("rung %q: gated=%v, want %v", w.name, ladder[i].enabled != nil, w.gated)
		}
	}
	// The survivability gate: skipped at k=0 (it could not change the
	// problem), armed at any k>0.
	if en := ladder[0].enabled; en(Options{}) || en(Options{Survivability: -2}) {
		t.Error("survivability rung enabled at k<=0")
	} else if !en(Options{Survivability: 1}) || !en(Options{Survivability: 3}) {
		t.Error("survivability rung disabled at k>0")
	}
}

// TestRelaxSurvivabilityRungMechanics unit-tests the rung transform:
// one step down, never below zero, spec and library untouched.
func TestRelaxSurvivabilityRungMechanics(t *testing.T) {
	spec := miniSoC()
	lib := model.Default65nm()
	s, l, o := relaxSurvivability(spec, lib, Options{Survivability: 2})
	if o.Survivability != 1 {
		t.Fatalf("k=2 relaxed to %d, want 1", o.Survivability)
	}
	if s != spec || l != lib {
		t.Fatal("survivability rung must not touch spec or library")
	}
	_, _, o2 := relaxSurvivability(spec, lib, o)
	if o2.Survivability != 0 {
		t.Fatalf("k=1 relaxed to %d, want 0", o2.Survivability)
	}
	_, _, o3 := relaxSurvivability(spec, lib, o2)
	if o3.Survivability != 0 {
		t.Fatalf("k=0 rung application moved k to %d", o3.Survivability)
	}
}

// TestRelaxSurvivabilityBeforeLatency drives the ladder end to end on
// the single-link-cut spec at k=1: the survivability rung alone must
// recover it, stamped as the only applied relaxation — the latency and
// switch-size rungs never run, so the spec's constraints stay untouched.
func TestRelaxSurvivabilityBeforeLatency(t *testing.T) {
	lib := model.Default65nm()
	res, err := Synthesize(cutSpec2(), lib, Options{Survivability: 1, Relax: true})
	if err != nil {
		t.Fatalf("ladder failed to step survivability down: %v", err)
	}
	want := []string{RelaxSurvivability}
	if !reflect.DeepEqual(res.Relaxations, want) {
		t.Fatalf("Relaxations = %v, want %v", res.Relaxations, want)
	}
	for i := range res.Points {
		if !reflect.DeepEqual(res.Points[i].Relaxations, want) {
			t.Fatalf("point %d not stamped: %v", i, res.Points[i].Relaxations)
		}
		// The recovered design is a k=0 design: no backups were committed.
		top := res.Points[i].Top
		for ri := range top.Routes {
			if len(top.Routes[ri].Backups) != 0 {
				t.Fatalf("point %d route %d carries backups after the k rung stepped to 0", i, ri)
			}
		}
	}

	// A k=0 infeasibility must skip the survivability rung without
	// stamping it: the existing ladder tests pin the positive ordering,
	// here we pin that k=0 never reports a survivability concession.
	tight := miniSoC()
	for i := range tight.Flows {
		tight.Flows[i].MaxLatencyCycles = 1 // below any route's floor
	}
	res2, err := Synthesize(tight, lib, Options{AllowIntermediate: true, MaxIntermediateSwitches: 2, Relax: true})
	if err != nil {
		// The ladder may legitimately exhaust on this spec; the assertion
		// is only about stamping when it does recover.
		if !errors.Is(err, ErrInfeasible) {
			t.Fatalf("unexpected failure class: %v", err)
		}
		return
	}
	for _, name := range res2.Relaxations {
		if name == RelaxSurvivability {
			t.Fatalf("k=0 run stamped the survivability rung: %v", res2.Relaxations)
		}
	}
}

// TestSynthesizeOracleIdentitySurvivable extends the branch-and-bound
// identity proof to k=1: with backups in the loop (extra leakage, extra
// ports, candidates dying on disjointness), the pruned sweep must still
// return bit-identical winners and fronts to the exhaustive -no-prune
// sweep, at every worker count, in both link-pricing modes — and when a
// spec is infeasible at k=1, both sweeps must agree on that too.
func TestSynthesizeOracleIdentitySurvivable(t *testing.T) {
	lib := model.Default65nm()
	specs := []*soc.Spec{
		mustIslanded(t, "d26_media"),
		mustIslanded(t, "d24_auto"),
		specgen.Random(5, specgen.Options{MaxCores: 24, MaxIslands: 5}),
		cutSpec2(), // infeasible at k=1: agreement on failure is part of the contract
	}
	for _, spec := range specs {
		for _, sk := range []bool{false, true} {
			optNP := boundsOpt(sk)
			optNP.NoPrune = true
			optNP.Survivability = 1
			ref, refErr := Synthesize(spec, lib, optNP)
			if refErr != nil && !errors.Is(refErr, ErrInfeasible) {
				t.Fatalf("%s sk=%v: oracle: %v", spec.Name, sk, refErr)
			}
			var refFront []pareto.Point
			if refErr == nil {
				refFront = frontValues(ref)
			}
			var first *Result
			for _, workers := range []int{1, 4, 13} {
				opt := boundsOpt(sk)
				opt.Workers = workers
				opt.Survivability = 1
				res, err := Synthesize(spec, lib, opt)
				label := spec.Name + " k=1"
				if sk {
					label += " skipannotate"
				}
				if (err == nil) != (refErr == nil) {
					t.Fatalf("%s w=%d: pruned err=%v, oracle err=%v", label, workers, err, refErr)
				}
				if refErr != nil {
					if !errors.Is(err, ErrInfeasible) {
						t.Fatalf("%s w=%d: infeasibility mark lost: %v", label, workers, err)
					}
					continue
				}
				assertSameWinners(t, label, workers, ref, refFront, res)
				if first == nil {
					first = res
					continue
				}
				assertSamePoints(t, label, workers, first, res)
			}
		}
	}
}
