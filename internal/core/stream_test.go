package core

import (
	"context"
	"fmt"
	"os"
	"reflect"
	"sort"
	"testing"
	"time"

	"nocvi/internal/model"
	"nocvi/internal/soc"
	"nocvi/internal/specgen"
)

// oracleSweep enumerates the streaming sweep's space with plain nested
// loops — island 0 slowest, mid fastest, an incrementing counter as the
// index — and evaluates every candidate through fresh build contexts.
// It shares no code with sweepSpace.decode or the collectors, so it is
// an independent check of the enumeration geometry and the reductions.
func oracleSweep(t *testing.T, spec *soc.Spec, lib *model.Library, opt Options, width int) (feasible []SweepPoint, evaluated uint64) {
	t.Helper()
	env, parter, _ := newTestSweep(t, spec, lib, opt)
	freqs, maxSizes, err := IslandClocks(spec, lib)
	_ = freqs
	if err != nil {
		t.Fatal(err)
	}
	nIsl := len(spec.Islands)
	lo := make([]int, nIsl)
	hi := make([]int, nIsl)
	maxCores := 0
	for j := 0; j < nIsl; j++ {
		n := len(spec.CoresIn(soc.IslandID(j)))
		usable := maxSizes[j] - 1
		lo[j] = (n + usable - 1) / usable
		if lo[j] < 1 {
			lo[j] = 1
		}
		hi[j] = n
		if hi[j] < lo[j] {
			hi[j] = lo[j]
		}
		if width > 0 && lo[j]+width-1 < hi[j] {
			hi[j] = lo[j] + width - 1
		}
		if n > maxCores {
			maxCores = n
		}
	}
	maxMid := opt.MaxIntermediateSwitches
	if maxMid <= 0 {
		maxMid = maxCores
	}
	if !opt.AllowIntermediate {
		maxMid = 0
	}

	idx := uint64(0)
	counts := make([]int, nIsl)
	parts := make([][]int, nIsl)
	var walk func(j int)
	walk = func(j int) {
		if j == nIsl {
			for mid := 0; mid <= maxMid; mid++ {
				ok := true
				for i := 0; i < nIsl; i++ {
					p, err := parter.caches[i].Partition(counts[i])
					if err != nil {
						ok = false
						break
					}
					parts[i] = p
				}
				if ok {
					dp, err := buildPoint(newBuildContext(env), counts, parts, mid)
					if err == nil {
						feasible = append(feasible, SweepPoint{
							Index:          idx,
							SwitchCounts:   append([]int(nil), counts...),
							MidSwitches:    mid,
							PowerW:         dp.NoCPower.DynW(),
							LatencyCycles:  dp.MeanLatencyCycles,
							AreaMM2:        dp.NoCAreaMM2,
							WireViolations: dp.WireViolations,
						})
					}
				}
				idx++
			}
			return
		}
		for k := lo[j]; k <= hi[j]; k++ {
			counts[j] = k
			walk(j + 1)
		}
	}
	walk(0)
	return feasible, idx
}

// oracleFront is the quadratic-time Pareto front of (power, latency)
// minimization with equal pairs collapsed to the lowest index, sorted
// the way SweepResult.Front is.
func oracleFront(pts []SweepPoint) []SweepPoint {
	var out []SweepPoint
	for i := range pts {
		p := &pts[i]
		keep := true
		for k := range pts {
			if k == i {
				continue
			}
			q := &pts[k]
			if q.PowerW <= p.PowerW && q.LatencyCycles <= p.LatencyCycles &&
				(q.PowerW < p.PowerW || q.LatencyCycles < p.LatencyCycles) {
				keep = false
				break
			}
			if q.PowerW == p.PowerW && q.LatencyCycles == p.LatencyCycles && q.Index < p.Index {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, *p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PowerW != out[j].PowerW {
			return out[i].PowerW < out[j].PowerW
		}
		return out[i].LatencyCycles < out[j].LatencyCycles
	})
	return out
}

// TestSweepMatchesBruteForce checks the streaming sweep — index decode,
// sharded claiming, per-worker collectors, the merge — against a plain
// nested-loop enumeration that shares none of that machinery.
func TestSweepMatchesBruteForce(t *testing.T) {
	spec := miniSoC()
	lib := model.Default65nm()
	// NoPrune: the oracle enumerates and evaluates everything, so the
	// counter and Feasible comparisons are only meaningful unpruned. The
	// pruned sweep is checked against the same oracle winners below.
	opt := Options{AllowIntermediate: true, MaxIntermediateSwitches: 2, Workers: 4, NoPrune: true}

	feasible, evaluated := oracleSweep(t, spec, lib, opt, 0)
	if len(feasible) == 0 {
		t.Fatal("oracle found nothing feasible; the test spec is broken")
	}

	res, err := SynthesizeSweep(context.Background(), spec, lib, opt, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Size != evaluated || res.Explored != evaluated {
		t.Fatalf("size/explored = %d/%d, oracle evaluated %d", res.Size, res.Explored, evaluated)
	}
	if res.Feasible != uint64(len(feasible)) {
		t.Fatalf("feasible = %d, oracle found %d", res.Feasible, len(feasible))
	}
	if res.PruneStats != (PruneStats{Evaluated: int(evaluated), Feasible: len(feasible)}) {
		t.Fatalf("NoPrune sweep reported pruning: %+v", res.PruneStats)
	}
	if res.StopReason != StopComplete || res.Truncated || res.Partial {
		t.Fatalf("stop metadata wrong: %q truncated=%v partial=%v", res.StopReason, res.Truncated, res.Partial)
	}

	wantBestP := &feasible[0]
	wantBestL := &feasible[0]
	for i := range feasible {
		if sweepBetter(&feasible[i], wantBestP, powerOf) {
			wantBestP = &feasible[i]
		}
		if sweepBetter(&feasible[i], wantBestL, latencyOf) {
			wantBestL = &feasible[i]
		}
	}
	if !reflect.DeepEqual(res.BestPowerPoint, wantBestP) {
		t.Fatalf("best power point:\n got %+v\nwant %+v", res.BestPowerPoint, wantBestP)
	}
	if !reflect.DeepEqual(res.BestLatencyPoint, wantBestL) {
		t.Fatalf("best latency point:\n got %+v\nwant %+v", res.BestLatencyPoint, wantBestL)
	}
	if !reflect.DeepEqual(res.Front, oracleFront(feasible)) {
		t.Fatalf("front:\n got %+v\nwant %+v", res.Front, oracleFront(feasible))
	}
	// The rebuilt design points must match their summaries.
	if res.BestPower == nil ||
		!reflect.DeepEqual(res.BestPower.SwitchCounts, wantBestP.SwitchCounts) ||
		res.BestPower.MidSwitches != wantBestP.MidSwitches ||
		res.BestPower.NoCPower.DynW() != wantBestP.PowerW {
		t.Fatalf("rebuilt BestPower does not match its summary: %+v vs %+v", res.BestPower, wantBestP)
	}
	if res.BestLatency == nil || res.BestLatency.MeanLatencyCycles != wantBestL.LatencyCycles {
		t.Fatalf("rebuilt BestLatency does not match its summary")
	}

	// The branch-and-bound sweep must reproduce the oracle's winners and
	// front byte-for-byte while still accounting for every index.
	opt.NoPrune = false
	pruned, err := SynthesizeSweep(context.Background(), spec, lib, opt, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Explored != evaluated {
		t.Fatalf("pruned sweep explored %d of %d", pruned.Explored, evaluated)
	}
	if !reflect.DeepEqual(pruned.BestPowerPoint, wantBestP) || !reflect.DeepEqual(pruned.BestLatencyPoint, wantBestL) {
		t.Fatalf("pruned argmins differ from oracle:\n power %+v vs %+v\n latency %+v vs %+v",
			pruned.BestPowerPoint, wantBestP, pruned.BestLatencyPoint, wantBestL)
	}
	if !reflect.DeepEqual(pruned.Front, oracleFront(feasible)) {
		t.Fatalf("pruned front differs from oracle:\n got %+v\nwant %+v", pruned.Front, oracleFront(feasible))
	}
	if !reflect.DeepEqual(pruned.BestPower, res.BestPower) || !reflect.DeepEqual(pruned.BestLatency, res.BestLatency) {
		t.Fatal("pruned rebuilt winners differ from the unpruned sweep's")
	}
	s := pruned.PruneStats
	if s.Evaluated+s.BoundPruned+s.StagePruned != int(evaluated) {
		t.Fatalf("three-way split does not cover the space: %+v over %d", s, evaluated)
	}
	if pruned.Feasible != 0 || s.Feasible == 0 {
		t.Fatalf("pruned feasibility accounting wrong: Feasible=%d PruneStats=%+v", pruned.Feasible, s)
	}
}

// sweepOnce runs SynthesizeSweep and fails the test on error.
func sweepOnce(t *testing.T, spec *soc.Spec, lib *model.Library, opt Options, sw SweepOptions) *SweepResult {
	t.Helper()
	res, err := SynthesizeSweep(context.Background(), spec, lib, opt, sw)
	if err != nil {
		t.Fatalf("workers=%d: %v", opt.Workers, err)
	}
	return res
}

// sameSweep asserts two sweep results are deeply identical apart from
// pointer identity and PruneStats, which (like CacheStats) is run
// bookkeeping: the counter split depends on incumbent timing and is
// explicitly outside the cross-worker identity contract.
func sameSweep(t *testing.T, label string, a, b *SweepResult) {
	t.Helper()
	ca, cb := *a, *b
	ca.PruneStats, cb.PruneStats = PruneStats{}, PruneStats{}
	if !reflect.DeepEqual(&ca, &cb) {
		t.Fatalf("%s: sweep results differ:\n%+v\nvs\n%+v", label, a, b)
	}
}

// TestSweepIdenticalAcrossWorkers is the streaming sweep's determinism
// contract: every worker count — including workers far in excess of the
// candidate count — produces a byte-identical SweepResult, with and
// without a Limit.
func TestSweepIdenticalAcrossWorkers(t *testing.T) {
	lib := model.Default65nm()
	cases := []struct {
		spec *soc.Spec
		sws  []SweepOptions
	}{
		{miniSoC(), []SweepOptions{{}, {Limit: 17}, {WidthPerIsland: 2}}},
		// The 40-core space is width-capped: full-width would be minutes
		// of sweep per worker count, which belongs to the env-gated scale
		// proof, not tier-1.
		{specgen.Large(3, 40, 6), []SweepOptions{{WidthPerIsland: 2}, {WidthPerIsland: 3, Limit: 100}}},
	}
	for _, tc := range cases {
		spec := tc.spec
		for _, sw := range tc.sws {
			// Both modes carry the contract: NoPrune is the seed path, the
			// default is the branch-and-bound path whose worker-side prune
			// decisions race against incumbent publication and must still
			// converge on one result.
			for _, noPrune := range []bool{false, true} {
				opt := Options{AllowIntermediate: spec.Name == "mini8", MaxIntermediateSwitches: 2,
					Workers: 1, NoPrune: noPrune}
				base := sweepOnce(t, spec, lib, opt, sw)
				for _, workers := range []int{2, 3, 8, 64} {
					opt.Workers = workers
					got := sweepOnce(t, spec, lib, opt, sw)
					sameSweep(t, fmt.Sprintf("%s limit=%d width=%d noprune=%v workers=%d",
						spec.Name, sw.Limit, sw.WidthPerIsland, noPrune, workers), base, got)
				}
				if sw.Limit > 0 {
					if !base.Truncated || base.Explored != sw.Limit || base.StopReason != StopTruncated {
						t.Fatalf("%s: limited sweep metadata wrong: %+v", spec.Name, base)
					}
				}
			}
		}
	}
}

// TestSweepSinglePointSpace pins the degenerate shape: a space with
// exactly one candidate (every island pinned at width 1, no mid sweep)
// still completes, finds it, and is identical at any worker count.
func TestSweepSinglePointSpace(t *testing.T) {
	spec := miniSoC()
	lib := model.Default65nm()
	opt := Options{Workers: 1}
	sw := SweepOptions{WidthPerIsland: 1}
	base := sweepOnce(t, spec, lib, opt, sw)
	if base.Size != 1 || base.Explored != 1 {
		t.Fatalf("want a one-point space, got size=%d explored=%d", base.Size, base.Explored)
	}
	if base.PruneStats.Feasible == 1 && len(base.Front) != 1 {
		t.Fatalf("one feasible point must be the whole front, got %d", len(base.Front))
	}
	opt.Workers = 32
	sameSweep(t, "single-point workers=32", base, sweepOnce(t, spec, lib, opt, sw))
}

// TestSweepCancellation stops a sweep mid-flight and checks it degrades
// to an honestly-labeled partial result instead of failing.
func TestSweepCancellation(t *testing.T) {
	spec := specgen.Large(3, 40, 6)
	lib := model.Default65nm()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	res, err := SynthesizeSweep(ctx, spec, lib, Options{Workers: 4}, SweepOptions{})
	if err != nil {
		t.Fatalf("canceled sweep must return a partial result, got %v", err)
	}
	if res.Explored >= res.Size {
		t.Skip("sweep finished before the cancel landed")
	}
	if !res.Partial || res.StopReason != StopCanceled {
		t.Fatalf("partial metadata wrong: partial=%v reason=%q", res.Partial, res.StopReason)
	}
}

// TestSweepPanicsIdenticalAcrossWorkers injects panics into a fixed
// subset of candidates and checks the error channel of the streaming
// sweep: bounded recording, true total count, smallest-index selection,
// all byte-identical across worker counts.
func TestSweepPanicsIdenticalAcrossWorkers(t *testing.T) {
	spec := miniSoC()
	lib := model.Default65nm()
	withEvalHook(t, func(counts []int, mid int) {
		if mid == 1 {
			panic("injected: sweep candidate blew up")
		}
	})
	// NoPrune: whether a panicking candidate gets pruned before it can
	// panic depends on incumbent timing, so the error channel is only
	// schedule-independent on the unpruned path (see SweepResult.Errors).
	opt := Options{AllowIntermediate: true, MaxIntermediateSwitches: 2, Workers: 1, NoPrune: true}
	sw := SweepOptions{MaxErrors: 3}
	base := sweepOnce(t, spec, lib, opt, sw)
	if base.ErrorCount == 0 {
		t.Fatal("no injected panic was recorded")
	}
	if len(base.Errors) > 3 {
		t.Fatalf("error cap not honored: %d recorded", len(base.Errors))
	}
	if base.ErrorCount > 3 && len(base.Errors) != 3 {
		t.Fatalf("want the 3 smallest-index errors kept, got %d of %d", len(base.Errors), base.ErrorCount)
	}
	for _, e := range base.Errors {
		if e.MidSwitches != 1 {
			t.Fatalf("recorded error for mid=%d, only mid=1 panics were injected", e.MidSwitches)
		}
		if e.Stack == "" || e.Panic == "" {
			t.Fatalf("error not normalized: %+v", e)
		}
	}
	for _, workers := range []int{2, 8} {
		opt.Workers = workers
		sameSweep(t, fmt.Sprintf("panics workers=%d", workers), base, sweepOnce(t, spec, lib, opt, sw))
	}
}

// TestSweepMillionPoints is the scale proof: a 100+-core, 10+-island
// SoC whose enumerated cross product exceeds 2^20 design points, swept
// to completion under bounded memory at two worker counts with
// byte-identical results. It runs only when NOCVI_BIGSWEEP=1 — the full
// double sweep is minutes of CPU — but the space geometry (size,
// island/core floors) is asserted unconditionally below in
// TestSweepMillionPointGeometry.
func TestSweepMillionPoints(t *testing.T) {
	if os.Getenv("NOCVI_BIGSWEEP") == "" {
		t.Skip("set NOCVI_BIGSWEEP=1 to run the million-point sweep proof")
	}
	spec, sw := millionPointSpace()
	lib := model.Default65nm()
	opt := Options{Workers: 1}
	base := sweepOnce(t, spec, lib, opt, sw)
	if base.Size < 1<<20 {
		t.Fatalf("space has %d points, want >= 2^20", base.Size)
	}
	if base.Explored != base.Size || base.StopReason != StopComplete {
		t.Fatalf("sweep did not complete: %+v", base)
	}
	if base.BestPowerPoint == nil {
		t.Fatal("million-point space found nothing feasible")
	}
	opt.Workers = 4
	sameSweep(t, "million-point workers=4", base, sweepOnce(t, spec, lib, opt, sw))

	// The scale leg of the pruning oracle: an unpruned sweep of the same
	// 2^20-point space must land on exactly the winners the pruned runs
	// reported.
	opt.NoPrune = true
	plain := sweepOnce(t, spec, lib, opt, sw)
	if !reflect.DeepEqual(plain.BestPowerPoint, base.BestPowerPoint) ||
		!reflect.DeepEqual(plain.BestLatencyPoint, base.BestLatencyPoint) ||
		!reflect.DeepEqual(plain.Front, base.Front) ||
		!reflect.DeepEqual(plain.BestPower, base.BestPower) ||
		!reflect.DeepEqual(plain.BestLatency, base.BestLatency) {
		t.Fatal("million-point winners differ between pruned and unpruned sweeps")
	}
}

// millionPointSpace is the shared geometry of the scale proof and its
// always-run sanity check: a 104-core, 10-island SoC swept at width 4
// (no intermediate island). Every island contributes the full width,
// so the cross product is exactly 4^10 = 2^20 design points; seed 7
// yields a space where both feasible builds and routing-infeasible
// candidates occur, covering both per-point paths at scale.
func millionPointSpace() (*soc.Spec, SweepOptions) {
	return specgen.Large(7, 104, 10), SweepOptions{WidthPerIsland: 4}
}

// TestSweepMillionPointGeometry asserts — on every test run, not just
// under NOCVI_BIGSWEEP — that the scale proof's space really is what
// the name claims: 100+ cores, 10+ islands, >= 2^20 enumerable points,
// and a feasible evaluated prefix.
func TestSweepMillionPointGeometry(t *testing.T) {
	spec, sw := millionPointSpace()
	if len(spec.Cores) < 100 || len(spec.Islands) < 10 {
		t.Fatalf("proof SoC too small: %d cores, %d islands", len(spec.Cores), len(spec.Islands))
	}
	lib := model.Default65nm()
	// The low-index corner of the space (few switches everywhere) is
	// routing-infeasible for this seed; feasibility starts within the
	// first couple thousand candidates.
	sw.Limit = 2000
	res, err := SynthesizeSweep(context.Background(), spec, lib, Options{Workers: 4}, sw)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size < 1<<20 {
		t.Fatalf("space has %d points, want >= 2^20", res.Size)
	}
	if res.Explored != 2000 || !res.Truncated {
		t.Fatalf("limited probe wrong: explored=%d truncated=%v", res.Explored, res.Truncated)
	}
	if res.BestPowerPoint == nil {
		t.Fatal("no feasible point in the first 2000 candidates; proof space is degenerate")
	}
}
