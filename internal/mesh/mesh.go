// Package mesh implements the classic alternative the paper argues
// against: mapping the application onto a regular 2D mesh NoC ([9]-[11]
// in the paper — energy-aware mapping of cores onto mesh tiles with
// dimension-ordered routing). It exists as a baseline: the mesh ignores
// voltage islands, so its XY routes freely traverse tiles that belong
// to shut-downable islands — the experiment quantifies how many flows
// would be severed by island shutdown, which is precisely the problem
// the paper's custom synthesis removes by construction.
//
// The mapper minimizes Σ bandwidth × hop-distance with a greedy
// placement followed by pairwise-swap refinement (the standard NMAP
// recipe); routing is XY (deadlock free on a mesh); only links that
// actually carry traffic are instantiated so the power comparison
// against custom topologies is fair.
package mesh

import (
	"fmt"
	"math"
	"sort"

	"nocvi/internal/model"
	"nocvi/internal/soc"
	"nocvi/internal/topology"
)

// Options configures the mesh baseline.
type Options struct {
	// Width/Height of the tile grid; zero derives a near-square grid
	// covering all cores.
	Width, Height int
}

// Result is the mesh baseline outcome with its rule violations — the
// mesh is *expected* to break the properties custom synthesis
// guarantees; the counts quantify by how much.
type Result struct {
	Top *topology.Topology

	// TileOf maps each core to its mesh tile index (y*Width+x).
	TileOf []int
	Width  int
	Height int

	// LatencyViolations counts flows whose zero-load latency exceeds
	// their constraint on the mesh.
	LatencyViolations int

	// ShutdownViolations counts (island, flow) pairs where gating a
	// shut-downable island would sever a flow between two other
	// islands — the paper's core problem.
	ShutdownViolations int

	// OverloadedLinks counts links whose traffic exceeds capacity at
	// the mesh clock.
	OverloadedLinks int
}

// Synthesize maps the spec onto a mesh and routes all flows XY.
func Synthesize(spec *soc.Spec, lib *model.Library, opt Options) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("mesh: %w", err)
	}
	n := len(spec.Cores)
	w, h := opt.Width, opt.Height
	if w <= 0 || h <= 0 {
		w = int(math.Ceil(math.Sqrt(float64(n))))
		h = (n + w - 1) / w
	}
	if w*h < n {
		return nil, fmt.Errorf("mesh: %dx%d grid cannot hold %d cores", w, h, n)
	}

	tileOf := mapCores(spec, w, h)

	// The mesh is one synchronous domain: its clock must sustain the
	// heaviest NI link, like any island; switches are 5-port (4
	// neighbours + NI), which bounds the feasible clock.
	egress, ingress := spec.AggregateCoreBandwidth()
	var peak float64
	for c := range spec.Cores {
		peak = math.Max(peak, math.Max(egress[c], ingress[c]))
	}
	freq := lib.MinFreqForBandwidth(peak)
	if lib.SwitchMaxFreqHz(6) < freq {
		return nil, fmt.Errorf("mesh: %d MHz exceeds a 6-port mesh router's reach", int(freq/1e6))
	}

	top := topology.New(spec, lib)
	for j := range spec.Islands {
		top.SetIslandFreq(soc.IslandID(j), freq)
	}
	// One switch per occupied tile... the mesh also needs switches on
	// pass-through tiles. Instantiate a switch for every tile that
	// hosts a core or relays traffic; to know which, compute XY paths
	// on the grid first.
	type xy struct{ x, y int }
	pos := func(tile int) xy { return xy{tile % w, tile / w} }
	pathTiles := func(a, b int) []int {
		pa, pb := pos(a), pos(b)
		var tiles []int
		x, y := pa.x, pa.y
		tiles = append(tiles, y*w+x)
		for x != pb.x {
			if x < pb.x {
				x++
			} else {
				x--
			}
			tiles = append(tiles, y*w+x)
		}
		for y != pb.y {
			if y < pb.y {
				y++
			} else {
				y--
			}
			tiles = append(tiles, y*w+x)
		}
		return tiles
	}

	needed := make([]bool, w*h)
	for c := range spec.Cores {
		needed[tileOf[c]] = true
	}
	for _, f := range spec.Flows {
		for _, t := range pathTiles(tileOf[f.Src], tileOf[f.Dst]) {
			needed[t] = true
		}
	}

	// A mesh switch inherits the island of its core, or of the nearest
	// core-by-tile for relay-only tiles (the mesh does not respect
	// islands — that is the point — but every switch physically sits in
	// some power domain).
	swAt := make([]topology.SwitchID, w*h)
	for i := range swAt {
		swAt[i] = -1
	}
	islandOfTile := func(tile int) soc.IslandID {
		best, bestD := soc.IslandID(0), math.MaxInt32
		pt := pos(tile)
		for c := range spec.Cores {
			pc := pos(tileOf[c])
			d := abs(pc.x-pt.x) + abs(pc.y-pt.y)
			if d < bestD {
				bestD = d
				best = spec.IslandOf[c]
			}
		}
		return best
	}
	coreAtTile := map[int]soc.CoreID{}
	for c := range spec.Cores {
		coreAtTile[tileOf[c]] = soc.CoreID(c)
	}
	for t := 0; t < w*h; t++ {
		if !needed[t] {
			continue
		}
		var isl soc.IslandID
		if c, ok := coreAtTile[t]; ok {
			isl = spec.IslandOf[c]
		} else {
			isl = islandOfTile(t)
		}
		swAt[t] = top.AddSwitch(isl, false)
	}
	for c := range spec.Cores {
		if err := top.AttachCore(soc.CoreID(c), swAt[tileOf[c]]); err != nil {
			return nil, err
		}
	}

	res := &Result{Top: top, TileOf: tileOf, Width: w, Height: h}
	for _, f := range spec.Flows {
		tiles := pathTiles(tileOf[f.Src], tileOf[f.Dst])
		sws := make([]topology.SwitchID, len(tiles))
		for i, t := range tiles {
			sws[i] = swAt[t]
		}
		links := make([]topology.LinkID, 0, len(sws)-1)
		for i := 1; i < len(sws); i++ {
			lid, ok := top.FindLink(sws[i-1], sws[i])
			if !ok {
				var err error
				lid, err = top.AddLink(sws[i-1], sws[i])
				if err != nil {
					return nil, err
				}
			}
			links = append(links, lid)
		}
		r := topology.Route{Flow: f, Switches: sws, Links: links}
		if err := top.AddRoute(r); err != nil {
			return nil, err
		}
		if f.MaxLatencyCycles > 0 && top.ZeroLoadLatencyCycles(&r) > f.MaxLatencyCycles {
			res.LatencyViolations++
		}
	}

	for _, l := range top.Links {
		if l.TrafficBps > l.CapacityBps*(1+1e-9) {
			res.OverloadedLinks++
		}
	}

	// Count the shutdown-safety violations: for every shut-downable
	// island X, flows between two other islands whose route enters X.
	for i, isl := range spec.Islands {
		if !isl.Shutdownable {
			continue
		}
		for ri := range top.Routes {
			r := &top.Routes[ri]
			srcI, dstI := spec.IslandOf[r.Flow.Src], spec.IslandOf[r.Flow.Dst]
			if srcI == soc.IslandID(i) || dstI == soc.IslandID(i) {
				continue
			}
			for _, sw := range r.Switches {
				if top.Switches[sw].Island == soc.IslandID(i) {
					res.ShutdownViolations++
					break
				}
			}
		}
	}
	return res, nil
}

// mapCores assigns cores to tiles minimizing Σ bw × Manhattan distance:
// greedy seeding from the heaviest communicator outward, then pairwise
// swap refinement to a local optimum. Deterministic.
func mapCores(spec *soc.Spec, w, h int) []int {
	n := len(spec.Cores)
	bw := make([][]float64, n)
	for i := range bw {
		bw[i] = make([]float64, n)
	}
	total := make([]float64, n)
	for _, f := range spec.Flows {
		bw[f.Src][f.Dst] += f.BandwidthBps
		bw[f.Dst][f.Src] += f.BandwidthBps
		total[f.Src] += f.BandwidthBps
		total[f.Dst] += f.BandwidthBps
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return total[order[a]] > total[order[b]] })

	dist := func(a, b int) int {
		return abs(a%w-b%w) + abs(a/w-b/w)
	}
	tileOf := make([]int, n)
	for i := range tileOf {
		tileOf[i] = -1
	}
	used := make([]bool, w*h)
	// Seed the heaviest core at the grid center.
	center := (h/2)*w + w/2
	tileOf[order[0]] = center
	used[center] = true
	for _, c := range order[1:] {
		bestTile, bestCost := -1, math.Inf(1)
		for t := 0; t < w*h; t++ {
			if used[t] {
				continue
			}
			cost := 0.0
			for o := 0; o < n; o++ {
				if tileOf[o] >= 0 && bw[c][o] > 0 {
					cost += bw[c][o] * float64(dist(t, tileOf[o]))
				}
			}
			if cost < bestCost {
				bestCost = cost
				bestTile = t
			}
		}
		tileOf[c] = bestTile
		used[bestTile] = true
	}

	// Pairwise swap refinement.
	objective := func() float64 {
		var sum float64
		for _, f := range spec.Flows {
			sum += f.BandwidthBps * float64(dist(tileOf[f.Src], tileOf[f.Dst]))
		}
		return sum
	}
	cur := objective()
	for pass := 0; pass < 10; pass++ {
		improved := false
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				tileOf[a], tileOf[b] = tileOf[b], tileOf[a]
				if c := objective(); c < cur-1e-9 {
					cur = c
					improved = true
				} else {
					tileOf[a], tileOf[b] = tileOf[b], tileOf[a]
				}
			}
		}
		if !improved {
			break
		}
	}
	return tileOf
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
