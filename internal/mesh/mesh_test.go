package mesh

import (
	"testing"

	"nocvi/internal/bench"
	"nocvi/internal/deadlock"
	"nocvi/internal/model"
	"nocvi/internal/power"
	"nocvi/internal/soc"
	"nocvi/internal/viplace"
)

func d26(t *testing.T) *soc.Spec {
	t.Helper()
	spec, err := bench.D26Islands(viplace.MethodLogical, 6)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestSynthesizeMesh(t *testing.T) {
	spec := d26(t)
	res, err := Synthesize(spec, model.Default65nm(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Width*res.Height < len(spec.Cores) {
		t.Fatalf("grid %dx%d too small", res.Width, res.Height)
	}
	// Every core on a distinct tile.
	seen := map[int]bool{}
	for c, tile := range res.TileOf {
		if tile < 0 || tile >= res.Width*res.Height {
			t.Fatalf("core %d on tile %d out of grid", c, tile)
		}
		if seen[tile] {
			t.Fatalf("two cores share tile %d", tile)
		}
		seen[tile] = true
	}
	// All flows routed.
	if len(res.Top.Routes) != len(spec.Flows) {
		t.Fatalf("routed %d of %d flows", len(res.Top.Routes), len(spec.Flows))
	}
	// XY routing on a mesh is deadlock free.
	if err := deadlock.Check(res.Top); err != nil {
		t.Fatal(err)
	}
	// Route shapes: consecutive switches differ by exactly one grid hop.
	for _, r := range res.Top.Routes {
		if len(r.Switches) < 1 {
			t.Fatal("empty route")
		}
	}
}

// The point of the baseline: the mesh violates island-shutdown safety
// on a multi-island SoC, while custom synthesis never does.
func TestMeshViolatesShutdownSafety(t *testing.T) {
	spec := d26(t)
	res, err := Synthesize(spec, model.Default65nm(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ShutdownViolations == 0 {
		t.Fatal("expected the island-oblivious mesh to route through shutdownable islands")
	}
	// And the structural validator agrees.
	if err := res.Top.ValidateShutdownSafe(); err == nil {
		t.Fatal("ValidateShutdownSafe passed a violating mesh?!")
	}
}

func TestMeshPowerComparable(t *testing.T) {
	spec := d26(t)
	res, err := Synthesize(spec, model.Default65nm(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := power.NoC(res.Top)
	if b.DynW() <= 0 {
		t.Fatal("mesh has no power")
	}
	// Same order of magnitude as the custom design (tens of mW).
	if b.DynW() > 1 || b.DynW() < 1e-3 {
		t.Fatalf("mesh power %g W implausible", b.DynW())
	}
}

func TestMeshMappingQuality(t *testing.T) {
	spec := d26(t)
	res, err := Synthesize(spec, model.Default65nm(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The heaviest-communicating pair (cpu0 <-> l2c) must be adjacent
	// after refinement.
	cpu0, _ := spec.CoreByName("cpu0")
	l2c, _ := spec.CoreByName("l2c")
	ta, tb := res.TileOf[cpu0.ID], res.TileOf[l2c.ID]
	d := abs(ta%res.Width-tb%res.Width) + abs(ta/res.Width-tb/res.Width)
	if d > 1 {
		t.Fatalf("heaviest pair %d tiles apart", d)
	}
}

func TestMeshExplicitGrid(t *testing.T) {
	spec := d26(t)
	res, err := Synthesize(spec, model.Default65nm(), Options{Width: 13, Height: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Width != 13 || res.Height != 2 {
		t.Fatal("explicit grid ignored")
	}
	if _, err := Synthesize(spec, model.Default65nm(), Options{Width: 3, Height: 3}); err == nil {
		t.Fatal("undersized grid accepted")
	}
}

func TestMeshDeterministic(t *testing.T) {
	spec := d26(t)
	a, err := Synthesize(spec, model.Default65nm(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(spec, model.Default65nm(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for c := range a.TileOf {
		if a.TileOf[c] != b.TileOf[c] {
			t.Fatalf("mapping differs at core %d", c)
		}
	}
}

func TestMeshRejectsInvalidSpec(t *testing.T) {
	spec := d26(t)
	spec.Flows[0].BandwidthBps = -5
	if _, err := Synthesize(spec, model.Default65nm(), Options{}); err == nil {
		t.Fatal("invalid spec accepted")
	}
}
