package mesh_test

import (
	"testing"

	"nocvi/internal/bench"
	"nocvi/internal/deadlock"
	"nocvi/internal/mesh"
	"nocvi/internal/model"
	"nocvi/internal/netlist"
	"nocvi/internal/sim"
	"nocvi/internal/specgen"
	"nocvi/internal/viplace"
	"nocvi/internal/wormhole"
)

// XY routing on a mesh is deadlock free; the flit-level engine must
// drain the mesh baseline completely.
func TestMeshDrainsInWormholeEngine(t *testing.T) {
	spec, err := bench.D26Islands(viplace.MethodLogical, 6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mesh.Synthesize(spec, model.Default65nm(), mesh.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w, err := wormhole.Run(res.Top, wormhole.Config{PacketsPerFlow: 4, DeadlockWindow: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if w.Deadlocked || w.Delivered != w.Injected {
		t.Fatalf("XY mesh stalled: %+v", w)
	}
}

// The queueing simulator also delivers everything on the mesh (no
// shutdown mask — the mesh does not support one, which is the point).
func TestMeshDeliversInQueueSim(t *testing.T) {
	spec, err := bench.D26Islands(viplace.MethodLogical, 6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mesh.Synthesize(spec, model.Default65nm(), mesh.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := sim.Run(res.Top, sim.Config{DurationNs: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if r.Deliver != r.Sent || r.Sent == 0 {
		t.Fatalf("mesh delivery %d/%d", r.Deliver, r.Sent)
	}
}

// Property sweep: the mesh mapper + XY router handle arbitrary valid
// SoCs — every flow routed, CDG acyclic, netlist generable.
func TestMeshRandomSpecs(t *testing.T) {
	lib := model.Default65nm()
	built := 0
	for seed := int64(300); seed < 330; seed++ {
		spec := specgen.Random(seed, specgen.Options{MaxCores: 14, MaxFlowMBps: 120})
		res, err := mesh.Synthesize(spec, lib, mesh.Options{})
		if err != nil {
			continue // e.g. clock beyond a 6-port router: legitimate
		}
		built++
		if len(res.Top.Routes) != len(spec.Flows) {
			t.Fatalf("seed %d: %d routes for %d flows", seed, len(res.Top.Routes), len(spec.Flows))
		}
		if err := deadlock.Check(res.Top); err != nil {
			t.Fatalf("seed %d: XY mesh claims deadlock: %v", seed, err)
		}
		if _, err := netlist.Generate(res.Top, netlist.Config{}); err != nil {
			t.Fatalf("seed %d: netlist: %v", seed, err)
		}
	}
	if built < 20 {
		t.Fatalf("only %d/30 random meshes built", built)
	}
}
