// Package floorplan places a synthesized design on the die: voltage
// islands become contiguous rectangular regions (a slicing floorplan by
// recursive area bisection), cores occupy grid cells inside their
// island's region grouped by the switch they attach to, and switches sit
// at the centroid of their clients. From the placement the package
// derives the wire lengths the paper's step "the NoC components are
// inserted on the floorplan and the wire lengths, wire power and delay
// are calculated" needs: NI↔switch stubs and inter-switch link spans,
// all in Manhattan geometry.
//
// The placement is fully deterministic — identical inputs give identical
// floorplans — which keeps experiment results reproducible.
package floorplan

import (
	"fmt"
	"math"
	"sort"

	"nocvi/internal/soc"
	"nocvi/internal/topology"
)

// Point is a position on the die in millimetres.
type Point struct{ X, Y float64 }

// Rect is an axis-aligned rectangle on the die (origin at lower-left).
type Rect struct{ X, Y, W, H float64 }

// Center returns the rectangle's center point.
func (r Rect) Center() Point { return Point{r.X + r.W/2, r.Y + r.H/2} }

// Area returns the rectangle area in mm².
func (r Rect) Area() float64 { return r.W * r.H }

// Contains reports whether p lies inside r (inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.X-1e-9 && p.X <= r.X+r.W+1e-9 && p.Y >= r.Y-1e-9 && p.Y <= r.Y+r.H+1e-9
}

// Manhattan returns the L1 distance between two points.
func Manhattan(a, b Point) float64 {
	return math.Abs(a.X-b.X) + math.Abs(a.Y-b.Y)
}

// Options tunes the floorplanner.
type Options struct {
	// WhitespaceFrac is the fractional area added to every island for
	// routing/power-grid whitespace. Zero selects 0.15.
	WhitespaceFrac float64

	// Annotate controls whether Place writes the computed link lengths
	// back into the topology's Link.LengthMM fields. Default true-like:
	// set SkipAnnotate to suppress.
	SkipAnnotate bool
}

func (o Options) whitespace() float64 {
	if o.WhitespaceFrac <= 0 {
		return 0.15
	}
	return o.WhitespaceFrac
}

// Placement is the result of floorplanning one topology.
type Placement struct {
	Die         Rect
	IslandRects []Rect  // indexed by island ID (incl. intermediate island)
	CorePos     []Point // indexed by core ID
	SwitchPos   []Point // indexed by switch ID
	NILengthMM  []float64
	// LinkLengthMM is indexed by link ID, parallel to top.Links.
	LinkLengthMM []float64
}

// Scratch holds the floorplanner's reusable working buffers: island
// areas, the slicing order, the per-island core gather/sort buffer and
// the centroid point accumulator. A zero Scratch is ready to use; one
// Scratch must not be used by two goroutines concurrently. Sweeps that
// floorplan many candidate topologies reuse one Scratch per worker so
// each placement allocates only the Placement it returns.
type Scratch struct {
	areas []float64
	order []int
	cores []soc.CoreID
	pts   []Point

	// ids and tmp are the recursive bisection's working copies of the
	// island order: sliceRegions partitions ids in place using tmp as
	// the shuttle buffer, leaving the caller's order untouched.
	ids []int
	tmp []int
}

// Place floorplans the topology. Every core must be attached to a
// switch.
func Place(top *topology.Topology, opt Options) (*Placement, error) {
	return placeWithOrder(top, opt, nil, nil)
}

// PlaceWith is Place drawing temporary buffers from sc, which may be
// reused across calls. The returned Placement does not alias sc.
func PlaceWith(top *topology.Topology, opt Options, sc *Scratch) (*Placement, error) {
	return placeWithOrder(top, opt, nil, sc)
}

// placeWithOrder floorplans using the given island slicing order (nil
// selects descending area, the default heuristic), drawing temporaries
// from sc (nil allocates fresh buffers).
func placeWithOrder(top *topology.Topology, opt Options, order []int, sc *Scratch) (*Placement, error) {
	if sc == nil {
		sc = &Scratch{}
	}
	spec := top.Spec
	for c := range spec.Cores {
		if top.SwitchOf[c] < 0 {
			return nil, fmt.Errorf("floorplan: core %d (%s) unattached", c, spec.Cores[c].Name)
		}
	}
	nIsl := top.NumIslands()
	sc.areas = islandAreasInto(sc.areas[:0], top, opt)
	areas := sc.areas

	var total float64
	for _, a := range areas {
		total += a
	}
	die := Rect{X: 0, Y: 0, W: math.Sqrt(total), H: math.Sqrt(total)}

	// Slice the die among islands by recursive area bisection over the
	// island list sorted by descending area (stable on ID) unless the
	// caller supplies an explicit order.
	if order == nil {
		if cap(sc.order) < nIsl {
			sc.order = make([]int, nIsl)
		}
		order = sc.order[:nIsl]
		for i := range order {
			order[i] = i
		}
		// Stable insertion sort by descending area: identical output to
		// sort.SliceStable with the same key, no closure/swapper allocs.
		for i := 1; i < nIsl; i++ {
			for j := i; j > 0 && areas[order[j]] > areas[order[j-1]]; j-- {
				order[j], order[j-1] = order[j-1], order[j]
			}
		}
	} else if len(order) != nIsl {
		return nil, fmt.Errorf("floorplan: order has %d entries for %d islands", len(order), nIsl)
	}
	rects := make([]Rect, nIsl)
	sc.ids = append(sc.ids[:0], order...)
	if cap(sc.tmp) < nIsl {
		sc.tmp = make([]int, nIsl)
	}
	sliceRegions(die, sc.ids, areas, rects, sc.tmp[:nIsl])

	p := &Placement{
		Die:          die,
		IslandRects:  rects,
		CorePos:      make([]Point, len(spec.Cores)),
		SwitchPos:    make([]Point, len(top.Switches)),
		NILengthMM:   make([]float64, len(spec.Cores)),
		LinkLengthMM: make([]float64, len(top.Links)),
	}

	// Place cores per island, grouped by their switch so that a
	// switch's clients sit in adjacent cells.
	for isl := 0; isl < nIsl; isl++ {
		sc.cores = coresGroupedBySwitchInto(sc.cores[:0], top, soc.IslandID(isl))
		placeGrid(rects[isl], sc.cores, p.CorePos)
	}

	// Direct switches at the centroid of their attached cores; indirect
	// switches at the centroid of their link neighbours, clamped into
	// the intermediate island's region. Two passes so indirect switches
	// see placed neighbours.
	for pass := 0; pass < 2; pass++ {
		for i := range top.Switches {
			s := &top.Switches[i]
			pts := sc.pts[:0]
			if !s.Indirect {
				for _, c := range s.Cores {
					pts = append(pts, p.CorePos[c])
				}
			} else {
				for _, l := range top.Links {
					if l.From == s.ID {
						pts = append(pts, p.SwitchPos[l.To])
					}
					if l.To == s.ID {
						pts = append(pts, p.SwitchPos[l.From])
					}
				}
			}
			r := rects[s.Island]
			sc.pts = pts // keep the grown capacity for the next switch
			pos := r.Center()
			if len(pts) > 0 {
				var sx, sy float64
				for _, q := range pts {
					sx += q.X
					sy += q.Y
				}
				pos = Point{sx / float64(len(pts)), sy / float64(len(pts))}
				pos = clamp(pos, r)
			}
			// Spread co-located switches of the same island slightly so
			// they do not stack at the exact same point.
			pos.X += float64(i%3) * 0.01
			pos.Y += float64(i/3%3) * 0.01
			p.SwitchPos[s.ID] = clamp(pos, r)
		}
	}

	// Wire lengths.
	for c := range spec.Cores {
		p.NILengthMM[c] = Manhattan(p.CorePos[c], p.SwitchPos[top.SwitchOf[c]])
	}
	for i, l := range top.Links {
		p.LinkLengthMM[i] = Manhattan(p.SwitchPos[l.From], p.SwitchPos[l.To])
	}
	if !opt.SkipAnnotate {
		for i := range top.Links {
			top.Links[i].LengthMM = p.LinkLengthMM[i]
		}
	}
	return p, nil
}

// islandAreas computes the silicon demand of every island: core area
// plus switch and NI area, padded with whitespace. The intermediate NoC
// island (no cores) gets its switches plus a fixed floor so the region
// remains placeable.
func islandAreas(top *topology.Topology, opt Options) []float64 {
	return islandAreasInto(nil, top, opt)
}

// islandAreasInto is islandAreas appending into a reusable buffer.
func islandAreasInto(buf []float64, top *topology.Topology, opt Options) []float64 {
	n := top.NumIslands()
	if cap(buf) < n {
		buf = make([]float64, n)
	}
	areas := buf[:n]
	for i := range areas {
		areas[i] = 0
	}
	for c, isl := range top.Spec.IslandOf {
		areas[isl] += top.Spec.Cores[c].AreaMM2 + top.Lib.NIAreaMM2
	}
	for _, s := range top.Switches {
		areas[s.Island] += top.Lib.SwitchAreaMM2(top.SwitchSize(s.ID))
	}
	for i := range areas {
		areas[i] *= 1 + opt.whitespace()
		if areas[i] < 0.05 {
			areas[i] = 0.05
		}
	}
	return areas
}

// sliceRegions recursively bisects rect among the islands listed in ids
// (pre-sorted by descending area), splitting along the longer side with
// the area ratio of the two halves.
func sliceRegions(rect Rect, ids []int, areas []float64, out []Rect, tmp []int) {
	if len(ids) == 0 {
		return
	}
	if len(ids) == 1 {
		out[ids[0]] = rect
		return
	}
	// Balanced greedy split of ids into two groups by area. The groups
	// are written into tmp (a-group as a prefix, b-group as a suffix,
	// both in ids order) and copied back, so the split is in place and
	// the recursion allocates nothing.
	var aSum, bSum float64
	na, nb := 0, 0
	for _, id := range ids {
		if aSum <= bSum {
			tmp[na] = id
			na++
			aSum += areas[id]
		} else {
			nb++
			tmp[len(ids)-nb] = id
			bSum += areas[id]
		}
	}
	copy(ids[:na], tmp[:na])
	for i := 0; i < nb; i++ { // un-reverse the suffix
		ids[na+i] = tmp[len(ids)-1-i]
	}
	frac := aSum / (aSum + bSum)
	var ra, rb Rect
	if rect.W >= rect.H {
		ra = Rect{rect.X, rect.Y, rect.W * frac, rect.H}
		rb = Rect{rect.X + rect.W*frac, rect.Y, rect.W * (1 - frac), rect.H}
	} else {
		ra = Rect{rect.X, rect.Y, rect.W, rect.H * frac}
		rb = Rect{rect.X, rect.Y + rect.H*frac, rect.W, rect.H * (1 - frac)}
	}
	sliceRegions(ra, ids[:na], areas, out, tmp[:na])
	sliceRegions(rb, ids[na:], areas, out, tmp[na:])
}

// coresGroupedBySwitchInto appends the island's cores to buf ordered so
// that cores sharing a switch are contiguous (switch ID ascending, core
// ID ascending within a switch). The (switch, core) key is a strict
// total order — core IDs are unique — so the insertion sort produces
// exactly the ordering the previous sort.SliceStable did, without the
// CoresIn copy or the sort closure allocations.
func coresGroupedBySwitchInto(buf []soc.CoreID, top *topology.Topology, isl soc.IslandID) []soc.CoreID {
	for c, id := range top.Spec.IslandOf {
		if id == isl {
			buf = append(buf, soc.CoreID(c))
		}
	}
	for i := 1; i < len(buf); i++ {
		for j := i; j > 0; j-- {
			a, b := buf[j-1], buf[j]
			sa, sb := top.SwitchOf[a], top.SwitchOf[b]
			if sa < sb || (sa == sb && a < b) {
				break
			}
			buf[j-1], buf[j] = buf[j], buf[j-1]
		}
	}
	return buf
}

// placeGrid assigns the cores to cell centers of a row-major grid
// covering the region.
func placeGrid(r Rect, cores []soc.CoreID, pos []Point) {
	n := len(cores)
	if n == 0 {
		return
	}
	cols := int(math.Ceil(math.Sqrt(float64(n) * r.W / math.Max(r.H, 1e-9))))
	if cols < 1 {
		cols = 1
	}
	rows := (n + cols - 1) / cols
	cw := r.W / float64(cols)
	ch := r.H / float64(rows)
	for i, c := range cores {
		col := i % cols
		row := i / cols
		pos[c] = Point{r.X + (float64(col)+0.5)*cw, r.Y + (float64(row)+0.5)*ch}
	}
}

func clamp(p Point, r Rect) Point {
	if p.X < r.X {
		p.X = r.X
	}
	if p.X > r.X+r.W {
		p.X = r.X + r.W
	}
	if p.Y < r.Y {
		p.Y = r.Y
	}
	if p.Y > r.Y+r.H {
		p.Y = r.Y + r.H
	}
	return p
}

// TotalWireLengthMM sums NI stubs and link spans.
func (p *Placement) TotalWireLengthMM() float64 {
	var sum float64
	for _, l := range p.NILengthMM {
		sum += l
	}
	for _, l := range p.LinkLengthMM {
		sum += l
	}
	return sum
}

// WireDelayViolations returns the links whose span exceeds the
// single-cycle wire budget at the link's clock (the slower endpoint).
// The paper uses unpipelined links, so these would require either island
// re-placement or a lower clock; synthesis reports them per design point.
func WireDelayViolations(top *topology.Topology, p *Placement) []topology.LinkID {
	var out []topology.LinkID
	for i, l := range top.Links {
		fs, ts := top.Switches[l.From], top.Switches[l.To]
		f := math.Min(fs.FreqHz, ts.FreqHz)
		if p.LinkLengthMM[i] > top.Lib.WireLengthBudgetMM(f) {
			out = append(out, l.ID)
		}
	}
	return out
}

// Overlap returns the total pairwise overlap area between island
// rectangles; a correct slicing floorplan has zero.
func (p *Placement) Overlap() float64 {
	var sum float64
	for i := 0; i < len(p.IslandRects); i++ {
		for j := i + 1; j < len(p.IslandRects); j++ {
			sum += rectOverlap(p.IslandRects[i], p.IslandRects[j])
		}
	}
	return sum
}

func rectOverlap(a, b Rect) float64 {
	w := math.Min(a.X+a.W, b.X+b.W) - math.Max(a.X, b.X)
	h := math.Min(a.Y+a.H, b.Y+b.H) - math.Max(a.Y, b.Y)
	if w <= 1e-9 || h <= 1e-9 {
		return 0
	}
	return w * h
}

// WeightedWireCost scores a placement: every link span weighted by the
// traffic it carries, plus NI stubs weighted by their core's aggregate
// bandwidth — the quantity the annealer minimizes (a proxy for wire
// power, which is energy/bit/mm × bits/s × mm).
func WeightedWireCost(top *topology.Topology, p *Placement) float64 {
	var cost float64
	for i, l := range top.Links {
		cost += p.LinkLengthMM[i] * (l.TrafficBps + 1e6)
	}
	egress, ingress := top.Spec.AggregateCoreBandwidth()
	for c := range top.Spec.Cores {
		cost += p.NILengthMM[c] * (egress[c] + ingress[c] + 1e6)
	}
	return cost
}

// PlaceOptimized searches island slicing orders with deterministic
// simulated annealing, minimizing WeightedWireCost: islands that
// exchange heavy traffic end up adjacent, shortening the wires that
// matter. iters <= 0 selects 300. The winning placement annotates the
// topology's link lengths (unless opt.SkipAnnotate).
func PlaceOptimized(top *topology.Topology, opt Options, iters int) (*Placement, error) {
	if iters <= 0 {
		iters = 300
	}
	evalOpt := opt
	evalOpt.SkipAnnotate = true
	sc := &Scratch{}

	best, err := placeWithOrder(top, evalOpt, nil, sc)
	if err != nil {
		return nil, err
	}
	bestCost := WeightedWireCost(top, best)
	nIsl := top.NumIslands()
	if nIsl < 2 {
		return finishOptimized(top, opt, nil)
	}

	// Recover the default order to seed the search.
	order := make([]int, nIsl)
	for i := range order {
		order[i] = i
	}
	areas := islandAreas(top, evalOpt)
	sort.SliceStable(order, func(a, b int) bool { return areas[order[a]] > areas[order[b]] })
	bestOrder := append([]int(nil), order...)

	cur := append([]int(nil), order...)
	curCost := bestCost
	seed := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return seed >> 11
	}
	for it := 0; it < iters; it++ {
		i := int(next() % uint64(nIsl))
		j := int(next() % uint64(nIsl))
		if i == j {
			continue
		}
		cand := append([]int(nil), cur...)
		cand[i], cand[j] = cand[j], cand[i]
		p, err := placeWithOrder(top, evalOpt, cand, sc)
		if err != nil {
			return nil, err
		}
		c := WeightedWireCost(top, p)
		// Annealing acceptance with a geometric temperature schedule;
		// the "random" draw comes from the deterministic LCG.
		temp := bestCost * 0.10 * math.Pow(0.99, float64(it))
		accept := c < curCost
		if !accept && temp > 0 {
			u := float64(next()%1_000_000) / 1_000_000
			accept = u < math.Exp((curCost-c)/temp)
		}
		if accept {
			cur, curCost = cand, c
			if c < bestCost {
				bestCost = c
				bestOrder = append(bestOrder[:0], cand...)
			}
		}
	}
	return finishOptimized(top, opt, bestOrder)
}

// finishOptimized produces the final placement (with annotation per the
// caller's options) for the chosen order.
func finishOptimized(top *topology.Topology, opt Options, order []int) (*Placement, error) {
	return placeWithOrder(top, opt, order, nil)
}
