package floorplan

import (
	"math"
	"testing"
	"testing/quick"

	"nocvi/internal/model"
	"nocvi/internal/soc"
	"nocvi/internal/topology"
)

// buildTop returns a routed 3-island topology with a mid switch.
func buildTop(t *testing.T) *topology.Topology {
	t.Helper()
	spec := &soc.Spec{
		Name: "fp",
		Cores: []soc.Core{
			{ID: 0, Name: "cpu", AreaMM2: 4}, {ID: 1, Name: "mem", AreaMM2: 6},
			{ID: 2, Name: "vid", AreaMM2: 3}, {ID: 3, Name: "aud", AreaMM2: 1},
			{ID: 4, Name: "usb", AreaMM2: 0.5}, {ID: 5, Name: "eth", AreaMM2: 0.5},
		},
		Flows: []soc.Flow{
			{Src: 0, Dst: 1, BandwidthBps: 100e6},
			{Src: 2, Dst: 1, BandwidthBps: 100e6},
		},
		Islands: []soc.Island{
			{ID: 0, Name: "sys", VoltageV: 1},
			{ID: 1, Name: "media", VoltageV: 0.9, Shutdownable: true},
			{ID: 2, Name: "io", VoltageV: 1, Shutdownable: true},
		},
		IslandOf: []soc.IslandID{0, 0, 1, 1, 2, 2},
	}
	lib := model.Default65nm()
	top := topology.New(spec, lib)
	for i := range spec.Islands {
		top.SetIslandFreq(soc.IslandID(i), 200e6)
	}
	s0 := top.AddSwitch(0, false)
	s1 := top.AddSwitch(1, false)
	s2 := top.AddSwitch(2, false)
	ni := top.AddNoCIsland(200e6, 1.0)
	mid := top.AddSwitch(ni, true)
	for c, sw := range map[soc.CoreID]topology.SwitchID{0: s0, 1: s0, 2: s1, 3: s1, 4: s2, 5: s2} {
		if err := top.AttachCore(c, sw); err != nil {
			t.Fatal(err)
		}
	}
	l1m, _ := top.AddLink(s1, mid)
	lm0, _ := top.AddLink(mid, s0)
	if err := top.AddRoute(topology.Route{Flow: spec.Flows[0], Switches: []topology.SwitchID{s0}}); err != nil {
		t.Fatal(err)
	}
	if err := top.AddRoute(topology.Route{Flow: spec.Flows[1], Switches: []topology.SwitchID{s1, mid, s0}, Links: []topology.LinkID{l1m, lm0}}); err != nil {
		t.Fatal(err)
	}
	return top
}

func TestPlaceBasics(t *testing.T) {
	top := buildTop(t)
	p, err := Place(top, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Die.W <= 0 || math.Abs(p.Die.W-p.Die.H) > 1e-9 {
		t.Fatalf("die = %+v", p.Die)
	}
	// Die area covers at least the padded core area.
	minArea := top.Spec.TotalCoreAreaMM2()
	if p.Die.Area() < minArea {
		t.Fatalf("die area %.2f below core area %.2f", p.Die.Area(), minArea)
	}
	// Every core inside its island's region.
	for c, isl := range top.Spec.IslandOf {
		if !p.IslandRects[isl].Contains(p.CorePos[c]) {
			t.Fatalf("core %d outside island %d region", c, isl)
		}
	}
	// Every switch inside its island's region.
	for _, s := range top.Switches {
		if !p.IslandRects[s.Island].Contains(p.SwitchPos[s.ID]) {
			t.Fatalf("switch %d outside island %d", s.ID, s.Island)
		}
	}
	// Regions disjoint.
	if ov := p.Overlap(); ov > 1e-6 {
		t.Fatalf("island regions overlap by %g mm^2", ov)
	}
	// Regions inside die.
	for i, r := range p.IslandRects {
		if r.X < -1e-9 || r.Y < -1e-9 || r.X+r.W > p.Die.W+1e-6 || r.Y+r.H > p.Die.H+1e-6 {
			t.Fatalf("island %d region %+v outside die %+v", i, r, p.Die)
		}
	}
}

func TestPlaceAnnotatesLinkLengths(t *testing.T) {
	top := buildTop(t)
	p, err := Place(top, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range top.Links {
		if l.LengthMM != p.LinkLengthMM[i] {
			t.Fatalf("link %d not annotated", i)
		}
		want := Manhattan(p.SwitchPos[l.From], p.SwitchPos[l.To])
		if math.Abs(l.LengthMM-want) > 1e-9 {
			t.Fatalf("link %d length %g, want %g", i, l.LengthMM, want)
		}
	}
	top2 := buildTop(t)
	if _, err := Place(top2, Options{SkipAnnotate: true}); err != nil {
		t.Fatal(err)
	}
	for _, l := range top2.Links {
		if l.LengthMM != 0 {
			t.Fatal("SkipAnnotate wrote lengths anyway")
		}
	}
}

func TestNILengths(t *testing.T) {
	top := buildTop(t)
	p, err := Place(top, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for c := range top.Spec.Cores {
		want := Manhattan(p.CorePos[c], p.SwitchPos[top.SwitchOf[c]])
		if math.Abs(p.NILengthMM[c]-want) > 1e-9 {
			t.Fatalf("NI length of core %d wrong", c)
		}
		// NI stub cannot exceed the island region diameter (core and
		// switch share an island).
		r := p.IslandRects[top.Spec.IslandOf[c]]
		if p.NILengthMM[c] > r.W+r.H+1e-9 {
			t.Fatalf("NI stub of core %d spans %g, island only %gx%g", c, p.NILengthMM[c], r.W, r.H)
		}
	}
	if p.TotalWireLengthMM() <= 0 {
		t.Fatal("total wire length must be positive")
	}
}

func TestPlaceDeterministic(t *testing.T) {
	a, err := Place(buildTop(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Place(buildTop(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.CorePos {
		if a.CorePos[i] != b.CorePos[i] {
			t.Fatalf("core %d placement differs between runs", i)
		}
	}
	for i := range a.SwitchPos {
		if a.SwitchPos[i] != b.SwitchPos[i] {
			t.Fatalf("switch %d placement differs", i)
		}
	}
}

func TestPlaceRequiresAttachment(t *testing.T) {
	spec := &soc.Spec{
		Name:     "un",
		Cores:    []soc.Core{{ID: 0, Name: "a", AreaMM2: 1}},
		Islands:  []soc.Island{{ID: 0, Name: "i", VoltageV: 1}},
		IslandOf: []soc.IslandID{0},
	}
	top := topology.New(spec, model.Default65nm())
	if _, err := Place(top, Options{}); err == nil {
		t.Fatal("unattached core placed")
	}
}

func TestWireDelayViolations(t *testing.T) {
	top := buildTop(t)
	p, err := Place(top, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// At 200 MHz the single-cycle budget is 1e9/200e6/0.125 = 40 mm —
	// far beyond this small die: no violations.
	if v := WireDelayViolations(top, p); len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}
	// Crank the clock so the budget shrinks below the link span.
	for i := range top.Switches {
		top.Switches[i].FreqHz = 10e9
	}
	if v := WireDelayViolations(top, p); len(v) != len(top.Links) {
		t.Fatalf("violations at 10 GHz = %d, want all %d", len(v), len(top.Links))
	}
}

func TestRectHelpers(t *testing.T) {
	r := Rect{X: 1, Y: 2, W: 4, H: 6}
	if c := r.Center(); c.X != 3 || c.Y != 5 {
		t.Fatalf("center = %+v", c)
	}
	if r.Area() != 24 {
		t.Fatal("area wrong")
	}
	if !r.Contains(Point{1, 2}) || r.Contains(Point{0, 0}) {
		t.Fatal("contains wrong")
	}
	if Manhattan(Point{0, 0}, Point{3, 4}) != 7 {
		t.Fatal("manhattan wrong")
	}
	if rectOverlap(Rect{0, 0, 2, 2}, Rect{1, 1, 2, 2}) != 1 {
		t.Fatal("overlap wrong")
	}
	if rectOverlap(Rect{0, 0, 1, 1}, Rect{2, 2, 1, 1}) != 0 {
		t.Fatal("disjoint overlap wrong")
	}
}

// Property: slicing any number of islands with arbitrary areas tiles the
// die exactly — region areas sum to the die and never overlap.
func TestSlicingTilesDie(t *testing.T) {
	f := func(raw []uint8) bool {
		n := len(raw)
		if n == 0 || n > 12 {
			return true
		}
		areas := make([]float64, n)
		var total float64
		for i, r := range raw {
			areas[i] = float64(r%50) + 1
			total += areas[i]
		}
		die := Rect{0, 0, math.Sqrt(total), math.Sqrt(total)}
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
		}
		out := make([]Rect, n)
		sliceRegions(die, ids, areas, out, make([]int, n))
		var sum float64
		for _, r := range out {
			if r.W < 0 || r.H < 0 {
				return false
			}
			sum += r.Area()
		}
		if math.Abs(sum-die.Area()) > 1e-6 {
			return false
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rectOverlap(out[i], out[j]) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceOptimizedNeverWorse(t *testing.T) {
	top := buildTop(t)
	base, err := Place(top, Options{SkipAnnotate: true})
	if err != nil {
		t.Fatal(err)
	}
	baseCost := WeightedWireCost(top, base)
	opt, err := PlaceOptimized(top, Options{SkipAnnotate: true}, 150)
	if err != nil {
		t.Fatal(err)
	}
	optCost := WeightedWireCost(top, opt)
	if optCost > baseCost*(1+1e-9) {
		t.Fatalf("annealer made it worse: %.3g > %.3g", optCost, baseCost)
	}
	// Result is still a legal floorplan.
	if opt.Overlap() > 1e-6 {
		t.Fatal("optimized regions overlap")
	}
	for c, isl := range top.Spec.IslandOf {
		if !opt.IslandRects[isl].Contains(opt.CorePos[c]) {
			t.Fatalf("core %d escaped its island", c)
		}
	}
}

func TestPlaceOptimizedDeterministic(t *testing.T) {
	a, err := PlaceOptimized(buildTop(t), Options{}, 100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PlaceOptimized(buildTop(t), Options{}, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.IslandRects {
		if a.IslandRects[i] != b.IslandRects[i] {
			t.Fatalf("island %d rect differs between runs", i)
		}
	}
}

func TestPlaceOptimizedAnnotates(t *testing.T) {
	top := buildTop(t)
	p, err := PlaceOptimized(top, Options{}, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range top.Links {
		if l.LengthMM != p.LinkLengthMM[i] {
			t.Fatalf("link %d not annotated with winning placement", i)
		}
	}
}

func TestPlaceWithBadOrder(t *testing.T) {
	top := buildTop(t)
	if _, err := placeWithOrder(top, Options{}, []int{0}, nil); err == nil {
		t.Fatal("short order accepted")
	}
}

func TestWeightedWireCostWeighsTraffic(t *testing.T) {
	top := buildTop(t)
	p, err := Place(top, Options{})
	if err != nil {
		t.Fatal(err)
	}
	base := WeightedWireCost(top, p)
	// Inflating one link's traffic must raise the cost.
	top.Links[0].TrafficBps *= 100
	if WeightedWireCost(top, p) <= base {
		t.Fatal("cost insensitive to traffic weight")
	}
}
