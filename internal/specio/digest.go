// Canonical content digests for synthesis inputs. The on-disk result
// cache (internal/cache) keys entries by what the engine actually
// consumes — the spec, the options and the technology library — so the
// digests here define cache identity. The encoding is a hand-written
// canonical binary form, not JSON and not reflection:
//
//   - every field is emitted in one fixed order, so how a value was
//     constructed (struct literal order, JSON field order, map
//     iteration) can never change its digest;
//   - floats are emitted as their IEEE-754 bit patterns
//     (math.Float64bits), so two specs digest equal exactly when the
//     engine — which compares and sums these floats bit-for-bit — would
//     treat them identically. The JSON spec format's human units (MB/s,
//     MHz) divide through 1e6 and must never feed a digest;
//   - integers are varints and strings are length-prefixed, making
//     every encoding a prefix code: distinct field sequences can never
//     collide by concatenation.
//
// Golden digest tests (digest_test.go) pin the byte layout: any
// unintended change to the encoding — a reordered field, a lost
// normalization — breaks a test rather than silently splitting or, far
// worse, aliasing cache keys.
package specio

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"

	"nocvi/internal/core"
	"nocvi/internal/model"
	"nocvi/internal/soc"
	"nocvi/internal/vcg"
)

// Digest is a 32-byte SHA-256 content digest.
type Digest [32]byte

// String returns the digest in lower-case hex — the cache's on-disk
// entry name.
func (d Digest) String() string { return hex.EncodeToString(d[:]) }

// Short returns the first 12 hex characters, for logs and reports.
func (d Digest) Short() string { return hex.EncodeToString(d[:6]) }

// denc accumulates the canonical binary encoding that is digested.
type denc struct {
	b []byte
}

func (e *denc) u64(v uint64)  { e.b = binary.AppendUvarint(e.b, v) }
func (e *denc) i64(v int64)   { e.b = binary.AppendVarint(e.b, v) }
func (e *denc) int(v int)     { e.i64(int64(v)) }
func (e *denc) f64(v float64) { e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(v)) }

func (e *denc) bool(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}

func (e *denc) str(s string) {
	e.u64(uint64(len(s)))
	e.b = append(e.b, s...)
}

func (e *denc) ints(vs []int) {
	e.u64(uint64(len(vs)))
	for _, v := range vs {
		e.int(v)
	}
}

func (e *denc) sum() Digest { return sha256.Sum256(e.b) }

// SpecDigest returns the canonical digest of a synthesis problem
// instance. Everything the engine reads is covered: cores (including
// names — they surface in reports and campaign state labels), flows in
// spec order (flow order feeds VCG edge-accumulation order and is
// therefore result-significant), islands and the core-to-island
// assignment.
func SpecDigest(s *soc.Spec) Digest {
	e := &denc{}
	e.str("nocvi-spec-v1")
	e.str(s.Name)
	e.u64(uint64(len(s.Islands)))
	for _, isl := range s.Islands {
		e.str(isl.Name)
		e.f64(isl.VoltageV)
		e.bool(isl.Shutdownable)
	}
	e.u64(uint64(len(s.Cores)))
	for _, c := range s.Cores {
		e.str(c.Name)
		e.int(int(c.Class))
		e.f64(c.AreaMM2)
		e.f64(c.FreqHz)
		e.f64(c.DynPowerW)
		e.f64(c.LeakPowerW)
	}
	e.u64(uint64(len(s.IslandOf)))
	for _, id := range s.IslandOf {
		e.int(int(id))
	}
	e.u64(uint64(len(s.Flows)))
	for _, f := range s.Flows {
		e.int(int(f.Src))
		e.int(int(f.Dst))
		e.f64(f.BandwidthBps)
		e.f64(f.MaxLatencyCycles)
	}
	return e.sum()
}

// LibraryDigest returns the canonical digest of a technology library.
// Every coefficient participates: the CLIs mutate LinkWidthBits and
// whole node presets, and every one of these numbers reaches a power,
// area, frequency or delay result.
func LibraryDigest(l *model.Library) Digest {
	e := &denc{}
	e.str("nocvi-lib-v1")
	encodeLibrary(e, l)
	return e.sum()
}

func encodeLibrary(e *denc, l *model.Library) {
	e.int(l.LinkWidthBits)
	e.f64(l.NominalVoltage)
	e.f64(l.FreqGridHz)
	e.f64(l.MaxFreqA)
	e.f64(l.MaxFreqB)
	e.f64(l.SwitchEnergyBase)
	e.f64(l.SwitchEnergyPerPort)
	e.f64(l.SwitchIdlePerPortHz)
	e.f64(l.SwitchLeakPerPort)
	e.f64(l.SwitchAreaBase)
	e.f64(l.SwitchAreaPerPort2)
	e.f64(l.LinkEnergyPerBitMM)
	e.f64(l.LinkLeakPerMMPerBit)
	e.f64(l.WireDelayNsPerMM)
	e.f64(l.NIEnergyPerBit)
	e.f64(l.NILeak)
	e.f64(l.NIAreaMM2)
	e.f64(l.FIFOEnergyPerBit)
	e.f64(l.FIFOLeak)
	e.f64(l.FIFOAreaMM2)
}

// OptionsDigest returns the canonical digest of a synthesis
// configuration: the core options that influence results, folded
// together with the technology library the run uses.
//
// Two classes of fields are deliberately normalized or excluded:
//
//   - unset sentinels are resolved to the defaults the engine resolves
//     them to (Alpha 0 → vcg.DefaultAlpha, IntermediateVoltage ≤ 0 →
//     1.0 V), so an explicit default and an implicit one share one
//     cache entry;
//   - fields the engine guarantees are result-neutral are excluded:
//     Workers (every worker count yields byte-identical results — the
//     guarantee the identity tests pin) and PartitionBacking (cache
//     wiring; backed partitions are bit-identical to computed ones).
//     Excluding them is what makes a cache entry written at -workers 8
//     a legitimate hit at -workers 1. Router.Survivability is likewise
//     excluded: the engine normalizes the canonical Options.Survivability
//     over it, so encoding both would double-count one knob.
//
// v3 added Options.Survivability (the k disjoint-backup-routes
// constraint), which changes results whenever nonzero.
func OptionsDigest(opt core.Options, lib *model.Library) Digest {
	e := &denc{}
	e.str("nocvi-opt-v3")
	alpha := opt.Alpha
	if alpha == 0 { //noclint:ignore floateq 0 is the documented unset sentinel for Alpha, resolved like Options.alpha does
		alpha = vcg.DefaultAlpha
	}
	e.f64(alpha)
	e.bool(opt.AllowIntermediate)
	e.int(opt.MaxIntermediateSwitches)
	midV := opt.IntermediateVoltage
	if midV <= 0 {
		midV = 1.0
	}
	e.f64(midV)
	e.int(opt.MaxDesignPoints)
	e.f64(opt.Router.EstLinkLengthMM)
	e.f64(opt.Router.LatencyWeightW)
	e.bool(opt.Router.MaxSwitchSize != nil)
	e.ints(opt.Router.MaxSwitchSize)
	e.bool(opt.Router.NoNewLinks)
	e.bool(opt.Router.BalanceLoad)
	e.f64(opt.Floorplan.WhitespaceFrac)
	e.bool(opt.Floorplan.SkipAnnotate)
	e.int(opt.Partition.MaxPartSize)
	e.int(opt.Partition.Passes)
	e.bool(opt.SpectralPartition)
	e.bool(opt.AutoVoltage)
	e.bool(opt.NoPrune)
	e.bool(opt.Relax)
	surv := opt.Survivability
	if surv < 0 {
		surv = 0 // the engine clamps negatives to the k=0 behaviour
	}
	e.int(surv)
	encodeLibrary(e, lib)
	return e.sum()
}

// IslandVCGDigest returns the canonical digest of everything island
// isl's min-cut partition depends on: the island's vertex count, its
// intra-island flows in spec order (local vertex indices, so renaming
// or editing *other* islands leaves this digest unchanged — the
// property incremental re-synthesis rests on), and the VCG weighting
// inputs — alpha plus the spec-wide bandwidth/latency extrema that
// normalize every edge weight (vcg.EdgeWeight).
func IslandVCGDigest(s *soc.Spec, isl soc.IslandID, alpha float64) Digest {
	e := &denc{}
	e.str("nocvi-vcg-v1")
	cores := s.CoresIn(isl)
	idx := make(map[soc.CoreID]int, len(cores))
	for i, c := range cores {
		idx[c] = i
	}
	e.u64(uint64(len(cores)))
	e.f64(alpha)
	e.f64(s.MaxFlowBandwidth())
	e.f64(s.MinLatencyConstraint())
	for _, f := range s.Flows {
		si, sok := idx[f.Src]
		di, dok := idx[f.Dst]
		if !sok || !dok {
			continue
		}
		e.int(si)
		e.int(di)
		e.f64(f.BandwidthBps)
		e.f64(f.MaxLatencyCycles)
	}
	return e.sum()
}

// CombineDigests folds a tagged sequence of digests (and a trailing
// varint sequence) into one key. The cache layer uses it to derive
// class-specific keys like H(tag, engine version, spec, options).
func CombineDigests(tag string, version int, ds []Digest, extra []int64) Digest {
	e := &denc{}
	e.str(tag)
	e.int(version)
	e.u64(uint64(len(ds)))
	for _, d := range ds {
		e.b = append(e.b, d[:]...)
	}
	e.u64(uint64(len(extra)))
	for _, v := range extra {
		e.i64(v)
	}
	return e.sum()
}
