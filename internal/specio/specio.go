// Package specio reads and writes SoC specifications and synthesized
// topologies as JSON, so the command-line tools can operate on custom
// designs rather than only the bundled benchmarks.
//
// The on-disk format uses human units and names: flows reference cores
// by name, bandwidths are MB/s, power is mW, clocks are MHz. Dense IDs
// are an implementation detail and are assigned on load.
package specio

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"nocvi/internal/model"
	"nocvi/internal/soc"
	"nocvi/internal/topology"
)

// specJSON is the serialized form of soc.Spec.
type specJSON struct {
	Name    string       `json:"name"`
	Islands []islandJSON `json:"islands"`
	Cores   []coreJSON   `json:"cores"`
	Flows   []flowJSON   `json:"flows"`
}

type islandJSON struct {
	Name         string  `json:"name"`
	VoltageV     float64 `json:"voltage_v"`
	Shutdownable bool    `json:"shutdownable"`
}

type coreJSON struct {
	Name        string  `json:"name"`
	Class       string  `json:"class"`
	Island      string  `json:"island"`
	AreaMM2     float64 `json:"area_mm2"`
	FreqMHz     float64 `json:"freq_mhz,omitempty"`
	DynPowerMW  float64 `json:"dyn_power_mw"`
	LeakPowerMW float64 `json:"leak_power_mw"`
}

type flowJSON struct {
	Src              string  `json:"src"`
	Dst              string  `json:"dst"`
	BandwidthMBps    float64 `json:"bandwidth_mbps"`
	MaxLatencyCycles float64 `json:"max_latency_cycles,omitempty"`
}

// WriteSpec serializes a spec as indented JSON.
func WriteSpec(w io.Writer, s *soc.Spec) error {
	if err := s.Validate(); err != nil {
		return fmt.Errorf("specio: refusing to write invalid spec: %w", err)
	}
	out := specJSON{Name: s.Name}
	for _, isl := range s.Islands {
		out.Islands = append(out.Islands, islandJSON{
			Name: isl.Name, VoltageV: isl.VoltageV, Shutdownable: isl.Shutdownable,
		})
	}
	for i, c := range s.Cores {
		out.Cores = append(out.Cores, coreJSON{
			Name:        c.Name,
			Class:       c.Class.String(),
			Island:      s.Islands[s.IslandOf[i]].Name,
			AreaMM2:     c.AreaMM2,
			FreqMHz:     c.FreqHz / 1e6,
			DynPowerMW:  c.DynPowerW * 1e3,
			LeakPowerMW: c.LeakPowerW * 1e3,
		})
	}
	for _, f := range s.Flows {
		out.Flows = append(out.Flows, flowJSON{
			Src:              s.Cores[f.Src].Name,
			Dst:              s.Cores[f.Dst].Name,
			BandwidthMBps:    f.BandwidthBps / 1e6,
			MaxLatencyCycles: f.MaxLatencyCycles,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadSpec parses a JSON spec, resolving names to dense IDs and
// validating the result.
func ReadSpec(r io.Reader) (*soc.Spec, error) {
	var in specJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("specio: %w", err)
	}
	s := &soc.Spec{Name: in.Name}
	islandID := make(map[string]soc.IslandID, len(in.Islands))
	for i, isl := range in.Islands {
		if _, dup := islandID[isl.Name]; dup {
			return nil, fmt.Errorf("specio: duplicate island %q", isl.Name)
		}
		islandID[isl.Name] = soc.IslandID(i)
		s.Islands = append(s.Islands, soc.Island{
			ID: soc.IslandID(i), Name: isl.Name,
			VoltageV: isl.VoltageV, Shutdownable: isl.Shutdownable,
		})
	}
	coreID := make(map[string]soc.CoreID, len(in.Cores))
	for i, c := range in.Cores {
		if _, dup := coreID[c.Name]; dup {
			return nil, fmt.Errorf("specio: duplicate core %q", c.Name)
		}
		class, err := soc.ParseClass(c.Class)
		if err != nil {
			return nil, fmt.Errorf("specio: core %q: %w", c.Name, err)
		}
		isl, ok := islandID[c.Island]
		if !ok {
			return nil, fmt.Errorf("specio: core %q references unknown island %q", c.Name, c.Island)
		}
		coreID[c.Name] = soc.CoreID(i)
		s.Cores = append(s.Cores, soc.Core{
			ID: soc.CoreID(i), Name: c.Name, Class: class,
			AreaMM2:    c.AreaMM2,
			FreqHz:     c.FreqMHz * 1e6,
			DynPowerW:  c.DynPowerMW / 1e3,
			LeakPowerW: c.LeakPowerMW / 1e3,
		})
		s.IslandOf = append(s.IslandOf, isl)
	}
	for i, f := range in.Flows {
		src, ok := coreID[f.Src]
		if !ok {
			return nil, fmt.Errorf("specio: flow %d references unknown core %q", i, f.Src)
		}
		dst, ok := coreID[f.Dst]
		if !ok {
			return nil, fmt.Errorf("specio: flow %d references unknown core %q", i, f.Dst)
		}
		s.Flows = append(s.Flows, soc.Flow{
			Src: src, Dst: dst,
			BandwidthBps:     f.BandwidthMBps * 1e6,
			MaxLatencyCycles: f.MaxLatencyCycles,
		})
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("specio: %w", err)
	}
	return s, nil
}

// SaveSpec writes the spec to a file.
func SaveSpec(path string, s *soc.Spec) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteSpec(f, s); err != nil {
		return err
	}
	return f.Close()
}

// LoadSpec reads a spec from a file.
func LoadSpec(path string) (*soc.Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSpec(f)
}

// topoJSON is the serialized form of a synthesized topology (write-only:
// topologies are products of synthesis, not inputs).
type topoJSON struct {
	Spec     string         `json:"spec"`
	Islands  []topoIsland   `json:"islands"`
	Switches []topoSwitch   `json:"switches"`
	Links    []topoLink     `json:"links"`
	Routes   []topoRoute    `json:"routes"`
	NIs      []topoNIAttach `json:"network_interfaces"`
}

type topoIsland struct {
	ID           int     `json:"id"`
	Name         string  `json:"name"`
	FreqMHz      float64 `json:"freq_mhz"`
	VoltageV     float64 `json:"voltage_v"`
	Shutdownable bool    `json:"shutdownable"`
	Intermediate bool    `json:"intermediate,omitempty"`
}

type topoSwitch struct {
	ID       int  `json:"id"`
	Island   int  `json:"island"`
	Indirect bool `json:"indirect,omitempty"`
	Size     int  `json:"size"`
}

type topoLink struct {
	From        int     `json:"from"`
	To          int     `json:"to"`
	Crossing    bool    `json:"bisync_fifo,omitempty"`
	TrafficMBps float64 `json:"traffic_mbps"`
	CapMBps     float64 `json:"capacity_mbps"`
	LengthMM    float64 `json:"length_mm,omitempty"`
}

type topoRoute struct {
	Src      string `json:"src"`
	Dst      string `json:"dst"`
	Switches []int  `json:"switches"`
}

type topoNIAttach struct {
	Core   string `json:"core"`
	Switch int    `json:"switch"`
}

// WriteTopology serializes a synthesized topology as indented JSON for
// downstream tooling (floorplan viewers, RTL generators, ...).
func WriteTopology(w io.Writer, top *topology.Topology) error {
	out := topoJSON{Spec: top.Spec.Name}
	for i := 0; i < top.NumIslands(); i++ {
		ti := topoIsland{
			ID:      i,
			FreqMHz: top.IslandFreqHz[i] / 1e6, VoltageV: top.IslandVoltage[i],
		}
		if i < len(top.Spec.Islands) {
			ti.Name = top.Spec.Islands[i].Name
			ti.Shutdownable = top.Spec.Islands[i].Shutdownable
		} else {
			ti.Name = "noc_vi"
			ti.Intermediate = true
		}
		out.Islands = append(out.Islands, ti)
	}
	for _, s := range top.Switches {
		out.Switches = append(out.Switches, topoSwitch{
			ID: int(s.ID), Island: int(s.Island), Indirect: s.Indirect,
			Size: top.SwitchSize(s.ID),
		})
	}
	for _, l := range top.Links {
		out.Links = append(out.Links, topoLink{
			From: int(l.From), To: int(l.To), Crossing: l.CrossesIslands,
			TrafficMBps: l.TrafficBps / 1e6, CapMBps: l.CapacityBps / 1e6,
			LengthMM: l.LengthMM,
		})
	}
	for ri := range top.Routes {
		r := &top.Routes[ri]
		sws := make([]int, len(r.Switches))
		for i, s := range r.Switches {
			sws[i] = int(s)
		}
		out.Routes = append(out.Routes, topoRoute{
			Src: top.Spec.Cores[r.Flow.Src].Name, Dst: top.Spec.Cores[r.Flow.Dst].Name,
			Switches: sws,
		})
	}
	for c, sw := range top.SwitchOf {
		if sw >= 0 {
			out.NIs = append(out.NIs, topoNIAttach{Core: top.Spec.Cores[c].Name, Switch: int(sw)})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadTopology reconstructs a topology from JSON written by
// WriteTopology, resolving it against the original spec and a model
// library. The result is fully validated, so externally edited
// topologies (e.g. hand-tuned link placements) are checked against the
// same rules the synthesis engine enforces.
func ReadTopology(r io.Reader, spec *soc.Spec, lib *model.Library) (*topology.Topology, error) {
	var in topoJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("specio: %w", err)
	}
	if in.Spec != spec.Name {
		return nil, fmt.Errorf("specio: topology is for spec %q, got %q", in.Spec, spec.Name)
	}
	top := topology.New(spec, lib)
	for _, isl := range in.Islands {
		if isl.Intermediate {
			if id := top.AddNoCIsland(isl.FreqMHz*1e6, isl.VoltageV); int(id) != isl.ID {
				return nil, fmt.Errorf("specio: intermediate island id %d unexpected", isl.ID)
			}
			continue
		}
		if isl.ID < 0 || isl.ID >= len(spec.Islands) {
			return nil, fmt.Errorf("specio: island %d outside the spec", isl.ID)
		}
		top.SetIslandFreq(soc.IslandID(isl.ID), isl.FreqMHz*1e6)
		top.SetIslandVoltage(soc.IslandID(isl.ID), isl.VoltageV)
	}
	for _, sw := range in.Switches {
		if sw.Island < 0 || sw.Island >= top.NumIslands() {
			return nil, fmt.Errorf("specio: switch %d in unknown island %d", sw.ID, sw.Island)
		}
		if id := top.AddSwitch(soc.IslandID(sw.Island), sw.Indirect); int(id) != sw.ID {
			return nil, fmt.Errorf("specio: switch ids must be dense (got %d, want %d)", sw.ID, id)
		}
	}
	coreID := map[string]soc.CoreID{}
	for _, c := range spec.Cores {
		coreID[c.Name] = c.ID
	}
	for _, ni := range in.NIs {
		c, ok := coreID[ni.Core]
		if !ok {
			return nil, fmt.Errorf("specio: NI references unknown core %q", ni.Core)
		}
		if ni.Switch < 0 || ni.Switch >= len(top.Switches) {
			return nil, fmt.Errorf("specio: NI of %q references unknown switch %d", ni.Core, ni.Switch)
		}
		if err := top.AttachCore(c, topology.SwitchID(ni.Switch)); err != nil {
			return nil, fmt.Errorf("specio: %w", err)
		}
	}
	for _, l := range in.Links {
		lid, err := top.AddLink(topology.SwitchID(l.From), topology.SwitchID(l.To))
		if err != nil {
			return nil, fmt.Errorf("specio: %w", err)
		}
		top.Links[lid].LengthMM = l.LengthMM
	}
	for _, rt := range in.Routes {
		src, ok := coreID[rt.Src]
		if !ok {
			return nil, fmt.Errorf("specio: route references unknown core %q", rt.Src)
		}
		dst, ok := coreID[rt.Dst]
		if !ok {
			return nil, fmt.Errorf("specio: route references unknown core %q", rt.Dst)
		}
		f, ok := spec.FlowBetween(src, dst)
		if !ok {
			return nil, fmt.Errorf("specio: route %q->%q has no flow in the spec", rt.Src, rt.Dst)
		}
		sws := make([]topology.SwitchID, len(rt.Switches))
		links := make([]topology.LinkID, 0, len(rt.Switches))
		for i, s := range rt.Switches {
			if s < 0 || s >= len(top.Switches) {
				return nil, fmt.Errorf("specio: route %q->%q references unknown switch %d", rt.Src, rt.Dst, s)
			}
			sws[i] = topology.SwitchID(s)
			if i > 0 {
				lid, ok := top.FindLink(sws[i-1], sws[i])
				if !ok {
					return nil, fmt.Errorf("specio: route %q->%q uses missing link %d->%d",
						rt.Src, rt.Dst, sws[i-1], sws[i])
				}
				links = append(links, lid)
			}
		}
		if err := top.AddRoute(topology.Route{Flow: f, Switches: sws, Links: links}); err != nil {
			return nil, fmt.Errorf("specio: %w", err)
		}
	}
	if err := top.Validate(); err != nil {
		return nil, fmt.Errorf("specio: loaded topology invalid: %w", err)
	}
	return top, nil
}
