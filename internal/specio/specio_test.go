package specio

import (
	"bytes"
	"encoding/json"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"nocvi/internal/bench"
	"nocvi/internal/core"
	"nocvi/internal/model"
	"nocvi/internal/sim"
	"nocvi/internal/soc"
)

func TestRoundTripExample(t *testing.T) {
	orig := bench.Example()
	var buf bytes.Buffer
	if err := WriteSpec(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSpec(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != orig.Name || len(back.Cores) != len(orig.Cores) ||
		len(back.Flows) != len(orig.Flows) || len(back.Islands) != len(orig.Islands) {
		t.Fatal("round trip lost structure")
	}
	for i := range orig.Cores {
		o, b := orig.Cores[i], back.Cores[i]
		if o.Name != b.Name || o.Class != b.Class ||
			math.Abs(o.AreaMM2-b.AreaMM2) > 1e-9 ||
			math.Abs(o.DynPowerW-b.DynPowerW) > 1e-12 ||
			math.Abs(o.LeakPowerW-b.LeakPowerW) > 1e-12 {
			t.Fatalf("core %d differs: %+v vs %+v", i, o, b)
		}
		if orig.IslandOf[i] != back.IslandOf[i] {
			t.Fatalf("core %d island differs", i)
		}
	}
	for i := range orig.Flows {
		o, b := orig.Flows[i], back.Flows[i]
		if o.Src != b.Src || o.Dst != b.Dst ||
			math.Abs(o.BandwidthBps-b.BandwidthBps) > 1 ||
			o.MaxLatencyCycles != b.MaxLatencyCycles {
			t.Fatalf("flow %d differs", i)
		}
	}
	for i := range orig.Islands {
		if orig.Islands[i].Shutdownable != back.Islands[i].Shutdownable ||
			orig.Islands[i].VoltageV != back.Islands[i].VoltageV {
			t.Fatalf("island %d differs", i)
		}
	}
}

func TestRoundTripD26(t *testing.T) {
	orig, err := bench.Islanded("d26_media")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSpec(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSpec(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// A loaded spec must synthesize identically.
	lib := model.Default65nm()
	a, err := core.Synthesize(orig, lib, core.Options{MaxDesignPoints: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Synthesize(back, lib, core.Options{MaxDesignPoints: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Best().NoCPower.DynW()-b.Best().NoCPower.DynW()) > 1e-12 {
		t.Fatal("loaded spec synthesizes differently")
	}
}

func TestReadSpecErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":        `{`,
		"unknown field":   `{"name":"x","bogus":1}`,
		"unknown class":   `{"name":"x","islands":[{"name":"i","voltage_v":1}],"cores":[{"name":"a","class":"warp","island":"i"}],"flows":[]}`,
		"unknown island":  `{"name":"x","islands":[{"name":"i","voltage_v":1}],"cores":[{"name":"a","class":"cpu","island":"j"}],"flows":[]}`,
		"dup core":        `{"name":"x","islands":[{"name":"i","voltage_v":1}],"cores":[{"name":"a","class":"cpu","island":"i"},{"name":"a","class":"cpu","island":"i"}],"flows":[]}`,
		"dup island":      `{"name":"x","islands":[{"name":"i","voltage_v":1},{"name":"i","voltage_v":1}],"cores":[{"name":"a","class":"cpu","island":"i"}],"flows":[]}`,
		"unknown flowsrc": `{"name":"x","islands":[{"name":"i","voltage_v":1}],"cores":[{"name":"a","class":"cpu","island":"i"}],"flows":[{"src":"z","dst":"a","bandwidth_mbps":1}]}`,
		"unknown flowdst": `{"name":"x","islands":[{"name":"i","voltage_v":1}],"cores":[{"name":"a","class":"cpu","island":"i"}],"flows":[{"src":"a","dst":"z","bandwidth_mbps":1}]}`,
		"invalid spec":    `{"name":"x","islands":[{"name":"i","voltage_v":1}],"cores":[{"name":"a","class":"cpu","island":"i"},{"name":"b","class":"cpu","island":"i"}],"flows":[{"src":"a","dst":"b","bandwidth_mbps":0}]}`,
	}
	for name, body := range cases {
		if _, err := ReadSpec(strings.NewReader(body)); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}

func TestWriteSpecRejectsInvalid(t *testing.T) {
	s := &soc.Spec{Name: "broken"}
	var buf bytes.Buffer
	if err := WriteSpec(&buf, s); err == nil {
		t.Fatal("invalid spec written")
	}
}

func TestSaveLoadFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spec.json")
	orig := bench.Example()
	if err := SaveSpec(path, orig); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != orig.Name {
		t.Fatal("file round trip broken")
	}
	if _, err := LoadSpec(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestWriteTopology(t *testing.T) {
	spec := bench.Example()
	res, err := core.Synthesize(spec, model.Default65nm(), core.Options{
		AllowIntermediate: true, MaxDesignPoints: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	top := res.Best().Top
	var buf bytes.Buffer
	if err := WriteTopology(&buf, top); err != nil {
		t.Fatal(err)
	}
	var parsed map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("output not valid JSON: %v", err)
	}
	for _, key := range []string{"spec", "islands", "switches", "links", "routes", "network_interfaces"} {
		if _, ok := parsed[key]; !ok {
			t.Fatalf("key %q missing", key)
		}
	}
	sws := parsed["switches"].([]interface{})
	if len(sws) != len(top.Switches) {
		t.Fatalf("switch count %d vs %d", len(sws), len(top.Switches))
	}
	routes := parsed["routes"].([]interface{})
	if len(routes) != len(top.Routes) {
		t.Fatal("route count mismatch")
	}
	// The intermediate island must be flagged.
	if top.NoCIsland != soc.NoIsland {
		islands := parsed["islands"].([]interface{})
		last := islands[len(islands)-1].(map[string]interface{})
		if last["intermediate"] != true {
			t.Fatal("intermediate island not flagged")
		}
	}
}

func TestTopologyRoundTrip(t *testing.T) {
	spec := bench.Example()
	res, err := core.Synthesize(spec, model.Default65nm(), core.Options{
		AllowIntermediate: true, MaxDesignPoints: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	orig := res.Best().Top
	var buf bytes.Buffer
	if err := WriteTopology(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTopology(bytes.NewReader(buf.Bytes()), spec, model.Default65nm())
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Switches) != len(orig.Switches) || len(back.Links) != len(orig.Links) ||
		len(back.Routes) != len(orig.Routes) {
		t.Fatal("round trip lost structure")
	}
	for i := range orig.Switches {
		a, b := orig.Switches[i], back.Switches[i]
		if a.Island != b.Island || a.Indirect != b.Indirect || len(a.Cores) != len(b.Cores) {
			t.Fatalf("switch %d differs", i)
		}
	}
	for i := range orig.Links {
		a, b := orig.Links[i], back.Links[i]
		if a.From != b.From || a.To != b.To || math.Abs(a.LengthMM-b.LengthMM) > 1e-9 {
			t.Fatalf("link %d differs", i)
		}
		if math.Abs(a.TrafficBps-b.TrafficBps) > 1 {
			t.Fatalf("link %d traffic not reconstructed from routes", i)
		}
	}
	// The reloaded topology simulates identically.
	sa, err := sim.Run(orig, sim.Config{DurationNs: 3000})
	if err != nil {
		t.Fatal(err)
	}
	sb, err := sim.Run(back, sim.Config{DurationNs: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if sa.MeanLatencyNs != sb.MeanLatencyNs || sa.Sent != sb.Sent {
		t.Fatal("reloaded topology behaves differently")
	}
}

func TestReadTopologyErrors(t *testing.T) {
	spec := bench.Example()
	lib := model.Default65nm()
	res, err := core.Synthesize(spec, lib, core.Options{MaxDesignPoints: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTopology(&buf, res.Best().Top); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	// wrong spec
	other := bench.D26()
	if _, err := ReadTopology(strings.NewReader(good), other, lib); err == nil {
		t.Fatal("topology accepted against the wrong spec")
	}
	// corrupted JSON
	if _, err := ReadTopology(strings.NewReader(good[:len(good)/2]), spec, lib); err == nil {
		t.Fatal("truncated JSON accepted")
	}
	// unknown field
	if _, err := ReadTopology(strings.NewReader(`{"spec":"example6","bogus":1}`), spec, lib); err == nil {
		t.Fatal("unknown field accepted")
	}
	// tampered route through a missing link
	tampered := strings.Replace(good, `"switches": [`, `"switches": [99, `, 1)
	if _, err := ReadTopology(strings.NewReader(tampered), spec, lib); err == nil {
		t.Fatal("tampered route accepted")
	}
}
