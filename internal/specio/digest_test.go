package specio

import (
	"testing"

	"nocvi/internal/bench"
	"nocvi/internal/core"
	"nocvi/internal/model"
	"nocvi/internal/soc"
	"nocvi/internal/specgen"
	"nocvi/internal/vcg"
)

// The golden digests pin the canonical encodings. These values are the
// cache's key space: ANY change here invalidates every cache entry in
// the field, so an unintended encoding change must break this test. If
// you changed the encoding deliberately, bump the format magic in the
// encoder ("nocvi-spec-v1" etc.), re-pin these values, and bump
// cache.EngineVersion so old stores are invalidated wholesale.
func TestSpecDigestGoldens(t *testing.T) {
	goldens := []struct {
		name string
		want string
	}{
		{"d26_media", "c5c87888a61ec656f2b1e000647077f5bdb0958e03dc9573c81df8b9f72c1c43"},
		{"d38_settop", "d5ae968e44efff1ee2b961fdc6306181c4c42757997b00597cf1738a011e6631"},
		{"d35_tablet", "45231de7994cbeba15509669a24e640a46e2dd8f9af45e2b822994eeeef16685"},
		{"d30_basestation", "45b87e87983840a6cf8bb76df76ac16c20f938de9df7ef05117ca61c202dd9b4"},
		{"d24_auto", "c74998146e8b068c64c226420240d38aa9bbccd63bcfb8e6106e60ab4503c079"},
		{"d16_industrial", "6a475ad1ed6bc185ce752a891a63dc495e2f67c2c27862ee480155dde9eeffba"},
		{"d48_network", "ab5a74904b20445a14d60d4ce324557409f24d90c612d3e4a9aac048a968fc4b"},
		{"d20_wearable", "86af39c42972a89e5d009ce8d2a80ec46e1c88897dd36225c6dde06fcbcd4a98"},
	}
	for _, g := range goldens {
		spec, err := bench.Islanded(g.name)
		if err != nil {
			t.Fatal(err)
		}
		if got := SpecDigest(spec).String(); got != g.want {
			t.Errorf("%s: digest %s, want %s (encoding changed? see comment above)", g.name, got, g.want)
		}
	}
	if got := SpecDigest(bench.D26()).String(); got != "7919122ef466e1f0a58c1569e15bf218a53e88ded038f95dd7cda0ea3f02ceed" {
		t.Errorf("flat d26: digest %s", got)
	}
}

func TestSpecgenDigestGoldens(t *testing.T) {
	goldens := []struct {
		seed int64
		want string
	}{
		{1, "e1939003f59747314f225fe851eda4f9d544aca9b443ae1ba0ad0000ba2c3bfb"},
		{2, "08f85e833afc2f03fce71f7577b2ba63875cfd04df9c154471a0dac2e4c5e6b7"},
		{3, "ffb70ad5c2d729b6bceebebf14a058688672e671698eda51821d7bfcccc0b8ef"},
	}
	for _, g := range goldens {
		spec := specgen.Random(g.seed, specgen.Options{MaxCores: 12, MaxIslands: 4})
		if got := SpecDigest(spec).String(); got != g.want {
			t.Errorf("seed %d: digest %s, want %s", g.seed, got, g.want)
		}
	}
}

func TestLibraryAndOptionsDigestGoldens(t *testing.T) {
	lib := model.Default65nm()
	if got := LibraryDigest(lib).String(); got != "fe2b2b57460ecad98b520b7b7c149932541bfddc7e9a1c9d76b0230c65032d06" {
		t.Errorf("library digest %s", got)
	}
	if got := OptionsDigest(core.Options{}, lib).String(); got != "5be7cc44c12a6d17585a7bf31b97aae404a00a2795cf6b83b17aab90131a1e2a" {
		t.Errorf("zero options digest %s", got)
	}
	opt := core.Options{AllowIntermediate: true, MaxIntermediateSwitches: 2}
	if got := OptionsDigest(opt, lib).String(); got != "0035e6453430ee981179f50903fd1c85fa885d757c41251b71d246205b0099d9" {
		t.Errorf("bench options digest %s", got)
	}
	if got := IslandVCGDigest(bench.D26(), 0, 0.6).String(); got != "157c939b09b9149b8c6e8d07ede6c168de9f516ab20eef347519ee599f129ab3" {
		t.Errorf("d26 island-0 VCG digest %s", got)
	}
}

// TestSpecDigestValueIdentity: the digest depends only on values, not
// on backing-array identity or spare capacity.
func TestSpecDigestValueIdentity(t *testing.T) {
	spec := bench.D26()
	clone := *spec
	clone.Cores = append(make([]soc.Core, 0, len(spec.Cores)+7), spec.Cores...)
	clone.Flows = append(make([]soc.Flow, 0, len(spec.Flows)+3), spec.Flows...)
	clone.Islands = append([]soc.Island(nil), spec.Islands...)
	clone.IslandOf = append([]soc.IslandID(nil), spec.IslandOf...)
	if SpecDigest(spec) != SpecDigest(&clone) {
		t.Fatal("digest depends on slice identity, not value")
	}
}

// TestSpecDigestFieldSensitivity: every result-relevant spec field
// perturbs the digest.
func TestSpecDigestFieldSensitivity(t *testing.T) {
	base := bench.D26()
	mutate := []struct {
		name string
		fn   func(*soc.Spec)
	}{
		{"name", func(s *soc.Spec) { s.Name = "other" }},
		{"core-area", func(s *soc.Spec) { s.Cores[3].AreaMM2 *= 1.0000001 }},
		{"core-freq", func(s *soc.Spec) { s.Cores[3].FreqHz++ }},
		{"flow-bw", func(s *soc.Spec) { s.Flows[0].BandwidthBps++ }},
		{"flow-lat", func(s *soc.Spec) { s.Flows[0].MaxLatencyCycles++ }},
		{"flow-endpoint", func(s *soc.Spec) { s.Flows[0].Src, s.Flows[0].Dst = s.Flows[0].Dst, s.Flows[0].Src }},
		{"island-voltage", func(s *soc.Spec) { s.Islands[0].VoltageV *= 1.0000001 }},
		{"island-shutdownable", func(s *soc.Spec) { s.Islands[0].Shutdownable = !s.Islands[0].Shutdownable }},
		{"islandof", func(s *soc.Spec) { s.IslandOf[0]++ }},
	}
	want := SpecDigest(base)
	for _, m := range mutate {
		spec := *base
		spec.Cores = append([]soc.Core(nil), base.Cores...)
		spec.Flows = append([]soc.Flow(nil), base.Flows...)
		spec.Islands = append([]soc.Island(nil), base.Islands...)
		spec.IslandOf = append([]soc.IslandID(nil), base.IslandOf...)
		m.fn(&spec)
		if SpecDigest(&spec) == want {
			t.Errorf("%s: mutation did not change the digest", m.name)
		}
	}
}

// TestOptionsDigestNormalization pins the sentinel resolution and the
// result-neutral exclusions: unset Alpha digests like the default,
// Workers never matters.
func TestOptionsDigestNormalization(t *testing.T) {
	lib := model.Default65nm()
	unset := core.Options{}
	explicit := core.Options{Alpha: vcg.DefaultAlpha}
	if OptionsDigest(unset, lib) != OptionsDigest(explicit, lib) {
		t.Fatal("Alpha=0 and Alpha=default digest differently")
	}
	other := core.Options{Alpha: 0.4}
	if OptionsDigest(other, lib) == OptionsDigest(explicit, lib) {
		t.Fatal("distinct alphas digest equal")
	}
	w := core.Options{Workers: 32}
	if OptionsDigest(w, lib) != OptionsDigest(unset, lib) {
		t.Fatal("Workers leaked into the options digest")
	}
	np := core.Options{NoPrune: true}
	if OptionsDigest(np, lib) == OptionsDigest(unset, lib) {
		t.Fatal("NoPrune is result-affecting (Points is the canonical kept subset) and must perturb the digest")
	}
	lib2 := *lib
	lib2.FreqGridHz *= 2
	if OptionsDigest(unset, &lib2) == OptionsDigest(unset, lib) {
		t.Fatal("library change did not change the options digest")
	}
	surv := core.Options{Survivability: 1}
	if OptionsDigest(surv, lib) == OptionsDigest(unset, lib) {
		t.Fatal("Survivability is result-affecting and must perturb the digest")
	}
	neg := core.Options{Survivability: -3}
	if OptionsDigest(neg, lib) != OptionsDigest(unset, lib) {
		t.Fatal("negative Survivability must digest like the clamped k=0")
	}
	var rsv core.Options
	rsv.Router.Survivability = 1
	if OptionsDigest(rsv, lib) != OptionsDigest(unset, lib) {
		t.Fatal("Router.Survivability is a normalized duplicate and must be excluded")
	}
}
