package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultValid(t *testing.T) {
	if err := Default65nm().Validate(); err != nil {
		t.Fatalf("default library invalid: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	mut := []func(*Library){
		func(l *Library) { l.LinkWidthBits = 0 },
		func(l *Library) { l.NominalVoltage = 0 },
		func(l *Library) { l.FreqGridHz = -1 },
		func(l *Library) { l.MaxFreqA = 0 },
		func(l *Library) { l.SwitchEnergyBase = -1 },
	}
	for i, m := range mut {
		l := Default65nm()
		m(l)
		if err := l.Validate(); err == nil {
			t.Fatalf("mutation %d not rejected", i)
		}
	}
}

func TestSwitchMaxFreqMonotone(t *testing.T) {
	l := Default65nm()
	prev := math.Inf(1)
	for p := 1; p <= 40; p++ {
		f := l.SwitchMaxFreqHz(p)
		if f <= 0 || f >= prev {
			t.Fatalf("f_max(%d)=%g not strictly decreasing (prev %g)", p, f, prev)
		}
		prev = f
	}
	// Sanity: a small switch runs around 1 GHz-class clocks at 65 nm.
	if f := l.SwitchMaxFreqHz(5); f < 0.7e9 || f > 1.3e9 {
		t.Fatalf("f_max(5)=%g Hz, expected ~1 GHz", f)
	}
	if l.SwitchMaxFreqHz(0) != l.SwitchMaxFreqHz(1) {
		t.Fatal("port counts below 1 should clamp")
	}
}

func TestMaxSwitchSizeInvertsMaxFreq(t *testing.T) {
	l := Default65nm()
	for p := 1; p <= 30; p++ {
		f := l.SwitchMaxFreqHz(p)
		n := l.MaxSwitchSize(f)
		if n < p {
			t.Fatalf("MaxSwitchSize(f_max(%d))=%d < %d", p, n, p)
		}
		if l.SwitchMaxFreqHz(n) < f-1 {
			t.Fatalf("returned size %d cannot run at %g", n, f)
		}
	}
	if n := l.MaxSwitchSize(0); n != math.MaxInt32 {
		t.Fatalf("unconstrained frequency should be unbounded, got %d", n)
	}
	if n := l.MaxSwitchSize(10e9); n != 0 {
		t.Fatalf("impossible frequency should give 0, got %d", n)
	}
}

func TestQuantizeFreq(t *testing.T) {
	l := Default65nm()
	if got := l.QuantizeFreq(101e6); got != 125e6 {
		t.Fatalf("QuantizeFreq(101MHz)=%g", got)
	}
	if got := l.QuantizeFreq(100e6); got != 100e6 {
		t.Fatalf("exact grid value changed: %g", got)
	}
	if got := l.QuantizeFreq(0); got != l.FreqGridHz {
		t.Fatalf("zero freq should clamp to one grid step, got %g", got)
	}
}

func TestLinkCapacityAndMinFreq(t *testing.T) {
	l := Default65nm() // 32-bit links: 4 bytes/cycle
	if got := l.LinkCapacityBps(500e6); got != 2e9 {
		t.Fatalf("capacity at 500MHz = %g, want 2 GB/s", got)
	}
	f := l.MinFreqForBandwidth(2e9)
	if f != 500e6 {
		t.Fatalf("MinFreqForBandwidth(2GB/s) = %g, want 500 MHz", f)
	}
	if l.LinkCapacityBps(f) < 2e9 {
		t.Fatal("min frequency does not sustain the bandwidth")
	}
}

func TestVoltageScaling(t *testing.T) {
	l := Default65nm()
	if got := l.VoltageScaleDynamic(0.5); got != 0.25 {
		t.Fatalf("dynamic scale at 0.5V = %g", got)
	}
	if got := l.VoltageScaleLeakage(0.8); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("leakage scale at 0.8V = %g", got)
	}
}

func TestSwitchPowerShape(t *testing.T) {
	l := Default65nm()
	// More ports, more power, for both traffic-driven and idle terms.
	p5 := l.SwitchDynPowerW(5, 500e6, 1.0, 1e9)
	p9 := l.SwitchDynPowerW(9, 500e6, 1.0, 1e9)
	if p9 <= p5 {
		t.Fatalf("switch power not increasing in ports: %g vs %g", p5, p9)
	}
	// Zero traffic still burns clock power.
	idle := l.SwitchDynPowerW(5, 500e6, 1.0, 0)
	if idle <= 0 {
		t.Fatal("idle switch power must be positive")
	}
	// Lower voltage, quadratically less power.
	low := l.SwitchDynPowerW(5, 500e6, 0.5, 1e9)
	if math.Abs(low-p5*0.25) > 1e-15 {
		t.Fatalf("voltage scaling wrong: %g vs %g", low, p5*0.25)
	}
	// Sanity magnitude: a 5-port switch moving 1 GB/s at 500 MHz is a
	// few mW at 65 nm.
	if p5 < 0.5e-3 || p5 > 10e-3 {
		t.Fatalf("switch power magnitude implausible: %g W", p5)
	}
}

func TestLeakageAndArea(t *testing.T) {
	l := Default65nm()
	if l.SwitchLeakPowerW(8, 1.0) <= l.SwitchLeakPowerW(4, 1.0) {
		t.Fatal("leakage must grow with ports")
	}
	if l.SwitchAreaMM2(8) <= l.SwitchAreaMM2(4) {
		t.Fatal("area must grow with ports")
	}
	// Area is quadratic-ish: 8 ports more than 2x the 4-port area beyond base
	a4 := l.SwitchAreaMM2(4) - l.SwitchAreaBase
	a8 := l.SwitchAreaMM2(8) - l.SwitchAreaBase
	if math.Abs(a8/a4-4) > 1e-9 {
		t.Fatalf("crossbar area not quadratic: ratio=%g", a8/a4)
	}
	wide := *l
	wide.LinkWidthBits = 64
	if wide.SwitchAreaMM2(4) <= l.SwitchAreaMM2(4) {
		t.Fatal("wider datapath must cost area")
	}
}

func TestLinkModel(t *testing.T) {
	l := Default65nm()
	p := l.LinkDynPowerW(2.0, 1.0, 1e9) // 2 mm, 1 GB/s
	want := 1e9 * 8 * 0.30e-12 * 2.0
	if math.Abs(p-want) > 1e-15 {
		t.Fatalf("link power = %g, want %g", p, want)
	}
	if l.LinkLeakPowerW(2, 1.0) <= l.LinkLeakPowerW(1, 1.0) {
		t.Fatal("link leakage must grow with length")
	}
	if d := l.WireDelayCycles(4.0, 500e6); math.Abs(d-0.25) > 1e-12 {
		t.Fatalf("wire delay cycles = %g, want 0.25", d)
	}
	budget := l.WireLengthBudgetMM(500e6)
	if math.Abs(l.WireDelayCycles(budget, 500e6)-1.0) > 1e-9 {
		t.Fatal("wire budget is not the one-cycle length")
	}
	if !math.IsInf(l.WireLengthBudgetMM(0), 1) {
		t.Fatal("zero frequency should have unbounded wire budget")
	}
}

func TestNIAndFIFO(t *testing.T) {
	l := Default65nm()
	if l.NIDynPowerW(1.0, 1e9) <= 0 || l.NILeakPowerW(1.0) <= 0 {
		t.Fatal("NI power must be positive")
	}
	// FIFO scales with the max of the two island voltages.
	hi := l.FIFODynPowerW(1.2, 0.8, 1e9)
	lo := l.FIFODynPowerW(0.8, 0.8, 1e9)
	if hi <= lo {
		t.Fatal("FIFO must scale with the higher supply")
	}
	if l.FIFODynPowerW(1.2, 0.8, 1e9) != l.FIFODynPowerW(0.8, 1.2, 1e9) {
		t.Fatal("FIFO power must be symmetric in supplies")
	}
	if l.FIFOLeakPowerW(1.0, 0.5) != l.FIFOLeakPowerW(0.5, 1.0) {
		t.Fatal("FIFO leakage must be symmetric")
	}
	if FIFOCrossingCycles != 4.0 {
		t.Fatal("paper specifies a 4-cycle converter crossing")
	}
}

// Property: MaxSwitchSize(f) is the exact inversion point — the returned
// size meets f, the next size up does not (when size > 0 and finite).
func TestMaxSwitchSizeBoundaryProperty(t *testing.T) {
	l := Default65nm()
	f := func(raw uint32) bool {
		freq := 100e6 + float64(raw%3000)*1e6 // 0.1 .. 3.1 GHz
		n := l.MaxSwitchSize(freq)
		if n == 0 {
			return l.SwitchMaxFreqHz(1) < freq
		}
		if n == math.MaxInt32 {
			return false
		}
		return l.SwitchMaxFreqHz(n) >= freq && l.SwitchMaxFreqHz(n+1) < freq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantized frequency is on-grid, and never below the input.
func TestQuantizeFreqProperty(t *testing.T) {
	l := Default65nm()
	f := func(raw uint32) bool {
		in := float64(raw%4000)*1e6 + 1
		q := l.QuantizeFreq(in)
		steps := q / l.FreqGridHz
		return q >= in-1e-3 && math.Abs(steps-math.Round(steps)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestVoltageForFreq(t *testing.T) {
	l := Default65nm()
	// Monotone non-decreasing in frequency, clamped to [0.6, Vnom].
	prev := 0.0
	for _, f := range []float64{0, 50e6, 100e6, 250e6, 500e6, 1e9, 2e9} {
		v := l.VoltageForFreq(f)
		if v < prev-1e-12 {
			t.Fatalf("voltage not monotone at %g Hz", f)
		}
		if v < 0.6 || v > l.NominalVoltage {
			t.Fatalf("voltage %g outside [0.6, %g]", v, l.NominalVoltage)
		}
		prev = v
	}
	if l.VoltageForFreq(1e9) != l.NominalVoltage {
		t.Fatal("nominal clock should need nominal supply")
	}
	if l.VoltageForFreq(25e6) != 0.6 {
		t.Fatal("slow clocks should clamp to the minimum supply")
	}
	// A 500 MHz domain sits between the clamps.
	if v := l.VoltageForFreq(500e6); v <= 0.6 || v >= 1.0 {
		t.Fatalf("mid-range voltage %g not scaled", v)
	}
}

func TestNodePresets(t *testing.T) {
	n90, err := ByNode("90nm")
	if err != nil {
		t.Fatal(err)
	}
	n65, _ := ByNode("65nm")
	n45, _ := ByNode("45nm")
	if _, err := ByNode("28nm"); err == nil {
		t.Fatal("unknown node accepted")
	}
	for _, l := range []*Library{n90, n65, n45} {
		if err := l.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	// Scaling trends: newer node = less dynamic energy, more leakage
	// density, faster clocks, smaller area.
	if !(n90.SwitchEnergyBase > n65.SwitchEnergyBase && n65.SwitchEnergyBase > n45.SwitchEnergyBase) {
		t.Fatal("dynamic energy not shrinking with the node")
	}
	if !(n90.SwitchLeakPerPort < n65.SwitchLeakPerPort && n65.SwitchLeakPerPort < n45.SwitchLeakPerPort) {
		t.Fatal("leakage density not growing with the node — the paper's motivation")
	}
	if !(n90.SwitchMaxFreqHz(5) < n65.SwitchMaxFreqHz(5) && n65.SwitchMaxFreqHz(5) < n45.SwitchMaxFreqHz(5)) {
		t.Fatal("clocks not improving with the node")
	}
	if !(n90.SwitchAreaMM2(5) > n65.SwitchAreaMM2(5) && n65.SwitchAreaMM2(5) > n45.SwitchAreaMM2(5)) {
		t.Fatal("area not shrinking with the node")
	}
}
