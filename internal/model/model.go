// Package model provides the power, area and delay library for NoC
// components that the synthesis flow costs designs with. The paper uses
// post-layout models of the ×pipesLite library [25] characterized at the
// 65 nm node, extended with bi-synchronous voltage/frequency converter
// models; here the same quantities are provided as analytic fits with
// the structure that drives every algorithmic decision:
//
//   - switch energy/flit, idle (clock) power, leakage and area grow with
//     the port count;
//   - the maximum operating frequency of a switch falls with the port
//     count (longer crossbar critical path), which is what bounds
//     max_sw_size per island in Algorithm 1 step 1;
//   - link energy and delay grow linearly with wire length;
//   - crossing a voltage-island boundary costs a bi-synchronous FIFO:
//     fixed energy per bit, extra area and a 4-cycle latency penalty;
//   - dynamic energy scales with the square of the supply voltage and
//     leakage scales roughly linearly with it.
//
// Absolute numbers are calibrated to published 65 nm NoC figures
// (switch energies of a few hundred fJ/bit, ~1 GHz peak switch clocks,
// wire signalling around 0.3 pJ/bit/mm); the reproduction relies on the
// relative behaviour, not on matching a proprietary kit mW-for-mW.
package model

import (
	"fmt"
	"math"
)

// Timing constants of the architecture (in NoC cycles).
const (
	// SwitchTraversalCycles is the pipeline depth of a switch hop
	// (buffering + arbitration + crossbar).
	SwitchTraversalCycles = 2.0

	// LinkTraversalCycles is the cost of an unpipelined inter-switch
	// link hop.
	LinkTraversalCycles = 1.0

	// FIFOCrossingCycles is the latency of the bi-synchronous FIFO used
	// on every link that crosses voltage islands ("a 4 cycle delay is
	// incurred on the voltage-frequency converters").
	FIFOCrossingCycles = 4.0
)

// Library holds the technology coefficients. Construct with Default65nm
// and optionally tweak the public fields before use.
type Library struct {
	// LinkWidthBits is the flit/link data width. The paper fixes it to a
	// user-defined value; 32 is the default.
	LinkWidthBits int

	// NominalVoltage is the supply at which energies are characterized.
	NominalVoltage float64

	// FreqGridHz quantizes island NoC frequencies (clock generators come
	// in steps).
	FreqGridHz float64

	// MaxFreqA and MaxFreqB parametrize the switch critical path:
	// f_max(P) = MaxFreqA / (1 + MaxFreqB*P) for a P-port switch.
	MaxFreqA float64
	MaxFreqB float64

	// Switch energy per bit through the datapath: E(P) =
	// SwitchEnergyBase + SwitchEnergyPerPort*P (joules/bit).
	SwitchEnergyBase    float64
	SwitchEnergyPerPort float64

	// SwitchIdlePerPortHz is the clock-tree + idle dynamic power per
	// port per Hz (W/(port*Hz)) at nominal voltage.
	SwitchIdlePerPortHz float64

	// SwitchLeakPerPort is leakage per port (W) at nominal voltage.
	SwitchLeakPerPort float64

	// SwitchAreaBase/PerPort2: area(P) = base + c*P^2 * (width/32) mm^2
	// (crossbar area is quadratic in port count, linear in width).
	SwitchAreaBase     float64
	SwitchAreaPerPort2 float64

	// Link signalling energy per bit per millimetre (J/(bit*mm)) and
	// leakage of repeaters per mm per bit of width.
	LinkEnergyPerBitMM  float64
	LinkLeakPerMMPerBit float64

	// WireDelayNsPerMM is the signal propagation delay of an optimally
	// repeated global wire.
	WireDelayNsPerMM float64

	// NI (network interface) coefficients.
	NIEnergyPerBit float64
	NILeak         float64
	NIAreaMM2      float64

	// Bi-synchronous FIFO (voltage/frequency converter) coefficients.
	FIFOEnergyPerBit float64
	FIFOLeak         float64
	FIFOAreaMM2      float64
}

// Default65nm returns the 65 nm technology library used throughout the
// reproduction.
func Default65nm() *Library {
	return &Library{
		LinkWidthBits:       32,
		NominalVoltage:      1.0,
		FreqGridHz:          25e6,
		MaxFreqA:            1.6e9,
		MaxFreqB:            0.12,
		SwitchEnergyBase:    0.148e-12,
		SwitchEnergyPerPort: 0.008e-12,
		SwitchIdlePerPortHz: 1.0e-12, // 1 mW per port per GHz (clock tree + FFs)
		SwitchLeakPerPort:   2.0e-5,  // 20 uW per port
		SwitchAreaBase:      0.0025,
		SwitchAreaPerPort2:  0.00065,
		LinkEnergyPerBitMM:  0.30e-12,
		LinkLeakPerMMPerBit: 6.0e-8,
		WireDelayNsPerMM:    0.125, // 8 mm/ns repeated global wire
		NIEnergyPerBit:      0.55e-12,
		NILeak:              4.5e-5,
		NIAreaMM2:           0.011,
		FIFOEnergyPerBit:    0.35e-12,
		FIFOLeak:            1.6e-5,
		FIFOAreaMM2:         0.004,
	}
}

// Validate sanity checks the coefficients.
func (l *Library) Validate() error {
	switch {
	case l.LinkWidthBits <= 0:
		return fmt.Errorf("model: link width %d must be positive", l.LinkWidthBits)
	case l.NominalVoltage <= 0:
		return fmt.Errorf("model: nominal voltage must be positive")
	case l.FreqGridHz <= 0:
		return fmt.Errorf("model: frequency grid must be positive")
	case l.MaxFreqA <= 0 || l.MaxFreqB < 0:
		return fmt.Errorf("model: bad max-frequency coefficients")
	case l.SwitchEnergyBase < 0 || l.SwitchEnergyPerPort < 0:
		return fmt.Errorf("model: negative switch energy")
	}
	return nil
}

// VoltageScaleDynamic returns the multiplier for dynamic energy at
// supply v relative to nominal (quadratic CV^2 scaling).
func (l *Library) VoltageScaleDynamic(v float64) float64 {
	r := v / l.NominalVoltage
	return r * r
}

// VoltageScaleLeakage returns the multiplier for leakage at supply v
// relative to nominal (approximately linear in the operating region).
func (l *Library) VoltageScaleLeakage(v float64) float64 {
	return v / l.NominalVoltage
}

// SwitchMaxFreqHz returns the highest clock a switch with the given
// total port count (inputs+outputs considering the larger of the two
// crossbar dimensions) can meet timing at.
func (l *Library) SwitchMaxFreqHz(ports int) float64 {
	if ports < 1 {
		ports = 1
	}
	return l.MaxFreqA / (1 + l.MaxFreqB*float64(ports))
}

// MaxSwitchSize returns the largest port count whose SwitchMaxFreqHz is
// at least freqHz (Algorithm 1 step 1: max_sw_size_j). It returns 0 when
// even a 1-port switch cannot reach freqHz.
func (l *Library) MaxSwitchSize(freqHz float64) int {
	if freqHz <= 0 {
		return math.MaxInt32 // unconstrained
	}
	p := (l.MaxFreqA/freqHz - 1) / l.MaxFreqB
	if p < 1 {
		if l.SwitchMaxFreqHz(1) >= freqHz {
			return 1
		}
		return 0
	}
	n := int(math.Floor(p + 1e-9))
	// Guard against floating point at the boundary.
	for n > 0 && l.SwitchMaxFreqHz(n) < freqHz {
		n--
	}
	return n
}

// QuantizeFreq rounds a frequency up to the library's clock grid.
func (l *Library) QuantizeFreq(freqHz float64) float64 {
	if freqHz <= 0 {
		return l.FreqGridHz
	}
	steps := math.Ceil(freqHz/l.FreqGridHz - 1e-9)
	return steps * l.FreqGridHz
}

// LinkCapacityBps returns the bandwidth (bytes/s) a link clocked at
// freqHz can carry: width × frequency.
func (l *Library) LinkCapacityBps(freqHz float64) float64 {
	return float64(l.LinkWidthBits) / 8 * freqHz
}

// MinFreqForBandwidth returns the lowest grid frequency at which a link
// sustains bwBps bytes/second.
func (l *Library) MinFreqForBandwidth(bwBps float64) float64 {
	raw := bwBps * 8 / float64(l.LinkWidthBits)
	return l.QuantizeFreq(raw)
}

// SwitchDynPowerW returns the dynamic power of a switch with the given
// port count, clock and supply, carrying the given aggregate traffic
// (bytes/s summed over all flows traversing the switch).
func (l *Library) SwitchDynPowerW(ports int, freqHz, voltage, trafficBps float64) float64 {
	scale := l.VoltageScaleDynamic(voltage)
	eBit := l.SwitchEnergyBase + l.SwitchEnergyPerPort*float64(ports)
	data := trafficBps * 8 * eBit
	idle := l.SwitchIdlePerPortHz * float64(ports) * freqHz
	return (data + idle) * scale
}

// SwitchLeakPowerW returns the leakage of a switch at the given supply.
func (l *Library) SwitchLeakPowerW(ports int, voltage float64) float64 {
	return l.SwitchLeakPerPort * float64(ports) * l.VoltageScaleLeakage(voltage)
}

// SwitchAreaMM2 returns switch area for the library's link width.
func (l *Library) SwitchAreaMM2(ports int) float64 {
	w := float64(l.LinkWidthBits) / 32
	return l.SwitchAreaBase + l.SwitchAreaPerPort2*float64(ports*ports)*w
}

// LinkDynPowerW returns the signalling power of a link of the given
// length carrying trafficBps (bytes/s) at the given supply.
func (l *Library) LinkDynPowerW(lengthMM, voltage, trafficBps float64) float64 {
	return trafficBps * 8 * l.LinkEnergyPerBitMM * lengthMM * l.VoltageScaleDynamic(voltage)
}

// LinkLeakPowerW returns the repeater leakage of a link.
func (l *Library) LinkLeakPowerW(lengthMM, voltage float64) float64 {
	return l.LinkLeakPerMMPerBit * float64(l.LinkWidthBits) * lengthMM * l.VoltageScaleLeakage(voltage)
}

// WireDelayCycles converts a wire length to cycles at the given clock.
func (l *Library) WireDelayCycles(lengthMM, freqHz float64) float64 {
	return lengthMM * l.WireDelayNsPerMM * 1e-9 * freqHz
}

// WireLengthBudgetMM returns the longest single-cycle wire at freqHz;
// links longer than this violate timing (the paper uses unpipelined
// links, so a link must traverse in one cycle).
func (l *Library) WireLengthBudgetMM(freqHz float64) float64 {
	if freqHz <= 0 {
		return math.Inf(1)
	}
	return 1e9 / freqHz / l.WireDelayNsPerMM
}

// NIDynPowerW returns the dynamic power of a network interface carrying
// trafficBps (bytes/s, sum of both directions).
func (l *Library) NIDynPowerW(voltage, trafficBps float64) float64 {
	return trafficBps * 8 * l.NIEnergyPerBit * l.VoltageScaleDynamic(voltage)
}

// NILeakPowerW returns NI leakage at the given supply.
func (l *Library) NILeakPowerW(voltage float64) float64 {
	return l.NILeak * l.VoltageScaleLeakage(voltage)
}

// FIFODynPowerW returns the dynamic power of a bi-synchronous FIFO
// carrying trafficBps. The converter straddles two supplies; the higher
// one dominates and is used for scaling.
func (l *Library) FIFODynPowerW(vSrc, vDst, trafficBps float64) float64 {
	v := math.Max(vSrc, vDst)
	return trafficBps * 8 * l.FIFOEnergyPerBit * l.VoltageScaleDynamic(v)
}

// FIFOLeakPowerW returns converter leakage.
func (l *Library) FIFOLeakPowerW(vSrc, vDst float64) float64 {
	v := math.Max(vSrc, vDst)
	return l.FIFOLeak * l.VoltageScaleLeakage(v)
}

// VoltageForFreq returns the lowest supply at which logic meets the
// given clock, under the standard alpha-power approximation that
// attainable frequency grows roughly linearly with the overdrive
// (V - Vt) in the operating region:
//
//	V(f) = Vt + (Vnom - Vt) · f / FNomHz,
//
// clamped to [MinVoltage, NominalVoltage]. Voltage-island designs use
// this to run slow islands at reduced supply, cutting dynamic energy
// quadratically.
func (l *Library) VoltageForFreq(freqHz float64) float64 {
	const (
		vt       = 0.40 // threshold voltage at 65 nm, volts
		minV     = 0.60 // lowest practical supply
		fNominal = 1e9  // clock that requires the nominal supply
	)
	v := vt + (l.NominalVoltage-vt)*freqHz/fNominal
	if v < minV {
		v = minV
	}
	if v > l.NominalVoltage {
		v = l.NominalVoltage
	}
	return v
}

// Default90nm returns the library scaled to the 90 nm node: roughly 1.4x
// the 65 nm dynamic energy, half the leakage density, 0.7x the peak
// clocks, and 1.7x the area — first-order constant-field scaling from
// the 65 nm calibration point.
func Default90nm() *Library {
	l := Default65nm()
	scaleDyn := 1.4
	l.MaxFreqA *= 0.7
	l.SwitchEnergyBase *= scaleDyn
	l.SwitchEnergyPerPort *= scaleDyn
	l.SwitchIdlePerPortHz *= scaleDyn
	l.SwitchLeakPerPort *= 0.5
	l.SwitchAreaBase *= 1.7
	l.SwitchAreaPerPort2 *= 1.7
	l.LinkEnergyPerBitMM *= 1.3
	l.LinkLeakPerMMPerBit *= 0.5
	l.WireDelayNsPerMM *= 1.2
	l.NIEnergyPerBit *= scaleDyn
	l.NILeak *= 0.5
	l.NIAreaMM2 *= 1.7
	l.FIFOEnergyPerBit *= scaleDyn
	l.FIFOLeak *= 0.5
	l.FIFOAreaMM2 *= 1.7
	return l
}

// Default45nm returns the library scaled to the 45 nm node: ~0.7x the
// dynamic energy, ~2.5x the leakage density (the scaling trend that
// motivates island shutdown in the first place), 1.3x the peak clocks,
// and ~0.55x the area.
func Default45nm() *Library {
	l := Default65nm()
	scaleDyn := 0.7
	l.MaxFreqA *= 1.3
	l.SwitchEnergyBase *= scaleDyn
	l.SwitchEnergyPerPort *= scaleDyn
	l.SwitchIdlePerPortHz *= scaleDyn
	l.SwitchLeakPerPort *= 2.5
	l.SwitchAreaBase *= 0.55
	l.SwitchAreaPerPort2 *= 0.55
	l.LinkEnergyPerBitMM *= 0.8
	l.LinkLeakPerMMPerBit *= 2.5
	l.WireDelayNsPerMM *= 0.9
	l.NIEnergyPerBit *= scaleDyn
	l.NILeak *= 2.5
	l.NIAreaMM2 *= 0.55
	l.FIFOEnergyPerBit *= scaleDyn
	l.FIFOLeak *= 2.5
	l.FIFOAreaMM2 *= 0.55
	return l
}

// ByNode returns the preset library for a technology node name
// ("90nm", "65nm", "45nm").
func ByNode(node string) (*Library, error) {
	switch node {
	case "90nm":
		return Default90nm(), nil
	case "65nm":
		return Default65nm(), nil
	case "45nm":
		return Default45nm(), nil
	}
	return nil, fmt.Errorf("model: unknown technology node %q (have 90nm, 65nm, 45nm)", node)
}
