package soc

import (
	"fmt"
	"sort"
)

// UseCase is one traffic mode of the SoC: the same cores and islands,
// a different set of active flows (e.g. "camera recording" exercises
// the imaging pipeline, "playback" the decoder, "standby" almost
// nothing). SoCs run one use case at a time; the NoC must be
// provisioned for all of them.
type UseCase struct {
	Name  string
	Flows []Flow
}

// Validate checks the use case's flows against the host spec's cores.
func (u *UseCase) Validate(host *Spec) error {
	if u.Name == "" {
		return fmt.Errorf("soc: use case without a name")
	}
	seen := map[[2]CoreID]bool{}
	for i, f := range u.Flows {
		if f.Src < 0 || int(f.Src) >= len(host.Cores) || f.Dst < 0 || int(f.Dst) >= len(host.Cores) {
			return fmt.Errorf("soc: use case %q flow %d has out-of-range endpoint", u.Name, i)
		}
		if f.Src == f.Dst {
			return fmt.Errorf("soc: use case %q flow %d is a self loop", u.Name, i)
		}
		if f.BandwidthBps <= 0 {
			return fmt.Errorf("soc: use case %q flow %d has non-positive bandwidth", u.Name, i)
		}
		k := [2]CoreID{f.Src, f.Dst}
		if seen[k] {
			return fmt.Errorf("soc: use case %q duplicates flow %d->%d", u.Name, f.Src, f.Dst)
		}
		seen[k] = true
	}
	return nil
}

// MergeUseCases builds the worst-case synthesis spec over several
// traffic modes: the flow set is the union over all use cases, each
// (src,dst) pair carrying its maximum bandwidth and its tightest
// latency constraint. Synthesizing for the merged spec guarantees every
// individual mode fits (modes are subsets with smaller-or-equal
// bandwidths), which is how application-specific NoCs are provisioned
// for multi-mode SoCs.
//
// base supplies the cores and island structure; its own flow list is
// ignored (pass it as one of the use cases if it represents a mode).
func MergeUseCases(base *Spec, cases ...UseCase) (*Spec, error) {
	if len(cases) == 0 {
		return nil, fmt.Errorf("soc: no use cases to merge")
	}
	for i := range cases {
		if err := cases[i].Validate(base); err != nil {
			return nil, err
		}
	}
	type agg struct {
		bw  float64
		lat float64
	}
	merged := map[[2]CoreID]agg{}
	for _, uc := range cases {
		for _, f := range uc.Flows {
			k := [2]CoreID{f.Src, f.Dst}
			a, ok := merged[k]
			if !ok {
				merged[k] = agg{bw: f.BandwidthBps, lat: f.MaxLatencyCycles}
				continue
			}
			if f.BandwidthBps > a.bw {
				a.bw = f.BandwidthBps
			}
			if f.MaxLatencyCycles > 0 && (a.lat == 0 || f.MaxLatencyCycles < a.lat) { //noclint:ignore floateq 0 is the documented no-constraint sentinel, set only from the zero value
				a.lat = f.MaxLatencyCycles
			}
			merged[k] = a
		}
	}
	out := base.Clone()
	out.Name = base.Name + "_merged"
	out.Flows = out.Flows[:0]
	keys := make([][2]CoreID, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})
	for _, k := range keys {
		a := merged[k]
		out.Flows = append(out.Flows, Flow{
			Src: k[0], Dst: k[1], BandwidthBps: a.bw, MaxLatencyCycles: a.lat,
		})
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// IdleIslands returns the shutdown mask a mode admits: a shutdownable
// island whose cores neither source nor sink any of the mode's flows
// can be gated for the mode's duration.
func IdleIslands(spec *Spec, mode UseCase) []bool {
	used := make([]bool, len(spec.Islands))
	for _, f := range mode.Flows {
		used[spec.IslandOf[f.Src]] = true
		used[spec.IslandOf[f.Dst]] = true
	}
	off := make([]bool, len(spec.Islands))
	for i, isl := range spec.Islands {
		off[i] = isl.Shutdownable && !used[i]
	}
	return off
}
