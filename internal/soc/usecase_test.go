package soc

import (
	"testing"
)

func ucSpec() *Spec {
	return &Spec{
		Name: "uc",
		Cores: []Core{
			{ID: 0, Name: "a"}, {ID: 1, Name: "b"}, {ID: 2, Name: "c"}, {ID: 3, Name: "d"},
		},
		Flows: []Flow{{Src: 0, Dst: 1, BandwidthBps: 1}},
		Islands: []Island{
			{ID: 0, Name: "i0", VoltageV: 1},
			{ID: 1, Name: "i1", VoltageV: 1, Shutdownable: true},
		},
		IslandOf: []IslandID{0, 0, 1, 1},
	}
}

func TestMergeUseCases(t *testing.T) {
	base := ucSpec()
	a := UseCase{Name: "a", Flows: []Flow{
		{Src: 0, Dst: 1, BandwidthBps: 100e6, MaxLatencyCycles: 20},
		{Src: 2, Dst: 3, BandwidthBps: 50e6},
	}}
	b := UseCase{Name: "b", Flows: []Flow{
		{Src: 0, Dst: 1, BandwidthBps: 300e6, MaxLatencyCycles: 30},
		{Src: 1, Dst: 2, BandwidthBps: 10e6, MaxLatencyCycles: 40},
	}}
	m, err := MergeUseCases(base, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Flows) != 3 {
		t.Fatalf("merged flows = %d, want union of 3", len(m.Flows))
	}
	f, ok := m.FlowBetween(0, 1)
	if !ok || f.BandwidthBps != 300e6 || f.MaxLatencyCycles != 20 {
		t.Fatalf("merged 0->1 = %+v, want max bw 300e6 and tightest lat 20", f)
	}
	if _, ok := m.FlowBetween(2, 3); !ok {
		t.Fatal("flow unique to case a lost")
	}
	// merged spec ignores base's own flow list semantics but remains valid
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// base untouched
	if len(base.Flows) != 1 {
		t.Fatal("MergeUseCases mutated base")
	}
}

func TestMergeUseCasesErrors(t *testing.T) {
	base := ucSpec()
	if _, err := MergeUseCases(base); err == nil {
		t.Fatal("no cases accepted")
	}
	bad := []UseCase{
		{Name: "", Flows: []Flow{{Src: 0, Dst: 1, BandwidthBps: 1}}},
		{Name: "x", Flows: []Flow{{Src: 0, Dst: 9, BandwidthBps: 1}}},
		{Name: "x", Flows: []Flow{{Src: 0, Dst: 0, BandwidthBps: 1}}},
		{Name: "x", Flows: []Flow{{Src: 0, Dst: 1, BandwidthBps: 0}}},
		{Name: "x", Flows: []Flow{{Src: 0, Dst: 1, BandwidthBps: 1}, {Src: 0, Dst: 1, BandwidthBps: 2}}},
	}
	for i, uc := range bad {
		if _, err := MergeUseCases(base, uc); err == nil {
			t.Fatalf("bad case %d accepted", i)
		}
	}
}

func TestMergeLatencyOfUnconstrained(t *testing.T) {
	base := ucSpec()
	a := UseCase{Name: "a", Flows: []Flow{{Src: 0, Dst: 1, BandwidthBps: 1e6}}} // unconstrained
	b := UseCase{Name: "b", Flows: []Flow{{Src: 0, Dst: 1, BandwidthBps: 2e6, MaxLatencyCycles: 25}}}
	m, err := MergeUseCases(base, a, b)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := m.FlowBetween(0, 1)
	if f.MaxLatencyCycles != 25 {
		t.Fatalf("constraint %g, want the defined one to win", f.MaxLatencyCycles)
	}
}

func TestIdleIslands(t *testing.T) {
	spec := ucSpec()
	mode := UseCase{Name: "m", Flows: []Flow{{Src: 0, Dst: 1, BandwidthBps: 1e6}}}
	off := IdleIslands(spec, mode)
	if off[0] {
		t.Fatal("island 0 hosts active cores (and is not shutdownable)")
	}
	if !off[1] {
		t.Fatal("island 1 is idle and shutdownable: must be gateable")
	}
	// A mode touching island 1 keeps it on.
	mode2 := UseCase{Name: "m2", Flows: []Flow{{Src: 2, Dst: 3, BandwidthBps: 1e6}}}
	if IdleIslands(spec, mode2)[1] {
		t.Fatal("active island marked idle")
	}
}
