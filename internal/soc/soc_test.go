package soc

import (
	"math"
	"testing"
	"testing/quick"
)

// testSpec builds a small 3-island, 4-core spec used across the tests.
func testSpec() *Spec {
	return &Spec{
		Name: "t4",
		Cores: []Core{
			{ID: 0, Name: "cpu", Class: ClassCPU, AreaMM2: 2, DynPowerW: 0.2, LeakPowerW: 0.02},
			{ID: 1, Name: "mem", Class: ClassMemory, AreaMM2: 4, DynPowerW: 0.1, LeakPowerW: 0.04},
			{ID: 2, Name: "dsp", Class: ClassDSP, AreaMM2: 3, DynPowerW: 0.3, LeakPowerW: 0.03},
			{ID: 3, Name: "usb", Class: ClassIO, AreaMM2: 1, DynPowerW: 0.05, LeakPowerW: 0.01},
		},
		Flows: []Flow{
			{Src: 0, Dst: 1, BandwidthBps: 800e6, MaxLatencyCycles: 10},
			{Src: 1, Dst: 0, BandwidthBps: 800e6, MaxLatencyCycles: 10},
			{Src: 2, Dst: 1, BandwidthBps: 400e6, MaxLatencyCycles: 20},
			{Src: 3, Dst: 2, BandwidthBps: 20e6},
		},
		Islands: []Island{
			{ID: 0, Name: "cpu_isl", VoltageV: 1.1, Shutdownable: false},
			{ID: 1, Name: "mem_isl", VoltageV: 1.0, Shutdownable: false},
			{ID: 2, Name: "media_isl", VoltageV: 0.9, Shutdownable: true},
		},
		IslandOf: []IslandID{0, 1, 2, 2},
	}
}

func TestValidateOK(t *testing.T) {
	if err := testSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"no cores", func(s *Spec) { s.Cores = nil; s.IslandOf = nil }},
		{"no islands", func(s *Spec) { s.Islands = nil }},
		{"islandof length", func(s *Spec) { s.IslandOf = s.IslandOf[:2] }},
		{"non dense core id", func(s *Spec) { s.Cores[2].ID = 7 }},
		{"empty core name", func(s *Spec) { s.Cores[0].Name = "" }},
		{"negative area", func(s *Spec) { s.Cores[1].AreaMM2 = -1 }},
		{"non dense island id", func(s *Spec) { s.Islands[1].ID = 5 }},
		{"island out of range", func(s *Spec) { s.IslandOf[0] = 9 }},
		{"island negative", func(s *Spec) { s.IslandOf[3] = NoIsland }},
		{"flow endpoint range", func(s *Spec) { s.Flows[0].Dst = 99 }},
		{"flow self loop", func(s *Spec) { s.Flows[0].Dst = s.Flows[0].Src }},
		{"flow zero bandwidth", func(s *Spec) { s.Flows[1].BandwidthBps = 0 }},
		{"flow negative latency", func(s *Spec) { s.Flows[2].MaxLatencyCycles = -4 }},
		{"duplicate flow", func(s *Spec) { s.Flows = append(s.Flows, Flow{Src: 0, Dst: 1, BandwidthBps: 1}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := testSpec()
			tc.mutate(s)
			if err := s.Validate(); err == nil {
				t.Fatalf("mutation %q not caught by Validate", tc.name)
			}
		})
	}
}

func TestCoresIn(t *testing.T) {
	s := testSpec()
	got := s.CoresIn(2)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("CoresIn(2) = %v, want [2 3]", got)
	}
	if got := s.CoresIn(0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("CoresIn(0) = %v, want [0]", got)
	}
}

func TestFlowsBetween(t *testing.T) {
	s := testSpec()
	intra, inter := s.FlowsBetween()
	if len(intra) != 1 {
		t.Fatalf("intra = %v, want exactly the usb->dsp flow", intra)
	}
	if intra[0].Src != 3 || intra[0].Dst != 2 {
		t.Fatalf("intra flow = %+v", intra[0])
	}
	if len(inter) != 3 {
		t.Fatalf("inter count = %d, want 3", len(inter))
	}
}

func TestAggregateCoreBandwidth(t *testing.T) {
	s := testSpec()
	eg, in := s.AggregateCoreBandwidth()
	if eg[0] != 800e6 || in[0] != 800e6 {
		t.Fatalf("cpu egress/ingress = %g/%g", eg[0], in[0])
	}
	if in[1] != 1200e6 {
		t.Fatalf("mem ingress = %g, want 1.2e9", in[1])
	}
	if eg[3] != 20e6 || in[3] != 0 {
		t.Fatalf("usb egress/ingress = %g/%g", eg[3], in[3])
	}
}

func TestExtremaHelpers(t *testing.T) {
	s := testSpec()
	if got := s.MaxFlowBandwidth(); got != 800e6 {
		t.Fatalf("MaxFlowBandwidth = %g", got)
	}
	if got := s.MinLatencyConstraint(); got != 10 {
		t.Fatalf("MinLatencyConstraint = %g", got)
	}
	empty := &Spec{Name: "e", Cores: s.Cores, Islands: s.Islands, IslandOf: s.IslandOf}
	if empty.MaxFlowBandwidth() != 0 || empty.MinLatencyConstraint() != 0 {
		t.Fatal("extrema of flow-less spec should be 0")
	}
}

func TestTotals(t *testing.T) {
	s := testSpec()
	if got := s.TotalCoreDynPowerW(); math.Abs(got-0.65) > 1e-12 {
		t.Fatalf("TotalCoreDynPowerW = %g", got)
	}
	if got := s.TotalCoreLeakPowerW(); math.Abs(got-0.10) > 1e-12 {
		t.Fatalf("TotalCoreLeakPowerW = %g", got)
	}
	if got := s.TotalCoreAreaMM2(); got != 10 {
		t.Fatalf("TotalCoreAreaMM2 = %g", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := testSpec()
	c := s.Clone()
	c.Cores[0].Name = "changed"
	c.IslandOf[0] = 2
	c.Flows[0].BandwidthBps = 1
	c.Islands[0].Shutdownable = true
	if s.Cores[0].Name != "cpu" || s.IslandOf[0] != 0 || s.Flows[0].BandwidthBps != 800e6 || s.Islands[0].Shutdownable {
		t.Fatal("Clone shares state with the original")
	}
}

func TestMergedSingleIsland(t *testing.T) {
	m := testSpec().MergedSingleIsland()
	if err := m.Validate(); err != nil {
		t.Fatalf("merged spec invalid: %v", err)
	}
	if len(m.Islands) != 1 || m.Islands[0].Shutdownable {
		t.Fatalf("merged islands = %+v", m.Islands)
	}
	for c, id := range m.IslandOf {
		if id != 0 {
			t.Fatalf("core %d not in island 0", c)
		}
	}
	intra, inter := m.FlowsBetween()
	if len(inter) != 0 || len(intra) != 4 {
		t.Fatalf("merged spec still has inter-island flows: %d", len(inter))
	}
}

func TestReassignIslands(t *testing.T) {
	s := testSpec()
	isl := []Island{{ID: 0, Name: "a", VoltageV: 1}, {ID: 1, Name: "b", VoltageV: 1, Shutdownable: true}}
	re, err := s.ReassignIslands(isl, []IslandID{0, 0, 1, 1})
	if err != nil {
		t.Fatalf("ReassignIslands: %v", err)
	}
	if len(re.Islands) != 2 || re.IslandOf[2] != 1 {
		t.Fatalf("reassignment not applied: %+v", re.IslandOf)
	}
	if _, err := s.ReassignIslands(isl, []IslandID{0, 0, 1, 5}); err == nil {
		t.Fatal("invalid reassignment accepted")
	}
	// original untouched
	if len(s.Islands) != 3 {
		t.Fatal("ReassignIslands mutated the receiver")
	}
}

func TestSortFlowsByBandwidth(t *testing.T) {
	s := testSpec()
	fl := s.SortFlowsByBandwidth()
	for i := 1; i < len(fl); i++ {
		if fl[i].BandwidthBps > fl[i-1].BandwidthBps {
			t.Fatalf("flows not sorted at %d", i)
		}
	}
	// tie between the two 800e6 flows broken by src asc
	if fl[0].Src != 0 || fl[1].Src != 1 {
		t.Fatalf("tie-break wrong: %+v %+v", fl[0], fl[1])
	}
	// receiver's slice unmodified
	if s.Flows[3].BandwidthBps != 20e6 {
		t.Fatal("SortFlowsByBandwidth mutated the spec")
	}
}

func TestLookups(t *testing.T) {
	s := testSpec()
	c, ok := s.CoreByName("dsp")
	if !ok || c.ID != 2 {
		t.Fatalf("CoreByName(dsp) = %+v, %v", c, ok)
	}
	if _, ok := s.CoreByName("nope"); ok {
		t.Fatal("CoreByName found a ghost")
	}
	f, ok := s.FlowBetween(2, 1)
	if !ok || f.BandwidthBps != 400e6 {
		t.Fatalf("FlowBetween(2,1) = %+v, %v", f, ok)
	}
	if _, ok := s.FlowBetween(1, 2); ok {
		t.Fatal("FlowBetween found a reverse ghost")
	}
}

func TestCoreClassString(t *testing.T) {
	if ClassDSP.String() != "dsp" || ClassMemCtrl.String() != "memctrl" {
		t.Fatal("class names wrong")
	}
	if CoreClass(99).String() != "class(99)" {
		t.Fatal("out of range class name wrong")
	}
}

// Property: for any set of flows, aggregate egress and ingress bandwidth
// sums both equal the total flow bandwidth.
func TestAggregateBandwidthConservation(t *testing.T) {
	f := func(raw []uint16) bool {
		const n = 7
		s := &Spec{Name: "p", Islands: []Island{{ID: 0, Name: "i", VoltageV: 1}}}
		for i := 0; i < n; i++ {
			s.Cores = append(s.Cores, Core{ID: CoreID(i), Name: string(rune('a' + i))})
			s.IslandOf = append(s.IslandOf, 0)
		}
		seen := map[[2]CoreID]bool{}
		var total float64
		for i, r := range raw {
			src := CoreID(int(r) % n)
			dst := CoreID((int(r)/n + 1 + int(src)) % n)
			if src == dst {
				continue
			}
			k := [2]CoreID{src, dst}
			if seen[k] {
				continue
			}
			seen[k] = true
			bw := float64(r%997+1) * 1e6 * float64(i+1)
			total += bw
			s.Flows = append(s.Flows, Flow{Src: src, Dst: dst, BandwidthBps: bw})
		}
		eg, in := s.AggregateCoreBandwidth()
		var se, si float64
		for i := range eg {
			se += eg[i]
			si += in[i]
		}
		return math.Abs(se-total) < 1e-6 && math.Abs(si-total) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
