// Package soc defines the input specification for the NoC topology
// synthesis problem: the cores of the system, the traffic flows between
// them, and the assignment of cores to voltage islands.
//
// The types in this package mirror the "Example Input" of the paper
// (Fig. 1): a set of heterogeneous cores, each annotated with physical
// properties (area, leakage, operating frequency), a set of directed
// communication flows annotated with bandwidth and latency constraints,
// and a partition of the cores into voltage islands, some of which may be
// shut down at run time.
package soc

import (
	"fmt"
	"sort"
)

// CoreID identifies a core within a SoC specification. IDs are dense
// indices in [0, len(Cores)).
type CoreID int

// IslandID identifies a voltage island. IDs are dense indices in
// [0, len(Islands)). The special value NoIsland marks an unassigned core.
type IslandID int

// NoIsland marks a core that has not been assigned to any island.
const NoIsland IslandID = -1

// CoreClass is a coarse functional classification of a core. It drives
// the "logical partitioning" of cores into voltage islands (cores with
// related functionality share an island) and the leakage/area defaults.
type CoreClass int

// Functional classes found in the mobile/multimedia SoCs the paper
// evaluates on.
const (
	ClassCPU CoreClass = iota // general purpose processors
	ClassDSP                  // digital signal processors
	ClassCache
	ClassMemory     // on-chip SRAM/ROM, integrated memories
	ClassMemCtrl    // external memory controllers
	ClassDMA        // DMA engines
	ClassAccel      // video/audio/crypto accelerator engines
	ClassPeripheral // low/medium speed I/O peripherals
	ClassIO         // high speed I/O (USB, radio, network)
	numCoreClasses
)

var coreClassNames = [...]string{
	ClassCPU:        "cpu",
	ClassDSP:        "dsp",
	ClassCache:      "cache",
	ClassMemory:     "memory",
	ClassMemCtrl:    "memctrl",
	ClassDMA:        "dma",
	ClassAccel:      "accel",
	ClassPeripheral: "periph",
	ClassIO:         "io",
}

// String returns the lower-case name of the class.
func (c CoreClass) String() string {
	if c < 0 || int(c) >= len(coreClassNames) {
		return fmt.Sprintf("class(%d)", int(c))
	}
	return coreClassNames[c]
}

// Core describes one IP block of the SoC.
type Core struct {
	ID    CoreID
	Name  string
	Class CoreClass

	// AreaMM2 is the silicon area of the core in mm^2, used by the
	// floorplanner and by the SoC-level area-overhead accounting.
	AreaMM2 float64

	// FreqHz is the core's own operating frequency. The network
	// interface performs clock conversion between the core clock and
	// the island's NoC clock, so this does not constrain the NoC
	// frequency directly; it is reported for completeness.
	FreqHz float64

	// DynPowerW is the core's active dynamic power draw in watts. It is
	// only used for SoC-level power accounting (the NoC overhead is
	// quoted relative to total system dynamic power).
	DynPowerW float64

	// LeakPowerW is the core's leakage power in watts; eliminated when
	// the island containing the core is shut down.
	LeakPowerW float64
}

// Flow is a directed traffic flow between two cores.
type Flow struct {
	Src, Dst CoreID

	// BandwidthBps is the sustained bandwidth demand in bytes/second.
	BandwidthBps float64

	// MaxLatencyCycles is the zero-load latency constraint for the flow,
	// expressed in NoC cycles of the source island (the paper expresses
	// latency constraints in cycles). Zero means unconstrained.
	MaxLatencyCycles float64
}

// Island is one voltage island of the design.
type Island struct {
	ID   IslandID
	Name string

	// VoltageV is the supply voltage of the island.
	VoltageV float64

	// Shutdownable reports whether the island may be power gated. The
	// paper keeps shared-memory islands always on; the synthesized NoC
	// must allow every shutdownable island to be gated without breaking
	// traffic between the remaining islands.
	Shutdownable bool
}

// Spec is a complete synthesis problem instance.
type Spec struct {
	Name    string
	Cores   []Core
	Flows   []Flow
	Islands []Island

	// IslandOf maps each core to its voltage island. len(IslandOf) ==
	// len(Cores).
	IslandOf []IslandID
}

// Validate checks the internal consistency of the specification. It
// verifies ID density, island assignment bounds, flow endpoints, and
// strictly positive bandwidths.
func (s *Spec) Validate() error {
	if len(s.Cores) == 0 {
		return fmt.Errorf("spec %q: no cores", s.Name)
	}
	if len(s.IslandOf) != len(s.Cores) {
		return fmt.Errorf("spec %q: IslandOf has %d entries for %d cores", s.Name, len(s.IslandOf), len(s.Cores))
	}
	if len(s.Islands) == 0 {
		return fmt.Errorf("spec %q: no islands", s.Name)
	}
	for i, c := range s.Cores {
		if c.ID != CoreID(i) {
			return fmt.Errorf("spec %q: core %d has ID %d (must be dense)", s.Name, i, c.ID)
		}
		if c.Name == "" {
			return fmt.Errorf("spec %q: core %d has empty name", s.Name, i)
		}
		if c.AreaMM2 < 0 || c.DynPowerW < 0 || c.LeakPowerW < 0 {
			return fmt.Errorf("spec %q: core %q has negative physical parameter", s.Name, c.Name)
		}
	}
	for i, isl := range s.Islands {
		if isl.ID != IslandID(i) {
			return fmt.Errorf("spec %q: island %d has ID %d (must be dense)", s.Name, i, isl.ID)
		}
	}
	for i, id := range s.IslandOf {
		if id < 0 || int(id) >= len(s.Islands) {
			return fmt.Errorf("spec %q: core %q assigned to invalid island %d", s.Name, s.Cores[i].Name, id)
		}
	}
	seen := make(map[[2]CoreID]bool, len(s.Flows))
	for i, f := range s.Flows {
		if f.Src < 0 || int(f.Src) >= len(s.Cores) || f.Dst < 0 || int(f.Dst) >= len(s.Cores) {
			return fmt.Errorf("spec %q: flow %d has out-of-range endpoint", s.Name, i)
		}
		if f.Src == f.Dst {
			return fmt.Errorf("spec %q: flow %d is a self loop on core %q", s.Name, i, s.Cores[f.Src].Name)
		}
		if f.BandwidthBps <= 0 {
			return fmt.Errorf("spec %q: flow %d (%q->%q) has non-positive bandwidth", s.Name, i, s.Cores[f.Src].Name, s.Cores[f.Dst].Name)
		}
		if f.MaxLatencyCycles < 0 {
			return fmt.Errorf("spec %q: flow %d has negative latency constraint", s.Name, i)
		}
		key := [2]CoreID{f.Src, f.Dst}
		if seen[key] {
			return fmt.Errorf("spec %q: duplicate flow %q->%q", s.Name, s.Cores[f.Src].Name, s.Cores[f.Dst].Name)
		}
		seen[key] = true
	}
	return nil
}

// CoresIn returns the IDs of the cores assigned to island isl, in
// ascending order.
func (s *Spec) CoresIn(isl IslandID) []CoreID {
	var out []CoreID
	for c, id := range s.IslandOf {
		if id == isl {
			out = append(out, CoreID(c))
		}
	}
	return out
}

// FlowsBetween partitions the flow list by island relationship: intra
// returns flows whose endpoints share an island, inter returns flows
// that cross islands.
func (s *Spec) FlowsBetween() (intra, inter []Flow) {
	for _, f := range s.Flows {
		if s.IslandOf[f.Src] == s.IslandOf[f.Dst] {
			intra = append(intra, f)
		} else {
			inter = append(inter, f)
		}
	}
	return intra, inter
}

// CoreByName returns the core with the given name, or false when absent.
func (s *Spec) CoreByName(name string) (Core, bool) {
	for _, c := range s.Cores {
		if c.Name == name {
			return c, true
		}
	}
	return Core{}, false
}

// FlowBetween returns the flow src->dst if present.
func (s *Spec) FlowBetween(src, dst CoreID) (Flow, bool) {
	for _, f := range s.Flows {
		if f.Src == src && f.Dst == dst {
			return f, true
		}
	}
	return Flow{}, false
}

// TotalCoreDynPowerW sums the dynamic power of all cores; the paper's
// "3% of SoC active power" overhead is quoted against this plus the NoC.
func (s *Spec) TotalCoreDynPowerW() float64 {
	var sum float64
	for _, c := range s.Cores {
		sum += c.DynPowerW
	}
	return sum
}

// TotalCoreLeakPowerW sums the leakage power of all cores.
func (s *Spec) TotalCoreLeakPowerW() float64 {
	var sum float64
	for _, c := range s.Cores {
		sum += c.LeakPowerW
	}
	return sum
}

// TotalCoreAreaMM2 sums the area of all cores.
func (s *Spec) TotalCoreAreaMM2() float64 {
	var sum float64
	for _, c := range s.Cores {
		sum += c.AreaMM2
	}
	return sum
}

// AggregateCoreBandwidth returns, per core, the sum of egress and the sum
// of ingress flow bandwidth in bytes/second. The NI<->switch link of a
// core must sustain these, which in turn fixes the minimum NoC frequency
// of the island (Algorithm 1, step 1).
func (s *Spec) AggregateCoreBandwidth() (egress, ingress []float64) {
	egress = make([]float64, len(s.Cores))
	ingress = make([]float64, len(s.Cores))
	for _, f := range s.Flows {
		egress[f.Src] += f.BandwidthBps
		ingress[f.Dst] += f.BandwidthBps
	}
	return egress, ingress
}

// MaxFlowBandwidth returns the largest bandwidth over all flows
// (max_bw in Definition 1). It returns 0 for a flow-less spec.
func (s *Spec) MaxFlowBandwidth() float64 {
	var max float64
	for _, f := range s.Flows {
		if f.BandwidthBps > max {
			max = f.BandwidthBps
		}
	}
	return max
}

// MinLatencyConstraint returns the tightest (smallest non-zero) latency
// constraint over all flows (min_lat in Definition 1). It returns 0 when
// no flow is latency constrained.
func (s *Spec) MinLatencyConstraint() float64 {
	min := 0.0
	for _, f := range s.Flows {
		if f.MaxLatencyCycles > 0 && (min == 0 || f.MaxLatencyCycles < min) { //noclint:ignore floateq 0 is the documented no-constraint sentinel, set only from the zero value
			min = f.MaxLatencyCycles
		}
	}
	return min
}

// Clone returns a deep copy of the spec. Synthesis sweeps mutate island
// assignments; cloning keeps benchmark definitions immutable.
func (s *Spec) Clone() *Spec {
	out := &Spec{
		Name:     s.Name,
		Cores:    append([]Core(nil), s.Cores...),
		Flows:    append([]Flow(nil), s.Flows...),
		Islands:  append([]Island(nil), s.Islands...),
		IslandOf: append([]IslandID(nil), s.IslandOf...),
	}
	return out
}

// ReassignIslands returns a copy of the spec with a new island structure.
// islandOf must have one entry per core; islands must be dense.
func (s *Spec) ReassignIslands(islands []Island, islandOf []IslandID) (*Spec, error) {
	out := s.Clone()
	out.Islands = append([]Island(nil), islands...)
	out.IslandOf = append([]IslandID(nil), islandOf...)
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// MergedSingleIsland returns a copy of the spec with every core in one
// always-on island. This is the island-oblivious baseline configuration
// (the "1 island" reference point of Figs. 2 and 3).
func (s *Spec) MergedSingleIsland() *Spec {
	out := s.Clone()
	out.Islands = []Island{{ID: 0, Name: "chip", VoltageV: 1.0, Shutdownable: false}}
	out.IslandOf = make([]IslandID, len(s.Cores))
	return out
}

// SortFlowsByBandwidth returns the spec's flows ordered by decreasing
// bandwidth, breaking ties by (src, dst) for determinism. Algorithm 1
// step 15 routes flows in this order.
func (s *Spec) SortFlowsByBandwidth() []Flow {
	out := append([]Flow(nil), s.Flows...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].BandwidthBps != out[j].BandwidthBps { //noclint:ignore floateq exact tie-break fixes the paper's step-15 routing order
			return out[i].BandwidthBps > out[j].BandwidthBps
		}
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

// ParseClass converts a class name (as produced by CoreClass.String)
// back to the class value.
func ParseClass(name string) (CoreClass, error) {
	for c, n := range coreClassNames {
		if n == name {
			return CoreClass(c), nil
		}
	}
	return 0, fmt.Errorf("soc: unknown core class %q", name)
}
