// Package verify runs the complete design-rule suite over a synthesized
// topology and produces a structured sign-off report: structural
// validity, the shutdown-safety matrix (which islands can be gated and
// what survives), deadlock analysis, link capacity headroom, wire
// timing after floorplanning, and the power summary. The command-line
// tools print it; tests assert on it.
package verify

import (
	"fmt"
	"math"
	"strings"

	"nocvi/internal/deadlock"
	"nocvi/internal/floorplan"
	"nocvi/internal/num"
	"nocvi/internal/power"
	"nocvi/internal/sim"
	"nocvi/internal/soc"
	"nocvi/internal/topology"
)

// IslandReport is one row of the shutdown matrix.
type IslandReport struct {
	Island       soc.IslandID
	Name         string
	Shutdownable bool
	// SurvivingFlows counts flows still routable with this island
	// gated; LostFlows those sourced/sunk in it (legitimately lost).
	SurvivingFlows int
	LostFlows      int
	// DeliveryOK is the simulator's confirmation for gateable islands.
	DeliveryOK bool
	// SavedFrac is the system power fraction recovered by gating it.
	SavedFrac float64
}

// LinkReport flags the tightest links.
type LinkReport struct {
	Link        topology.LinkID
	Utilization float64
}

// Report is the full sign-off result.
type Report struct {
	Structural error // nil when the topology validates
	Deadlock   *deadlock.Report
	Islands    []IslandReport

	// MaxUtilization and TightLinks summarize capacity headroom
	// (links above 80% utilization are listed).
	MaxUtilization float64
	TightLinks     []LinkReport

	// WireViolations lists links exceeding the single-cycle wire budget
	// (empty when the topology has no floorplan annotations).
	WireViolations []topology.LinkID

	// Power is the all-on NoC breakdown.
	Power power.Breakdown
}

// OK reports overall sign-off: structurally valid, deadlock free, every
// gateable island verified, no capacity overruns.
func (r *Report) OK() bool {
	if r.Structural != nil || !r.Deadlock.Free() || !num.Leq(r.MaxUtilization, 1) {
		return false
	}
	for _, isl := range r.Islands {
		if isl.Shutdownable && !isl.DeliveryOK {
			return false
		}
	}
	return true
}

// Run executes the full suite. pl may be nil when the topology carries
// link-length annotations already (wire checks then use those).
func Run(top *topology.Topology, pl *floorplan.Placement) *Report {
	r := &Report{
		Structural: top.Validate(),
		Deadlock:   deadlock.Analyze(top),
		Power:      power.NoC(top),
	}
	r.MaxUtilization = top.MaxLinkUtilization()
	for _, l := range top.Links {
		if l.CapacityBps > 0 {
			if u := l.TrafficBps / l.CapacityBps; u > 0.8 {
				r.TightLinks = append(r.TightLinks, LinkReport{Link: l.ID, Utilization: u})
			}
		}
	}
	if pl != nil {
		r.WireViolations = floorplan.WireDelayViolations(top, pl)
	}
	for i, isl := range top.Spec.Islands {
		ir := IslandReport{Island: soc.IslandID(i), Name: isl.Name, Shutdownable: isl.Shutdownable}
		for _, f := range top.Spec.Flows {
			if top.Spec.IslandOf[f.Src] == soc.IslandID(i) || top.Spec.IslandOf[f.Dst] == soc.IslandID(i) {
				ir.LostFlows++
			} else {
				ir.SurvivingFlows++
			}
		}
		if isl.Shutdownable {
			off := make([]bool, len(top.Spec.Islands))
			off[i] = true
			ir.DeliveryOK = sim.VerifyShutdownDelivery(top, off) == nil
			if _, _, frac, err := power.Savings(top, power.Scenario{Name: isl.Name, Off: off}); err == nil {
				ir.SavedFrac = frac
			}
		}
		r.Islands = append(r.Islands, ir)
	}
	return r
}

// Format renders the report for humans.
func (r *Report) Format() string {
	var b strings.Builder
	status := "PASS"
	if !r.OK() {
		status = "FAIL"
	}
	fmt.Fprintf(&b, "design sign-off: %s\n", status)
	if r.Structural != nil {
		fmt.Fprintf(&b, "  structural: %v\n", r.Structural)
	} else {
		b.WriteString("  structural: ok\n")
	}
	fmt.Fprintf(&b, "  deadlock: %s\n", r.Deadlock)
	fmt.Fprintf(&b, "  capacity: max link utilization %.0f%%", r.MaxUtilization*100)
	if len(r.TightLinks) > 0 {
		b.WriteString(" (tight:")
		for _, t := range r.TightLinks {
			fmt.Fprintf(&b, " link%d=%.0f%%", t.Link, t.Utilization*100)
		}
		b.WriteString(")")
	}
	b.WriteString("\n")
	if len(r.WireViolations) > 0 {
		fmt.Fprintf(&b, "  wire timing: %d links exceed the single-cycle budget: %v\n",
			len(r.WireViolations), r.WireViolations)
	} else {
		b.WriteString("  wire timing: ok\n")
	}
	fmt.Fprintf(&b, "  NoC power: %.2f mW dynamic, %.2f mW leakage\n",
		r.Power.DynW()*1e3, r.Power.LeakW()*1e3)
	b.WriteString("  shutdown matrix:\n")
	for _, isl := range r.Islands {
		if !isl.Shutdownable {
			fmt.Fprintf(&b, "    %-12s always-on   (%d flows touch it)\n", isl.Name, isl.LostFlows)
			continue
		}
		ok := "delivery ok"
		if !isl.DeliveryOK {
			ok = "DELIVERY FAILED"
		}
		fmt.Fprintf(&b, "    %-12s gateable    %3d flows survive, %2d lost with it, saves %4.1f%%  [%s]\n",
			isl.Name, isl.SurvivingFlows, isl.LostFlows, isl.SavedFrac*100, ok)
	}
	return b.String()
}

// RoundTripUtilization is a helper for tests: the utilization recomputed
// from routes must match the link bookkeeping.
func RoundTripUtilization(top *topology.Topology) float64 {
	traffic := make([]float64, len(top.Links))
	for ri := range top.Routes {
		for _, l := range top.Routes[ri].Links {
			traffic[l] += top.Routes[ri].Flow.BandwidthBps
		}
	}
	var worst float64
	for i, l := range top.Links {
		if !num.Within(traffic[i], l.TrafficBps, 1e-6) {
			return math.Inf(1) // bookkeeping broken
		}
		if l.CapacityBps > 0 {
			if u := traffic[i] / l.CapacityBps; u > worst {
				worst = u
			}
		}
	}
	return worst
}
