package verify_test

import (
	"math"
	"strings"
	"testing"

	"nocvi/internal/bench"
	"nocvi/internal/core"
	"nocvi/internal/model"
	"nocvi/internal/verify"
	"nocvi/internal/viplace"
)

func synth(t *testing.T) *core.DesignPoint {
	t.Helper()
	spec, err := bench.D26Islands(viplace.MethodLogical, 6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Synthesize(spec, model.Default65nm(), core.Options{
		AllowIntermediate: true, MaxDesignPoints: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Best()
}

func TestSignoffPasses(t *testing.T) {
	dp := synth(t)
	rep := verify.Run(dp.Top, dp.Placement)
	if !rep.OK() {
		t.Fatalf("synthesized design fails sign-off:\n%s", rep.Format())
	}
	if rep.Structural != nil {
		t.Fatal(rep.Structural)
	}
	if !rep.Deadlock.Free() {
		t.Fatal("deadlock reported")
	}
	if rep.MaxUtilization <= 0 || rep.MaxUtilization > 1 {
		t.Fatalf("utilization %g out of (0,1]", rep.MaxUtilization)
	}
	if len(rep.WireViolations) != 0 {
		t.Fatalf("wire violations: %v", rep.WireViolations)
	}
	if rep.Power.DynW() <= 0 {
		t.Fatal("power missing")
	}
	// Shutdown matrix covers all islands and flow counts add up.
	if len(rep.Islands) != len(dp.Top.Spec.Islands) {
		t.Fatal("island matrix incomplete")
	}
	for _, isl := range rep.Islands {
		if isl.SurvivingFlows+isl.LostFlows != len(dp.Top.Spec.Flows) {
			t.Fatalf("island %s: %d+%d flows != %d",
				isl.Name, isl.SurvivingFlows, isl.LostFlows, len(dp.Top.Spec.Flows))
		}
		if isl.Shutdownable && (!isl.DeliveryOK || isl.SavedFrac <= 0) {
			t.Fatalf("gateable island %s not verified: %+v", isl.Name, isl)
		}
	}
}

func TestSignoffFormat(t *testing.T) {
	dp := synth(t)
	out := verify.Run(dp.Top, dp.Placement).Format()
	for _, want := range []string{"PASS", "deadlock-free", "shutdown matrix", "gateable", "always-on"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestSignoffCatchesOverload(t *testing.T) {
	dp := synth(t)
	if len(dp.Top.Links) == 0 {
		t.Skip("no links")
	}
	dp.Top.Links[0].TrafficBps = dp.Top.Links[0].CapacityBps * 3
	rep := verify.Run(dp.Top, dp.Placement)
	if rep.OK() {
		t.Fatal("overloaded design passed sign-off")
	}
	if rep.MaxUtilization < 3 {
		t.Fatalf("utilization %g should reflect the overload", rep.MaxUtilization)
	}
	if !strings.Contains(rep.Format(), "FAIL") {
		t.Fatal("report should say FAIL")
	}
	// The round-trip helper must now disagree with the books.
	if !math.IsInf(verify.RoundTripUtilization(dp.Top), 1) {
		t.Fatal("traffic bookkeeping corruption not detected")
	}
}

func TestRoundTripUtilizationAgrees(t *testing.T) {
	dp := synth(t)
	rt := verify.RoundTripUtilization(dp.Top)
	if math.IsInf(rt, 1) {
		t.Fatal("bookkeeping mismatch on a fresh design")
	}
	if math.Abs(rt-dp.Top.MaxLinkUtilization()) > 1e-9 {
		t.Fatalf("round-trip %g vs books %g", rt, dp.Top.MaxLinkUtilization())
	}
}

func TestSignoffNilPlacement(t *testing.T) {
	dp := synth(t)
	rep := verify.Run(dp.Top, nil)
	if len(rep.WireViolations) != 0 {
		t.Fatal("nil placement should skip wire checks")
	}
	if !rep.OK() {
		t.Fatal("nil-placement sign-off failed")
	}
}
