package graph

import (
	"testing"
	"testing/quick"
)

func TestHasCycleAcyclic(t *testing.T) {
	g := NewDirected(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 4, 1)
	if has, c := g.HasCycle(); has {
		t.Fatalf("acyclic DAG reported cyclic: %v", c)
	}
	order, ok := g.TopoSort()
	if !ok || len(order) != 5 {
		t.Fatalf("toposort failed: %v %v", order, ok)
	}
	pos := make([]int, 5)
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Fatalf("toposort violates edge %d->%d", e.From, e.To)
		}
	}
}

func TestHasCycleSimple(t *testing.T) {
	g := NewDirected(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 0, 1)
	g.AddEdge(2, 3, 1)
	has, cycle := g.HasCycle()
	if !has {
		t.Fatal("3-cycle not detected")
	}
	// witness must be a closed walk along existing edges
	if len(cycle) < 3 || cycle[0] != cycle[len(cycle)-1] {
		t.Fatalf("witness not closed: %v", cycle)
	}
	for i := 1; i < len(cycle); i++ {
		if !g.HasEdge(cycle[i-1], cycle[i]) {
			t.Fatalf("witness uses missing edge %d->%d (%v)", cycle[i-1], cycle[i], cycle)
		}
	}
	if _, ok := g.TopoSort(); ok {
		t.Fatal("toposort of cyclic graph succeeded")
	}
}

func TestHasCycleSelfContained(t *testing.T) {
	// two components, cycle only in the second
	g := NewDirected(6)
	g.AddEdge(0, 1, 1)
	g.AddEdge(3, 4, 1)
	g.AddEdge(4, 5, 1)
	g.AddEdge(5, 3, 1)
	has, cycle := g.HasCycle()
	if !has {
		t.Fatal("cycle in second component missed")
	}
	for _, v := range cycle {
		if v < 3 {
			t.Fatalf("witness strays into acyclic component: %v", cycle)
		}
	}
}

func TestHasCycleTwoNode(t *testing.T) {
	g := NewDirected(2)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 0, 1)
	if has, _ := g.HasCycle(); !has {
		t.Fatal("2-cycle not detected")
	}
}

func TestHasCycleEmpty(t *testing.T) {
	g := NewDirected(0)
	if has, _ := g.HasCycle(); has {
		t.Fatal("empty graph cyclic?!")
	}
	if _, ok := g.TopoSort(); !ok {
		t.Fatal("empty toposort failed")
	}
}

// Property: HasCycle and TopoSort agree on random graphs, and any
// returned witness is a closed walk.
func TestCycleAgreesWithTopo(t *testing.T) {
	f := func(seed int64) bool {
		r := newLCG(seed)
		n := 2 + int(r.next()%12)
		g := NewDirected(n)
		for i := 0; i < n*2; i++ {
			u := int(r.next() % uint64(n))
			v := int(r.next() % uint64(n))
			if u != v {
				g.AddEdge(u, v, 1)
			}
		}
		has, cycle := g.HasCycle()
		_, ok := g.TopoSort()
		if has == ok {
			return false // must disagree: cyclic <=> no topo order
		}
		if has {
			if len(cycle) < 3 || cycle[0] != cycle[len(cycle)-1] {
				return false
			}
			for i := 1; i < len(cycle); i++ {
				if !g.HasEdge(cycle[i-1], cycle[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
