// Package graph provides small, allocation-conscious directed and
// undirected weighted graph types together with the algorithms the
// synthesis flow needs: Dijkstra shortest paths with per-query edge
// costs, breadth-first reachability, connected components, and simple
// degree/weight bookkeeping.
//
// Vertices are dense integers in [0, N). The synthesis engine maps cores
// and switches onto these indices.
package graph

import (
	"container/heap"
	"fmt"
	"math"
)

// Edge is a directed edge with a weight (bandwidth, cost, ...).
type Edge struct {
	From, To int
	Weight   float64
}

// Directed is a directed multigraph-free weighted graph with O(1)
// adjacency iteration. Adding an edge that already exists accumulates its
// weight, which matches how communication graphs merge parallel flows.
type Directed struct {
	n   int
	adj [][]halfEdge // outgoing
	in  [][]halfEdge // incoming
	m   int
}

type halfEdge struct {
	to int
	w  float64
}

// NewDirected creates a directed graph with n vertices and no edges.
func NewDirected(n int) *Directed {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Directed{n: n, adj: make([][]halfEdge, n), in: make([][]halfEdge, n)}
}

// N returns the number of vertices.
func (g *Directed) N() int { return g.n }

// M returns the number of distinct directed edges.
func (g *Directed) M() int { return g.m }

// AddEdge inserts the edge u->v with weight w, accumulating the weight if
// the edge already exists. Self loops are rejected.
func (g *Directed) AddEdge(u, v int, w float64) {
	g.check(u)
	g.check(v)
	if u == v {
		panic(fmt.Sprintf("graph: self loop on %d", u))
	}
	for i := range g.adj[u] {
		if g.adj[u][i].to == v {
			g.adj[u][i].w += w
			for j := range g.in[v] {
				if g.in[v][j].to == u {
					g.in[v][j].w += w
					break
				}
			}
			return
		}
	}
	g.adj[u] = append(g.adj[u], halfEdge{to: v, w: w})
	g.in[v] = append(g.in[v], halfEdge{to: u, w: w})
	g.m++
}

// HasEdge reports whether u->v exists.
func (g *Directed) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	for _, e := range g.adj[u] {
		if e.to == v {
			return true
		}
	}
	return false
}

// Weight returns the weight of u->v, or 0 when absent.
func (g *Directed) Weight(u, v int) float64 {
	g.check(u)
	g.check(v)
	for _, e := range g.adj[u] {
		if e.to == v {
			return e.w
		}
	}
	return 0
}

// Succ calls fn for every outgoing edge of u.
func (g *Directed) Succ(u int, fn func(v int, w float64)) {
	g.check(u)
	for _, e := range g.adj[u] {
		fn(e.to, e.w)
	}
}

// Pred calls fn for every incoming edge of u.
func (g *Directed) Pred(u int, fn func(v int, w float64)) {
	g.check(u)
	for _, e := range g.in[u] {
		fn(e.to, e.w)
	}
}

// OutDegree returns the number of outgoing edges of u.
func (g *Directed) OutDegree(u int) int { g.check(u); return len(g.adj[u]) }

// InDegree returns the number of incoming edges of u.
func (g *Directed) InDegree(u int) int { g.check(u); return len(g.in[u]) }

// Edges returns all edges in deterministic (source, insertion) order.
func (g *Directed) Edges() []Edge {
	out := make([]Edge, 0, g.m)
	for u := 0; u < g.n; u++ {
		for _, e := range g.adj[u] {
			out = append(out, Edge{From: u, To: e.to, Weight: e.w})
		}
	}
	return out
}

// TotalWeight sums the weights of all edges.
func (g *Directed) TotalWeight() float64 {
	var sum float64
	for u := 0; u < g.n; u++ {
		for _, e := range g.adj[u] {
			sum += e.w
		}
	}
	return sum
}

// Undirect returns the undirected view of g: an edge {u,v} with weight
// w(u->v)+w(v->u). Min-cut partitioning operates on this view.
func (g *Directed) Undirect() *Undirected {
	u := NewUndirected(g.n)
	for _, e := range g.Edges() {
		u.AddEdge(e.From, e.To, e.Weight)
	}
	return u
}

func (g *Directed) check(u int) {
	if u < 0 || u >= g.n {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", u, g.n))
	}
}

// Undirected is an undirected weighted graph. Parallel edge insertions
// accumulate weight.
type Undirected struct {
	n   int
	adj [][]halfEdge
	m   int
}

// NewUndirected creates an undirected graph with n vertices.
func NewUndirected(n int) *Undirected {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Undirected{n: n, adj: make([][]halfEdge, n)}
}

// N returns the number of vertices.
func (g *Undirected) N() int { return g.n }

// M returns the number of distinct undirected edges.
func (g *Undirected) M() int { return g.m }

// AddEdge inserts {u,v} with weight w, accumulating if present.
func (g *Undirected) AddEdge(u, v int, w float64) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic("graph: vertex out of range")
	}
	if u == v {
		panic(fmt.Sprintf("graph: self loop on %d", u))
	}
	for i := range g.adj[u] {
		if g.adj[u][i].to == v {
			g.adj[u][i].w += w
			for j := range g.adj[v] {
				if g.adj[v][j].to == u {
					g.adj[v][j].w += w
					break
				}
			}
			return
		}
	}
	g.adj[u] = append(g.adj[u], halfEdge{to: v, w: w})
	g.adj[v] = append(g.adj[v], halfEdge{to: u, w: w})
	g.m++
}

// Weight returns the weight of {u,v}, 0 when absent.
func (g *Undirected) Weight(u, v int) float64 {
	for _, e := range g.adj[u] {
		if e.to == v {
			return e.w
		}
	}
	return 0
}

// Neighbors calls fn for every edge incident to u.
func (g *Undirected) Neighbors(u int, fn func(v int, w float64)) {
	for _, e := range g.adj[u] {
		fn(e.to, e.w)
	}
}

// Degree returns the number of edges incident to u.
func (g *Undirected) Degree(u int) int { return len(g.adj[u]) }

// WeightedDegree returns the total incident edge weight of u.
func (g *Undirected) WeightedDegree(u int) float64 {
	var sum float64
	for _, e := range g.adj[u] {
		sum += e.w
	}
	return sum
}

// Components returns the connected components as a vertex->component map
// and the component count. Component IDs are dense and assigned in
// ascending order of their smallest vertex.
func (g *Undirected) Components() (comp []int, count int) {
	comp = make([]int, g.n)
	for i := range comp {
		comp[i] = -1
	}
	var queue []int
	for s := 0; s < g.n; s++ {
		if comp[s] != -1 {
			continue
		}
		comp[s] = count
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, e := range g.adj[u] {
				if comp[e.to] == -1 {
					comp[e.to] = count
					queue = append(queue, e.to)
				}
			}
		}
		count++
	}
	return comp, count
}

// CutWeight returns the total weight of edges crossing the given
// bipartition (part[v] selects the side of v).
func (g *Undirected) CutWeight(part []bool) float64 {
	var cut float64
	for u := 0; u < g.n; u++ {
		for _, e := range g.adj[u] {
			if u < e.to && part[u] != part[e.to] {
				cut += e.w
			}
		}
	}
	return cut
}

// Inf is the distance reported by Dijkstra for unreachable vertices.
var Inf = math.Inf(1)

// CostFunc computes the traversal cost of edge u->v with static weight w.
// Returning +Inf excludes the edge for the current query.
type CostFunc func(u, v int, w float64) float64

// pqItem is a priority queue entry for Dijkstra.
type pqItem struct {
	v    int
	dist float64
}

type pq []pqItem

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].dist < p[j].dist }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}

// Dijkstra computes least-cost distances from src over the directed
// graph, evaluating edge costs through cost (nil means use the static
// weights). It returns the distance slice and the predecessor slice
// (-1 for src and unreachable vertices).
func (g *Directed) Dijkstra(src int, cost CostFunc) (dist []float64, pred []int) {
	g.check(src)
	dist = make([]float64, g.n)
	pred = make([]int, g.n)
	for i := range dist {
		dist[i] = Inf
		pred[i] = -1
	}
	dist[src] = 0
	h := &pq{{v: src, dist: 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(pqItem)
		if it.dist > dist[it.v] {
			continue
		}
		for _, e := range g.adj[it.v] {
			c := e.w
			if cost != nil {
				c = cost(it.v, e.to, e.w)
			}
			if math.IsInf(c, 1) {
				continue
			}
			if c < 0 {
				panic("graph: negative edge cost in Dijkstra")
			}
			if nd := it.dist + c; nd < dist[e.to] {
				dist[e.to] = nd
				pred[e.to] = it.v
				heap.Push(h, pqItem{v: e.to, dist: nd})
			}
		}
	}
	return dist, pred
}

// ShortestPath returns the least-cost path src..dst (inclusive) and its
// cost, or nil and +Inf when unreachable.
func (g *Directed) ShortestPath(src, dst int, cost CostFunc) ([]int, float64) {
	dist, pred := g.Dijkstra(src, cost)
	if math.IsInf(dist[dst], 1) {
		return nil, Inf
	}
	var rev []int
	for v := dst; v != -1; v = pred[v] {
		rev = append(rev, v)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, dist[dst]
}

// Reachable returns the set of vertices reachable from src (including
// src) following directed edges.
func (g *Directed) Reachable(src int) []bool {
	g.check(src)
	seen := make([]bool, g.n)
	seen[src] = true
	stack := []int{src}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[u] {
			if !seen[e.to] {
				seen[e.to] = true
				stack = append(stack, e.to)
			}
		}
	}
	return seen
}

// InducedSubgraph returns the subgraph induced by keep (vertices with
// keep[v]==true) plus the mapping from new to old vertex indices.
func (g *Directed) InducedSubgraph(keep []bool) (*Directed, []int) {
	if len(keep) != g.n {
		panic("graph: keep mask length mismatch")
	}
	var toOld []int
	toNew := make([]int, g.n)
	for v := 0; v < g.n; v++ {
		if keep[v] {
			toNew[v] = len(toOld)
			toOld = append(toOld, v)
		} else {
			toNew[v] = -1
		}
	}
	sub := NewDirected(len(toOld))
	for _, e := range g.Edges() {
		if keep[e.From] && keep[e.To] {
			sub.AddEdge(toNew[e.From], toNew[e.To], e.Weight)
		}
	}
	return sub, toOld
}

// HasCycle reports whether the directed graph contains a cycle, using
// iterative three-color DFS. It also returns one witness cycle (a vertex
// sequence v0, v1, ..., v0) when found, nil otherwise.
func (g *Directed) HasCycle() (bool, []int) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int8, g.n)
	parent := make([]int, g.n)
	for i := range parent {
		parent[i] = -1
	}
	type frame struct {
		v   int
		idx int
	}
	for s := 0; s < g.n; s++ {
		if color[s] != white {
			continue
		}
		stack := []frame{{v: s}}
		color[s] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.idx < len(g.adj[f.v]) {
				u := g.adj[f.v][f.idx].to
				f.idx++
				switch color[u] {
				case white:
					color[u] = gray
					parent[u] = f.v
					stack = append(stack, frame{v: u})
				case gray:
					// Found a back edge f.v -> u where u is an ancestor of
					// f.v: the cycle is u -> ... -> f.v -> u. The parent
					// chain yields the u..f.v path in reverse, so collect
					// it after the anchor and flip that portion only.
					cycle := []int{u}
					for v := f.v; v != u && v != -1; v = parent[v] {
						cycle = append(cycle, v)
					}
					for i, j := 1, len(cycle)-1; i < j; i, j = i+1, j-1 {
						cycle[i], cycle[j] = cycle[j], cycle[i]
					}
					cycle = append(cycle, u)
					return true, cycle
				}
			} else {
				color[f.v] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return false, nil
}

// TopoSort returns a topological order of the vertices, or an error
// witness (false) when the graph is cyclic.
func (g *Directed) TopoSort() ([]int, bool) {
	indeg := make([]int, g.n)
	for u := 0; u < g.n; u++ {
		for _, e := range g.adj[u] {
			indeg[e.to]++
		}
	}
	var queue []int
	for v := 0; v < g.n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	order := make([]int, 0, g.n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, e := range g.adj[v] {
			indeg[e.to]--
			if indeg[e.to] == 0 {
				queue = append(queue, e.to)
			}
		}
	}
	return order, len(order) == g.n
}
