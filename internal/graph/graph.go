// Package graph provides small, allocation-conscious directed and
// undirected weighted graph types together with the algorithms the
// synthesis flow needs: Dijkstra shortest paths with per-query edge
// costs, breadth-first reachability, connected components, and simple
// degree/weight bookkeeping.
//
// Vertices are dense integers in [0, N). The synthesis engine maps cores
// and switches onto these indices.
package graph

import (
	"container/heap"
	"fmt"
	"math"
)

// Edge is a directed edge with a weight (bandwidth, cost, ...).
type Edge struct {
	From, To int
	Weight   float64
}

// Directed is a directed multigraph-free weighted graph with O(1)
// adjacency iteration. Adding an edge that already exists accumulates its
// weight, which matches how communication graphs merge parallel flows.
type Directed struct {
	n   int
	adj [][]halfEdge // outgoing
	in  [][]halfEdge // incoming
	m   int
}

type halfEdge struct {
	to int
	w  float64
}

// NewDirected creates a directed graph with n vertices and no edges.
func NewDirected(n int) *Directed {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Directed{n: n, adj: make([][]halfEdge, n), in: make([][]halfEdge, n)}
}

// N returns the number of vertices.
func (g *Directed) N() int { return g.n }

// M returns the number of distinct directed edges.
func (g *Directed) M() int { return g.m }

// AddEdge inserts the edge u->v with weight w, accumulating the weight if
// the edge already exists. Self loops are rejected.
func (g *Directed) AddEdge(u, v int, w float64) {
	g.check(u)
	g.check(v)
	if u == v {
		panic(fmt.Sprintf("graph: self loop on %d", u)) //noclint:ignore bannedcall cold-path validation panic, not a cache key
	}
	for i := range g.adj[u] {
		if g.adj[u][i].to == v {
			g.adj[u][i].w += w
			for j := range g.in[v] {
				if g.in[v][j].to == u {
					g.in[v][j].w += w
					break
				}
			}
			return
		}
	}
	g.adj[u] = append(g.adj[u], halfEdge{to: v, w: w})
	g.in[v] = append(g.in[v], halfEdge{to: u, w: w})
	g.m++
}

// AddArc inserts u->v with weight w without scanning for an existing
// edge. It is the bulk-construction fast path used by builders that
// guarantee uniqueness themselves (e.g. nested loops over distinct
// vertex pairs); inserting a duplicate arc corrupts the edge count and
// makes iteration visit the pair twice. Self loops are rejected.
func (g *Directed) AddArc(u, v int, w float64) {
	g.check(u)
	g.check(v)
	if u == v {
		panic(fmt.Sprintf("graph: self loop on %d", u)) //noclint:ignore bannedcall cold-path validation panic, not a cache key
	}
	g.adj[u] = append(g.adj[u], halfEdge{to: v, w: w})
	g.in[v] = append(g.in[v], halfEdge{to: u, w: w})
	g.m++
}

// HasEdge reports whether u->v exists.
func (g *Directed) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	for _, e := range g.adj[u] {
		if e.to == v {
			return true
		}
	}
	return false
}

// Weight returns the weight of u->v, or 0 when absent.
func (g *Directed) Weight(u, v int) float64 {
	g.check(u)
	g.check(v)
	for _, e := range g.adj[u] {
		if e.to == v {
			return e.w
		}
	}
	return 0
}

// Succ calls fn for every outgoing edge of u.
func (g *Directed) Succ(u int, fn func(v int, w float64)) {
	g.check(u)
	for _, e := range g.adj[u] {
		fn(e.to, e.w)
	}
}

// Pred calls fn for every incoming edge of u.
func (g *Directed) Pred(u int, fn func(v int, w float64)) {
	g.check(u)
	for _, e := range g.in[u] {
		fn(e.to, e.w)
	}
}

// OutDegree returns the number of outgoing edges of u.
func (g *Directed) OutDegree(u int) int { g.check(u); return len(g.adj[u]) }

// InDegree returns the number of incoming edges of u.
func (g *Directed) InDegree(u int) int { g.check(u); return len(g.in[u]) }

// Edges returns all edges in deterministic (source, insertion) order.
func (g *Directed) Edges() []Edge {
	out := make([]Edge, 0, g.m)
	for u := 0; u < g.n; u++ {
		for _, e := range g.adj[u] {
			out = append(out, Edge{From: u, To: e.to, Weight: e.w})
		}
	}
	return out
}

// TotalWeight sums the weights of all edges.
func (g *Directed) TotalWeight() float64 {
	var sum float64
	for u := 0; u < g.n; u++ {
		for _, e := range g.adj[u] {
			sum += e.w
		}
	}
	return sum
}

// Undirect returns the undirected view of g: an edge {u,v} with weight
// w(u->v)+w(v->u). Min-cut partitioning operates on this view.
func (g *Directed) Undirect() *Undirected {
	u := NewUndirected(g.n)
	for _, e := range g.Edges() {
		u.AddEdge(e.From, e.To, e.Weight)
	}
	return u
}

func (g *Directed) check(u int) {
	if u < 0 || u >= g.n {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", u, g.n)) //noclint:ignore bannedcall cold-path validation panic, not a cache key
	}
}

// Undirected is an undirected weighted graph. Parallel edge insertions
// accumulate weight.
type Undirected struct {
	n   int
	adj [][]halfEdge
	m   int
}

// NewUndirected creates an undirected graph with n vertices.
func NewUndirected(n int) *Undirected {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Undirected{n: n, adj: make([][]halfEdge, n)}
}

// N returns the number of vertices.
func (g *Undirected) N() int { return g.n }

// M returns the number of distinct undirected edges.
func (g *Undirected) M() int { return g.m }

// AddEdge inserts {u,v} with weight w, accumulating if present.
func (g *Undirected) AddEdge(u, v int, w float64) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic("graph: vertex out of range")
	}
	if u == v {
		panic(fmt.Sprintf("graph: self loop on %d", u)) //noclint:ignore bannedcall cold-path validation panic, not a cache key
	}
	for i := range g.adj[u] {
		if g.adj[u][i].to == v {
			g.adj[u][i].w += w
			for j := range g.adj[v] {
				if g.adj[v][j].to == u {
					g.adj[v][j].w += w
					break
				}
			}
			return
		}
	}
	g.adj[u] = append(g.adj[u], halfEdge{to: v, w: w})
	g.adj[v] = append(g.adj[v], halfEdge{to: u, w: w})
	g.m++
}

// Weight returns the weight of {u,v}, 0 when absent.
func (g *Undirected) Weight(u, v int) float64 {
	for _, e := range g.adj[u] {
		if e.to == v {
			return e.w
		}
	}
	return 0
}

// Neighbors calls fn for every edge incident to u.
func (g *Undirected) Neighbors(u int, fn func(v int, w float64)) {
	for _, e := range g.adj[u] {
		fn(e.to, e.w)
	}
}

// Degree returns the number of edges incident to u.
func (g *Undirected) Degree(u int) int { return len(g.adj[u]) }

// WeightedDegree returns the total incident edge weight of u.
func (g *Undirected) WeightedDegree(u int) float64 {
	var sum float64
	for _, e := range g.adj[u] {
		sum += e.w
	}
	return sum
}

// Components returns the connected components as a vertex->component map
// and the component count. Component IDs are dense and assigned in
// ascending order of their smallest vertex.
func (g *Undirected) Components() (comp []int, count int) {
	comp = make([]int, g.n)
	for i := range comp {
		comp[i] = -1
	}
	var queue []int
	for s := 0; s < g.n; s++ {
		if comp[s] != -1 {
			continue
		}
		comp[s] = count
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, e := range g.adj[u] {
				if comp[e.to] == -1 {
					comp[e.to] = count
					queue = append(queue, e.to)
				}
			}
		}
		count++
	}
	return comp, count
}

// CutWeight returns the total weight of edges crossing the given
// bipartition (part[v] selects the side of v).
func (g *Undirected) CutWeight(part []bool) float64 {
	var cut float64
	for u := 0; u < g.n; u++ {
		for _, e := range g.adj[u] {
			if u < e.to && part[u] != part[e.to] {
				cut += e.w
			}
		}
	}
	return cut
}

// Inf is the distance reported by Dijkstra for unreachable vertices.
var Inf = math.Inf(1)

// CostFunc computes the traversal cost of edge u->v with static weight w.
// Returning +Inf excludes the edge for the current query.
type CostFunc func(u, v int, w float64) float64

// pqItem is a priority queue entry for Dijkstra.
type pqItem struct {
	v    int
	dist float64
}

type pq []pqItem

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].dist < p[j].dist }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}

// Dijkstra computes least-cost distances from src over the directed
// graph, evaluating edge costs through cost (nil means use the static
// weights). It returns the distance slice and the predecessor slice
// (-1 for src and unreachable vertices).
func (g *Directed) Dijkstra(src int, cost CostFunc) (dist []float64, pred []int) {
	g.check(src)
	dist = make([]float64, g.n)
	pred = make([]int, g.n)
	for i := range dist {
		dist[i] = Inf
		pred[i] = -1
	}
	dist[src] = 0
	h := &pq{{v: src, dist: 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(pqItem)
		if it.dist > dist[it.v] {
			continue
		}
		for _, e := range g.adj[it.v] {
			c := e.w
			if cost != nil {
				c = cost(it.v, e.to, e.w)
			}
			if math.IsInf(c, 1) {
				continue
			}
			if c < 0 {
				panic("graph: negative edge cost in Dijkstra")
			}
			if nd := it.dist + c; nd < dist[e.to] {
				dist[e.to] = nd
				pred[e.to] = it.v
				heap.Push(h, pqItem{v: e.to, dist: nd})
			}
		}
	}
	return dist, pred
}

// ShortestPath returns the least-cost path src..dst (inclusive) and its
// cost, or nil and +Inf when unreachable.
func (g *Directed) ShortestPath(src, dst int, cost CostFunc) ([]int, float64) {
	dist, pred := g.Dijkstra(src, cost)
	if math.IsInf(dist[dst], 1) {
		return nil, Inf
	}
	var rev []int
	for v := dst; v != -1; v = pred[v] {
		rev = append(rev, v)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, dist[dst]
}

// Scratch is reusable Dijkstra working state: distance, predecessor and
// binary-heap buffers owned by the caller and shared across queries.
// Clearing between queries is O(touched), not O(n): every label carries
// a generation stamp, and bumping the generation invalidates all labels
// at once. A zero Scratch is ready to use; one Scratch must not be used
// by two goroutines concurrently.
type Scratch struct {
	dist []float64
	pred []int
	gen  []uint32
	cur  uint32
	h    []pqItem
	path []int
}

// begin readies the scratch for a query over n vertices, growing the
// buffers when needed and invalidating all previous labels.
func (s *Scratch) begin(n int) {
	if cap(s.gen) < n {
		s.dist = make([]float64, n)
		s.pred = make([]int, n)
		s.gen = make([]uint32, n)
	} else {
		s.dist = s.dist[:n]
		s.pred = s.pred[:n]
		s.gen = s.gen[:n]
	}
	s.cur++
	if s.cur == 0 { // generation counter wrapped: hard-clear the stamps
		clear(s.gen[:cap(s.gen)])
		s.cur = 1
	}
	s.h = s.h[:0]
}

// hpush and hpop replicate container/heap's sift algorithms (Push =
// append+up, Pop = swap+down+shrink) on the concrete item type, so pop
// order on equal distances is identical to heap.Push/heap.Pop without
// the per-operation interface boxing.
func (s *Scratch) hpush(it pqItem) {
	s.h = append(s.h, it)
	j := len(s.h) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !(s.h[j].dist < s.h[i].dist) {
			break
		}
		s.h[i], s.h[j] = s.h[j], s.h[i]
		j = i
	}
}

func (s *Scratch) hpop() pqItem {
	n := len(s.h) - 1
	s.h[0], s.h[n] = s.h[n], s.h[0]
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && s.h[j2].dist < s.h[j1].dist {
			j = j2
		}
		if !(s.h[j].dist < s.h[i].dist) {
			break
		}
		s.h[i], s.h[j] = s.h[j], s.h[i]
		i = j
	}
	it := s.h[n]
	s.h = s.h[:n]
	return it
}

// ShortestPathScratch is ShortestPath using caller-owned scratch state
// and an early exit once dst is settled. It allocates nothing after the
// scratch buffers have grown to the graph's size; the returned path
// slice is owned by the scratch and only valid until its next query.
// The result is identical to ShortestPath: same relaxation order, same
// heap semantics, so equal-cost ties resolve the same way.
func (g *Directed) ShortestPathScratch(sc *Scratch, src, dst int, cost CostFunc) ([]int, float64) {
	g.check(src)
	g.check(dst)
	sc.begin(g.n)
	sc.dist[src] = 0
	sc.pred[src] = -1
	sc.gen[src] = sc.cur
	sc.hpush(pqItem{v: src, dist: 0})
	for len(sc.h) > 0 {
		it := sc.hpop()
		if it.dist > sc.dist[it.v] {
			continue // stale entry
		}
		if it.v == dst {
			break // settled: dist and the pred chain are final
		}
		for _, e := range g.adj[it.v] {
			c := e.w
			if cost != nil {
				c = cost(it.v, e.to, e.w)
			}
			if math.IsInf(c, 1) {
				continue
			}
			if c < 0 {
				panic("graph: negative edge cost in Dijkstra")
			}
			// An unstamped label reads as +Inf; nd itself can only be
			// +Inf on pathological cost scales, where ShortestPath would
			// not relax either.
			if nd := it.dist + c; !math.IsInf(nd, 1) && (sc.gen[e.to] != sc.cur || nd < sc.dist[e.to]) {
				sc.dist[e.to] = nd
				sc.pred[e.to] = it.v
				sc.gen[e.to] = sc.cur
				sc.hpush(pqItem{v: e.to, dist: nd})
			}
		}
	}
	if sc.gen[dst] != sc.cur {
		return nil, Inf
	}
	sc.path = sc.path[:0]
	for v := dst; v != -1; v = sc.pred[v] {
		sc.path = append(sc.path, v)
	}
	for i, j := 0, len(sc.path)-1; i < j; i, j = i+1, j-1 {
		sc.path[i], sc.path[j] = sc.path[j], sc.path[i]
	}
	return sc.path, sc.dist[dst]
}

// ShortestPathDense runs the same algorithm as ShortestPathScratch over
// an *implicit* dense graph on n vertices: an arc u->v exists for every
// u != v with rank[u] <= rank[v] (nil rank means the complete graph),
// and cost prices each arc (its static-weight argument is always 1).
// Nothing is materialized, so callers with near-complete candidate
// graphs skip building adjacency lists entirely. Neighbors are visited
// in ascending vertex order — the order AddArc-built adjacency has when
// arcs are inserted in ascending target order — so equal-cost ties
// resolve identically to the materialized equivalent.
func (sc *Scratch) ShortestPathDense(n int, rank []int8, src, dst int, cost CostFunc) ([]int, float64) {
	if src < 0 || src >= n || dst < 0 || dst >= n {
		panic(fmt.Sprintf("graph: vertex out of range [0,%d)", n)) //noclint:ignore bannedcall cold-path validation panic, not a cache key
	}
	sc.begin(n)
	sc.dist[src] = 0
	sc.pred[src] = -1
	sc.gen[src] = sc.cur
	sc.hpush(pqItem{v: src, dist: 0})
	for len(sc.h) > 0 {
		it := sc.hpop()
		if it.dist > sc.dist[it.v] {
			continue // stale entry
		}
		if it.v == dst {
			break // settled: dist and the pred chain are final
		}
		var ru int8
		if rank != nil {
			ru = rank[it.v]
		}
		for v := 0; v < n; v++ {
			if v == it.v || (rank != nil && rank[v] < ru) {
				continue
			}
			c := cost(it.v, v, 1)
			if math.IsInf(c, 1) {
				continue
			}
			if c < 0 {
				panic("graph: negative edge cost in Dijkstra")
			}
			if nd := it.dist + c; !math.IsInf(nd, 1) && (sc.gen[v] != sc.cur || nd < sc.dist[v]) {
				sc.dist[v] = nd
				sc.pred[v] = it.v
				sc.gen[v] = sc.cur
				sc.hpush(pqItem{v: v, dist: nd})
			}
		}
	}
	if sc.gen[dst] != sc.cur {
		return nil, Inf
	}
	sc.path = sc.path[:0]
	for v := dst; v != -1; v = sc.pred[v] {
		sc.path = append(sc.path, v)
	}
	for i, j := 0, len(sc.path)-1; i < j; i, j = i+1, j-1 {
		sc.path[i], sc.path[j] = sc.path[j], sc.path[i]
	}
	return sc.path, sc.dist[dst]
}

// Reachable returns the set of vertices reachable from src (including
// src) following directed edges.
func (g *Directed) Reachable(src int) []bool {
	g.check(src)
	seen := make([]bool, g.n)
	seen[src] = true
	stack := []int{src}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[u] {
			if !seen[e.to] {
				seen[e.to] = true
				stack = append(stack, e.to)
			}
		}
	}
	return seen
}

// InducedSubgraph returns the subgraph induced by keep (vertices with
// keep[v]==true) plus the mapping from new to old vertex indices.
func (g *Directed) InducedSubgraph(keep []bool) (*Directed, []int) {
	if len(keep) != g.n {
		panic("graph: keep mask length mismatch")
	}
	var toOld []int
	toNew := make([]int, g.n)
	for v := 0; v < g.n; v++ {
		if keep[v] {
			toNew[v] = len(toOld)
			toOld = append(toOld, v)
		} else {
			toNew[v] = -1
		}
	}
	sub := NewDirected(len(toOld))
	for _, e := range g.Edges() {
		if keep[e.From] && keep[e.To] {
			sub.AddEdge(toNew[e.From], toNew[e.To], e.Weight)
		}
	}
	return sub, toOld
}

// HasCycle reports whether the directed graph contains a cycle, using
// iterative three-color DFS. It also returns one witness cycle (a vertex
// sequence v0, v1, ..., v0) when found, nil otherwise.
func (g *Directed) HasCycle() (bool, []int) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int8, g.n)
	parent := make([]int, g.n)
	for i := range parent {
		parent[i] = -1
	}
	type frame struct {
		v   int
		idx int
	}
	for s := 0; s < g.n; s++ {
		if color[s] != white {
			continue
		}
		stack := []frame{{v: s}}
		color[s] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.idx < len(g.adj[f.v]) {
				u := g.adj[f.v][f.idx].to
				f.idx++
				switch color[u] {
				case white:
					color[u] = gray
					parent[u] = f.v
					stack = append(stack, frame{v: u})
				case gray:
					// Found a back edge f.v -> u where u is an ancestor of
					// f.v: the cycle is u -> ... -> f.v -> u. The parent
					// chain yields the u..f.v path in reverse, so collect
					// it after the anchor and flip that portion only.
					cycle := []int{u}
					for v := f.v; v != u && v != -1; v = parent[v] {
						cycle = append(cycle, v)
					}
					for i, j := 1, len(cycle)-1; i < j; i, j = i+1, j-1 {
						cycle[i], cycle[j] = cycle[j], cycle[i]
					}
					cycle = append(cycle, u)
					return true, cycle
				}
			} else {
				color[f.v] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return false, nil
}

// TopoSort returns a topological order of the vertices, or an error
// witness (false) when the graph is cyclic.
func (g *Directed) TopoSort() ([]int, bool) {
	indeg := make([]int, g.n)
	for u := 0; u < g.n; u++ {
		for _, e := range g.adj[u] {
			indeg[e.to]++
		}
	}
	var queue []int
	for v := 0; v < g.n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	order := make([]int, 0, g.n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, e := range g.adj[v] {
			indeg[e.to]--
			if indeg[e.to] == 0 {
				queue = append(queue, e.to)
			}
		}
	}
	return order, len(order) == g.n
}
