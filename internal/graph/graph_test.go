package graph

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDirectedBasics(t *testing.T) {
	g := NewDirected(4)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 2, 3)
	g.AddEdge(0, 1, 1) // accumulates
	if g.N() != 4 || g.M() != 2 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatal("HasEdge wrong")
	}
	if w := g.Weight(0, 1); w != 3 {
		t.Fatalf("Weight(0,1)=%g, want accumulated 3", w)
	}
	if w := g.Weight(2, 3); w != 0 {
		t.Fatalf("absent edge weight = %g", w)
	}
	if g.OutDegree(0) != 1 || g.InDegree(2) != 1 || g.InDegree(0) != 0 {
		t.Fatal("degree bookkeeping wrong")
	}
	if got := g.TotalWeight(); got != 6 {
		t.Fatalf("TotalWeight=%g", got)
	}
	var succ, pred []int
	g.Succ(0, func(v int, w float64) { succ = append(succ, v) })
	g.Pred(2, func(v int, w float64) { pred = append(pred, v) })
	if len(succ) != 1 || succ[0] != 1 || len(pred) != 1 || pred[0] != 1 {
		t.Fatal("Succ/Pred iteration wrong")
	}
}

func TestDirectedPanics(t *testing.T) {
	g := NewDirected(2)
	mustPanic(t, func() { g.AddEdge(0, 0, 1) })
	mustPanic(t, func() { g.AddEdge(0, 5, 1) })
	mustPanic(t, func() { g.Weight(-1, 0) })
	mustPanic(t, func() { NewDirected(-1) })
	mustPanic(t, func() { NewUndirected(-1) })
	u := NewUndirected(2)
	mustPanic(t, func() { u.AddEdge(1, 1, 1) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestEdgesDeterministic(t *testing.T) {
	g := NewDirected(3)
	g.AddEdge(2, 0, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(0, 1, 1)
	e := g.Edges()
	if len(e) != 3 || e[0].From != 0 || e[0].To != 2 || e[1].To != 1 || e[2].From != 2 {
		t.Fatalf("edge order not (source, insertion): %+v", e)
	}
}

func TestUndirect(t *testing.T) {
	g := NewDirected(3)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 0, 3)
	g.AddEdge(1, 2, 5)
	u := g.Undirect()
	if u.M() != 2 {
		t.Fatalf("undirected M=%d", u.M())
	}
	if w := u.Weight(0, 1); w != 5 {
		t.Fatalf("merged weight = %g, want 5", w)
	}
	if u.WeightedDegree(1) != 10 || u.Degree(1) != 2 {
		t.Fatal("undirected degrees wrong")
	}
}

func TestComponents(t *testing.T) {
	u := NewUndirected(6)
	u.AddEdge(0, 1, 1)
	u.AddEdge(1, 2, 1)
	u.AddEdge(4, 5, 1)
	comp, n := u.Components()
	if n != 3 {
		t.Fatalf("component count = %d, want 3", n)
	}
	if comp[0] != comp[2] || comp[3] == comp[0] || comp[4] != comp[5] {
		t.Fatalf("components = %v", comp)
	}
	// dense, ascending by smallest vertex
	if comp[0] != 0 || comp[3] != 1 || comp[4] != 2 {
		t.Fatalf("component numbering = %v", comp)
	}
}

func TestCutWeight(t *testing.T) {
	u := NewUndirected(4)
	u.AddEdge(0, 1, 3)
	u.AddEdge(2, 3, 4)
	u.AddEdge(1, 2, 7)
	cut := u.CutWeight([]bool{false, false, true, true})
	if cut != 7 {
		t.Fatalf("cut = %g, want 7", cut)
	}
	if c := u.CutWeight([]bool{false, true, false, true}); c != 14 {
		t.Fatalf("cut = %g, want 14", c)
	}
}

func TestDijkstraStatic(t *testing.T) {
	g := NewDirected(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 5)
	g.AddEdge(2, 3, 1)
	dist, pred := g.Dijkstra(0, nil)
	if dist[2] != 2 || pred[2] != 1 {
		t.Fatalf("dist[2]=%g pred=%d", dist[2], pred[2])
	}
	if dist[3] != 3 {
		t.Fatalf("dist[3]=%g", dist[3])
	}
	if !math.IsInf(dist[4], 1) || pred[4] != -1 {
		t.Fatal("unreachable vertex not Inf")
	}
}

func TestDijkstraDynamicCost(t *testing.T) {
	g := NewDirected(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 1)
	// forbid the direct edge
	cost := func(u, v int, w float64) float64 {
		if u == 0 && v == 2 {
			return Inf
		}
		return w
	}
	path, c := g.ShortestPath(0, 2, cost)
	if c != 2 || len(path) != 3 || path[1] != 1 {
		t.Fatalf("path=%v cost=%g", path, c)
	}
}

func TestDijkstraNegativePanics(t *testing.T) {
	g := NewDirected(2)
	g.AddEdge(0, 1, -1)
	mustPanic(t, func() { g.Dijkstra(0, nil) })
}

func TestShortestPathUnreachable(t *testing.T) {
	g := NewDirected(3)
	g.AddEdge(0, 1, 1)
	p, c := g.ShortestPath(0, 2, nil)
	if p != nil || !math.IsInf(c, 1) {
		t.Fatalf("unreachable: path=%v cost=%g", p, c)
	}
	// src == dst
	p, c = g.ShortestPath(1, 1, nil)
	if len(p) != 1 || p[0] != 1 || c != 0 {
		t.Fatalf("trivial path=%v cost=%g", p, c)
	}
}

func TestReachable(t *testing.T) {
	g := NewDirected(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(3, 0, 1)
	r := g.Reachable(0)
	if !r[0] || !r[1] || !r[2] || r[3] {
		t.Fatalf("reachable = %v", r)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := NewDirected(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	g.AddEdge(2, 3, 3)
	sub, toOld := g.InducedSubgraph([]bool{true, false, true, true})
	if sub.N() != 3 || sub.M() != 1 {
		t.Fatalf("sub N=%d M=%d", sub.N(), sub.M())
	}
	if toOld[0] != 0 || toOld[1] != 2 || toOld[2] != 3 {
		t.Fatalf("toOld=%v", toOld)
	}
	if sub.Weight(1, 2) != 3 {
		t.Fatal("surviving edge lost its weight")
	}
	mustPanic(t, func() { g.InducedSubgraph([]bool{true}) })
}

// Property: Dijkstra distances satisfy the triangle inequality over every
// edge: dist[v] <= dist[u] + w(u,v).
func TestDijkstraRelaxationProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := newLCG(seed)
		n := 2 + int(r.next()%14)
		g := NewDirected(n)
		edges := n * 2
		for i := 0; i < edges; i++ {
			u := int(r.next() % uint64(n))
			v := int(r.next() % uint64(n))
			if u == v {
				continue
			}
			g.AddEdge(u, v, float64(r.next()%1000)/10+0.1)
		}
		dist, _ := g.Dijkstra(0, nil)
		for _, e := range g.Edges() {
			if !math.IsInf(dist[e.From], 1) && dist[e.To] > dist[e.From]+e.Weight+1e-9 {
				return false
			}
		}
		// distances also reconstructible: dist[0] == 0
		return dist[0] == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: cut weight of any bipartition is at most total edge weight,
// and the cut of the all-false partition is zero.
func TestCutWeightBounds(t *testing.T) {
	f := func(seed int64, bits uint16) bool {
		r := newLCG(seed)
		n := 2 + int(r.next()%10)
		u := NewUndirected(n)
		var total float64
		for i := 0; i < n*2; i++ {
			a := int(r.next() % uint64(n))
			b := int(r.next() % uint64(n))
			if a == b {
				continue
			}
			w := float64(r.next()%100) + 1
			u.AddEdge(a, b, w)
			total += w
		}
		part := make([]bool, n)
		for i := range part {
			part[i] = bits&(1<<uint(i)) != 0
		}
		cut := u.CutWeight(part)
		zero := u.CutWeight(make([]bool, n))
		return cut <= total+1e-9 && zero == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// lcg is a tiny deterministic generator for property tests (avoids
// math/rand seeding boilerplate and keeps tests reproducible).
type lcg struct{ s uint64 }

func newLCG(seed int64) *lcg { return &lcg{s: uint64(seed)*2862933555777941757 + 3037000493} }

func (l *lcg) next() uint64 {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return l.s >> 11
}

// TestShortestPathScratchMatches is the identity property behind the
// router's scratch reuse: on random graphs — integer weights force
// plenty of equal-cost ties — ShortestPathScratch must return exactly
// the path and cost of ShortestPath, for every (src, dst) pair, with
// one Scratch reused across all queries.
func TestShortestPathScratchMatches(t *testing.T) {
	var sc Scratch
	f := func(seed int64) bool {
		r := newLCG(seed)
		n := 2 + int(r.next()%12)
		g := NewDirected(n)
		for i := 0; i < n*3; i++ {
			u := int(r.next() % uint64(n))
			v := int(r.next() % uint64(n))
			if u == v {
				continue
			}
			g.AddEdge(u, v, float64(r.next()%5)+1)
		}
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				wantPath, wantCost := g.ShortestPath(src, dst, nil)
				gotPath, gotCost := g.ShortestPathScratch(&sc, src, dst, nil)
				if wantCost != gotCost {
					t.Logf("seed %d %d->%d: cost %g vs %g", seed, src, dst, wantCost, gotCost)
					return false
				}
				if len(wantPath) != len(gotPath) {
					t.Logf("seed %d %d->%d: path %v vs %v", seed, src, dst, wantPath, gotPath)
					return false
				}
				for i := range wantPath {
					if wantPath[i] != gotPath[i] {
						t.Logf("seed %d %d->%d: path %v vs %v", seed, src, dst, wantPath, gotPath)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestShortestPathScratchCostFunc covers the per-query cost closure:
// edges priced to +Inf are excluded, exactly as in ShortestPath.
func TestShortestPathScratchCostFunc(t *testing.T) {
	g := NewDirected(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(2, 3, 5)
	block := func(u, v int, w float64) float64 {
		if u == 0 && v == 1 {
			return Inf
		}
		return w
	}
	var sc Scratch
	path, cost := g.ShortestPathScratch(&sc, 0, 3, block)
	if cost != 6 || len(path) != 3 || path[1] != 2 {
		t.Fatalf("blocked query returned %v cost %g", path, cost)
	}
	// Unreachable when every outgoing edge is blocked.
	if p, c := g.ShortestPathScratch(&sc, 0, 3, func(int, int, float64) float64 { return Inf }); p != nil || !math.IsInf(c, 1) {
		t.Fatalf("fully blocked query returned %v cost %g", p, c)
	}
}

// TestScratchGenerationWrap forces the uint32 generation counter to
// wrap and checks stale labels from the previous epoch are not reused.
func TestScratchGenerationWrap(t *testing.T) {
	g := NewDirected(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	var sc Scratch
	if _, c := g.ShortestPathScratch(&sc, 0, 2, nil); c != 2 {
		t.Fatalf("cost %g before wrap", c)
	}
	sc.cur = ^uint32(0) // next begin() wraps to 0 and must hard-reset
	if p, c := g.ShortestPathScratch(&sc, 0, 2, nil); c != 2 || len(p) != 3 {
		t.Fatalf("after wrap: path %v cost %g", p, c)
	}
	if sc.cur != 1 {
		t.Fatalf("generation after wrap = %d, want 1", sc.cur)
	}
}

// TestScratchGrowsAcrossGraphs reuses one scratch across graphs of
// different sizes, in both directions.
func TestScratchGrowsAcrossGraphs(t *testing.T) {
	var sc Scratch
	for _, n := range []int{3, 17, 5, 40, 2} {
		g := NewDirected(n)
		for v := 1; v < n; v++ {
			g.AddEdge(v-1, v, 1)
		}
		p, c := g.ShortestPathScratch(&sc, 0, n-1, nil)
		if c != float64(n-1) || len(p) != n {
			t.Fatalf("n=%d: cost %g len %d", n, c, len(p))
		}
	}
}

// TestAddArcMatchesAddEdge checks the bulk fast path yields the same
// graph as AddEdge when arcs are unique.
func TestAddArcMatchesAddEdge(t *testing.T) {
	a := NewDirected(5)
	b := NewDirected(5)
	for u := 0; u < 5; u++ {
		for v := 0; v < 5; v++ {
			if u == v {
				continue
			}
			w := float64(u*5+v) + 0.5
			a.AddEdge(u, v, w)
			b.AddArc(u, v, w)
		}
	}
	if a.M() != b.M() {
		t.Fatalf("M %d vs %d", a.M(), b.M())
	}
	ae, be := a.Edges(), b.Edges()
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("edge %d: %+v vs %+v", i, ae[i], be[i])
		}
	}
	if a.InDegree(3) != b.InDegree(3) {
		t.Fatal("in-degree bookkeeping differs")
	}
}
