// Package prof wires the runtime profilers into command-line tools.
// The synthesis sweep is the optimization target of this repo, and the
// binaries are the realistic workload: -cpuprofile/-memprofile on
// nocsynth and nocbench feed `go tool pprof` directly, without a
// benchmark harness in between.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (when non-empty) and returns a
// stop function that ends the CPU profile and writes a heap profile to
// memPath (when non-empty). Either path may be empty; with both empty
// the returned stop is a no-op. Call stop exactly once before the
// process exits — os.Exit skips deferred calls, so callers sequence it
// explicitly on their error paths.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			// besteffort: close only — the StartCPUProfile error is the
			// one worth returning, and no profile data was written yet.
			f.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
		cpuFile = f
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("prof: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("prof: %w", err)
			}
			defer f.Close()
			runtime.GC() // settle the live heap so the profile reflects retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("prof: %w", err)
			}
		}
		return nil
	}, nil
}
