package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartNoOp(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatalf("Start with empty paths: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("no-op stop: %v", err)
	}
}

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	// Burn a little CPU so the profile has something to sample.
	x := 0
	for i := 0; i < 1e6; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s missing: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.out"), ""); err == nil {
		t.Fatal("Start with uncreatable path: want error, got nil")
	}
}
