package analysis

import (
	"go/ast"
	"go/types"
	"path"
)

// PoolEscape flags pooled arena state — the worker scratch family
// (graph.Scratch, partition.Scratch, floorplan.Scratch) and the
// Reset-recycled engine objects (topology.Topology, route.Router) —
// whose reference escapes its arena lifetime. The PR 4/6 arena
// discipline hands each sweep worker a buildContext that owns its
// scratch by value and recycles Topology/Router through Reset; any
// reference that outlives the arena turns the next Reset into a silent
// use-after-recycle, corrupting a later design point with an earlier
// one's buffers. Three escape shapes are flagged:
//
//   - global store: a pooled reference assigned into a package-level
//     variable (directly or through a field/index chain rooted there)
//     outlives every arena by construction;
//   - field store: a pooled reference assigned into a field of a type
//     that is not itself an arena container (does not hold pooled state
//     by value), parking the reference in a longer-lived object;
//   - boundary return: a selector chain rooted at a parameter or
//     receiver returning a pooled reference out of a type that is not
//     an arena container, exporting arena internals past the pooling
//     boundary.
//
// The sanctioned idioms stay clean: arena containers such as the
// sweep's buildContext hold pooled state by value, so stores into their
// fields (bc.top = ...) and returns rooted at a pointer-to-container
// parameter (the takeTop handoff) are exempt, as are fresh values —
// &Topology{}, new(Router), constructor calls — which create rather
// than leak.
var PoolEscape = &Analyzer{
	Name: "poolescape",
	Doc: "flags pooled arena references (graph/partition/floorplan " +
		"Scratch, topology.Topology, route.Router) escaping the arena: " +
		"stored into a global, stored into a non-arena struct field, or " +
		"returned past the pooling boundary",
	Run: runPoolEscape,
}

// pooledTypes names the Reset-recycled types, keyed by (final
// import-path segment, type name) so golden fixtures can stand in for
// the real packages.
var pooledTypes = map[[2]string]bool{
	{"graph", "Scratch"}:     true,
	{"partition", "Scratch"}: true,
	{"floorplan", "Scratch"}: true,
	{"topology", "Topology"}: true,
	{"route", "Router"}:      true,
}

func runPoolEscape(p *Pass) {
	memo := map[types.Type]bool{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				checkPoolAssign(p, memo, n)
			case *ast.FuncDecl:
				if n.Body != nil {
					checkPoolReturns(p, memo, n.Recv, n.Type, n.Body)
				}
			case *ast.FuncLit:
				checkPoolReturns(p, memo, nil, n.Type, n.Body)
			}
			return true
		})
	}
}

// checkPoolAssign applies the global-store and field-store rules to one
// assignment. Multi-value forms pair off only when lengths match; the
// unmatched form has a call on the right, and call results are fresh.
func checkPoolAssign(p *Pass, memo map[types.Type]bool, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		rhs := as.Rhs[i]
		name, ok := pooledRefRead(p, memo, rhs)
		if !ok {
			continue
		}
		lhs = ast.Unparen(lhs)
		if root, global := globalRoot(p, lhs); global {
			p.Reportf(as.Pos(), "pooled %s stored into package-level %s escapes every arena; the next Reset recycles it under the global's feet", name, root)
			continue
		}
		if sel, ok := lhs.(*ast.SelectorExpr); ok {
			base := p.Info.TypeOf(sel.X)
			if base == nil {
				continue
			}
			if isArenaContainer(memo, derefType(base)) {
				continue // stores within the arena (bc.top = ...) are the handoff idiom
			}
			p.Reportf(as.Pos(), "pooled %s stored into field %s of non-arena type %s outlives the arena; copy the data out or keep the reference inside the build context", name, sel.Sel.Name, typeLabel(derefType(base)))
		}
	}
}

// checkPoolReturns applies the boundary-return rule to one function
// body, skipping nested function literals (they are visited with their
// own parameter set by the caller's walk).
func checkPoolReturns(p *Pass, memo map[types.Type]bool, recv *ast.FieldList, ft *ast.FuncType, body *ast.BlockStmt) {
	owned := map[types.Object]bool{}
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := p.Info.Defs[name]; obj != nil {
					owned[obj] = true
				}
			}
		}
	}
	collect(recv)
	collect(ft.Params)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			res := ast.Unparen(res)
			sel, ok := res.(*ast.SelectorExpr)
			if !ok {
				continue // bare identifiers are pass-through plumbing, not extraction
			}
			name, ok := pooledRefRead(p, memo, sel)
			if !ok {
				continue
			}
			rootIdent := selectorRoot(sel)
			if rootIdent == nil {
				continue
			}
			obj := p.Info.Uses[rootIdent]
			if obj == nil || !owned[obj] {
				continue // rooted at a local; the value never crossed the boundary inward
			}
			rt := derefType(obj.Type())
			if isArenaContainer(memo, rt) && !isPooledNamed(rt) {
				continue // returning out of the build context is the sanctioned handoff
			}
			p.Reportf(res.Pos(), "return of pooled %s extracted from %s crosses the pooling boundary; the caller's copy survives the next Reset", name, typeLabel(rt))
		}
		return true
	})
}

// pooledRefRead reports whether expr reads an existing reference to
// pooled state: an identifier, selector, index or dereference of type
// *T with T pooled-containing, or the address of such an lvalue.
// Fresh values — composite literals, new, constructor calls — are not
// reads: they create a reference, they cannot leak one that an arena
// already owns.
func pooledRefRead(p *Pass, memo map[types.Type]bool, expr ast.Expr) (string, bool) {
	e := ast.Unparen(expr)
	if un, ok := e.(*ast.UnaryExpr); ok && un.Op.String() == "&" {
		inner := ast.Unparen(un.X)
		switch inner.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			if t := p.Info.TypeOf(inner); t != nil && isArenaContainer(memo, t) {
				return typeLabel(t) + " reference", true
			}
		}
		return "", false
	}
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return "", false
	}
	t := p.Info.TypeOf(e)
	if t == nil {
		return "", false
	}
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok || !isArenaContainer(memo, ptr.Elem()) {
		return "", false
	}
	if tv, ok := p.Info.Types[e]; ok && !tv.IsValue() {
		return "", false // a type name, not a value read
	}
	return "*" + typeLabel(ptr.Elem()), true
}

// globalRoot walks lhs through selector/index/star chains to its root
// identifier and reports whether that identifier is a package-level
// variable, naming it for the diagnostic.
func globalRoot(p *Pass, lhs ast.Expr) (string, bool) {
	for {
		switch e := lhs.(type) {
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.SelectorExpr:
			lhs = e.X
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.Ident:
			obj := p.Info.Uses[e]
			if obj == nil {
				obj = p.Info.Defs[e]
			}
			v, ok := obj.(*types.Var)
			if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
				return "", false
			}
			return "var " + v.Name(), true
		default:
			return "", false
		}
	}
}

// selectorRoot walks a selector chain (through index and dereference
// steps) to its root identifier, nil when the chain bottoms out in a
// call or other non-identifier.
func selectorRoot(sel *ast.SelectorExpr) *ast.Ident {
	var e ast.Expr = sel.X
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// derefType peels one pointer layer, returning element types unchanged
// otherwise.
func derefType(t types.Type) types.Type {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}

// isArenaContainer reports whether t holds pooled state by value: a
// pooled type itself, a struct with a pooled-containing non-pointer
// field, or an array of such. Pointers, slices, maps and channels
// break containment, mirroring scratchcopy's rule.
func isArenaContainer(memo map[types.Type]bool, t types.Type) bool {
	if v, ok := memo[t]; ok {
		return v
	}
	memo[t] = false // terminate recursive types; overwritten below
	v := false
	switch t := t.(type) {
	case *types.Named:
		v = isPooledNamed(t) || isArenaContainer(memo, t.Underlying())
	case *types.Alias:
		v = isArenaContainer(memo, types.Unalias(t))
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if isArenaContainer(memo, t.Field(i).Type()) {
				v = true
				break
			}
		}
	case *types.Array:
		v = isArenaContainer(memo, t.Elem())
	}
	memo[t] = v
	return v
}

// isPooledNamed reports whether t is one of the Reset-recycled types,
// matched by (package base, name).
func isPooledNamed(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return pooledTypes[[2]string{path.Base(obj.Pkg().Path()), obj.Name()}]
}

// typeLabel names t as pkgbase.Name for diagnostics, falling back to
// the type's own string form.
func typeLabel(t types.Type) string {
	if named, ok := t.(*types.Named); ok && named.Obj() != nil && named.Obj().Pkg() != nil {
		return path.Base(named.Obj().Pkg().Path()) + "." + named.Obj().Name()
	}
	return t.String()
}
