// Package analysis is a minimal static-analysis framework for the
// nocvi tree, built exclusively on the standard library (go/parser,
// go/ast, go/types and the source go/importer — no golang.org/x/tools).
//
// The framework exists to enforce, mechanically, the coding discipline
// the synthesis engine's guarantees rest on: bit-identical parallel
// sweeps, injective cache keys, and the paper's tie-break-sensitive
// argmin over Pareto points. An Analyzer inspects one type-checked
// package at a time through a Pass and reports Diagnostics; the Run
// entry point executes a set of analyzers over loaded packages,
// applies suppression directives, and returns the surviving
// diagnostics in deterministic order.
//
// # Suppression directives
//
// A finding can be silenced with a line comment of the form
//
//	//noclint:ignore <analyzer> <reason...>
//
// either trailing the offending line or standing alone on the line
// directly above it. The analyzer name must be one of the registered
// analyzers and the reason is mandatory; malformed or unknown
// directives are themselves reported (and cannot be suppressed), so a
// typo'd suppression fails loudly instead of silently masking a real
// finding.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// An Analyzer is one named check. Run inspects a single package via the
// Pass and reports findings with Pass.Reportf.
type Analyzer struct {
	Name string // short lower-case identifier, used in diagnostics and directives
	Doc  string // one-paragraph description of the invariant the check protects
	Run  func(*Pass)
}

// A Diagnostic is one finding at a resolved source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// A Pass carries one type-checked package to one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	PkgPath  string
	Pkg      *types.Package
	Info     *types.Info
	// Scope is the derived hot-path scope consulted by the scoped
	// analyzers (wallclock, maprange, bannedcall); nil means
	// everything is in scope.
	Scope *Scope

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// PkgBase returns the last segment of the package import path. Scoped
// analyzers (maprange, wallclock, bannedcall) match package identity on
// this segment so the same rules apply to the real tree and to golden
// testdata fixtures.
func (p *Pass) PkgBase() string { return path.Base(p.PkgPath) }

// Analyzers is the full registered suite, in reporting order.
var Analyzers = []*Analyzer{MapRange, FloatEq, ErrDrop, WallClock, BannedCall, GoroutineLeak, ScratchCopy, SortStability, DetFlow, PoolEscape}

// UnusedDirective is a well-formed //noclint:ignore directive that
// suppressed nothing: every analyzer it names ran and none of them
// reported a diagnostic on its line. Stale suppressions hide future
// regressions, so noclint -unused surfaces them for removal.
type UnusedDirective struct {
	Pos      token.Position
	Analyzer string
	// Misplaced lists the analyzers that DID report on the directive's
	// target lines. A non-empty list almost always means the author
	// meant to suppress one of those and typo'd or mixed up the name:
	// the directive neither applied nor aged out — it never matched at
	// all.
	Misplaced []string
}

// Run executes every analyzer over every package, filters findings
// through //noclint:ignore directives, and returns the survivors sorted
// by file, line, column, analyzer and message.
//
// Packages are analyzed concurrently by a worker pool bounded at
// GOMAXPROCS: analyzer passes over distinct packages are independent
// (analyzers only read shared tables, token.FileSet position lookups
// are concurrency-safe, and each package's types.Info is immutable
// after loading), and the final total-order sort makes the output
// independent of execution order.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunUnused(pkgs, analyzers)
	return diags
}

// RunUnused is Run plus a report of directives that suppressed nothing.
// Only directives naming analyzers in this run's set are judged: a
// directive for an unselected analyzer cannot prove itself useful here
// and is neither used nor unused.
func RunUnused(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []UnusedDirective) {
	return RunWith(pkgs, analyzers, RunOptions{})
}

// RunOptions configures RunWith.
type RunOptions struct {
	// Workers bounds the analyzer worker pool; <=0 selects GOMAXPROCS.
	// The report is byte-identical at every width — pinned by test —
	// so this is purely a throughput knob.
	Workers int
	// Scope is the hot-path scope for the scoped analyzers. Nil
	// derives it from EngineRoots over pkgs; FullScope puts everything
	// in scope (fixture tests).
	Scope *Scope
}

// RunWith executes analyzers over pkgs under explicit options; see Run
// and RunUnused for the defaults.
func RunWith(pkgs []*Package, analyzers []*Analyzer, opts RunOptions) ([]Diagnostic, []UnusedDirective) {
	// Directives are validated against the full registered suite, not
	// just the analyzers of this run: a directive naming a real but
	// currently-unselected analyzer is fine, a typo never is.
	known := make(map[string]bool, len(Analyzers)+len(analyzers))
	for _, a := range Analyzers {
		known[a.Name] = true
	}
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
		ran[a.Name] = true
	}
	scope := opts.Scope
	if scope == nil {
		scope = DeriveScope(pkgs)
	}
	type pkgResult struct {
		diags  []Diagnostic
		unused []UnusedDirective
	}
	perPkg := make([]pkgResult, len(pkgs))
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pkgs) {
		workers = len(pkgs)
	}
	if workers <= 1 {
		for i, pkg := range pkgs {
			perPkg[i].diags, perPkg[i].unused = runPackage(pkg, analyzers, scope, known, ran)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(pkgs) {
						return
					}
					perPkg[i].diags, perPkg[i].unused = runPackage(pkgs[i], analyzers, scope, known, ran)
				}
			}()
		}
		wg.Wait()
	}
	var all []Diagnostic
	var unused []UnusedDirective
	for _, r := range perPkg {
		all = append(all, r.diags...)
		unused = append(unused, r.unused...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	sort.Slice(unused, func(i, j int) bool {
		a, b := unused[i], unused[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return all, unused
}

// runPackage applies every analyzer to one package, filters the
// findings through the package's suppression directives, and reports
// the directives (for analyzers in the run set) that fired on nothing.
// It touches no shared mutable state, which is what lets RunWith fan
// packages out to workers.
func runPackage(pkg *Package, analyzers []*Analyzer, scope *Scope, known, ran map[string]bool) ([]Diagnostic, []UnusedDirective) {
	var diags []Diagnostic
	for _, a := range analyzers {
		a.Run(&Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			PkgPath:  pkg.Path,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Scope:    scope,
			diags:    &diags,
		})
	}
	dirs, bad := parseDirectives(pkg, known)
	out := bad
	for _, d := range diags {
		if !dirs.suppresses(d) {
			out = append(out, d)
		}
	}
	unused := dirs.unused(ran)
	markMisplaced(unused, out)
	return out, unused
}

// markMisplaced annotates unused directives whose target lines carry
// surviving findings from other analyzers: a directive at line L
// suppresses findings on L (trailing form) and L+1 (standalone form),
// so a finding there from a different analyzer means the directive's
// name is wrong, not merely stale.
func markMisplaced(unused []UnusedDirective, surviving []Diagnostic) {
	for i := range unused {
		u := &unused[i]
		seen := map[string]bool{}
		for _, d := range surviving {
			if d.Pos.Filename != u.Pos.Filename || d.Analyzer == u.Analyzer {
				continue
			}
			if d.Pos.Line != u.Pos.Line && d.Pos.Line != u.Pos.Line+1 {
				continue
			}
			if !seen[d.Analyzer] {
				seen[d.Analyzer] = true
				u.Misplaced = append(u.Misplaced, d.Analyzer)
			}
		}
		sort.Strings(u.Misplaced)
	}
}

// directiveKey identifies one source line of one file.
type directiveKey struct {
	file string
	line int
}

// directiveEntry is one analyzer named by one directive, remembering
// where the directive stands and whether it ever suppressed anything.
type directiveEntry struct {
	pos  token.Position
	used bool
}

// directiveIndex maps a source line to the analyzers suppressed there.
type directiveIndex map[directiveKey]map[string]*directiveEntry

// suppresses reports whether a directive on the diagnostic's line (a
// trailing comment) or on the line above (a standalone comment) names
// the diagnostic's analyzer, marking every matching entry as used so a
// duplicated directive is not later reported as stale.
func (idx directiveIndex) suppresses(d Diagnostic) bool {
	hit := false
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		if e := idx[directiveKey{d.Pos.Filename, line}][d.Analyzer]; e != nil {
			e.used = true
			hit = true
		}
	}
	return hit
}

// unused returns the entries for analyzers in ran that never
// suppressed a diagnostic.
func (idx directiveIndex) unused(ran map[string]bool) []UnusedDirective {
	var out []UnusedDirective
	for _, byName := range idx {
		for name, e := range byName {
			if ran[name] && !e.used {
				out = append(out, UnusedDirective{Pos: e.pos, Analyzer: name})
			}
		}
	}
	return out
}

// parseDirectives scans every comment of the package for
// //noclint:ignore directives. Well-formed directives land in the
// returned index; malformed ones (missing analyzer, unknown analyzer,
// or missing reason) are returned as diagnostics from the framework
// itself under the name "noclint".
func parseDirectives(pkg *Package, known map[string]bool) (directiveIndex, []Diagnostic) {
	idx := directiveIndex{}
	var bad []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		bad = append(bad, Diagnostic{
			Pos:      pkg.Fset.Position(pos),
			Analyzer: "noclint",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // block comments do not carry directives
				}
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "noclint:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					report(c.Pos(), "malformed directive: //noclint:ignore needs an analyzer name and a reason")
					continue
				}
				name := fields[0]
				if !known[name] {
					report(c.Pos(), "directive names unknown analyzer %q", name)
					continue
				}
				if len(fields) < 2 {
					report(c.Pos(), "directive suppressing %s has no reason; justify the suppression", name)
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := directiveKey{pos.Filename, pos.Line}
				if idx[key] == nil {
					idx[key] = map[string]*directiveEntry{}
				}
				idx[key][name] = &directiveEntry{pos: pos}
			}
		}
	}
	return idx, bad
}
