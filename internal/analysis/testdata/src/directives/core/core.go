// Package core exercises the framework's directive validation: a bad
// suppression must fail loudly instead of silently masking findings.
package core

func placeholder() int { return 0 }

/* want noclint "malformed directive" */ //noclint:ignore

/* want noclint "has no reason" */ //noclint:ignore maprange

/* want noclint "unknown analyzer" */ //noclint:ignore nosuchcheck because it sounded plausible
