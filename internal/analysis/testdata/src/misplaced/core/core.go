// Package core exercises misplaced-suppression reporting: the
// directive below names a real analyzer (floateq) but sits on a line
// whose only finding belongs to maprange — it neither suppresses nor
// ages out, and -unused must call it misplaced.
package core

func Values(m map[int]int) []int {
	var out []int
	//noclint:ignore floateq wrong analyzer: the finding below is maprange's
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
