// Package errs exercises errdrop.
package errs

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"strings"
)

func fallible() error { return errors.New("boom") }

func twoResults() (int, error) { return 0, errors.New("boom") }

func DropCallStatement() {
	fallible() // want errdrop "error result of fallible is silently discarded"
}

func DropBlankAssign() {
	_ = fallible() // want errdrop "error result of fallible is assigned to _"
}

func DropSecondResult() int {
	n, _ := twoResults() // want errdrop "error result of twoResults is assigned to _"

	return n
}

func DropPairwise() {
	err := fallible()

	_ = err // want errdrop "error value err is assigned to _"
}

func JustifiedByKeyword() {
	// besteffort: the result is already committed at this point.
	fallible()
}

func PlainCommentDoesNotJustify() {
	// The result is already committed at this point.
	fallible() // want errdrop "error result of fallible is silently discarded"
}

func BareKeywordDoesNotJustify() {
	// besteffort:
	_ = fallible() // want errdrop "error result of fallible is assigned to _"
}

func SuppressedByDirective() {
	_ = fallible() //noclint:ignore errdrop the directive form works here too
}

func ExcludedPrinters(buf *bytes.Buffer, sb *strings.Builder) {
	fmt.Println("to stdout, nowhere to report a failure")
	fmt.Fprintf(buf, "in-memory buffer never fails")
	fmt.Fprintln(os.Stderr, "stderr is the error channel itself")
	buf.WriteString("always-nil error by contract")
	sb.WriteByte('x')
	_, _ = fmt.Println("blank-assigned printer result is fine too")
}

func FprintfToRealWriterStillCounts(f *os.File) {
	fmt.Fprintf(f, "a real file can fail") // want errdrop "error result of fmt.Fprintf is silently discarded"
}

func HandledIsFine() error {
	if err := fallible(); err != nil {
		return err
	}
	n, err := twoResults()
	_ = n
	return err
}
