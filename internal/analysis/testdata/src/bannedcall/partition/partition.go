// Package partition mimics a hot-path package; the golden test runs
// under FullScope, so the deny-list applies everywhere here.
package partition

import (
	"fmt"
	"reflect"
)

// CacheKey is the exact shape the varint countsKey replaced.
func CacheKey(counts []int) string {
	return fmt.Sprintf("%v", counts) // want bannedcall "call to fmt.Sprintf is banned on the engine hot path"
}

func SprintKey(v int) string {
	return fmt.Sprint(v) // want bannedcall "call to fmt.Sprint is banned on the engine hot path"
}

func SameSlice(a, b []int) bool {
	return reflect.DeepEqual(a, b) // want bannedcall "call to reflect.DeepEqual is banned on the engine hot path"
}

// ErrorfIsAllowed: only the Sprint* family is on the list.
func ErrorfIsAllowed(v int) error {
	return fmt.Errorf("partition: bad part %d", v)
}

func Suppressed(v int) string {
	return fmt.Sprintln(v) //noclint:ignore bannedcall cold debug helper, never on the sweep path
}
