// Package core exercises unused-suppression reporting: one directive
// that earns its keep, one that suppresses nothing, and one for an
// analyzer outside the run set. The package is named core so maprange
// (deterministic-path packages only) applies when selected.
package core

func compare(a, b float64) bool {
	return a == b //noclint:ignore floateq exercising a live suppression
}

func honest(a, b float64) bool {
	//noclint:ignore floateq stale: the comparison below is integer now
	return int(a) < int(b)
}

func collect(m map[string]int) []string {
	var keys []string
	//noclint:ignore maprange used when maprange is in the run set, judged neither way otherwise
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
