// Package worker exercises the three poolescape escape shapes —
// global store, non-arena field store, boundary return — against the
// sanctioned arena idioms, which must all stay clean.
package worker

import (
	"fixture/poolescape/graph"
	"fixture/poolescape/route"
	"fixture/poolescape/topology"
)

// buildContext is an arena container: it owns a scratch by value, so
// stores into its fields and returns rooted at it are the pooling
// boundary itself, not an escape.
type buildContext struct {
	scratch graph.Scratch
	top     *topology.Topology
	router  *route.Router
}

// Server is NOT an arena container — it holds only pointers — so
// parking a pooled reference in one of its fields outlives the arena.
type Server struct {
	router *route.Router
	tops   map[string]*topology.Topology
}

var leakedTop *topology.Topology
var leakedScratch *graph.Scratch
var registry = map[string]*route.Router{}

func globalEscape(bc *buildContext) {
	leakedTop = bc.top // want poolescape "pooled *topology.Topology stored into package-level var leakedTop"
}

func globalAddrEscape(bc *buildContext) {
	leakedScratch = &bc.scratch // want poolescape "graph.Scratch reference stored into package-level var leakedScratch"
}

func globalIndexEscape(bc *buildContext, name string) {
	registry[name] = bc.router // want poolescape "pooled *route.Router stored into package-level var registry"
}

func fieldEscape(s *Server, bc *buildContext) {
	s.router = bc.router // want poolescape "pooled *route.Router stored into field router of non-arena type worker.Server"
}

type result struct {
	top *topology.Topology
}

func returnEscape(r *result) *topology.Topology {
	return r.top // want poolescape "return of pooled *topology.Topology extracted from worker.result"
}

// --- sanctioned idioms below: no annotations, any finding fails ---

// takeTop is the arena handoff: a field store into the container and a
// return rooted at a pointer-to-container parameter are both clean.
func takeTop(bc *buildContext) *topology.Topology {
	if bc.top == nil {
		bc.top = &topology.Topology{}
	}
	return bc.top
}

// takeRouter wires a fresh router to the worker's own scratch; the
// constructor result and the SetScratch call never leave the arena.
func takeRouter(bc *buildContext) *route.Router {
	if bc.router == nil {
		bc.router = route.New()
		bc.router.SetScratch(&bc.scratch)
	}
	return bc.router
}

// fresh values are creation, not escape, even stored globally.
func fresh() *route.Router { return route.New() }

// passThrough returns its own parameter unchanged: plumbing, not
// extraction.
func passThrough(t *topology.Topology) *topology.Topology {
	if t == nil {
		return &topology.Topology{}
	}
	return t
}

// localUse keeps every pooled reference inside the arena's lifetime.
func localUse(bc *buildContext) int {
	t := takeTop(bc)
	r := takeRouter(bc)
	_ = r
	return t.Routers + len(bc.scratch.Buf)
}
