// Package route mimics the real route package: Router is
// Reset-recycled and pins a scratch pointer via SetScratch.
package route

import "fixture/poolescape/graph"

type Router struct {
	scratch *graph.Scratch
}

// New returns a fresh Router; constructor results are creation, not
// escape, so callers may store them anywhere.
func New() *Router { return &Router{} }

// SetScratch pins the router to its worker's arena.
func (r *Router) SetScratch(s *graph.Scratch) { r.scratch = s }

// LeakScratch extracts the pinned scratch out of a pooled object: the
// root of the chain is itself pooled, so the reference crosses the
// pooling boundary.
func LeakScratch(r *Router) *graph.Scratch {
	return r.scratch // want poolescape "return of pooled *graph.Scratch extracted from route.Router"
}
