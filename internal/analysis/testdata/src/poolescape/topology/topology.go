// Package topology mimics the real topology package: Topology is
// Reset-recycled, so references to one are pooled state.
package topology

type Topology struct {
	Routers int
}

// Reset recycles the object for the next design point.
func (t *Topology) Reset() { t.Routers = 0 }
