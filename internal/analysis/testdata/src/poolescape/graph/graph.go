// Package graph mimics the real graph package: its Scratch is a pooled
// arena type (matched by package base + type name).
package graph

type Scratch struct {
	Buf []int
}
