package route

import (
	//noclint:ignore wallclock generator is explicitly seeded by the caller; no process-global state
	"math/rand"
)

// Seeded threads an explicit seed: the import directive documents why
// this file may touch math/rand at all.
func Seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
