// Package route mimics a synthesis-path package (scope is matched on
// the final import-path segment).
package route

import (
	"math/rand" // want wallclock "import of math/rand"
	"time"
)

func Stamp() time.Time {
	return time.Now() // want wallclock "time.Now in a synthesis-path package"
}

func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want wallclock "time.Since in a synthesis-path package"
}

func Remaining(deadline time.Time) time.Duration {
	return time.Until(deadline) // want wallclock "time.Until in a synthesis-path package"
}

// DurationMathIsFine: only the wall-clock readers are flagged.
func DurationMathIsFine(d time.Duration) time.Duration {
	return 2*d + time.Millisecond
}

func Roll() int {
	return rand.Intn(6)
}
