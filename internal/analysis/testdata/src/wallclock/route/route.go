// Package route mimics a hot-path package. The golden test runs under
// FullScope, so every function counts as reachable; the derived
// scope's behavior is pinned by the detflow fixture.
package route

import (
	"math/rand" // want wallclock "import of math/rand"
	"time"
)

func Stamp() time.Time {
	return time.Now() // want wallclock "time.Now on the engine hot path"
}

func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want wallclock "time.Since on the engine hot path"
}

func Remaining(deadline time.Time) time.Duration {
	return time.Until(deadline) // want wallclock "time.Until on the engine hot path"
}

// DurationMathIsFine: only the wall-clock readers are flagged.
func DurationMathIsFine(d time.Duration) time.Duration {
	return 2*d + time.Millisecond
}

func Roll() int {
	return rand.Intn(6)
}
