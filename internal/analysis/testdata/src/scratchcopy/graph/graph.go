// Package graph is a stand-in for the real routing package: the
// scratchcopy analyzer matches the protected Scratch owners on the
// final import-path segment, so this fixture's Scratch counts.
package graph

// Scratch mimics the worker arena: reusable buffers plus state a
// router pins by pointer.
type Scratch struct {
	Dist  []int
	Prev  []int
	Stack [64]int
}

// Reset is the sanctioned pointer-receiver shape.
func (s *Scratch) Reset() {
	s.Dist = s.Dist[:0]
	s.Prev = s.Prev[:0]
}
