// Package worker exercises the scratchcopy analyzer: by-value copies
// of the scratch arenas are flagged, pointer plumbing and fresh
// composite-literal initialization are not.
package worker

import "fixture/scratchcopy/graph"

// workerCtx embeds a scratch by value, so copying the context copies
// the arena: containment is transitive.
type workerCtx struct {
	id int
	sc graph.Scratch
}

// refCtx holds the arena by pointer; copying it shares, not copies.
type refCtx struct {
	id int
	s  *graph.Scratch
}

func use(s graph.Scratch) { // want scratchcopy "parameter takes graph.Scratch by value"
	_ = s
}

func usePtr(s *graph.Scratch) { s.Reset() }

func produce() graph.Scratch { // want scratchcopy "result returns graph.Scratch by value"
	var s graph.Scratch
	return s
}

func (w workerCtx) byValueMethod() int { // want scratchcopy "receiver takes worker.workerCtx by value"
	return w.id
}

func (w *workerCtx) byPtrMethod() int { return w.id }

func copies(box any) {
	sc := graph.Scratch{} // fresh initialization: clean
	p := &sc
	usePtr(p)
	usePtr(&sc)

	dup := sc // want scratchcopy "assignment copies graph.Scratch"
	_ = dup
	deref := *p // want scratchcopy "assignment copies graph.Scratch"
	_ = deref
	var decl = sc // want scratchcopy "declaration copies graph.Scratch"
	_ = decl
	use(sc) // want scratchcopy "call passes graph.Scratch by value"

	asserted := box.(graph.Scratch) // want scratchcopy "assignment copies graph.Scratch"
	_ = asserted

	ctx := workerCtx{sc: sc} // want scratchcopy "composite literal copies graph.Scratch"
	ctx2 := ctx              // want scratchcopy "assignment copies worker.workerCtx"
	_ = ctx2

	ref := refCtx{s: &sc}
	ref2 := ref // pointer field breaks containment: clean
	_ = ref2

	var arr [2]graph.Scratch
	for _, s := range arr { // want scratchcopy "range clause copies graph.Scratch per iteration"
		_ = s
	}
	for i := range arr { // ranging by index: clean
		arr[i].Reset()
	}
	_ = len(arr) // builtin inspects without copying: clean

	ctx = workerCtx{} // zero reset through a composite literal: clean

	suppressed := sc //noclint:ignore scratchcopy fixture demonstrates a justified copy
	_ = suppressed

	fn := func(inner graph.Scratch) { // want scratchcopy "parameter takes graph.Scratch by value"
		_ = inner
	}
	_ = fn
}
