// Package leak exercises goroutineleak.
package leak

import "sync"

func compute() int { return 42 }

func FireAndForget() {
	go func() { // want goroutineleak "no completion signal"
		compute()
	}()
}

func SendsOnChannel(done chan<- struct{}) {
	go func() {
		compute()
		done <- struct{}{}
	}()
}

func ClosesChannel(done chan struct{}) {
	go func() {
		defer close(done)
		compute()
	}()
}

func WaitGroupDone(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		compute()
	}()
}

func CondBroadcast(c *sync.Cond) {
	go func() {
		compute()
		c.Broadcast()
	}()
}

func SelectSend(out chan int) {
	go func() {
		select {
		case out <- compute():
		default:
		}
	}()
}

func helper(done chan struct{}) { done <- struct{}{} }

func SignalsViaHelper(done chan struct{}) {
	go func() {
		compute()
		helper(done)
	}()
}

func leakyWorker() { compute() }

func NamedLeaky() {
	go leakyWorker() // want goroutineleak "no completion signal"
}

func cleanWorker(wg *sync.WaitGroup) {
	defer wg.Done()
	compute()
}

func NamedClean(wg *sync.WaitGroup) {
	wg.Add(1)
	go cleanWorker(wg)
}

func mutualA() { mutualB() }

func mutualB() { mutualA() }

func CycleWithoutSignal() {
	go mutualA() // want goroutineleak "no completion signal"
}

// OpaqueTargetIsSkipped spawns a function value whose body the
// analyzer cannot see; such spawns are out of scope, not findings.
func OpaqueTargetIsSkipped(f func()) {
	go f()
}

func Suppressed() {
	//noclint:ignore goroutineleak long-lived metrics daemon by design
	go func() {
		compute()
	}()
}
