// Package helpers sits outside every analyzer scope: the scoped checks
// (maprange, wallclock, bannedcall) must all stay silent here, and the
// unscoped ones (floateq, errdrop) have nothing to object to.
package helpers

import (
	"fmt"
	"reflect"
	"time"
)

func Values(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

func Stamp() time.Time { return time.Now() }

func Key(counts []int) string { return fmt.Sprintf("%v", counts) }

func Same(a, b []int) bool { return reflect.DeepEqual(a, b) }
