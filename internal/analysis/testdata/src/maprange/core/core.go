// Package core mimics a deterministic-path package (scope is matched
// on the final import-path segment).
package core

import "sort"

// CollectValues appends map values but never sorts them: flagged.
func CollectValues(m map[int]string) []string {
	var out []string
	for _, v := range m { // want maprange "range over map m"
		out = append(out, v)
	}
	return out
}

// SortedKeys is the blessed idiom (internal/soc/usecase.go:88): the
// keys are collected and then order-canonicalized by a sort.
func SortedKeys(m map[int]string) []int {
	keys := make([]int, 0, len(m))
	for k := range m { // exempt: keys collected, sorted below
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// SortedViaSlice exercises sort.Slice (the key slice is the first
// argument, not the only one).
func SortedViaSlice(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // exempt: keys collected, sorted below
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	return keys
}

// CopyEntries only writes dst at the iteration key: every iteration
// touches a distinct entry, so the loop commutes.
func CopyEntries(src, dst map[int]int) {
	for k, v := range src { // exempt: per-key writes commute
		dst[k] = v + 1
	}
}

// DropEntries deletes at the iteration key: commutes.
func DropEntries(src map[int]bool, dst map[int]int) {
	for k := range src { // exempt: per-key deletes commute
		delete(dst, k)
	}
}

// Accumulate folds values in visit order: flagged (float accumulation
// order changes the rounded sum).
func Accumulate(m map[int]float64) float64 {
	var s float64
	for _, v := range m { // want maprange "range over map m"
		s += v
	}
	return s
}

// CountOnly cannot observe iteration order: exempt.
func CountOnly(m map[int]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Suppressed shows the directive on the line above the loop.
func Suppressed(m map[int]int) int {
	best := 0
	//noclint:ignore maprange max over keys is order-independent even if the checker cannot prove it
	for k := range m {
		if k > best {
			best = k
		}
	}
	return best
}
