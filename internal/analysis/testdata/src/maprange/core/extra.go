package core

// second file of the package: diagnostics must surface from every file.

// WriteAtValue writes dst indexed by the VALUE, not the key: two keys
// may share a value, so iterations collide and order matters. Flagged.
func WriteAtValue(src map[int]int, dst map[int]int) {
	for _, v := range src { // want maprange "range over map src"
		dst[v] = v
	}
}

// NestedInClosure is found inside function literals too.
func NestedInClosure(m map[int]int) func() int {
	return func() int {
		s := 0
		for _, v := range m { // want maprange "range over map m"
			s += v
		}
		return s
	}
}
