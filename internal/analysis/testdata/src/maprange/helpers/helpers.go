// Package helpers is NOT a deterministic-path package: maprange stays
// silent here no matter what the loops do.
package helpers

func Values(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
