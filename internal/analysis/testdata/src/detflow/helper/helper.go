// Package helper is reachable from the fixture's core.Synthesize root
// three ways: Sum statically, Cost.Score through the Metric interface,
// and double through the func value Pick returns. All three carry a
// finding the derived scope must surface.
package helper

import "time"

func Sum(m map[int]int) int {
	s := 0
	for _, v := range m { // want maprange "range over map m"
		s += v
	}
	return s
}

// Cost implements core.Metric; the interface dispatch in Synthesize
// pulls Score (and its callee stamp) into the reachable set.
type Cost struct{}

func (Cost) Score(xs []int) int {
	return stamp() + len(xs)
}

func stamp() int {
	return int(time.Now().UnixNano()) // want wallclock "time.Now on the engine hot path"
}

// Pick hands back a func value; the dynamic-call resolution matches
// double (address-taken here, signature-compatible with the call in
// Synthesize) into the reachable set.
func Pick() func(int) int {
	return double
}

func double(x int) int {
	seen := map[int]bool{x: true}
	n := 0
	for k := range seen { // want maprange "range over map seen"
		n += k
	}
	return n
}
