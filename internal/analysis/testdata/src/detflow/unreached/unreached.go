// Package unreached is the negative half of the detflow fixture: the
// same shapes that are flagged in core and helper, in a package no
// engine root reaches. The derived scope must keep maprange, wallclock
// and bannedcall silent here — the file carries no want annotations, so
// any diagnostic fails the golden test.
package unreached

import (
	"math/rand"
	"time"
)

func Sum(m map[int]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}

func Stamp() int64 {
	return time.Now().UnixNano()
}

func Roll() int {
	return rand.Intn(6)
}
