// Package core is the detflow fixture's engine entry point: Synthesize
// matches the core.Synthesize engine root, and everything it reaches —
// a static cross-package call, an interface dispatch, and a func-value
// call — lands in the derived scope. The twin package unreached holds
// identical code that no root reaches and must stay silent.
package core

import (
	"fixture/detflow/helper"
)

// Metric is dispatched through an interface so the fixture exercises
// the call graph's conservative interface resolution: helper.Cost
// implements it, so Cost.Score is reachable.
type Metric interface {
	Score(xs []int) int
}

// Synthesize is the engine root. Its own map range is flagged, as are
// the sites in helper it reaches transitively.
func Synthesize(m map[int]int, ms []Metric) int {
	total := 0
	for _, v := range m { // want maprange "range over map m"
		total += v
	}
	total += helper.Sum(m)
	for _, me := range ms {
		total += me.Score(nil)
	}
	f := helper.Pick()
	be := &boundsEnv{fixed: m}
	if Prune(be, total) {
		total++
	}
	return total + f(total)
}
