// The bounds-shaped half of the fixture: a lower-bound helper the root
// reaches only through the branch-and-bound pattern the engine uses —
// an env struct built once and a method called per candidate. The
// derived scope must follow the method value through the struct.
package core

// boundsEnv mirrors the engine's precomputed bound environment.
type boundsEnv struct {
	fixed map[int]int
}

// lowerBound folds the env's fixed terms with a candidate's; its map
// range is on the hot path because Prune reaches it from the root.
func (be *boundsEnv) lowerBound(extra int) int {
	lb := extra
	for _, v := range be.fixed { // want maprange "range over map be.fixed"
		lb += v
	}
	return lb
}

// Prune is called from the root with the env, the engine's
// per-candidate shape.
func Prune(be *boundsEnv, cand int) bool {
	return be.lowerBound(cand) > 0
}
