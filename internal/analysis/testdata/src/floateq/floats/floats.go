// Package floats exercises floateq; the analyzer is unscoped, so the
// package name does not matter.
package floats

// Eq64 is the canonical miss.
func Eq64(a, b float64) bool {
	return a == b // want floateq "== between float operands"
}

// Neq32 covers float32 and !=.
func Neq32(a, b float32) bool {
	return a != b // want floateq "!= between float operands"
}

// MixedConst has one constant operand: still flagged (the variable side
// carries rounding).
func MixedConst(a float64) bool {
	return a == 1.5 // want floateq "== between float operands"
}

const half = 0.5

// ConstFolded compares two compile-time constants: exact by
// construction, exempt.
func ConstFolded() bool {
	return half == 0.5
}

// Ints are exact: exempt.
func Ints(a, b int) bool {
	return a == b
}

// Celsius is a defined float type: its underlying kind is what counts.
type Celsius float64

func NamedFloat(a, b Celsius) bool {
	return a != b // want floateq "!= between float operands"
}

// Suppressed shows the trailing-directive form.
func Suppressed(a, b float64) bool {
	return a == b //noclint:ignore floateq exact comparison is the contract under test
}
