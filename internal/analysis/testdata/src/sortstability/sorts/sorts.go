// Package sorts exercises the sortstability analyzer.
package sorts

import "sort"

type point struct {
	Power   float64
	Latency float64
	Index   int
}

type pair struct {
	Name string
	W    float64
}

func partialNoTieBreak(ps []point) {
	sort.Slice(ps, func(i, j int) bool { // want sortstability "does not compare field"
		return ps[i].Power < ps[j].Power
	})
}

func partialStableStillFlagged(ps []point) {
	sort.SliceStable(ps, func(i, j int) bool { // want sortstability "does not compare field"
		return ps[i].Power < ps[j].Power || ps[i].Latency < ps[j].Latency
	})
}

func floatTieBreakNotTotal(ps []point) {
	// The rightmost comparison is a float: NaN is unordered, so this is
	// not a total-order tie-break, and Index is never compared.
	sort.Slice(ps, func(i, j int) bool { // want sortstability "does not compare field"
		if ps[i].Power != ps[j].Power {
			return ps[i].Power < ps[j].Power
		}
		return ps[i].Latency < ps[j].Latency
	})
}

func intTieBreak(ps []point) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Power != ps[j].Power {
			return ps[i].Power < ps[j].Power
		}
		return ps[i].Index < ps[j].Index
	})
}

func orChainIntTieBreak(ps []point) {
	sort.Slice(ps, func(i, j int) bool {
		return ps[i].Power < ps[j].Power ||
			(ps[i].Power == ps[j].Power && ps[i].Index < ps[j].Index)
	})
}

func stringTieBreak(ws []pair) {
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].W != ws[j].W {
			return ws[i].W > ws[j].W
		}
		return ws[i].Name < ws[j].Name
	})
}

func allFieldsCompared(ws []pair) {
	// Every field participates even though the final return is not a
	// bare comparison; a full lexicographic order cannot leave ties.
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].Name != ws[j].Name {
			return ws[i].Name < ws[j].Name
		}
		return ws[i].W < ws[j].W
	})
}

func aliasedReceivers(ps []point) {
	// Field references through local aliases still count.
	sort.Slice(ps, func(i, j int) bool {
		a, b := ps[i], ps[j]
		if a.Power != b.Power {
			return a.Power < b.Power
		}
		if a.Latency != b.Latency {
			return a.Latency < b.Latency
		}
		return a.Index < b.Index
	})
}

func scalarElements(xs []int) {
	// Non-struct elements order by value; nothing to miss.
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

func namedComparator(ps []point, less func(i, j int) bool) {
	// Named comparators are skipped: the body is not visible here.
	sort.Slice(ps, less)
}
