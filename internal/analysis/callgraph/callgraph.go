// Package callgraph constructs a deterministic, type-informed call
// graph over a set of type-checked packages — the interprocedural
// substrate under the detflow scope derivation, the poolescape escape
// summaries and the engine-surface digest (see DESIGN.md "Static
// analysis layer").
//
// Resolution rules, in decreasing precision:
//
//   - Static calls (package-level functions, concrete methods, method
//     expressions) resolve through go/types to exactly one callee.
//   - Interface method calls resolve conservatively to every concrete
//     method in the analyzed packages with the same name whose receiver
//     type (or its pointer) implements the interface — an
//     over-approximation, never an omission.
//   - Calls through func values (variables, parameters, fields, call
//     results) mark the caller as dynamic; at reachability time a
//     dynamic caller reaches every function whose value was taken (as a
//     plain reference or a method value) somewhere in already-reachable
//     code and whose signature matches the call site. A function value
//     must be created in executed code before it can flow anywhere, so
//     restricting the pool to reachable takers loses nothing.
//   - Instantiating a named type (composite literal, conversion, new)
//     in reachable code makes the type's whole method set reachable:
//     the instance may travel into the standard library (sort.Sort,
//     fmt's Stringer) and come back through calls the AST never shows.
//
// Function literals are folded into their enclosing declared function:
// a closure is reachable exactly when its creator is. Package-level
// var/const initializers and init functions form synthetic nodes that
// become reachable as soon as any function of their package does,
// mirroring the runtime's init-on-first-import rule closely enough for
// enforcement purposes.
//
// Construction is order-deterministic by design: packages and files
// arrive in the loader's sorted order, every adjacency list is sorted
// and deduplicated by node ID, and reachability is a breadth-first
// visit over those sorted lists — byte-identical graphs and visit
// parents regardless of GOMAXPROCS or map seed.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"io"
	"path"
	"sort"
	"strings"
)

// A Unit is one type-checked package handed to Build — the fields of
// analysis.Package the graph needs, kept structural so this package
// depends only on go/ast and go/types.
type Unit struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Info  *types.Info
}

// A Node is one function of the graph: a declared function or method,
// or a synthetic per-package node for init functions and package-level
// initializers.
type Node struct {
	// ID is the stable identity the graph sorts by: the types.Func
	// FullName for declared functions ("pkg/path.Fn",
	// "(*pkg/path.T).Method"), "pkg/path.init#file:line" for init
	// functions and "pkg/path.<vars>" for the package-initializer node.
	ID string
	// Label is the short display form used in diagnostics and -why
	// paths: final import-path segment plus name ("core.Synthesize",
	// "route.(*Router).RouteAll").
	Label string
	// Obj is the declared function object; nil for the synthetic
	// package-initializer node.
	Obj *types.Func
	// Decl is the declaration; nil for the package-initializer node,
	// whose source lives in Inits.
	Decl *ast.FuncDecl
	// Inits holds the package-level const/var declarations of the
	// synthetic initializer node, in file order.
	Inits []*ast.GenDecl
	// PkgPath is the import path of the declaring package.
	PkgPath string
	// Pos is the resolved position of the declaration (the package
	// clause of the first file for initializer nodes).
	Pos token.Position

	// Calls is the sorted, deduplicated adjacency list: every callee
	// resolved statically or through the interface conservatism.
	Calls []*Node
	// Dynamic records that the body calls through at least one func
	// value; reachability then consults the taken-function pool.
	Dynamic bool

	fset  *token.FileSet
	calls map[string]*Node
	// takes lists functions whose value this node captures (func
	// references outside call position, method values); they join the
	// dynamic-call pool once this node is reachable.
	takes []*Node
	// dynSigs are the signatures of the body's dynamic call sites,
	// matched against taken functions' signatures.
	dynSigs []*types.Signature
	// instantiated lists named types whose values this node creates;
	// their method sets become reachable with the node.
	instantiated []*types.Named
}

// Takes returns the functions whose value this node captures, sorted.
func (n *Node) Takes() []*Node { return n.takes }

// PrintSource writes the node's declaration(s) through go/printer —
// comment-free, gofmt-normalized output, so the engine-surface digest
// tracks code, not formatting.
func (n *Node) PrintSource(w io.Writer) error {
	if n.Decl != nil {
		return printer.Fprint(w, n.fset, n.Decl)
	}
	for _, d := range n.Inits {
		if err := printer.Fprint(w, n.fset, d); err != nil {
			return err
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

// A Graph is the whole-module call graph.
type Graph struct {
	// Nodes is every node sorted by ID.
	Nodes []*Node
	// ByObj resolves a declared function object to its node.
	ByObj map[*types.Func]*Node

	byID map[string]*Node
	// pkgInits groups the synthetic and init nodes per package path.
	pkgInits map[string][]*Node
	// varInit is the synthetic package-initializer node per package.
	varInit map[string]*Node
	// methods indexes concrete methods by name for interface
	// resolution, and by receiver's named type for instantiation
	// resolution.
	methodsByName map[string][]*Node
	methodsByRecv map[*types.TypeName][]*Node
}

// NodeByID resolves a node by its stable ID.
func (g *Graph) NodeByID(id string) *Node { return g.byID[id] }

// Build constructs the graph over the given units. Units and their
// files must arrive in a deterministic order (the analysis loader's
// sorted-import-path order); everything downstream is then sorted by
// construction.
func Build(units []*Unit) *Graph {
	g := &Graph{
		ByObj:         map[*types.Func]*Node{},
		byID:          map[string]*Node{},
		pkgInits:      map[string][]*Node{},
		varInit:       map[string]*Node{},
		methodsByName: map[string][]*Node{},
		methodsByRecv: map[*types.TypeName][]*Node{},
	}
	// Pass 1: create nodes for every declared function with a body,
	// the per-package init functions, and one initializer node per
	// package holding the value-bearing const/var declarations.
	for _, u := range units {
		var inits []*ast.GenDecl
		for _, f := range u.Files {
			for _, d := range f.Decls {
				switch d := d.(type) {
				case *ast.FuncDecl:
					if d.Body == nil {
						continue
					}
					fn, ok := u.Info.Defs[d.Name].(*types.Func)
					if !ok {
						continue
					}
					g.addFuncNode(u, fn, d)
				case *ast.GenDecl:
					if d.Tok == token.CONST || d.Tok == token.VAR {
						inits = append(inits, d)
					}
				}
			}
		}
		if len(inits) > 0 {
			n := &Node{
				ID:      u.Path + ".<vars>",
				Label:   path.Base(u.Path) + ".<vars>",
				Inits:   inits,
				PkgPath: u.Path,
				Pos:     u.Fset.Position(u.Files[0].Package),
				fset:    u.Fset,
				calls:   map[string]*Node{},
			}
			g.byID[n.ID] = n
			g.varInit[u.Path] = n
			g.pkgInits[u.Path] = append(g.pkgInits[u.Path], n)
		}
	}
	// Pass 2: resolve call edges, taken functions, dynamic call
	// signatures and instantiated types for every node body.
	for _, u := range units {
		for _, f := range u.Files {
			for _, d := range f.Decls {
				switch d := d.(type) {
				case *ast.FuncDecl:
					if d.Body == nil {
						continue
					}
					fn, ok := u.Info.Defs[d.Name].(*types.Func)
					if !ok {
						continue
					}
					if n := g.ByObj[fn]; n != nil {
						g.scanBody(u, n, d.Body)
					}
				case *ast.GenDecl:
					// Initializer expressions (including function
					// literals in package-level vars) belong to the
					// package's initializer node.
					if d.Tok != token.CONST && d.Tok != token.VAR {
						continue
					}
					if n := g.varInit[u.Path]; n != nil {
						g.scanBody(u, n, d)
					}
				}
			}
		}
	}
	// Finalize: sorted node list, sorted adjacency.
	for _, n := range g.byID {
		n.Calls = make([]*Node, 0, len(n.calls))
		for _, c := range n.calls {
			n.Calls = append(n.Calls, c)
		}
		sortNodes(n.Calls)
		sortNodes(n.takes)
		g.Nodes = append(g.Nodes, n)
	}
	sortNodes(g.Nodes)
	for _, ns := range g.pkgInits {
		sortNodes(ns)
	}
	return g
}

func sortNodes(ns []*Node) {
	sort.Slice(ns, func(i, j int) bool { return ns[i].ID < ns[j].ID })
}

// addFuncNode creates the node for one declared function or method.
func (g *Graph) addFuncNode(u *Unit, fn *types.Func, d *ast.FuncDecl) {
	id := fn.FullName()
	if fn.Name() == "init" && d.Recv == nil {
		// Multiple init functions share a FullName; disambiguate by
		// position, which is stable across runs.
		pos := u.Fset.Position(d.Pos())
		id = fmt.Sprintf("%s#%s:%d", id, path.Base(pos.Filename), pos.Line)
	}
	n := &Node{
		ID:      id,
		Label:   label(fn),
		Obj:     fn,
		Decl:    d,
		PkgPath: u.Path,
		Pos:     u.Fset.Position(d.Pos()),
		fset:    u.Fset,
		calls:   map[string]*Node{},
	}
	g.ByObj[fn] = n
	g.byID[n.ID] = n
	if fn.Name() == "init" && d.Recv == nil {
		g.pkgInits[u.Path] = append(g.pkgInits[u.Path], n)
		return
	}
	if recv := recvTypeName(fn); recv != nil {
		g.methodsByName[fn.Name()] = append(g.methodsByName[fn.Name()], n)
		g.methodsByRecv[recv] = append(g.methodsByRecv[recv], n)
	}
}

// label renders the short display form of a function.
func label(fn *types.Func) string {
	pkg := "_"
	if fn.Pkg() != nil {
		pkg = path.Base(fn.Pkg().Path())
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		rt := sig.Recv().Type()
		star := ""
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
			star = "*"
		}
		name := rt.String()
		switch t := rt.(type) {
		case *types.Named:
			name = t.Obj().Name()
		case *types.Interface:
			name = "interface"
		}
		return fmt.Sprintf("%s.(%s%s).%s", pkg, star, name, fn.Name())
	}
	return pkg + "." + fn.Name()
}

// recvTypeName returns the *types.TypeName of a concrete method's
// receiver, nil for package-level functions and interface methods.
func recvTypeName(fn *types.Func) *types.TypeName {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return nil
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || types.IsInterface(named) {
		return nil
	}
	return named.Obj()
}

// scanBody walks one node's body (a function body or a package-level
// declaration), resolving calls, taken function values, dynamic call
// signatures and instantiated types.
func (g *Graph) scanBody(u *Unit, n *Node, body ast.Node) {
	// calleeIdents marks identifiers consumed as the callee of a call
	// expression, so a later walk can tell a call from a taken value.
	calleeIdents := map[*ast.Ident]bool{}
	ast.Inspect(body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.CallExpr:
			g.scanCall(u, n, node, calleeIdents)
		case *ast.CompositeLit:
			if named := namedOf(u.Info.TypeOf(node)); named != nil {
				n.instantiated = append(n.instantiated, named)
			}
		case *ast.Ident:
			if calleeIdents[node] {
				return true
			}
			if fn, ok := u.Info.Uses[node].(*types.Func); ok {
				if target := g.ByObj[fn]; target != nil {
					n.takes = append(n.takes, target)
				}
			}
		}
		return true
	})
}

// scanCall resolves one call expression from node n.
func (g *Graph) scanCall(u *Unit, n *Node, call *ast.CallExpr, calleeIdents map[*ast.Ident]bool) {
	fun := ast.Unparen(call.Fun)
	// Type conversions create a value of the target type.
	if tv, ok := u.Info.Types[fun]; ok && tv.IsType() {
		if named := namedOf(tv.Type); named != nil {
			n.instantiated = append(n.instantiated, named)
		}
		return
	}
	var callee *types.Func
	switch fun := fun.(type) {
	case *ast.Ident:
		calleeIdents[fun] = true
		switch obj := u.Info.Uses[fun].(type) {
		case *types.Func:
			callee = obj
		case *types.Builtin:
			if obj.Name() == "new" && len(call.Args) == 1 {
				if named := namedOf(u.Info.TypeOf(call.Args[0])); named != nil {
					n.instantiated = append(n.instantiated, named)
				}
			}
			return
		case nil:
			// Unresolved; treat as dynamic below.
		default:
			// A variable or parameter of function type.
		}
	case *ast.SelectorExpr:
		calleeIdents[fun.Sel] = true
		if obj, ok := u.Info.Uses[fun.Sel].(*types.Func); ok {
			callee = obj
		}
	case *ast.IndexExpr, *ast.IndexListExpr:
		// Generic instantiation: the Uses entry hangs off the inner
		// identifier.
		inner := fun
		for {
			switch e := inner.(type) {
			case *ast.IndexExpr:
				inner = ast.Unparen(e.X)
				continue
			case *ast.IndexListExpr:
				inner = ast.Unparen(e.X)
				continue
			}
			break
		}
		switch e := inner.(type) {
		case *ast.Ident:
			calleeIdents[e] = true
			if obj, ok := u.Info.Uses[e].(*types.Func); ok {
				callee = obj
			}
		case *ast.SelectorExpr:
			calleeIdents[e.Sel] = true
			if obj, ok := u.Info.Uses[e.Sel].(*types.Func); ok {
				callee = obj
			}
		}
	}
	if callee == nil {
		// A call through a func value (variable, field, parameter,
		// another call's result).
		n.Dynamic = true
		if sig, ok := u.Info.TypeOf(call.Fun).(*types.Signature); ok {
			n.dynSigs = append(n.dynSigs, sig)
		}
		return
	}
	if iface := interfaceRecv(callee); iface != nil {
		// Interface dispatch: every concrete same-name method whose
		// receiver implements the interface is a possible callee.
		for _, m := range g.methodsByName[callee.Name()] {
			recv := m.Obj.Type().(*types.Signature).Recv().Type()
			if types.Implements(recv, iface) || types.Implements(types.NewPointer(derefType(recv)), iface) {
				n.calls[m.ID] = m
			}
		}
		return
	}
	if target := g.ByObj[callee]; target != nil {
		n.calls[target.ID] = target
	}
	// Calls out of the analyzed set (standard library) carry no edge;
	// callbacks handed to them are covered by the taken-value pool and
	// the instantiated-type method-set rule.
}

// interfaceRecv returns the receiver interface of an interface method,
// nil otherwise.
func interfaceRecv(fn *types.Func) *types.Interface {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return nil
	}
	iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
	return iface
}

func derefType(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// namedOf unwraps pointers, slices, arrays and maps down to a named
// type, nil when there is none. Instantiating []T or map[K]T
// instantiates T for method-set purposes.
func namedOf(t types.Type) *types.Named {
	for t != nil {
		switch tt := t.(type) {
		case *types.Named:
			return tt
		case *types.Alias:
			t = types.Unalias(tt)
		case *types.Pointer:
			t = tt.Elem()
		case *types.Slice:
			t = tt.Elem()
		case *types.Array:
			t = tt.Elem()
		case *types.Map:
			t = tt.Elem()
		default:
			return nil
		}
	}
	return nil
}

// A Reach is the result of one reachability computation: the set of
// reachable nodes plus the breadth-first parent tree that lets Path
// reconstruct a root→node call chain.
type Reach struct {
	Graph *Graph
	// Roots are the entry nodes, sorted by ID.
	Roots []*Node

	nodes  map[*Node]bool
	parent map[*Node]*Node
}

// ReachableFrom computes the functions reachable from the given roots.
// The visit is a deterministic breadth-first traversal: the frontier
// is processed in sorted order, dynamic-call resolution re-runs
// whenever the taken-function pool grows, and the recorded parent of a
// node is its first (shallowest, then lexicographically smallest)
// discoverer — so Path output is byte-stable across runs.
func (g *Graph) ReachableFrom(roots []*Node) *Reach {
	r := &Reach{
		Graph:  g,
		nodes:  map[*Node]bool{},
		parent: map[*Node]*Node{},
	}
	r.Roots = append(r.Roots, roots...)
	sortNodes(r.Roots)

	var frontier []*Node
	pkgSeen := map[string]bool{}
	taken := map[*Node]bool{}   // pool of function values taken in reachable code
	dynamic := map[*Node]bool{} // reachable nodes with dynamic call sites

	add := func(n *Node, from *Node) {
		if n == nil || r.nodes[n] {
			return
		}
		r.nodes[n] = true
		if from != nil {
			r.parent[n] = from
		}
		frontier = append(frontier, n)
	}
	for _, root := range r.Roots {
		add(root, nil)
	}
	for len(frontier) > 0 {
		// Sort each BFS layer so discovery order — and therefore the
		// parent tree — never depends on map iteration.
		layer := frontier
		frontier = nil
		sortNodes(layer)
		for _, n := range layer {
			if !pkgSeen[n.PkgPath] {
				// First function of a package: its initializers run.
				pkgSeen[n.PkgPath] = true
				for _, ini := range g.pkgInits[n.PkgPath] {
					add(ini, n)
				}
			}
			for _, c := range n.Calls {
				add(c, n)
			}
			for _, t := range n.takes {
				taken[t] = true
			}
			for _, named := range n.instantiated {
				for _, m := range g.methodsByRecv[named.Obj()] {
					add(m, n)
				}
			}
			if n.Dynamic {
				dynamic[n] = true
			}
		}
		if len(frontier) == 0 {
			// Fixpoint step for dynamic calls: match the pool of taken
			// functions against reachable dynamic call sites.
			callers := make([]*Node, 0, len(dynamic))
			for n := range dynamic {
				callers = append(callers, n)
			}
			sortNodes(callers)
			pool := make([]*Node, 0, len(taken))
			for t := range taken {
				pool = append(pool, t)
			}
			sortNodes(pool)
			for _, caller := range callers {
				for _, t := range pool {
					if r.nodes[t] {
						continue
					}
					if dynMatch(caller, t) {
						add(t, caller)
					}
				}
			}
		}
	}
	return r
}

// dynMatch reports whether a taken function t is a plausible target of
// one of caller's dynamic call sites: identical signature (receiver
// stripped — a method value's call signature has no receiver), or an
// unresolvable site signature, which stays conservative.
func dynMatch(caller, t *Node) bool {
	if t.Obj == nil {
		return false
	}
	tsig, ok := t.Obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	if tsig.Recv() != nil {
		tsig = types.NewSignatureType(nil, nil, nil, tsig.Params(), tsig.Results(), tsig.Variadic())
	}
	if len(caller.dynSigs) == 0 {
		return true
	}
	for _, s := range caller.dynSigs {
		if types.Identical(s, tsig) {
			return true
		}
	}
	return false
}

// Has reports whether the declared function is reachable.
func (r *Reach) Has(fn *types.Func) bool {
	n := r.Graph.ByObj[fn]
	return n != nil && r.nodes[n]
}

// HasNode reports whether the node is reachable.
func (r *Reach) HasNode(n *Node) bool { return r.nodes[n] }

// Nodes returns every reachable node sorted by ID.
func (r *Reach) Nodes() []*Node {
	out := make([]*Node, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sortNodes(out)
	return out
}

// Path reconstructs the breadth-first discovery chain from a root to
// n, inclusive; nil when n is not reachable.
func (r *Reach) Path(n *Node) []*Node {
	if !r.nodes[n] {
		return nil
	}
	var rev []*Node
	for cur := n; cur != nil; cur = r.parent[cur] {
		rev = append(rev, cur)
	}
	out := make([]*Node, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out
}

// FormatPath renders a Path as a one-call-per-line chain:
//
//	core.Synthesize (internal/core/core.go:297)
//	  → route.(*Router).RouteAll (internal/route/route.go:101)
func FormatPath(nodes []*Node, rel func(string) string) string {
	var b strings.Builder
	for i, n := range nodes {
		file := n.Pos.Filename
		if rel != nil {
			file = rel(file)
		}
		if i > 0 {
			b.WriteString("  → ")
		}
		fmt.Fprintf(&b, "%s (%s:%d)\n", n.Label, file, n.Pos.Line)
	}
	return b.String()
}

// EnclosingNode finds the node whose declaration spans the given
// file/line — the innermost FuncDecl covering it, or the package
// initializer node when the position sits in a package-level var/const
// declaration. Filename must match the position's resolved filename
// exactly.
func (g *Graph) EnclosingNode(filename string, line int) *Node {
	var best *Node
	for _, n := range g.Nodes {
		spans := func(node ast.Node) bool {
			start := n.fset.Position(node.Pos())
			end := n.fset.Position(node.End())
			return start.Filename == filename && start.Line <= line && line <= end.Line
		}
		if n.Decl != nil {
			if spans(n.Decl) {
				best = n
			}
			continue
		}
		for _, d := range n.Inits {
			if spans(d) {
				best = n
			}
		}
	}
	return best
}
