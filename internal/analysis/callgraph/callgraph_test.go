package callgraph_test

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"nocvi/internal/analysis"
	"nocvi/internal/analysis/callgraph"
)

// loadUnits loads the detflow fixture tree through the analysis loader
// and converts it to callgraph units.
func loadUnits(t testing.TB) []*callgraph.Unit {
	t.Helper()
	loader, err := analysis.NewLoader(filepath.Join("..", "testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadPatterns("./detflow/...")
	if err != nil {
		t.Fatal(err)
	}
	units := make([]*callgraph.Unit, 0, len(pkgs))
	for _, p := range pkgs {
		units = append(units, &callgraph.Unit{Path: p.Path, Fset: p.Fset, Files: p.Files, Info: p.Info})
	}
	return units
}

// render flattens a graph to a canonical text form: one line per node
// with its sorted adjacency, plus the reachable set and every root→node
// path from the fixture's Synthesize root.
func render(g *callgraph.Graph) string {
	var b strings.Builder
	for _, n := range g.Nodes {
		fmt.Fprintf(&b, "%s ->", n.ID)
		for _, c := range n.Calls {
			fmt.Fprintf(&b, " %s", c.ID)
		}
		if n.Dynamic {
			b.WriteString(" [dynamic]")
		}
		b.WriteString("\n")
	}
	var roots []*callgraph.Node
	for _, n := range g.Nodes {
		if strings.HasSuffix(n.ID, "core.Synthesize") {
			roots = append(roots, n)
		}
	}
	reach := g.ReachableFrom(roots)
	for _, n := range reach.Nodes() {
		b.WriteString("reach " + n.ID + "\n")
		b.WriteString(callgraph.FormatPath(reach.Path(n), filepath.Base))
	}
	return b.String()
}

// TestBuildIsDeterministic pins the order-determinism guarantee: two
// independent loads and builds produce byte-identical graphs, reachable
// sets and discovery paths.
func TestBuildIsDeterministic(t *testing.T) {
	a := render(callgraph.Build(loadUnits(t)))
	for i := 0; i < 3; i++ {
		b := render(callgraph.Build(loadUnits(t)))
		if a != b {
			t.Fatalf("graph render differs between builds:\n--- first\n%s\n--- rebuild %d\n%s", a, i+1, b)
		}
	}
}

// TestEdgeResolution checks each resolution rule lands the expected
// edge or reachability: static cross-package calls, conservative
// interface dispatch, and func-value (dynamic) targets.
func TestEdgeResolution(t *testing.T) {
	g := callgraph.Build(loadUnits(t))
	syn := g.NodeByID("fixture/detflow/core.Synthesize")
	if syn == nil {
		t.Fatal("core.Synthesize node missing")
	}
	hasCall := func(n *callgraph.Node, id string) bool {
		for _, c := range n.Calls {
			if c.ID == id {
				return true
			}
		}
		return false
	}
	if !hasCall(syn, "fixture/detflow/helper.Sum") {
		t.Errorf("static edge Synthesize -> helper.Sum missing; calls: %v", ids(syn.Calls))
	}
	if !hasCall(syn, "(fixture/detflow/helper.Cost).Score") {
		t.Errorf("interface-dispatch edge Synthesize -> Cost.Score missing; calls: %v", ids(syn.Calls))
	}
	if !syn.Dynamic {
		t.Error("Synthesize calls through a func value and must be marked dynamic")
	}

	reach := g.ReachableFrom([]*callgraph.Node{syn})
	for _, id := range []string{
		"fixture/detflow/helper.Sum",
		"(fixture/detflow/helper.Cost).Score",
		"fixture/detflow/helper.stamp",
		"fixture/detflow/helper.double", // via the func value Pick returns
	} {
		n := g.NodeByID(id)
		if n == nil {
			t.Errorf("node %s missing", id)
			continue
		}
		if !reach.HasNode(n) {
			t.Errorf("%s must be reachable from Synthesize", id)
		}
	}
	for _, n := range reach.Nodes() {
		if strings.Contains(n.ID, "/unreached.") {
			t.Errorf("unreached package function %s must not be reachable", n.ID)
		}
	}

	// Path ends at the queried node and starts at the root.
	stamp := g.NodeByID("fixture/detflow/helper.stamp")
	chain := reach.Path(stamp)
	if len(chain) < 2 || chain[0] != syn || chain[len(chain)-1] != stamp {
		t.Errorf("Path(stamp) must run root→stamp, got %v", ids(chain))
	}
}

func ids(ns []*callgraph.Node) []string {
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = n.ID
	}
	return out
}

// BenchmarkCallGraph measures graph construction plus reachability over
// the real module, the cost the noclint lint lane pays per uncached run.
func BenchmarkCallGraph(b *testing.B) {
	loader, err := analysis.NewLoader(filepath.Join("..", "..", ".."))
	if err != nil {
		b.Fatal(err)
	}
	pkgs, err := loader.LoadPatterns("./...")
	if err != nil {
		b.Fatal(err)
	}
	units := make([]*callgraph.Unit, 0, len(pkgs))
	for _, p := range pkgs {
		units = append(units, &callgraph.Unit{Path: p.Path, Fset: p.Fset, Files: p.Files, Info: p.Info})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := callgraph.Build(units)
		var roots []*callgraph.Node
		for _, n := range g.Nodes {
			if strings.HasSuffix(n.ID, "core.Synthesize") || strings.HasSuffix(n.ID, "core.SynthesizeSweep") {
				roots = append(roots, n)
			}
		}
		if r := g.ReachableFrom(roots); len(r.Nodes()) == 0 {
			b.Fatal("no reachable nodes over the real module")
		}
	}
}
