package analysis

import (
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// A Package is one parsed and type-checked package of the module under
// analysis.
type Package struct {
	Path  string // import path, e.g. nocvi/internal/core
	Dir   string // absolute directory
	Name  string // package clause name
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader resolves, parses and type-checks packages of a single Go
// module using only the standard library: module-internal imports are
// type-checked recursively from source by the Loader itself, and
// everything else (the standard library) is delegated to the source
// go/importer. No golang.org/x/tools, no export data.
type Loader struct {
	Root         string // absolute module root (the directory holding go.mod)
	Module       string // module path from go.mod
	IncludeTests bool   // also parse _test.go files of the package under test
	Fset         *token.FileSet

	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader prepares a Loader for the module rooted at root.
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, errors.New("analysis: source importer does not implement types.ImporterFrom")
	}
	return &Loader{
		Root:    abs,
		Module:  mod,
		Fset:    fset,
		std:     std,
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// LoadPatterns loads every package matched by the given patterns, in
// deterministic (sorted import path) order. Supported patterns are a
// plain relative directory ("./cmd/noclint") and the recursive form
// ("./...", "./internal/..."), mirroring the go tool. Directories named
// testdata or vendor and directories starting with "." or "_" are
// skipped by the recursive form.
func (l *Loader) LoadPatterns(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirSet := map[string]bool{}
	for _, pat := range patterns {
		if base, ok := strings.CutSuffix(pat, "..."); ok {
			base = strings.TrimSuffix(base, "/")
			if base == "" || base == "." {
				base = l.Root
			} else {
				base = filepath.Join(l.Root, base)
			}
			if err := walkGoDirs(base, l.IncludeTests, dirSet); err != nil {
				return nil, err
			}
			continue
		}
		dir := filepath.Join(l.Root, pat)
		ok, err := hasGoFiles(dir, l.IncludeTests)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("analysis: no Go files in %s", dir)
		}
		dirSet[dir] = true
	}
	dirs := make([]string, 0, len(dirSet))
	for d := range dirSet {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.Root, dir)
		if err != nil {
			return nil, err
		}
		ip := l.Module
		if rel != "." {
			ip = l.Module + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.load(ip)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// walkGoDirs collects, into out, every directory under base holding at
// least one analyzable Go file.
func walkGoDirs(base string, tests bool, out map[string]bool) error {
	return filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != base && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ok, err := hasGoFiles(p, tests)
		if err != nil {
			return err
		}
		if ok {
			out[p] = true
		}
		return nil
	})
}

func hasGoFiles(dir string, tests bool) (bool, error) {
	names, err := goFileNames(dir, tests)
	if err != nil {
		return false, err
	}
	return len(names) > 0, nil
}

// goFileNames lists the Go files of dir in sorted order, applying the
// same exclusions as the recursive walk.
func goFileNames(dir string, tests bool) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if !tests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// load parses and type-checks the module package with the given import
// path, memoized across the Loader's lifetime.
func (l *Loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")))
	names, err := goFileNames(dir, l.IncludeTests)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	var parsed []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
	}
	// The package clause of the first non-external-test file names the
	// package; files of the external test package (package foo_test)
	// are dropped — they exercise the public API and cannot perturb the
	// invariants the analyzers guard.
	pkgName := ""
	for _, f := range parsed {
		if !strings.HasSuffix(f.Name.Name, "_test") {
			pkgName = f.Name.Name
			break
		}
	}
	if pkgName == "" {
		pkgName = parsed[0].Name.Name
	}
	var files []*ast.File
	for _, f := range parsed {
		if f.Name.Name == pkgName {
			files = append(files, f)
		}
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Name:  pkgName,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.Root, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal import
// paths recurse into the Loader, anything else goes to the standard
// library's source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}
