package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ErrDrop flags statements that silently discard an error result: a
// call used as a statement whose results include an error, and blank
// assignments (`_ = ...`, `v, _ := f()`) at error-typed positions. A
// drop is accepted when a `// besteffort: <reason>` comment stands
// alone on the line directly above the statement — the keyword makes
// every accepted drop greppable — or under a //noclint:ignore errdrop
// directive. An arbitrary comment above the statement does not count:
// prose that merely happens to precede a drop is not a justification.
//
// Calls that cannot fail by contract are excluded: fmt.Print/Printf/
// Println, fmt.Fprint* into a *bytes.Buffer, *strings.Builder,
// os.Stdout or os.Stderr, and any method on *bytes.Buffer or
// *strings.Builder (their error results are documented always-nil).
// `defer` and `go` statements are out of scope.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc: "flags call statements and blank assignments that discard an " +
		"error result without a besteffort: justification comment on the " +
		"line above",
	Run: runErrDrop,
}

var errorType = types.Universe.Lookup("error").Type()

func runErrDrop(p *Pass) {
	for _, f := range p.Files {
		justified := justifiedLines(p, f)
		exempt := func(pos token.Pos) bool {
			return justified[p.Fset.Position(pos).Line-1]
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				call, ok := st.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if len(errResultIndexes(p, call)) == 0 || excludedCall(p, call) || exempt(st.Pos()) {
					return true
				}
				p.Reportf(st.Pos(), "error result of %s is silently discarded; handle it, justify the drop with a besteffort: comment on the line above, or //noclint:ignore errdrop <reason>", calleeLabel(p, call))
			case *ast.AssignStmt:
				runErrDropAssign(p, st, exempt)
			}
			return true
		})
	}
}

func runErrDropAssign(p *Pass, st *ast.AssignStmt, exempt func(token.Pos) bool) {
	report := func(what string) {
		if exempt(st.Pos()) {
			return
		}
		p.Reportf(st.Pos(), "%s is assigned to _; handle it, justify the drop with a besteffort: comment on the line above, or //noclint:ignore errdrop <reason>", what)
	}
	if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
		// v, _ := f() — a single multi-result call.
		call, ok := st.Rhs[0].(*ast.CallExpr)
		if !ok || excludedCall(p, call) {
			return
		}
		for _, i := range errResultIndexes(p, call) {
			if i < len(st.Lhs) && isBlank(st.Lhs[i]) {
				report("error result of " + calleeLabel(p, call))
			}
		}
		return
	}
	if len(st.Lhs) != len(st.Rhs) {
		return
	}
	for i, lhs := range st.Lhs {
		if !isBlank(lhs) {
			continue
		}
		t := p.Info.TypeOf(st.Rhs[i])
		if t == nil || !types.Identical(t, errorType) {
			continue
		}
		if call, ok := st.Rhs[i].(*ast.CallExpr); ok {
			if excludedCall(p, call) {
				continue
			}
			report("error result of " + calleeLabel(p, call))
			continue
		}
		report("error value " + types.ExprString(st.Rhs[i]))
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// errResultIndexes returns the result positions of call that have type
// error.
func errResultIndexes(p *Pass, call *ast.CallExpr) []int {
	t := p.Info.TypeOf(call)
	if t == nil {
		return nil
	}
	if tup, ok := t.(*types.Tuple); ok {
		var idx []int
		for i := 0; i < tup.Len(); i++ {
			if types.Identical(tup.At(i).Type(), errorType) {
				idx = append(idx, i)
			}
		}
		return idx
	}
	if types.Identical(t, errorType) {
		return []int{0}
	}
	return nil
}

// calleeObj resolves the called function or method, if it is a plain
// identifier or selector.
func calleeObj(p *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func calleeLabel(p *Pass, call *ast.CallExpr) string {
	return types.ExprString(call.Fun)
}

// excludedCall reports whether call is on the cannot-fail allow list.
func excludedCall(p *Pass, call *ast.CallExpr) bool {
	fn := calleeObj(p, call)
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if recv := sig.Recv(); recv != nil {
		switch recv.Type().String() {
		case "*bytes.Buffer", "*strings.Builder":
			return true
		}
		return false
	}
	if fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return false
	}
	switch fn.Name() {
	case "Print", "Printf", "Println":
		return true
	}
	if strings.HasPrefix(fn.Name(), "Fprint") && len(call.Args) > 0 {
		return safeWriter(p, call.Args[0])
	}
	return false
}

// safeWriter reports whether the expression is a writer whose Write
// never returns an error in practice: an in-memory buffer/builder or
// the process's own stdout/stderr (where a write failure has no
// in-process recovery anyway).
func safeWriter(p *Pass, e ast.Expr) bool {
	switch p.Info.TypeOf(e).String() {
	case "*bytes.Buffer", "*strings.Builder":
		return true
	}
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := p.Info.Uses[sel.Sel].(*types.Var)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "os" {
		return false
	}
	return obj.Name() == "Stdout" || obj.Name() == "Stderr"
}

// justifiedLines records the lines ending a standalone comment that
// starts with the `besteffort:` keyword; a statement on the following
// line counts as justified. The keyword is required — any other
// comment does not exempt the drop — so `grep -rn besteffort:` audits
// every accepted drop in the tree. Trailing same-line comments
// deliberately do not count: the golden annotation syntax lives there,
// and a justification reads better on its own line anyway.
func justifiedLines(p *Pass, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		text := strings.TrimSpace(cg.Text())
		rest, ok := strings.CutPrefix(text, "besteffort:")
		if !ok || strings.TrimSpace(rest) == "" {
			continue
		}
		lines[p.Fset.Position(cg.End()).Line] = true
	}
	return lines
}
