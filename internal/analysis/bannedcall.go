package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// A bannedRule denies one callee (exact name or prefix when the rule
// name ends in "*") within a set of packages, identified by final
// import-path segment. A nil scope means every package.
type bannedRule struct {
	scope   map[string]bool
	name    string // "fmt.Sprint*" or "reflect.DeepEqual"
	message string
}

func pkgSet(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

// bannedRules seeds the deny-list with the two regressions the engine
// has already paid for once: fmt.Sprint*-built cache keys on the sweep
// hot path (replaced by the varint countsKey in PR 2 — a Sprint key is
// slower and, worse, not guaranteed injective) and reflect.DeepEqual on
// routing/partitioning hot paths (allocates, reflects, and hides the
// comparison semantics the equivalence tests pin down).
var bannedRules = []bannedRule{
	{
		scope: pkgSet("core", "partition"),
		name:  "fmt.Sprint*",
		message: "fmt.Sprint* on the synthesis hot path: string-formatted cache keys are slow and non-injective " +
			"(the PR 2 varint countsKey regression); build a typed or varint key instead",
	},
	{
		scope: pkgSet("core", "route", "graph", "partition", "pareto", "topology"),
		name:  "reflect.DeepEqual",
		message: "reflect.DeepEqual on a hot path allocates and reflects per comparison; " +
			"write a typed equality the equivalence tests can pin down",
	},
}

// BannedCall enforces a per-package deny-list of callees. It guards
// hot-path regressions that vet cannot see: the rules carry the project
// history of why each callee is banned where it is.
var BannedCall = &Analyzer{
	Name: "bannedcall",
	Doc: "flags calls on the per-package deny-list (fmt.Sprint* as cache " +
		"keys in core/partition, reflect.DeepEqual on hot paths)",
	Run: runBannedCall,
}

func runBannedCall(p *Pass) {
	var rules []bannedRule
	for _, r := range bannedRules {
		if r.scope == nil || r.scope[p.PkgBase()] {
			rules = append(rules, r)
		}
	}
	if len(rules) == 0 {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeObj(p, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // rules name package-level functions only
			}
			full := fn.Pkg().Path() + "." + fn.Name()
			for _, r := range rules {
				if prefix, wild := strings.CutSuffix(r.name, "*"); wild {
					if !strings.HasPrefix(full, prefix) {
						continue
					}
				} else if full != r.name {
					continue
				}
				p.Reportf(call.Pos(), "call to %s is banned in package %s: %s", full, p.PkgBase(), r.message)
			}
			return true
		})
	}
}
