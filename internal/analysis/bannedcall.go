package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// A bannedRule denies one callee (exact name or prefix when the rule
// name ends in "*") in every function on the engine hot path.
type bannedRule struct {
	name    string // "fmt.Sprint*" or "reflect.DeepEqual"
	message string
}

// bannedRules seeds the deny-list with the two regressions the engine
// has already paid for once: fmt.Sprint*-built cache keys on the sweep
// hot path (replaced by the varint countsKey in PR 2 — a Sprint key is
// slower and, worse, not guaranteed injective) and reflect.DeepEqual on
// routing/partitioning hot paths (allocates, reflects, and hides the
// comparison semantics the equivalence tests pin down). Before the
// call-graph layer each rule carried its own package allowlist; scope
// is now the reachable set the detflow layer derives, so the rules
// apply wherever the engine can actually execute them.
var bannedRules = []bannedRule{
	{
		name: "fmt.Sprint*",
		message: "fmt.Sprint* on the synthesis hot path: string-formatted cache keys are slow and non-injective " +
			"(the PR 2 varint countsKey regression); build a typed or varint key instead",
	},
	{
		name: "reflect.DeepEqual",
		message: "reflect.DeepEqual on a hot path allocates and reflects per comparison; " +
			"write a typed equality the equivalence tests can pin down",
	},
}

// BannedCall enforces a deny-list of callees on the engine hot path. It
// guards hot-path regressions that vet cannot see: the rules carry the
// project history of why each callee is banned.
var BannedCall = &Analyzer{
	Name: "bannedcall",
	Doc: "flags deny-listed calls (fmt.Sprint* as cache keys, " +
		"reflect.DeepEqual) in functions reachable from the engine roots",
	Run: runBannedCall,
}

func runBannedCall(p *Pass) {
	check := func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeObj(p, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // rules name package-level functions only
			}
			full := fn.Pkg().Path() + "." + fn.Name()
			for _, r := range bannedRules {
				if prefix, wild := strings.CutSuffix(r.name, "*"); wild {
					if !strings.HasPrefix(full, prefix) {
						continue
					}
				} else if full != r.name {
					continue
				}
				p.Reportf(call.Pos(), "call to %s is banned on the engine hot path: %s", full, r.message)
			}
			return true
		})
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				if decl.Body != nil && p.FuncDeclInScope(decl) {
					check(decl.Body)
				}
			case *ast.GenDecl:
				if p.Scope.PkgInScope(p.PkgPath) {
					check(decl)
				}
			}
		}
	}
}
