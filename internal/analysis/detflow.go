package analysis

import (
	"go/ast"
	"go/types"
	"path"

	"nocvi/internal/analysis/callgraph"
)

// EngineRoots names the entry points of the synthesis engine — the
// functions whose transitive callees constitute the hot path that the
// determinism analyzers (wallclock, maprange, bannedcall) must cover.
// Roots are matched as "<final import-path segment>.<function name>"
// on package-level functions, the same identity rule every scoped
// table in this package uses, so fixture modules can stand in for the
// real tree.
//
// Before the call-graph layer, scope was a pair of hand-maintained
// package allowlists (synthesisPathPkgs, deterministicPathPkgs); a new
// helper package on the hot path was silently unchecked until someone
// edited the lists. Deriving the scope from these roots makes
// "on the hot path" a computed property: add a package, call it from
// the engine, and the analyzers follow automatically.
var EngineRoots = []string{
	"core.Synthesize",
	"core.SynthesizeSweep",
	"fault.RunCampaign",
	"cache.Synthesize",
}

// DetFlow is the scope-derivation layer's registry entry. Its work —
// building the module call graph, computing reachability from
// EngineRoots, and re-scoping wallclock/maprange/bannedcall to the
// reachable function set — happens once per run in DeriveScope, not
// per package, so Run here is a no-op; the entry exists so -list
// documents the layer and directive validation accepts the name.
var DetFlow = &Analyzer{
	Name: "detflow",
	Doc: "derives the hot-path scope of wallclock/maprange/bannedcall " +
		"from call-graph reachability over the engine roots " +
		"(core.Synthesize, core.SynthesizeSweep, fault.RunCampaign, " +
		"cache.Synthesize); noclint -why prints a root→site call path",
	Run: func(*Pass) {},
}

// A Scope answers "is this function on the engine hot path?" for the
// scoped analyzers. The zero value is unusable; use DeriveScope or
// FullScope.
type Scope struct {
	all   bool
	graph *callgraph.Graph
	reach *callgraph.Reach
	// pkgs holds the import paths with at least one reachable
	// function; package-level declarations of such packages are in
	// scope (their initializers run as soon as the package is linked
	// into the engine).
	pkgs map[string]bool
	// missing lists EngineRoots entries that matched no loaded
	// function — a renamed root would otherwise silently empty the
	// scope.
	missing []string
}

// FullScope puts every function in scope. The golden fixture tests use
// it to exercise analyzer logic independently of reachability; real
// runs derive the scope instead.
var FullScope = &Scope{all: true}

// DeriveScope builds the call graph over the loaded packages and
// computes the function set reachable from EngineRoots. Roots absent
// from the load are recorded (see Missing); if none match, the scope
// is empty and the scoped analyzers report nothing.
func DeriveScope(pkgs []*Package) *Scope {
	units := make([]*callgraph.Unit, 0, len(pkgs))
	for _, p := range pkgs {
		units = append(units, &callgraph.Unit{
			Path:  p.Path,
			Fset:  p.Fset,
			Files: p.Files,
			Info:  p.Info,
		})
	}
	g := callgraph.Build(units)
	var roots []*callgraph.Node
	var missing []string
	for _, want := range EngineRoots {
		found := false
		for _, n := range g.Nodes {
			if n.Obj == nil || n.Decl == nil || n.Decl.Recv != nil {
				continue
			}
			if path.Base(n.PkgPath)+"."+n.Obj.Name() == want {
				roots = append(roots, n)
				found = true
			}
		}
		if !found {
			missing = append(missing, want)
		}
	}
	s := &Scope{
		graph:   g,
		reach:   g.ReachableFrom(roots),
		pkgs:    map[string]bool{},
		missing: missing,
	}
	for _, n := range s.reach.Nodes() {
		s.pkgs[n.PkgPath] = true
	}
	return s
}

// Missing lists the EngineRoots that matched no loaded function; for a
// whole-module load a non-empty result means a root was renamed or
// removed and the derived scope is silently narrower than intended.
func (s *Scope) Missing() []string {
	if s == nil {
		return nil
	}
	return s.missing
}

// Empty reports whether no root matched at all, leaving the scoped
// analyzers without any functions to check.
func (s *Scope) Empty() bool {
	return s != nil && !s.all && len(s.reach.Roots) == 0
}

// FuncInScope reports whether the declared function is on the hot
// path. A nil scope and FullScope cover everything.
func (s *Scope) FuncInScope(fn *types.Func) bool {
	if s == nil || s.all {
		return true
	}
	return fn != nil && s.reach.Has(fn)
}

// PkgInScope reports whether the package has any reachable function,
// which puts its package-level initializers in scope.
func (s *Scope) PkgInScope(pkgPath string) bool {
	if s == nil || s.all {
		return true
	}
	return s.pkgs[pkgPath]
}

// Graph exposes the underlying call graph (nil under FullScope).
func (s *Scope) Graph() *callgraph.Graph {
	if s == nil {
		return nil
	}
	return s.graph
}

// ReachableNodes returns the reachable node set sorted by ID, empty
// under FullScope (which has no graph to enumerate).
func (s *Scope) ReachableNodes() []*callgraph.Node {
	if s == nil || s.all {
		return nil
	}
	return s.reach.Nodes()
}

// Why explains how the function enclosing filename:line is reached
// from an engine root: the breadth-first discovery chain rendered by
// callgraph.FormatPath. The second result is false when the position
// is not inside any known function, the third when the function exists
// but is unreachable.
func (s *Scope) Why(filename string, line int, rel func(string) string) (string, bool, bool) {
	if s == nil || s.all || s.graph == nil {
		return "", false, false
	}
	n := s.graph.EnclosingNode(filename, line)
	if n == nil {
		return "", false, false
	}
	chain := s.reach.Path(n)
	if chain == nil {
		return n.Label, true, false
	}
	return callgraph.FormatPath(chain, rel), true, true
}

// FuncDeclInScope resolves a declaration to its function object and
// asks the pass's scope. Declarations that fail to resolve stay in
// scope: a strict gate must not lose findings to a type-checker gap.
func (p *Pass) FuncDeclInScope(fd *ast.FuncDecl) bool {
	if p.Scope == nil || p.Scope.all {
		return true
	}
	fn, ok := p.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return true
	}
	if fn.Name() == "init" && fd.Recv == nil {
		// init functions run with the package; scope them like
		// package-level declarations.
		return p.Scope.PkgInScope(p.PkgPath)
	}
	return p.Scope.FuncInScope(fn)
}

// FileInScope reports whether any function declared in the file is in
// scope — the granularity at which import-level findings (wallclock's
// math/rand rule) apply.
func (p *Pass) FileInScope(f *ast.File) bool {
	if p.Scope == nil || p.Scope.all {
		return true
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && p.FuncDeclInScope(fd) {
			return true
		}
	}
	// A file with no function declarations (pure tables) is in scope
	// with its package.
	hasFunc := false
	for _, d := range f.Decls {
		if _, ok := d.(*ast.FuncDecl); ok {
			hasFunc = true
			break
		}
	}
	return !hasFunc && p.Scope.PkgInScope(p.PkgPath)
}
