package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// SortStability flags sort.Slice / sort.SliceStable calls over struct
// element types whose less-function neither compares every top-level
// field of the element nor ends in a total-order tie-break on an exact
// (integer or string) key. This is the argmin-regression class: a less
// function that orders by a partial key leaves equal-key elements in
// implementation-defined order, and any consumer that takes the first
// element of the sorted slice — the engine's Pareto argmins, the cache
// eviction scan, report formatting — then depends on sort.Slice's
// unstable permutation, which is free to differ between runs, Go
// versions, and worker counts.
//
// A less-function passes if either
//
//   - its comparisons reference every top-level field of the element
//     struct (a full lexicographic order cannot leave ties), or
//   - its final returned comparison is < or > on operands of integer or
//     string kind (an exact total-order tie-break; floats do not
//     qualify — NaN breaks totality).
//
// Less-functions that are not function literals are skipped: the
// analyzer cannot see their body, and naming a comparator is already a
// deliberate act.
var SortStability = &Analyzer{
	Name: "sortstability",
	Doc: "flags sort.Slice/sort.SliceStable less-functions over struct elements " +
		"that neither compare every field nor end in an integer/string " +
		"tie-break; partial orders leave equal elements in unstable order " +
		"and downstream argmins then depend on the sort's permutation",
	Run: runSortStability,
}

func runSortStability(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 2 {
				return true
			}
			name := sortSliceCallee(p, call)
			if name == "" {
				return true
			}
			lit, ok := call.Args[1].(*ast.FuncLit)
			if !ok {
				return true // named comparator: body not visible here
			}
			elem := sliceElemStruct(p, call.Args[0])
			if elem == nil {
				return true // non-struct elements order by value; nothing to miss
			}
			if hasTotalOrderTieBreak(p, lit) {
				return true
			}
			missing := missingFields(p, lit, elem)
			if len(missing) == 0 {
				return true
			}
			p.Reportf(call.Pos(),
				"%s less-function does not compare field(s) %s of the element and has no final integer/string tie-break; equal elements stay in unstable order (argmin-regression risk) — compare every field or add a total-order tie-break",
				name, strings.Join(missing, ", "))
			return true
		})
	}
}

// sortSliceCallee returns "sort.Slice"/"sort.SliceStable" when the call
// is one of the two, "" otherwise.
func sortSliceCallee(p *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sort" {
		return ""
	}
	if fn.Name() != "Slice" && fn.Name() != "SliceStable" {
		return ""
	}
	return "sort." + fn.Name()
}

// sliceElemStruct resolves the sorted argument to a slice-of-struct
// element type, nil for anything else.
func sliceElemStruct(p *Pass, arg ast.Expr) *types.Struct {
	tv, ok := p.Info.Types[arg]
	if !ok || tv.Type == nil {
		return nil
	}
	sl, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return nil
	}
	st, ok := sl.Elem().Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	return st
}

// missingFields returns the element's top-level fields never selected
// anywhere in the less-function body, sorted by name. Selections
// through aliases (a, b := s[i], s[j]; a.f) count: the receiver's type,
// not its syntax, is what is matched.
func missingFields(p *Pass, lit *ast.FuncLit, elem *types.Struct) []string {
	referenced := map[string]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := p.Info.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return true
		}
		if recv, ok := s.Recv().Underlying().(*types.Struct); ok && recv == elem {
			// Only the first hop of a selection chain is a field of the
			// element itself; s.Index()[0] names it.
			referenced[elem.Field(s.Index()[0]).Name()] = true
		}
		return true
	})
	var missing []string
	for i := 0; i < elem.NumFields(); i++ {
		if name := elem.Field(i).Name(); !referenced[name] {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	return missing
}

// hasTotalOrderTieBreak reports whether the function literal's final
// statement returns an ordering whose last comparison is < or > over
// integer- or string-kind operands. For || / && chains the rightmost
// operand is the one evaluated when every earlier key tied, so that is
// the comparison that must be total.
func hasTotalOrderTieBreak(p *Pass, lit *ast.FuncLit) bool {
	stmts := lit.Body.List
	if len(stmts) == 0 {
		return false
	}
	ret, ok := stmts[len(stmts)-1].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return false
	}
	expr := ret.Results[0]
	for {
		be, ok := unparen(expr).(*ast.BinaryExpr)
		if !ok {
			return false
		}
		if be.Op == token.LOR || be.Op == token.LAND {
			expr = be.Y
			continue
		}
		if be.Op != token.LSS && be.Op != token.GTR {
			return false
		}
		return isExactOrdered(p.Info.Types[be.X].Type) || isExactOrdered(p.Info.Types[be.Y].Type)
	}
}

func unparen(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}

// isExactOrdered accepts the kinds whose < is a total order with exact
// comparison: integers and strings. Floats are excluded (NaN), as is
// anything unordered.
func isExactOrdered(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsInteger|types.IsString) != 0
}
