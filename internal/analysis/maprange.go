package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// disableSortedKeysExemption is a test hook: internal/analysis tests
// flip it to prove the sorted-key-collection exemption is load-bearing
// (with it disabled, maprange must flag internal/soc/usecase.go).
var disableSortedKeysExemption bool

// MapRange flags `range` over a map in functions on the engine hot
// path — the set reachable from EngineRoots, derived by the detflow
// call-graph layer. Go randomizes map iteration order, so any such
// loop whose effect depends on visit order silently breaks
// reproducible sweeps. Two shapes are exempt because they provably do
// not depend on order:
//
//   - key collection: every statement appends the iteration variables
//     to slices that are sorted later in the same function (the idiom
//     at internal/soc/usecase.go:88);
//   - commuting writes: every statement writes (or deletes) an entry of
//     another map indexed by the iteration key, so each iteration
//     touches a distinct entry.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc: "flags unordered map iteration in functions reachable from the " +
		"engine roots unless the body only collects keys that are later " +
		"sorted or only performs per-key commuting map writes",
	Run: runMapRange,
}

func runMapRange(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !p.FuncDeclInScope(fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := p.Info.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if rs.Key == nil && rs.Value == nil {
					return true // `for range m` cannot observe order
				}
				if !disableSortedKeysExemption && sortedKeyCollection(p, rs, fd.Body) {
					return true
				}
				if commutingMapWrites(p, rs) {
					return true
				}
				p.Reportf(rs.For, "range over map %s has nondeterministic iteration order on the engine hot path; collect the keys into a slice and sort it, or iterate a sorted index", types.ExprString(rs.X))
				return true
			})
		}
	}
}

// sortedKeyCollection reports whether the range body only appends to
// slice variables declared outside the loop, every one of which is
// later (after the loop, in the same function body) passed to a sort or
// slices call. That pairing makes the map's random visit order
// unobservable: the collected contents are order-canonicalized before
// anything reads them.
func sortedKeyCollection(p *Pass, rs *ast.RangeStmt, enclosing *ast.BlockStmt) bool {
	targets := map[types.Object]bool{}
	for _, st := range rs.Body.List {
		as, ok := st.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || len(call.Args) < 2 {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" {
			return false
		}
		if b, ok := p.Info.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
			return false
		}
		first, ok := call.Args[0].(*ast.Ident)
		if !ok || first.Name != lhs.Name {
			return false
		}
		obj := p.Info.Uses[lhs]
		if obj == nil {
			return false
		}
		targets[obj] = true
	}
	if len(targets) == 0 {
		return false
	}
	sorted := map[types.Object]bool{}
	ast.Inspect(enclosing, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgIdent, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := p.Info.Uses[pkgIdent].(*types.PkgName)
		if !ok {
			return true
		}
		if path := pn.Imported().Path(); path != "sort" && path != "slices" {
			return true
		}
		for _, a := range call.Args {
			id, ok := a.(*ast.Ident)
			if !ok {
				continue
			}
			if obj := p.Info.Uses[id]; obj != nil && targets[obj] {
				sorted[obj] = true
			}
		}
		return true
	})
	for obj := range targets {
		if !sorted[obj] {
			return false
		}
	}
	return true
}

// commutingMapWrites reports whether every statement of the range body
// assigns through (or deletes) a map index whose index expression is
// exactly the iteration key. Map keys are unique, so each iteration
// touches a distinct entry of the destination map and the loop's effect
// is independent of visit order.
func commutingMapWrites(p *Pass, rs *ast.RangeStmt) bool {
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return false
	}
	keyObj := p.Info.Defs[key]
	if keyObj == nil {
		keyObj = p.Info.Uses[key]
	}
	if keyObj == nil {
		return false
	}
	isKey := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		if !ok {
			return false
		}
		obj := p.Info.Uses[id]
		return obj != nil && obj == keyObj
	}
	mapIndexedByKey := func(e ast.Expr) bool {
		ix, ok := e.(*ast.IndexExpr)
		if !ok {
			return false
		}
		t := p.Info.TypeOf(ix.X)
		if t == nil {
			return false
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return false
		}
		return isKey(ix.Index)
	}
	if len(rs.Body.List) == 0 {
		return false
	}
	for _, st := range rs.Body.List {
		switch st := st.(type) {
		case *ast.AssignStmt:
			if st.Tok != token.ASSIGN {
				return false
			}
			for _, lhs := range st.Lhs {
				if !mapIndexedByKey(lhs) {
					return false
				}
			}
		case *ast.ExprStmt:
			call, ok := st.X.(*ast.CallExpr)
			if !ok || len(call.Args) != 2 {
				return false
			}
			fn, ok := call.Fun.(*ast.Ident)
			if !ok {
				return false
			}
			if b, ok := p.Info.Uses[fn].(*types.Builtin); !ok || b.Name() != "delete" {
				return false
			}
			if !isKey(call.Args[1]) {
				return false
			}
		default:
			return false
		}
	}
	return true
}
