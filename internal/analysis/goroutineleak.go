package analysis

import (
	"go/ast"
	"go/types"
)

// GoroutineLeak flags `go` statements that spawn a goroutine with no
// reachable completion signal — no channel send, no close, no
// sync.WaitGroup.Done and no sync.Cond Signal/Broadcast anywhere in
// the spawned function or the same-package functions it calls. The
// synthesis sweep's drain guarantee (a canceled or panicking sweep
// leaves no worker behind) rests on every spawned goroutine signalling
// a channel or WaitGroup the spawner waits on; a goroutine with no
// such signal cannot be waited for at all, so a cancellation or panic
// on any path leaks it until the race suite times out.
//
// The check is intraprocedural per spawn site with same-package call
// resolution: `go f()` is analyzed when f's body is declared in the
// package under analysis, and skipped (not flagged) when the body is
// out of reach — a function value parameter, a method on an interface,
// or another package's function. A signal anywhere in the reachable
// bodies counts, including inside nested function literals and
// deferred calls; the analyzer proves "cannot signal", not "signals on
// every path" — the latter is the race detector's job.
var GoroutineLeak = &Analyzer{
	Name: "goroutineleak",
	Doc: "flags go statements whose goroutine has no completion signal " +
		"(channel send, close, WaitGroup.Done or Cond Signal/Broadcast) " +
		"the spawner could wait on, so cancellation or panic leaks it",
	Run: runGoroutineLeak,
}

func runGoroutineLeak(p *Pass) {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body, known := spawnedBody(p, decls, gs.Call)
			if known && !hasCompletionSignal(p, decls, body, map[*types.Func]bool{}) {
				p.Reportf(gs.Pos(), "goroutine has no completion signal (channel send, close, or WaitGroup.Done) the spawner could wait on; cancellation or a panic in the spawner leaks it")
			}
			return true
		})
	}
}

// spawnedBody resolves the body the go statement will run: a function
// literal's own body, or the declaration body of a same-package
// function. Unresolvable spawn targets return known=false and are out
// of scope by design — flagging every opaque function value would
// drown real findings in false positives.
func spawnedBody(p *Pass, decls map[*types.Func]*ast.FuncDecl, call *ast.CallExpr) (*ast.BlockStmt, bool) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return lit.Body, true
	}
	if fn := calleeObj(p, call); fn != nil {
		if fd, ok := decls[fn]; ok {
			return fd.Body, true
		}
	}
	return nil, false
}

// hasCompletionSignal walks body and, transitively, the bodies of
// same-package functions it calls, looking for anything a spawner
// could block on: a channel send (plain or in a select case), the
// close builtin, sync.WaitGroup.Done, or sync.Cond Signal/Broadcast.
// The visiting set breaks call cycles.
func hasCompletionSignal(p *Pass, decls map[*types.Func]*ast.FuncDecl, body ast.Node, visiting map[*types.Func]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.CallExpr:
			if isCloseBuiltin(p, n) || isCompletionMethod(p, n) {
				found = true
				return false
			}
			if fn := calleeObj(p, n); fn != nil && !visiting[fn] {
				if fd, ok := decls[fn]; ok {
					visiting[fn] = true
					if hasCompletionSignal(p, decls, fd.Body, visiting) {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// isCloseBuiltin reports whether call is the predeclared close(ch).
func isCloseBuiltin(p *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "close" {
		return false
	}
	_, ok = p.Info.Uses[id].(*types.Builtin)
	return ok
}

// isCompletionMethod reports whether call is one of the sync-package
// methods a spawner blocks on from the other side: WaitGroup.Done
// (paired with Wait) or Cond.Signal/Broadcast (paired with Cond.Wait).
func isCompletionMethod(p *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	switch sig.Recv().Type().String() {
	case "*sync.WaitGroup":
		return fn.Name() == "Done"
	case "*sync.Cond":
		return fn.Name() == "Signal" || fn.Name() == "Broadcast"
	}
	return false
}
