package analysis

import (
	"crypto/sha256"
	"fmt"
	"go/constant"
	"go/types"
	"path"
	"strconv"
	"strings"
)

// A Surface is the digest of the engine's hot-path source: every
// function reachable from EngineRoots, printed comment-free through
// go/printer and hashed in sorted node-ID order. Because the print is
// format-normalized, the digest tracks code semantics-carrying text —
// not comments, not whitespace — and because the node set is the
// derived scope, it grows and shrinks with the call graph
// automatically. The checked-in artifacts/engine-surface.sum pairs the
// digest with the cache.EngineVersion it was recorded under, turning
// the "bump EngineVersion when synthesis semantics change" convention
// into a mechanical gate: change the surface without touching the
// version and the ci check refuses.
type Surface struct {
	// EngineVersion is cache.EngineVersion as seen in the analyzed
	// module (read through the type-checker so fixture modules carry
	// their own).
	EngineVersion int
	// Digest is "sha256:<hex>" over the sorted reachable node sources.
	Digest string
	// Functions counts the reachable nodes, a human-scale hint of how
	// large the surface is.
	Functions int
}

// ComputeSurface derives the hot-path scope over the loaded packages
// and digests it. The load must cover the module root (the engine
// roots and the cache package must be present).
func ComputeSurface(pkgs []*Package) (*Surface, error) {
	scope := DeriveScope(pkgs)
	if scope.Empty() {
		return nil, fmt.Errorf("no engine root matched the loaded packages; load the module root (./...)")
	}
	version, err := engineVersionOf(pkgs)
	if err != nil {
		return nil, err
	}
	h := sha256.New()
	nodes := scope.ReachableNodes()
	for _, n := range nodes {
		// besteffort: hash.Hash writes are documented never to fail.
		fmt.Fprintf(h, "-- %s --\n", n.ID)
		if err := n.PrintSource(h); err != nil {
			return nil, fmt.Errorf("printing %s: %w", n.ID, err)
		}
		// besteffort: hash.Hash writes are documented never to fail.
		fmt.Fprintf(h, "\n")
	}
	return &Surface{
		EngineVersion: version,
		Digest:        fmt.Sprintf("sha256:%x", h.Sum(nil)),
		Functions:     len(nodes),
	}, nil
}

// engineVersionOf reads the EngineVersion constant from the analyzed
// module's cache package (matched, like every scoped table, on the
// final import-path segment).
func engineVersionOf(pkgs []*Package) (int, error) {
	for _, p := range pkgs {
		if path.Base(p.Path) != "cache" || p.Types == nil {
			continue
		}
		obj := p.Types.Scope().Lookup("EngineVersion")
		c, ok := obj.(*types.Const)
		if !ok {
			continue
		}
		v, ok := constant.Int64Val(constant.ToInt(c.Val()))
		if !ok {
			return 0, fmt.Errorf("%s.EngineVersion is not an integer constant", p.Path)
		}
		return int(v), nil
	}
	return 0, fmt.Errorf("no cache package with an EngineVersion constant in the load; the surface gate needs it")
}

// Format renders the sum-file form:
//
//	engine-version: 1
//	functions: 212
//	surface: sha256:abcd...
func (s *Surface) Format() string {
	return fmt.Sprintf("engine-version: %d\nfunctions: %d\nsurface: %s\n", s.EngineVersion, s.Functions, s.Digest)
}

// ParseSurfaceFile parses the sum-file form back; unknown keys are
// rejected so a corrupted file fails loudly.
func ParseSurfaceFile(data []byte) (*Surface, error) {
	s := &Surface{}
	seen := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		key, val, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("malformed surface sum line %q", line)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		seen[key] = true
		switch key {
		case "engine-version":
			v, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("bad engine-version %q", val)
			}
			s.EngineVersion = v
		case "functions":
			v, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("bad functions count %q", val)
			}
			s.Functions = v
		case "surface":
			s.Digest = val
		default:
			return nil, fmt.Errorf("unknown surface sum key %q", key)
		}
	}
	for _, k := range []string{"engine-version", "surface"} {
		if !seen[k] {
			return nil, fmt.Errorf("surface sum missing %q", k)
		}
	}
	return s, nil
}

// CheckSurface compares the freshly computed surface against the
// recorded one. The three failure shapes get distinct messages because
// they demand different actions:
//
//   - surface changed, version unchanged: the gate's reason to exist —
//     hot-path semantics moved and stale cached responses would be
//     served under the old version; bump cache.EngineVersion.
//   - surface and version both changed: the bump happened; re-record
//     the sum file.
//   - version changed alone: a bump without a semantic change (or a
//     stale file); re-record.
func CheckSurface(current, recorded *Surface) error {
	digestChanged := current.Digest != recorded.Digest
	versionChanged := current.EngineVersion != recorded.EngineVersion
	switch {
	case digestChanged && !versionChanged:
		return fmt.Errorf("engine surface changed (%d hot-path functions, digest %s != recorded %s) without a cache.EngineVersion bump: cached design points recorded under version %d would go stale silently; bump cache.EngineVersion and run noclint -surface update",
			current.Functions, current.Digest, recorded.Digest, recorded.EngineVersion)
	case digestChanged && versionChanged:
		return fmt.Errorf("engine surface and cache.EngineVersion both changed (now version %d); run noclint -surface update to re-record artifacts/engine-surface.sum",
			current.EngineVersion)
	case versionChanged:
		return fmt.Errorf("cache.EngineVersion changed to %d with an unchanged surface; run noclint -surface update to re-record (or drop the gratuitous bump)",
			current.EngineVersion)
	}
	return nil
}
