package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between floating-point operands anywhere in
// the tree. The engine's constraint checks (bandwidth headroom, latency
// bounds, utilization) are tolerance-based for a reason: exact float
// comparison flips on the last ulp of an accumulation, and the paper's
// argmin tie-break then selects a different design point on different
// hardware. Comparisons where both operands are compile-time constants
// are exempt (the result is fixed at build time). Intentional exact
// comparisons — zero sentinels, sort tie-breaks — carry a
// //noclint:ignore floateq directive with the reason spelled out.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc: "flags ==/!= between floating-point operands; constraint checks " +
		"should use the internal/num tolerance helpers (num.AlmostEq, " +
		"num.Within, num.Leq) or an explicit epsilon",
	Run: runFloatEq,
}

func runFloatEq(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			x, y := p.Info.Types[be.X], p.Info.Types[be.Y]
			if x.Value != nil && y.Value != nil {
				return true // constant-folded at compile time
			}
			if !isFloat(x.Type) && !isFloat(y.Type) {
				return true
			}
			p.Reportf(be.OpPos, "%s between float operands is brittle under rounding; use the internal/num tolerance helpers (num.AlmostEq/num.Within/num.Leq) or an explicit epsilon", be.Op)
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
