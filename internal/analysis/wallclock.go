package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// wallClockFuncs are the package time functions that read the wall
// clock. time.Duration arithmetic and constants stay allowed.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// WallClock flags wall-clock reads (time.Now, time.Since, time.Until)
// and any import of math/rand or math/rand/v2 in code on the engine
// hot path — the function set reachable from EngineRoots, derived by
// the detflow call-graph layer. A wall-clock read or an unseeded RNG
// anywhere between spec and synthesized design point makes two runs of
// the same sweep diverge, which breaks the serial-vs-parallel identity
// tests and every frozen-router equivalence check. CLIs, benchmarks
// and the profiling harness never appear in the reachable set, so they
// may time things freely; randomness on the hot path must come from an
// explicitly seeded generator owned by the caller (the specgen package
// derives its streams from a spec-supplied seed).
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc: "flags time.Now/Since/Until and math/rand imports in functions " +
		"reachable from the engine roots, which would break reproducible " +
		"sweeps and the serial-vs-parallel identity tests",
	Run: runWallClock,
}

func runWallClock(p *Pass) {
	check := func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if fn.Pkg().Path() == "time" && wallClockFuncs[fn.Name()] {
				p.Reportf(sel.Pos(), "time.%s on the engine hot path reads the wall clock; results must depend only on the spec and options for sweeps to be reproducible", fn.Name())
			}
			return true
		})
	}
	for _, f := range p.Files {
		if p.FileInScope(f) {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if path == "math/rand" || path == "math/rand/v2" {
					p.Reportf(imp.Pos(), "import of %s in a hot-path file: process-global randomness makes sweeps unrepeatable; thread an explicitly seeded generator through the API instead", path)
				}
			}
		}
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				if decl.Body != nil && p.FuncDeclInScope(decl) {
					check(decl.Body)
				}
			case *ast.GenDecl:
				// Package-level initializers run with the package; in
				// scope as soon as any function of the package is.
				if p.Scope.PkgInScope(p.PkgPath) {
					check(decl)
				}
			}
		}
	}
}
