package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// synthesisPathPkgs names the packages (by final import-path segment)
// that execute between spec and synthesized design point. A wall-clock
// read or an unseeded RNG in any of them makes two runs of the same
// sweep diverge, which breaks the serial-vs-parallel identity tests and
// every frozen-router equivalence check. CLIs, benchmarks and the
// profiling harness (cmd/*, examples/*, internal/prof, internal/bench,
// internal/experiments) may time things; the synthesis path may not.
var synthesisPathPkgs = map[string]bool{
	"core":      true,
	"route":     true,
	"partition": true,
	"topology":  true,
	"graph":     true,
	"pareto":    true,
	"soc":       true,
	"vcg":       true,
	"wormhole":  true,
	"deadlock":  true,
	"skeleton":  true,
	"verify":    true,
	"mesh":      true,
	"floorplan": true,
	"viplace":   true,
	"model":     true,
	"power":     true,
	"specgen":   true,
	"sim":       true,
	"fault":     true,
	"netlist":   true,
	"export":    true,
	"specio":    true,
}

// wallClockFuncs are the package time functions that read the wall
// clock. time.Duration arithmetic and constants stay allowed.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// WallClock flags wall-clock reads (time.Now, time.Since, time.Until)
// and any import of math/rand or math/rand/v2 inside synthesis-path
// packages. Randomness in the sweep must come from an explicitly seeded
// generator owned by the caller (the specgen package derives its
// streams from a spec-supplied seed); the global math/rand state and
// the wall clock are process-wide and unrepeatable.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc: "flags time.Now/Since/Until and math/rand imports in " +
		"synthesis-path packages, which would break reproducible sweeps " +
		"and the serial-vs-parallel identity tests",
	Run: runWallClock,
}

func runWallClock(p *Pass) {
	if !synthesisPathPkgs[p.PkgBase()] {
		return
	}
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				p.Reportf(imp.Pos(), "import of %s in a synthesis-path package: process-global randomness makes sweeps unrepeatable; thread an explicitly seeded generator through the API instead", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if fn.Pkg().Path() == "time" && wallClockFuncs[fn.Name()] {
				p.Reportf(sel.Pos(), "time.%s in a synthesis-path package reads the wall clock; results must depend only on the spec and options for sweeps to be reproducible", fn.Name())
			}
			return true
		})
	}
}
