package analysis

import (
	"go/ast"
	"go/types"
	"path"
)

// ScratchCopy flags by-value copies of the worker scratch types —
// graph.Scratch, partition.Scratch, floorplan.Scratch — and of any
// struct that embeds one of them as a non-pointer field (the sweep's
// buildContext, for example). The scratch structs are the per-worker
// arenas the parallel sweep's zero-allocation steady state rests on:
// they hold multi-kilobyte reusable buffers plus interior pointers
// back into themselves (the router is pinned to its scratch with
// SetScratch). A by-value copy silently duplicates the buffers,
// resurrects the allocation churn the arenas exist to remove, and —
// worse — leaves the copy's interior pointers aimed at the original,
// so two workers end up sharing "private" buffers and the
// bit-identical-across-worker-counts guarantee dies in a data race.
// This is the same class of bug vet's copylocks catches for sync
// types, applied to the tree's own scratch family.
//
// Flagged sites: function parameters, results and receivers declared
// with a scratch type (pass a pointer instead); assignments and
// short variable declarations whose right-hand side reads an existing
// scratch value (x := bc.scratch, y = *p); call arguments passing a
// scratch value; composite-literal elements seeding a field from an
// existing scratch value; and range clauses whose value variable
// copies a scratch element per iteration. Composite literals and call
// results on the right-hand side are exempt — `sc := graph.Scratch{}`
// is initialization, not duplication, which is exactly why the
// `*bc = buildContext{env: bc.env}` recovery reset in the sweep is
// clean.
var ScratchCopy = &Analyzer{
	Name: "scratchcopy",
	Doc: "flags by-value copies of the worker scratch arenas " +
		"(graph.Scratch, partition.Scratch, floorplan.Scratch and " +
		"structs embedding them); a copy duplicates pinned buffers and " +
		"aliases interior pointers across workers",
	Run: runScratchCopy,
}

// scratchOwnerPkgs lists the final import-path segments of the
// packages whose Scratch type is protected. Matching on the last
// segment (like the other scoped tables) lets golden fixtures stand in
// for the real packages.
var scratchOwnerPkgs = map[string]bool{
	"graph":     true,
	"partition": true,
	"floorplan": true,
}

func runScratchCopy(p *Pass) {
	memo := map[types.Type]bool{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkScratchSignature(p, memo, n.Recv, n.Type)
			case *ast.FuncLit:
				checkScratchSignature(p, memo, nil, n.Type)
			case *ast.AssignStmt:
				// A multi-value assignment (x, y := f()) has one call
				// on the right; calls are exempt, so pairwise walking
				// only the len-matched form loses nothing.
				if len(n.Lhs) == len(n.Rhs) {
					for i, rhs := range n.Rhs {
						// `_ = x` discards the value without a copy;
						// it is the standard mark-used idiom.
						if isBlankIdent(n.Lhs[i]) {
							continue
						}
						checkScratchRead(p, memo, rhs, "assignment copies")
					}
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					checkScratchRead(p, memo, v, "declaration copies")
				}
			case *ast.CallExpr:
				// Builtins (len, cap, ...) inspect their operand
				// without copying it.
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
					if _, ok := p.Info.Uses[id].(*types.Builtin); ok {
						return true
					}
				}
				for _, arg := range n.Args {
					checkScratchRead(p, memo, arg, "call passes")
				}
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						elt = kv.Value
					}
					checkScratchRead(p, memo, elt, "composite literal copies")
				}
			case *ast.RangeStmt:
				if n.Value != nil && !isBlankIdent(n.Value) {
					if t := p.Info.TypeOf(n.Value); t != nil && containsScratch(memo, t) {
						p.Reportf(n.Value.Pos(), "range clause copies %s per iteration; range by index or over pointers instead", scratchTypeName(t))
					}
				}
			}
			return true
		})
	}
}

// isBlankIdent reports whether e is the blank identifier.
func isBlankIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// checkScratchSignature reports scratch-typed receivers, parameters
// and results of a function type. Pointer forms are the fix and pass
// untouched.
func checkScratchSignature(p *Pass, memo map[types.Type]bool, recv *ast.FieldList, ft *ast.FuncType) {
	check := func(fl *ast.FieldList, kind string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := p.Info.TypeOf(field.Type)
			if t == nil || !containsScratch(memo, t) {
				continue
			}
			p.Reportf(field.Type.Pos(), "%s %s by value; use a pointer so workers keep one arena each", kind, scratchTypeName(t))
		}
	}
	check(recv, "receiver takes")
	check(ft.Params, "parameter takes")
	check(ft.Results, "result returns")
}

// checkScratchRead reports expr when it reads an existing
// scratch-typed value — an identifier, field selection, index
// expression or pointer dereference. Composite literals (fresh zero
// or keyed initialization) and call results are exempt: the former is
// how a scratch is born, and the latter is already flagged at the
// callee's result declaration when the callee is in scope.
func checkScratchRead(p *Pass, memo map[types.Type]bool, expr ast.Expr, verb string) {
	e := ast.Unparen(expr)
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr, *ast.TypeAssertExpr:
	default:
		return
	}
	t := p.Info.TypeOf(e)
	if t == nil || !containsScratch(memo, t) {
		return
	}
	// Selecting or naming a type (graph.Scratch{} walks its
	// SelectorExpr too) is not a value read.
	if tv, ok := p.Info.Types[e]; ok && !tv.IsValue() {
		return
	}
	p.Reportf(expr.Pos(), "%s %s by value; take a pointer to the worker's arena instead", verb, scratchTypeName(t))
}

// containsScratch reports whether t holds one of the protected
// scratch types by value: the scratch type itself, a struct with a
// scratch-containing non-pointer field, or an array of such. Pointers,
// slices, maps and channels break containment — copying those copies
// a reference, which is the sanctioned way to share an arena.
func containsScratch(memo map[types.Type]bool, t types.Type) bool {
	if v, ok := memo[t]; ok {
		return v
	}
	// Pre-seed false so a recursive type terminates; the final value
	// overwrites it.
	memo[t] = false
	v := false
	switch t := t.(type) {
	case *types.Named:
		v = isScratchNamed(t) || containsScratch(memo, t.Underlying())
	case *types.Alias:
		v = containsScratch(memo, types.Unalias(t))
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if containsScratch(memo, t.Field(i).Type()) {
				v = true
				break
			}
		}
	case *types.Array:
		v = containsScratch(memo, t.Elem())
	}
	memo[t] = v
	return v
}

// isScratchNamed reports whether t is a Scratch type declared in one
// of the owner packages, matched on the final import-path segment.
func isScratchNamed(t *types.Named) bool {
	obj := t.Obj()
	if obj == nil || obj.Name() != "Scratch" || obj.Pkg() == nil {
		return false
	}
	return scratchOwnerPkgs[path.Base(obj.Pkg().Path())]
}

// scratchTypeName names the outermost type for the diagnostic:
// "graph.Scratch" for the scratch itself, the struct's own name when
// the scratch is embedded.
func scratchTypeName(t types.Type) string {
	if named, ok := t.(*types.Named); ok && named.Obj() != nil && named.Obj().Pkg() != nil {
		return path.Base(named.Obj().Pkg().Path()) + "." + named.Obj().Name()
	}
	return t.String()
}
