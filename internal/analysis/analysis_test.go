package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches expected-diagnostic annotations in fixture comments:
//
//	// want <analyzer> "<substring>"
//
// An annotation applies to the line it sits on. Several annotations may
// share one line.
var wantRe = regexp.MustCompile(`want\s+([a-z]+)\s+"([^"]+)"`)

func loadFixture(t *testing.T, patterns ...string) []*Package {
	t.Helper()
	loader, err := NewLoader(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.LoadPatterns(patterns...)
	if err != nil {
		t.Fatalf("LoadPatterns(%v): %v", patterns, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("LoadPatterns(%v) matched no packages", patterns)
	}
	return pkgs
}

// runGolden executes the analyzers over fixture packages and checks the
// produced diagnostics against the want annotations, in both
// directions: every diagnostic must be annotated and every annotation
// must fire. A disabled or broken analyzer therefore fails the test
// through its unmatched annotations. The per-analyzer golden tests run
// under FullScope so they exercise analyzer logic independently of
// reachability; runGoldenDerived exercises the derived scope itself.
func runGolden(t *testing.T, analyzers []*Analyzer, patterns ...string) {
	t.Helper()
	runGoldenScope(t, analyzers, FullScope, patterns...)
}

// runGoldenDerived is runGolden under the scope DeriveScope computes
// from EngineRoots over the loaded fixture packages.
func runGoldenDerived(t *testing.T, analyzers []*Analyzer, patterns ...string) {
	t.Helper()
	runGoldenScope(t, analyzers, nil, patterns...)
}

func runGoldenScope(t *testing.T, analyzers []*Analyzer, scope *Scope, patterns ...string) {
	t.Helper()
	pkgs := loadFixture(t, patterns...)
	diags, _ := RunWith(pkgs, analyzers, RunOptions{Scope: scope})

	type key struct {
		file string
		line int
	}
	type want struct {
		analyzer, substr string
		used             bool
	}
	wants := map[key][]*want{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
						pos := pkg.Fset.Position(c.Pos())
						k := key{filepath.Base(pos.Filename), pos.Line}
						wants[k] = append(wants[k], &want{analyzer: m[1], substr: m[2]})
					}
				}
			}
		}
	}
	for _, d := range diags {
		k := key{filepath.Base(d.Pos.Filename), d.Pos.Line}
		matched := false
		for _, w := range wants[k] {
			if !w.used && w.analyzer == d.Analyzer && strings.Contains(d.Message, w.substr) {
				w.used, matched = true, true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s:%d: missing %s diagnostic matching %q", k.file, k.line, w.analyzer, w.substr)
			}
		}
	}
}

func TestMapRangeGolden(t *testing.T) {
	runGolden(t, []*Analyzer{MapRange}, "./maprange/...")
}

func TestFloatEqGolden(t *testing.T) {
	runGolden(t, []*Analyzer{FloatEq}, "./floateq/...")
}

func TestErrDropGolden(t *testing.T) {
	runGolden(t, []*Analyzer{ErrDrop}, "./errdrop/...")
}

func TestWallClockGolden(t *testing.T) {
	runGolden(t, []*Analyzer{WallClock}, "./wallclock/...")
}

func TestBannedCallGolden(t *testing.T) {
	runGolden(t, []*Analyzer{BannedCall}, "./bannedcall/...")
}

func TestGoroutineLeakGolden(t *testing.T) {
	runGolden(t, []*Analyzer{GoroutineLeak}, "./goroutineleak/...")
}

func TestScratchCopyGolden(t *testing.T) {
	runGolden(t, []*Analyzer{ScratchCopy}, "./scratchcopy/...")
}

func TestSortStabilityGolden(t *testing.T) {
	runGolden(t, []*Analyzer{SortStability}, "./sortstability/...")
}

func TestPoolEscapeGolden(t *testing.T) {
	runGolden(t, []*Analyzer{PoolEscape}, "./poolescape/...")
}

// TestDetFlowDerivedScope pins the tentpole behavior: with the scope
// derived from EngineRoots, the scoped analyzers flag sites reachable
// from the fixture's core.Synthesize (statically, through an interface
// dispatch, and through a func value) and stay silent on the
// byte-identical shapes in the unreached package.
func TestDetFlowDerivedScope(t *testing.T) {
	runGoldenDerived(t, []*Analyzer{MapRange, WallClock, BannedCall}, "./detflow/...")
}

// TestScopeWhyFixture drives Scope.Why over the detflow fixture: the
// flagged time.Now site in helper must come back with a call chain that
// starts at the core.Synthesize root and ends at helper.stamp.
func TestScopeWhyFixture(t *testing.T) {
	pkgs := loadFixture(t, "./detflow/...")
	scope := DeriveScope(pkgs)
	if missing := scope.Missing(); len(missing) != 3 {
		// Only core.Synthesize exists in the fixture; the other three
		// roots are expected absences in a partial load.
		t.Fatalf("Missing() = %v, want the three non-fixture roots", missing)
	}
	var file string
	var line int
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			pos := pkg.Fset.Position(f.Pos())
			if filepath.Base(pos.Filename) == "helper.go" {
				src, err := os.ReadFile(pos.Filename)
				if err != nil {
					t.Fatal(err)
				}
				for i, l := range strings.Split(string(src), "\n") {
					if strings.Contains(l, "time.Now()") {
						file, line = pos.Filename, i+1
					}
				}
			}
		}
	}
	if file == "" {
		t.Fatal("time.Now site not found in detflow/helper/helper.go")
	}
	chain, known, reachable := scope.Why(file, line, nil)
	if !known || !reachable {
		t.Fatalf("Why(%s:%d) = known=%v reachable=%v, want both true", file, line, known, reachable)
	}
	if !strings.HasPrefix(chain, "core.Synthesize ") {
		t.Errorf("call chain must start at the root, got:\n%s", chain)
	}
	if !strings.Contains(chain, "helper.stamp") {
		t.Errorf("call chain must end at helper.stamp, got:\n%s", chain)
	}

	// A site in the unreached package resolves to a known function that
	// is not reachable.
	for _, pkg := range pkgs {
		if filepath.Base(pkg.Path) != "unreached" {
			continue
		}
		pos := pkg.Fset.Position(pkg.Files[0].Pos())
		src, err := os.ReadFile(pos.Filename)
		if err != nil {
			t.Fatal(err)
		}
		for i, l := range strings.Split(string(src), "\n") {
			if strings.Contains(l, "time.Now()") {
				_, known, reachable := scope.Why(pos.Filename, i+1, nil)
				if !known || reachable {
					t.Errorf("unreached site: known=%v reachable=%v, want known and not reachable", known, reachable)
				}
			}
		}
	}
}

// TestMisplacedDirective pins the -unused misplaced report: a directive
// naming floateq on a line whose finding belongs to maprange is
// reported unused with maprange in its Misplaced list, and the maprange
// finding itself survives.
func TestMisplacedDirective(t *testing.T) {
	pkgs := loadFixture(t, "./misplaced/...")
	diags, unused := RunWith(pkgs, []*Analyzer{FloatEq, MapRange}, RunOptions{Scope: FullScope})
	if len(diags) != 1 || diags[0].Analyzer != "maprange" {
		t.Fatalf("expected the maprange finding to survive, got %v", diags)
	}
	if len(unused) != 1 {
		t.Fatalf("expected one unused directive, got %v", unused)
	}
	u := unused[0]
	if u.Analyzer != "floateq" {
		t.Errorf("unused analyzer = %q, want floateq", u.Analyzer)
	}
	if len(u.Misplaced) != 1 || u.Misplaced[0] != "maprange" {
		t.Errorf("Misplaced = %v, want [maprange]", u.Misplaced)
	}
}

// TestRunUnused: a directive that suppresses a live diagnostic is used,
// one that suppresses nothing is reported, and one naming an analyzer
// outside the run set is judged neither way.
func TestRunUnused(t *testing.T) {
	pkgs := loadFixture(t, "./unuseddir/...")
	diags, unused := RunWith(pkgs, []*Analyzer{FloatEq}, RunOptions{Scope: FullScope})
	if len(diags) != 0 {
		t.Fatalf("expected every diagnostic suppressed, got %v", diags)
	}
	if len(unused) != 1 {
		t.Fatalf("expected exactly one unused directive, got %v", unused)
	}
	u := unused[0]
	if u.Analyzer != "floateq" {
		t.Errorf("unused directive analyzer = %q, want floateq", u.Analyzer)
	}
	if filepath.Base(u.Pos.Filename) != "core.go" || u.Pos.Line != 12 {
		t.Errorf("unused directive at %s:%d, want core.go:12", filepath.Base(u.Pos.Filename), u.Pos.Line)
	}
	// With maprange in the run set too, its directive is still used (it
	// suppresses the range-over-map diagnostic), so the report is stable.
	diags, unused = RunWith(pkgs, []*Analyzer{FloatEq, MapRange}, RunOptions{Scope: FullScope})
	if len(diags) != 0 {
		t.Fatalf("expected every diagnostic suppressed, got %v", diags)
	}
	if len(unused) != 1 {
		t.Fatalf("expected one unused directive with maprange selected, got %v", unused)
	}
}

// TestDirectiveValidation runs the full suite so the framework's own
// "noclint" diagnostics for malformed suppressions are exercised.
func TestDirectiveValidation(t *testing.T) {
	runGolden(t, Analyzers, "./directives/...")
}

// TestUnscopedPackageIsExempt runs the full suite under a derived
// scope over a package no engine root reaches; the fixture carries no
// annotations, so any diagnostic fails the test.
func TestUnscopedPackageIsExempt(t *testing.T) {
	runGoldenDerived(t, Analyzers, "./unscoped/...")
}

// repoRoot walks up from the working directory to the enclosing go.mod
// (the real nocvi module).
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test directory")
		}
		dir = parent
	}
}

// TestSortedKeysExemptionIsLoadBearing pins the acceptance criterion
// that the maprange exemption logic is really what keeps the live tree
// clean: internal/soc produces no maprange findings as-is, and with the
// sorted-keys exemption disabled the collect-then-sort loop in
// usecase.go (the merged-flows key collection) must be flagged.
func TestSortedKeysExemptionIsLoadBearing(t *testing.T) {
	loader, err := NewLoader(repoRoot(t))
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.LoadPatterns("./internal/soc")
	if err != nil {
		t.Fatalf("LoadPatterns: %v", err)
	}
	if diags, _ := RunWith(pkgs, []*Analyzer{MapRange}, RunOptions{Scope: FullScope}); len(diags) != 0 {
		t.Fatalf("internal/soc should be maprange-clean with the exemption enabled, got:\n%v", diags)
	}

	disableSortedKeysExemption = true
	defer func() { disableSortedKeysExemption = false }()
	diags, _ := RunWith(pkgs, []*Analyzer{MapRange}, RunOptions{Scope: FullScope})
	found := false
	for _, d := range diags {
		if filepath.Base(d.Pos.Filename) == "usecase.go" && strings.Contains(d.Message, "range over map merged") {
			found = true
		}
	}
	if !found {
		t.Fatalf("disabling the sorted-keys exemption must flag the merged-flows loop in internal/soc/usecase.go, got:\n%v", diags)
	}
}

// TestDiagnosticsAreSorted pins the deterministic reporting order.
func TestDiagnosticsAreSorted(t *testing.T) {
	pkgs := loadFixture(t, "./maprange/...", "./floateq/...")
	diags, _ := RunWith(pkgs, Analyzers, RunOptions{Scope: FullScope})
	if len(diags) < 2 {
		t.Fatalf("expected several diagnostics, got %d", len(diags))
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.Pos.Filename > b.Pos.Filename ||
			(a.Pos.Filename == b.Pos.Filename && a.Pos.Line > b.Pos.Line) {
			t.Fatalf("diagnostics out of order: %s before %s", a, b)
		}
	}
}

// TestLoaderRejectsMissingDir pins the error path for a bad pattern.
func TestLoaderRejectsMissingDir(t *testing.T) {
	loader, err := NewLoader(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loader.LoadPatterns("./does-not-exist"); err == nil {
		t.Fatal("expected an error for a pattern with no Go files")
	}
}
