package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches expected-diagnostic annotations in fixture comments:
//
//	// want <analyzer> "<substring>"
//
// An annotation applies to the line it sits on. Several annotations may
// share one line.
var wantRe = regexp.MustCompile(`want\s+([a-z]+)\s+"([^"]+)"`)

func loadFixture(t *testing.T, patterns ...string) []*Package {
	t.Helper()
	loader, err := NewLoader(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.LoadPatterns(patterns...)
	if err != nil {
		t.Fatalf("LoadPatterns(%v): %v", patterns, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("LoadPatterns(%v) matched no packages", patterns)
	}
	return pkgs
}

// runGolden executes the analyzers over fixture packages and checks the
// produced diagnostics against the want annotations, in both
// directions: every diagnostic must be annotated and every annotation
// must fire. A disabled or broken analyzer therefore fails the test
// through its unmatched annotations.
func runGolden(t *testing.T, analyzers []*Analyzer, patterns ...string) {
	t.Helper()
	pkgs := loadFixture(t, patterns...)
	diags := Run(pkgs, analyzers)

	type key struct {
		file string
		line int
	}
	type want struct {
		analyzer, substr string
		used             bool
	}
	wants := map[key][]*want{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
						pos := pkg.Fset.Position(c.Pos())
						k := key{filepath.Base(pos.Filename), pos.Line}
						wants[k] = append(wants[k], &want{analyzer: m[1], substr: m[2]})
					}
				}
			}
		}
	}
	for _, d := range diags {
		k := key{filepath.Base(d.Pos.Filename), d.Pos.Line}
		matched := false
		for _, w := range wants[k] {
			if !w.used && w.analyzer == d.Analyzer && strings.Contains(d.Message, w.substr) {
				w.used, matched = true, true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s:%d: missing %s diagnostic matching %q", k.file, k.line, w.analyzer, w.substr)
			}
		}
	}
}

func TestMapRangeGolden(t *testing.T) {
	runGolden(t, []*Analyzer{MapRange}, "./maprange/...")
}

func TestFloatEqGolden(t *testing.T) {
	runGolden(t, []*Analyzer{FloatEq}, "./floateq/...")
}

func TestErrDropGolden(t *testing.T) {
	runGolden(t, []*Analyzer{ErrDrop}, "./errdrop/...")
}

func TestWallClockGolden(t *testing.T) {
	runGolden(t, []*Analyzer{WallClock}, "./wallclock/...")
}

func TestBannedCallGolden(t *testing.T) {
	runGolden(t, []*Analyzer{BannedCall}, "./bannedcall/...")
}

func TestGoroutineLeakGolden(t *testing.T) {
	runGolden(t, []*Analyzer{GoroutineLeak}, "./goroutineleak/...")
}

func TestScratchCopyGolden(t *testing.T) {
	runGolden(t, []*Analyzer{ScratchCopy}, "./scratchcopy/...")
}

func TestSortStabilityGolden(t *testing.T) {
	runGolden(t, []*Analyzer{SortStability}, "./sortstability/...")
}

// TestRunUnused: a directive that suppresses a live diagnostic is used,
// one that suppresses nothing is reported, and one naming an analyzer
// outside the run set is judged neither way.
func TestRunUnused(t *testing.T) {
	pkgs := loadFixture(t, "./unuseddir/...")
	diags, unused := RunUnused(pkgs, []*Analyzer{FloatEq})
	if len(diags) != 0 {
		t.Fatalf("expected every diagnostic suppressed, got %v", diags)
	}
	if len(unused) != 1 {
		t.Fatalf("expected exactly one unused directive, got %v", unused)
	}
	u := unused[0]
	if u.Analyzer != "floateq" {
		t.Errorf("unused directive analyzer = %q, want floateq", u.Analyzer)
	}
	if filepath.Base(u.Pos.Filename) != "core.go" || u.Pos.Line != 12 {
		t.Errorf("unused directive at %s:%d, want core.go:12", filepath.Base(u.Pos.Filename), u.Pos.Line)
	}
	// With maprange in the run set too, its directive is still used (it
	// suppresses the range-over-map diagnostic), so the report is stable.
	diags, unused = RunUnused(pkgs, []*Analyzer{FloatEq, MapRange})
	if len(diags) != 0 {
		t.Fatalf("expected every diagnostic suppressed, got %v", diags)
	}
	if len(unused) != 1 {
		t.Fatalf("expected one unused directive with maprange selected, got %v", unused)
	}
}

// TestDirectiveValidation runs the full suite so the framework's own
// "noclint" diagnostics for malformed suppressions are exercised.
func TestDirectiveValidation(t *testing.T) {
	runGolden(t, Analyzers, "./directives/...")
}

// TestUnscopedPackageIsExempt runs the full suite over a package
// outside every scope list; the fixture carries no annotations, so any
// diagnostic fails the test.
func TestUnscopedPackageIsExempt(t *testing.T) {
	runGolden(t, Analyzers, "./unscoped/...")
}

// repoRoot walks up from the working directory to the enclosing go.mod
// (the real nocvi module).
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test directory")
		}
		dir = parent
	}
}

// TestSortedKeysExemptionIsLoadBearing pins the acceptance criterion
// that the maprange exemption logic is really what keeps the live tree
// clean: internal/soc produces no maprange findings as-is, and with the
// sorted-keys exemption disabled the collect-then-sort loop in
// usecase.go (the merged-flows key collection) must be flagged.
func TestSortedKeysExemptionIsLoadBearing(t *testing.T) {
	loader, err := NewLoader(repoRoot(t))
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.LoadPatterns("./internal/soc")
	if err != nil {
		t.Fatalf("LoadPatterns: %v", err)
	}
	if diags := Run(pkgs, []*Analyzer{MapRange}); len(diags) != 0 {
		t.Fatalf("internal/soc should be maprange-clean with the exemption enabled, got:\n%v", diags)
	}

	disableSortedKeysExemption = true
	defer func() { disableSortedKeysExemption = false }()
	diags := Run(pkgs, []*Analyzer{MapRange})
	found := false
	for _, d := range diags {
		if filepath.Base(d.Pos.Filename) == "usecase.go" && strings.Contains(d.Message, "range over map merged") {
			found = true
		}
	}
	if !found {
		t.Fatalf("disabling the sorted-keys exemption must flag the merged-flows loop in internal/soc/usecase.go, got:\n%v", diags)
	}
}

// TestDiagnosticsAreSorted pins the deterministic reporting order.
func TestDiagnosticsAreSorted(t *testing.T) {
	pkgs := loadFixture(t, "./maprange/...", "./floateq/...")
	diags := Run(pkgs, Analyzers)
	if len(diags) < 2 {
		t.Fatalf("expected several diagnostics, got %d", len(diags))
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.Pos.Filename > b.Pos.Filename ||
			(a.Pos.Filename == b.Pos.Filename && a.Pos.Line > b.Pos.Line) {
			t.Fatalf("diagnostics out of order: %s before %s", a, b)
		}
	}
}

// TestLoaderRejectsMissingDir pins the error path for a bad pattern.
func TestLoaderRejectsMissingDir(t *testing.T) {
	loader, err := NewLoader(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loader.LoadPatterns("./does-not-exist"); err == nil {
		t.Fatal("expected an error for a pattern with no Go files")
	}
}
