package sim

import (
	"math"
	"testing"

	"nocvi/internal/bench"
	"nocvi/internal/core"
	"nocvi/internal/model"
	"nocvi/internal/soc"
	"nocvi/internal/topology"
	"nocvi/internal/viplace"
)

// synthD26 synthesizes the 6-island logical D26 once for the tests.
func synthD26(t *testing.T) *topology.Topology {
	t.Helper()
	spec, err := bench.D26Islands(viplace.MethodLogical, 6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Synthesize(spec, model.Default65nm(), core.Options{
		AllowIntermediate: false,
		MaxDesignPoints:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Best().Top
}

func TestRunDeliversEverything(t *testing.T) {
	top := synthD26(t)
	res, err := Run(top, Config{DurationNs: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 || res.Deliver != res.Sent {
		t.Fatalf("sent=%d delivered=%d", res.Sent, res.Deliver)
	}
	for _, fs := range res.PerFlow {
		if !fs.Active {
			t.Fatalf("flow %d->%d inactive without mask", fs.Flow.Src, fs.Flow.Dst)
		}
		if fs.MeanLatencyNs <= 0 || fs.MaxLatencyNs < fs.MeanLatencyNs {
			t.Fatalf("latency stats broken: %+v", fs)
		}
	}
	if res.MeanLatencyNs <= 0 || res.MeanFlowLatencyCycles <= 0 {
		t.Fatal("aggregate stats broken")
	}
}

// With uniform island clocks and negligible load, per-flow simulated
// latency in cycles must match the analytic zero-load latency exactly.
func TestZeroLoadMatchesAnalytic(t *testing.T) {
	top := synthD26(t)
	// Force all islands to the same clock so "cycles" is unambiguous.
	for i := range top.IslandFreqHz {
		top.IslandFreqHz[i] = 400e6
	}
	for i := range top.Switches {
		top.Switches[i].FreqHz = 400e6
	}
	res, err := Run(top, Config{SinglePacket: true})
	if err != nil {
		t.Fatal(err)
	}
	for ri := range res.PerFlow {
		fs := &res.PerFlow[ri]
		if fs.Sent != 1 {
			t.Fatalf("flow %d sent %d packets, want 1", ri, fs.Sent)
		}
		want := top.ZeroLoadLatencyCycles(&top.Routes[ri])
		got := fs.MeanLatencyNs * 400e6 / 1e9
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("flow %d->%d: sim %.3f cycles, analytic %.3f",
				fs.Flow.Src, fs.Flow.Dst, got, want)
		}
	}
}

func TestContentionRaisesLatency(t *testing.T) {
	top := synthD26(t)
	light, err := Run(top, Config{DurationNs: 20000, InjectionScale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := Run(top, Config{DurationNs: 20000, InjectionScale: 3})
	if err != nil {
		t.Fatal(err)
	}
	if heavy.MeanLatencyNs <= light.MeanLatencyNs {
		t.Fatalf("3x load latency %.1f ns not above 0.1x load %.1f ns",
			heavy.MeanLatencyNs, light.MeanLatencyNs)
	}
}

func TestShutdownScenario(t *testing.T) {
	top := synthD26(t)
	spec := top.Spec
	// Gate every shutdownable island one at a time; traffic between the
	// others must be fully delivered.
	for i, isl := range spec.Islands {
		if !isl.Shutdownable {
			continue
		}
		off := make([]bool, len(spec.Islands))
		off[i] = true
		if err := VerifyShutdownDelivery(top, off); err != nil {
			t.Fatalf("island %d (%s): %v", i, isl.Name, err)
		}
	}
	// And all shutdownable islands at once.
	off := make([]bool, len(spec.Islands))
	any := false
	for i, isl := range spec.Islands {
		if isl.Shutdownable {
			off[i] = true
			any = true
		}
	}
	if !any {
		t.Fatal("D26/logical-6 has no shutdownable island")
	}
	if err := VerifyShutdownDelivery(top, off); err != nil {
		t.Fatal(err)
	}
}

func TestGatedRouteDetected(t *testing.T) {
	// Hand-build a topology that routes through a gated island and
	// check the simulator refuses it.
	spec := &soc.Spec{
		Name: "bad",
		Cores: []soc.Core{
			{ID: 0, Name: "a"}, {ID: 1, Name: "b"}, {ID: 2, Name: "c"},
		},
		Flows: []soc.Flow{{Src: 0, Dst: 2, BandwidthBps: 10e6}},
		Islands: []soc.Island{
			{ID: 0, Name: "i0", VoltageV: 1},
			{ID: 1, Name: "i1", VoltageV: 1, Shutdownable: true},
			{ID: 2, Name: "i2", VoltageV: 1},
		},
		IslandOf: []soc.IslandID{0, 1, 2},
	}
	top := topology.New(spec, model.Default65nm())
	for i := 0; i < 3; i++ {
		top.SetIslandFreq(soc.IslandID(i), 200e6)
	}
	s0 := top.AddSwitch(0, false)
	s1 := top.AddSwitch(1, false)
	s2 := top.AddSwitch(2, false)
	for c, sw := range map[soc.CoreID]topology.SwitchID{0: s0, 1: s1, 2: s2} {
		if err := top.AttachCore(c, sw); err != nil {
			t.Fatal(err)
		}
	}
	l01, _ := top.AddLink(s0, s1)
	l12, _ := top.AddLink(s1, s2)
	if err := top.AddRoute(topology.Route{Flow: spec.Flows[0],
		Switches: []topology.SwitchID{s0, s1, s2}, Links: []topology.LinkID{l01, l12}}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(top, Config{Off: []bool{false, true, false}}); err == nil {
		t.Fatal("route through gated island not detected")
	}
}

func TestRunRequiresRoutes(t *testing.T) {
	spec := bench.Example()
	top := topology.New(spec, model.Default65nm())
	if _, err := Run(top, Config{}); err == nil {
		t.Fatal("unrouted topology accepted")
	}
}

func TestDeterminism(t *testing.T) {
	top := synthD26(t)
	a, err := Run(top, Config{DurationNs: 5000})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(top, Config{DurationNs: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if a.Sent != b.Sent || a.MeanLatencyNs != b.MeanLatencyNs {
		t.Fatal("simulation not deterministic")
	}
}

func TestCrossIslandSlowerThanIntra(t *testing.T) {
	top := synthD26(t)
	res, err := Run(top, Config{DurationNs: 20000, InjectionScale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	var intra, inter, ni, nInter float64
	for _, fs := range res.PerFlow {
		if top.Spec.IslandOf[fs.Flow.Src] == top.Spec.IslandOf[fs.Flow.Dst] {
			intra += fs.MeanLatencyCycles
			ni++
		} else {
			inter += fs.MeanLatencyCycles
			nInter++
		}
	}
	if ni == 0 || nInter == 0 {
		t.Skip("degenerate partition")
	}
	if inter/nInter <= intra/ni {
		t.Fatalf("island crossings should cost latency: inter %.2f <= intra %.2f",
			inter/nInter, intra/ni)
	}
}
