// Package sim provides a deterministic discrete-event simulator for
// synthesized NoC topologies. It models each packet's header latency
// through the network — NI injection link, per-switch pipeline delay,
// inter-switch links, and the bi-synchronous FIFO penalty on island
// crossings — together with output-port contention: a port serializes
// one packet at a time at the link clock (wormhole-style occupation),
// and packets queue FIFO behind it. Buffers are unbounded, so the
// simulator measures latency and delivery, not deadlock.
//
// Clock domains are honoured in continuous time: every island runs at
// its own period, links run at the slower of their endpoints, and the
// converter penalty is paid in cycles of the slower side — matching the
// GALS architecture of §3.1.
//
// The simulator serves two purposes in the reproduction: it validates
// the analytic zero-load latencies used by the synthesis flow (Fig. 3),
// and it demonstrates island shutdown — with a shutdown mask applied,
// all traffic between powered islands still delivers, the property the
// topology was synthesized to guarantee.
package sim

import (
	"container/heap"
	"fmt"
	"math"

	"nocvi/internal/model"
	"nocvi/internal/soc"
	"nocvi/internal/topology"
)

// Config controls a simulation run.
type Config struct {
	// DurationNs is the injection horizon: packets are injected from
	// t=0 to t=DurationNs, then the network drains. Zero selects 10 µs.
	DurationNs float64

	// PacketFlits is the packet length in flits; the header sees the
	// pipeline latency, the tail occupies ports. Zero selects 8.
	PacketFlits int

	// InjectionScale multiplies every flow's bandwidth (1 = the spec's
	// rates; raise it to probe saturation). Zero selects 1.
	InjectionScale float64

	// Off power-gates the marked spec islands: their flows are not
	// injected and their switches refuse traffic (a routing bug would
	// surface as an error, not silent delivery).
	Off []bool

	// SinglePacket injects exactly one packet per flow, spaced far
	// apart, so every measurement is a true zero-load header latency
	// (used to validate the analytic Fig. 3 numbers). DurationNs and
	// InjectionScale are ignored in this mode.
	SinglePacket bool

	// replay, when set, overrides all injection scheduling with an
	// explicit packet list (see Replay).
	replay []replayInjection
}

func (c Config) duration() float64 {
	if c.DurationNs <= 0 {
		return 10_000
	}
	return c.DurationNs
}

func (c Config) flits() int {
	if c.PacketFlits <= 0 {
		return 8
	}
	return c.PacketFlits
}

func (c Config) scale() float64 {
	if c.InjectionScale <= 0 {
		return 1
	}
	return c.InjectionScale
}

// FlowStats reports one flow's outcome.
type FlowStats struct {
	Flow      soc.Flow
	Active    bool // false when an endpoint island is gated
	Sent      int
	Delivered int
	// MeanLatencyNs and MaxLatencyNs are header latencies source-NI to
	// destination-NI.
	MeanLatencyNs float64
	MaxLatencyNs  float64
	// MeanLatencyCycles converts the mean to cycles of the source
	// island's NoC clock.
	MeanLatencyCycles float64
}

// Result aggregates a run.
type Result struct {
	PerFlow []FlowStats
	Sent    int
	Deliver int
	// MeanLatencyNs is packet-weighted; MeanFlowLatencyCycles averages
	// per-flow mean cycles (the Fig. 3 aggregation).
	MeanLatencyNs         float64
	MeanFlowLatencyCycles float64

	// MaxLatencyNs is the worst header latency observed.
	MaxLatencyNs float64

	// ThroughputBps is the delivered payload rate over the injection
	// horizon (bytes/second).
	ThroughputBps float64
}

// event is a pending packet injection.
type event struct {
	time float64
	flow int
	seq  int
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time { //noclint:ignore floateq exact heap tie-break keeps event order deterministic
		return h[i].time < h[j].time
	}
	return h[i].flow < h[j].flow
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Run simulates the topology under the configuration.
func Run(top *topology.Topology, cfg Config) (*Result, error) {
	return runInternal(top, cfg, nil)
}

// runInternal is Run plus an optional per-delivery record callback.
func runInternal(top *topology.Topology, cfg Config, record func(PacketRecord)) (*Result, error) {
	if len(top.Routes) != len(top.Spec.Flows) {
		return nil, fmt.Errorf("sim: topology has %d routes for %d flows; synthesize first",
			len(top.Routes), len(top.Spec.Flows))
	}
	gated := func(isl soc.IslandID) bool {
		return cfg.Off != nil && int(isl) < len(cfg.Off) && cfg.Off[isl]
	}
	// Defensive check: no active route may touch a gated switch.
	for ri := range top.Routes {
		r := &top.Routes[ri]
		if gated(top.Spec.IslandOf[r.Flow.Src]) || gated(top.Spec.IslandOf[r.Flow.Dst]) {
			continue
		}
		for _, sw := range r.Switches {
			if gated(top.Switches[sw].Island) {
				return nil, fmt.Errorf("sim: active flow %d->%d routed through gated island %d",
					r.Flow.Src, r.Flow.Dst, top.Switches[sw].Island)
			}
		}
	}

	period := func(sw topology.SwitchID) float64 { return 1e9 / top.Switches[sw].FreqHz }
	linkPeriod := func(a, b topology.SwitchID) float64 {
		return 1e9 / math.Min(top.Switches[a].FreqHz, top.Switches[b].FreqHz)
	}

	// Output-port free times: injection ports (one per core), link
	// ports (one per link), ejection ports (one per core).
	injFree := make([]float64, len(top.Spec.Cores))
	linkFree := make([]float64, len(top.Links))
	ejFree := make([]float64, len(top.Spec.Cores))

	res := &Result{PerFlow: make([]FlowStats, len(top.Routes))}
	var h eventHeap
	flits := float64(cfg.flits())
	bytesPerPacket := flits * float64(top.Lib.LinkWidthBits) / 8

	for ri := range top.Routes {
		r := &top.Routes[ri]
		fs := &res.PerFlow[ri]
		fs.Flow = r.Flow
		if gated(top.Spec.IslandOf[r.Flow.Src]) || gated(top.Spec.IslandOf[r.Flow.Dst]) {
			continue
		}
		fs.Active = true
		if cfg.replay != nil {
			continue // injections come from the trace below
		}
		if cfg.SinglePacket {
			// One packet per flow, spaced so nothing ever queues.
			heap.Push(&h, event{time: float64(ri) * 100_000, flow: ri, seq: 0})
			continue
		}
		rate := r.Flow.BandwidthBps * cfg.scale()
		interval := bytesPerPacket / rate * 1e9 // ns between packets
		// Stagger first injections deterministically per flow.
		first := interval * float64(ri%7) / 7
		if first >= cfg.duration() {
			first = 0
		}
		heap.Push(&h, event{time: first, flow: ri, seq: 0})
	}

	for _, inj := range cfg.replay {
		heap.Push(&h, event{time: inj.time, flow: inj.route})
	}

	for h.Len() > 0 {
		ev := heap.Pop(&h).(event)
		ri := ev.flow
		r := &top.Routes[ri]
		fs := &res.PerFlow[ri]
		fs.Sent++
		res.Sent++

		src := r.Flow.Src
		firstSw := r.Switches[0]
		srcPeriod := period(firstSw)

		// NI injection link: one cycle of the island clock, port
		// occupied for the serialization time.
		depart := math.Max(ev.time, injFree[src])
		injFree[src] = depart + flits*srcPeriod
		t := depart + model.LinkTraversalCycles*srcPeriod

		// Hop through switches.
		for i, sw := range r.Switches {
			t += model.SwitchTraversalCycles * period(sw)
			if i == len(r.Switches)-1 {
				break
			}
			lid := r.Links[i]
			l := &top.Links[lid]
			lp := linkPeriod(l.From, l.To)
			d := math.Max(t, linkFree[lid])
			linkFree[lid] = d + flits*lp
			t = d + model.LinkTraversalCycles*lp
			if l.CrossesIslands {
				t += model.FIFOCrossingCycles * lp
			}
		}

		// Ejection link to the destination NI.
		lastSw := r.Switches[len(r.Switches)-1]
		lp := period(lastSw)
		d := math.Max(t, ejFree[r.Flow.Dst])
		ejFree[r.Flow.Dst] = d + flits*lp
		t = d + model.LinkTraversalCycles*lp

		lat := t - ev.time
		if record != nil {
			record(PacketRecord{
				Src: r.Flow.Src, Dst: r.Flow.Dst,
				InjectNs: ev.time, ArriveNs: t, LatencyNs: lat,
			})
		}
		fs.Delivered++
		res.Deliver++
		fs.MeanLatencyNs += lat
		if lat > fs.MaxLatencyNs {
			fs.MaxLatencyNs = lat
		}
		if lat > res.MaxLatencyNs {
			res.MaxLatencyNs = lat
		}
		res.MeanLatencyNs += lat

		// Next injection of this flow.
		if !cfg.SinglePacket && cfg.replay == nil {
			rate := r.Flow.BandwidthBps * cfg.scale()
			interval := bytesPerPacket / rate * 1e9
			next := ev.time + interval
			if next < cfg.duration() {
				heap.Push(&h, event{time: next, flow: ri, seq: ev.seq + 1})
			}
		}
	}

	var flowCycleSum float64
	activeFlows := 0
	for ri := range res.PerFlow {
		fs := &res.PerFlow[ri]
		if fs.Delivered > 0 {
			fs.MeanLatencyNs /= float64(fs.Delivered)
			srcIsl := top.Spec.IslandOf[fs.Flow.Src]
			fs.MeanLatencyCycles = fs.MeanLatencyNs * top.IslandFreqHz[srcIsl] / 1e9
			flowCycleSum += fs.MeanLatencyCycles
			activeFlows++
		}
	}
	if res.Deliver > 0 {
		res.MeanLatencyNs /= float64(res.Deliver)
	}
	if activeFlows > 0 {
		res.MeanFlowLatencyCycles = flowCycleSum / float64(activeFlows)
	}
	if !cfg.SinglePacket {
		res.ThroughputBps = float64(res.Deliver) * bytesPerPacket / (cfg.duration() * 1e-9)
	}
	return res, nil
}

// VerifyShutdownDelivery runs the simulator with the shutdown mask and
// confirms every flow between powered islands delivers all injected
// packets. This is the dynamic counterpart of the static
// topology.ValidateShutdownSafe proof.
func VerifyShutdownDelivery(top *topology.Topology, off []bool) error {
	res, err := Run(top, Config{Off: off, DurationNs: 5000})
	if err != nil {
		return err
	}
	for ri := range res.PerFlow {
		fs := &res.PerFlow[ri]
		if fs.Active && fs.Delivered != fs.Sent {
			return fmt.Errorf("sim: flow %d->%d delivered %d of %d with mask %v",
				fs.Flow.Src, fs.Flow.Dst, fs.Delivered, fs.Sent, off)
		}
		if !fs.Active && fs.Sent > 0 {
			return fmt.Errorf("sim: gated flow %d->%d injected packets", fs.Flow.Src, fs.Flow.Dst)
		}
	}
	return nil
}
