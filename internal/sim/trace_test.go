package sim

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestRunTraced(t *testing.T) {
	top := synthD26(t)
	res, tr, err := RunTraced(top, Config{DurationNs: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Packets) != res.Deliver {
		t.Fatalf("trace has %d packets, delivered %d", len(tr.Packets), res.Deliver)
	}
	// Time-ordered and self-consistent.
	for i, p := range tr.Packets {
		if p.ArriveNs <= p.InjectNs || math.Abs(p.LatencyNs-(p.ArriveNs-p.InjectNs)) > 1e-9 {
			t.Fatalf("packet %d inconsistent: %+v", i, p)
		}
		if i > 0 && p.InjectNs < tr.Packets[i-1].InjectNs {
			t.Fatal("trace not time-ordered")
		}
	}
}

func TestTraceCSVRoundTrip(t *testing.T) {
	top := synthD26(t)
	_, tr, err := RunTraced(top, Config{DurationNs: 2000})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf, top.Spec); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "src,dst,inject_ns") {
		t.Fatal("CSV header missing")
	}
	back, err := ReadCSV(bytes.NewReader(buf.Bytes()), top.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Packets) != len(tr.Packets) {
		t.Fatalf("round trip lost packets: %d vs %d", len(back.Packets), len(tr.Packets))
	}
	for i := range tr.Packets {
		a, b := tr.Packets[i], back.Packets[i]
		if a.Src != b.Src || a.Dst != b.Dst || math.Abs(a.InjectNs-b.InjectNs) > 1e-3 {
			t.Fatalf("packet %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	top := synthD26(t)
	cases := map[string]string{
		"empty":        "",
		"unknown core": "src,dst,inject_ns,arrive_ns,latency_ns\nghost,cpu0,0,1,1\n",
		"bad number":   "src,dst,inject_ns,arrive_ns,latency_ns\ncpu0,l2c,zero,1,1\n",
		"short row":    "src,dst,inject_ns,arrive_ns,latency_ns\ncpu0,l2c,0\n",
	}
	for name, body := range cases {
		if _, err := ReadCSV(strings.NewReader(body), top.Spec); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}

// Replaying a trace on the same topology reproduces the same packet
// count and (with identical injections) identical aggregate latency.
func TestReplayIdentity(t *testing.T) {
	top := synthD26(t)
	orig, tr, err := RunTraced(top, Config{DurationNs: 5000})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(top, tr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent != orig.Deliver {
		t.Fatalf("replay sent %d, trace had %d", rep.Sent, orig.Deliver)
	}
	if rep.Deliver != rep.Sent {
		t.Fatal("replay lost packets")
	}
	if math.Abs(rep.MeanLatencyNs-orig.MeanLatencyNs) > 1e-6 {
		t.Fatalf("replay latency %.3f vs original %.3f", rep.MeanLatencyNs, orig.MeanLatencyNs)
	}
}

// Replaying the same offered traffic on a different topology gives an
// apples-to-apples comparison: the single-island design of the same SoC
// must deliver everything too, at its own latency.
func TestReplayAcrossTopologies(t *testing.T) {
	multi := synthD26(t)
	_, tr, err := RunTraced(multi, Config{DurationNs: 5000})
	if err != nil {
		t.Fatal(err)
	}
	// A second, fresh copy of the same topology counts as "another
	// network" structurally; more interesting is a different island
	// count, but routes must exist for every pair — the merged D26
	// guarantees that only for the same spec, so re-synthesize the same
	// spec without the intermediate island.
	other := synthD26(t)
	rep, err := Replay(other, tr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Deliver != len(tr.Packets) {
		t.Fatalf("cross-replay delivered %d of %d", rep.Deliver, len(tr.Packets))
	}
}

func TestReplayErrors(t *testing.T) {
	top := synthD26(t)
	if _, err := Replay(top, &Trace{}); err == nil {
		t.Fatal("empty trace accepted")
	}
	bad := &Trace{Packets: []PacketRecord{{Src: 0, Dst: 0, InjectNs: 0}}}
	if _, err := Replay(top, bad); err == nil {
		t.Fatal("unroutable packet accepted")
	}
}
