package sim

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"nocvi/internal/soc"
	"nocvi/internal/topology"
)

// PacketRecord is one delivered packet in a trace.
type PacketRecord struct {
	Src, Dst  soc.CoreID
	InjectNs  float64
	ArriveNs  float64
	LatencyNs float64
}

// Trace is a time-ordered packet log of a simulation run.
type Trace struct {
	Packets []PacketRecord
}

// RunTraced simulates like Run but additionally records every delivered
// packet. Traces of long runs are large; keep DurationNs moderate.
func RunTraced(top *topology.Topology, cfg Config) (*Result, *Trace, error) {
	tr := &Trace{}
	res, err := runInternal(top, cfg, func(r PacketRecord) {
		tr.Packets = append(tr.Packets, r)
	})
	if err != nil {
		return nil, nil, err
	}
	sort.SliceStable(tr.Packets, func(i, j int) bool {
		if tr.Packets[i].InjectNs != tr.Packets[j].InjectNs { //noclint:ignore floateq exact sort tie-break keeps trace order deterministic
			return tr.Packets[i].InjectNs < tr.Packets[j].InjectNs
		}
		if tr.Packets[i].Src != tr.Packets[j].Src {
			return tr.Packets[i].Src < tr.Packets[j].Src
		}
		return tr.Packets[i].Dst < tr.Packets[j].Dst
	})
	return res, tr, nil
}

// WriteCSV exports the trace with core names resolved against the spec.
func (t *Trace) WriteCSV(w io.Writer, spec *soc.Spec) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"src", "dst", "inject_ns", "arrive_ns", "latency_ns"}); err != nil {
		return err
	}
	f := func(x float64) string { return strconv.FormatFloat(x, 'f', 3, 64) }
	for _, p := range t.Packets {
		rec := []string{
			spec.Cores[p.Src].Name, spec.Cores[p.Dst].Name,
			f(p.InjectNs), f(p.ArriveNs), f(p.LatencyNs),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV, resolving core names.
func ReadCSV(r io.Reader, spec *soc.Spec) (*Trace, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("sim: trace: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("sim: empty trace")
	}
	tr := &Trace{}
	for i, row := range rows[1:] {
		if len(row) != 5 {
			return nil, fmt.Errorf("sim: trace row %d has %d fields", i+1, len(row))
		}
		src, ok := spec.CoreByName(row[0])
		if !ok {
			return nil, fmt.Errorf("sim: trace row %d: unknown core %q", i+1, row[0])
		}
		dst, ok := spec.CoreByName(row[1])
		if !ok {
			return nil, fmt.Errorf("sim: trace row %d: unknown core %q", i+1, row[1])
		}
		var vals [3]float64
		for k := 0; k < 3; k++ {
			v, err := strconv.ParseFloat(row[2+k], 64)
			if err != nil {
				return nil, fmt.Errorf("sim: trace row %d: %w", i+1, err)
			}
			vals[k] = v
		}
		tr.Packets = append(tr.Packets, PacketRecord{
			Src: src.ID, Dst: dst.ID,
			InjectNs: vals[0], ArriveNs: vals[1], LatencyNs: vals[2],
		})
	}
	return tr, nil
}

// Replay re-injects the trace's packets at their recorded times on a
// (possibly different) topology and returns the resulting run. Every
// (src,dst) pair in the trace must have a route; latencies come out of
// the target network, enabling apples-to-apples topology comparisons
// under identical offered traffic.
func Replay(top *topology.Topology, tr *Trace) (*Result, error) {
	if len(tr.Packets) == 0 {
		return nil, fmt.Errorf("sim: empty trace")
	}
	routeOf := map[[2]soc.CoreID]int{}
	for ri := range top.Routes {
		routeOf[[2]soc.CoreID{top.Routes[ri].Flow.Src, top.Routes[ri].Flow.Dst}] = ri
	}
	injections := make([]replayInjection, 0, len(tr.Packets))
	for i, p := range tr.Packets {
		ri, ok := routeOf[[2]soc.CoreID{p.Src, p.Dst}]
		if !ok {
			return nil, fmt.Errorf("sim: trace packet %d: no route %d->%d in target topology", i, p.Src, p.Dst)
		}
		injections = append(injections, replayInjection{time: p.InjectNs, route: ri})
	}
	cfg := Config{replay: injections}
	return runInternal(top, cfg, nil)
}

// replayInjection is one externally-scheduled packet.
type replayInjection struct {
	time  float64
	route int
}
