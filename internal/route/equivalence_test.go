// Equivalence proof for the routing fast path: the optimized router
// (island-pruned implicit subgraphs, scratch Dijkstra, O(1) topology
// index) must produce *identical* topologies to the pre-optimization
// reference — same links in the same order with the same traffic and
// capacity, same routes, same power, same latency — on every bundled
// benchmark and a population of randomly generated SoCs. refRouter
// below is a faithful copy of the seed implementation: a complete n²
// candidate graph with the island discipline evaluated inside the cost
// closure, allocation-per-query container/heap Dijkstra, and linear
// FindLink/SwitchPorts scans over the exported slices so it does not
// depend on any of the machinery under test.
package route_test

import (
	"fmt"
	"math"
	"testing"

	"nocvi/internal/bench"
	"nocvi/internal/graph"
	"nocvi/internal/model"
	"nocvi/internal/power"
	"nocvi/internal/route"
	"nocvi/internal/skeleton"
	"nocvi/internal/soc"
	"nocvi/internal/specgen"
	"nocvi/internal/topology"
)

// refRouter is the seed router, frozen. Do not "improve" it: its value
// is that it routes the way the original code did, scan by scan.
type refRouter struct {
	top    *topology.Topology
	opt    route.Options
	maxSz  []int
	minLat float64
	g      *graph.Directed
}

func newRefRouter(top *topology.Topology, opt route.Options) *refRouter {
	r := &refRouter{top: top, opt: opt, minLat: top.Spec.MinLatencyConstraint()}
	if opt.MaxSwitchSize != nil {
		r.maxSz = opt.MaxSwitchSize
	} else {
		r.maxSz = make([]int, top.NumIslands())
		for i := range r.maxSz {
			r.maxSz[i] = top.Lib.MaxSwitchSize(top.IslandFreqHz[i])
		}
	}
	n := len(top.Switches)
	r.g = graph.NewDirected(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				r.g.AddEdge(u, v, 1)
			}
		}
	}
	return r
}

// refFindLink and refSwitchPorts are the seed's linear scans, kept
// independent of the indexed implementations they were replaced by.
func (r *refRouter) refFindLink(from, to topology.SwitchID) (topology.LinkID, bool) {
	for _, l := range r.top.Links {
		if l.From == from && l.To == to {
			return l.ID, true
		}
	}
	return -1, false
}

func (r *refRouter) refSwitchPorts(sw topology.SwitchID) (in, out int) {
	s := r.top.Switches[sw]
	in, out = len(s.Cores), len(s.Cores)
	for _, l := range r.top.Links {
		if l.To == sw {
			in++
		}
		if l.From == sw {
			out++
		}
	}
	return in, out
}

func (r *refRouter) refSwitchSize(sw topology.SwitchID) int {
	in, out := r.refSwitchPorts(sw)
	if in > out {
		return in
	}
	return out
}

func (r *refRouter) routeAll() error {
	for _, f := range r.top.Spec.SortFlowsByBandwidth() {
		if err := r.route(f); err != nil {
			return err
		}
	}
	return nil
}

func (r *refRouter) route(f soc.Flow) error {
	src := r.top.SwitchOf[f.Src]
	dst := r.top.SwitchOf[f.Dst]
	if src < 0 || dst < 0 {
		return fmt.Errorf("route: flow %d->%d has unattached endpoint", f.Src, f.Dst)
	}
	if src == dst {
		return r.top.AddRoute(topology.Route{Flow: f, Switches: []topology.SwitchID{src}})
	}
	path := r.shortest(f, src, dst, false)
	if path != nil && !r.latencyOK(f, path) {
		path = nil
	}
	if path == nil {
		path = r.shortest(f, src, dst, true)
		if path != nil && !r.latencyOK(f, path) {
			path = nil
		}
	}
	if path == nil {
		lat := "unconstrained"
		if f.MaxLatencyCycles > 0 {
			lat = fmt.Sprintf("lat<=%.0f", f.MaxLatencyCycles)
		}
		return fmt.Errorf("route: no feasible path for flow %d->%d (%.0f MB/s, %s)",
			f.Src, f.Dst, f.BandwidthBps/1e6, lat)
	}
	return r.commit(f, path)
}

func (r *refRouter) allowed(u, v topology.SwitchID, srcIsl, dstIsl soc.IslandID) bool {
	iu := r.top.Switches[u].Island
	iv := r.top.Switches[v].Island
	mid := r.top.NoCIsland
	in := func(i soc.IslandID) bool { return i == srcIsl || i == dstIsl || (mid != soc.NoIsland && i == mid) }
	if !in(iu) || !in(iv) {
		return false
	}
	if iu == iv {
		return true
	}
	switch {
	case iu == srcIsl && (iv == dstIsl || iv == mid):
		return true
	case iu == mid && iv == dstIsl:
		return true
	}
	return false
}

func (r *refRouter) hopLatency(u, v topology.SwitchID) float64 {
	lat := model.SwitchTraversalCycles + model.LinkTraversalCycles
	if r.top.Switches[u].Island != r.top.Switches[v].Island {
		lat += model.FIFOCrossingCycles
	}
	return lat
}

func (r *refRouter) estLen() float64 {
	if r.opt.EstLinkLengthMM <= 0 {
		return 2.0
	}
	return r.opt.EstLinkLengthMM
}

func (r *refRouter) latW() float64 {
	if r.opt.LatencyWeightW <= 0 {
		return 1e-3
	}
	return r.opt.LatencyWeightW
}

func (r *refRouter) edgeCost(u, v topology.SwitchID, f soc.Flow, latOnly bool) float64 {
	lib := r.top.Lib
	su, sv := &r.top.Switches[u], &r.top.Switches[v]
	crossing := su.Island != sv.Island
	bw := f.BandwidthBps

	lid, exists := r.refFindLink(u, v)
	var pressure float64
	if exists {
		l := r.top.Links[lid]
		if l.TrafficBps+bw > l.CapacityBps*(1+1e-9) {
			return graph.Inf
		}
		if r.opt.BalanceLoad && l.CapacityBps > 0 {
			u := (l.TrafficBps + bw) / l.CapacityBps
			pressure = u * u
		}
	} else if r.opt.NoNewLinks {
		return graph.Inf
	} else {
		inU, outU := r.refSwitchPorts(u)
		inV, outV := r.refSwitchPorts(v)
		if maxi(inU, outU+1) > r.maxSz[su.Island] || maxi(inV+1, outV) > r.maxSz[sv.Island] {
			return graph.Inf
		}
		minF := math.Min(su.FreqHz, sv.FreqHz)
		if bw > lib.LinkCapacityBps(minF)*(1+1e-9) {
			return graph.Inf
		}
	}

	if latOnly {
		return r.hopLatency(u, v)
	}

	vMax := math.Max(su.VoltageV, sv.VoltageV)
	eBit := lib.SwitchEnergyBase + lib.SwitchEnergyPerPort*float64(r.refSwitchSize(v))
	pw := bw * 8 * eBit * lib.VoltageScaleDynamic(sv.VoltageV)
	pw += lib.LinkDynPowerW(r.estLen(), vMax, bw)
	if crossing {
		pw += lib.FIFODynPowerW(su.VoltageV, sv.VoltageV, bw)
	}
	if !exists {
		pw += lib.SwitchIdlePerPortHz * (su.FreqHz + sv.FreqHz) * lib.VoltageScaleDynamic(vMax)
		pw += lib.SwitchLeakPowerW(1, su.VoltageV) + lib.SwitchLeakPowerW(1, sv.VoltageV)
		pw += lib.LinkLeakPowerW(r.estLen(), vMax)
		if crossing {
			pw += lib.FIFOLeakPowerW(su.VoltageV, sv.VoltageV)
		}
	}

	tightness := 0.0
	if f.MaxLatencyCycles > 0 && r.minLat > 0 {
		tightness = r.minLat / f.MaxLatencyCycles
	}
	return pw*(1+pressure) + r.latW()*tightness*r.hopLatency(u, v)
}

func (r *refRouter) shortest(f soc.Flow, src, dst topology.SwitchID, latOnly bool) []topology.SwitchID {
	srcIsl := r.top.Spec.IslandOf[f.Src]
	dstIsl := r.top.Spec.IslandOf[f.Dst]
	cost := func(u, v int, _ float64) float64 {
		if !r.allowed(topology.SwitchID(u), topology.SwitchID(v), srcIsl, dstIsl) {
			return graph.Inf
		}
		return r.edgeCost(topology.SwitchID(u), topology.SwitchID(v), f, latOnly)
	}
	path, c := r.g.ShortestPath(int(src), int(dst), cost)
	if math.IsInf(c, 1) {
		return nil
	}
	out := make([]topology.SwitchID, len(path))
	for i, p := range path {
		out[i] = topology.SwitchID(p)
	}
	return out
}

func (r *refRouter) latencyOK(f soc.Flow, path []topology.SwitchID) bool {
	if f.MaxLatencyCycles <= 0 {
		return true
	}
	lat := 2 * model.LinkTraversalCycles
	lat += model.SwitchTraversalCycles * float64(len(path))
	for i := 1; i < len(path); i++ {
		lat += model.LinkTraversalCycles
		if r.top.Switches[path[i-1]].Island != r.top.Switches[path[i]].Island {
			lat += model.FIFOCrossingCycles
		}
	}
	return lat <= f.MaxLatencyCycles
}

func (r *refRouter) commit(f soc.Flow, path []topology.SwitchID) error {
	links := make([]topology.LinkID, 0, len(path)-1)
	for i := 1; i < len(path); i++ {
		lid, ok := r.refFindLink(path[i-1], path[i])
		if !ok {
			var err error
			lid, err = r.top.AddLink(path[i-1], path[i])
			if err != nil {
				return fmt.Errorf("route: opening link for flow %d->%d: %w", f.Src, f.Dst, err)
			}
		}
		links = append(links, lid)
	}
	return r.top.AddRoute(topology.Route{Flow: f, Switches: path, Links: links})
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// compareRouting builds the same skeleton twice (skeleton.Build is
// deterministic), routes one with the optimized router and one with
// the reference, and demands exact equality — including exact float
// equality on power and latency, since the optimization claims
// bit-identical arithmetic, not approximate equivalence.
func compareRouting(t *testing.T, label string, spec *soc.Spec, lib *model.Library, extra, mid int, opt route.Options) {
	t.Helper()
	optTop, err := skeleton.Build(spec, lib, extra, mid)
	if err != nil {
		t.Fatalf("%s: skeleton: %v", label, err)
	}
	refTop, err := skeleton.Build(spec, lib, extra, mid)
	if err != nil {
		t.Fatalf("%s: skeleton: %v", label, err)
	}

	optErr := route.New(optTop, opt).RouteAll()
	refErr := newRefRouter(refTop, opt).routeAll()

	// Infeasible skeletons must fail identically: same first
	// unroutable flow, same message.
	if (optErr == nil) != (refErr == nil) {
		t.Fatalf("%s: optimized err=%v, reference err=%v", label, optErr, refErr)
	}
	if optErr != nil {
		if optErr.Error() != refErr.Error() {
			t.Fatalf("%s: error mismatch:\n  optimized: %v\n  reference: %v", label, optErr, refErr)
		}
		return
	}

	if len(optTop.Links) != len(refTop.Links) {
		t.Fatalf("%s: %d links vs reference %d", label, len(optTop.Links), len(refTop.Links))
	}
	for i := range optTop.Links {
		a, b := optTop.Links[i], refTop.Links[i]
		if a.ID != b.ID || a.From != b.From || a.To != b.To ||
			a.CrossesIslands != b.CrossesIslands ||
			a.TrafficBps != b.TrafficBps || a.CapacityBps != b.CapacityBps {
			t.Fatalf("%s: link %d differs:\n  optimized: %+v\n  reference: %+v", label, i, a, b)
		}
	}

	if len(optTop.Routes) != len(refTop.Routes) {
		t.Fatalf("%s: %d routes vs reference %d", label, len(optTop.Routes), len(refTop.Routes))
	}
	for i := range optTop.Routes {
		a, b := optTop.Routes[i], refTop.Routes[i]
		if a.Flow != b.Flow {
			t.Fatalf("%s: route %d flow differs: %+v vs %+v", label, i, a.Flow, b.Flow)
		}
		if len(a.Switches) != len(b.Switches) || len(a.Links) != len(b.Links) {
			t.Fatalf("%s: route %d shape differs: %v/%v vs %v/%v",
				label, i, a.Switches, a.Links, b.Switches, b.Links)
		}
		for j := range a.Switches {
			if a.Switches[j] != b.Switches[j] {
				t.Fatalf("%s: route %d path differs: %v vs %v", label, i, a.Switches, b.Switches)
			}
		}
		for j := range a.Links {
			if a.Links[j] != b.Links[j] {
				t.Fatalf("%s: route %d links differ: %v vs %v", label, i, a.Links, b.Links)
			}
		}
	}

	if ap, bp := power.NoC(optTop), power.NoC(refTop); ap != bp {
		t.Fatalf("%s: power differs:\n  optimized: %+v\n  reference: %+v", label, ap, bp)
	}
	if al, bl := optTop.MeanZeroLoadLatency(), refTop.MeanZeroLoadLatency(); al != bl {
		t.Fatalf("%s: latency differs: %v vs %v", label, al, bl)
	}
}

// TestRoutingEquivalenceSuite covers every bundled benchmark across
// skeleton shapes (tight and relaxed switch counts, with and without
// intermediate switches) and router options.
func TestRoutingEquivalenceSuite(t *testing.T) {
	lib := model.Default65nm()
	for _, name := range bench.Names() {
		spec, err := bench.Islanded(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, mid := range []int{0, 2} {
			for _, extra := range []int{0, 1} {
				label := fmt.Sprintf("%s/mid=%d/extra=%d", name, mid, extra)
				compareRouting(t, label, spec, lib, extra, mid, route.Options{})
			}
		}
		compareRouting(t, name+"/balance", spec, lib, 1, 2, route.Options{BalanceLoad: true})
	}
}

// TestRoutingEquivalenceRandom fans the comparison over randomly
// generated SoCs — 24 seeds across sizes and island counts, exercising
// subgraph shapes (single-island flows, no intermediate island,
// many-island specs) the curated suite does not.
func TestRoutingEquivalenceRandom(t *testing.T) {
	lib := model.Default65nm()
	for seed := int64(1); seed <= 24; seed++ {
		opt := specgen.Options{
			MaxCores:   10 + int(seed%3)*12, // 10, 22, 34
			MaxIslands: 2 + int(seed%5),     // 2..6
		}
		spec := specgen.Random(seed, opt)
		mid := int(seed % 3) // 0, 1, 2 intermediate switches
		label := fmt.Sprintf("seed=%d/cores=%d/mid=%d", seed, len(spec.Cores), mid)
		compareRouting(t, label, spec, lib, int(seed%2), mid, route.Options{})
	}
}
