package route

import (
	"strings"
	"testing"

	"nocvi/internal/model"
	"nocvi/internal/soc"
	"nocvi/internal/topology"
)

// threeIslandSpec: islands sys(0), media(1, shutdownable), io(2,
// shutdownable); six cores, traffic between all islands.
func threeIslandSpec() *soc.Spec {
	return &soc.Spec{
		Name: "r6",
		Cores: []soc.Core{
			{ID: 0, Name: "cpu"}, {ID: 1, Name: "mem"},
			{ID: 2, Name: "vid"}, {ID: 3, Name: "aud"},
			{ID: 4, Name: "usb"}, {ID: 5, Name: "eth"},
		},
		Flows: []soc.Flow{
			{Src: 0, Dst: 1, BandwidthBps: 400e6, MaxLatencyCycles: 12},
			{Src: 2, Dst: 1, BandwidthBps: 300e6, MaxLatencyCycles: 30},
			{Src: 4, Dst: 1, BandwidthBps: 50e6, MaxLatencyCycles: 40},
			{Src: 5, Dst: 2, BandwidthBps: 20e6, MaxLatencyCycles: 40},
			{Src: 3, Dst: 2, BandwidthBps: 80e6},
		},
		Islands: []soc.Island{
			{ID: 0, Name: "sys", VoltageV: 1.0},
			{ID: 1, Name: "media", VoltageV: 0.9, Shutdownable: true},
			{ID: 2, Name: "io", VoltageV: 1.0, Shutdownable: true},
		},
		IslandOf: []soc.IslandID{0, 0, 1, 1, 2, 2},
	}
}

// build creates a topology with one switch per island and all cores
// attached; no links yet.
func build(t *testing.T, spec *soc.Spec, withMid bool) *topology.Topology {
	t.Helper()
	lib := model.Default65nm()
	top := topology.New(spec, lib)
	for i := range spec.Islands {
		top.SetIslandFreq(soc.IslandID(i), 200e6)
	}
	sws := make([]topology.SwitchID, len(spec.Islands))
	for i := range spec.Islands {
		sws[i] = top.AddSwitch(soc.IslandID(i), false)
	}
	if withMid {
		ni := top.AddNoCIsland(200e6, 1.0)
		top.AddSwitch(ni, true)
	}
	for c := range spec.Cores {
		if err := top.AttachCore(soc.CoreID(c), sws[spec.IslandOf[c]]); err != nil {
			t.Fatal(err)
		}
	}
	return top
}

func TestRouteAllDirect(t *testing.T) {
	spec := threeIslandSpec()
	top := build(t, spec, false)
	r := New(top, Options{})
	if err := r.RouteAll(); err != nil {
		t.Fatal(err)
	}
	if err := top.Validate(); err != nil {
		t.Fatalf("routed topology invalid: %v", err)
	}
	if len(top.Routes) != len(spec.Flows) {
		t.Fatalf("routed %d of %d flows", len(top.Routes), len(spec.Flows))
	}
	// flow 2->1 (media->sys) must go directly media switch -> sys switch,
	// it must NOT pass the io island (shutdown safety by construction).
	for _, rt := range top.Routes {
		for _, sw := range rt.Switches {
			isl := top.Switches[sw].Island
			srcI, dstI := spec.IslandOf[rt.Flow.Src], spec.IslandOf[rt.Flow.Dst]
			if isl != srcI && isl != dstI {
				t.Fatalf("flow %d->%d strays into island %d", rt.Flow.Src, rt.Flow.Dst, isl)
			}
		}
	}
}

func TestRouteSameSwitch(t *testing.T) {
	spec := threeIslandSpec()
	top := build(t, spec, false)
	r := New(top, Options{})
	if err := r.Route(spec.Flows[0]); err != nil { // cpu->mem, same switch
		t.Fatal(err)
	}
	if len(top.Routes) != 1 || len(top.Routes[0].Links) != 0 {
		t.Fatal("same-switch flow should need no links")
	}
	if len(top.Links) != 0 {
		t.Fatal("no links should be opened")
	}
}

func TestRouteReusesLinks(t *testing.T) {
	spec := threeIslandSpec()
	top := build(t, spec, false)
	r := New(top, Options{})
	if err := r.Route(spec.Flows[1]); err != nil { // vid->mem
		t.Fatal(err)
	}
	nLinks := len(top.Links)
	// aud->vid is intra-island; vid->mem opened media->sys. Another
	// media->sys flow must reuse it.
	if err := r.Route(soc.Flow{Src: 3, Dst: 0, BandwidthBps: 10e6}); err != nil {
		t.Fatal(err)
	}
	if len(top.Links) != nLinks {
		t.Fatalf("link not reused: %d -> %d links", nLinks, len(top.Links))
	}
	l := top.Links[0]
	if l.TrafficBps != 310e6 {
		t.Fatalf("accumulated traffic = %g", l.TrafficBps)
	}
}

func TestRouteViaIntermediate(t *testing.T) {
	spec := threeIslandSpec()
	top := build(t, spec, true)
	// Tiny max switch sizes force multi-hop structure to stay feasible;
	// here we just check mid routing is *allowed* and safe.
	r := New(top, Options{})
	if err := r.RouteAll(); err != nil {
		t.Fatal(err)
	}
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestIntermediateUsedWhenDirectForbidden(t *testing.T) {
	spec := threeIslandSpec()
	top := build(t, spec, true)
	// The sys switch has 2 cores; cap its size at 3 so it can accept
	// exactly one more input port, and pre-grant that port to a link
	// from the intermediate switch. Both inter-island flows targeting
	// sys (media->sys and io->sys) must then funnel through the mid
	// switch, sharing the single mid->sys link.
	mid := topology.SwitchID(3)
	if _, err := top.AddLink(mid, 0); err != nil {
		t.Fatal(err)
	}
	sizes := []int{3, 4, 4, 16}
	r := New(top, Options{MaxSwitchSize: sizes})
	if err := r.RouteAll(); err != nil {
		t.Fatal(err)
	}
	usedMid := false
	for _, rt := range top.Routes {
		for _, sw := range rt.Switches {
			if top.Switches[sw].Indirect {
				usedMid = true
			}
		}
	}
	if !usedMid {
		t.Fatal("expected the intermediate island to be used under tight size caps")
	}
	if err := top.ValidateShutdownSafe(); err != nil {
		t.Fatal(err)
	}
	for _, s := range top.Switches {
		if sz := top.SwitchSize(s.ID); sz > sizes[s.Island] {
			t.Fatalf("switch %d size %d exceeds cap %d", s.ID, sz, sizes[s.Island])
		}
	}
}

func TestRouteFailsWhenNoCapacity(t *testing.T) {
	spec := threeIslandSpec()
	// One absurd flow beyond any link capacity at 200 MHz (800 MB/s cap).
	spec.Flows = append(spec.Flows, soc.Flow{Src: 2, Dst: 5, BandwidthBps: 5e9})
	top := build(t, spec, false)
	r := New(top, Options{})
	err := r.RouteAll()
	if err == nil || !strings.Contains(err.Error(), "no feasible path") {
		t.Fatalf("over-capacity flow routed: %v", err)
	}
}

func TestRouteFailsOnLatency(t *testing.T) {
	spec := threeIslandSpec()
	// Inter-island flow with an impossible latency bound: min possible
	// crossing is 1+2+(1+4)+2+1 = 11 cycles.
	spec.Flows = []soc.Flow{{Src: 2, Dst: 0, BandwidthBps: 10e6, MaxLatencyCycles: 8}}
	top := build(t, spec, false)
	r := New(top, Options{})
	if err := r.RouteAll(); err == nil {
		t.Fatal("impossible latency constraint satisfied?!")
	}
}

func TestLatencyFallbackPrefersShortPath(t *testing.T) {
	// Two switches in the source island chained to the destination: the
	// cheap path may be longer; a tight constraint must force the direct
	// one. Construct: sys has 2 switches; core0 on swA; mem on swB of
	// island sys... simpler to assert the blended route meets the bound.
	spec := threeIslandSpec()
	spec.Flows = []soc.Flow{{Src: 2, Dst: 0, BandwidthBps: 10e6, MaxLatencyCycles: 11}}
	top := build(t, spec, true) // mid available but too slow latency-wise
	r := New(top, Options{})
	if err := r.RouteAll(); err != nil {
		t.Fatal(err)
	}
	rt := top.Routes[0]
	if len(rt.Switches) != 2 {
		t.Fatalf("tight flow took %d switches, want direct 2", len(rt.Switches))
	}
	if got := top.ZeroLoadLatencyCycles(&rt); got != 11 {
		t.Fatalf("latency = %g", got)
	}
}

func TestMaxSwitchSizesDerived(t *testing.T) {
	spec := threeIslandSpec()
	top := build(t, spec, false)
	r := New(top, Options{})
	szs := r.MaxSwitchSizes()
	if len(szs) != 3 {
		t.Fatalf("sizes = %v", szs)
	}
	lib := top.Lib
	for i, sz := range szs {
		if sz != lib.MaxSwitchSize(top.IslandFreqHz[i]) {
			t.Fatalf("island %d size %d not derived from clock", i, sz)
		}
	}
}

func TestAllowedDiscipline(t *testing.T) {
	spec := threeIslandSpec()
	top := build(t, spec, true)
	r := New(top, Options{})
	// switches: 0=sys 1=media 2=io 3=mid
	cases := []struct {
		u, v     topology.SwitchID
		src, dst soc.IslandID
		want     bool
	}{
		{1, 0, 1, 0, true},  // media->sys for a media->sys flow
		{1, 3, 1, 0, true},  // media->mid
		{3, 0, 1, 0, true},  // mid->sys
		{0, 3, 1, 0, false}, // backwards: dst island -> mid
		{3, 1, 1, 0, false}, // backwards: mid -> src island
		{1, 2, 1, 0, false}, // stray island io
		{2, 0, 1, 0, false}, // from stray island
		{0, 0, 0, 0, false}, // self handled elsewhere; u==v not allowed as edge
	}
	for i, c := range cases {
		if c.u == c.v {
			continue
		}
		if got := r.allowed(c.u, c.v, c.src, c.dst); got != c.want {
			t.Fatalf("case %d: allowed(%d->%d for %d->%d) = %v, want %v", i, c.u, c.v, c.src, c.dst, got, c.want)
		}
	}
}

func TestUnattachedEndpoint(t *testing.T) {
	spec := threeIslandSpec()
	lib := model.Default65nm()
	top := topology.New(spec, lib)
	top.SetIslandFreq(0, 200e6)
	top.AddSwitch(0, false)
	r := New(top, Options{})
	if err := r.Route(spec.Flows[0]); err == nil {
		t.Fatal("unattached endpoint not reported")
	}
}

func TestNoNewLinks(t *testing.T) {
	spec := threeIslandSpec()
	top := build(t, spec, false)
	r := New(top, Options{NoNewLinks: true})
	// With zero pre-existing links, only same-switch flows route.
	if err := r.Route(spec.Flows[0]); err != nil { // cpu->mem same switch
		t.Fatal(err)
	}
	if err := r.Route(spec.Flows[1]); err == nil { // vid->mem needs a link
		t.Fatal("inter-switch flow routed without any links")
	}
	// Pre-open the link and it works.
	if _, err := top.AddLink(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.Route(spec.Flows[1]); err != nil {
		t.Fatal(err)
	}
	if len(top.Links) != 1 {
		t.Fatal("NoNewLinks opened a link")
	}
}

func TestBalanceLoadSpreadsTraffic(t *testing.T) {
	// Source island S (1 core) -> destination island D (1 core), with
	// two parallel indirect paths via the NoC island. Six equal flows
	// must spread across both paths with balancing, and may pile onto
	// one without it.
	spec := &soc.Spec{
		Name: "bal",
		Cores: []soc.Core{
			{ID: 0, Name: "s0"}, {ID: 1, Name: "s1"}, {ID: 2, Name: "s2"},
			{ID: 3, Name: "d0"}, {ID: 4, Name: "d1"}, {ID: 5, Name: "d2"},
		},
		Flows: []soc.Flow{
			{Src: 0, Dst: 3, BandwidthBps: 100e6},
			{Src: 1, Dst: 4, BandwidthBps: 100e6},
			{Src: 2, Dst: 5, BandwidthBps: 100e6},
			{Src: 0, Dst: 4, BandwidthBps: 100e6},
			{Src: 1, Dst: 5, BandwidthBps: 100e6},
			{Src: 2, Dst: 3, BandwidthBps: 100e6},
		},
		Islands: []soc.Island{
			{ID: 0, Name: "S", VoltageV: 1},
			{ID: 1, Name: "D", VoltageV: 1},
		},
		IslandOf: []soc.IslandID{0, 0, 0, 1, 1, 1},
	}
	build := func(balance bool) *topology.Topology {
		top := topology.New(spec, model.Default65nm())
		top.SetIslandFreq(0, 200e6)
		top.SetIslandFreq(1, 200e6)
		sS := top.AddSwitch(0, false)
		sD := top.AddSwitch(1, false)
		ni := top.AddNoCIsland(200e6, 1.0)
		m1 := top.AddSwitch(ni, true)
		m2 := top.AddSwitch(ni, true)
		for c := 0; c < 3; c++ {
			if err := top.AttachCore(soc.CoreID(c), sS); err != nil {
				t.Fatal(err)
			}
		}
		for c := 3; c < 6; c++ {
			if err := top.AttachCore(soc.CoreID(c), sD); err != nil {
				t.Fatal(err)
			}
		}
		top.AddLink(sS, m1)
		top.AddLink(m1, sD)
		top.AddLink(sS, m2)
		top.AddLink(m2, sD)
		r := New(top, Options{NoNewLinks: true, BalanceLoad: balance})
		if err := r.RouteAll(); err != nil {
			t.Fatal(err)
		}
		return top
	}
	flat := build(false)
	bal := build(true)
	if bal.MaxLinkUtilization() >= flat.MaxLinkUtilization() {
		t.Fatalf("balancing did not reduce peak utilization: %.2f vs %.2f",
			bal.MaxLinkUtilization(), flat.MaxLinkUtilization())
	}
	// With balancing both mid switches carry traffic.
	if bal.SwitchTrafficBps(2) == 0 || bal.SwitchTrafficBps(3) == 0 {
		t.Fatal("balanced routing left one parallel path unused")
	}
}
