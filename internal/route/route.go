// Package route implements step 15 of Algorithm 1: computing least-cost
// paths for the inter-switch traffic flows, opening links on demand.
//
// Flows are processed in decreasing bandwidth order. For each flow the
// router runs Dijkstra over the switch graph where every *allowed* switch
// pair is a candidate edge — existing links are priced at their marginal
// power, absent links additionally pay the cost of opening (idle power,
// leakage, and the port they consume). The paper's island discipline
// restricts candidates: a flow from island S to island D may only touch
// switches in S, in D, or in the never-shut-down intermediate NoC island
// M, and may only move "forward" (S→S, S→M, S→D, M→M, M→D, D→D), which
// both bounds latency and guarantees shutdown safety by construction.
//
// A candidate edge is rejected outright when the bandwidth would exceed
// the link capacity or when opening it would grow either endpoint switch
// beyond the island's max_sw_size (the frequency-feasibility bound from
// Algorithm 1 step 1).
package route

import (
	"fmt"
	"math"

	"nocvi/internal/graph"
	"nocvi/internal/model"
	"nocvi/internal/soc"
	"nocvi/internal/topology"
)

// Options tunes the router's cost function.
type Options struct {
	// EstLinkLengthMM is the pre-floorplan estimate of an inter-switch
	// wire length used in the power term. Zero selects 2 mm.
	EstLinkLengthMM float64

	// LatencyWeightW converts one cycle of path latency (scaled by the
	// flow's constraint tightness) into watts for the linear cost
	// combination. Zero selects 1 mW/cycle.
	LatencyWeightW float64

	// MaxSwitchSize optionally overrides the per-island switch size
	// bound (indexed by island ID including the intermediate island).
	// Nil derives the bounds from each island's clock via the library.
	MaxSwitchSize []int

	// NoNewLinks restricts routing to links that already exist in the
	// topology — used to re-route traffic on fabricated silicon (fault
	// recovery analysis), where wires cannot be added.
	NoNewLinks bool

	// BalanceLoad adds a congestion-pressure term to existing links
	// proportional to their projected utilization, spreading traffic
	// over parallel paths instead of piling onto the first cheapest
	// one. Costs a little power (less reuse), buys capacity headroom.
	BalanceLoad bool
}

func (o Options) estLen() float64 {
	if o.EstLinkLengthMM <= 0 {
		return 2.0
	}
	return o.EstLinkLengthMM
}

func (o Options) latW() float64 {
	if o.LatencyWeightW <= 0 {
		return 1e-3
	}
	return o.LatencyWeightW
}

// Router routes flows over a topology under construction.
type Router struct {
	top    *topology.Topology
	opt    Options
	maxSz  []int           // per island
	minLat float64         // tightest latency constraint of the spec
	g      *graph.Directed // complete candidate graph over switches
}

// New creates a router for the given topology. The topology must already
// contain all switches and core attachments; links and routes are added
// by the router.
func New(top *topology.Topology, opt Options) *Router {
	r := &Router{top: top, opt: opt, minLat: top.Spec.MinLatencyConstraint()}
	if opt.MaxSwitchSize != nil {
		r.maxSz = opt.MaxSwitchSize
	} else {
		r.maxSz = make([]int, top.NumIslands())
		for i := range r.maxSz {
			r.maxSz[i] = top.Lib.MaxSwitchSize(top.IslandFreqHz[i])
		}
	}
	// The candidate graph is complete over the switch set (which is
	// fixed before routing); per-flow admissibility is enforced by the
	// cost function, so the graph is built once.
	n := len(top.Switches)
	r.g = graph.NewDirected(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				r.g.AddEdge(u, v, 1)
			}
		}
	}
	return r
}

// MaxSwitchSizes exposes the per-island bound the router enforces.
func (r *Router) MaxSwitchSizes() []int { return r.maxSz }

// RouteAll routes every flow of the spec in decreasing bandwidth order,
// mutating the topology. On failure the topology is left partially
// routed and the error identifies the first flow that could not be
// placed; callers treat that as "design point invalid".
func (r *Router) RouteAll() error {
	for _, f := range r.top.Spec.SortFlowsByBandwidth() {
		if err := r.Route(f); err != nil {
			return err
		}
	}
	return nil
}

// Route finds and commits a path for one flow.
func (r *Router) Route(f soc.Flow) error {
	src := r.top.SwitchOf[f.Src]
	dst := r.top.SwitchOf[f.Dst]
	if src < 0 || dst < 0 {
		return fmt.Errorf("route: flow %d->%d has unattached endpoint", f.Src, f.Dst)
	}
	if src == dst {
		return r.top.AddRoute(topology.Route{Flow: f, Switches: []topology.SwitchID{src}})
	}
	// First attempt: blended power+latency cost; fall back to a pure
	// latency objective when the cheap path misses the constraint.
	path := r.shortest(f, src, dst, false)
	if path != nil && !r.latencyOK(f, path) {
		path = nil
	}
	if path == nil {
		path = r.shortest(f, src, dst, true)
		if path != nil && !r.latencyOK(f, path) {
			path = nil
		}
	}
	if path == nil {
		lat := "unconstrained"
		if f.MaxLatencyCycles > 0 {
			lat = fmt.Sprintf("lat<=%.0f", f.MaxLatencyCycles)
		}
		return fmt.Errorf("route: no feasible path for flow %d->%d (%.0f MB/s, %s)",
			f.Src, f.Dst, f.BandwidthBps/1e6, lat)
	}
	return r.commit(f, path)
}

// allowed reports whether the directed candidate edge u->v may be used
// by a flow travelling from srcIsl to dstIsl.
func (r *Router) allowed(u, v topology.SwitchID, srcIsl, dstIsl soc.IslandID) bool {
	iu := r.top.Switches[u].Island
	iv := r.top.Switches[v].Island
	mid := r.top.NoCIsland
	in := func(i soc.IslandID) bool { return i == srcIsl || i == dstIsl || (mid != soc.NoIsland && i == mid) }
	if !in(iu) || !in(iv) {
		return false
	}
	if iu == iv {
		return true
	}
	switch {
	case iu == srcIsl && (iv == dstIsl || iv == mid):
		return true
	case iu == mid && iv == dstIsl:
		return true
	}
	return false
}

// hopLatency returns the zero-load cycles added by traversing candidate
// edge u->v (the downstream switch, the link, and the converter when the
// edge crosses islands).
func (r *Router) hopLatency(u, v topology.SwitchID) float64 {
	lat := model.SwitchTraversalCycles + model.LinkTraversalCycles
	if r.top.Switches[u].Island != r.top.Switches[v].Island {
		lat += model.FIFOCrossingCycles
	}
	return lat
}

// edgeCost prices candidate edge u->v for a flow of bandwidth bw. It
// returns +Inf when the edge is unusable (capacity or switch size).
// latOnly selects the pure-latency fallback objective.
func (r *Router) edgeCost(u, v topology.SwitchID, f soc.Flow, latOnly bool) float64 {
	lib := r.top.Lib
	su, sv := &r.top.Switches[u], &r.top.Switches[v]
	crossing := su.Island != sv.Island
	bw := f.BandwidthBps

	lid, exists := r.top.FindLink(u, v)
	var pressure float64
	if exists {
		l := r.top.Links[lid]
		if l.TrafficBps+bw > l.CapacityBps*(1+1e-9) {
			return graph.Inf
		}
		if r.opt.BalanceLoad && l.CapacityBps > 0 {
			u := (l.TrafficBps + bw) / l.CapacityBps
			pressure = u * u // quadratic: near-full links repel strongly
		}
	} else if r.opt.NoNewLinks {
		return graph.Inf
	} else {
		// Opening u->v adds an output port at u and an input port at v.
		inU, outU := r.top.SwitchPorts(u)
		inV, outV := r.top.SwitchPorts(v)
		if max(inU, outU+1) > r.maxSz[su.Island] || max(inV+1, outV) > r.maxSz[sv.Island] {
			return graph.Inf
		}
		minF := math.Min(su.FreqHz, sv.FreqHz)
		if bw > lib.LinkCapacityBps(minF)*(1+1e-9) {
			return graph.Inf
		}
	}

	if latOnly {
		return r.hopLatency(u, v)
	}

	// Marginal power of carrying the flow over this hop.
	vMax := math.Max(su.VoltageV, sv.VoltageV)
	eBit := lib.SwitchEnergyBase + lib.SwitchEnergyPerPort*float64(r.top.SwitchSize(v))
	power := bw * 8 * eBit * lib.VoltageScaleDynamic(sv.VoltageV)
	power += lib.LinkDynPowerW(r.opt.estLen(), vMax, bw)
	if crossing {
		power += lib.FIFODynPowerW(su.VoltageV, sv.VoltageV, bw)
	}
	if !exists {
		// One-time cost of the new link: port idle power at both ends,
		// port + wire leakage, converter leakage when crossing.
		power += lib.SwitchIdlePerPortHz * (su.FreqHz + sv.FreqHz) * lib.VoltageScaleDynamic(vMax)
		power += lib.SwitchLeakPowerW(1, su.VoltageV) + lib.SwitchLeakPowerW(1, sv.VoltageV)
		power += lib.LinkLeakPowerW(r.opt.estLen(), vMax)
		if crossing {
			power += lib.FIFOLeakPowerW(su.VoltageV, sv.VoltageV)
		}
	}

	// Latency pressure: tighter-constrained flows pay more per cycle,
	// steering them onto shorter paths.
	tightness := 0.0
	if f.MaxLatencyCycles > 0 && r.minLat > 0 {
		tightness = r.minLat / f.MaxLatencyCycles
	}
	return power*(1+pressure) + r.opt.latW()*tightness*r.hopLatency(u, v)
}

// shortest runs Dijkstra over the candidate switch graph for the flow.
// It returns the switch path or nil when disconnected.
func (r *Router) shortest(f soc.Flow, src, dst topology.SwitchID, latOnly bool) []topology.SwitchID {
	srcIsl := r.top.Spec.IslandOf[f.Src]
	dstIsl := r.top.Spec.IslandOf[f.Dst]
	cost := func(u, v int, _ float64) float64 {
		if !r.allowed(topology.SwitchID(u), topology.SwitchID(v), srcIsl, dstIsl) {
			return graph.Inf
		}
		return r.edgeCost(topology.SwitchID(u), topology.SwitchID(v), f, latOnly)
	}
	path, c := r.g.ShortestPath(int(src), int(dst), cost)
	if math.IsInf(c, 1) {
		return nil
	}
	out := make([]topology.SwitchID, len(path))
	for i, p := range path {
		out[i] = topology.SwitchID(p)
	}
	return out
}

// latencyOK checks the flow's zero-load latency constraint on a path.
func (r *Router) latencyOK(f soc.Flow, path []topology.SwitchID) bool {
	if f.MaxLatencyCycles <= 0 {
		return true
	}
	lat := 2 * model.LinkTraversalCycles // NI injection + ejection links
	lat += model.SwitchTraversalCycles * float64(len(path))
	for i := 1; i < len(path); i++ {
		lat += model.LinkTraversalCycles
		if r.top.Switches[path[i-1]].Island != r.top.Switches[path[i]].Island {
			lat += model.FIFOCrossingCycles
		}
	}
	return lat <= f.MaxLatencyCycles
}

// commit opens any missing links along the path and records the route.
func (r *Router) commit(f soc.Flow, path []topology.SwitchID) error {
	links := make([]topology.LinkID, 0, len(path)-1)
	for i := 1; i < len(path); i++ {
		lid, ok := r.top.FindLink(path[i-1], path[i])
		if !ok {
			var err error
			lid, err = r.top.AddLink(path[i-1], path[i])
			if err != nil {
				return fmt.Errorf("route: opening link for flow %d->%d: %w", f.Src, f.Dst, err)
			}
		}
		links = append(links, lid)
	}
	return r.top.AddRoute(topology.Route{Flow: f, Switches: path, Links: links})
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
