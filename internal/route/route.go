// Package route implements step 15 of Algorithm 1: computing least-cost
// paths for the inter-switch traffic flows, opening links on demand.
//
// Flows are processed in decreasing bandwidth order. For each flow the
// router runs Dijkstra over the switch graph where every *allowed* switch
// pair is a candidate edge — existing links are priced at their marginal
// power, absent links additionally pay the cost of opening (idle power,
// leakage, and the port they consume). The paper's island discipline
// restricts candidates: a flow from island S to island D may only touch
// switches in S, in D, or in the never-shut-down intermediate NoC island
// M, and may only move "forward" (S→S, S→M, S→D, M→M, M→D, D→D), which
// both bounds latency and guarantees shutdown safety by construction.
//
// A candidate edge is rejected outright when the bandwidth would exceed
// the link capacity or when opening it would grow either endpoint switch
// beyond the island's max_sw_size (the frequency-feasibility bound from
// Algorithm 1 step 1).
package route

import (
	"fmt"
	"math"
	"sync"

	"nocvi/internal/graph"
	"nocvi/internal/model"
	"nocvi/internal/soc"
	"nocvi/internal/topology"
)

// Options tunes the router's cost function.
type Options struct {
	// EstLinkLengthMM is the pre-floorplan estimate of an inter-switch
	// wire length used in the power term. Zero selects 2 mm.
	EstLinkLengthMM float64

	// LatencyWeightW converts one cycle of path latency (scaled by the
	// flow's constraint tightness) into watts for the linear cost
	// combination. Zero selects 1 mW/cycle.
	LatencyWeightW float64

	// MaxSwitchSize optionally overrides the per-island switch size
	// bound (indexed by island ID including the intermediate island).
	// Nil derives the bounds from each island's clock via the library.
	MaxSwitchSize []int

	// NoNewLinks restricts routing to links that already exist in the
	// topology — used to re-route traffic on fabricated silicon (fault
	// recovery analysis), where wires cannot be added.
	NoNewLinks bool

	// BalanceLoad adds a congestion-pressure term to existing links
	// proportional to their projected utilization, spreading traffic
	// over parallel paths instead of piling onto the first cheapest
	// one. Costs a little power (less reuse), buys capacity headroom.
	BalanceLoad bool

	// Survivability requires k additional link-disjoint island-legal
	// routes per multi-hop flow: after every primary route is committed
	// (bit-identical to a k=0 run), the router strips each flow's
	// already-used directed links from the candidate graph and re-routes
	// it k times (iterative strip-and-reroute over the same pooled
	// Dijkstra scratch and deterministic tie-breaks). The alternates are
	// committed as cold-standby Route.Backups — links opened, no traffic
	// accounted. A flow for which no k-th disjoint path exists fails the
	// whole routing, making the candidate design infeasible.
	Survivability int
}

func (o Options) estLen() float64 {
	if o.EstLinkLengthMM <= 0 {
		return 2.0
	}
	return o.EstLinkLengthMM
}

func (o Options) latW() float64 {
	if o.LatencyWeightW <= 0 {
		return 1e-3
	}
	return o.LatencyWeightW
}

// Router routes flows over a topology under construction.
type Router struct {
	top    *topology.Topology
	opt    Options
	maxSz  []int   // per island
	minLat float64 // tightest latency constraint of the spec

	// subs caches one admissible candidate subgraph per (source island,
	// destination island) pair: Dijkstra only ever visits switches in
	// the source, destination and intermediate islands, and the island
	// discipline is encoded in the subgraph's arcs instead of being
	// re-checked inside the per-edge cost closure.
	subs map[islPair]*subgraph

	// free recycles subgraphs across Reset cycles: a reused Router keeps
	// the vertex/rank/local buffers of the previous candidate's
	// subgraphs and refills them instead of allocating. Populated only
	// by Reset, consumed by subgraphFor.
	free []*subgraph

	// scratch is the pooled Dijkstra state, reused across the Router's
	// flows and (through scratchPool) across candidates on a worker.
	scratch *graph.Scratch

	// pathBuf holds the switch path of the current shortest query. It
	// is overwritten by every call and never escapes: commit copies it
	// into topology-owned route storage.
	pathBuf []topology.SwitchID

	// costFn is allocated once; it prices the current query described
	// by curSub/curFlow/latOnly.
	costFn  graph.CostFunc
	curSub  *subgraph
	curFlow soc.Flow
	latOnly bool

	// exclude is the per-query set of directed links the current
	// disjoint-path search must avoid (the flow's primary route plus its
	// already-committed backups). Empty for primary routing, so k=0
	// queries never pay for it. A linear scan: the set holds a few path
	// lengths at most.
	exclude []topology.LinkID
}

// islPair keys the subgraph cache.
type islPair struct{ src, dst soc.IslandID }

// subgraph is the candidate graph restricted to the switches a flow
// between one island pair may touch. verts maps local vertex indices to
// switch IDs in ascending order — so local adjacency order equals the
// global ascending order the complete-graph router used, keeping
// equal-cost tie-breaks identical — and local is the inverse map.
//
// The island discipline (S→S, S→M, S→D, M→M, M→D, D→D) is a total
// preorder on the admissible islands, so the candidate arcs are never
// materialized: rank stores 0 for source-island switches, 1 for
// intermediate, 2 for destination (all 0 when source == destination,
// where every move is legal), and an arc u->v exists exactly when
// rank[u] <= rank[v]. Dijkstra runs over this implicit dense graph.
type subgraph struct {
	verts []topology.SwitchID
	rank  []int8
	local []int32
}

// scratchPool recycles Dijkstra scratch state across Routers: the
// synthesis sweep creates one Router per candidate design point, and
// pooling means each sweep worker re-uses one warm buffer set instead
// of re-allocating per candidate.
var scratchPool = sync.Pool{New: func() any { return new(graph.Scratch) }}

// New creates a router for the given topology. The topology must already
// contain all switches and core attachments; links and routes are added
// by the router.
func New(top *topology.Topology, opt Options) *Router {
	r := &Router{
		top:    top,
		opt:    opt,
		minLat: top.Spec.MinLatencyConstraint(),
		subs:   make(map[islPair]*subgraph),
	}
	if opt.MaxSwitchSize != nil {
		r.maxSz = opt.MaxSwitchSize
	} else {
		r.maxSz = make([]int, top.NumIslands())
		for i := range r.maxSz {
			r.maxSz[i] = top.Lib.MaxSwitchSize(top.IslandFreqHz[i])
		}
	}
	r.costFn = func(u, v int, _ float64) float64 {
		return r.edgeCost(r.curSub.verts[u], r.curSub.verts[v], r.curFlow, r.latOnly)
	}
	return r
}

// Reset re-targets the router at a new topology under the same options,
// recycling the subgraph cache, the per-island size bounds and the cost
// closure of the previous candidate. After Reset the router behaves
// exactly like New(top, opt) with the original opt: the synthesis
// arena's identity guarantee rests on that equivalence.
func (r *Router) Reset(top *topology.Topology) {
	r.top = top
	r.minLat = top.Spec.MinLatencyConstraint()
	if r.opt.MaxSwitchSize != nil {
		r.maxSz = r.opt.MaxSwitchSize
	} else {
		n := top.NumIslands()
		if cap(r.maxSz) < n {
			r.maxSz = make([]int, n)
		}
		r.maxSz = r.maxSz[:n]
		for i := range r.maxSz {
			r.maxSz[i] = top.Lib.MaxSwitchSize(top.IslandFreqHz[i])
		}
	}
	//noclint:ignore maprange freelist harvest order is invisible: subgraphFor fully refills a recycled subgraph, so any order yields identical routing
	for _, s := range r.subs {
		r.free = append(r.free, s)
	}
	clear(r.subs)
}

// SetScratch pins caller-owned Dijkstra scratch state to the router,
// bypassing the shared pool: RouteAll then neither borrows nor returns
// pooled state. Workers of the synthesis sweep own one scratch each and
// pin it so repeated candidates never touch the pool's lock.
func (r *Router) SetScratch(sc *graph.Scratch) { r.scratch = sc }

// subgraphFor returns (building and caching on first use) the
// admissible subgraph for flows from srcIsl to dstIsl. The switch set
// is fixed before routing starts, so a cached subgraph stays valid for
// the Router's lifetime; only edge costs change as links open.
func (r *Router) subgraphFor(srcIsl, dstIsl soc.IslandID) *subgraph {
	key := islPair{src: srcIsl, dst: dstIsl}
	if s, ok := r.subs[key]; ok {
		return s
	}
	top := r.top
	mid := top.NoCIsland
	n := len(top.Switches)
	var s *subgraph
	if k := len(r.free); k > 0 {
		s = r.free[k-1]
		r.free = r.free[:k-1]
		s.verts = s.verts[:0]
		s.rank = s.rank[:0]
		if cap(s.local) < n {
			s.local = make([]int32, n)
		}
		s.local = s.local[:n]
	} else {
		s = &subgraph{local: make([]int32, n)}
	}
	for i := range s.local {
		s.local[i] = -1
	}
	for i := 0; i < n; i++ {
		isl := top.Switches[i].Island
		if isl != srcIsl && isl != dstIsl && (mid == soc.NoIsland || isl != mid) {
			continue
		}
		var rk int8
		switch {
		case srcIsl == dstIsl:
			rk = 0 // S == D: every admissible move is legal
		case isl == srcIsl:
			rk = 0
		case isl == dstIsl:
			rk = 2
		default:
			rk = 1 // intermediate island
		}
		s.local[i] = int32(len(s.verts))
		s.verts = append(s.verts, topology.SwitchID(i))
		s.rank = append(s.rank, rk)
	}
	r.subs[key] = s
	return s
}

// MaxSwitchSizes exposes the per-island bound the router enforces.
func (r *Router) MaxSwitchSizes() []int { return r.maxSz }

// RouteAll routes every flow of the spec in decreasing bandwidth order,
// mutating the topology. On failure the topology is left partially
// routed and the error identifies the first flow that could not be
// placed; callers treat that as "design point invalid". The Dijkstra
// scratch state is borrowed from the pool for the duration of the call
// and returned when it completes, whatever the outcome.
func (r *Router) RouteAll() error {
	return r.RouteFlows(r.top.Spec.SortFlowsByBandwidth())
}

// RouteFlows routes the given flows in order. The slice must hold the
// spec's flows in decreasing-bandwidth order (SortFlowsByBandwidth);
// sweeps that evaluate many candidates of one spec sort once and pass
// the shared slice, skipping the per-candidate copy and sort.
func (r *Router) RouteFlows(flows []soc.Flow) error {
	if r.scratch == nil {
		r.scratch = scratchPool.Get().(*graph.Scratch)
		defer func() {
			scratchPool.Put(r.scratch)
			r.scratch = nil
		}()
	}
	for _, f := range flows {
		if err := r.Route(f); err != nil {
			return err
		}
	}
	if r.opt.Survivability > 0 {
		return r.routeBackups(r.opt.Survivability)
	}
	return nil
}

// Route finds and commits a path for one flow.
func (r *Router) Route(f soc.Flow) error {
	src := r.top.SwitchOf[f.Src]
	dst := r.top.SwitchOf[f.Dst]
	if src < 0 || dst < 0 {
		return fmt.Errorf("route: flow %d->%d has unattached endpoint", f.Src, f.Dst)
	}
	if src == dst {
		sw := r.top.TakeRouteSwitches(1)
		sw[0] = src
		return r.top.AddRoute(topology.Route{Flow: f, Switches: sw})
	}
	// First attempt: blended power+latency cost; fall back to a pure
	// latency objective when the cheap path misses the constraint.
	path := r.shortest(f, src, dst, false)
	if path != nil && !r.latencyOK(f, path) {
		path = nil
	}
	if path == nil {
		path = r.shortest(f, src, dst, true)
		if path != nil && !r.latencyOK(f, path) {
			path = nil
		}
	}
	if path == nil {
		lat := "unconstrained"
		if f.MaxLatencyCycles > 0 {
			//noclint:ignore bannedcall error-path message formatting, not a cache key
			lat = fmt.Sprintf("lat<=%.0f", f.MaxLatencyCycles)
		}
		return fmt.Errorf("route: no feasible path for flow %d->%d (%.0f MB/s, %s)",
			f.Src, f.Dst, f.BandwidthBps/1e6, lat)
	}
	return r.commit(f, path)
}

// routeBackups runs the survivability pass: for every committed
// multi-hop route, in commit order, find and commit k additional
// link-disjoint paths by iterative strip-and-reroute — each search
// excludes the directed links of the flow's primary route and of the
// backups committed so far, then reuses the ordinary blended-cost
// search over the same admissible island subgraph. Backups are held to
// island legality, capacity and disjointness but NOT to the flow's
// zero-load latency budget: a backup is a degraded-mode standby whose
// job is keeping the flow connected under a fault, and an
// island-crossing detour structurally pays at least one extra
// bi-synchronous FIFO crossing, which would make every tightly
// constrained crossing flow unprotectable. Single-switch routes have no
// link a fault could sever and are skipped. The pass runs strictly
// after all primaries, so primary routes — and with them every
// k=0-visible metric — are bit-identical to a run without
// survivability.
func (r *Router) routeBackups(k int) error {
	defer func() { r.exclude = r.exclude[:0] }()
	for ri := 0; ri < len(r.top.Routes); ri++ {
		for b := 0; b < k; b++ {
			rt := &r.top.Routes[ri]
			if len(rt.Links) == 0 {
				break // single-switch route: nothing to protect
			}
			r.exclude = append(r.exclude[:0], rt.Links...)
			for bi := range rt.Backups {
				r.exclude = append(r.exclude, rt.Backups[bi].Links...)
			}
			f := rt.Flow
			src := rt.Switches[0]
			dst := rt.Switches[len(rt.Switches)-1]
			path := r.shortest(f, src, dst, false)
			if path == nil {
				return fmt.Errorf("route: no disjoint backup %d/%d for flow %d->%d (survivability %d)",
					b+1, k, f.Src, f.Dst, k)
			}
			if err := r.commitBackup(ri, path); err != nil {
				return err
			}
		}
	}
	return nil
}

// commitBackup opens any missing links along a backup path and records
// it cold on route ri: AddBackup accounts no traffic, so the primary
// metrics are untouched.
func (r *Router) commitBackup(ri int, path []topology.SwitchID) error {
	f := r.top.Routes[ri].Flow
	links := r.top.TakeRouteLinks(len(path) - 1)
	for i := 1; i < len(path); i++ {
		lid, err := r.top.EnsureLink(path[i-1], path[i])
		if err != nil {
			return fmt.Errorf("route: opening backup link for flow %d->%d: %w", f.Src, f.Dst, err)
		}
		links[i-1] = lid
	}
	sw := r.top.TakeRouteSwitches(len(path))
	copy(sw, path)
	return r.top.AddBackup(ri, topology.Path{Switches: sw, Links: links})
}

// allowed reports whether the directed candidate edge u->v may be used
// by a flow travelling from srcIsl to dstIsl. The subgraph builder
// encodes this predicate into the candidate arcs, so the routing inner
// loop never evaluates it per relaxation.
func (r *Router) allowed(u, v topology.SwitchID, srcIsl, dstIsl soc.IslandID) bool {
	return allowedIslands(r.top.Switches[u].Island, r.top.Switches[v].Island,
		srcIsl, dstIsl, r.top.NoCIsland)
}

// allowedIslands is the island-level forward discipline: a flow may
// only move S→S, S→M, S→D, M→M, M→D or D→D, which bounds latency and
// makes island shutdown safe by construction.
func allowedIslands(iu, iv, srcIsl, dstIsl, mid soc.IslandID) bool {
	in := func(i soc.IslandID) bool { return i == srcIsl || i == dstIsl || (mid != soc.NoIsland && i == mid) }
	if !in(iu) || !in(iv) {
		return false
	}
	if iu == iv {
		return true
	}
	switch {
	case iu == srcIsl && (iv == dstIsl || iv == mid):
		return true
	case iu == mid && iv == dstIsl:
		return true
	}
	return false
}

// hopLatency returns the zero-load cycles added by traversing candidate
// edge u->v (the downstream switch, the link, and the converter when the
// edge crosses islands).
func (r *Router) hopLatency(u, v topology.SwitchID) float64 {
	lat := model.SwitchTraversalCycles + model.LinkTraversalCycles
	if r.top.Switches[u].Island != r.top.Switches[v].Island {
		lat += model.FIFOCrossingCycles
	}
	return lat
}

// edgeCost prices candidate edge u->v for a flow of bandwidth bw. It
// returns +Inf when the edge is unusable (capacity or switch size).
// latOnly selects the pure-latency fallback objective.
func (r *Router) edgeCost(u, v topology.SwitchID, f soc.Flow, latOnly bool) float64 {
	lib := r.top.Lib
	su, sv := &r.top.Switches[u], &r.top.Switches[v]
	crossing := su.Island != sv.Island
	bw := f.BandwidthBps

	lid, exists := r.top.FindLink(u, v)
	var pressure float64
	if exists {
		for _, ex := range r.exclude {
			if ex == lid {
				return graph.Inf // disjoint-path search: link already used by this flow
			}
		}
		l := r.top.Links[lid]
		if l.TrafficBps+bw > l.CapacityBps*(1+1e-9) {
			return graph.Inf
		}
		if r.opt.BalanceLoad && l.CapacityBps > 0 {
			u := (l.TrafficBps + bw) / l.CapacityBps
			pressure = u * u // quadratic: near-full links repel strongly
		}
	} else if r.opt.NoNewLinks {
		return graph.Inf
	} else {
		// Opening u->v adds an output port at u and an input port at v.
		inU, outU := r.top.SwitchPorts(u)
		inV, outV := r.top.SwitchPorts(v)
		if max(inU, outU+1) > r.maxSz[su.Island] || max(inV+1, outV) > r.maxSz[sv.Island] {
			return graph.Inf
		}
		minF := math.Min(su.FreqHz, sv.FreqHz)
		if bw > lib.LinkCapacityBps(minF)*(1+1e-9) {
			return graph.Inf
		}
	}

	if latOnly {
		return r.hopLatency(u, v)
	}

	// Marginal power of carrying the flow over this hop.
	vMax := math.Max(su.VoltageV, sv.VoltageV)
	eBit := lib.SwitchEnergyBase + lib.SwitchEnergyPerPort*float64(r.top.SwitchSize(v))
	power := bw * 8 * eBit * lib.VoltageScaleDynamic(sv.VoltageV)
	power += lib.LinkDynPowerW(r.opt.estLen(), vMax, bw)
	if crossing {
		power += lib.FIFODynPowerW(su.VoltageV, sv.VoltageV, bw)
	}
	if !exists {
		// One-time cost of the new link: port idle power at both ends,
		// port + wire leakage, converter leakage when crossing.
		power += lib.SwitchIdlePerPortHz * (su.FreqHz + sv.FreqHz) * lib.VoltageScaleDynamic(vMax)
		power += lib.SwitchLeakPowerW(1, su.VoltageV) + lib.SwitchLeakPowerW(1, sv.VoltageV)
		power += lib.LinkLeakPowerW(r.opt.estLen(), vMax)
		if crossing {
			power += lib.FIFOLeakPowerW(su.VoltageV, sv.VoltageV)
		}
	}

	// Latency pressure: tighter-constrained flows pay more per cycle,
	// steering them onto shorter paths.
	tightness := 0.0
	if f.MaxLatencyCycles > 0 && r.minLat > 0 {
		tightness = r.minLat / f.MaxLatencyCycles
	}
	return power*(1+pressure) + r.opt.latW()*tightness*r.hopLatency(u, v)
}

// shortest runs Dijkstra over the flow's admissible subgraph. It
// returns the switch path or nil when disconnected.
func (r *Router) shortest(f soc.Flow, src, dst topology.SwitchID, latOnly bool) []topology.SwitchID {
	sub := r.subgraphFor(r.top.Spec.IslandOf[f.Src], r.top.Spec.IslandOf[f.Dst])
	ls, ld := sub.local[src], sub.local[dst]
	if ls < 0 || ld < 0 {
		return nil // endpoint switch outside the admissible islands
	}
	if r.scratch == nil {
		r.scratch = scratchPool.Get().(*graph.Scratch)
	}
	r.curSub, r.curFlow, r.latOnly = sub, f, latOnly
	path, c := r.scratch.ShortestPathDense(len(sub.verts), sub.rank, int(ls), int(ld), r.costFn)
	if math.IsInf(c, 1) {
		return nil
	}
	out := r.pathBuf[:0]
	for _, p := range path {
		out = append(out, sub.verts[p])
	}
	r.pathBuf = out
	return out
}

// MinZeroLoadLatencyCycles returns the smallest zero-load latency any
// route can achieve under the timing model: NI injection and ejection
// links plus one switch traversal, plus one hop when source and
// destination cannot share a switch (they sit on different switches or
// in different islands), plus one FIFO crossing when they sit in
// different islands (a detour through the intermediate island only adds
// hops and crossings). It is the admissible per-flow latency bound the
// branch-and-bound layer (internal/core/bounds.go) sums, and the floor
// below which a flow's MaxLatencyCycles is provably unsatisfiable.
func MinZeroLoadLatencyCycles(crossesSwitches, crossesIslands bool) float64 {
	lat := 2*model.LinkTraversalCycles + model.SwitchTraversalCycles
	if crossesSwitches || crossesIslands {
		lat += model.SwitchTraversalCycles + model.LinkTraversalCycles
	}
	if crossesIslands {
		lat += model.FIFOCrossingCycles
	}
	return lat
}

// latencyOK checks the flow's zero-load latency constraint on a path.
func (r *Router) latencyOK(f soc.Flow, path []topology.SwitchID) bool {
	if f.MaxLatencyCycles <= 0 {
		return true
	}
	lat := 2 * model.LinkTraversalCycles // NI injection + ejection links
	lat += model.SwitchTraversalCycles * float64(len(path))
	for i := 1; i < len(path); i++ {
		lat += model.LinkTraversalCycles
		if r.top.Switches[path[i-1]].Island != r.top.Switches[path[i]].Island {
			lat += model.FIFOCrossingCycles
		}
	}
	return lat <= f.MaxLatencyCycles
}

// commit opens any missing links along the path and records the route.
// The path (typically the router's reusable pathBuf) is copied into
// topology-owned storage, so the route survives the next query.
func (r *Router) commit(f soc.Flow, path []topology.SwitchID) error {
	links := r.top.TakeRouteLinks(len(path) - 1)
	for i := 1; i < len(path); i++ {
		lid, err := r.top.EnsureLink(path[i-1], path[i])
		if err != nil {
			return fmt.Errorf("route: opening link for flow %d->%d: %w", f.Src, f.Dst, err)
		}
		links[i-1] = lid
	}
	sw := r.top.TakeRouteSwitches(len(path))
	copy(sw, path)
	return r.top.AddRoute(topology.Route{Flow: f, Switches: sw, Links: links})
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
