// Brute-force oracle for the survivability pass: the router's backup
// routes are checked against an exhaustive simple-path enumeration that
// shares no code with the machinery under test — adjacency rebuilt from
// the exported Links slice, the island forward discipline re-derived
// from first principles, disjointness checked with a plain ownership
// map. The oracle proves three things the strip-and-reroute search
// claims: every backup is a simple island-legal path over real links,
// the primary and its backups are pairwise directed-link-disjoint, and
// a design the router rejects for want of a disjoint path really has
// none (the single-link-cut test, where the full path set is known).
package route_test

import (
	"fmt"
	"strings"
	"testing"

	"nocvi/internal/bench"
	"nocvi/internal/model"
	"nocvi/internal/route"
	"nocvi/internal/skeleton"
	"nocvi/internal/soc"
	"nocvi/internal/specgen"
	"nocvi/internal/topology"
)

// oracleLegalMove re-derives the island forward discipline (S→S, S→M,
// S→D, M→M, M→D, D→D) without consulting the router's subgraph ranks.
func oracleLegalMove(top *topology.Topology, u, v topology.SwitchID, srcIsl, dstIsl soc.IslandID) bool {
	mid := top.NoCIsland
	iu, iv := top.Switches[u].Island, top.Switches[v].Island
	in := func(i soc.IslandID) bool { return i == srcIsl || i == dstIsl || (mid != soc.NoIsland && i == mid) }
	if !in(iu) || !in(iv) {
		return false
	}
	if iu == iv {
		return true
	}
	switch {
	case iu == srcIsl && (iv == dstIsl || iv == mid):
		return true
	case iu == mid && iv == dstIsl:
		return true
	}
	return false
}

// oracleEnumLimit caps the DFS: the admissible sub-topologies here hold
// a few dozen links, so hitting the cap means the enumerator is broken,
// not that the design is large.
const oracleEnumLimit = 200000

// enumerateLegalPaths lists every simple island-legal directed path
// from src to dst over the topology's existing links, each path as its
// link-ID sequence.
func enumerateLegalPaths(t *testing.T, top *topology.Topology, srcIsl, dstIsl soc.IslandID, src, dst topology.SwitchID) [][]topology.LinkID {
	t.Helper()
	adj := make(map[topology.SwitchID][]topology.Link)
	for _, l := range top.Links {
		adj[l.From] = append(adj[l.From], l)
	}
	var (
		out     [][]topology.LinkID
		stack   []topology.LinkID
		visited = map[topology.SwitchID]bool{src: true}
		walk    func(u topology.SwitchID)
	)
	walk = func(u topology.SwitchID) {
		if u == dst {
			out = append(out, append([]topology.LinkID(nil), stack...))
			if len(out) > oracleEnumLimit {
				t.Fatalf("oracle enumeration exceeded %d paths", oracleEnumLimit)
			}
			return
		}
		for _, l := range adj[u] {
			if visited[l.To] || !oracleLegalMove(top, u, l.To, srcIsl, dstIsl) {
				continue
			}
			visited[l.To] = true
			stack = append(stack, l.ID)
			walk(l.To)
			stack = stack[:len(stack)-1]
			visited[l.To] = false
		}
	}
	walk(src)
	return out
}

func pathKey(links []topology.LinkID) string {
	var b strings.Builder
	for _, l := range links {
		fmt.Fprintf(&b, "%d,", l)
	}
	return b.String()
}

// checkBackupsAgainstOracle verifies one routed topology's survivability
// structure against the enumeration and returns how many multi-hop
// routes were protected.
func checkBackupsAgainstOracle(t *testing.T, label string, top *topology.Topology, k int) int {
	t.Helper()
	if err := top.ValidateSurvivable(k); err != nil {
		t.Fatalf("%s: ValidateSurvivable(%d): %v", label, k, err)
	}
	protected := 0
	for ri := range top.Routes {
		r := &top.Routes[ri]
		if len(r.Links) == 0 {
			if len(r.Backups) != 0 {
				t.Fatalf("%s: single-switch route %d carries %d backups", label, ri, len(r.Backups))
			}
			continue
		}
		protected++
		if len(r.Backups) < k {
			t.Fatalf("%s: route %d has %d backups, want >= %d", label, ri, len(r.Backups), k)
		}
		srcIsl := top.Spec.IslandOf[r.Flow.Src]
		dstIsl := top.Spec.IslandOf[r.Flow.Dst]
		src, dst := r.Switches[0], r.Switches[len(r.Switches)-1]
		legal := make(map[string]bool)
		for _, p := range enumerateLegalPaths(t, top, srcIsl, dstIsl, src, dst) {
			legal[pathKey(p)] = true
		}
		if !legal[pathKey(r.Links)] {
			t.Fatalf("%s: route %d primary %v is not in the oracle's legal path set", label, ri, r.Links)
		}
		owner := map[topology.LinkID]int{}
		for _, lid := range r.Links {
			owner[lid] = -1
		}
		for bi := range r.Backups {
			b := &r.Backups[bi]
			if !legal[pathKey(b.Links)] {
				t.Fatalf("%s: route %d backup %d %v is not a simple island-legal path over existing links",
					label, ri, bi, b.Links)
			}
			for _, lid := range b.Links {
				if prev, dup := owner[lid]; dup {
					t.Fatalf("%s: route %d backup %d shares link %d with path %d",
						label, ri, bi, lid, prev)
				}
				owner[lid] = bi
			}
			// Every primary-link fault must leave this flow a fault-free
			// standby: with k backups disjoint from the primary and from
			// each other, each backup survives any single primary-link cut.
			if b.Switches[0] != src || b.Switches[len(b.Switches)-1] != dst {
				t.Fatalf("%s: route %d backup %d endpoints %v do not match primary %v→%v",
					label, ri, bi, b.Switches, src, dst)
			}
		}
	}
	return protected
}

// routeSurvivable builds the skeleton and routes it at survivability k,
// returning the topology or nil when the router reports infeasibility
// (which the suite tolerates for tight shapes — the sweep layer's job is
// to try other candidates).
func routeSurvivable(t *testing.T, label string, spec *soc.Spec, lib *model.Library, extra, mid, k int) *topology.Topology {
	t.Helper()
	top, err := skeleton.Build(spec, lib, extra, mid)
	if err != nil {
		t.Fatalf("%s: skeleton: %v", label, err)
	}
	err = route.New(top, route.Options{Survivability: k}).RouteAll()
	if err != nil {
		if !strings.Contains(err.Error(), "no disjoint backup") &&
			!strings.Contains(err.Error(), "no feasible path") &&
			!strings.Contains(err.Error(), "opening backup link") {
			t.Fatalf("%s: unexpected routing failure: %v", label, err)
		}
		return nil
	}
	return top
}

// TestSurvivableBackupsMatchOracleSuite runs the oracle over every
// bundled benchmark across skeleton shapes and survivability degrees.
func TestSurvivableBackupsMatchOracleSuite(t *testing.T) {
	lib := model.Default65nm()
	protected := 0
	for _, name := range bench.Names() {
		spec, err := bench.Islanded(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, mid := range []int{0, 2} {
			for _, k := range []int{1, 2} {
				label := fmt.Sprintf("%s/mid=%d/k=%d", name, mid, k)
				top := routeSurvivable(t, label, spec, lib, 1, mid, k)
				if top == nil {
					continue
				}
				protected += checkBackupsAgainstOracle(t, label, top, k)
			}
		}
	}
	if protected == 0 {
		t.Fatal("no multi-hop route was protected anywhere in the suite — oracle never exercised")
	}
}

// TestSurvivableBackupsMatchOracleRandom fans the oracle over the same
// 24-seed specgen population the routing-equivalence proof uses.
func TestSurvivableBackupsMatchOracleRandom(t *testing.T) {
	lib := model.Default65nm()
	protected := 0
	for seed := int64(1); seed <= 24; seed++ {
		spec := specgen.Random(seed, specgen.Options{
			MaxCores:   10 + int(seed%3)*12, // 10, 22, 34
			MaxIslands: 2 + int(seed%5),     // 2..6
		})
		mid := int(seed % 3)
		label := fmt.Sprintf("seed=%d/cores=%d/mid=%d", seed, len(spec.Cores), mid)
		top := routeSurvivable(t, label, spec, lib, 1, mid, 1)
		if top == nil {
			continue
		}
		protected += checkBackupsAgainstOracle(t, label, top, 1)
	}
	if protected == 0 {
		t.Fatal("no specgen route was protected — oracle never exercised")
	}
}

// TestSurvivabilityPrimariesInvariant pins the k=0 identity half of the
// contract: adding backups must not move a single primary route or
// primary link — the backup pass runs strictly after all primaries.
func TestSurvivabilityPrimariesInvariant(t *testing.T) {
	lib := model.Default65nm()
	for _, name := range bench.Names() {
		spec, err := bench.Islanded(name)
		if err != nil {
			t.Fatal(err)
		}
		base, err := skeleton.Build(spec, lib, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := route.New(base, route.Options{}).RouteAll(); err != nil {
			t.Fatalf("%s: k=0 routing failed: %v", name, err)
		}
		surv := routeSurvivable(t, name, spec, lib, 1, 2, 1)
		if surv == nil {
			continue
		}
		if len(surv.Routes) != len(base.Routes) {
			t.Fatalf("%s: %d routes at k=1 vs %d at k=0", name, len(surv.Routes), len(base.Routes))
		}
		for i := range base.Routes {
			a, b := &base.Routes[i], &surv.Routes[i]
			if a.Flow != b.Flow || pathKey(a.Links) != pathKey(b.Links) {
				t.Fatalf("%s: primary route %d moved under survivability", name, i)
			}
		}
		// The k=0 link set must be a prefix of the k=1 set with identical
		// traffic: backups may only append links, never touch existing ones.
		if len(surv.Links) < len(base.Links) {
			t.Fatalf("%s: k=1 dropped links: %d vs %d", name, len(surv.Links), len(base.Links))
		}
		for i := range base.Links {
			a, b := base.Links[i], surv.Links[i]
			if a.ID != b.ID || a.From != b.From || a.To != b.To || a.TrafficBps != b.TrafficBps {
				t.Fatalf("%s: link %d perturbed by the backup pass:\n  k=0: %+v\n  k=1: %+v", name, i, a, b)
			}
		}
	}
}

// cutSpec is the degenerate single-link-cut instance: two cores in two
// one-core islands, no intermediate island. Every skeleton has exactly
// one switch per island, so the flow's only island-legal path is the
// single direct link — a second link-disjoint route cannot exist.
func cutSpec() *soc.Spec {
	mk := func(id int, name string) soc.Core {
		return soc.Core{ID: soc.CoreID(id), Name: name, Class: soc.ClassCPU,
			AreaMM2: 2, DynPowerW: 0.1, LeakPowerW: 0.02}
	}
	return &soc.Spec{
		Name:  "cut2",
		Cores: []soc.Core{mk(0, "a"), mk(1, "b")},
		Flows: []soc.Flow{{Src: 0, Dst: 1, BandwidthBps: 100e6}},
		Islands: []soc.Island{
			{ID: 0, Name: "va", VoltageV: 1.0},
			{ID: 1, Name: "vb", VoltageV: 1.0, Shutdownable: true},
		},
		IslandOf: []soc.IslandID{0, 1},
	}
}

// TestSingleLinkCutBackupInfeasible: the router must reject the
// degenerate instance with a clean diagnostic — no panic, no bogus
// backup — and the oracle confirms the rejection: exactly one simple
// island-legal path exists, so no disjoint second route ever could.
func TestSingleLinkCutBackupInfeasible(t *testing.T) {
	lib := model.Default65nm()
	top, err := skeleton.Build(cutSpec(), lib, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	err = route.New(top, route.Options{Survivability: 1}).RouteAll()
	if err == nil {
		t.Fatal("single-link-cut spec routed with a backup that cannot exist")
	}
	if !strings.Contains(err.Error(), "no disjoint backup 1/1") {
		t.Fatalf("wrong diagnostic: %v", err)
	}
	// The primary was committed before the backup pass failed; the oracle
	// sees exactly that one path and nothing else.
	r := &top.Routes[0]
	paths := enumerateLegalPaths(t, top,
		top.Spec.IslandOf[r.Flow.Src], top.Spec.IslandOf[r.Flow.Dst],
		r.Switches[0], r.Switches[len(r.Switches)-1])
	if len(paths) != 1 || pathKey(paths[0]) != pathKey(r.Links) {
		t.Fatalf("oracle disagrees with the router: %d legal paths %v, primary %v",
			len(paths), paths, r.Links)
	}
}
