package cliflags

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCampaignRegistersSharedTrio(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := Campaign(fs)
	if c.Wanted() {
		t.Fatal("freshly registered flags already want a campaign")
	}
	if err := fs.Parse([]string{"-campaign-json", "out.json", "-campaign-states", "7"}); err != nil {
		t.Fatal(err)
	}
	if c.Run || c.States != 7 || c.JSON != "out.json" {
		t.Fatalf("parse mismatch: %+v", c)
	}
	// -campaign-json alone implies a run.
	if !c.Wanted() {
		t.Fatal("a JSON path must imply a campaign run")
	}

	fs2 := flag.NewFlagSet("test2", flag.ContinueOnError)
	c2 := Campaign(fs2)
	if err := fs2.Parse([]string{"-campaign"}); err != nil {
		t.Fatal(err)
	}
	if !c2.Run || !c2.Wanted() {
		t.Fatal("-campaign not honored")
	}

	var nilCamp *CampaignFlags
	if nilCamp.Wanted() {
		t.Fatal("nil receiver wants a campaign")
	}
}

func TestSurviveFlag(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	k := Survive(fs)
	if err := fs.Parse([]string{"-survive", "2"}); err != nil {
		t.Fatal(err)
	}
	if *k != 2 {
		t.Fatalf("survive = %d, want 2", *k)
	}
}

func TestWriteJSON(t *testing.T) {
	c := &CampaignFlags{}
	if err := c.WriteJSON(map[string]int{"x": 1}); err != nil {
		t.Fatalf("empty path must be a no-op, got %v", err)
	}
	c.JSON = filepath.Join(t.TempDir(), "rep.json")
	if err := c.WriteJSON(map[string]int{"x": 1}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(c.JSON)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"x": 1`) || !strings.HasSuffix(string(data), "\n") {
		t.Fatalf("malformed report file: %q", data)
	}
}
