// Package cliflags registers the flags shared by the CLIs
// (cmd/nocsynth, cmd/nocsim, cmd/nocbench). A knob that several
// binaries expose is registered here once — same name, same default,
// same help text — instead of once per main.go, so the binaries cannot
// silently drift apart: the power-state fault-campaign trio and the
// survivability degree live here.
package cliflags

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// CampaignFlags holds the shared -campaign trio after flag parsing.
type CampaignFlags struct {
	// Run mirrors -campaign: run the power-state fault campaign.
	Run bool
	// States mirrors -campaign-states: the power-state cap.
	States int
	// JSON mirrors -campaign-json: where to write the report.
	JSON string
}

// Campaign registers -campaign, -campaign-states and -campaign-json on
// fs (flag.CommandLine in the CLIs) and returns the destination struct,
// populated once fs.Parse has run.
func Campaign(fs *flag.FlagSet) *CampaignFlags {
	c := &CampaignFlags{}
	fs.BoolVar(&c.Run, "campaign", false, "run the power-state fault campaign on the selected design point")
	fs.IntVar(&c.States, "campaign-states", 0, "power-state cap for -campaign (0 = default, sampled above it)")
	fs.StringVar(&c.JSON, "campaign-json", "", "write the -campaign report as JSON to this file")
	return c
}

// Wanted reports whether a campaign run was requested: -campaign
// itself, or -campaign-json (a report file implies a run to produce
// it). A nil receiver never wants one, so callers that assemble their
// config by hand need not allocate the struct.
func (c *CampaignFlags) Wanted() bool { return c != nil && (c.Run || c.JSON != "") }

// WriteJSON writes the campaign report to the -campaign-json path when
// one was given, logging the write the way the CLIs' other artifact
// writers do. A nil error with no path is the no-op case.
func (c *CampaignFlags) WriteJSON(report any) error {
	if c.JSON == "" {
		return nil
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(c.JSON, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("[wrote %s]\n", c.JSON)
	return nil
}

// Survive registers the shared -survive flag and returns its
// destination: the survivability degree k. Every flow is synthesized
// with k extra link-disjoint island-legal backup routes, so any single
// link failure (k=1) is absorbed by activating a pre-provisioned
// standby route — zero re-routing at fault time.
func Survive(fs *flag.FlagSet) *int {
	return fs.Int("survive", 0, "survivability degree k: synthesize k link-disjoint backup routes per flow (0 = off)")
}
