// Package num holds the tolerance helpers the engine's constraint
// checks compare floats with. Exact ==/!= between floats flips on the
// last ulp of an accumulation — and the synthesis argmin then picks a
// different design point on different hardware — so the floateq
// analyzer (internal/analysis) flags exact comparisons and points
// here. The helpers use a relative-plus-absolute tolerance: two values
// are close when they differ by at most Eps scaled by the larger
// magnitude, with a floor of Eps near zero.
package num

import "math"

// Eps is the default comparison tolerance. It matches the 1e-9
// headroom factor the bandwidth-capacity checks in route, mesh and
// verify have always used (capacity*(1+1e-9)).
const Eps = 1e-9

// scale returns the tolerance magnitude for comparing a and b:
// Eps relative to the larger magnitude, never below Eps itself.
func scale(a, b float64) float64 {
	m := math.Abs(a)
	if ab := math.Abs(b); ab > m {
		m = ab
	}
	if m < 1 {
		m = 1
	}
	return Eps * m
}

// AlmostEq reports a == b within the default tolerance.
func AlmostEq(a, b float64) bool { return math.Abs(a-b) <= scale(a, b) }

// Within reports |a-b| <= tol, an explicit absolute tolerance.
func Within(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// Leq reports a <= b within the default tolerance: a may exceed b by
// the comparison scale before it counts as greater. For b > 0 this is
// the same headroom as the long-standing a <= b*(1+Eps) capacity
// idiom, extended to behave sanely at and below zero.
func Leq(a, b float64) bool { return a <= b+scale(a, b) }

// Geq reports a >= b within the default tolerance.
func Geq(a, b float64) bool { return Leq(b, a) }
