package num

import (
	"math"
	"testing"
)

func TestAlmostEq(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{1, 1, true},
		{0, 0, true},
		{1, 1 + 1e-12, true},      // inside tolerance
		{1, 1 + 1e-6, false},      // outside tolerance
		{1e12, 1e12 + 100, true},  // relative scaling: 100 << 1e12*Eps
		{1e12, 1e12 + 1e4, false}, // 1e4 > 1e12*Eps
		{0, 1e-12, true},          // absolute floor near zero
		{0, 1e-6, false},
		{-1, 1, false},
		{math.Inf(1), math.Inf(1), false}, // inf-inf is NaN; not equal
	}
	for _, c := range cases {
		if got := AlmostEq(c.a, c.b); got != c.want {
			t.Errorf("AlmostEq(%g, %g) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := AlmostEq(c.b, c.a); got != c.want {
			t.Errorf("AlmostEq(%g, %g) = %v, want %v (not symmetric)", c.b, c.a, got, c.want)
		}
	}
}

func TestWithin(t *testing.T) {
	if !Within(1.0, 1.0+5e-7, 1e-6) {
		t.Error("Within: 5e-7 gap should pass tol 1e-6")
	}
	if Within(1.0, 1.0+2e-6, 1e-6) {
		t.Error("Within: 2e-6 gap should fail tol 1e-6")
	}
}

func TestLeqGeq(t *testing.T) {
	// The capacity idiom: traffic <= cap*(1+Eps) for cap >= 1.
	capBps := 1e9
	if !Leq(capBps*(1+0.5e-9), capBps) {
		t.Error("Leq: traffic within the 1e-9 headroom must pass")
	}
	if Leq(capBps*(1+3e-9), capBps) {
		t.Error("Leq: traffic beyond the headroom must fail")
	}
	if !Leq(1, 2) || Leq(2, 1) {
		t.Error("Leq: plain ordering broken")
	}
	if !Geq(2, 1) || Geq(1, 2) {
		t.Error("Geq: plain ordering broken")
	}
	if !Leq(0, 0) || !Geq(0, 0) {
		t.Error("Leq/Geq must accept equal values")
	}
}

func TestUtilizationBoundMatchesLegacyIdiom(t *testing.T) {
	// verify.Report.OK used MaxUtilization > 1+1e-9; num.Leq(u, 1)
	// must agree on either side of that boundary.
	if !Leq(1+0.9e-9, 1) {
		t.Error("utilization just inside the headroom must pass")
	}
	if Leq(1+3e-9, 1) {
		t.Error("utilization beyond the headroom must fail")
	}
}
