package export

import (
	"strconv"
	"strings"
	"testing"

	"nocvi/internal/bench"
	"nocvi/internal/core"
	"nocvi/internal/floorplan"
	"nocvi/internal/model"
	"nocvi/internal/topology"
)

func synthExample(t *testing.T) (*topology.Topology, *floorplan.Placement) {
	t.Helper()
	res, err := core.Synthesize(bench.Example(), model.Default65nm(), core.Options{
		AllowIntermediate: true,
		MaxDesignPoints:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	best := res.Best()
	return best.Top, best.Placement
}

func TestTopologyDOT(t *testing.T) {
	top, _ := synthExample(t)
	dot := TopologyDOT(top)
	if !strings.HasPrefix(dot, "digraph") || !strings.HasSuffix(strings.TrimSpace(dot), "}") {
		t.Fatal("not a digraph")
	}
	for c := range top.Spec.Cores {
		if !strings.Contains(dot, top.Spec.Cores[c].Name) {
			t.Fatalf("core %s missing from DOT", top.Spec.Cores[c].Name)
		}
	}
	for i := range top.Switches {
		if !strings.Contains(dot, "sw"+strconv.Itoa(i)) {
			t.Fatalf("switch %d missing", i)
		}
	}
	if strings.Count(dot, "subgraph cluster_") != top.NumIslands() {
		t.Fatal("one cluster per island expected")
	}
	// inter-island links dashed with FIFO label
	hasCross := false
	for _, l := range top.Links {
		if l.CrossesIslands {
			hasCross = true
		}
	}
	if hasCross && !strings.Contains(dot, "FIFO") {
		t.Fatal("crossing links not labelled")
	}
}

func TestTopologyText(t *testing.T) {
	top, _ := synthExample(t)
	txt := TopologyText(top)
	if !strings.Contains(txt, "island 0") || !strings.Contains(txt, "MHz") {
		t.Fatalf("text summary incomplete:\n%s", txt)
	}
	for _, isl := range top.Spec.Islands {
		if !strings.Contains(txt, isl.Name) {
			t.Fatalf("island %s missing", isl.Name)
		}
	}
	if !strings.Contains(txt, "link sw") {
		t.Fatal("links missing")
	}
}

func TestFloorplanSVG(t *testing.T) {
	top, pl := synthExample(t)
	svg := FloorplanSVG(top, pl)
	if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Fatal("not an svg")
	}
	if strings.Count(svg, "<circle") != len(top.Switches) {
		t.Fatal("one circle per switch expected")
	}
	for _, c := range top.Spec.Cores {
		if !strings.Contains(svg, ">"+c.Name+"<") {
			t.Fatalf("core %s missing from SVG", c.Name)
		}
	}
}

func TestFloorplanText(t *testing.T) {
	top, pl := synthExample(t)
	txt := FloorplanText(top, pl, 60)
	if !strings.Contains(txt, "floorplan of") {
		t.Fatal("header missing")
	}
	if !strings.Contains(txt, "o") || !strings.Contains(txt, "#") {
		t.Fatal("cores or switches missing from sketch")
	}
	lines := strings.Split(strings.TrimSpace(txt), "\n")
	if len(lines) < 10 {
		t.Fatalf("sketch too small: %d lines", len(lines))
	}
	// tiny cols clamp
	if small := FloorplanText(top, pl, 3); !strings.Contains(small, "floorplan") {
		t.Fatal("cols clamp broken")
	}
}
