// Package export renders synthesized designs for human inspection: a
// Graphviz DOT view and an ASCII summary of the topology (Fig. 4), and
// an SVG plus ASCII sketch of the floorplan (Fig. 5).
package export

import (
	"fmt"
	"sort"
	"strings"

	"nocvi/internal/floorplan"
	"nocvi/internal/soc"
	"nocvi/internal/topology"
)

// islandPalette colors islands in the DOT/SVG output.
var islandPalette = []string{
	"#aecbfa", "#fad2cf", "#ceead6", "#fde293", "#d7aefb",
	"#fdc69c", "#a1e4f2", "#e8aecb", "#c5d1a5", "#d5d5d5",
}

func islandColor(i soc.IslandID) string {
	return islandPalette[int(i)%len(islandPalette)]
}

// TopologyDOT renders the topology as a Graphviz digraph with one
// cluster per voltage island (cores as boxes, switches as ellipses,
// bi-synchronous FIFO crossings as dashed edges).
func TopologyDOT(top *topology.Topology) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", top.Spec.Name)
	b.WriteString("  rankdir=LR;\n  node [fontsize=10];\n")
	for isl := 0; isl < top.NumIslands(); isl++ {
		name := "NoC_VI"
		shut := false
		if isl < len(top.Spec.Islands) {
			name = top.Spec.Islands[isl].Name
			shut = top.Spec.Islands[isl].Shutdownable
		}
		fmt.Fprintf(&b, "  subgraph cluster_isl%d {\n", isl)
		label := name
		if shut {
			label += " (shutdownable)"
		}
		fmt.Fprintf(&b, "    label=%q; style=filled; color=%q;\n",
			fmt.Sprintf("%s @ %.0f MHz", label, top.IslandFreqHz[isl]/1e6), islandColor(soc.IslandID(isl)))
		for _, s := range top.Switches {
			if int(s.Island) != isl {
				continue
			}
			shape := "ellipse"
			if s.Indirect {
				shape = "doublecircle"
			}
			fmt.Fprintf(&b, "    sw%d [label=\"sw%d\\n%dx%d\" shape=%s];\n",
				s.ID, s.ID, inPorts(top, s.ID), outPorts(top, s.ID), shape)
		}
		for c, ci := range top.Spec.IslandOf {
			if int(ci) != isl {
				continue
			}
			fmt.Fprintf(&b, "    c%d [label=%q shape=box style=filled fillcolor=white];\n",
				c, top.Spec.Cores[c].Name)
		}
		b.WriteString("  }\n")
	}
	for c, sw := range top.SwitchOf {
		if sw >= 0 {
			fmt.Fprintf(&b, "  c%d -> sw%d [dir=both arrowsize=0.5 color=gray40];\n", c, sw)
		}
	}
	for _, l := range top.Links {
		style := "solid"
		extra := ""
		if l.CrossesIslands {
			style = "dashed"
			extra = " label=\"FIFO\" fontsize=8"
		}
		fmt.Fprintf(&b, "  sw%d -> sw%d [style=%s%s];\n", l.From, l.To, style, extra)
	}
	b.WriteString("}\n")
	return b.String()
}

func inPorts(top *topology.Topology, sw topology.SwitchID) int {
	in, _ := top.SwitchPorts(sw)
	return in
}

func outPorts(top *topology.Topology, sw topology.SwitchID) int {
	_, out := top.SwitchPorts(sw)
	return out
}

// TopologyText renders a compact ASCII description: per island, its
// clock, switches with attached cores, and the link list.
func TopologyText(top *topology.Topology) string {
	var b strings.Builder
	fmt.Fprintf(&b, "topology of %s: %d switches (%d indirect), %d links, %d routes\n",
		top.Spec.Name, len(top.Switches), top.IndirectSwitchCount(), len(top.Links), len(top.Routes))
	for isl := 0; isl < top.NumIslands(); isl++ {
		name := "NoC_VI(always-on)"
		if isl < len(top.Spec.Islands) {
			name = top.Spec.Islands[isl].Name
			if top.Spec.Islands[isl].Shutdownable {
				name += "(shutdownable)"
			}
		}
		fmt.Fprintf(&b, "island %d %-24s @ %4.0f MHz\n", isl, name, top.IslandFreqHz[isl]/1e6)
		for _, s := range top.Switches {
			if int(s.Island) != isl {
				continue
			}
			var cores []string
			for _, c := range s.Cores {
				cores = append(cores, top.Spec.Cores[c].Name)
			}
			kind := "direct  "
			if s.Indirect {
				kind = "indirect"
			}
			fmt.Fprintf(&b, "  sw%-3d %s size=%d cores=[%s]\n",
				s.ID, kind, top.SwitchSize(s.ID), strings.Join(cores, " "))
		}
	}
	links := append([]topology.Link(nil), top.Links...)
	sort.Slice(links, func(i, j int) bool { return links[i].ID < links[j].ID })
	for _, l := range links {
		cross := ""
		if l.CrossesIslands {
			cross = " [bi-sync FIFO]"
		}
		fmt.Fprintf(&b, "  link sw%d->sw%d %.0f/%.0f MB/s%s\n",
			l.From, l.To, l.TrafficBps/1e6, l.CapacityBps/1e6, cross)
	}
	return b.String()
}

// FloorplanSVG renders the placement: island regions, core cells,
// switch markers, and link spans.
func FloorplanSVG(top *topology.Topology, p *floorplan.Placement) string {
	const scale = 60.0 // pixels per mm
	var b strings.Builder
	w, h := p.Die.W*scale, p.Die.H*scale
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n", w+20, h+20, w+20, h+20)
	fmt.Fprintf(&b, `<rect x="10" y="10" width="%.0f" height="%.0f" fill="none" stroke="black" stroke-width="2"/>`+"\n", w, h)
	// y flips: SVG origin is top-left.
	tx := func(x float64) float64 { return 10 + x*scale }
	ty := func(y float64) float64 { return 10 + (p.Die.H-y)*scale }
	for i, r := range p.IslandRects {
		name := "NoC_VI"
		if i < len(top.Spec.Islands) {
			name = top.Spec.Islands[i].Name
		}
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="gray"/>`+"\n",
			tx(r.X), ty(r.Y+r.H), r.W*scale, r.H*scale, islandColor(soc.IslandID(i)))
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11">%s</text>`+"\n",
			tx(r.X)+3, ty(r.Y+r.H)+12, name)
	}
	for _, l := range top.Links {
		a, c := p.SwitchPos[l.From], p.SwitchPos[l.To]
		dash := ""
		if l.CrossesIslands {
			dash = ` stroke-dasharray="4,3"`
		}
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black" stroke-width="1"%s/>`+"\n",
			tx(a.X), ty(a.Y), tx(c.X), ty(c.Y), dash)
	}
	for c := range top.Spec.Cores {
		pos := p.CorePos[c]
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="14" height="10" fill="white" stroke="black"/>`+"\n",
			tx(pos.X)-7, ty(pos.Y)-5)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="7" text-anchor="middle">%s</text>`+"\n",
			tx(pos.X), ty(pos.Y)+3, top.Spec.Cores[c].Name)
	}
	for _, s := range top.Switches {
		pos := p.SwitchPos[s.ID]
		fill := "black"
		if s.Indirect {
			fill = "red"
		}
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="4" fill="%s"/>`+"\n", tx(pos.X), ty(pos.Y), fill)
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// FloorplanText renders a coarse character-grid sketch of the die with
// island letters and switch markers.
func FloorplanText(top *topology.Topology, p *floorplan.Placement, cols int) string {
	if cols < 10 {
		cols = 40
	}
	rows := cols / 2
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(".", cols))
	}
	put := func(pt floorplan.Point, ch byte) {
		c := int(pt.X / p.Die.W * float64(cols))
		r := int((p.Die.H - pt.Y) / p.Die.H * float64(rows))
		if c >= cols {
			c = cols - 1
		}
		if r >= rows {
			r = rows - 1
		}
		if c < 0 {
			c = 0
		}
		if r < 0 {
			r = 0
		}
		grid[r][c] = ch
	}
	for i, r := range p.IslandRects {
		ch := byte('A' + i%26)
		steps := 12
		for s := 0; s <= steps; s++ {
			f := float64(s) / float64(steps)
			put(floorplan.Point{X: r.X + f*r.W, Y: r.Y}, ch)
			put(floorplan.Point{X: r.X + f*r.W, Y: r.Y + r.H}, ch)
			put(floorplan.Point{X: r.X, Y: r.Y + f*r.H}, ch)
			put(floorplan.Point{X: r.X + r.W, Y: r.Y + f*r.H}, ch)
		}
	}
	for c := range top.Spec.Cores {
		put(p.CorePos[c], 'o')
	}
	for _, s := range top.Switches {
		ch := byte('#')
		if s.Indirect {
			ch = '%'
		}
		put(p.SwitchPos[s.ID], ch)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "floorplan of %s (%.1f x %.1f mm): o=core #=switch %%=indirect, letters=island borders\n",
		top.Spec.Name, p.Die.W, p.Die.H)
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	for i := 0; i < top.NumIslands(); i++ {
		name := "NoC_VI"
		if i < len(top.Spec.Islands) {
			name = top.Spec.Islands[i].Name
		}
		fmt.Fprintf(&b, "  %c = %s\n", 'A'+i%26, name)
	}
	return b.String()
}
