package topology

import (
	"strings"
	"testing"

	"nocvi/internal/model"
	"nocvi/internal/soc"
)

// fixtureSpec: 3 islands, island 1 (media) shutdownable, 5 cores.
func fixtureSpec() *soc.Spec {
	return &soc.Spec{
		Name: "fix",
		Cores: []soc.Core{
			{ID: 0, Name: "cpu"},
			{ID: 1, Name: "mem"},
			{ID: 2, Name: "vid"},
			{ID: 3, Name: "aud"},
			{ID: 4, Name: "usb"},
		},
		Flows: []soc.Flow{
			{Src: 0, Dst: 1, BandwidthBps: 400e6, MaxLatencyCycles: 20},
			{Src: 2, Dst: 3, BandwidthBps: 100e6},
			{Src: 4, Dst: 1, BandwidthBps: 50e6},
		},
		Islands: []soc.Island{
			{ID: 0, Name: "sys", VoltageV: 1.0},
			{ID: 1, Name: "media", VoltageV: 0.9, Shutdownable: true},
			{ID: 2, Name: "io", VoltageV: 1.0, Shutdownable: true},
		},
		IslandOf: []soc.IslandID{0, 0, 1, 1, 2},
	}
}

// buildValid constructs a fully valid topology over the fixture:
// one switch per island, cores attached locally, direct inter-island
// links for the two crossing flows.
func buildValid(t *testing.T) *Topology {
	spec := fixtureSpec()
	lib := model.Default65nm()
	top := New(spec, lib)
	for i := range spec.Islands {
		top.SetIslandFreq(soc.IslandID(i), 400e6)
	}
	s0 := top.AddSwitch(0, false)
	s1 := top.AddSwitch(1, false)
	s2 := top.AddSwitch(2, false)
	for c, sw := range map[soc.CoreID]SwitchID{0: s0, 1: s0, 2: s1, 3: s1, 4: s2} {
		if err := top.AttachCore(c, sw); err != nil {
			t.Fatalf("attach %d: %v", c, err)
		}
	}
	l20, err := top.AddLink(s2, s0)
	if err != nil {
		t.Fatal(err)
	}
	mustRoute := func(r Route) {
		t.Helper()
		if err := top.AddRoute(r); err != nil {
			t.Fatal(err)
		}
	}
	mustRoute(Route{Flow: spec.Flows[0], Switches: []SwitchID{s0}})
	mustRoute(Route{Flow: spec.Flows[1], Switches: []SwitchID{s1}})
	mustRoute(Route{Flow: spec.Flows[2], Switches: []SwitchID{s2, s0}, Links: []LinkID{l20}})
	return top
}

func TestValidTopology(t *testing.T) {
	top := buildValid(t)
	if err := top.Validate(); err != nil {
		t.Fatalf("valid topology rejected: %v", err)
	}
}

func TestAttachCoreErrors(t *testing.T) {
	spec := fixtureSpec()
	top := New(spec, model.Default65nm())
	top.SetIslandFreq(0, 200e6)
	s0 := top.AddSwitch(0, false)
	if err := top.AttachCore(2, s0); err == nil {
		t.Fatal("cross-island attach accepted")
	}
	if err := top.AttachCore(0, s0); err != nil {
		t.Fatal(err)
	}
	if err := top.AttachCore(0, s0); err == nil {
		t.Fatal("double attach accepted")
	}
	ni := top.AddNoCIsland(400e6, 1.0)
	ind := top.AddSwitch(ni, true)
	if err := top.AttachCore(1, ind); err == nil {
		t.Fatal("attach to indirect switch accepted")
	}
}

func TestAddLinkSemantics(t *testing.T) {
	spec := fixtureSpec()
	top := New(spec, model.Default65nm())
	top.SetIslandFreq(0, 400e6)
	top.SetIslandFreq(1, 100e6)
	s0 := top.AddSwitch(0, false)
	s1 := top.AddSwitch(1, false)
	if _, err := top.AddLink(s0, s0); err == nil {
		t.Fatal("self link accepted")
	}
	l, err := top.AddLink(s0, s1)
	if err != nil {
		t.Fatal(err)
	}
	if !top.Links[l].CrossesIslands {
		t.Fatal("inter-island link not marked as crossing")
	}
	// capacity limited by the slower (100 MHz) endpoint: 4B * 100MHz
	if got := top.Links[l].CapacityBps; got != 400e6 {
		t.Fatalf("capacity = %g, want 4e8", got)
	}
	if _, err := top.AddLink(s0, s1); err == nil {
		t.Fatal("duplicate link accepted")
	}
	// reverse direction is a distinct link
	if _, err := top.AddLink(s1, s0); err != nil {
		t.Fatalf("reverse link rejected: %v", err)
	}
	if id, ok := top.FindLink(s0, s1); !ok || id != l {
		t.Fatal("FindLink broken")
	}
}

func TestSwitchPortsAndSize(t *testing.T) {
	top := buildValid(t)
	// switch 0: cores cpu+mem (2 in, 2 out) + 1 incoming link
	in, out := top.SwitchPorts(0)
	if in != 3 || out != 2 {
		t.Fatalf("switch0 ports = %d/%d, want 3/2", in, out)
	}
	if top.SwitchSize(0) != 3 {
		t.Fatalf("switch0 size = %d", top.SwitchSize(0))
	}
	if top.SwitchSize(1) != 2 {
		t.Fatalf("switch1 size = %d", top.SwitchSize(1))
	}
}

func TestZeroLoadLatency(t *testing.T) {
	top := buildValid(t)
	// single switch route: NI link + switch + NI link = 1+2+1
	if lat := top.ZeroLoadLatencyCycles(&top.Routes[0]); lat != 4 {
		t.Fatalf("single-switch latency = %g, want 4", lat)
	}
	// two switches crossing islands: 1 + 2 + (1+4) + 2 + 1 = 11
	if lat := top.ZeroLoadLatencyCycles(&top.Routes[2]); lat != 11 {
		t.Fatalf("crossing latency = %g, want 11", lat)
	}
	mean := top.MeanZeroLoadLatency()
	if want := (4.0 + 4.0 + 11.0) / 3; mean != want {
		t.Fatalf("mean latency = %g, want %g", mean, want)
	}
}

func TestSwitchTraffic(t *testing.T) {
	top := buildValid(t)
	if got := top.SwitchTrafficBps(0); got != 450e6 {
		t.Fatalf("switch0 traffic = %g, want 4.5e8", got)
	}
	if got := top.SwitchTrafficBps(1); got != 100e6 {
		t.Fatalf("switch1 traffic = %g", got)
	}
}

func TestRouteValidationErrors(t *testing.T) {
	top := buildValid(t)
	bad := []Route{
		{Flow: top.Spec.Flows[0], Switches: nil},
		{Flow: top.Spec.Flows[0], Switches: []SwitchID{0, 1}},                     // missing link
		{Flow: top.Spec.Flows[0], Switches: []SwitchID{1}},                        // wrong start
		{Flow: top.Spec.Flows[2], Switches: []SwitchID{2, 1}, Links: []LinkID{0}}, // link mismatch
	}
	for i, r := range bad {
		if err := top.AddRoute(r); err == nil {
			t.Fatalf("bad route %d accepted", i)
		}
	}
}

func TestValidateCatchesOverload(t *testing.T) {
	top := buildValid(t)
	top.Links[0].TrafficBps = top.Links[0].CapacityBps * 2
	if err := top.Validate(); err == nil || !strings.Contains(err.Error(), "overloaded") {
		t.Fatalf("overload not caught: %v", err)
	}
}

func TestValidateCatchesLatencyViolation(t *testing.T) {
	top := buildValid(t)
	top.Routes[0].Flow.MaxLatencyCycles = 1
	if err := top.Validate(); err == nil || !strings.Contains(err.Error(), "latency") {
		t.Fatalf("latency violation not caught: %v", err)
	}
}

func TestValidateCatchesUnattachedCore(t *testing.T) {
	spec := fixtureSpec()
	top := New(spec, model.Default65nm())
	if err := top.Validate(); err == nil || !strings.Contains(err.Error(), "not attached") {
		t.Fatalf("unattached core not caught: %v", err)
	}
}

func TestValidateCatchesOversizedSwitch(t *testing.T) {
	top := buildValid(t)
	// Force island 0's clock beyond what a 3-port switch can meet.
	f := top.Lib.SwitchMaxFreqHz(3) + 200e6
	top.Switches[0].FreqHz = f
	if err := top.Validate(); err == nil || !strings.Contains(err.Error(), "cannot run") {
		t.Fatalf("oversized switch not caught: %v", err)
	}
}

// The central property of the paper: a route between islands 0 and 2
// that detours through shutdownable island 1 must be rejected.
func TestShutdownSafetyViolation(t *testing.T) {
	spec := fixtureSpec()
	lib := model.Default65nm()
	top := New(spec, lib)
	for i := range spec.Islands {
		top.SetIslandFreq(soc.IslandID(i), 400e6)
	}
	s0 := top.AddSwitch(0, false)
	s1 := top.AddSwitch(1, false)
	s2 := top.AddSwitch(2, false)
	attach := map[soc.CoreID]SwitchID{0: s0, 1: s0, 2: s1, 3: s1, 4: s2}
	for c, sw := range attach {
		if err := top.AttachCore(c, sw); err != nil {
			t.Fatal(err)
		}
	}
	l21, _ := top.AddLink(s2, s1)
	l10, _ := top.AddLink(s1, s0)
	// flow usb(io isl 2) -> mem(sys isl 0) routed THROUGH media island 1
	if err := top.AddRoute(Route{Flow: spec.Flows[2], Switches: []SwitchID{s2, s1, s0}, Links: []LinkID{l21, l10}}); err != nil {
		t.Fatal(err)
	}
	err := top.ValidateShutdownSafe()
	if err == nil || !strings.Contains(err.Error(), "sever") {
		t.Fatalf("unsafe route not detected: %v", err)
	}
}

// Routes that terminate in a shutdownable island are allowed to use it.
func TestShutdownSafetyAllowsEndpointIslands(t *testing.T) {
	top := buildValid(t)
	if err := top.ValidateShutdownSafe(); err != nil {
		t.Fatalf("endpoint-island usage flagged: %v", err)
	}
}

// The intermediate NoC island is never shutdownable, so routing through
// it is always safe.
func TestIntermediateIslandSafe(t *testing.T) {
	spec := fixtureSpec()
	lib := model.Default65nm()
	top := New(spec, lib)
	for i := range spec.Islands {
		top.SetIslandFreq(soc.IslandID(i), 400e6)
	}
	s0 := top.AddSwitch(0, false)
	s1 := top.AddSwitch(1, false)
	s2 := top.AddSwitch(2, false)
	ni := top.AddNoCIsland(400e6, 1.0)
	mid := top.AddSwitch(ni, true)
	for c, sw := range map[soc.CoreID]SwitchID{0: s0, 1: s0, 2: s1, 3: s1, 4: s2} {
		if err := top.AttachCore(c, sw); err != nil {
			t.Fatal(err)
		}
	}
	l2m, _ := top.AddLink(s2, mid)
	lm0, _ := top.AddLink(mid, s0)
	for _, r := range []Route{
		{Flow: spec.Flows[0], Switches: []SwitchID{s0}},
		{Flow: spec.Flows[1], Switches: []SwitchID{s1}},
		{Flow: spec.Flows[2], Switches: []SwitchID{s2, mid, s0}, Links: []LinkID{l2m, lm0}},
	} {
		if err := top.AddRoute(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := top.Validate(); err != nil {
		t.Fatalf("intermediate-island design rejected: %v", err)
	}
	if !top.IslandShutdownable(1) || top.IslandShutdownable(ni) {
		t.Fatal("shutdownability flags wrong")
	}
	if top.IndirectSwitchCount() != 1 || top.TotalSwitchCount() != 4 {
		t.Fatal("switch inventory wrong")
	}
	// latency of the indirect route: 1 + 2 + (1+4) + 2 + (1+4) + 2 + 1 = 18
	if lat := top.ZeroLoadLatencyCycles(&top.Routes[2]); lat != 18 {
		t.Fatalf("indirect route latency = %g, want 18", lat)
	}
}

func TestHelpers(t *testing.T) {
	top := buildValid(t)
	if got := top.RoutesThroughIsland(0); len(got) != 2 {
		t.Fatalf("routes through island 0 = %v", got)
	}
	if got := top.SwitchesIn(1); len(got) != 1 || got[0] != 1 {
		t.Fatalf("switches in island 1 = %v", got)
	}
	if u := top.MaxLinkUtilization(); u <= 0 || u > 1 {
		t.Fatalf("utilization = %g", u)
	}
	if top.NumIslands() != 3 {
		t.Fatal("NumIslands wrong")
	}
}

func TestAddNoCIslandOnce(t *testing.T) {
	top := New(fixtureSpec(), model.Default65nm())
	top.AddNoCIsland(100e6, 1.0)
	defer func() {
		if recover() == nil {
			t.Fatal("second AddNoCIsland did not panic")
		}
	}()
	top.AddNoCIsland(100e6, 1.0)
}

func TestValidateRouteCountMismatch(t *testing.T) {
	top := buildValid(t)
	top.Routes = top.Routes[:2]
	if err := top.Validate(); err == nil || !strings.Contains(err.Error(), "routes for") {
		t.Fatalf("route count mismatch not caught: %v", err)
	}
}

// TestEnsureLink pins the lookup-or-add semantics: first call opens the
// link, repeats return the same ID without growing the topology, and
// self links are rejected.
func TestEnsureLink(t *testing.T) {
	spec := fixtureSpec()
	top := New(spec, model.Default65nm())
	for i := range spec.Islands {
		top.SetIslandFreq(soc.IslandID(i), 200e6)
	}
	s0 := top.AddSwitch(0, false)
	s1 := top.AddSwitch(1, false)
	l, err := top.EnsureLink(s0, s1)
	if err != nil {
		t.Fatal(err)
	}
	if len(top.Links) != 1 {
		t.Fatalf("%d links after first EnsureLink", len(top.Links))
	}
	again, err := top.EnsureLink(s0, s1)
	if err != nil || again != l {
		t.Fatalf("repeat EnsureLink = %d, %v; want %d", again, err, l)
	}
	if len(top.Links) != 1 {
		t.Fatal("EnsureLink duplicated the link")
	}
	rev, err := top.EnsureLink(s1, s0)
	if err != nil || rev == l {
		t.Fatalf("reverse EnsureLink = %d, %v", rev, err)
	}
	if _, err := top.EnsureLink(s0, s0); err == nil {
		t.Fatal("self link accepted")
	}
	// AddLink still rejects an existing link.
	if _, err := top.AddLink(s0, s1); err == nil {
		t.Fatal("AddLink accepted a duplicate")
	}
}

// TestLinkIndexMatchesScan cross-checks the O(1) index and incremental
// port counts against brute-force scans over the exported slices, on a
// topology grown switch-by-switch and link-by-link.
func TestLinkIndexMatchesScan(t *testing.T) {
	spec := fixtureSpec()
	top := New(spec, model.Default65nm())
	for i := range spec.Islands {
		top.SetIslandFreq(soc.IslandID(i), 200e6)
	}
	var sws []SwitchID
	for i := 0; i < 3; i++ {
		sws = append(sws, top.AddSwitch(soc.IslandID(i), false))
	}
	check := func() {
		t.Helper()
		for _, u := range sws {
			for _, v := range sws {
				want, found := LinkID(-1), false
				for _, l := range top.Links {
					if l.From == u && l.To == v {
						want, found = l.ID, true
					}
				}
				got, ok := top.FindLink(u, v)
				if ok != found || (ok && got != want) {
					t.Fatalf("FindLink(%d,%d) = %d,%v; scan says %d,%v", u, v, got, ok, want, found)
				}
			}
			in, out := len(top.Switches[u].Cores), len(top.Switches[u].Cores)
			for _, l := range top.Links {
				if l.To == u {
					in++
				}
				if l.From == u {
					out++
				}
			}
			gi, go_ := top.SwitchPorts(u)
			if gi != in || go_ != out {
				t.Fatalf("SwitchPorts(%d) = %d,%d; scan says %d,%d", u, gi, go_, in, out)
			}
		}
	}
	check()
	top.AddLink(sws[0], sws[1])
	check()
	top.EnsureLink(sws[1], sws[2])
	check()
	top.AttachCore(0, sws[0])
	check()
	sws = append(sws, top.AddSwitch(0, false)) // grow after links exist
	top.AddLink(sws[3], sws[0])
	check()
}

// TestReindexExternallyAssembled covers the lazy rebuild: a topology
// whose Links slice was populated without the index (zero value plus
// direct appends) must still answer FindLink/SwitchPorts correctly.
func TestReindexExternallyAssembled(t *testing.T) {
	spec := fixtureSpec()
	lib := model.Default65nm()
	top := &Topology{
		Spec:          spec,
		Lib:           lib,
		NoCIsland:     soc.NoIsland,
		IslandFreqHz:  []float64{200e6, 200e6, 200e6},
		IslandVoltage: []float64{1, 1, 1},
		SwitchOf:      []SwitchID{-1, -1, -1, -1, -1},
	}
	top.Switches = []Switch{
		{ID: 0, Island: 0, FreqHz: 200e6, VoltageV: 1},
		{ID: 1, Island: 1, FreqHz: 200e6, VoltageV: 1},
	}
	top.Links = []Link{{ID: 0, From: 0, To: 1, CrossesIslands: true}}
	if id, ok := top.FindLink(0, 1); !ok || id != 0 {
		t.Fatalf("FindLink on assembled topology = %d,%v", id, ok)
	}
	if _, ok := top.FindLink(1, 0); ok {
		t.Fatal("phantom reverse link")
	}
	in, out := top.SwitchPorts(1)
	if in != 1 || out != 0 {
		t.Fatalf("SwitchPorts(1) = %d,%d", in, out)
	}
	// The index must absorb subsequent mutations too.
	if _, err := top.AddLink(1, 0); err != nil {
		t.Fatal(err)
	}
	if id, ok := top.FindLink(1, 0); !ok || id != 1 {
		t.Fatalf("FindLink after AddLink = %d,%v", id, ok)
	}
}
